// vini_profile: the parallelism-ceiling profiler CLI.
//
// Answers "how much would sharding this workload actually buy?" before
// any worker thread exists: it replays a canned, fully seeded Abilene
// scenario under saturating iperf load with the ParallelismProfiler
// attached, then models a conservative-lookahead sharded engine
// (window = the topology's minimum link propagation delay) over the
// real per-node event stream and reports the critical path and the
// predicted speedup at 2/4/8/16 shards.
//
//   vini_profile run [--seed N] [--seconds N] [--flows N]
//                    [--out FILE] [--queue heap|calendar]
//       writes PROFILE_report.json (schema_version 1)
//   vini_profile --self-test
//
// The report is deterministic: it carries only virtual-time and
// event-count quantities, never wall clock, so the same --seed produces
// a byte-identical file — scripts/check.sh double-runs and diffs it.
// VINI_SMOKE=1 shrinks the run for fast gating.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/iperf.h"
#include "obs/parallelism.h"
#include "topo/worlds.h"

namespace {

using namespace vini;

int usage() {
  std::cerr << "usage: vini_profile run [--seed N] [--seconds N] [--flows N]"
               " [--out FILE] [--queue heap|calendar]\n"
               "       vini_profile --self-test\n";
  return 2;
}

// -- Canned scenario (bench_engine's saturating workload) --------------------

int cmdRun(std::uint64_t seed, int seconds, int flows, const std::string& out_path,
           sim::QueueImpl queue_impl) {
  topo::WorldOptions options;
  options.seed = seed;
  options.contention = 0.0;
  options.queue_impl = queue_impl;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::cerr << "vini_profile: world did not converge\n";
    return 1;
  }
  const sim::Time t0 = world->queue.now();

  const sim::Duration lookahead = world->net.minPropagation();
  obs::ParallelismProfiler profiler;
  profiler.setLookahead(lookahead);
  profiler.attach(world->queue);

  static const char* kPairs[][2] = {
      {"Washington", "Seattle"},   {"Seattle", "Atlanta"},
      {"Sunnyvale", "NewYork"},    {"LosAngeles", "Chicago"},
      {"Houston", "Indianapolis"}, {"Denver", "Atlanta"},
      {"NewYork", "Sunnyvale"},    {"Atlanta", "KansasCity"},
  };
  const int npairs = static_cast<int>(sizeof(kPairs) / sizeof(kPairs[0]));
  std::vector<std::unique_ptr<app::IperfUdpServer>> servers;
  std::vector<std::unique_ptr<app::IperfUdpClient>> clients;
  for (int i = 0; i < flows; ++i) {
    const char* src = kPairs[i % npairs][0];
    const char* dst = kPairs[i % npairs][1];
    const std::uint16_t port = static_cast<std::uint16_t>(5001 + i);
    servers.push_back(
        std::make_unique<app::IperfUdpServer>(world->stack(dst), port));
    clients.push_back(std::make_unique<app::IperfUdpClient>(
        world->stack(src), world->tapOf(dst), port, 120e6, 1430,
        world->tapOf(src)));
    clients.back()->start(seconds * sim::kSecond);
  }
  world->queue.runUntil(t0 + seconds * sim::kSecond);

  const obs::ParallelismProfiler::Report report =
      profiler.analyze({2, 4, 8, 16});
  profiler.detach();
  {
    std::ofstream out(out_path);
    obs::ParallelismProfiler::writeJson(out, report);
  }

  std::printf("vini_profile: seed %llu, lookahead %.3f ms, %llu events "
              "(%.1f%% cross-node), %llu barrier rounds\n",
              static_cast<unsigned long long>(seed), sim::toMillis(lookahead),
              static_cast<unsigned long long>(report.total_events),
              100.0 * report.cross_node_ratio,
              static_cast<unsigned long long>(report.windows));
  for (const auto& p : report.predictions) {
    std::printf("  %2d shards: critical path %12llu events, predicted "
                "speedup %5.2fx (efficiency %4.0f%%)\n",
                p.shards,
                static_cast<unsigned long long>(p.critical_path_events),
                p.predicted_speedup, 100.0 * p.efficiency);
  }
  if (report.lookahead_violations != 0) {
    std::fprintf(stderr,
                 "vini_profile: %llu cross-node events arrived under one "
                 "lookahead — window too large for this workload\n",
                 static_cast<unsigned long long>(report.lookahead_violations));
    return 1;
  }
  std::printf("  [report written to %s]\n", out_path.c_str());
  return 0;
}

// -- Self-test ---------------------------------------------------------------

#define CHECK(cond)                                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "vini_profile: self-test FAILED at " << __FILE__ << ':' \
                << __LINE__ << ": " #cond "\n";                            \
      return 1;                                                            \
    }                                                                      \
  } while (0)

/// Two fully independent, perfectly balanced nodes: the model must
/// predict a speedup of exactly 2 at 2+ shards.
int selfTestBalanced() {
  sim::EventQueue queue;
  const sim::NodeTag a = queue.internNodeTag("a");
  const sim::NodeTag b = queue.internNodeTag("b");
  obs::ParallelismProfiler profiler;
  profiler.setLookahead(sim::kMillisecond);
  profiler.attach(queue);
  for (int w = 0; w < 10; ++w) {
    const sim::Time t = w * sim::kMillisecond + 10 * sim::kMicrosecond;
    for (int i = 0; i < 5; ++i) {
      queue.schedule(t + i, "test", a, [] {});
      queue.schedule(t + i, "test", b, [] {});
    }
  }
  queue.run();
  const auto report = profiler.analyze({2, 4});
  CHECK(report.total_events == 100);
  CHECK(report.attributed_events == 100);
  CHECK(report.cross_node_events == 0);
  CHECK(report.lookahead_violations == 0);
  CHECK(report.windows == 10);
  CHECK(report.nodes.size() == 2);
  CHECK(report.predictions.size() == 2);
  // Perfect balance: critical path is half the events at 2 shards, and
  // adding shards beyond the node count buys nothing.
  CHECK(report.predictions[0].critical_path_events == 50);
  CHECK(report.predictions[0].predicted_speedup == 2.0);
  CHECK(report.predictions[1].critical_path_events == 50);
  CHECK(report.predictions[1].predicted_speedup == 2.0);
  return 0;
}

/// Cross-node accounting: an event scheduled from node a's handler onto
/// node b counts as cross-node, and one arriving under a lookahead is a
/// violation.
int selfTestCrossNode() {
  sim::EventQueue queue;
  const sim::NodeTag a = queue.internNodeTag("a");
  const sim::NodeTag b = queue.internNodeTag("b");
  obs::ParallelismProfiler profiler;
  profiler.setLookahead(sim::kMillisecond);
  profiler.attach(queue);
  queue.schedule(10 * sim::kMicrosecond, "test", a, [&queue, a, b] {
    // Safe hand-off: one full lookahead ahead.
    queue.scheduleAfter(sim::kMillisecond, "test", b, [] {});
    // Violation: arrives within the window.
    queue.scheduleAfter(100 * sim::kMicrosecond, "test", b, [] {});
    // Same-node: not cross.
    queue.scheduleAfter(sim::kMillisecond, "test", a, [] {});
  });
  queue.run();
  const auto report = profiler.analyze({2});
  CHECK(report.total_events == 4);
  CHECK(report.cross_node_events == 2);
  CHECK(report.lookahead_violations == 1);
  CHECK(report.min_cross_delay_ns == 100 * sim::kMicrosecond);
  CHECK(queue.sameNodeScheduledCount() == 1);
  CHECK(queue.crossNodeScheduledCount() == 2);
  return 0;
}

/// Determinism: identical synthetic streams serialize to identical
/// bytes (the property the check.sh double-run diff enforces on the
/// full scenario).
int selfTestDeterminism() {
  std::string first;
  for (int round = 0; round < 2; ++round) {
    sim::EventQueue queue;
    std::vector<sim::NodeTag> tags;
    for (const char* name : {"n0", "n1", "n2"}) {
      tags.push_back(queue.internNodeTag(name));
    }
    obs::ParallelismProfiler profiler;
    profiler.setLookahead(2 * sim::kMillisecond);
    profiler.attach(queue);
    for (int i = 0; i < 300; ++i) {
      const sim::NodeTag tag = tags[static_cast<std::size_t>(i) % 3];
      queue.schedule(i * 37 * sim::kMicrosecond, "test", tag, [] {});
    }
    queue.schedule(1, "test", [] {});  // one unattributed event
    queue.run();
    std::ostringstream os;
    obs::ParallelismProfiler::writeJson(os, profiler.analyze({2, 4, 8, 16}));
    if (round == 0) {
      first = os.str();
      CHECK(!first.empty());
    } else {
      CHECK(os.str() == first);
    }
  }
  return 0;
}

int selfTest() {
  if (int rc = selfTestBalanced()) return rc;
  if (int rc = selfTestCrossNode()) return rc;
  if (int rc = selfTestDeterminism()) return rc;
  std::cout << "vini_profile: self-test OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--self-test") return selfTest();
  if (args[0] != "run") return usage();

  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  std::uint64_t seed = 4711;
  int seconds = smoke ? 2 : 10;
  int flows = smoke ? 4 : 8;
  std::string out_path = "PROFILE_report.json";
  sim::QueueImpl queue_impl = sim::QueueImpl::kHeap;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](const char* name) -> std::string {
      if (++i >= args.size()) {
        std::cerr << "vini_profile: " << name << " needs a value\n";
        std::exit(2);
      }
      return args[i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value("--seed").c_str(), nullptr, 10);
    } else if (arg == "--seconds") {
      seconds = std::atoi(value("--seconds").c_str());
    } else if (arg == "--flows") {
      flows = std::atoi(value("--flows").c_str());
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--queue") {
      const std::string which = value("--queue");
      if (which == "heap") {
        queue_impl = sim::QueueImpl::kHeap;
      } else if (which == "calendar") {
        queue_impl = sim::QueueImpl::kCalendar;
      } else {
        std::cerr << "vini_profile: unknown --queue '" << which << "'\n";
        return 2;
      }
    } else {
      return usage();
    }
  }

  try {
    return cmdRun(seed, seconds, flows, out_path, queue_impl);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
