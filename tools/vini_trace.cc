// vini_trace: offline dump/filter for VTRC packet-trace binaries.
//
// The simulator exports PacketTracer rings with writeBinary(); this tool
// turns those dumps back into human-readable CSV (tcpdump -r, in spirit),
// prints per-event summaries, and self-tests the binary round trip so CI
// can gate on the format staying parseable.
//
// Usage:
//   vini_trace dump <trace.vtrc> [--event NAME] [--node NAME]
//                                [--link NAME] [--flow N]
//                                [--component NAME] [--from NS] [--to NS]
//   vini_trace info <trace.vtrc>
//   vini_trace --self-test
//
// Filters accept both "--key value" and "--key=value".  --component
// selects by the layer that logged the event (tcpip.host or phys.link);
// --from/--to bound the virtual-time window in nanoseconds (inclusive).

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "packet/ip_address.h"

namespace {

using vini::obs::PacketTracer;
using vini::obs::TraceEvent;
using vini::obs::TraceRecord;
using vini::obs::kTraceEventKinds;
using vini::obs::traceEventName;

int usage() {
  std::cerr << "usage: vini_trace dump <trace.vtrc> [--event NAME] "
               "[--node NAME] [--link NAME] [--flow N]\n"
               "                 [--component NAME] [--from NS] [--to NS]\n"
               "       vini_trace info <trace.vtrc>\n"
               "       vini_trace --self-test\n";
  return 2;
}

/// The layer that logged an event kind: host-stack lifecycle events vs
/// physical-link queue/wire events.
const char* componentOf(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kIngress:
    case TraceEvent::kDeliver:
    case TraceEvent::kForwardDecision:
    case TraceEvent::kSocketDrop:
      return "tcpip.host";
    case TraceEvent::kEnqueue:
    case TraceEvent::kQueueDrop:
    case TraceEvent::kSerializeStart:
    case TraceEvent::kLossDrop:
    case TraceEvent::kDownDrop:
      return "phys.link";
  }
  return "-";
}

std::optional<TraceEvent> parseEvent(const std::string& name) {
  for (std::size_t i = 0; i < kTraceEventKinds; ++i) {
    const auto ev = static_cast<TraceEvent>(i);
    if (name == traceEventName(ev)) return ev;
  }
  return std::nullopt;
}

std::string nameOf(const std::vector<std::string>& table, std::int16_t id) {
  if (id < 0 || static_cast<std::size_t>(id) >= table.size()) return "-";
  return table[static_cast<std::size_t>(id)];
}

struct Filter {
  std::optional<TraceEvent> event;
  std::optional<std::string> node;
  std::optional<std::string> link;
  std::optional<std::uint64_t> flow;
  std::optional<std::string> component;
  std::optional<std::int64_t> from;
  std::optional<std::int64_t> to;

  bool matches(const TraceRecord& rec,
               const PacketTracer::BinaryDump& dump) const {
    if (event && rec.event != *event) return false;
    if (node && nameOf(dump.node_names, rec.node) != *node) return false;
    if (link && nameOf(dump.link_names, rec.link) != *link) return false;
    if (flow && rec.flow != *flow) return false;
    if (component && componentOf(rec.event) != *component) return false;
    if (from && rec.t < *from) return false;
    if (to && rec.t > *to) return false;
    return true;
  }
};

PacketTracer::BinaryDump load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vini_trace: cannot open " + path);
  return PacketTracer::readBinary(in);
}

int cmdDump(const std::string& path, const Filter& filter) {
  const auto dump = load(path);
  std::cout << "t_ns,event,node,link,src,dst,flow,seq,bytes\n";
  for (const auto& rec : dump.records) {
    if (!filter.matches(rec, dump)) continue;
    std::cout << rec.t << ',' << traceEventName(rec.event) << ','
              << nameOf(dump.node_names, rec.node) << ','
              << nameOf(dump.link_names, rec.link) << ','
              << vini::packet::IpAddress(rec.src).str() << ','
              << vini::packet::IpAddress(rec.dst).str() << ',' << rec.flow
              << ',' << rec.seq << ',' << rec.bytes << '\n';
  }
  return 0;
}

int cmdInfo(const std::string& path) {
  const auto dump = load(path);
  std::uint64_t counts[kTraceEventKinds] = {};
  std::uint64_t bytes = 0;
  for (const auto& rec : dump.records) {
    ++counts[static_cast<std::size_t>(rec.event)];
    bytes += rec.bytes;
  }
  std::cout << "records: " << dump.records.size() << "\n"
            << "nodes:   " << dump.node_names.size() << "\n"
            << "links:   " << dump.link_names.size() << "\n"
            << "bytes:   " << bytes << "\n";
  for (std::size_t i = 0; i < kTraceEventKinds; ++i) {
    if (counts[i] == 0) continue;
    std::cout << "  " << traceEventName(static_cast<TraceEvent>(i)) << ": "
              << counts[i] << "\n";
  }
  if (!dump.records.empty()) {
    std::cout << "span_ns: " << dump.records.front().t << " .. "
              << dump.records.back().t << "\n";
  }
  return 0;
}

// -- Self-test ----------------------------------------------------------------

#define CHECK(cond)                                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "vini_trace: self-test FAILED at " << __FILE__ << ':' \
                << __LINE__ << ": " #cond "\n";                          \
      return 1;                                                          \
    }                                                                    \
  } while (0)

int selfTest() {
  // Round trip: a small trace with interned names survives
  // writeBinary/readBinary bit-for-bit.
  PacketTracer tracer(8);
  const std::int16_t denver = tracer.internNode("Denver");
  const std::int16_t link = tracer.internLink("Denver-KansasCity/ab");
  CHECK(tracer.internNode("Denver") == denver);  // idempotent interning

  TraceRecord rec;
  rec.t = 41014;
  rec.event = TraceEvent::kEnqueue;
  rec.node = denver;
  rec.link = link;
  rec.src = 0x0a000001;
  rec.dst = 0x0a000002;
  rec.flow = 7;
  rec.seq = 1;
  rec.bytes = 1538;
  tracer.record(rec);
  rec.t = 82028;
  rec.event = TraceEvent::kQueueDrop;
  rec.seq = 2;
  tracer.record(rec);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  tracer.writeBinary(buf);
  const auto dump = PacketTracer::readBinary(buf);
  CHECK(dump.records.size() == 2);
  CHECK(dump.records[0].t == 41014);
  CHECK(dump.records[0].event == TraceEvent::kEnqueue);
  CHECK(dump.records[1].event == TraceEvent::kQueueDrop);
  CHECK(dump.records[1].seq == 2);
  CHECK(dump.records[0].bytes == 1538);
  CHECK(dump.node_names.size() == 1 && dump.node_names[0] == "Denver");
  CHECK(dump.link_names.size() == 1 &&
        dump.link_names[0] == "Denver-KansasCity/ab");

  // Ring overflow: totals keep counting past capacity; the ring holds the
  // newest `capacity` records.
  PacketTracer small(4);
  for (int i = 0; i < 10; ++i) {
    TraceRecord r;
    r.t = i;
    r.event = TraceEvent::kIngress;
    small.record(r);
  }
  CHECK(small.totalRecorded() == 10);
  CHECK(small.size() == 4);
  CHECK(small.wrapped());
  CHECK(small.eventCount(TraceEvent::kIngress) == 10);
  const auto tail = small.snapshot();
  CHECK(tail.size() == 4 && tail.front().t == 6 && tail.back().t == 9);

  // Component/time-window filters partition the event kinds.
  CHECK(std::string(componentOf(TraceEvent::kIngress)) == "tcpip.host");
  CHECK(std::string(componentOf(TraceEvent::kDeliver)) == "tcpip.host");
  CHECK(std::string(componentOf(TraceEvent::kEnqueue)) == "phys.link");
  CHECK(std::string(componentOf(TraceEvent::kQueueDrop)) == "phys.link");
  {
    std::stringstream round(std::ios::in | std::ios::out | std::ios::binary);
    tracer.writeBinary(round);
    const auto d = PacketTracer::readBinary(round);
    Filter f;
    f.component = "phys.link";
    f.from = 50000;
    CHECK(f.matches(d.records[1], d));   // kQueueDrop at t=82028
    CHECK(!f.matches(d.records[0], d));  // kEnqueue at t=41014: too early
    f.to = 60000;
    CHECK(!f.matches(d.records[1], d));  // now past the window
  }

  // Malformed input is rejected, not misparsed.
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "NOPE";
  bool threw = false;
  try {
    PacketTracer::readBinary(bad);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);

  std::cout << "vini_trace: self-test OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--self-test") return selfTest();
  if (args.size() < 2) return usage();

  const std::string& cmd = args[0];
  const std::string& path = args[1];
  try {
    if (cmd == "info") return cmdInfo(path);
    if (cmd != "dump") return usage();

    Filter filter;
    for (std::size_t i = 2; i < args.size(); ++i) {
      // Accept both "--key value" and "--key=value".
      std::string key = args[i];
      std::string value;
      if (const auto eq = key.find('='); eq != std::string::npos) {
        value = key.substr(eq + 1);
        key.resize(eq);
      } else {
        if (i + 1 >= args.size()) return usage();
        value = args[++i];
      }
      if (key == "--event") {
        filter.event = parseEvent(value);
        if (!filter.event) {
          std::cerr << "vini_trace: unknown event '" << value << "'\n";
          return 2;
        }
      } else if (key == "--node") {
        filter.node = value;
      } else if (key == "--link") {
        filter.link = value;
      } else if (key == "--flow") {
        filter.flow = std::stoull(value);
      } else if (key == "--component") {
        if (value != "tcpip.host" && value != "phys.link") {
          std::cerr << "vini_trace: unknown component '" << value
                    << "' (expected tcpip.host or phys.link)\n";
          return 2;
        }
        filter.component = value;
      } else if (key == "--from") {
        filter.from = std::stoll(value);
      } else if (key == "--to") {
        filter.to = std::stoll(value);
      } else {
        return usage();
      }
    }
    return cmdDump(path, filter);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
