// vini_srclint: lint the C++ source tree for determinism and
// concurrency-readiness hazards (V2xx check codes) ahead of the parallel
// sharded event engine.
//
//   vini_srclint [options] [subdir...]
//
// Scans every .h/.cc under <root>/<subdir> (default subdirs: src tools)
// and reports V2xx findings — see src/check/srclint.h for the catalogue.
// Accepted findings live in a baseline file of justified suppressions;
// the gate fails on any unbaselined error and on any stale entry.
//
//   vini_srclint --root . --baseline examples/specs/srclint.baseline
//
// Options:
//   --root <dir>            tree root to scan (default ".")
//   --baseline <file>       enforce a baseline of justified suppressions
//   --write-baseline <file> emit a baseline covering current findings
//                           (justifications left as TODO) and exit
//   --quiet                 print only the summary line
//   --self-test             run the built-in rule fixtures and exit
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/diagnostic.h"
#include "check/srclint.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: vini_srclint [--root <dir>] [--baseline <file>]\n"
        "                    [--write-baseline <file>] [--quiet]\n"
        "                    [--self-test] [subdir...]\n"
        "\n"
        "Scans .h/.cc files for determinism/concurrency hazards (V2xx).\n"
        "Default subdirs: src tools.  Exits 1 on unbaselined errors or\n"
        "stale baseline entries.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  bool quiet = false;
  bool self_test = false;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "vini_srclint: --root needs a value\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "vini_srclint: --baseline needs a value\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) {
        std::cerr << "vini_srclint: --write-baseline needs a value\n";
        return 2;
      }
      write_baseline_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vini_srclint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }

  if (self_test) {
    const bool ok = vini::check::srclintSelfTest(std::cerr);
    std::cerr << "vini_srclint: self-test " << (ok ? "passed" : "FAILED")
              << "\n";
    return ok ? 0 : 1;
  }

  if (subdirs.empty()) subdirs = {"src", "tools"};

  std::vector<vini::check::SrcFinding> findings;
  try {
    findings = vini::check::lintTree(root, subdirs);
  } catch (const std::exception& e) {
    std::cerr << "vini_srclint: scan failed: " << e.what() << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "vini_srclint: cannot write '" << write_baseline_path
                << "'\n";
      return 2;
    }
    out << vini::check::emitBaseline(findings);
    std::cerr << "vini_srclint: wrote baseline for " << findings.size()
              << " finding(s) to " << write_baseline_path
              << " (fill in the justifications)\n";
    return 0;
  }

  vini::check::Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "vini_srclint: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      baseline = vini::check::parseBaseline(text);
    } catch (const std::exception& e) {
      std::cerr << "vini_srclint: " << e.what() << "\n";
      return 2;
    }
  }

  const vini::check::BaselineResult result =
      vini::check::applyBaseline(findings, baseline);

  vini::check::Report report;
  vini::check::toReport(result.unbaselined, report);
  if (!quiet && !report.empty()) std::cerr << report.format();
  if (!quiet) {
    for (const auto& entry : result.stale) {
      std::cerr << "stale baseline entry: " << entry.code << " " << entry.path
                << " (no longer reported — remove it)\n";
    }
  }

  const std::size_t errors = report.countErrors();
  const std::size_t warnings = report.size() - errors;
  std::cerr << "vini_srclint: " << errors << " error(s), " << warnings
            << " warning(s), " << result.suppressed.size()
            << " baselined, " << result.stale.size() << " stale\n";
  return (report.hasErrors() || !result.stale.empty()) ? 1 : 0;
}
