// vini_lint: lint experiment specs before they touch the substrate.
//
// Validates the three file formats users author — router configurations
// (.conf, the rcc-style format of topo/router_config.h), experiment
// scripts (.exp, topo/experiment_spec.h), and fault schedules (.trace,
// fault/fault.h — a strict superset of the legacy link up/down trace of
// topo/failure_trace.h) — and exits nonzero if any error-severity
// diagnostic is found, so it can gate CI.
//
//   vini_lint [options] <file>...
//
// A .conf file defines the reference topology for every script/trace
// that follows it on the command line, so link references resolve.
//
//   vini_lint examples/specs/abilene.conf examples/specs/denver_failover.exp
//
// Options:
//   --horizon <seconds>   flag actions/events past this time (V012)
//   --no-iias             the experiment has no IIAS overlay (V014)
//   --no-phys             the experiment has no substrate (V014)
//   --quiet               print only the summary line
//
// See src/check/checkers.h for the full check-code catalogue (V0xx
// static checks, V11x fault-schedule checks).
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "check/diagnostic.h"
#include "fault/fault.h"
#include "topo/experiment_spec.h"
#include "topo/failure_trace.h"
#include "topo/router_config.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: vini_lint [--horizon <seconds>] [--no-iias] [--no-phys]\n"
        "                 [--quiet] <file.conf|file.exp|file.trace>...\n"
        "\n"
        "Lints VINI experiment specifications; exits 1 if any error is\n"
        "found.  A .conf topology applies to the files that follow it.\n";
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  double horizon_seconds = 0.0;
  bool has_iias = true;
  bool has_phys = true;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--horizon") {
      if (i + 1 >= argc) {
        std::cerr << "vini_lint: --horizon needs a value\n";
        return 2;
      }
      try {
        horizon_seconds = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "vini_lint: bad --horizon value '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--no-iias") {
      has_iias = false;
    } else if (arg == "--no-phys") {
      has_phys = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vini_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage(std::cerr);
    return 2;
  }

  vini::check::Report report;
  // The most recent topology; scripts and traces resolve against it.
  std::optional<vini::core::TopologySpec> topology;

  for (const std::string& path : files) {
    const auto text = readFile(path);
    if (!text) {
      report.error("V099", path, "cannot read file");
      continue;
    }
    if (endsWith(path, ".conf")) {
      try {
        vini::topo::ParsedConfigs parsed = vini::topo::parseRouterConfigs(*text);
        for (const auto& fault : parsed.faults) {
          report.warning("V098", path, fault.message);
        }
        vini::check::checkTopologySpec(parsed.topology, report);
        topology = std::move(parsed.topology);
      } catch (const std::exception& e) {
        report.error("V099", path, e.what());
      }
    } else if (endsWith(path, ".exp") || endsWith(path, ".script")) {
      try {
        const auto actions = vini::topo::parseExperimentScript(*text);
        vini::check::ScriptContext context;
        context.topology = topology ? &*topology : nullptr;
        context.has_iias = has_iias;
        context.has_phys = has_phys;
        context.horizon_seconds = horizon_seconds;
        vini::check::checkExperimentScript(actions, context, report);
      } catch (const std::exception& e) {
        report.error("V099", path, e.what());
      }
    } else if (endsWith(path, ".trace")) {
      try {
        // The fault grammar is a strict superset of the legacy link
        // trace; plain up/down traces keep their V02x codes.
        const auto schedule = vini::fault::parseFaultSchedule(*text);
        if (schedule.linkEventsOnly()) {
          vini::check::checkLinkTrace(schedule.asLinkEvents(), report,
                                      topology ? &*topology : nullptr);
        } else {
          vini::check::checkFaultSchedule(schedule, report,
                                          topology ? &*topology : nullptr);
        }
      } catch (const std::exception& e) {
        report.error("V099", path, e.what());
      }
    } else {
      report.error("V099", path,
                   "unknown file type (expected .conf, .exp, or .trace)");
    }
  }

  if (!quiet && !report.empty()) std::cerr << report.format();
  const std::size_t errors = report.countErrors();
  const std::size_t warnings = report.size() - errors;
  std::cerr << "vini_lint: " << files.size() << " file(s), " << errors
            << " error(s), " << warnings << " warning(s)\n";
  return report.hasErrors() ? 1 : 0;
}
