// vini_timeline: export and inspect the unified observability timeline.
//
// Runs a canned, fully seeded fig8-style scenario (Abilene mirror, ping
// Washington -> Seattle, Denver-KansasCity failed and restored while
// OSPF reconverges) with span tracing, the control-plane timeline, and
// the metric sampler armed, then exports what they captured:
//
//   vini_timeline export    [--seed N] [--out BASE] [--queue heap|calendar]
//                           [--threads N]
//       BASE.json        Chrome trace-event JSON (Perfetto-loadable)
//       BASE.spans.csv   completed spans in close order
//       BASE.timeline.csv control-plane instants/durations
//       BASE.series.csv  sampled metric series
//   vini_timeline decompose [--seed N] [--trace N]
//       per-hop latency breakdown of one delivered trace (default: the
//       first trace whose root span closed delivered)
//   vini_timeline validate <file.json>
//       parse the JSON and check per-track timestamp monotonicity
//   vini_timeline --self-test
//
// The scenario is deterministic: the same --seed produces byte-identical
// exports, which the CI timeline stage enforces with a double-run diff —
// and across both event-queue implementations (--queue), which the
// engine-bench stage enforces with a heap-vs-calendar diff.  With
// --threads N >= 1 the run uses the sharded engine, whose exports are
// byte-identical across every N (the CI shard-determinism stage diffs
// 1 vs multi-thread exports); --threads 0 is the classic serial engine.
// VINI_SMOKE=1 shrinks the run for fast gating.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/ping.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "packet/ip_address.h"
#include "topo/worlds.h"

namespace {

using namespace vini;

int usage() {
  std::cerr << "usage: vini_timeline export    [--seed N] [--out BASE]"
               " [--queue heap|calendar] [--threads N]\n"
               "       vini_timeline decompose [--seed N] [--trace N]\n"
               "       vini_timeline validate <file.json>\n"
               "       vini_timeline --self-test\n";
  return 2;
}

// -- Canned scenario ----------------------------------------------------------

struct ScenarioResult {
  std::unique_ptr<topo::World> world;
  std::vector<sim::Duration> rtts;  // app-recorded RTTs, probe order
};

/// Fig8 in miniature: converge, ping across the overlay, fail the
/// Denver-KansasCity virtual link mid-run, restore it, keep pinging.
/// Everything the obs layer captures flows from this one run.
ScenarioResult runScenario(std::uint64_t seed, obs::ScopedObs& scope,
                           sim::QueueImpl queue_impl = sim::QueueImpl::kHeap,
                           int threads = 0) {
  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  topo::WorldOptions options;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  options.contention = topo::kPlanetLabContention;
  options.seed = seed;
  options.queue_impl = queue_impl;
  options.threads = threads;
  ScenarioResult result;
  result.world = topo::makeAbileneWorld(options);
  topo::World& world = *result.world;
  if (!world.runUntilConverged(180 * sim::kSecond)) {
    throw std::runtime_error("vini_timeline: world did not converge");
  }
  const sim::Time t0 = world.queue.now();

  scope.sampler().setPeriod(sim::kSecond / 2);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("app.ping", "Washington", "last_rtt_ms",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().watch("app.ping", "Washington", "tx_probes",
                        obs::MetricSampler::Mode::kEveryTick);
  scope.sampler().attach(world.queue);

  app::Pinger::Options popt;
  popt.count = smoke ? 16 : 44;
  popt.flood = false;
  popt.interval = sim::kSecond / 2;
  popt.source = world.tapOf("Washington");
  app::Pinger pinger(world.stack("Washington"), world.tapOf("Seattle"), popt);
  pinger.on_reply = [&result](std::uint64_t, sim::Duration rtt) {
    result.rtts.push_back(rtt);
  };

  const sim::Duration fail_at = (smoke ? 3 : 5) * sim::kSecond;
  const sim::Duration restore_at = (smoke ? 6 : 16) * sim::kSecond;
  const sim::Duration run_for = (smoke ? 9 : 23) * sim::kSecond;
  world.schedule.at(t0 + fail_at, "fail Denver-KansasCity", [&world] {
    world.iias->failLink("Denver", "KansasCity");
  });
  world.schedule.at(t0 + restore_at, "restore Denver-KansasCity", [&world] {
    world.iias->restoreLink("Denver", "KansasCity");
  });
  pinger.start();
  world.queue.runUntil(t0 + run_for);
  scope.sampler().detach();
  return result;
}

int cmdExport(std::uint64_t seed, const std::string& base,
              sim::QueueImpl queue_impl, int threads) {
  obs::ScopedObs scope;
  ScenarioResult result = runScenario(seed, scope, queue_impl, threads);
  // Sharded runs buffer ordered-stream records per worker lane; fold
  // them back (deterministic merge) before anything reads or exports.
  scope.obs().foldShardLanes();
  {
    std::ofstream out(base + ".json");
    obs::writeChromeTrace(out, scope.spans(), scope.timeline(),
                          scope.sampler());
  }
  {
    std::ofstream out(base + ".spans.csv");
    scope.spans().writeCsv(out);
  }
  {
    std::ofstream out(base + ".timeline.csv");
    scope.timeline().writeCsv(out);
  }
  {
    std::ofstream out(base + ".series.csv");
    scope.sampler().writeCsv(out);
  }
  std::printf("vini_timeline: seed %llu: %llu spans (%llu delivered, "
              "%llu dropped), %zu timeline events, %zu series\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(scope.spans().closed()),
              static_cast<unsigned long long>(scope.spans().closedDelivered()),
              static_cast<unsigned long long>(scope.spans().closedDropped()),
              scope.timeline().events().size(),
              scope.sampler().series().size());
  std::printf("  wrote %s.json, %s.spans.csv, %s.timeline.csv, "
              "%s.series.csv\n",
              base.c_str(), base.c_str(), base.c_str(), base.c_str());
  return 0;
}

int cmdDecompose(std::uint64_t seed, std::uint64_t trace_id) {
  obs::ScopedObs scope;
  ScenarioResult result = runScenario(seed, scope);
  scope.obs().foldShardLanes();
  const obs::SpanTracker& spans = scope.spans();

  if (trace_id == 0) {
    // Default to the first trace whose root closed delivered.
    for (const auto& rec : spans.records()) {
      if (rec.root && rec.outcome == obs::SpanOutcome::kDelivered) {
        trace_id = rec.trace_id;
        break;
      }
    }
    if (trace_id == 0) {
      std::cerr << "vini_timeline: no delivered trace to decompose\n";
      return 1;
    }
  }

  const auto segments = obs::decomposeTrace(spans, trace_id);
  if (segments.empty()) {
    std::cerr << "vini_timeline: trace " << trace_id
              << " has no completed root span\n";
    return 1;
  }
  obs::SpanRecord root;  // copy: traceSpans() returns a temporary
  for (const auto& rec : spans.traceSpans(trace_id)) {
    if (rec.root) {
      root = rec;
      break;
    }
  }

  std::printf("trace %llu: per-hop latency decomposition\n",
              static_cast<unsigned long long>(trace_id));
  std::printf("  %-22s %-14s %-26s %12s %12s\n", "layer", "node", "link",
              "t_start(us)", "dur(us)");
  sim::Duration sum = 0;
  for (const auto& seg : segments) {
    std::printf("  %-22s %-14s %-26s %12.3f %12.3f\n", seg.layer.c_str(),
                seg.node.c_str(), seg.link.c_str(),
                static_cast<double>(seg.t_start) / 1000.0,
                static_cast<double>(seg.dur) / 1000.0);
    sum += seg.dur;
  }
  const sim::Duration e2e = root.duration();
  std::printf("  sum of segments: %.3f us; end-to-end (root span): %.3f us\n",
              static_cast<double>(sum) / 1000.0,
              static_cast<double>(e2e) / 1000.0);
  if (sum != e2e) {
    std::cerr << "vini_timeline: decomposition does not sum to the root\n";
    return 1;
  }
  // The root span must agree with an app-layer latency measurement: for
  // a ping trace, the root covers send -> reply, i.e. one recorded RTT.
  bool matches_app = false;
  for (const sim::Duration rtt : result.rtts) {
    if (rtt == e2e) {
      matches_app = true;
      break;
    }
  }
  if (matches_app) {
    std::printf("  root span matches an app-layer RTT measurement: yes\n");
  } else if (!result.rtts.empty()) {
    std::cerr << "vini_timeline: root span matches no app-layer RTT\n";
    return 1;
  }
  return 0;
}

// -- validate: minimal JSON parser + per-track monotonicity -------------------

/// Parses one JSON document (objects, arrays, strings, numbers, bools,
/// null) and records (tid, ts) for every object directly inside the
/// top-level "traceEvents" array.  Throws std::runtime_error with a
/// byte offset on malformed input.
class JsonValidator {
 public:
  struct Event {
    long long tid = -1;
    double ts = -1.0;
    bool has_tid = false;
    bool has_ts = false;
  };

  explicit JsonValidator(const std::string& text) : s_(text) {}

  std::vector<Event> run() {
    ws();
    value(/*events_depth=*/0);
    ws();
    if (i_ != s_.size()) fail("trailing data");
    return events_;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("invalid JSON at byte " + std::to_string(i_) +
                             ": " + what);
  }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  void literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(i_, n, word) != 0) fail("bad literal");
    i_ += n;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("short \\u escape");
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[i_ + k]))) {
              fail("bad \\u escape");
            }
          }
          i_ += 4;
          out += '?';  // only validity matters here, not the code point
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
      ++i_;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        fail("bad fraction");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        fail("bad exponent");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
    }
    return std::strtod(s_.c_str() + start, nullptr);
  }

  /// events_depth: 0 = outside, 1 = the traceEvents array itself,
  /// 2 = one event object (capture tid/ts), >2 = nested inside one.
  void value(int events_depth) {
    switch (peek()) {
      case '{': object(events_depth); break;
      case '[': array(events_depth); break;
      case '"': string(); break;
      case 't': literal("true"); break;
      case 'f': literal("false"); break;
      case 'n': literal("null"); break;
      default: number(); break;
    }
  }

  void object(int events_depth) {
    expect('{');
    ws();
    Event ev;
    const bool capture = events_depth == 2;
    if (peek() == '}') {
      ++i_;
    } else {
      while (true) {
        ws();
        const std::string key = string();
        ws();
        expect(':');
        ws();
        if (events_depth == 0 && key == "traceEvents" && peek() == '[') {
          array(1);
        } else if (capture && (key == "tid" || key == "ts")) {
          const double v = number();
          if (key == "tid") {
            ev.tid = static_cast<long long>(v);
            ev.has_tid = true;
          } else {
            ev.ts = v;
            ev.has_ts = true;
          }
        } else {
          value(events_depth > 0 ? events_depth + 1 : 0);
        }
        ws();
        if (peek() == ',') {
          ++i_;
          continue;
        }
        expect('}');
        break;
      }
    }
    if (capture) events_.push_back(ev);
  }

  void array(int events_depth) {
    expect('[');
    ws();
    if (peek() == ']') {
      ++i_;
      return;
    }
    while (true) {
      ws();
      value(events_depth > 0 ? events_depth + 1 : 0);
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::vector<Event> events_;
};

/// Parse and check per-tid timestamp monotonicity; returns a diagnostic
/// count string via stdout, nonzero on any violation.
int validateText(const std::string& text, const std::string& what) {
  std::vector<JsonValidator::Event> events;
  try {
    events = JsonValidator(text).run();
  } catch (const std::exception& e) {
    std::cerr << "vini_timeline: " << what << ": " << e.what() << "\n";
    return 1;
  }
  std::size_t timed = 0;
  std::map<long long, double> last_ts;
  for (const auto& ev : events) {
    if (!ev.has_ts) continue;  // metadata records carry no timestamp
    if (!ev.has_tid) {
      std::cerr << "vini_timeline: " << what << ": timed event without tid\n";
      return 1;
    }
    ++timed;
    auto [it, inserted] = last_ts.emplace(ev.tid, ev.ts);
    if (!inserted) {
      if (ev.ts < it->second) {
        std::cerr << "vini_timeline: " << what << ": timestamps on tid "
                  << ev.tid << " go backwards (" << it->second << " -> "
                  << ev.ts << ")\n";
        return 1;
      }
      it->second = ev.ts;
    }
  }
  std::printf("vini_timeline: %s: valid JSON, %zu events (%zu timed) on "
              "%zu tracks, per-track timestamps monotonic\n",
              what.c_str(), events.size(), timed, last_ts.size());
  return 0;
}

int cmdValidate(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "vini_timeline: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return validateText(buf.str(), path);
}

// -- Self-test ---------------------------------------------------------------

#define CHECK(cond)                                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::cerr << "vini_timeline: self-test FAILED at " << __FILE__ << ':' \
                << __LINE__ << ": " #cond "\n";                             \
      return 1;                                                             \
    }                                                                       \
  } while (0)

int selfTest() {
  // Span conservation and decomposition on a hand-built trace:
  // root [100, 1100], hops [150,400] and [380,900] (overlapping), so the
  // decomposition must clip the overlap and fill the gaps.
  obs::SpanTracker spans;
  const std::int16_t app = spans.intern("app.ping");
  const std::int16_t link = spans.intern("phys.link");
  const std::int16_t fwd = spans.intern("tcpip.kernel_fwd");
  const std::uint64_t trace = spans.newTraceId();
  CHECK(trace == 1);  // ids are dense from 1

  spans.openRoot(trace, app, 100);
  const std::uint32_t h1 = spans.open(trace, link, 150);
  const std::uint32_t h2 = spans.open(trace, fwd, 380);
  spans.close(h1, 400);
  spans.close(h2, 900);
  spans.closeRoot(trace, 1100, obs::SpanOutcome::kDelivered);
  // The root counts in opened/closed alongside the two hop spans.
  CHECK(spans.opened() == 3 && spans.closed() == 3 && spans.stillOpen() == 0);
  CHECK(spans.rootsOpened() == 1 && spans.rootsClosed() == 1);
  CHECK(spans.rootsStillOpen() == 0);

  const auto segs = obs::decomposeTrace(spans, trace);
  // unattributed [100,150) + link [150,400) + fwd [400,900) +
  // unattributed [900,1100).
  CHECK(segs.size() == 4);
  CHECK(segs[0].layer == "unattributed" && segs[0].dur == 50);
  CHECK(segs[1].layer == "phys.link" && segs[1].dur == 250);
  CHECK(segs[2].layer == "tcpip.kernel_fwd" && segs[2].t_start == 400 &&
        segs[2].dur == 500);
  CHECK(segs[3].layer == "unattributed" && segs[3].dur == 200);
  sim::Duration sum = 0;
  for (const auto& seg : segs) sum += seg.dur;
  CHECK(sum == 1000);  // equals the root duration by construction

  // A second closeRoot is a counted no-op.
  spans.closeRoot(trace, 1200, obs::SpanOutcome::kDropped, spans.intern("x"));
  CHECK(spans.rootsClosed() == 1 && spans.lateRootCloses() == 1);

  // Decomposing an unknown trace returns empty, not garbage.
  CHECK(obs::decomposeTrace(spans, 999).empty());

  // Timeline events intern their names and survive export.
  obs::Timeline timeline;
  timeline.instant("ospf/1.0.0.1", "spf_run", 500);
  timeline.duration("supervisor/Denver/ospf", "down", 600, 300);
  CHECK(timeline.events().size() == 2);
  CHECK(timeline.trackNames().size() == 2 && timeline.labelNames().size() == 2);

  // Sampler: counter series via the advance hook, kOnChange suppression.
  obs::MetricsRegistry registry;
  obs::Counter& tx = registry.counter("app.ping", "W", "tx");
  obs::MetricSampler sampler;
  sampler.bindRegistry(&registry);
  sampler.setPeriod(100);
  sampler.watch("app.ping", "W", "tx", obs::MetricSampler::Mode::kOnChange);
  tx.inc();
  sampler.onAdvance(0, 250);    // boundaries 100, 200: change then no change
  tx.inc();
  sampler.onAdvance(250, 400);  // boundaries 300, 400: change then no change
  const obs::MetricSampler::Series* series =
      sampler.find("app.ping", "W", "tx");
  CHECK(series != nullptr);
  CHECK(series->points.size() == 2);
  CHECK(series->points[0].t == 100 && series->points[0].value == 1.0);
  CHECK(series->points[1].t == 300 && series->points[1].value == 2.0);

  // Export is valid JSON, per-track monotonic, and deterministic.
  std::ostringstream a;
  obs::writeChromeTrace(a, spans, timeline, sampler);
  std::ostringstream b;
  obs::writeChromeTrace(b, spans, timeline, sampler);
  CHECK(a.str() == b.str());
  CHECK(validateText(a.str(), "self-test export") == 0);

  // The validator actually rejects malformed input.
  const char* bad[] = {"{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"\\q\""};
  for (const char* text : bad) {
    bool failed = false;
    try {
      JsonValidator(std::string(text)).run();
    } catch (const std::runtime_error&) {
      failed = true;
    }
    CHECK(failed);
  }
  // ...and catches timestamp regressions.
  const std::string backwards =
      "{\"traceEvents\":[{\"tid\":1,\"ts\":5.0},{\"tid\":1,\"ts\":4.0}]}";
  CHECK(validateText(backwards, "regression-check") != 0);

  std::cout << "vini_timeline: self-test OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--self-test") return selfTest();

  const std::string& cmd = args[0];
  std::uint64_t seed = 811;
  std::uint64_t trace = 0;
  std::string base = "vini_timeline";
  std::string path;
  sim::QueueImpl queue_impl = sim::QueueImpl::kHeap;
  int threads = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](const char* name) -> std::string {
      if (++i >= args.size()) {
        std::cerr << "vini_timeline: " << name << " needs a value\n";
        std::exit(2);
      }
      return args[i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value("--seed").c_str(), nullptr, 10);
    } else if (arg == "--out") {
      base = value("--out");
    } else if (arg == "--trace") {
      trace = std::strtoull(value("--trace").c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<int>(
          std::strtol(value("--threads").c_str(), nullptr, 10));
      if (threads < 0) {
        std::cerr << "vini_timeline: --threads must be >= 0\n";
        return 2;
      }
    } else if (arg == "--queue") {
      const std::string which = value("--queue");
      if (which == "heap") {
        queue_impl = sim::QueueImpl::kHeap;
      } else if (which == "calendar") {
        queue_impl = sim::QueueImpl::kCalendar;
      } else {
        std::cerr << "vini_timeline: unknown --queue '" << which << "'\n";
        return 2;
      }
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }

  try {
    if (cmd == "export") return cmdExport(seed, base, queue_impl, threads);
    if (cmd == "decompose") return cmdDecompose(seed, trace);
    if (cmd == "validate") {
      if (path.empty()) return usage();
      return cmdValidate(path);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return usage();
}
