// vini_chaos: seeded chaos campaigns with invariant audits.
//
// Builds one of the ready-made worlds, converges it, then drives it
// through a generated fault storm — links flapping and degrading, nodes
// crashing, routing daemons killed and supervised back to life — and
// audits the chaos invariants (V120-V123, see fault/chaos.h) once the
// storm passes.  Exits nonzero if the world failed to re-converge or
// any invariant was violated, so it can gate CI.
//
// The whole run is seeded: two invocations with the same options print
// byte-identical reports (the CI stage diffs two runs to enforce this).
//
//   vini_chaos [options]
//
// Options:
//   --seed <n>         campaign seed (default 1)
//   --duration <s>     fault-storm length in seconds (default 120)
//   --world <name>     deter | abilene (default abilene)
//   --queue <impl>     heap | calendar event queue (default heap; the
//                      CI stage diffs both to prove impl-independence)
//   --rip              run RIP alongside OSPF on the overlay
//   --migrate          attach a spare substrate node and let the storm
//                      live-migrate routers onto it (V130-V133 audits)
//   --json <path>      write the migration report JSON (CI artifact)
//   --quiet            print only the PASS/FAIL summary line
//
// VINI_SMOKE=1 in the environment shrinks the run (DETER world, 40 s
// storm) so the CI gate stays fast.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "fault/chaos.h"
#include "obs/obs.h"
#include "topo/worlds.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: vini_chaos [--seed <n>] [--duration <s>]\n"
        "                  [--world deter|abilene] [--queue heap|calendar]\n"
        "                  [--rip] [--migrate] [--json <path>] [--quiet]\n"
        "\n"
        "Runs a seeded fault campaign against a ready-made world and\n"
        "audits the chaos invariants; exits 1 on any violation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  double duration_seconds = 120.0;
  std::string world_name = "abilene";
  std::string queue_name = "heap";
  bool enable_rip = false;
  bool migrate = false;
  std::string json_path;
  bool quiet = false;

  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  if (smoke) {
    world_name = "deter";
    duration_seconds = 40.0;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--duration" && i + 1 < argc) {
      try {
        duration_seconds = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "vini_chaos: bad --duration value '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--world" && i + 1 < argc) {
      world_name = argv[++i];
    } else if (arg == "--queue" && i + 1 < argc) {
      queue_name = argv[++i];
    } else if (arg == "--rip") {
      enable_rip = true;
    } else if (arg == "--migrate") {
      migrate = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "vini_chaos: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  // Install instrumentation before the world exists so every channel
  // registers its counters — the V122 conservation audit needs them.
  vini::obs::ScopedObs obs;

  vini::topo::WorldOptions options;
  options.enable_rip = enable_rip;
  options.seed = seed;
  if (queue_name == "heap") {
    options.queue_impl = vini::sim::QueueImpl::kHeap;
  } else if (queue_name == "calendar") {
    options.queue_impl = vini::sim::QueueImpl::kCalendar;
  } else {
    std::cerr << "vini_chaos: unknown queue impl '" << queue_name
              << "' (expected heap or calendar)\n";
    return 2;
  }
  if (migrate) options.spare_nodes = 1;
  std::unique_ptr<vini::topo::World> world;
  if (world_name == "deter") {
    world = vini::topo::makeDeterWorld(options);
  } else if (world_name == "abilene") {
    world = vini::topo::makeAbileneWorld(options);
  } else {
    std::cerr << "vini_chaos: unknown world '" << world_name
              << "' (expected deter or abilene)\n";
    return 2;
  }

  vini::fault::ChaosOptions chaos;
  chaos.seed = seed;
  chaos.duration_seconds = duration_seconds;
  chaos.model = vini::fault::denseCampaignModel(seed);
  chaos.include_migrations = migrate;

  const vini::fault::ChaosReport report =
      vini::fault::runChaosCampaign(*world, chaos);
  if (!quiet) {
    std::cout << report.format();
  } else {
    std::cout << "vini_chaos: seed " << seed << " "
              << (report.passed() ? "PASS" : "FAIL") << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "vini_chaos: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << (report.migration_json.empty() ? std::string("{\"migrations\":[]}\n")
                                          : report.migration_json);
  }
  return report.passed() ? 0 : 1;
}
