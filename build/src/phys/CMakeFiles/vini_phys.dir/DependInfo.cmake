
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/link.cc" "src/phys/CMakeFiles/vini_phys.dir/link.cc.o" "gcc" "src/phys/CMakeFiles/vini_phys.dir/link.cc.o.d"
  "/root/repo/src/phys/network.cc" "src/phys/CMakeFiles/vini_phys.dir/network.cc.o" "gcc" "src/phys/CMakeFiles/vini_phys.dir/network.cc.o.d"
  "/root/repo/src/phys/node.cc" "src/phys/CMakeFiles/vini_phys.dir/node.cc.o" "gcc" "src/phys/CMakeFiles/vini_phys.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
