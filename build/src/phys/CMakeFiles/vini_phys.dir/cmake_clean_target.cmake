file(REMOVE_RECURSE
  "libvini_phys.a"
)
