# Empty dependencies file for vini_phys.
# This may be replaced when dependencies are built.
