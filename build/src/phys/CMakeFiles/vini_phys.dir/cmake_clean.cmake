file(REMOVE_RECURSE
  "CMakeFiles/vini_phys.dir/link.cc.o"
  "CMakeFiles/vini_phys.dir/link.cc.o.d"
  "CMakeFiles/vini_phys.dir/network.cc.o"
  "CMakeFiles/vini_phys.dir/network.cc.o.d"
  "CMakeFiles/vini_phys.dir/node.cc.o"
  "CMakeFiles/vini_phys.dir/node.cc.o.d"
  "libvini_phys.a"
  "libvini_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
