file(REMOVE_RECURSE
  "CMakeFiles/vini_core.dir/embedder.cc.o"
  "CMakeFiles/vini_core.dir/embedder.cc.o.d"
  "CMakeFiles/vini_core.dir/schedule.cc.o"
  "CMakeFiles/vini_core.dir/schedule.cc.o.d"
  "CMakeFiles/vini_core.dir/slice.cc.o"
  "CMakeFiles/vini_core.dir/slice.cc.o.d"
  "CMakeFiles/vini_core.dir/vini.cc.o"
  "CMakeFiles/vini_core.dir/vini.cc.o.d"
  "libvini_core.a"
  "libvini_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
