
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedder.cc" "src/core/CMakeFiles/vini_core.dir/embedder.cc.o" "gcc" "src/core/CMakeFiles/vini_core.dir/embedder.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/vini_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/vini_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/slice.cc" "src/core/CMakeFiles/vini_core.dir/slice.cc.o" "gcc" "src/core/CMakeFiles/vini_core.dir/slice.cc.o.d"
  "/root/repo/src/core/vini.cc" "src/core/CMakeFiles/vini_core.dir/vini.cc.o" "gcc" "src/core/CMakeFiles/vini_core.dir/vini.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/vini_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/xorp/CMakeFiles/vini_xorp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
