# Empty compiler generated dependencies file for vini_core.
# This may be replaced when dependencies are built.
