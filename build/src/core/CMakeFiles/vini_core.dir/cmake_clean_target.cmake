file(REMOVE_RECURSE
  "libvini_core.a"
)
