file(REMOVE_RECURSE
  "libvini_sim.a"
)
