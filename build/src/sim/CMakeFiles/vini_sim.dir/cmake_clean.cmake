file(REMOVE_RECURSE
  "CMakeFiles/vini_sim.dir/event_queue.cc.o"
  "CMakeFiles/vini_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/vini_sim.dir/log.cc.o"
  "CMakeFiles/vini_sim.dir/log.cc.o.d"
  "CMakeFiles/vini_sim.dir/stats.cc.o"
  "CMakeFiles/vini_sim.dir/stats.cc.o.d"
  "libvini_sim.a"
  "libvini_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
