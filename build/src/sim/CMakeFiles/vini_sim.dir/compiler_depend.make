# Empty compiler generated dependencies file for vini_sim.
# This may be replaced when dependencies are built.
