
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/element.cc" "src/click/CMakeFiles/vini_click.dir/element.cc.o" "gcc" "src/click/CMakeFiles/vini_click.dir/element.cc.o.d"
  "/root/repo/src/click/elements.cc" "src/click/CMakeFiles/vini_click.dir/elements.cc.o" "gcc" "src/click/CMakeFiles/vini_click.dir/elements.cc.o.d"
  "/root/repo/src/click/fib.cc" "src/click/CMakeFiles/vini_click.dir/fib.cc.o" "gcc" "src/click/CMakeFiles/vini_click.dir/fib.cc.o.d"
  "/root/repo/src/click/flat_label.cc" "src/click/CMakeFiles/vini_click.dir/flat_label.cc.o" "gcc" "src/click/CMakeFiles/vini_click.dir/flat_label.cc.o.d"
  "/root/repo/src/click/graph.cc" "src/click/CMakeFiles/vini_click.dir/graph.cc.o" "gcc" "src/click/CMakeFiles/vini_click.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpip/CMakeFiles/vini_tcpip.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/vini_phys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
