file(REMOVE_RECURSE
  "libvini_click.a"
)
