file(REMOVE_RECURSE
  "CMakeFiles/vini_click.dir/element.cc.o"
  "CMakeFiles/vini_click.dir/element.cc.o.d"
  "CMakeFiles/vini_click.dir/elements.cc.o"
  "CMakeFiles/vini_click.dir/elements.cc.o.d"
  "CMakeFiles/vini_click.dir/fib.cc.o"
  "CMakeFiles/vini_click.dir/fib.cc.o.d"
  "CMakeFiles/vini_click.dir/flat_label.cc.o"
  "CMakeFiles/vini_click.dir/flat_label.cc.o.d"
  "CMakeFiles/vini_click.dir/graph.cc.o"
  "CMakeFiles/vini_click.dir/graph.cc.o.d"
  "libvini_click.a"
  "libvini_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
