# Empty compiler generated dependencies file for vini_click.
# This may be replaced when dependencies are built.
