file(REMOVE_RECURSE
  "libvini_packet.a"
)
