file(REMOVE_RECURSE
  "CMakeFiles/vini_packet.dir/checksum.cc.o"
  "CMakeFiles/vini_packet.dir/checksum.cc.o.d"
  "CMakeFiles/vini_packet.dir/headers.cc.o"
  "CMakeFiles/vini_packet.dir/headers.cc.o.d"
  "CMakeFiles/vini_packet.dir/ip_address.cc.o"
  "CMakeFiles/vini_packet.dir/ip_address.cc.o.d"
  "CMakeFiles/vini_packet.dir/packet.cc.o"
  "CMakeFiles/vini_packet.dir/packet.cc.o.d"
  "libvini_packet.a"
  "libvini_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
