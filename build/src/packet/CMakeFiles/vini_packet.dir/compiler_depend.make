# Empty compiler generated dependencies file for vini_packet.
# This may be replaced when dependencies are built.
