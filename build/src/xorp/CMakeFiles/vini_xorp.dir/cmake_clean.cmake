file(REMOVE_RECURSE
  "CMakeFiles/vini_xorp.dir/bgp.cc.o"
  "CMakeFiles/vini_xorp.dir/bgp.cc.o.d"
  "CMakeFiles/vini_xorp.dir/ospf.cc.o"
  "CMakeFiles/vini_xorp.dir/ospf.cc.o.d"
  "CMakeFiles/vini_xorp.dir/rib.cc.o"
  "CMakeFiles/vini_xorp.dir/rib.cc.o.d"
  "CMakeFiles/vini_xorp.dir/rip.cc.o"
  "CMakeFiles/vini_xorp.dir/rip.cc.o.d"
  "CMakeFiles/vini_xorp.dir/xorp_instance.cc.o"
  "CMakeFiles/vini_xorp.dir/xorp_instance.cc.o.d"
  "libvini_xorp.a"
  "libvini_xorp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_xorp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
