file(REMOVE_RECURSE
  "libvini_xorp.a"
)
