# Empty compiler generated dependencies file for vini_xorp.
# This may be replaced when dependencies are built.
