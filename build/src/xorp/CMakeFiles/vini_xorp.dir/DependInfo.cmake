
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xorp/bgp.cc" "src/xorp/CMakeFiles/vini_xorp.dir/bgp.cc.o" "gcc" "src/xorp/CMakeFiles/vini_xorp.dir/bgp.cc.o.d"
  "/root/repo/src/xorp/ospf.cc" "src/xorp/CMakeFiles/vini_xorp.dir/ospf.cc.o" "gcc" "src/xorp/CMakeFiles/vini_xorp.dir/ospf.cc.o.d"
  "/root/repo/src/xorp/rib.cc" "src/xorp/CMakeFiles/vini_xorp.dir/rib.cc.o" "gcc" "src/xorp/CMakeFiles/vini_xorp.dir/rib.cc.o.d"
  "/root/repo/src/xorp/rip.cc" "src/xorp/CMakeFiles/vini_xorp.dir/rip.cc.o" "gcc" "src/xorp/CMakeFiles/vini_xorp.dir/rip.cc.o.d"
  "/root/repo/src/xorp/xorp_instance.cc" "src/xorp/CMakeFiles/vini_xorp.dir/xorp_instance.cc.o" "gcc" "src/xorp/CMakeFiles/vini_xorp.dir/xorp_instance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
