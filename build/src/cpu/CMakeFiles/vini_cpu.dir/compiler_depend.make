# Empty compiler generated dependencies file for vini_cpu.
# This may be replaced when dependencies are built.
