file(REMOVE_RECURSE
  "libvini_cpu.a"
)
