file(REMOVE_RECURSE
  "CMakeFiles/vini_cpu.dir/scheduler.cc.o"
  "CMakeFiles/vini_cpu.dir/scheduler.cc.o.d"
  "libvini_cpu.a"
  "libvini_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
