# Empty compiler generated dependencies file for vini_overlay.
# This may be replaced when dependencies are built.
