file(REMOVE_RECURSE
  "libvini_overlay.a"
)
