file(REMOVE_RECURSE
  "CMakeFiles/vini_overlay.dir/iias.cc.o"
  "CMakeFiles/vini_overlay.dir/iias.cc.o.d"
  "CMakeFiles/vini_overlay.dir/iias_router.cc.o"
  "CMakeFiles/vini_overlay.dir/iias_router.cc.o.d"
  "CMakeFiles/vini_overlay.dir/openvpn.cc.o"
  "CMakeFiles/vini_overlay.dir/openvpn.cc.o.d"
  "libvini_overlay.a"
  "libvini_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
