# Empty compiler generated dependencies file for vini_app.
# This may be replaced when dependencies are built.
