file(REMOVE_RECURSE
  "CMakeFiles/vini_app.dir/iperf.cc.o"
  "CMakeFiles/vini_app.dir/iperf.cc.o.d"
  "CMakeFiles/vini_app.dir/ping.cc.o"
  "CMakeFiles/vini_app.dir/ping.cc.o.d"
  "CMakeFiles/vini_app.dir/ron.cc.o"
  "CMakeFiles/vini_app.dir/ron.cc.o.d"
  "CMakeFiles/vini_app.dir/traceroute.cc.o"
  "CMakeFiles/vini_app.dir/traceroute.cc.o.d"
  "CMakeFiles/vini_app.dir/traffic.cc.o"
  "CMakeFiles/vini_app.dir/traffic.cc.o.d"
  "CMakeFiles/vini_app.dir/web.cc.o"
  "CMakeFiles/vini_app.dir/web.cc.o.d"
  "libvini_app.a"
  "libvini_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
