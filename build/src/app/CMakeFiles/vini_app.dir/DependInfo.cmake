
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/iperf.cc" "src/app/CMakeFiles/vini_app.dir/iperf.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/iperf.cc.o.d"
  "/root/repo/src/app/ping.cc" "src/app/CMakeFiles/vini_app.dir/ping.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/ping.cc.o.d"
  "/root/repo/src/app/ron.cc" "src/app/CMakeFiles/vini_app.dir/ron.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/ron.cc.o.d"
  "/root/repo/src/app/traceroute.cc" "src/app/CMakeFiles/vini_app.dir/traceroute.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/traceroute.cc.o.d"
  "/root/repo/src/app/traffic.cc" "src/app/CMakeFiles/vini_app.dir/traffic.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/traffic.cc.o.d"
  "/root/repo/src/app/web.cc" "src/app/CMakeFiles/vini_app.dir/web.cc.o" "gcc" "src/app/CMakeFiles/vini_app.dir/web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcpip/CMakeFiles/vini_tcpip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/vini_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
