file(REMOVE_RECURSE
  "libvini_app.a"
)
