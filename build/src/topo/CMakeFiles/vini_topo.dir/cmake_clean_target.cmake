file(REMOVE_RECURSE
  "libvini_topo.a"
)
