# Empty dependencies file for vini_topo.
# This may be replaced when dependencies are built.
