file(REMOVE_RECURSE
  "CMakeFiles/vini_topo.dir/abilene.cc.o"
  "CMakeFiles/vini_topo.dir/abilene.cc.o.d"
  "CMakeFiles/vini_topo.dir/experiment_spec.cc.o"
  "CMakeFiles/vini_topo.dir/experiment_spec.cc.o.d"
  "CMakeFiles/vini_topo.dir/failure_trace.cc.o"
  "CMakeFiles/vini_topo.dir/failure_trace.cc.o.d"
  "CMakeFiles/vini_topo.dir/router_config.cc.o"
  "CMakeFiles/vini_topo.dir/router_config.cc.o.d"
  "CMakeFiles/vini_topo.dir/worlds.cc.o"
  "CMakeFiles/vini_topo.dir/worlds.cc.o.d"
  "libvini_topo.a"
  "libvini_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
