# Empty compiler generated dependencies file for vini_tcpip.
# This may be replaced when dependencies are built.
