
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpip/host_stack.cc" "src/tcpip/CMakeFiles/vini_tcpip.dir/host_stack.cc.o" "gcc" "src/tcpip/CMakeFiles/vini_tcpip.dir/host_stack.cc.o.d"
  "/root/repo/src/tcpip/routing_table.cc" "src/tcpip/CMakeFiles/vini_tcpip.dir/routing_table.cc.o" "gcc" "src/tcpip/CMakeFiles/vini_tcpip.dir/routing_table.cc.o.d"
  "/root/repo/src/tcpip/tcp.cc" "src/tcpip/CMakeFiles/vini_tcpip.dir/tcp.cc.o" "gcc" "src/tcpip/CMakeFiles/vini_tcpip.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/vini_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
