file(REMOVE_RECURSE
  "libvini_tcpip.a"
)
