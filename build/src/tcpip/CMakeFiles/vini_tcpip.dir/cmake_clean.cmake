file(REMOVE_RECURSE
  "CMakeFiles/vini_tcpip.dir/host_stack.cc.o"
  "CMakeFiles/vini_tcpip.dir/host_stack.cc.o.d"
  "CMakeFiles/vini_tcpip.dir/routing_table.cc.o"
  "CMakeFiles/vini_tcpip.dir/routing_table.cc.o.d"
  "CMakeFiles/vini_tcpip.dir/tcp.cc.o"
  "CMakeFiles/vini_tcpip.dir/tcp.cc.o.d"
  "libvini_tcpip.a"
  "libvini_tcpip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vini_tcpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
