file(REMOVE_RECURSE
  "CMakeFiles/abilene_failover.dir/abilene_failover.cpp.o"
  "CMakeFiles/abilene_failover.dir/abilene_failover.cpp.o.d"
  "abilene_failover"
  "abilene_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abilene_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
