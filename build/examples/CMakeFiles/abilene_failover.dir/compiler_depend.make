# Empty compiler generated dependencies file for abilene_failover.
# This may be replaced when dependencies are built.
