file(REMOVE_RECURSE
  "CMakeFiles/web_via_overlay.dir/web_via_overlay.cpp.o"
  "CMakeFiles/web_via_overlay.dir/web_via_overlay.cpp.o.d"
  "web_via_overlay"
  "web_via_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_via_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
