# Empty compiler generated dependencies file for web_via_overlay.
# This may be replaced when dependencies are built.
