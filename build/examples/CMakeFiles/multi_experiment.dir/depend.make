# Empty dependencies file for multi_experiment.
# This may be replaced when dependencies are built.
