file(REMOVE_RECURSE
  "CMakeFiles/multi_experiment.dir/multi_experiment.cpp.o"
  "CMakeFiles/multi_experiment.dir/multi_experiment.cpp.o.d"
  "multi_experiment"
  "multi_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
