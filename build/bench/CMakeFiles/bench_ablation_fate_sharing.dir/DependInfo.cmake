
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_fate_sharing.cc" "bench/CMakeFiles/bench_ablation_fate_sharing.dir/bench_ablation_fate_sharing.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_fate_sharing.dir/bench_ablation_fate_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/vini_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/vini_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vini_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vini_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xorp/CMakeFiles/vini_xorp.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/vini_click.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpip/CMakeFiles/vini_tcpip.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/vini_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vini_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/vini_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vini_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
