# Empty compiler generated dependencies file for bench_table3_deter_ping.
# This may be replaced when dependencies are built.
