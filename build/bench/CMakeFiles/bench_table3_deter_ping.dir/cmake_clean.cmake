file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_deter_ping.dir/bench_table3_deter_ping.cc.o"
  "CMakeFiles/bench_table3_deter_ping.dir/bench_table3_deter_ping.cc.o.d"
  "bench_table3_deter_ping"
  "bench_table3_deter_ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_deter_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
