# Empty dependencies file for bench_table2_deter_tcp.
# This may be replaced when dependencies are built.
