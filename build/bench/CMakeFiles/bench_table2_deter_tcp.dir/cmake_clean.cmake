file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_deter_tcp.dir/bench_table2_deter_tcp.cc.o"
  "CMakeFiles/bench_table2_deter_tcp.dir/bench_table2_deter_tcp.cc.o.d"
  "bench_table2_deter_tcp"
  "bench_table2_deter_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_deter_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
