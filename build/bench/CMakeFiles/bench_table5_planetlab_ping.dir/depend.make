# Empty dependencies file for bench_table5_planetlab_ping.
# This may be replaced when dependencies are built.
