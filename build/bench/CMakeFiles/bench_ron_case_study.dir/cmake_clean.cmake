file(REMOVE_RECURSE
  "CMakeFiles/bench_ron_case_study.dir/bench_ron_case_study.cc.o"
  "CMakeFiles/bench_ron_case_study.dir/bench_ron_case_study.cc.o.d"
  "bench_ron_case_study"
  "bench_ron_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ron_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
