# Empty dependencies file for bench_ron_case_study.
# This may be replaced when dependencies are built.
