file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rt_priority.dir/bench_ablation_rt_priority.cc.o"
  "CMakeFiles/bench_ablation_rt_priority.dir/bench_ablation_rt_priority.cc.o.d"
  "bench_ablation_rt_priority"
  "bench_ablation_rt_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rt_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
