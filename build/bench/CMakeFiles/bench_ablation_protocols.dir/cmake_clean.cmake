file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_protocols.dir/bench_ablation_protocols.cc.o"
  "CMakeFiles/bench_ablation_protocols.dir/bench_ablation_protocols.cc.o.d"
  "bench_ablation_protocols"
  "bench_ablation_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
