file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_udp_loss.dir/bench_fig6_udp_loss.cc.o"
  "CMakeFiles/bench_fig6_udp_loss.dir/bench_fig6_udp_loss.cc.o.d"
  "bench_fig6_udp_loss"
  "bench_fig6_udp_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_udp_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
