# Empty compiler generated dependencies file for bench_fig6_udp_loss.
# This may be replaced when dependencies are built.
