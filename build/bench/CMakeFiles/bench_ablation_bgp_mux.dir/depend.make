# Empty dependencies file for bench_ablation_bgp_mux.
# This may be replaced when dependencies are built.
