file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_planetlab_tcp.dir/bench_table4_planetlab_tcp.cc.o"
  "CMakeFiles/bench_table4_planetlab_tcp.dir/bench_table4_planetlab_tcp.cc.o.d"
  "bench_table4_planetlab_tcp"
  "bench_table4_planetlab_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_planetlab_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
