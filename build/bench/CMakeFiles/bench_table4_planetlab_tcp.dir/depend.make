# Empty dependencies file for bench_table4_planetlab_tcp.
# This may be replaced when dependencies are built.
