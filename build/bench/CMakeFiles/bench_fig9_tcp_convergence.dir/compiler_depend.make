# Empty compiler generated dependencies file for bench_fig9_tcp_convergence.
# This may be replaced when dependencies are built.
