file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_jitter.dir/bench_table6_jitter.cc.o"
  "CMakeFiles/bench_table6_jitter.dir/bench_table6_jitter.cc.o.d"
  "bench_table6_jitter"
  "bench_table6_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
