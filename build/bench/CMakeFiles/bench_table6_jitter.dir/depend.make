# Empty dependencies file for bench_table6_jitter.
# This may be replaced when dependencies are built.
