file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_upcalls.dir/bench_ablation_upcalls.cc.o"
  "CMakeFiles/bench_ablation_upcalls.dir/bench_ablation_upcalls.cc.o.d"
  "bench_ablation_upcalls"
  "bench_ablation_upcalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_upcalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
