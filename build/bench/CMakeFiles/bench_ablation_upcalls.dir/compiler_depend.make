# Empty compiler generated dependencies file for bench_ablation_upcalls.
# This may be replaced when dependencies are built.
