# Empty dependencies file for openvpn_test.
# This may be replaced when dependencies are built.
