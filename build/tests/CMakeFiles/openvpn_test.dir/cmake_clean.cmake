file(REMOVE_RECURSE
  "CMakeFiles/openvpn_test.dir/openvpn_test.cc.o"
  "CMakeFiles/openvpn_test.dir/openvpn_test.cc.o.d"
  "openvpn_test"
  "openvpn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openvpn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
