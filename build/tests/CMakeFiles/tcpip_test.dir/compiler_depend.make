# Empty compiler generated dependencies file for tcpip_test.
# This may be replaced when dependencies are built.
