file(REMOVE_RECURSE
  "CMakeFiles/tcpip_test.dir/tcpip_test.cc.o"
  "CMakeFiles/tcpip_test.dir/tcpip_test.cc.o.d"
  "tcpip_test"
  "tcpip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
