# Empty dependencies file for ospf_test.
# This may be replaced when dependencies are built.
