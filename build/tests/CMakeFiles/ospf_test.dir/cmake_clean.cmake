file(REMOVE_RECURSE
  "CMakeFiles/ospf_test.dir/ospf_test.cc.o"
  "CMakeFiles/ospf_test.dir/ospf_test.cc.o.d"
  "ospf_test"
  "ospf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ospf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
