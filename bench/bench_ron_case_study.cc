// Case study: evaluating a RON-style overlay service *inside* a VINI
// slice, with an injected failure — the exact experiment the paper's
// introduction says is "challenging (if not impossible)" without an
// infrastructure like VINI:
//
//   "evaluating [RON's] effectiveness requires waiting for network
//    failures to occur 'naturally' ... [researchers need] the ability
//    to inject such failures."  (Section 1)
//
// Setup: IIAS mirrors Abilene; RON nodes run over the slice's tap
// addresses at Washington, New York, Houston, Los Angeles, Denver and
// Seattle.  A 10 pkt/s data stream flows Washington -> Seattle.  At
// t=10 s the Denver-Kansas City virtual link fails (dropped in Click);
// OSPF needs its dead interval + SPF to reroute, but RON's one-hop
// detour (via Los Angeles, whose both legs avoid the dead link) kicks
// in within a few probe rounds.  At t=30 s the link is restored.
#include "app/ron.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct Outcome {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t detoured = 0;
};

Outcome run(bool ron_enabled) {
  topo::WorldOptions options;
  options.contention = 0.0;
  options.seed = 4141;
  auto world = topo::makeAbileneWorld(options);
  world->runUntilConverged(120 * sim::kSecond);
  const sim::Time t0 = world->queue.now();

  const char* members[] = {"Washington", "NewYork",    "Houston",
                           "LosAngeles", "Denver",     "Seattle"};
  app::RonConfig config;
  config.probe_interval = sim::kSecond;
  // Disabling detours turns the node into a plain direct-path sender —
  // the baseline an overlay-less application would experience.
  if (!ron_enabled) config.detour_threshold = 2.0;

  std::vector<std::unique_ptr<app::RonNode>> nodes;
  for (const char* name : members) {
    nodes.push_back(std::make_unique<app::RonNode>(world->stack(name),
                                                   world->tapOf(name), config));
  }
  for (auto& node : nodes) {
    for (const char* name : members) node->addPeer(world->tapOf(name));
    node->start();
  }
  world->queue.runUntil(t0 + 5 * sim::kSecond);  // let probes settle

  app::RonNode& washington = *nodes[0];
  app::RonNode& seattle = *nodes[5];
  const auto seattle_tap = world->tapOf("Seattle");

  world->schedule.at(t0 + 10 * sim::kSecond, "fail", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 30 * sim::kSecond, "restore", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });

  Outcome outcome;
  for (int i = 0; i < 400; ++i) {  // 10 pkt/s for 40 s
    washington.sendData(seattle_tap, 512, static_cast<std::uint64_t>(i));
    ++outcome.sent;
    world->queue.runUntil(world->queue.now() + 100 * sim::kMillisecond);
  }
  world->queue.runUntil(world->queue.now() + 3 * sim::kSecond);
  outcome.delivered = seattle.stats().data_received;
  outcome.detoured = washington.stats().data_sent_detour;
  return outcome;
}

}  // namespace

int main() {
  bench::header("Case study: RON inside a VINI slice, with injected failure",
                "Section 1 motivation");
  std::printf("\n%-24s %8s %10s %10s %14s\n", "application", "sent",
              "delivered", "lost", "via detour");
  for (const bool ron : {false, true}) {
    const Outcome outcome = run(ron);
    std::printf("%-24s %8llu %10llu %10llu %14llu\n",
                ron ? "RON (one-hop detours)" : "direct path only",
                static_cast<unsigned long long>(outcome.sent),
                static_cast<unsigned long long>(outcome.delivered),
                static_cast<unsigned long long>(outcome.sent - outcome.delivered),
                static_cast<unsigned long long>(outcome.detoured));
  }
  bench::note(
      "\nThe direct-path application loses everything from the failure at\n"
      "t=10 s until OSPF reconverges; RON's probes detect the dead path in\n"
      "a few rounds and relay through Los Angeles (both legs avoid the\n"
      "failed fiber), so it loses only the detection window.  The failure\n"
      "was injected, repeatable, and observable — VINI's pitch.");
  return 0;
}
