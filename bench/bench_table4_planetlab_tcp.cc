// Table 4: TCP throughput test on PlanetLab (Chicago -> Washington via
// New York).
//
// Paper:                        Mb/s    stddev    CPU%
//   Network                     90.8     0.53      n/a
//   IIAS on PlanetLab           22.5     4.01      13
//   IIAS on PL-VINI             86.2     0.64      40
//
// The default fair share starves the Click forwarder (and makes results
// noisy); a 25% reservation plus real-time priority recovers nearly the
// underlay's throughput ("a 4X increase in throughput and reduces
// variability by over 80%").
#include "app/iperf.h"
#include "bench_common.h"
#include "planetlab.h"

using namespace vini;
using bench::PlMode;

namespace {

struct Row {
  sim::SampleStats mbps;
  sim::SampleStats cpu;
};

Row runMode(PlMode mode, int runs, sim::Duration duration) {
  Row row;
  for (int run = 0; run < runs; ++run) {
    auto world = bench::makePlanetLabWorld(mode, 5000 + 17 * static_cast<std::uint64_t>(run));
    const auto ends = bench::endpointsFor(mode, *world);

    cpu::Process* ny_click = nullptr;
    if (mode != PlMode::kNetwork) {
      ny_click = &world->router("NewYork")->clickProcess();
      ny_click->resetAccounting();
    }
    auto result = app::runIperfTcp(world->queue, world->stack("Chicago"),
                                   world->stack("Washington"), ends.dst, 5001,
                                   20, duration, {}, ends.src);
    row.mbps.add(result.mbps);
    if (ny_click) {
      row.cpu.add(100.0 * std::min(1.0, static_cast<double>(ny_click->consumedCpu()) /
                                            static_cast<double>(duration)));
    }
  }
  return row;
}

}  // namespace

int main() {
  bench::header("Table 4: TCP throughput test on PlanetLab", "Table 4");
  const int runs = 8;
  const sim::Duration duration = 10 * sim::kSecond;

  std::printf("\n%-22s %8s %8s %6s   |  paper\n", "", "Mb/s", "stddev", "CPU%");
  struct Case {
    PlMode mode;
    const char* paper;
  };
  const Case cases[] = {
      {PlMode::kNetwork, "90.8 / 0.53 / n/a"},
      {PlMode::kIiasDefault, "22.5 / 4.01 / 13"},
      {PlMode::kIiasPlVini, "86.2 / 0.64 / 40"},
  };
  double default_share = 0;
  double pl_vini = 0;
  for (const auto& c : cases) {
    const Row row = runMode(c.mode, runs, duration);
    std::printf("%-22s %8.1f %8.2f %6.0f   |  %s\n", bench::plModeName(c.mode),
                row.mbps.mean(), row.mbps.stddev(), row.cpu.mean(), c.paper);
    if (c.mode == PlMode::kIiasDefault) default_share = row.mbps.mean();
    if (c.mode == PlMode::kIiasPlVini) pl_vini = row.mbps.mean();
  }
  std::printf("\nPL-VINI speedup over default share: measured %.1fx (paper ~3.8x)\n",
              pl_vini / default_share);
  return 0;
}
