// Ablation: running different routing protocols on the same virtual
// network (the Section 7 usage mode: "a network operator could run
// multiple routing protocols in parallel on the same physical
// infrastructure").
//
// Two IIAS slices mirror Abilene simultaneously — one routed by OSPF
// (hello 5 s / dead 10 s), one by RIP (updates every 5 s, timeout 20 s)
// — and the same Denver-Kansas City failure is injected into both.  The
// bench reports each protocol's recovery time for Washington -> Seattle
// reachability.
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;



int main() {
  bench::header("Ablation: OSPF vs RIP convergence on the same failure",
                "Section 7 usage mode");

  auto world = topo::makeAbileneSubstrate([] {
    topo::WorldOptions options;
    options.contention = 0.0;
    options.seed = 2121;
    return options;
  }());
  core::TopologyEmbedder embedder(*world->vini);

  overlay::IiasConfig ospf_config;
  ospf_config.costs = topo::clickCosts();
  ospf_config.ospf.hello_interval = 5 * sim::kSecond;
  ospf_config.ospf.dead_interval = 10 * sim::kSecond;
  ospf_config.socket_buffer = topo::kIiasSocketBuffer;

  overlay::IiasConfig rip_config = ospf_config;
  rip_config.enable_ospf = false;
  rip_config.enable_rip = true;
  rip_config.rip.update_interval = 5 * sim::kSecond;
  rip_config.rip.route_timeout = 20 * sim::kSecond;

  auto ospf_embedding = embedder.embed(topo::abileneMirrorSpec("ospf-slice"));
  overlay::IiasNetwork ospf_net(std::move(ospf_embedding), world->stacks,
                                ospf_config);
  auto rip_embedding = embedder.embed(topo::abileneMirrorSpec("rip-slice"));
  overlay::IiasNetwork rip_net(std::move(rip_embedding), world->stacks,
                               rip_config);
  ospf_net.start();
  rip_net.start();
  world->queue.runUntil(world->queue.now() + 120 * sim::kSecond);

  // Watch Seattle's route to Kansas City: its shortest path is the
  // two-hop Seattle-Denver-KC under both metrics, so the Denver-KC
  // failure forces a reroute in both protocols (Washington-Seattle, by
  // contrast, never crosses Denver-KC under RIP's hop-count metric).
  auto seattle_tap = [&](overlay::IiasNetwork& net) {
    return net.slice().nodeByName("KansasCity")->tapAddress();
  };
  const bool ospf_converged =
      ospf_net.router("Seattle")->xorp().rib().lookup(seattle_tap(ospf_net)).has_value();
  const bool rip_converged =
      rip_net.router("Seattle")->xorp().rib().lookup(seattle_tap(rip_net)).has_value();
  std::printf("\ninitial convergence: OSPF %s, RIP %s\n",
              ospf_converged ? "ok" : "FAILED", rip_converged ? "ok" : "FAILED");

  // Fail the same virtual link in both slices.
  const sim::Time fail_time = world->queue.now();
  ospf_net.failLink("Denver", "KansasCity");
  rip_net.failLink("Denver", "KansasCity");

  // Watch each protocol's route for Seattle flip away from the dead path.
  auto* ospf_wash = ospf_net.router("Seattle");
  auto* rip_wash = rip_net.router("Seattle");
  const auto ospf_metric_before =
      ospf_wash->xorp().rib().lookup(seattle_tap(ospf_net))->metric;
  const auto rip_metric_before =
      rip_wash->xorp().rib().lookup(seattle_tap(rip_net))->metric;

  double ospf_recovery = -1;
  double rip_recovery = -1;
  for (int tick = 0; tick < 1200; ++tick) {
    world->queue.runUntil(fail_time + (tick + 1) * (sim::kSecond / 4));
    if (ospf_recovery < 0) {
      auto route = ospf_wash->xorp().rib().lookup(seattle_tap(ospf_net));
      if (route && route->metric != ospf_metric_before) {
        ospf_recovery = sim::toSeconds(world->queue.now() - fail_time);
      }
    }
    if (rip_recovery < 0) {
      auto route = rip_wash->xorp().rib().lookup(seattle_tap(rip_net));
      if (route && route->metric != rip_metric_before) {
        rip_recovery = sim::toSeconds(world->queue.now() - fail_time);
      }
    }
    if (ospf_recovery >= 0 && rip_recovery >= 0) break;
  }

  std::printf("\n%-8s %22s %22s\n", "", "detection+reroute (s)", "mechanism");
  std::printf("%-8s %22.1f %22s\n", "OSPF", ospf_recovery,
              "dead interval + SPF");
  std::printf("%-8s %22.1f %22s\n", "RIP", rip_recovery,
              "route timeout + DV");
  bench::note(
      "\nOSPF recovers on the order of its 10 s dead interval; RIP needs\n"
      "its (much longer) route timeout plus distance-vector propagation —\n"
      "the trade-off the paper's Section 7 operators would be weighing.");
  return 0;
}
