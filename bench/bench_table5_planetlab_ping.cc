// Table 5: ping results on PlanetLab (units are ms).
//
// Paper:                       min     avg    max    mdev   loss
//   Network                   24.4    24.5   28.2    0.2     0%
//   IIAS on PlanetLab         24.7    27.7   80.9    4.8     0%
//   IIAS on PL-VINI           24.7    25.1   28.6    0.38    0%
//
// Scheduling latency of the un-reserved Click process inflates both the
// mean and (dramatically) the tail; PL-VINI "reduc[es] maximum latency
// by two-thirds and standard deviation by over 90%".
#include "app/ping.h"
#include "bench_common.h"
#include "planetlab.h"

using namespace vini;
using bench::PlMode;

namespace {

app::PingReport runMode(PlMode mode, std::uint64_t seed) {
  auto world = bench::makePlanetLabWorld(mode, seed);
  const auto ends = bench::endpointsFor(mode, *world);
  app::Pinger::Options popt;
  popt.count = 10000;
  popt.source = ends.src;
  app::Pinger pinger(world->stack("Chicago"), ends.dst, popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 600 * sim::kSecond);
  if (!done) std::fprintf(stderr, "warning: ping did not finish\n");
  return pinger.report();
}

}  // namespace

int main() {
  bench::header("Table 5: ping results on PlanetLab (ms)", "Table 5");
  std::printf("\n%-22s %7s %7s %7s %7s %6s   |  paper (min/avg/max/mdev)\n", "",
              "min", "avg", "max", "mdev", "loss%");
  struct Case {
    PlMode mode;
    const char* paper;
  };
  const Case cases[] = {
      {PlMode::kNetwork, "24.4/24.5/28.2/0.2"},
      {PlMode::kIiasDefault, "24.7/27.7/80.9/4.8"},
      {PlMode::kIiasPlVini, "24.7/25.1/28.6/0.38"},
  };
  for (const auto& c : cases) {
    const auto report = runMode(c.mode, 660);
    std::printf("%-22s %7.1f %7.1f %7.1f %7.2f %6.2f   |  %s\n",
                bench::plModeName(c.mode), report.rtt_ms.min(),
                report.rtt_ms.mean(), report.rtt_ms.max(), report.rtt_ms.mdev(),
                report.lossPercent(), c.paper);
  }
  return 0;
}
