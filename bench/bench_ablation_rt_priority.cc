// Ablation: which PL-VINI scheduling knob buys what (Section 4.1.2).
//
// The paper bundles two mechanisms: a CPU *reservation* ("improves the
// overall capacity of IIAS by giving it more CPU") and *real-time
// priority* ("reduces the scheduling latency of the Click process and
// so improves end-to-end overlay latency").  This ablation runs the
// Chicago -> Washington workloads with each knob alone and both
// together: the reservation moves throughput, RT priority moves the
// latency tail, and only the combination reproduces the PL-VINI rows of
// Tables 4 and 5.
#include "app/iperf.h"
#include "app/ping.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct Result {
  double mbps = 0;
  double ping_avg = 0;
  double ping_max = 0;
  double ping_mdev = 0;
};

Result runKnobs(bool reservation, bool realtime, double contention,
                std::uint64_t seed) {
  topo::WorldOptions options;
  options.seed = seed;
  options.contention = contention;
  options.resources.cpu_reservation = reservation ? 0.25 : 0.0;
  options.resources.realtime = realtime;
  auto world = topo::makeAbileneWorld(options);
  world->runUntilConverged(180 * sim::kSecond);

  Result result;
  auto iperf = app::runIperfTcp(world->queue, world->stack("Chicago"),
                                world->stack("Washington"),
                                world->tapOf("Washington"), 5001, 20,
                                10 * sim::kSecond, {}, world->tapOf("Chicago"));
  result.mbps = iperf.mbps;

  app::Pinger::Options popt;
  popt.count = 2000;
  popt.source = world->tapOf("Chicago");
  app::Pinger pinger(world->stack("Chicago"), world->tapOf("Washington"), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 120 * sim::kSecond);
  result.ping_avg = pinger.report().rtt_ms.mean();
  result.ping_max = pinger.report().rtt_ms.max();
  result.ping_mdev = pinger.report().rtt_ms.mdev();
  return result;
}

}  // namespace

int main() {
  bench::header("Ablation: CPU reservation vs real-time priority",
                "Section 4.1.2 design choices");
  struct Case {
    const char* name;
    bool reservation;
    bool realtime;
  };
  const Case cases[] = {
      {"default share", false, false},
      {"reservation only (25%)", true, false},
      {"real-time only", false, true},
      {"PL-VINI (both)", true, true},
  };
  const double loads[] = {topo::kPlanetLabContention, 30.0};
  for (double load : loads) {
    std::printf("\n--- node contention: ~%.0f other runnable slices ---\n",
                load);
    std::printf("%-26s %8s %9s %9s %9s\n", "configuration", "Mb/s", "ping avg",
                "ping max", "ping mdev");
    for (const auto& c : cases) {
      const Result r = runKnobs(c.reservation, c.realtime, load, 4242);
      std::printf("%-26s %8.1f %9.2f %9.1f %9.2f\n", c.name, r.mbps, r.ping_avg,
                  r.ping_max, r.ping_mdev);
    }
  }
  bench::note(
      "\nExpected shape: real-time priority flattens the latency tail and\n"
      "(by preempting the timeshare class) recovers throughput on a\n"
      "moderately loaded node; under heavy load the 25% reservation is the\n"
      "binding guarantee — only the combination is robust to both, which\n"
      "is why PL-VINI uses both (Tables 4 and 5).");
  return 0;
}
