// Figure 8: observing OSPF route convergence (using ping).
//
// The Section 5.2 experiment: IIAS mirrors the Abilene backbone — same
// topology, same IGP weights, hello interval 5 s, router-dead interval
// 10 s.  Pings run from Washington D.C. to Seattle; the Denver-Kansas
// City virtual link is failed at t = 10 s (by dropping its packets in
// Click) and restored at t = 34 s.
//
// Paper narrative: ~76 ms RTT on the northern path; ~7 s outage while
// the dead interval expires; a brief transient path; then ~93 ms via
// Atlanta/Houston/LA/Sunnyvale; after the restore, back to ~76 ms.
#include <cstdlib>

#include "app/ping.h"
#include "bench_common.h"
#include "obs/obs.h"
#include "topo/worlds.h"

using namespace vini;

int main() {
  bench::header("Figure 8: OSPF route convergence observed with ping",
                "Figure 8");
  // Loss and probe totals are read from the app.ping registry counters;
  // the OSPF activity summary comes from the xorp.ospf counters.
  obs::ScopedObs scope;
  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  topo::WorldOptions options;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  options.contention = topo::kPlanetLabContention;
  options.seed = 811;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::fprintf(stderr, "did not converge\n");
    return 1;
  }
  const sim::Time t0 = world->queue.now();

  // The convergence curve comes from the metric sampler — the same
  // series vini_timeline exports — not from an ad-hoc callback: the
  // pinger publishes last_rtt_ms and the sampler snapshots it at every
  // half-second boundary where a fresh reply arrived (kOnChange, so the
  // outage appears as a gap, exactly like Figure 8's scatter).
  scope.sampler().setPeriod(sim::kSecond / 2);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("app.ping", "Washington", "last_rtt_ms",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().attach(world->queue);

  app::Pinger::Options popt;
  popt.count = smoke ? 30 : 110;
  popt.flood = false;
  popt.interval = sim::kSecond / 2;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);

  world->schedule.at(t0 + 10 * sim::kSecond, "fail Denver-KansasCity", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 34 * sim::kSecond, "restore Denver-KansasCity", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });
  pinger.start();
  world->queue.runUntil(t0 + (smoke ? 16 : 58) * sim::kSecond);
  scope.sampler().detach();

  sim::TimeSeries rtts("rtt_ms");
  const auto* sampled =
      scope.sampler().find("app.ping", "Washington", "last_rtt_ms");
  for (const auto& point : sampled->points) {
    rtts.add(point.t - t0, point.value);
  }

  std::printf("\n  t(s)   RTT(ms)     [fail @10s, restore @34s]\n");
  for (const auto& point : rtts.points()) {
    std::printf("%6.1f %9.1f\n", sim::toSeconds(point.t), point.value);
  }
  bench::writeCsv("fig8_rtt.csv", rtts);

  const auto before = rtts.statsBetween(0, 10 * sim::kSecond);
  const auto southern = rtts.statsBetween(22 * sim::kSecond, 32 * sim::kSecond);
  const auto after = rtts.statsBetween(46 * sim::kSecond, 58 * sim::kSecond);
  std::printf("\nphase means: before %.1f ms | southern %.1f ms | after %.1f ms\n",
              before.mean(), southern.mean(), after.mean());
  const std::uint64_t tx =
      scope.metrics().counterValue("app.ping", "Washington", "tx_probes");
  const std::uint64_t rx =
      scope.metrics().counterValue("app.ping", "Washington", "rx_replies");
  std::printf("lost probes during outage: %llu of %llu\n",
              static_cast<unsigned long long>(tx - rx),
              static_cast<unsigned long long>(tx));
  std::printf("ospf activity: %llu spf runs, %llu updates sent, "
              "%llu neighbors lost\n",
              static_cast<unsigned long long>(
                  scope.metrics().sumCounters("xorp.ospf", "spf_runs")),
              static_cast<unsigned long long>(
                  scope.metrics().sumCounters("xorp.ospf", "updates_sent")),
              static_cast<unsigned long long>(
                  scope.metrics().sumCounters("xorp.ospf", "neighbors_lost")));
  bench::note(
      "paper: 76 ms northern path; fail at 10 s; OSPF finds the southern\n"
      "route (93 ms) ~7 s later; after the restore at 34 s the route falls\n"
      "back to the original path.");
  return 0;
}
