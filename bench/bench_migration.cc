// Live slice migration under a downtime budget (robustness study).
//
// Runs the DETER chain with one spare substrate node and a long-lived
// iperf TCP flow Src -> Sink through Fwdr, then live-migrates Fwdr onto
// the spare under a sweep of downtime budgets.  For each budget the
// table reports the measured freeze window, the switchover attempt
// count, and whether the established flow survived (same connection,
// bytes still growing).  A final run holds the destination down so
// every switchover attempt fails, demonstrating rollback inside the
// same budget with the flow intact on the source.
//
// Results go to BENCH_migration.json (CI uploads it as an artifact).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "app/iperf.h"
#include "bench_common.h"
#include "migrate/manager.h"
#include "topo/worlds.h"

namespace vini {
namespace {

struct Run {
  double budget_ms = 0;
  bool force_failure = false;
  migrate::MigrationRecord record;
  bool flow_survived = false;
  double goodput_mbps = 0;
};

Run runOnce(double budget_ms, bool force_failure) {
  topo::WorldOptions options;
  options.spare_nodes = 1;
  auto world = topo::makeDeterWorld(options);
  if (!world->runUntilConverged(60 * sim::kSecond)) {
    std::fprintf(stderr, "bench_migration: world failed to converge\n");
    std::exit(1);
  }
  migrate::MigrationManager manager(world->queue, world->net, *world->vini,
                                    *world->iias, {});
  if (force_failure) {
    manager.setNodeProbe([](const std::string&) { return false; });
  }

  app::IperfTcpServer server(world->stack("Sink"), 5001);
  app::IperfTcpClient client(world->stack("Src"), world->tapOf("Sink"), 5001,
                             1, {}, world->tapOf("Src"));
  const double duration_s = 60.0;
  client.start(sim::fromSeconds(duration_s));
  const double t0 = sim::toSeconds(world->queue.now());
  world->queue.runUntil(sim::fromSeconds(t0 + 10.0));
  const std::uint64_t before = server.bytesReceived();

  manager.requestMigration("Fwdr", "Spare1", budget_ms);
  world->queue.runUntil(sim::fromSeconds(t0 + duration_s + 5.0));

  Run run;
  run.budget_ms = budget_ms;
  run.force_failure = force_failure;
  run.record = manager.records().at(0);
  run.flow_survived = server.bytesReceived() > before &&
                      server.connectionsAccepted() == 1;
  run.goodput_mbps =
      8.0 * static_cast<double>(server.bytesReceived()) / duration_s / 1e6;
  return run;
}

}  // namespace
}  // namespace vini

int main(int argc, char** argv) {
  using namespace vini;
  std::string out_path = "BENCH_migration.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  bench::header("Live slice migration: downtime vs. budget",
                "the robustness extension (Section 4 methodology)");
  bench::note("  DETER chain + 1 spare; iperf TCP Src->Sink through the");
  bench::note("  migrating router; budget sweep, then a forced rollback.");

  std::vector<Run> runs;
  for (double budget : {50.0, 100.0, 250.0, 500.0, 1000.0}) {
    runs.push_back(runOnce(budget, false));
  }
  runs.push_back(runOnce(500.0, true));  // destination held down

  std::printf("\n  %-10s %-12s %-12s %-9s %-10s %-9s %s\n", "budget",
              "downtime", "outcome", "attempts", "in-budget", "flow",
              "goodput");
  for (const Run& run : runs) {
    const migrate::MigrationRecord& r = run.record;
    std::printf("  %6.0f ms  %8.3f ms  %-12s %-9d %-10s %-9s %5.1f Mb/s%s\n",
                run.budget_ms, r.downtime_ms,
                r.completed ? "completed" : "rolled-back", r.attempts,
                r.downtime_ms <= r.budget_ms ? "yes" : "NO",
                run.flow_survived ? "survived" : "BROKEN", run.goodput_mbps,
                run.force_failure ? "  (destination held down)" : "");
  }

  bool ok = true;
  std::ofstream out(out_path);
  out << "{\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    const migrate::MigrationRecord& r = run.record;
    ok = ok && run.flow_survived && r.downtime_ms <= r.budget_ms &&
         (run.force_failure ? r.rolled_back : r.completed);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"budget_ms\":%.3f,\"downtime_ms\":%.3f,\"attempts\":%d,"
                  "\"completed\":%s,\"rolled_back\":%s,\"forced_failure\":%s,"
                  "\"flow_survived\":%s}",
                  i ? "," : "", run.budget_ms, r.downtime_ms, r.attempts,
                  r.completed ? "true" : "false",
                  r.rolled_back ? "true" : "false",
                  run.force_failure ? "true" : "false",
                  run.flow_survived ? "true" : "false");
    out << buf;
  }
  out << "]}\n";
  std::printf("\n  [results written to %s]\n", out_path.c_str());

  if (!ok) {
    std::printf("  FAIL: a run broke its budget, its flow, or its outcome\n");
    return 1;
  }
  std::printf("  PASS: every budget held and every flow survived\n");
  return 0;
}
