// Table 2: TCP throughput test on the DETER testbed.
//
// Paper:               mean (Mb/s)   stddev    mean CPU%
//   Network                940        0           48
//   IIAS                   195        0.843       99
//
// iperf sends 20 simultaneous TCP streams from Src to Sink through Fwdr
// (Figure 3); the Network row forwards in Fwdr's kernel, the IIAS row
// forwards through the user-space Click process over UDP tunnels
// (Figure 4).  The 5x gap is the per-packet syscall cost of user-space
// forwarding.
#include "app/iperf.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct Row {
  sim::SampleStats mbps;
  sim::SampleStats cpu;
};

Row runScenario(bool overlay, int runs, sim::Duration duration) {
  Row row;
  for (int run = 0; run < runs; ++run) {
    topo::WorldOptions options;
    options.seed = 1000 + static_cast<std::uint64_t>(run);
    auto world = topo::makeDeterWorld(options);
    if (!world->runUntilConverged(60 * sim::kSecond)) continue;

    auto& fwdr_click = world->router("Fwdr")->clickProcess();
    fwdr_click.resetAccounting();
    world->stack("Fwdr").resetKernelAccounting();
    const sim::Time t0 = world->queue.now();

    app::IperfTcpResult result;
    if (overlay) {
      result = app::runIperfTcp(world->queue, world->stack("Src"),
                                world->stack("Sink"), world->tapOf("Sink"), 5001,
                                20, duration, {}, world->tapOf("Src"));
    } else {
      result = app::runIperfTcp(world->queue, world->stack("Src"),
                                world->stack("Sink"),
                                world->stack("Sink").address(), 5001, 20,
                                duration);
    }
    row.mbps.add(result.mbps);
    const double window = static_cast<double>(duration);
    if (overlay) {
      row.cpu.add(100.0 * std::min(1.0, static_cast<double>(fwdr_click.consumedCpu()) / window));
    } else {
      row.cpu.add(100.0 * static_cast<double>(world->stack("Fwdr").kernelCpuConsumed()) / window);
    }
    (void)t0;
  }
  return row;
}

}  // namespace

int main() {
  bench::header("Table 2: TCP throughput test on DETER testbed", "Table 2");
  const int runs = 10;
  const sim::Duration duration = 5 * sim::kSecond;

  const Row network = runScenario(/*overlay=*/false, runs, duration);
  const Row iias = runScenario(/*overlay=*/true, runs, duration);

  std::printf("\n%-10s %14s %9s %10s   |  %s\n", "", "mean (Mb/s)", "stddev",
              "mean CPU%", "paper: Mb/s / stddev / CPU%");
  std::printf("%-10s %14.0f %9.3f %10.0f   |  940 / 0 / 48\n", "Network",
              network.mbps.mean(), network.mbps.stddev(), network.cpu.mean());
  std::printf("%-10s %14.0f %9.3f %10.0f   |  195 / 0.843 / 99\n", "IIAS",
              iias.mbps.mean(), iias.mbps.stddev(), iias.cpu.mean());
  std::printf("\nratio network/iias: measured %.1fx, paper 4.8x\n",
              network.mbps.mean() / iias.mbps.mean());
  bench::note(
      "IIAS forwarding is CPU-bound: poll+recvfrom+sendto+3x gettimeofday\n"
      "per forwarded packet (~5 us/syscall, per the paper's strace), while\n"
      "the kernel path rides the Gig-E wire with CPU to spare.");
  return 0;
}
