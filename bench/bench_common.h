// Shared helpers for the table/figure benches.
//
// Each bench binary regenerates one table or figure of the paper: it
// runs the experiment on the simulated substrate, prints the measured
// rows next to the paper's published values, and (for figures) writes a
// CSV artifact for replotting.  Absolute agreement is not expected —
// the substrate is a model, not the authors' hardware — but who wins,
// by what factor, and where the crossovers fall should match.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/stats.h"
#include "sim/time.h"

namespace vini::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  (reproduces %s of \"In VINI Veritas\", SIGCOMM 2006)\n",
              paper_ref.c_str());
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void writeCsv(const std::string& path, const sim::TimeSeries& series) {
  std::ofstream out(path);
  series.writeCsv(out);
  std::printf("  [series written to %s]\n", path.c_str());
}

/// Convenience: run-to-run statistics formatted as "mean (sd)".
inline std::string meanSd(const sim::SampleStats& s, const char* fmt = "%.1f") {
  char mean_buf[64];
  char sd_buf[64];
  std::snprintf(mean_buf, sizeof(mean_buf), fmt, s.mean());
  std::snprintf(sd_buf, sizeof(sd_buf), fmt, s.stddev());
  return std::string(mean_buf) + " (" + sd_buf + ")";
}

}  // namespace vini::bench
