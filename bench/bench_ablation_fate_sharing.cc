// Ablation: exposed vs masked underlay failures (Section 3.1).
//
// "If a physical link fails ... VINI should guarantee that the virtual
// links that use that physical link see that failure.  VINI should not
// allow the underlying IP network to mask the failure by dynamically
// re-routing around it."
//
// Both modes run the same physical event: the Denver-Kansas City fiber
// fails under a converged Abilene mirror.  In expose mode the overlay's
// OSPF detects it, reconverges, and the experimenter sees an outage plus
// an honest route change.  In masked (plain-overlay) mode the overlay's
// routing never reacts — but RTTs silently change, the exact artifact
// that makes plain overlays unsuitable for routing experiments.
#include "app/ping.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

void runMode(bool expose) {
  topo::WorldOptions options;
  options.seed = 31337;
  options.contention = 0.0;
  options.expose_underlay_failures = expose;
  options.mask_underlay_failures = !expose;
  auto world = topo::makeAbileneWorld(options);
  world->runUntilConverged(180 * sim::kSecond);
  const sim::Time t0 = world->queue.now();

  sim::TimeSeries rtts("rtt_ms");
  app::Pinger::Options popt;
  popt.count = 80;
  popt.flood = false;
  popt.interval = sim::kSecond / 2;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  std::uint64_t lost_during_event = 0;
  pinger.on_reply = [&](std::uint64_t, sim::Duration rtt) {
    rtts.add(world->queue.now() - t0, sim::toMillis(rtt));
  };

  auto* wash = world->router("Washington");
  const std::uint32_t metric_before =
      wash->xorp().rib().lookup(world->tapOf("Seattle"))->metric;

  world->schedule.at(t0 + 10 * sim::kSecond, "phys fail", [&] {
    world->net.linkBetween("Denver", "KansasCity")->setUp(false);
  });
  pinger.start();
  world->queue.runUntil(t0 + 40 * sim::kSecond);

  const auto before = rtts.statsBetween(0, 10 * sim::kSecond);
  const auto after = rtts.statsBetween(25 * sim::kSecond, 40 * sim::kSecond);
  const auto route = wash->xorp().rib().lookup(world->tapOf("Seattle"));
  lost_during_event = pinger.report().transmitted - pinger.report().received;

  std::printf("%-22s %12.1f %12.1f %10llu %15s\n",
              expose ? "exposed (VINI)" : "masked (plain overlay)",
              before.mean(), after.mean(),
              static_cast<unsigned long long>(lost_during_event),
              route && route->metric != metric_before ? "yes" : "no");
}

}  // namespace

int main() {
  bench::header("Ablation: fate sharing — exposed vs masked underlay failure",
                "Section 3.1 requirement");
  std::printf("\n%-22s %12s %12s %10s %15s\n", "mode", "RTT before",
              "RTT after", "lost pings", "OSPF rerouted?");
  runMode(/*expose=*/true);
  runMode(/*expose=*/false);
  bench::note(
      "\nExposed: the experiment sees the outage and its routing protocol\n"
      "responds (an honest experiment).  Masked: zero loss, no routing\n"
      "reaction — but the RTT silently jumped, so measurements now mix\n"
      "overlay behaviour with invisible substrate artifacts.");
  return 0;
}
