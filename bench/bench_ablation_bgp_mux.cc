// Ablation: the BGP multiplexer (Section 6.1).
//
// "Having each virtual node maintain separate BGP sessions introduces
// problems with scaling ..., management ..., and stability."  This
// bench scales the number of simultaneous experiments and compares the
// external router's load with and without the multiplexer: session
// count, update volume under an experiment-induced flap storm, and
// whether a hijacking announcement (outside the slice's allocation)
// escapes to the Internet.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "xorp/bgp.h"

using namespace vini;
using xorp::BgpConfig;
using xorp::BgpMultiplexer;
using xorp::BgpProcess;

namespace {

BgpConfig speaker(std::uint32_t asn, std::uint32_t id, const std::string& name) {
  BgpConfig config;
  config.asn = asn;
  config.router_id = id;
  config.name = name;
  return config;
}

packet::Prefix sliceAllocation(int i) {
  return packet::Prefix(packet::IpAddress(198, 32, static_cast<std::uint8_t>(i + 1), 0), 24);
}

void flapStorm(sim::EventQueue& q, BgpProcess& slice, int flaps) {
  for (int f = 0; f < flaps; ++f) {
    slice.originate(sliceAllocation(0));
    q.runUntil(q.now() + 50 * sim::kMillisecond);
    slice.withdrawOrigin(sliceAllocation(0));
    q.runUntil(q.now() + 50 * sim::kMillisecond);
  }
}

}  // namespace

int main() {
  bench::header("Ablation: BGP multiplexer vs per-experiment sessions",
                "Section 6.1 design");
  std::printf("\n%-10s %28s %28s\n", "", "WITHOUT mux", "WITH mux");
  std::printf("%-10s %9s %9s %8s %9s %9s %8s\n", "slices", "sessions",
              "updates", "hijack?", "sessions", "updates", "hijack?");

  for (int n : {1, 2, 4, 8, 16}) {
    // -- Without the multiplexer: one session per experiment ----------------
    sim::EventQueue q1;
    BgpProcess external1(q1, nullptr, speaker(7018, 50, "att"));
    std::vector<std::unique_ptr<BgpProcess>> slices1;
    for (int i = 0; i < n; ++i) {
      slices1.push_back(std::make_unique<BgpProcess>(
          q1, nullptr, speaker(42, 100 + static_cast<std::uint32_t>(i), "s")));
      BgpProcess::connect(*slices1.back(), external1);
      slices1.back()->originate(sliceAllocation(i));
    }
    // A misbehaving slice hijacks another's prefix and flaps.
    slices1[0]->originate(sliceAllocation(n + 3));
    flapStorm(q1, *slices1[0], 25);
    q1.runUntil(q1.now() + sim::kSecond);
    const bool hijack1 =
        external1.bestRoute(sliceAllocation(n + 3)).has_value();
    const auto updates1 = external1.stats().updates_received;
    const auto sessions1 = external1.sessionCount();

    // -- With the multiplexer ------------------------------------------------
    sim::EventQueue q2;
    BgpMultiplexer::Config mux_config;
    mux_config.vini_block = packet::Prefix::mustParse("198.32.0.0/16");
    mux_config.updates_per_second = 1.0;
    mux_config.burst = 3.0;
    BgpMultiplexer mux(q2, speaker(42, 99, "mux"), mux_config);
    BgpProcess external2(q2, nullptr, speaker(7018, 50, "att"));
    BgpProcess::connect(mux.externalSpeaker(), external2);
    std::vector<std::unique_ptr<BgpProcess>> slices2;
    for (int i = 0; i < n; ++i) {
      slices2.push_back(std::make_unique<BgpProcess>(
          q2, nullptr, speaker(42, 100 + static_cast<std::uint32_t>(i), "s")));
      mux.registerSlice(*slices2.back(), sliceAllocation(i));
      slices2.back()->originate(sliceAllocation(i));
    }
    slices2[0]->originate(sliceAllocation(n + 3));
    flapStorm(q2, *slices2[0], 25);
    q2.runUntil(q2.now() + sim::kSecond);
    const bool hijack2 =
        external2.bestRoute(sliceAllocation(n + 3)).has_value();
    const auto updates2 = external2.stats().updates_received;

    std::printf("%-10d %9zu %9llu %8s %9zu %9llu %8s\n", n, sessions1,
                static_cast<unsigned long long>(updates1),
                hijack1 ? "LEAKED" : "no", external2.sessionCount(),
                static_cast<unsigned long long>(updates2),
                hijack2 ? "LEAKED" : "no");
  }
  bench::note(
      "\nThe mux holds the external router at one session regardless of the\n"
      "number of experiments, absorbs flap storms via per-slice rate\n"
      "limits, and blocks announcements outside each slice's allocation.");
  return 0;
}
