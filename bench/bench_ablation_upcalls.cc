// Ablation: upcall-driven failover vs timer-driven detection
// (Section 6.1: "extending our software to perform 'upcalls' to notify
// the affected slices" of underlay topology changes).
//
// The same physical Denver-Kansas City failure, measured two ways: the
// slice relying purely on its routing protocol's timers (10 s router-
// dead interval), and the slice subscribing to VINI upcalls, which tear
// the OSPF adjacency down the moment the substrate reports the failure.
#include "app/ping.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct Outcome {
  double reroute_s = -1;
  std::uint64_t lost_pings = 0;
};

Outcome run(bool use_upcalls) {
  topo::WorldOptions options;
  options.contention = 0.0;
  options.seed = 606;
  auto world = topo::makeAbileneWorld(options);
  if (use_upcalls) world->iias->enableUpcallFailover(*world->vini);
  world->runUntilConverged(120 * sim::kSecond);

  auto* seattle = world->router("Seattle");
  const auto kc_tap = world->tapOf("KansasCity");
  const auto metric_before = seattle->xorp().rib().lookup(kc_tap)->metric;

  // Continuous probing Seattle -> Kansas City across the event.
  app::Pinger::Options popt;
  popt.count = 400;
  popt.flood = false;
  popt.interval = 50 * sim::kMillisecond;
  popt.source = world->tapOf("Seattle");
  app::Pinger pinger(world->stack("Seattle"), kc_tap, popt);
  pinger.start();
  world->queue.runUntil(world->queue.now() + 2 * sim::kSecond);

  Outcome outcome;
  const sim::Time fail_at = world->queue.now();
  world->net.linkBetween("Denver", "KansasCity")->setUp(false);
  for (int tick = 0; tick < 800; ++tick) {
    world->queue.runUntil(fail_at + (tick + 1) * (25 * sim::kMillisecond));
    auto route = seattle->xorp().rib().lookup(kc_tap);
    if (route && route->metric != metric_before) {
      outcome.reroute_s = sim::toSeconds(world->queue.now() - fail_at);
      break;
    }
  }
  world->queue.runUntil(world->queue.now() + 10 * sim::kSecond);
  outcome.lost_pings = pinger.report().transmitted - pinger.report().received;
  return outcome;
}

}  // namespace

int main() {
  bench::header("Ablation: upcall-driven failover vs protocol timers",
                "Section 6.1 upcalls");
  std::printf("\n%-28s %14s %12s\n", "failure visibility", "reroute (s)",
              "lost pings");
  const Outcome timers = run(false);
  std::printf("%-28s %14.2f %12llu\n", "timers only (dead=10s)",
              timers.reroute_s,
              static_cast<unsigned long long>(timers.lost_pings));
  const Outcome upcalls = run(true);
  std::printf("%-28s %14.2f %12llu\n", "VINI upcalls", upcalls.reroute_s,
              static_cast<unsigned long long>(upcalls.lost_pings));
  bench::note(
      "\nUpcalls let the slice react to an exposed physical failure in\n"
      "milliseconds (SPF hold-down + flooding) instead of waiting out the\n"
      "router-dead interval — the payoff of Section 6.1's 'exposing\n"
      "network failures and topology changes' machinery.");
  return 0;
}
