// Figure 6: packet losses in IIAS on PlanetLab.
//
// UDP CBR streams from 1 to 45 Mb/s, Chicago -> Washington via the New
// York forwarder.  (a) With the default CPU share, the Click process is
// descheduled for tens of milliseconds at a time; its UDP socket buffer
// overflows and loss climbs steeply with the offered rate (paper: up to
// ~14% at 45 Mb/s).  (b) With PL-VINI's reservation + real-time
// priority, scheduling gaps are too short to overflow the buffer and
// loss stays near zero ("comparable to that measured in Abilene
// itself").
#include <cstdlib>

#include "app/iperf.h"
#include "bench_common.h"
#include "obs/obs.h"
#include "planetlab.h"

using namespace vini;
using bench::PlMode;

namespace {

double lossAtRate(PlMode mode, double rate_mbps, std::uint64_t seed) {
  // The bench reads its numbers from the metrics registry: the iperf
  // endpoints bump app.iperf counters on every datagram, and the loss
  // figure is their difference — the same values the servers' own
  // counters held before the registry existed.
  obs::ScopedObs scope;
  auto world = bench::makePlanetLabWorld(mode, seed);
  const auto ends = bench::endpointsFor(mode, *world);
  app::IperfUdpServer server(world->stack("Washington"), 5002);
  app::IperfUdpClient client(world->stack("Chicago"), ends.dst, 5002,
                             rate_mbps * 1e6, 1430, ends.src);
  client.start(10 * sim::kSecond);
  world->queue.runUntil(world->queue.now() + 12 * sim::kSecond);
  const double sent = static_cast<double>(
      scope.metrics().counterValue("app.iperf", "Chicago", "udp_tx_packets"));
  const double got = static_cast<double>(scope.metrics().counterValue(
      "app.iperf", "Washington", "udp_rx_packets"));
  if (sent <= 0) return 0.0;
  return 100.0 * std::max(0.0, sent - got) / sent;
}

}  // namespace

int main() {
  bench::header("Figure 6: packet losses in IIAS on PlanetLab", "Figure 6(a)/(b)");
  sim::TimeSeries default_share("loss_pct_default_share");
  sim::TimeSeries pl_vini("loss_pct_pl_vini");

  // VINI_SMOKE: a single rate and seed, so CI can confirm the bench runs
  // end-to-end without paying for the full sweep.
  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  const double rate_max = smoke ? 5 : 45;
  const int seeds = smoke ? 1 : 3;

  std::printf("\n%8s %22s %18s\n", "Mb/s", "loss%% (default share)",
              "loss%% (PL-VINI)");
  for (double rate = 5; rate <= rate_max; rate += 5) {
    double a = 0;
    double b = 0;
    for (int s = 0; s < seeds; ++s) {
      a += lossAtRate(PlMode::kIiasDefault, rate, 9100 + static_cast<std::uint64_t>(rate) + 31u * static_cast<std::uint64_t>(s));
      b += lossAtRate(PlMode::kIiasPlVini, rate, 9100 + static_cast<std::uint64_t>(rate) + 31u * static_cast<std::uint64_t>(s));
    }
    a /= seeds;
    b /= seeds;
    std::printf("%8.0f %22.2f %18.2f\n", rate, a, b);
    default_share.add(sim::fromSeconds(rate), a);  // x-axis: Mb/s
    pl_vini.add(sim::fromSeconds(rate), b);
  }
  bench::writeCsv("fig6a_default_share.csv", default_share);
  bench::writeCsv("fig6b_pl_vini.csv", pl_vini);
  bench::note(
      "\npaper: (a) loss grows from ~0% below 10 Mb/s to ~14% at 45 Mb/s;\n"
      "       (b) loss stays below ~0.5% at every rate.");
  return 0;
}
