// A long-running deployment study (Section 2's second usage class:
// "once a controlled experiment demonstrates the value of a new idea,
// the protocol might be deployed as a long-running study").
//
// One simulated hour on the Abilene mirror under a synthetic failure
// trace (independent exponential failures/repairs per fiber).  A probe
// stream measures Washington -> Seattle availability for two slice
// configurations sharing the same trace: timer-driven OSPF only, and
// OSPF plus VINI upcall-driven failover.  This is the kind of study the
// infrastructure exists to host: realistic (real routing software, real
// failure dynamics) and controlled (the trace is replayable).
#include "app/ping.h"
#include "bench_common.h"
#include "topo/failure_trace.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct Outcome {
  double availability = 0;
  std::uint64_t probes = 0;
  std::uint64_t answered = 0;
};

Outcome run(bool use_upcalls, const std::vector<topo::LinkEvent>& trace,
            double hours) {
  topo::WorldOptions options;
  options.contention = 0.0;
  options.seed = 1234;
  auto world = topo::makeAbileneWorld(options);
  if (use_upcalls) world->iias->enableUpcallFailover(*world->vini);
  world->runUntilConverged(120 * sim::kSecond);
  const sim::Time t0 = world->queue.now();

  // Rebase the trace onto the converged clock and schedule it.
  std::vector<topo::LinkEvent> rebased = trace;
  for (auto& event : rebased) event.at_seconds += sim::toSeconds(t0);
  topo::applyLinkTrace(rebased, world->schedule, world->net);

  const double duration_s = hours * 3600.0;
  app::Pinger::Options popt;
  popt.count = static_cast<std::uint64_t>(duration_s);  // 1 probe/second
  popt.flood = false;
  popt.interval = sim::kSecond;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  pinger.start();
  world->queue.runUntil(t0 + sim::fromSeconds(duration_s + 5));

  Outcome outcome;
  outcome.probes = pinger.report().transmitted;
  outcome.answered = pinger.report().received;
  outcome.availability = outcome.probes
                             ? static_cast<double>(outcome.answered) /
                                   static_cast<double>(outcome.probes)
                             : 0.0;
  return outcome;
}

}  // namespace

int main() {
  bench::header("Deployment study: one hour under a synthetic failure trace",
                "Section 2 usage model");
  // Build the trace once, against a throwaway substrate, so both runs
  // replay the identical event sequence.
  sim::EventQueue scratch_queue;
  phys::PhysNetwork scratch(scratch_queue);
  topo::buildAbilene(scratch);
  topo::FailureModel model;
  model.mttf_seconds = 1800.0;  // each fiber fails ~2x/hour
  model.mttr_seconds = 45.0;
  model.seed = 77;
  const double hours = 1.0;
  const auto trace = generateFailureTrace(scratch, hours * 3600.0, model);
  std::printf("\ntrace: %zu events over %.0f h across %zu fibers "
              "(MTTF %.0fs, MTTR %.0fs)\n",
              trace.size(), hours, scratch.linkCount(), model.mttf_seconds,
              model.mttr_seconds);

  std::printf("\n%-28s %14s %12s\n", "slice configuration", "availability",
              "lost probes");
  for (const bool upcalls : {false, true}) {
    const Outcome outcome = run(upcalls, trace, hours);
    std::printf("%-28s %13.3f%% %12llu\n",
                upcalls ? "OSPF + VINI upcalls" : "OSPF timers only",
                100.0 * outcome.availability,
                static_cast<unsigned long long>(outcome.probes -
                                                outcome.answered));
  }
  bench::note(
      "\nBoth runs replay the identical failure trace (repeatability —\n"
      "Section 3.4); the upcall-enabled slice recovers from each exposed\n"
      "failure in milliseconds instead of a dead interval, which shows up\n"
      "directly as availability.");
  return 0;
}
