// The Section 5.1.2 PlanetLab scenario, shared by Tables 4-6 and
// Figure 6: traffic between the Chicago and Washington D.C. PlanetLab
// nodes, forwarded by New York (Figure 5), in three configurations:
//
//   Network       in-kernel path between the nodes (no overlay)
//   IIAS          the overlay with PlanetLab's default CPU fair share
//   IIAS+PL-VINI  the overlay with a 25% CPU reservation and real-time
//                 priority for the Click process
#pragma once

#include <memory>

#include "topo/worlds.h"

namespace vini::bench {

enum class PlMode { kNetwork, kIiasDefault, kIiasPlVini };

inline const char* plModeName(PlMode mode) {
  switch (mode) {
    case PlMode::kNetwork: return "Network";
    case PlMode::kIiasDefault: return "IIAS on PlanetLab";
    case PlMode::kIiasPlVini: return "IIAS on PL-VINI";
  }
  return "?";
}

inline std::unique_ptr<topo::World> makePlanetLabWorld(PlMode mode,
                                                       std::uint64_t seed) {
  topo::WorldOptions options;
  options.seed = seed;
  options.contention = topo::kPlanetLabContention;
  if (mode == PlMode::kIiasPlVini) {
    options.resources.cpu_reservation = 0.25;
    options.resources.realtime = true;
  }
  if (mode == PlMode::kNetwork) {
    auto world = topo::makeAbileneSubstrate(options);
    // Kernel forwarding needs a host stack on every transit PoP.
    for (const auto& node : world->net.nodes()) world->stacks.ensure(*node);
    return world;
  }
  auto world = topo::makeAbileneWorld(options);
  world->runUntilConverged(180 * sim::kSecond);
  return world;
}

/// Source/destination addresses for the Chicago -> Washington flow.
struct Endpoints {
  packet::IpAddress src;  ///< bind address at Chicago (zero = public)
  packet::IpAddress dst;  ///< target at Washington
};

inline Endpoints endpointsFor(PlMode mode, topo::World& world) {
  if (mode == PlMode::kNetwork) {
    return {packet::IpAddress{}, world.stack("Washington").address()};
  }
  return {world.tapOf("Chicago"), world.tapOf("Washington")};
}

}  // namespace vini::bench
