// Table 3: ping results on DETER (units are ms).
//
// Paper:            min     avg     max     mdev   %loss
//   Network        0.193   0.414   0.593   0.089     0
//   IIAS           0.269   0.547   0.783   0.080     0
//
// ping -f -c 10000 from Src to Sink: the IIAS row adds the user-space
// forwarding cost at each of the three Click processes on the path but
// does not change the variability — dedicated machines have no
// scheduling noise.
#include "app/ping.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

app::PingReport runPing(bool overlay, std::uint64_t seed) {
  topo::WorldOptions options;
  options.seed = seed;
  auto world = topo::makeDeterWorld(options);
  world->runUntilConverged(60 * sim::kSecond);

  app::Pinger::Options popt;
  popt.count = 10000;
  if (overlay) popt.source = world->tapOf("Src");
  const packet::IpAddress target =
      overlay ? world->tapOf("Sink") : world->stack("Sink").address();
  app::Pinger pinger(world->stack("Src"), target, popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 300 * sim::kSecond);
  if (!done) std::fprintf(stderr, "warning: ping did not finish\n");
  return pinger.report();
}

void printRow(const char* name, const app::PingReport& report) {
  std::printf("%-10s %7.3f %7.3f %7.3f %7.3f %7.2f\n", name,
              report.rtt_ms.min(), report.rtt_ms.mean(), report.rtt_ms.max(),
              report.rtt_ms.mdev(), report.lossPercent());
}

}  // namespace

int main() {
  bench::header("Table 3: ping results on DETER (ms)", "Table 3");
  const app::PingReport network = runPing(/*overlay=*/false, 77);
  const app::PingReport iias = runPing(/*overlay=*/true, 77);

  std::printf("\n%-10s %7s %7s %7s %7s %7s\n", "", "min", "avg", "max", "mdev",
              "%loss");
  printRow("Network", network);
  printRow("IIAS", iias);
  std::printf("\npaper:    Network 0.193/0.414/0.593/0.089/0%%\n");
  std::printf("          IIAS    0.269/0.547/0.783/0.080/0%%\n");
  std::printf("\nIIAS adds ~%.0f us per RTT (paper: ~133 us) with no loss.\n",
              (iias.rtt_ms.mean() - network.rtt_ms.mean()) * 1000.0);
  return 0;
}
