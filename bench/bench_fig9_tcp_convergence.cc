// Figure 9: TCP throughput during OSPF routing convergence.
//
// The same Denver-Kansas City failure as Figure 8, observed by a bulk
// TCP transfer from Washington D.C. to Seattle with iperf's default
// 16 KB receiver window ("TCP's throughput is limited to roughly
// 3 Mb/s").  (a) plots cumulative megabytes at the receiver: the curve
// flatlines when the link fails at t = 10 s and resumes when OSPF finds
// the new route; (b) zooms into the resume and shows TCP slow-start
// restart.  tcpdump at the receiver provides the arrival trace.
#include <cstdlib>

#include "app/iperf.h"
#include "bench_common.h"
#include "obs/obs.h"
#include "topo/worlds.h"

using namespace vini;

int main() {
  bench::header("Figure 9: TCP throughput during OSPF routing convergence",
                "Figure 9(a)/(b)");
  // Both curves come from the metric sampler snapshotting the iperf
  // server's registry metrics — the same series vini_timeline exports.
  obs::ScopedObs scope;
  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  topo::WorldOptions options;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  options.contention = topo::kPlanetLabContention;
  options.seed = 911;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::fprintf(stderr, "did not converge\n");
    return 1;
  }
  const sim::Time t0 = world->queue.now();

  // Figure 9(a): cumulative received bytes, sampled every tick so the
  // outage shows as a flatline.  Figure 9(b): highest in-stream byte
  // position, on-change so the slow-start restart steps are visible.
  scope.sampler().setPeriod(sim::kSecond / 10);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("app.iperf", "Seattle", "tcp_rx_bytes",
                        obs::MetricSampler::Mode::kEveryTick);
  scope.sampler().watch("app.iperf", "Seattle", "tcp_stream_pos_bytes",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().attach(world->queue);

  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 16 * 1024;  // iperf 1.7.0 default
  app::IperfTcpServer server(world->stack("Seattle"), 5001, tcp);
  app::IperfTcpClient client(world->stack("Washington"), world->tapOf("Seattle"),
                             5001, 1, tcp, world->tapOf("Washington"));
  const int transfer_seconds = smoke ? 18 : 50;
  const int fail_second = smoke ? 5 : 10;
  const int restore_second = smoke ? 12 : 34;
  client.start(transfer_seconds * sim::kSecond);

  world->schedule.at(t0 + fail_second * sim::kSecond, "fail Denver-KansasCity",
                     [&] { world->iias->failLink("Denver", "KansasCity"); });
  world->schedule.at(t0 + restore_second * sim::kSecond,
                     "restore Denver-KansasCity",
                     [&] { world->iias->restoreLink("Denver", "KansasCity"); });
  world->queue.runUntil(t0 + (transfer_seconds + 2) * sim::kSecond);
  scope.sampler().detach();

  sim::TimeSeries arrivals("megabytes");        // Figure 9(a)
  sim::TimeSeries stream_pos("stream_mbytes");  // Figure 9(b) detail
  for (const auto& point :
       scope.sampler().find("app.iperf", "Seattle", "tcp_rx_bytes")->points) {
    arrivals.add(point.t - t0, point.value / 1e6);
  }
  for (const auto& point : scope.sampler()
           .find("app.iperf", "Seattle", "tcp_stream_pos_bytes")
           ->points) {
    stream_pos.add(point.t - t0, point.value / 1e6);
  }
  const std::uint64_t total =
      scope.metrics().counterValue("app.iperf", "Seattle", "tcp_rx_bytes");

  // Print a 1-second-resolution version of Figure 9(a).
  std::printf("\n  t(s)  MB transferred   [fail @%ds, restore @%ds]\n",
              fail_second, restore_second);
  double last = 0;
  for (int second = 1; second <= transfer_seconds; ++second) {
    const auto window = arrivals.statsBetween(0, second * sim::kSecond);
    const double mb = window.count() ? window.max() : last;
    std::printf("%6d %10.2f%s\n", second, mb,
                mb - last < 0.005 && second > 1 ? "   (stalled)" : "");
    last = mb;
  }
  bench::writeCsv("fig9a_bytes.csv", arrivals);
  bench::writeCsv("fig9b_stream_position.csv", stream_pos);

  // Detect the resume and verify the slow-start restart.
  const auto& stats = client.streams()[0]->stats();
  std::printf("\ntotal: %.2f MB in %d s (%.2f Mb/s), retransmits %llu, "
              "timeouts %llu\n",
              static_cast<double>(total) / 1e6, transfer_seconds,
              static_cast<double>(total) * 8 /
                  (transfer_seconds * 1e6),
              static_cast<unsigned long long>(stats.retransmits),
              static_cast<unsigned long long>(stats.timeouts));
  bench::note(
      "paper: packets stop at t=10 when the link fails, resume ~t=18 once\n"
      "OSPF finds the new route, with TCP slow-start restart at the resume\n"
      "(visible in fig9b_stream_position.csv), and a second brief\n"
      "disruption when the original route returns around t=38.");
  return 0;
}
