// Figure 9: TCP throughput during OSPF routing convergence.
//
// The same Denver-Kansas City failure as Figure 8, observed by a bulk
// TCP transfer from Washington D.C. to Seattle with iperf's default
// 16 KB receiver window ("TCP's throughput is limited to roughly
// 3 Mb/s").  (a) plots cumulative megabytes at the receiver: the curve
// flatlines when the link fails at t = 10 s and resumes when OSPF finds
// the new route; (b) zooms into the resume and shows TCP slow-start
// restart.  tcpdump at the receiver provides the arrival trace.
#include "app/iperf.h"
#include "bench_common.h"
#include "topo/worlds.h"

using namespace vini;

int main() {
  bench::header("Figure 9: TCP throughput during OSPF routing convergence",
                "Figure 9(a)/(b)");
  topo::WorldOptions options;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  options.contention = topo::kPlanetLabContention;
  options.seed = 911;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::fprintf(stderr, "did not converge\n");
    return 1;
  }
  const sim::Time t0 = world->queue.now();

  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 16 * 1024;  // iperf 1.7.0 default
  app::IperfTcpServer server(world->stack("Seattle"), 5001, tcp);
  sim::TimeSeries arrivals("megabytes");        // Figure 9(a)
  sim::TimeSeries stream_pos("stream_mbytes");  // Figure 9(b) detail
  std::uint64_t total = 0;
  server.setSegmentTrace([&](const packet::Packet& p) {
    if (p.payload_bytes == 0) return;
    total += p.payload_bytes;
    const sim::Time t = world->queue.now() - t0;
    arrivals.add(t, static_cast<double>(total) / 1e6);
    // In-stream position of this segment (megabytes), like Figure 9(b).
    const double pos = static_cast<double>(p.tcpHeader()->seq - 1) / 1e6;
    stream_pos.add(t, pos);
  });
  app::IperfTcpClient client(world->stack("Washington"), world->tapOf("Seattle"),
                             5001, 1, tcp, world->tapOf("Washington"));
  client.start(50 * sim::kSecond);

  world->schedule.at(t0 + 10 * sim::kSecond, "fail Denver-KansasCity", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 34 * sim::kSecond, "restore Denver-KansasCity", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });
  world->queue.runUntil(t0 + 52 * sim::kSecond);

  // Print a 1-second-resolution version of Figure 9(a).
  std::printf("\n  t(s)  MB transferred   [fail @10s, restore @34s]\n");
  double last = 0;
  for (int second = 1; second <= 50; ++second) {
    const auto window = arrivals.statsBetween(0, second * sim::kSecond);
    const double mb = window.count() ? window.max() : last;
    std::printf("%6d %10.2f%s\n", second, mb,
                mb - last < 0.005 && second > 1 ? "   (stalled)" : "");
    last = mb;
  }
  bench::writeCsv("fig9a_bytes.csv", arrivals);
  bench::writeCsv("fig9b_stream_position.csv", stream_pos);

  // Detect the resume and verify the slow-start restart.
  const auto& stats = client.streams()[0]->stats();
  std::printf("\ntotal: %.2f MB in 50 s (%.2f Mb/s), retransmits %llu, "
              "timeouts %llu\n",
              static_cast<double>(total) / 1e6,
              static_cast<double>(total) * 8 / 50e6,
              static_cast<unsigned long long>(stats.retransmits),
              static_cast<unsigned long long>(stats.timeouts));
  bench::note(
      "paper: packets stop at t=10 when the link fails, resume ~t=18 once\n"
      "OSPF finds the new route, with TCP slow-start restart at the resume\n"
      "(visible in fig9b_stream_position.csv), and a second brief\n"
      "disruption when the original route returns around t=38.");
  return 0;
}
