// Micro-benchmarks (google-benchmark) of the substrate's hot paths:
// FIB longest-prefix match (trie vs. a linear scan baseline — the
// data-plane design choice), packet serialization, checksums, the event
// queue, and RIB churn.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "click/fib.h"
#include "obs/obs.h"
#include "packet/checksum.h"
#include "packet/packet.h"
#include "sim/event_queue.h"
#include "xorp/rib.h"

namespace {

using vini::click::Fib;
using vini::click::FibEntry;
using vini::packet::IpAddress;
using vini::packet::Packet;
using vini::packet::Prefix;

std::vector<FibEntry> makeRoutes(std::size_t n) {
  std::mt19937 rng(7);
  std::vector<FibEntry> routes;
  routes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FibEntry entry;
    entry.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(rng())),
                          8 + static_cast<int>(rng() % 25));
    entry.next_hop = IpAddress(static_cast<std::uint32_t>(rng()));
    entry.port = static_cast<int>(rng() % 4);
    routes.push_back(entry);
  }
  return routes;
}

void BM_FibTrieLookup(benchmark::State& state) {
  const auto routes = makeRoutes(static_cast<std::size_t>(state.range(0)));
  Fib fib;
  for (const auto& r : routes) fib.addRoute(r);
  std::mt19937 rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib.lookup(IpAddress(static_cast<std::uint32_t>(rng()))));
  }
}
BENCHMARK(BM_FibTrieLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_FibLinearLookup(benchmark::State& state) {
  // The naive alternative the trie replaces.
  const auto routes = makeRoutes(static_cast<std::size_t>(state.range(0)));
  std::mt19937 rng(13);
  for (auto _ : state) {
    const IpAddress addr(static_cast<std::uint32_t>(rng()));
    const FibEntry* best = nullptr;
    for (const auto& r : routes) {
      if (r.prefix.contains(addr) &&
          (!best || r.prefix.length() > best->prefix.length())) {
        best = &r;
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FibLinearLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_FibInsert(benchmark::State& state) {
  const auto routes = makeRoutes(1024);
  for (auto _ : state) {
    Fib fib;
    for (const auto& r : routes) fib.addRoute(r);
    benchmark::DoNotOptimize(fib.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FibInsert);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    vini::sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule(i * 100, [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vini::packet::internetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

void BM_PacketSerializeParse(benchmark::State& state) {
  const Packet p = Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2),
                               4000, 5000, 1430);
  for (auto _ : state) {
    const auto wire = p.serialize();
    benchmark::DoNotOptimize(Packet::parse(wire));
  }
}
BENCHMARK(BM_PacketSerializeParse);

void BM_TunnelEncapsulate(benchmark::State& state) {
  auto inner = std::make_shared<const Packet>(
      Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2), 1, 2, 1430));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Packet::encapsulateUdp(
        IpAddress(198, 32, 154, 10), IpAddress(198, 32, 154, 11), 33001, 33001,
        inner));
  }
}
BENCHMARK(BM_TunnelEncapsulate);

void BM_RibChurn(benchmark::State& state) {
  using vini::xorp::Rib;
  using vini::xorp::RibRoute;
  using vini::xorp::RouteOrigin;
  std::mt19937 rng(3);
  std::vector<RibRoute> routes;
  for (int i = 0; i < 256; ++i) {
    RibRoute r;
    r.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(rng())), 24);
    r.origin = RouteOrigin::kOspf;
    r.protocol = "ospf";
    r.metric = rng() % 1000;
    routes.push_back(r);
  }
  for (auto _ : state) {
    Rib rib;
    for (const auto& r : routes) rib.addRoute(r);
    for (const auto& r : routes) rib.removeRoute("ospf", r.prefix);
    benchmark::DoNotOptimize(rib.candidateCount());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_RibChurn);

// -- Observability overhead ---------------------------------------------------
// These quantify the cost the instrumentation adds to hot paths, so a
// regression in the "zero-cost when disabled, one branch when enabled"
// promise shows up as a bench delta.

void BM_ObsCounterInc(benchmark::State& state) {
  vini::obs::Obs obs;
  vini::obs::Counter* c =
      &obs.metrics.counter("bench", "node", "hot_counter");
  for (auto _ : state) {
    VINI_OBS_INC(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  vini::obs::Obs obs;
  vini::obs::Histogram* h = &obs.metrics.histogram(
      "bench", "node", "rtt_ms", {1.0, 5.0, 10.0, 50.0, 100.0});
  double x = 0.0;
  for (auto _ : state) {
    VINI_OBS_OBSERVE(h, x);
    x += 0.37;
    if (x > 120.0) x = 0.0;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsTracerRecord(benchmark::State& state) {
  vini::obs::PacketTracer tracer;
  vini::obs::TraceRecord rec;
  rec.event = vini::obs::TraceEvent::kEnqueue;
  rec.bytes = 1538;
  for (auto _ : state) {
    rec.t += 100;
    tracer.record(rec);
  }
  benchmark::DoNotOptimize(tracer.totalRecorded());
}
BENCHMARK(BM_ObsTracerRecord);

void BM_EventQueueProfiled(benchmark::State& state) {
  // Same workload as BM_EventQueueScheduleRun, with the wall-clock
  // profiler attached — the delta is the profiling tax per event.
  for (auto _ : state) {
    vini::sim::EventQueue q;
    vini::obs::EventLoopProfiler profiler;
    profiler.attach(q);
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule(i * 100, "bench", [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
    benchmark::DoNotOptimize(profiler.totalEvents());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueProfiled);

}  // namespace

BENCHMARK_MAIN();
