// Table 6: summary of jitter results on PlanetLab (units are ms).
//
// Paper:                      mean    stddev
//   Network                   0.27     0.16
//   IIAS on PlanetLab         2.4      3.7
//   IIAS on PL-VINI           1.3      0.9
//
// iperf UDP CBR streams between 1 and 50 Mb/s, Chicago -> Washington;
// "jitter did not appear to be correlated with stream size and so we
// report the jitter results across all streams."  PL-VINI halves the
// mean jitter and cuts the spread.
#include "app/iperf.h"
#include "bench_common.h"
#include "planetlab.h"

using namespace vini;
using bench::PlMode;

namespace {

sim::SampleStats runMode(PlMode mode) {
  sim::SampleStats jitter;
  const double rates_mbps[] = {1, 5, 10, 20, 30, 40, 50};
  int idx = 0;
  for (double rate : rates_mbps) {
    auto world = bench::makePlanetLabWorld(mode, 7000 + 13 * static_cast<std::uint64_t>(idx++));
    const auto ends = bench::endpointsFor(mode, *world);
    app::IperfUdpServer server(world->stack("Washington"), 5002);
    app::IperfUdpClient client(world->stack("Chicago"), ends.dst, 5002,
                               rate * 1e6, 1430, ends.src);
    client.start(10 * sim::kSecond);
    world->queue.runUntil(world->queue.now() + 12 * sim::kSecond);
    if (server.packetsReceived() > 10) jitter.add(server.jitterMs());
  }
  return jitter;
}

}  // namespace

int main() {
  bench::header("Table 6: summary of jitter results on PlanetLab (ms)",
                "Table 6");
  std::printf("\n%-22s %8s %8s   |  paper (mean/sd)\n", "", "mean", "stddev");
  struct Case {
    PlMode mode;
    const char* paper;
  };
  const Case cases[] = {
      {PlMode::kNetwork, "0.27 / 0.16"},
      {PlMode::kIiasDefault, "2.4 / 3.7"},
      {PlMode::kIiasPlVini, "1.3 / 0.9"},
  };
  for (const auto& c : cases) {
    const auto stats = runMode(c.mode);
    std::printf("%-22s %8.2f %8.2f   |  %s\n", bench::plModeName(c.mode),
                stats.mean(), stats.stddev(), c.paper);
  }
  bench::note(
      "\nCBR streams of 1..50 Mb/s, RFC 1889 interarrival jitter as iperf\n"
      "computes it, aggregated across all stream rates.");
  return 0;
}
