// Engine throughput benchmark: how fast does the substrate itself run?
//
// Unlike the table/figure benches (which reproduce the paper's numbers),
// this bench measures the *simulator*: it drives the Abilene-11 mirror
// under saturating iperf UDP load — every access NIC offered more
// traffic than it can carry — and reports raw discrete-event engine
// throughput:
//
//   events/sec            executed events per wall-clock second
//   sim-packets/sec       packets clocked onto physical wires per wall second
//   sim/wall ratio        simulated seconds per wall second (>1 = faster
//                         than real time)
//   peak event storage    high-water entries resident in the event queue
//                         (live + cancelled tombstones — the memory the
//                         engine pins)
//
// Results go to BENCH_engine.json so every later PR shows a perf
// trajectory; scripts/check.sh runs the smoke mode and CI uploads the
// artifact.  The run is seeded and the *simulation* side is
// deterministic (events, packets, peak storage); only the wall-clock
// readings vary between machines.
//
// Both event-queue implementations (binary heap and calendar queue) are
// measured back to back, on identical seeds, so the JSON doubles as the
// queue-selection study.
//
//   bench_engine [--out FILE] [--seconds N] [--flows N] [--queue heap|calendar|both]
//                [--threads LIST] [--profile FILE] [--baseline FILE]
//   VINI_SMOKE=1 shrinks the run for CI gating.
//
// --threads LIST is a comma-separated sweep of engine worker counts
// (default "0,1,2,4,8"; smoke "0,2").  0 is the classic serial engine;
// N >= 1 the sharded engine, whose simulation is byte-identical across
// every N (threads = 1 is its serial reference, so speedup_vs_1t in the
// JSON is a like-for-like parallel speedup).  When the sweep includes a
// threads = 1 run, 4+-thread runs on a >= 6-core machine must clear
// 1.5x its events/s — the parallel-engine payoff gate.
//
// --profile FILE additionally runs the same workload once more with the
// parallelism profiler attached and writes its deterministic
// PROFILE_report.json (see obs/parallelism.h) — the shard-readiness
// artifact CI uploads next to this bench's JSON.  When the sweep
// measured real parallel runs, the measured speedups are cross-checked
// against the profiler's predicted ceilings (warn below 50% of
// predicted).
//
// --baseline FILE compares this run's events/s against a checked-in
// BENCH_engine.json from an earlier commit and fails on a >15%
// regression per (queue implementation, thread count) — the
// perf-trajectory gate.  Skipped under VINI_SMOKE (smoke runs are too
// short to be stable).
#include <chrono>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/iperf.h"
#include "bench_common.h"
#include "obs/parallelism.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

struct RunResult {
  std::string queue_impl;
  int threads = 0;
  double speedup_vs_1t = 0.0;  // filled post-hoc when a 1-thread run ran
  std::uint64_t events = 0;
  std::uint64_t sim_packets = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t peak_pending = 0;
  std::uint64_t peak_storage = 0;

  double eventsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
  double packetsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(sim_packets) / wall_seconds
                            : 0.0;
  }
  double simWallRatio() const {
    return wall_seconds > 0 ? sim_seconds / wall_seconds : 0.0;
  }
};

std::uint64_t totalTxPackets(const topo::World& world) {
  std::uint64_t total = 0;
  for (const auto& link : world.net.links()) {
    total += link->channelFrom(link->nodeA()).stats().tx_packets;
    total += link->channelFrom(link->nodeB()).stats().tx_packets;
  }
  return total;
}

/// One measured run: build the Abilene mirror on the chosen queue
/// implementation, converge the overlay (not timed — we measure the
/// steady-state hot path, not setup), then saturate and time it.
/// `profile_out`, when non-empty, attaches the parallelism profiler to
/// the measured window and writes its PROFILE_report.json there (the
/// profiler is passive, but kept off plain timing runs so the
/// introspection hook never clouds the wall numbers).
RunResult runOnce(sim::QueueImpl impl, int threads, int flows, int seconds,
                  const std::string& profile_out = {},
                  obs::ParallelismProfiler::Report* report_out = nullptr) {
  RunResult result;
  result.queue_impl = sim::queueImplName(impl);
  result.threads = threads;

  topo::WorldOptions options;
  options.seed = 4711;
  options.contention = 0.0;  // quiescent nodes: the engine is the subject
  options.queue_impl = impl;
  options.threads = threads;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::fprintf(stderr, "bench_engine: world did not converge\n");
    std::exit(1);
  }
  const sim::Time t0 = world->queue.now();

  // Saturating load: each flow offers 120 Mb/s of 1430-byte UDP against
  // a 100 Mb/s access NIC, across the backbone in both directions.
  // Every transmit queue on the flow paths stays full, so the engine
  // processes the maximum event rate the topology can generate.
  static const char* kPairs[][2] = {
      {"Washington", "Seattle"},   {"Seattle", "Atlanta"},
      {"Sunnyvale", "NewYork"},    {"LosAngeles", "Chicago"},
      {"Houston", "Indianapolis"}, {"Denver", "Atlanta"},
      {"NewYork", "Sunnyvale"},    {"Atlanta", "KansasCity"},
  };
  const int npairs = static_cast<int>(sizeof(kPairs) / sizeof(kPairs[0]));
  std::vector<std::unique_ptr<app::IperfUdpServer>> servers;
  std::vector<std::unique_ptr<app::IperfUdpClient>> clients;
  for (int i = 0; i < flows; ++i) {
    const char* src = kPairs[i % npairs][0];
    const char* dst = kPairs[i % npairs][1];
    const std::uint16_t port = static_cast<std::uint16_t>(5001 + i);
    servers.push_back(
        std::make_unique<app::IperfUdpServer>(world->stack(dst), port));
    clients.push_back(std::make_unique<app::IperfUdpClient>(
        world->stack(src), world->tapOf(dst), port, 120e6, 1430,
        world->tapOf(src)));
    clients.back()->start(seconds * sim::kSecond);
  }

  obs::ParallelismProfiler profiler;
  if (!profile_out.empty()) {
    profiler.setLookahead(world->net.minPropagation());
    profiler.attach(world->queue);
  }

  const std::uint64_t events_before = world->queue.executedCount();
  const std::uint64_t packets_before = totalTxPackets(*world);
  const auto wall_start = std::chrono::steady_clock::now();
  world->queue.runUntil(t0 + seconds * sim::kSecond);
  const auto wall_end = std::chrono::steady_clock::now();

  if (!profile_out.empty()) {
    const obs::ParallelismProfiler::Report report =
        profiler.analyze({2, 4, 8, 16});
    profiler.detach();
    std::ofstream out(profile_out);
    obs::ParallelismProfiler::writeJson(out, report);
    std::printf("  [profile report written to %s: %llu events, "
                "cross-node ratio %.4f]\n",
                profile_out.c_str(),
                static_cast<unsigned long long>(report.total_events),
                report.cross_node_ratio);
    if (report_out) *report_out = report;
  }

  result.events = world->queue.executedCount() - events_before;
  result.sim_packets = totalTxPackets(*world) - packets_before;
  result.sim_seconds = sim::toSeconds(seconds * sim::kSecond);
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end -
                                                                wall_start)
          .count();
  result.peak_pending = world->queue.peakPendingCount();
  result.peak_storage = world->queue.peakStorageCount();
  return result;
}

/// One baseline entry: (queue_impl, threads) -> events/s.
struct BaselineEntry {
  std::string impl;
  int threads = 0;
  double events_per_sec = 0.0;
};

/// Extract baseline entries from a BENCH_engine.json this bench itself
/// wrote.  A full JSON parser is overkill for our own fixed format: scan
/// for the keys line by line.  Schema v1 files carry no "threads" key;
/// their entries read as threads = 0 (the classic engine), which is what
/// they measured.
std::vector<BaselineEntry> parseBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_engine: cannot open baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::vector<BaselineEntry> result;
  std::string line;
  std::string impl;
  int threads = 0;
  auto fieldTail = [&line](const char* key) -> const char* {
    const std::size_t pos = line.find(key);
    return pos == std::string::npos ? nullptr : line.c_str() + pos +
                                                    std::strlen(key);
  };
  while (std::getline(in, line)) {
    if (const char* v = fieldTail("\"queue_impl\": \"")) {
      impl.assign(v, std::strcspn(v, "\""));
      threads = 0;
    } else if (const char* v = fieldTail("\"threads\": ")) {
      threads = std::atoi(v);
    } else if (const char* v = fieldTail("\"events_per_sec\": ")) {
      if (impl.empty()) {
        std::fprintf(stderr,
                     "bench_engine: malformed baseline %s "
                     "(events_per_sec before queue_impl)\n",
                     path.c_str());
        std::exit(2);
      }
      result.push_back({impl, threads, std::strtod(v, nullptr)});
      impl.clear();
    }
  }
  return result;
}

/// The perf-trajectory gate: fail when any (queue implementation,
/// thread count) pair's events/s fell more than 15% below the
/// checked-in baseline.
int checkBaseline(const std::string& path, const std::vector<RunResult>& runs) {
  constexpr double kMaxRegression = 0.15;
  const auto baseline = parseBaseline(path);
  int failures = 0;
  for (const RunResult& r : runs) {
    double base = 0.0;
    for (const BaselineEntry& b : baseline) {
      if (b.impl == r.queue_impl && b.threads == r.threads) {
        base = b.events_per_sec;
      }
    }
    if (base <= 0.0) {
      std::printf("  perf gate: no baseline entry for queue=%s threads=%d, "
                  "skipping\n",
                  r.queue_impl.c_str(), r.threads);
      continue;
    }
    const double ratio = r.eventsPerSec() / base;
    std::printf("  perf gate: queue=%-8s threads=%d %12.0f events/s vs "
                "baseline %12.0f (%+.1f%%)\n",
                r.queue_impl.c_str(), r.threads, r.eventsPerSec(), base,
                100.0 * (ratio - 1.0));
    if (ratio < 1.0 - kMaxRegression) {
      std::fprintf(stderr,
                   "bench_engine: PERF REGRESSION: queue=%s threads=%d "
                   "dropped %.1f%% below baseline (limit %.0f%%)\n",
                   r.queue_impl.c_str(), r.threads, 100.0 * (1.0 - ratio),
                   100.0 * kMaxRegression);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

void writeRunJson(std::ofstream& out, const RunResult& r, bool last) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"queue_impl\": \"%s\",\n"
      "      \"threads\": %d,\n"
      "      \"events\": %llu,\n"
      "      \"events_per_sec\": %.0f,\n"
      "      \"speedup_vs_1t\": %.3f,\n"
      "      \"sim_packets\": %llu,\n"
      "      \"sim_packets_per_sec\": %.0f,\n"
      "      \"sim_seconds\": %.3f,\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"sim_wall_ratio\": %.3f,\n"
      "      \"peak_pending_events\": %llu,\n"
      "      \"peak_event_storage\": %llu\n"
      "    }%s\n",
      r.queue_impl.c_str(), r.threads,
      static_cast<unsigned long long>(r.events), r.eventsPerSec(),
      r.speedup_vs_1t, static_cast<unsigned long long>(r.sim_packets),
      r.packetsPerSec(), r.sim_seconds, r.wall_seconds, r.simWallRatio(),
      static_cast<unsigned long long>(r.peak_pending),
      static_cast<unsigned long long>(r.peak_storage), last ? "" : ",");
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("VINI_SMOKE") != nullptr;
  std::string out_path = "BENCH_engine.json";
  std::string queue_arg = "both";
  std::string threads_arg = smoke ? "0,2" : "0,1,2,4,8";
  std::string profile_path;
  std::string baseline_path;
  int seconds = smoke ? 2 : 10;
  int flows = smoke ? 4 : 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_engine: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = value("--out")) {
      out_path = v;
    } else if (const char* v = value("--seconds")) {
      seconds = std::atoi(v);
    } else if (const char* v = value("--flows")) {
      flows = std::atoi(v);
    } else if (const char* v = value("--queue")) {
      queue_arg = v;
    } else if (const char* v = value("--threads")) {
      threads_arg = v;
    } else if (const char* v = value("--profile")) {
      profile_path = v;
    } else if (const char* v = value("--baseline")) {
      baseline_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine [--out FILE] [--seconds N] "
                   "[--flows N] [--queue heap|calendar|both] "
                   "[--threads LIST] [--profile FILE] [--baseline FILE]\n");
      return 2;
    }
  }

  std::vector<int> thread_counts;
  {
    std::stringstream ss(threads_arg);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      const int n = std::atoi(tok.c_str());
      if (n < 0) {
        std::fprintf(stderr, "bench_engine: bad --threads entry '%s'\n",
                     tok.c_str());
        return 2;
      }
      thread_counts.push_back(n);
    }
    if (thread_counts.empty()) {
      std::fprintf(stderr, "bench_engine: empty --threads list\n");
      return 2;
    }
  }

  bench::header("Engine throughput: Abilene-11 under saturating iperf",
                "the substrate itself (ROADMAP item 1)");
  std::vector<sim::QueueImpl> impls;
  if (queue_arg == "heap" || queue_arg == "both") {
    impls.push_back(sim::QueueImpl::kHeap);
  }
  if (queue_arg == "calendar" || queue_arg == "both") {
    impls.push_back(sim::QueueImpl::kCalendar);
  }
  if (impls.empty()) {
    std::fprintf(stderr, "bench_engine: unknown --queue '%s'\n",
                 queue_arg.c_str());
    return 2;
  }

  std::vector<RunResult> runs;
  for (const sim::QueueImpl impl : impls) {
    for (const int threads : thread_counts) {
      RunResult r = runOnce(impl, threads, flows, seconds);
      std::printf(
          "\n  queue=%-8s threads=%d %9.2f s sim in %6.2f s wall "
          "(ratio %6.2f)\n"
          "    events        %12llu   (%.0f events/s)\n"
          "    sim packets   %12llu   (%.0f packets/s)\n"
          "    peak pending  %12llu   peak storage %llu\n",
          r.queue_impl.c_str(), r.threads, r.sim_seconds, r.wall_seconds,
          r.simWallRatio(), static_cast<unsigned long long>(r.events),
          r.eventsPerSec(), static_cast<unsigned long long>(r.sim_packets),
          r.packetsPerSec(), static_cast<unsigned long long>(r.peak_pending),
          static_cast<unsigned long long>(r.peak_storage));
      runs.push_back(std::move(r));
    }
  }

  // Parallel speedup, measured against the same implementation's
  // 1-thread run — the sharded engine's own serial schedule, so the
  // ratio isolates the parallelism (threads = 0 is a different event
  // order and not a fair denominator).
  for (RunResult& r : runs) {
    if (r.threads < 1) continue;
    for (const RunResult& ref : runs) {
      if (ref.queue_impl == r.queue_impl && ref.threads == 1 &&
          ref.eventsPerSec() > 0) {
        r.speedup_vs_1t = r.eventsPerSec() / ref.eventsPerSec();
      }
    }
  }

  // The shard-readiness profile rides a separate run so the profiler's
  // introspection hook never touches the timed ones.
  obs::ParallelismProfiler::Report profile_report;
  if (!profile_path.empty()) {
    runOnce(impls[0], /*threads=*/0, flows, seconds, profile_path,
            &profile_report);
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"engine\",\n"
      << "  \"schema_version\": 2,\n"
      << "  \"topology\": \"abilene-11\",\n"
      << "  \"workload\": \"saturating-udp-iperf\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"flows\": " << flows << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    writeRunJson(out, runs[i], i + 1 == runs.size());
  }
  out << "  ]\n}\n";
  std::printf("\n  [results written to %s]\n", out_path.c_str());

  // Consistency gate, not a perf gate: the *simulation* must not depend
  // on engine internals.  Classic runs (threads = 0) must agree with
  // each other across queue implementations, and sharded runs (threads
  // >= 1) must agree with each other across queue implementations AND
  // thread counts.  (Classic and sharded are different — but each
  // individually deterministic — event orders; see DESIGN.md.)  Wall
  // time is the only column allowed to differ.
  const RunResult* classic_ref = nullptr;
  const RunResult* sharded_ref = nullptr;
  for (const RunResult& r : runs) {
    const RunResult*& ref = r.threads == 0 ? classic_ref : sharded_ref;
    if (!ref) {
      ref = &r;
      continue;
    }
    if (r.events != ref->events || r.sim_packets != ref->sim_packets) {
      std::fprintf(stderr,
                   "bench_engine: runs diverged "
                   "(%s/t%d: %llu events / %llu packets, "
                   "%s/t%d: %llu / %llu)\n",
                   ref->queue_impl.c_str(), ref->threads,
                   static_cast<unsigned long long>(ref->events),
                   static_cast<unsigned long long>(ref->sim_packets),
                   r.queue_impl.c_str(), r.threads,
                   static_cast<unsigned long long>(r.events),
                   static_cast<unsigned long long>(r.sim_packets));
      return 1;
    }
  }

  // Measured-vs-predicted cross-check: the profiler's CP(k) model gives
  // a ceiling; landing below half of it flags a scaling problem (windows
  // too small, barrier overhead, load imbalance) without failing the
  // bench — machines differ.
  if (!profile_path.empty()) {
    for (const RunResult& r : runs) {
      if (r.threads < 2 || r.speedup_vs_1t <= 0) continue;
      for (const auto& pred : profile_report.predictions) {
        if (pred.shards != r.threads || pred.predicted_speedup <= 0) continue;
        const double frac = r.speedup_vs_1t / pred.predicted_speedup;
        std::printf("  scaling: queue=%-8s threads=%d measured %.2fx vs "
                    "predicted %.2fx (%.0f%%)\n",
                    r.queue_impl.c_str(), r.threads, r.speedup_vs_1t,
                    pred.predicted_speedup, 100.0 * frac);
        if (frac < 0.5) {
          std::fprintf(stderr,
                       "bench_engine: WARNING: queue=%s threads=%d reached "
                       "only %.0f%% of the predicted %.2fx speedup\n",
                       r.queue_impl.c_str(), r.threads, 100.0 * frac,
                       pred.predicted_speedup);
        }
      }
    }
  }

  // The parallel-engine payoff gate: with 4+ workers on a machine that
  // actually has the cores, the sharded engine must clear 1.5x its own
  // serial (1-thread) schedule, or the parallelism is not paying for its
  // barriers.  Needs both a 1-thread and a 4+-thread run in the sweep.
  if (!smoke && std::thread::hardware_concurrency() >= 6) {
    for (const RunResult& r : runs) {
      if (r.threads >= 4 && r.speedup_vs_1t > 0 && r.speedup_vs_1t < 1.5) {
        std::fprintf(stderr,
                     "bench_engine: SCALING REGRESSION: queue=%s threads=%d "
                     "speedup %.2fx < 1.5x over the 1-thread run\n",
                     r.queue_impl.c_str(), r.threads, r.speedup_vs_1t);
        return 1;
      }
    }
  }

  if (!baseline_path.empty()) {
    if (smoke) {
      std::printf("  perf gate: skipped under VINI_SMOKE "
                  "(smoke runs are not timing-stable)\n");
    } else if (int rc = checkBaseline(baseline_path, runs)) {
      return rc;
    }
  }
  return 0;
}
