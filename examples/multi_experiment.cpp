// Simultaneous experiments on one physical infrastructure (Section 3.4):
// two research groups share the Abilene substrate.  Group 1 mirrors the
// whole backbone; group 2 runs a 4-node ring on a subset of the PoPs.
// Each slice has its own address space, tunnel ports, routing processes,
// and resources; failures injected into one do not perturb the other —
// and the VINI layer delivers upcalls when the *physical* network
// misbehaves underneath them both.
//
// Build & run:  ./examples/multi_experiment
#include <cstdio>

#include "app/ping.h"
#include "topo/worlds.h"

using namespace vini;

namespace {

bool pingAcross(topo::World& world, overlay::IiasNetwork& iias,
                const char* from, const char* to) {
  app::Pinger::Options popt;
  popt.count = 10;
  popt.source = iias.slice().nodeByName(from)->tapAddress();
  app::Pinger pinger(world.stack(iias.slice().nodeByName(from)->physNode().name()),
                     iias.slice().nodeByName(to)->tapAddress(), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 15 * sim::kSecond);
  return done && pinger.report().received == 10;
}

}  // namespace

int main() {
  topo::WorldOptions options;
  options.contention = 0.0;
  auto world = topo::makeAbileneSubstrate(options);
  core::TopologyEmbedder embedder(*world->vini);

  overlay::IiasConfig config;
  config.costs = topo::clickCosts();
  config.ospf.hello_interval = 5 * sim::kSecond;
  config.ospf.dead_interval = 10 * sim::kSecond;
  config.socket_buffer = topo::kIiasSocketBuffer;

  // Slice 1: a full Abilene mirror with a guaranteed CPU reservation.
  core::ResourceSpec group1_resources;
  group1_resources.cpu_reservation = 0.25;
  group1_resources.realtime = true;
  auto mirror = embedder.embed(topo::abileneMirrorSpec("group1-mirror"),
                               group1_resources);
  overlay::IiasNetwork group1(std::move(mirror), world->stacks, config);

  // Slice 2: a little ring over four PoPs, default resources.  The PoPs
  // are chosen so each virtual link pins to a disjoint fiber path — a
  // single physical failure then takes down exactly one ring edge.
  core::TopologySpec ring;
  ring.name = "group2-ring";
  ring.nodes = {{"w", "Seattle"}, {"x", "Denver"}, {"y", "Houston"},
                {"z", "Sunnyvale"}};
  ring.links = {{"w", "x", 1}, {"x", "y", 1}, {"y", "z", 1}, {"z", "w", 1}};
  auto ring_embedding = embedder.embed(ring);
  overlay::IiasNetwork group2(std::move(ring_embedding), world->stacks, config);

  std::printf("slice 1: %-14s  overlay %s  tunnel port %u\n",
              group1.slice().name().c_str(),
              group1.slice().overlayPrefix().str().c_str(),
              group1.slice().tunnelPort());
  std::printf("slice 2: %-14s  overlay %s  tunnel port %u\n\n",
              group2.slice().name().c_str(),
              group2.slice().overlayPrefix().str().c_str(),
              group2.slice().tunnelPort());

  // Slice 2 subscribes to infrastructure upcalls.
  world->vini->upcalls().subscribe(
      group2.slice().id(), [&](const core::UpcallEvent& event) {
        std::printf("  [upcall -> group2] %s (phys link %d) at t=%.1fs\n",
                    core::upcallTypeName(event.type), event.phys_link_id,
                    sim::toSeconds(event.when));
      });

  group1.start();
  group2.start();
  while (!(group1.allAdjacent() && group2.allAdjacent())) {
    world->queue.runUntil(world->queue.now() + sim::kSecond);
  }
  world->queue.runUntil(world->queue.now() + 3 * sim::kSecond);
  std::printf("both slices converged independently.\n");
  std::printf("  group1 Washington->Seattle: %s\n",
              pingAcross(*world, group1, "Washington", "Seattle") ? "ok" : "FAIL");
  std::printf("  group2 w->y (around the ring): %s\n\n",
              pingAcross(*world, group2, "w", "y") ? "ok" : "FAIL");

  // Group 1 fails one of ITS virtual links; group 2 must not notice.
  std::printf("group1 fails its Denver-KansasCity virtual link...\n");
  group1.failLink("Denver", "KansasCity");
  world->queue.runUntil(world->queue.now() + 20 * sim::kSecond);
  std::printf("  group1 rerouted: Washington->Seattle %s\n",
              pingAcross(*world, group1, "Washington", "Seattle") ? "ok" : "FAIL");
  std::printf("  group2 unaffected: w->y %s\n\n",
              pingAcross(*world, group2, "w", "y") ? "ok" : "FAIL");

  // Now the PHYSICAL Seattle-Denver fiber fails: both slices that ride
  // it share its fate, and group 2's upcall handler hears about it.
  std::printf("physical Seattle-Denver fiber fails...\n");
  world->net.linkBetween("Seattle", "Denver")->setUp(false);
  world->queue.runUntil(world->queue.now() + 20 * sim::kSecond);
  std::printf("  group2 reroutes around the ring: w->y %s\n",
              pingAcross(*world, group2, "w", "y") ? "ok" : "FAIL");
  return 0;
}
