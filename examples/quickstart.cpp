// Quickstart: build a virtual network on a physical substrate, run real
// routing software over it, and send traffic through it.
//
//   1. Create a physical network (4 nodes in a diamond).
//   2. Create the VINI layer and a slice for our experiment.
//   3. Embed a virtual topology and deploy IIAS (Click + XORP) on it.
//   4. Wait for OSPF to converge, then ping across the overlay.
//   5. Fail a virtual link and watch the routing protocol route around it.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "app/ping.h"
#include "core/embedder.h"
#include "core/vini.h"
#include "overlay/iias.h"
#include "phys/network.h"
#include "tcpip/stack_manager.h"
#include "topo/calibration.h"

using namespace vini;

int main() {
  // -- 1. The physical substrate: four sites in a diamond -------------------
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  auto& amsterdam = net.addNode("amsterdam", packet::IpAddress(192, 0, 2, 1));
  auto& berlin = net.addNode("berlin", packet::IpAddress(192, 0, 2, 2));
  auto& geneva = net.addNode("geneva", packet::IpAddress(192, 0, 2, 3));
  auto& dublin = net.addNode("dublin", packet::IpAddress(192, 0, 2, 4));
  phys::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.propagation = sim::fromMillis(5.0);
  phys::LinkConfig slow = fast;
  slow.propagation = sim::fromMillis(12.0);  // the Dublin detour is longer
  net.addLink(amsterdam, berlin, fast);
  net.addLink(berlin, geneva, fast);
  net.addLink(amsterdam, dublin, slow);
  net.addLink(dublin, geneva, slow);
  tcpip::StackManager stacks(net);

  // -- 2. The VINI layer -----------------------------------------------------
  core::Vini vini(net);

  // -- 3. Embed a virtual topology and deploy IIAS ---------------------------
  core::TopologySpec spec;
  spec.name = "quickstart";
  spec.nodes = {{"a", "amsterdam"}, {"b", "berlin"}, {"g", "geneva"},
                {"d", "dublin"}};
  spec.links = {{"a", "b", 10}, {"b", "g", 10}, {"a", "d", 25}, {"d", "g", 25}};
  core::TopologyEmbedder embedder(vini);
  auto embedding = embedder.embed(spec);

  overlay::IiasConfig config;
  config.costs = topo::clickCosts();
  config.ospf.hello_interval = 2 * sim::kSecond;
  config.ospf.dead_interval = 6 * sim::kSecond;
  overlay::IiasNetwork iias(std::move(embedding), stacks, config);
  iias.start();

  // -- 4. Converge and ping --------------------------------------------------
  while (!iias.allAdjacent()) queue.runUntil(queue.now() + sim::kSecond);
  queue.runUntil(queue.now() + 2 * sim::kSecond);
  std::printf("OSPF converged at t=%.1fs; %zu routes at node 'a'\n",
              sim::toSeconds(queue.now()),
              iias.router("a")->xorp().rib().winners().size());

  auto ping = [&](const char* label) {
    app::Pinger::Options popt;
    popt.count = 20;
    popt.source = iias.slice().nodeByName("a")->tapAddress();
    app::Pinger pinger(*stacks.getByName("amsterdam"),
                       iias.slice().nodeByName("g")->tapAddress(), popt);
    bool done = false;
    pinger.start([&] { done = true; });
    queue.runUntil(queue.now() + 10 * sim::kSecond);
    std::printf("%-28s %llu/%llu replies, rtt avg %.2f ms\n", label,
                static_cast<unsigned long long>(pinger.report().received),
                static_cast<unsigned long long>(pinger.report().transmitted),
                pinger.report().rtt_ms.mean());
  };
  ping("a -> g (via berlin):");

  // -- 5. Fail the cheap path; OSPF reroutes via dublin ----------------------
  std::printf("\nfailing virtual link a-b (dropping its packets in Click)...\n");
  iias.failLink("a", "b");
  queue.runUntil(queue.now() + 10 * sim::kSecond);  // dead interval + SPF
  ping("a -> g (rerouted via dublin):");

  auto route = iias.router("a")->xorp().rib().lookup(
      iias.slice().nodeByName("g")->tapAddress());
  if (route) {
    std::printf("\nnode 'a' route to 'g': next hop %s, metric %u\n",
                route->next_hop.str().c_str(), route->metric);
  }
  return 0;
}
