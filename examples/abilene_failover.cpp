// The Section 5.2 experiment, driven by an ns-like experiment script:
// IIAS mirrors the Abilene backbone (real topology, real IGP weights,
// hello 5 s / dead 10 s); ping runs from Washington D.C. to Seattle; the
// Denver-Kansas City virtual link fails at t=10 s and is restored at
// t=34 s.  Watch OSPF detect, reroute to the southern path, and fall
// back — the live version of Figure 8.
//
// Build & run:  ./examples/abilene_failover
#include <cstdio>

#include "app/ping.h"
#include "topo/experiment_spec.h"
#include "topo/worlds.h"

using namespace vini;

int main() {
  topo::WorldOptions options;
  options.resources.cpu_reservation = 0.25;  // the PL-VINI configuration
  options.resources.realtime = true;
  auto world = topo::makeAbileneWorld(options);
  std::printf("deploying IIAS across %zu Abilene PoPs...\n",
              world->iias->routers().size());
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    std::fprintf(stderr, "OSPF did not converge\n");
    return 1;
  }
  const sim::Time t0 = world->queue.now();
  std::printf("converged (%zu total routes).\n\n", world->iias->totalOspfRoutes());

  // The experiment, as a script (Section 6.2's "experiment specification").
  const auto actions = topo::parseExperimentScript(R"(
    # Figure 8 schedule, relative to convergence time
    at 10.0 fail-link    Denver KansasCity
    at 34.0 restore-link Denver KansasCity
    at 55.0 mark         end-of-run
  )");
  // Rebase the script onto the converged clock.
  for (auto action : actions) {
    auto rebased = action;
    rebased.at_seconds += sim::toSeconds(t0);
    topo::applyExperimentScript({rebased}, world->schedule, world->iias.get(),
                                &world->net);
  }

  app::Pinger::Options popt;
  popt.count = 110;
  popt.flood = false;
  popt.interval = sim::kSecond / 2;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  double last_rtt = 0;
  pinger.on_reply = [&](std::uint64_t, sim::Duration rtt) {
    const double ms = sim::toMillis(rtt);
    const double t = sim::toSeconds(world->queue.now() - t0);
    if (last_rtt == 0 || std::abs(ms - last_rtt) > 3.0) {
      std::printf("t=%5.1fs  rtt %6.1f ms   <-- path change\n", t, ms);
    } else if (static_cast<int>(t * 2) % 10 == 0) {
      std::printf("t=%5.1fs  rtt %6.1f ms\n", t, ms);
    }
    last_rtt = ms;
  };
  pinger.start();
  world->queue.runUntil(t0 + 58 * sim::kSecond);

  std::printf("\n%llu of %llu probes answered; the gap is the OSPF dead\n",
              static_cast<unsigned long long>(pinger.report().received),
              static_cast<unsigned long long>(pinger.report().transmitted));
  std::printf("interval (10 s) plus flooding and SPF — exactly Figure 8.\n");
  for (const auto& entry : world->schedule.log()) {
    std::printf("  script: %-35s at t=%.1fs\n", entry.label.c_str(),
                sim::toSeconds(entry.when - t0));
  }
  return 0;
}
