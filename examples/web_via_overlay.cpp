// The life of a packet (Figure 2): a browser on an opted-in end host
// fetches a page from a web server that knows nothing about the
// overlay.
//
//   Firefox -> OpenVPN client -> (UDP tunnel) -> OpenVPN server on the
//   ingress node -> Click forwards across the IIAS overlay -> NAPT at
//   the egress rewrites the private source -> the "real Internet" ->
//   www.cnn.com -> return traffic lands at the egress (it carries the
//   egress's public address), is pulled back into Click, crosses the
//   overlay, and is tunneled down to the client.
//
// Build & run:  ./examples/web_via_overlay
#include <cstdio>

#include "app/web.h"
#include "overlay/openvpn.h"
#include "topo/worlds.h"

using namespace vini;

int main() {
  // IIAS over the DETER chain; a client hangs off Src, a web server
  // ("CNN") hangs off Sink.
  auto world = topo::makeDeterWorld();
  auto& net = world->net;
  auto& client_node = net.addNode("Client", packet::IpAddress(128, 112, 93, 81));
  auto& cnn_node = net.addNode("CNN", packet::IpAddress(64, 236, 16, 20));
  net.addLink(client_node, *net.nodeByName("Src"));
  net.addLink(*net.nodeByName("Sink"), cnn_node);
  auto& client_stack = world->stacks.ensure(client_node);
  auto& cnn_stack = world->stacks.ensure(cnn_node);

  // Roles: Src is the overlay ingress, Sink the egress.
  world->router("Sink")->setExternalEgress();
  overlay::OpenVpnServer vpn_server(*world->router("Src"),
                                    packet::Prefix::mustParse("10.1.250.0/24"));
  world->runUntilConverged(60 * sim::kSecond);
  std::printf("overlay converged; ingress=Src egress=Sink\n");

  // The end host opts in.
  overlay::OpenVpnClient vpn_client(client_stack, "laptop");
  if (!vpn_client.connect(vpn_server)) {
    std::fprintf(stderr, "VPN connect failed\n");
    return 1;
  }
  std::printf("client opted in; assigned overlay address %s\n\n",
              vpn_client.overlayAddress().str().c_str());

  // Watch the packet cross each boundary.
  cnn_stack.setRxTrace([&](const packet::Packet& p) {
    if (p.isTcp() && p.tcpHeader()->flags.syn) {
      std::printf("  [CNN]    SYN arrives from %s (the egress's public "
                  "address — NAPT did its job)\n",
                  p.ip.src.str().c_str());
    }
  });

  app::WebServer cnn(cnn_stack, 80, 50'000);
  app::WebClient firefox(client_stack);
  std::printf("Firefox fetches http://%s/ ...\n",
              cnn_stack.address().str().c_str());
  bool done = false;
  firefox.fetch(cnn_stack.address(), 80, vpn_client.overlayAddress(),
                [&](const app::WebClient::FetchResult& result) {
                  done = true;
                  std::printf("  [Client] page received: %zu bytes in %.1f ms\n",
                              result.bytes, sim::toMillis(result.elapsed));
                });
  world->queue.runUntil(world->queue.now() + 60 * sim::kSecond);
  if (!done) {
    std::fprintf(stderr, "fetch did not complete\n");
    return 1;
  }

  auto& napt = world->router("Sink")->napt();
  std::printf("\nscorecard:\n");
  std::printf("  OpenVPN ingress packets:       %llu\n",
              static_cast<unsigned long long>(vpn_server.ingressPackets()));
  std::printf("  OpenVPN egress packets:        %llu\n",
              static_cast<unsigned long long>(vpn_server.egressPackets()));
  std::printf("  NAPT translations out/back:    %llu / %llu\n",
              static_cast<unsigned long long>(napt.translatedOut()),
              static_cast<unsigned long long>(napt.translatedBack()));
  std::printf("  active NAPT mappings:          %zu\n", napt.activeMappings());
  std::printf("\nEvery hop of Figure 2 ran: opt-in ingress, overlay\n"
              "forwarding, NAT egress, and the return path through VINI.\n");
  return 0;
}
