#!/usr/bin/env bash
# The vini-verify gate: strict build + spec lint + clang-tidy +
# sanitized test suites, as one command.  CI runs exactly this script;
# locally it is also reachable as `cmake --build build --target check`.
#
# Stages:
#   1. strict build: -Wall -Wextra -Werror, runtime audits compiled in,
#      observability layer on (-DVINI_OBS=ON)
#   2. vini_lint over every spec shipped under examples/specs/
#   2b. vini_srclint: self-test, then a V2xx determinism/concurrency scan
#      of src/ and tools/ against the checked-in baseline — unbaselined
#      errors and stale baseline entries both fail the gate
#   3. full ctest suite on the strict build
#   4. vini_trace --self-test (VTRC binary format round trip)
#   5. smoke-run the obs-ported benches (VINI_SMOKE=1): fig6, fig8, and
#      the BM_Obs micro-benchmarks.  These run with a live metrics
#      registry, so any metric registered twice with conflicting types
#      aborts the bench (std::logic_error) and fails the gate.  They run
#      from the build dir so their CSVs never clobber tracked artifacts.
#   5b. vini_chaos smoke: a seeded fault campaign must pass its
#      invariant audits and print byte-identical reports across two runs
#   5c. vini_timeline: self-test, a fixed-seed double export that must
#      be byte-identical (spans, timeline, series, and the Chrome trace
#      JSON), and a validate pass over the JSON (well-formedness plus
#      per-track timestamp monotonicity)
#   5d. engine throughput bench smoke: bench_engine runs both queue
#      implementations (its internal gate fails unless they simulate
#      identical event/packet counts) and writes BENCH_engine.json;
#      then a same-seed vini_timeline export under --queue heap and
#      --queue calendar must be byte-identical file for file
#   5e. live-migration chaos smoke: a seeded campaign with the migrate
#      verb enabled (spare substrate node, V130-V133 audits) must pass
#      and print byte-identical reports and migration JSON across two
#      runs; MIGRATION_report.json is the CI artifact
#   5f. parallelism-ceiling profiler gate: vini_profile --self-test,
#      then a same-seed double run whose PROFILE_report.json files must
#      be byte-identical, and a bench_engine --profile run that must
#      reproduce vini_profile's report byte for byte (two independent
#      drivers of the same seeded scenario).  PROFILE_report.json is a
#      CI artifact
#   5g. perf-trajectory gate: a fresh full-fidelity bench_engine run is
#      compared against the checked-in BENCH_engine.json; events/s more
#      than 15% below baseline fails.  The binary self-skips the
#      comparison under VINI_SMOKE (smoke runs are too short to be
#      stable), so exporting VINI_SMOKE=1 before check.sh skips it
#   5h. sharded-engine determinism gate: the canned vini_timeline
#      scenario is exported under the parallel engine at 1, 2, and 8
#      worker threads on both queue implementations, and every export
#      (Chrome JSON, spans/timeline/series CSV) must be byte-identical
#      to the 1-thread reference — thread count must never leak into
#      results
#   6. clang-tidy over src/ and tools/ (skipped when not installed)
#   7. full ctest suite under AddressSanitizer and UBSan builds, with
#      the runtime shard-ownership check armed (-DVINI_SHARD_CHECK=ON)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
FAILED=0

stage() { echo; echo "==== $* ===="; }

# --- 1. Strict build (warnings are errors, audits + obs on) -----------------
stage "build (VINI_WERROR=ON VINI_AUDIT=ON VINI_OBS=ON)"
cmake -B build-check -S . \
  -DVINI_WERROR=ON -DVINI_AUDIT=ON -DVINI_OBS=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
cmake --build build-check -j "$JOBS"

# --- 2. Lint every shipped spec ----------------------------------------------
stage "vini_lint examples/specs"
./build-check/tools/vini_lint \
  examples/specs/abilene.conf \
  examples/specs/denver_failover.exp \
  examples/specs/maintenance.trace \
  examples/specs/chaos.trace
./build-check/tools/vini_lint examples/specs/deter.conf

# --- 2b. Source determinism/concurrency lint ---------------------------------
# The V2xx pass: unordered iteration feeding output, pointer-keyed
# containers, wall-clock/randomness escapes, mutable statics, and
# missing VINI_GUARDED_BY on cross-shard members.  Suppressions live in
# examples/specs/srclint.baseline and must each carry a justification.
stage "vini_srclint (self-test + src/ tools/ scan vs baseline)"
./build-check/tools/vini_srclint --self-test
./build-check/tools/vini_srclint --root . \
  --baseline examples/specs/srclint.baseline src tools

# --- 3. Test suite with audits compiled in -----------------------------------
stage "ctest (audited build)"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

# --- 4. Trace-format self-test -----------------------------------------------
stage "vini_trace --self-test"
./build-check/tools/vini_trace --self-test

# --- 5. Smoke-run the obs-ported benches -------------------------------------
# A type-conflicting metric registration throws std::logic_error at
# startup, so the smoke runs double as the registration-consistency gate.
stage "bench smoke (VINI_SMOKE=1)"
(cd build-check && VINI_SMOKE=1 ./bench/bench_fig6_udp_loss > /dev/null)
(cd build-check && VINI_SMOKE=1 ./bench/bench_fig8_ospf_convergence > /dev/null)
(cd build-check && ./bench/bench_micro --benchmark_filter='BM_Obs.*' \
  > /dev/null 2>&1)

# --- 5b. Chaos smoke ----------------------------------------------------------
# A seeded fault campaign must pass its invariant audits (V120-V123)
# AND be bit-reproducible: the same seed twice must print the same
# bytes, or determinism regressed somewhere in the stack.
stage "vini_chaos smoke (VINI_SMOKE=1, seed 1, twice)"
(cd build-check && VINI_SMOKE=1 ./tools/vini_chaos --seed 1 > chaos-run-1.txt)
(cd build-check && VINI_SMOKE=1 ./tools/vini_chaos --seed 1 > chaos-run-2.txt)
diff build-check/chaos-run-1.txt build-check/chaos-run-2.txt || {
  echo "vini_chaos: seed 1 is not bit-reproducible"; exit 1; }

# --- 5c. Timeline gate --------------------------------------------------------
# The span/timeline/sampler stack must export deterministically: two
# same-seed runs of the canned scenario produce byte-identical files,
# and the Chrome trace JSON parses with monotonic per-track timestamps.
stage "vini_timeline (self-test + fixed-seed double export + validate)"
./build-check/tools/vini_timeline --self-test
(cd build-check && VINI_SMOKE=1 ./tools/vini_timeline export --seed 811 \
  --out timeline-run-1 > /dev/null)
(cd build-check && VINI_SMOKE=1 ./tools/vini_timeline export --seed 811 \
  --out timeline-run-2 > /dev/null)
for EXT in json spans.csv timeline.csv series.csv; do
  diff "build-check/timeline-run-1.$EXT" "build-check/timeline-run-2.$EXT" || {
    echo "vini_timeline: seed 811 export ($EXT) is not bit-reproducible"
    exit 1
  }
done
./build-check/tools/vini_timeline validate build-check/timeline-run-1.json

# --- 5d. Engine throughput bench + cross-queue determinism -------------------
# bench_engine saturates the Abilene mirror with iperf traffic under
# both event-queue implementations and exits nonzero if they disagree
# on events executed or packets simulated.  The export diff then proves
# the stronger property end to end: heap and calendar queues produce
# byte-identical observability artifacts, not just identical counts.
stage "bench_engine smoke (VINI_SMOKE=1, --queue both) + heap/calendar export diff"
(cd build-check && VINI_SMOKE=1 ./bench/bench_engine --queue both \
  --out BENCH_engine.json)
# Full fidelity (no VINI_SMOKE): the diff covers the complete canned
# scenario, failover and all.
for IMPL in heap calendar; do
  (cd build-check && ./tools/vini_timeline export --seed 811 \
    --queue "$IMPL" --out "timeline-$IMPL" > /dev/null)
done
for EXT in json spans.csv timeline.csv series.csv; do
  diff "build-check/timeline-heap.$EXT" "build-check/timeline-calendar.$EXT" || {
    echo "vini_timeline: heap and calendar queues diverge ($EXT)"
    exit 1
  }
done

# --- 5e. Live-migration chaos smoke ------------------------------------------
# A seeded chaos campaign with live migrations enabled (spare substrate
# node, migrate verb, V130-V133 audits) must PASS and be bit-reproducible:
# two same-seed runs are byte-diffed, report and migration JSON both.
# The JSON lands next to BENCH_engine.json as a CI artifact.
stage "vini_chaos --migrate seeded smoke + double-run diff"
(cd build-check && ./tools/vini_chaos --world deter --duration 60 --seed 1 \
  --migrate --json MIGRATION_report.json > migration-run-1.txt)
(cd build-check && ./tools/vini_chaos --world deter --duration 60 --seed 1 \
  --migrate --json migration-run-2.json > migration-run-2.txt)
diff build-check/migration-run-1.txt build-check/migration-run-2.txt || {
  echo "vini_chaos --migrate: seed 1 report is not bit-reproducible"
  exit 1
}
diff build-check/MIGRATION_report.json build-check/migration-run-2.json || {
  echo "vini_chaos --migrate: seed 1 migration JSON is not bit-reproducible"
  exit 1
}

# --- 5f. Parallelism-ceiling profiler gate -----------------------------------
# The profiler's report must be a pure function of the seed: two runs
# byte-diff, and the same scenario driven through bench_engine --profile
# must produce the same bytes again.  PROFILE_report.json is the CI
# artifact consumed by shard-count planning.
stage "vini_profile (self-test + double-run diff + bench_engine --profile diff)"
./build-check/tools/vini_profile --self-test
(cd build-check && VINI_SMOKE=1 ./tools/vini_profile run --seed 4711 \
  --out PROFILE_report.json > /dev/null)
(cd build-check && VINI_SMOKE=1 ./tools/vini_profile run --seed 4711 \
  --out profile-run-2.json > /dev/null)
diff build-check/PROFILE_report.json build-check/profile-run-2.json || {
  echo "vini_profile: seed 4711 report is not bit-reproducible"; exit 1; }
(cd build-check && VINI_SMOKE=1 ./bench/bench_engine --queue heap \
  --out bench-profile.json --profile profile-bench.json > /dev/null)
diff build-check/PROFILE_report.json build-check/profile-bench.json || {
  echo "vini_profile vs bench_engine --profile: same seed, different report"
  exit 1
}

# --- 5g. Perf-trajectory gate -------------------------------------------------
# Compare a fresh full-fidelity run against the checked-in baseline;
# bench_engine exits nonzero when events/s regresses more than 15%.
# Under VINI_SMOKE (exported by the caller) the binary self-skips the
# comparison, so smoke invocations of this script stay fast and stable.
stage "bench_engine --baseline BENCH_engine.json (>15% events/s regression fails)"
(cd build-check && ./bench/bench_engine --queue both \
  --baseline ../BENCH_engine.json --out BENCH_engine.json)

# --- 5h. Sharded-engine determinism gate -------------------------------------
# The parallel engine's contract: same seed => byte-identical exports
# for every worker count.  threads=1 runs the sharded schedule serially
# and is the reference; 2 and 8 must reproduce it exactly on both queue
# implementations, and the two implementations must agree with each
# other under sharding too.
stage "vini_timeline --threads {1,2,8} export diff (sharded determinism)"
for IMPL in heap calendar; do
  for T in 1 2 8; do
    (cd build-check && VINI_SMOKE=1 ./tools/vini_timeline export --seed 811 \
      --queue "$IMPL" --threads "$T" --out "timeline-$IMPL-t$T" > /dev/null)
  done
done
for IMPL in heap calendar; do
  for T in 2 8; do
    for EXT in json spans.csv timeline.csv series.csv; do
      diff "build-check/timeline-$IMPL-t1.$EXT" \
           "build-check/timeline-$IMPL-t$T.$EXT" || {
        echo "vini_timeline: $IMPL queue diverges at $T threads ($EXT)"
        exit 1
      }
    done
  done
done
for EXT in json spans.csv timeline.csv series.csv; do
  diff "build-check/timeline-heap-t1.$EXT" \
       "build-check/timeline-calendar-t1.$EXT" || {
    echo "vini_timeline: heap/calendar diverge under the sharded engine ($EXT)"
    exit 1
  }
done

# --- 6. clang-tidy -----------------------------------------------------------
stage "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  # Lint the sources of the libraries and tools; headers ride along via
  # HeaderFilterRegex in .clang-tidy.
  mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
  clang-tidy -p build-check --quiet "${TIDY_SOURCES[@]}" || FAILED=1
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

# --- 7. Sanitized test suites ------------------------------------------------
for SAN in address undefined; do
  stage "ctest (VINI_SANITIZE=$SAN)"
  cmake -B "build-$SAN" -S . \
    -DVINI_SANITIZE="$SAN" -DVINI_AUDIT=ON -DVINI_SHARD_CHECK=ON > /dev/null
  cmake --build "build-$SAN" -j "$JOBS"
  ctest --test-dir "build-$SAN" --output-on-failure -j "$JOBS" || FAILED=1
done

echo
if [ "$FAILED" -ne 0 ]; then
  echo "vini-verify gate: FAILED"
  exit 1
fi
echo "vini-verify gate: OK"
