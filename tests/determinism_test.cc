// Repeatability, end to end.
//
// Section 3.4: resource guarantees must be strict "to ensure
// repeatability of the experiments".  In this reproduction the whole
// substrate is deterministic given the seeds, so an entire experiment —
// OSPF convergence, an injected failure, reconvergence, and every probe
// RTT along the way — must replay *identically*, and changing the seed
// must actually change the stochastic details.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/ping.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using sim::kSecond;

/// The Figure 8 experiment, condensed; returns the full RTT series.
std::vector<std::pair<sim::Time, double>> runFailoverExperiment(
    std::uint64_t seed) {
  topo::WorldOptions options;
  options.seed = seed;
  options.contention = topo::kPlanetLabContention;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * kSecond)) return {};
  const sim::Time t0 = world->queue.now();

  std::vector<std::pair<sim::Time, double>> series;
  app::Pinger::Options popt;
  popt.count = 60;
  popt.flood = false;
  popt.interval = kSecond / 2;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  pinger.on_reply = [&](std::uint64_t, sim::Duration rtt) {
    series.emplace_back(world->queue.now() - t0, sim::toMillis(rtt));
  };
  world->schedule.at(t0 + 10 * kSecond, "fail", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  pinger.start();
  world->queue.runUntil(t0 + 32 * kSecond);
  return series;
}

TEST(Determinism, EntireFailoverExperimentReplaysBitIdentically) {
  const auto first = runFailoverExperiment(777);
  const auto second = runFailoverExperiment(777);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << "probe " << i;
    EXPECT_DOUBLE_EQ(first[i].second, second[i].second) << "probe " << i;
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentNoise) {
  const auto a = runFailoverExperiment(777);
  const auto b = runFailoverExperiment(778);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // The macro shape matches, but the stochastic details (exact RTTs on a
  // contended node) must differ somewhere.
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < std::min(a.size(), b.size());
       ++i) {
    any_difference = a[i].second != b[i].second || a[i].first != b[i].first;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, ThroughputRunsReplayExactly) {
  auto run = [](std::uint64_t seed) {
    topo::WorldOptions options;
    options.seed = seed;
    options.contention = topo::kPlanetLabContention;
    auto world = topo::makeAbileneWorld(options);
    world->runUntilConverged(180 * kSecond);
    return app::runIperfTcp(world->queue, world->stack("Chicago"),
                            world->stack("Washington"),
                            world->tapOf("Washington"), 5001, 8, 5 * kSecond,
                            {}, world->tapOf("Chicago"))
        .bytes;
  };
  EXPECT_EQ(run(4242), run(4242));
  EXPECT_NE(run(4242), run(4243));
}

}  // namespace
}  // namespace vini
