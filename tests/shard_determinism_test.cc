// World-level determinism of the sharded engine, enforced at the bytes.
//
// The parallel engine's contract is not "similar results with more
// threads" but *byte-identical observability exports for every thread
// count*: metrics CSV, packet-trace CSV, span CSV, timeline CSV,
// sampled series CSV, and the Chrome trace JSON.  This is the test the
// conservative-lookahead design is answerable to — if any lane ordering,
// RNG stream, or fold leaks thread-count dependence, the byte compare
// here fails long before a human could spot it in a plot.
//
// threads = 1 runs the sharded schedule serially and is the reference;
// 2, 8, and hardware_concurrency must reproduce it exactly, on both
// event-queue implementations.  (threads = 0, the classic engine, is a
// *different* — but equally deterministic — canonical order; see
// DESIGN.md section 16.)
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "app/ping.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using sim::kSecond;

struct Exports {
  std::string metrics;
  std::string trace;
  std::string spans;
  std::string timeline;
  std::string series;
  std::string chrome;
  std::uint64_t spans_closed = 0;
};

/// A condensed fig8: converge the Abilene mirror, ping across the
/// overlay while a backbone virtual link fails and is restored, with
/// every obs subsystem armed.  Returns all exports as strings.
Exports runScenario(std::uint64_t seed, sim::QueueImpl impl, int threads) {
  obs::ScopedObs scope;
  topo::WorldOptions options;
  options.seed = seed;
  options.queue_impl = impl;
  options.threads = threads;
  options.contention = topo::kPlanetLabContention;
  options.resources.cpu_reservation = 0.25;
  options.resources.realtime = true;
  auto world = topo::makeAbileneWorld(options);
  EXPECT_TRUE(world->runUntilConverged(180 * kSecond));
  const sim::Time t0 = world->queue.now();

  scope.sampler().setPeriod(kSecond / 2);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("app.ping", "Washington", "last_rtt_ms",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().attach(world->queue);

  app::Pinger::Options popt;
  popt.count = 16;
  popt.flood = false;
  popt.interval = kSecond / 2;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"),
                     popt);
  world->schedule.at(t0 + 3 * kSecond, "fail", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 6 * kSecond, "restore", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });
  pinger.start();
  world->queue.runUntil(t0 + 9 * kSecond);
  scope.sampler().detach();

  // Replay the per-lane buffers into the shared tables; everything below
  // reads the folded state.
  scope.obs().foldShardLanes();

  Exports out;
  out.spans_closed = scope.spans().closed();
  {
    std::ostringstream os;
    scope.metrics().writeCsv(os);
    out.metrics = os.str();
  }
  {
    std::ostringstream os;
    scope.tracer().writeCsv(os);
    out.trace = os.str();
  }
  {
    std::ostringstream os;
    scope.spans().writeCsv(os);
    out.spans = os.str();
  }
  {
    std::ostringstream os;
    scope.timeline().writeCsv(os);
    out.timeline = os.str();
  }
  {
    std::ostringstream os;
    scope.sampler().writeCsv(os);
    out.series = os.str();
  }
  {
    std::ostringstream os;
    obs::writeChromeTrace(os, scope.spans(), scope.timeline(),
                          scope.sampler());
    out.chrome = os.str();
  }
  return out;
}

void expectIdentical(const Exports& a, const Exports& b, const char* what) {
  EXPECT_EQ(a.metrics, b.metrics) << what << ": metrics CSV diverged";
  EXPECT_EQ(a.trace, b.trace) << what << ": trace CSV diverged";
  EXPECT_EQ(a.spans, b.spans) << what << ": span CSV diverged";
  EXPECT_EQ(a.timeline, b.timeline) << what << ": timeline CSV diverged";
  EXPECT_EQ(a.series, b.series) << what << ": series CSV diverged";
  EXPECT_EQ(a.chrome, b.chrome) << what << ": Chrome JSON diverged";
}

TEST(ShardDeterminism, HeapExportsByteIdenticalAcrossThreadCounts) {
  const Exports one = runScenario(901, sim::QueueImpl::kHeap, 1);
  // The run must actually exercise the traced path, or the byte compare
  // is vacuous.
  ASSERT_GT(one.spans_closed, 0u);
  ASSERT_FALSE(one.metrics.empty());
  const Exports two = runScenario(901, sim::QueueImpl::kHeap, 2);
  const Exports eight = runScenario(901, sim::QueueImpl::kHeap, 8);
  expectIdentical(one, two, "heap 1 vs 2 threads");
  expectIdentical(one, eight, "heap 1 vs 8 threads");

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 1 && hw != 2 && hw != 8) {
    const Exports native =
        runScenario(901, sim::QueueImpl::kHeap, static_cast<int>(hw));
    expectIdentical(one, native, "heap 1 vs hardware_concurrency threads");
  }
}

TEST(ShardDeterminism, CalendarExportsByteIdenticalAcrossThreadCounts) {
  const Exports one = runScenario(901, sim::QueueImpl::kCalendar, 1);
  ASSERT_GT(one.spans_closed, 0u);
  const Exports two = runScenario(901, sim::QueueImpl::kCalendar, 2);
  const Exports eight = runScenario(901, sim::QueueImpl::kCalendar, 8);
  expectIdentical(one, two, "calendar 1 vs 2 threads");
  expectIdentical(one, eight, "calendar 1 vs 8 threads");
}

TEST(ShardDeterminism, HeapAndCalendarAgreeWhenSharded) {
  // Queue internals must not leak into the sharded schedule either: the
  // same seed and thread count produce the same bytes on both priority
  // structures.
  const Exports heap = runScenario(901, sim::QueueImpl::kHeap, 2);
  const Exports cal = runScenario(901, sim::QueueImpl::kCalendar, 2);
  expectIdentical(heap, cal, "heap vs calendar at 2 threads");
}

TEST(ShardDeterminism, DifferentSeedsStillDiffer) {
  // Guard against the degenerate pass where exports are identical
  // because nothing seed-dependent was captured.
  const Exports a = runScenario(901, sim::QueueImpl::kHeap, 2);
  const Exports b = runScenario(902, sim::QueueImpl::kHeap, 2);
  EXPECT_NE(a.chrome, b.chrome);
}

}  // namespace
}  // namespace vini
