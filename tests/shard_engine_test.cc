// Engine-level tests for the sharded EventQueue (sim/shard.h): the
// per-node execution sequence of a workload must be a pure function of
// the event stream — identical across worker-thread counts, and (for
// workloads with no barrier-staged timestamp collisions) identical to
// the classic single-threaded engine.
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace vini::sim {
namespace {

// One executed step, recorded from inside a handler.  Handlers only
// append to their own node's log, so recording is race-free under any
// thread count.
struct Step {
  Time when = 0;
  std::uint64_t marker = 0;

  bool operator==(const Step& other) const {
    return when == other.when && marker == other.marker;
  }
};

/// A deterministic workload over `nodes` lanes: every handler advances
/// a per-node mixing state, reschedules onto its own node (sometimes
/// inside the lookahead window, sometimes beyond), and periodically
/// hands off to the next node with a delay of at least the lookahead —
/// the cross-lane pattern link propagation produces.
struct Workload {
  static constexpr Duration kLookahead = 10 * kMicrosecond;

  explicit Workload(EventQueue& q, std::size_t nodes, std::uint64_t seed,
                    bool cross = true)
      : queue(q), cross_traffic(cross), logs(nodes), state(nodes, seed) {
    tags.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      tags.push_back(q.internNodeTag("node" + std::to_string(i)));
    }
  }

  void seedEvents(std::size_t per_node) {
    for (std::size_t n = 0; n < tags.size(); ++n) {
      for (std::size_t i = 0; i < per_node; ++i) {
        const Time at = static_cast<Time>((i + 1)) * 3 * kMicrosecond;
        queue.schedule(at, "test.load", tags[n],
                       [this, n, depth = 12] { step(n, depth); });
      }
    }
  }

  void step(std::size_t n, int depth) {
    // splitmix64: deterministic per-node mixing, independent of thread
    // interleaving because each node's handlers execute in order.
    std::uint64_t& s = state[n];
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    logs[n].push_back(Step{queue.now(), z});
    if (depth <= 0) return;
    // Same-node follow-ups: one inside the window, one beyond it.
    queue.scheduleAfter(static_cast<Duration>(z % 9), "test.local", tags[n],
                        [this, n, d = depth - 1] { step(n, d); });
    const EventId far = queue.scheduleAfter(
        kLookahead + static_cast<Duration>(z % 50), "test.far", tags[n],
        [this, n, d = depth - 1] { step(n, d); });
    if (z % 3 == 0) {
      queue.cancel(far);  // exercises the staged-id cancel path
    }
    if (cross_traffic && z % 4 == 0) {
      const std::size_t peer = (n + 1) % tags.size();
      queue.scheduleAfter(kLookahead + static_cast<Duration>(z % 17),
                          "test.cross", tags[peer],
                          [this, peer, d = depth - 1] { step(peer, d); });
    }
  }

  EventQueue& queue;
  bool cross_traffic = true;
  std::vector<NodeTag> tags;
  std::vector<std::vector<Step>> logs;
  std::vector<std::uint64_t> state;
};

std::vector<std::vector<Step>> runWorkload(QueueImpl impl, int threads,
                                           std::uint64_t seed,
                                           std::uint64_t* executed = nullptr) {
  EventQueue q(impl, threads);
  Workload w(q, 5, seed);
  if (threads > 0) q.finalizeSharding(Workload::kLookahead);
  w.seedEvents(4);
  q.run();
  if (executed != nullptr) *executed = q.executedCount();
  return w.logs;
}

TEST(ShardEngine, ClassicConstructionUnchanged) {
  EventQueue q(QueueImpl::kHeap, 0);
  EXPECT_FALSE(q.sharded());
  q.finalizeSharding(kMicrosecond);  // no-op at threads == 0
  EXPECT_FALSE(q.sharded());
}

TEST(ShardEngine, ShardedSerialMatchesClassic) {
  // threads == 1 runs the sharded schedule (windows, mailboxes,
  // barriers) with no worker pool: the reference for the sharded
  // engine's canonical order.  Without cross-node traffic that order
  // is identical to the classic engine's — each node's events keep
  // their FIFO issue order through the barrier.  (With cross-node
  // timestamp collisions the sharded engine's lane-major barrier merge
  // may break classic's global FIFO ties; sharded mode defines its own
  // canonical order there, stable across thread counts — the
  // ThreadCountInvariant test — rather than classic's.)
  for (const QueueImpl impl : {QueueImpl::kHeap, QueueImpl::kCalendar}) {
    std::vector<std::vector<Step>> classic;
    for (const int threads : {0, 1, 4}) {
      EventQueue q(impl, threads);
      Workload w(q, 5, 41, /*cross=*/false);
      if (threads > 0) q.finalizeSharding(Workload::kLookahead);
      w.seedEvents(4);
      q.run();
      if (threads == 0) {
        classic = w.logs;
        continue;
      }
      ASSERT_EQ(classic.size(), w.logs.size());
      for (std::size_t n = 0; n < classic.size(); ++n) {
        EXPECT_EQ(classic[n], w.logs[n])
            << queueImplName(impl) << " threads=" << threads << " node " << n;
      }
    }
  }
}

TEST(ShardEngine, ThreadCountInvariant) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> counts = {1, 2, 8, hw > 0 ? static_cast<int>(hw) : 4};
  for (const QueueImpl impl : {QueueImpl::kHeap, QueueImpl::kCalendar}) {
    for (const std::uint64_t seed : {7ull, 1234ull, 999983ull}) {
      std::uint64_t ref_executed = 0;
      const auto ref = runWorkload(impl, 1, seed, &ref_executed);
      for (const int threads : counts) {
        std::uint64_t executed = 0;
        const auto got = runWorkload(impl, threads, seed, &executed);
        EXPECT_EQ(ref_executed, executed)
            << queueImplName(impl) << " threads=" << threads;
        ASSERT_EQ(ref.size(), got.size());
        for (std::size_t n = 0; n < ref.size(); ++n) {
          EXPECT_EQ(ref[n], got[n]) << queueImplName(impl) << " threads="
                                    << threads << " node " << n;
        }
      }
    }
  }
}

TEST(ShardEngine, WorkerTimersAndCancellation) {
  // Timers armed from inside lanes (sharded ids) must stay cancellable
  // from later rounds and from the main thread.
  EventQueue q(QueueImpl::kHeap, 4);
  const NodeTag a = q.internNodeTag("a");
  const NodeTag b = q.internNodeTag("b");
  q.finalizeSharding(10 * kMicrosecond);

  int fired = 0;
  int cancelled_fired = 0;
  EventId victim = 0;
  q.schedule(kMicrosecond, "test", a, [&] {
    // Far-future event on the other node, cancelled two windows later.
    victim = q.scheduleAfter(kMillisecond, "test", b,
                             [&] { ++cancelled_fired; });
    q.scheduleAfter(50 * kMicrosecond, "test", a, [&] {
      ++fired;
      EXPECT_TRUE(q.cancel(victim));
    });
  });
  q.run();
  EXPECT_EQ(1, fired);
  EXPECT_EQ(0, cancelled_fired);
  EXPECT_EQ(0u, q.pendingCount());
}

TEST(ShardEngine, UnattributedEventsRunSerially) {
  // kNoNode events interleave with sharded windows and observe global
  // time; their presence must not break lane execution.
  std::vector<std::vector<Step>> ref;
  for (const int threads : {1, 2, 8}) {
    EventQueue q(QueueImpl::kHeap, threads);
    Workload w(q, 3, 77);
    q.finalizeSharding(Workload::kLookahead);
    int global_ticks = 0;
    for (int i = 0; i < 20; ++i) {
      q.schedule(static_cast<Time>(i + 1) * 7 * kMicrosecond, "test.global",
                 [&] { ++global_ticks; });
    }
    w.seedEvents(3);
    q.run();
    EXPECT_EQ(20, global_ticks) << "threads=" << threads;
    if (threads == 1) {
      ref = w.logs;
    } else {
      for (std::size_t n = 0; n < ref.size(); ++n) {
        EXPECT_EQ(ref[n], w.logs[n]) << "threads=" << threads << " node " << n;
      }
    }
  }
}

TEST(ShardEngine, RunUntilHonorsDeadlineAndAdvance) {
  for (const int threads : {1, 4}) {
    EventQueue q(QueueImpl::kHeap, threads);
    const NodeTag a = q.internNodeTag("a");
    q.finalizeSharding(5 * kMicrosecond);
    int fired = 0;
    q.schedule(kMicrosecond, "t", a, [&] { ++fired; });
    q.schedule(kMillisecond, "t", a, [&] { ++fired; });
    Time last_to = 0;
    q.setAdvanceObserver([&](Time from, Time to) {
      EXPECT_LT(from, to);
      last_to = to;
    });
    q.runUntil(10 * kMicrosecond);
    EXPECT_EQ(1, fired);
    EXPECT_EQ(10 * kMicrosecond, q.now());
    EXPECT_EQ(10 * kMicrosecond, last_to);
    q.setAdvanceObserver(nullptr);
    q.runUntil(2 * kMillisecond);
    EXPECT_EQ(2, fired);
  }
}

}  // namespace
}  // namespace vini::sim
