// CPU scheduler model tests: fair share, reservations, real-time
// priority, accounting — the Section 4.1.1/4.1.2 machinery.
#include <gtest/gtest.h>

#include "cpu/scheduler.h"
#include "sim/stats.h"

namespace vini::cpu {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::kSecond;

SchedulerConfig dedicated() {
  SchedulerConfig config;
  config.contention_mean = 0.0;
  return config;
}

SchedulerConfig contended(double mean, double stddev = 0.0) {
  SchedulerConfig config;
  config.contention_mean = mean;
  config.contention_stddev = stddev;
  return config;
}

TEST(Process, DedicatedMachineRunsAtFullSpeed) {
  sim::EventQueue q;
  Scheduler sched(q, dedicated());
  Process& p = sched.createProcess({});
  sim::Time done_at = -1;
  p.execute(kMillisecond, [&] { done_at = q.now(); });
  q.run();
  // One millisecond of work plus the context switch; no gaps.
  EXPECT_GE(done_at, kMillisecond);
  EXPECT_LE(done_at, kMillisecond + 100 * kMicrosecond);
}

TEST(Process, SpeedFactorScalesCost) {
  sim::EventQueue q;
  SchedulerConfig config = dedicated();
  config.speed_factor = 2.0;
  Scheduler sched(q, config);
  Process& p = sched.createProcess({});
  sim::Time done_at = -1;
  p.execute(kMillisecond, [&] { done_at = q.now(); });
  q.run();
  EXPECT_GE(done_at, 2 * kMillisecond);
  EXPECT_LE(done_at, 2 * kMillisecond + 100 * kMicrosecond);
}

TEST(Process, JobsRunFifo) {
  sim::EventQueue q;
  Scheduler sched(q, dedicated());
  Process& p = sched.createProcess({});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    p.execute(10 * kMicrosecond, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(p.idle());
}

TEST(Process, AccountingTracksConsumedCpu) {
  sim::EventQueue q;
  Scheduler sched(q, dedicated());
  Process& p = sched.createProcess({});
  for (int i = 0; i < 10; ++i) p.execute(kMillisecond, {});
  q.run();
  EXPECT_EQ(p.consumedCpu(), 10 * kMillisecond);
  p.resetAccounting();
  EXPECT_EQ(p.consumedCpu(), 0);
}

TEST(Process, UtilizationIsConsumedOverElapsed) {
  sim::EventQueue q;
  Scheduler sched(q, dedicated());
  Process& p = sched.createProcess({});
  p.execute(100 * kMillisecond, {});
  q.run();
  q.runUntil(kSecond);  // idle for the rest of the second
  EXPECT_NEAR(p.utilization(), 0.1, 0.01);
}

TEST(Scheduler, FairShareThrottlesCpuBoundProcess) {
  // With 4 other runnable slices, a default-share process should get
  // roughly 1/5 of the CPU in the long run.
  sim::EventQueue q;
  Scheduler sched(q, contended(4.0));
  Process& p = sched.createProcess({});
  // Keep the process saturated for the whole 20-second window.
  const int jobs = 30000;
  for (int i = 0; i < jobs; ++i) p.execute(kMillisecond, {});
  q.runUntil(20 * kSecond);
  const double util = p.utilization();
  EXPECT_GT(util, 0.12);
  EXPECT_LT(util, 0.30);
}

TEST(Scheduler, ReservationGuaranteesFloorUnderContention) {
  sim::EventQueue q;
  Scheduler sched(q, contended(10.0));  // heavy contention: fair share ~9%
  ProcessConfig config;
  config.cpu_reservation = 0.25;
  Process& p = sched.createProcess(config);
  for (int i = 0; i < 4000; ++i) p.execute(kMillisecond, {});
  q.runUntil(10 * kSecond);
  EXPECT_GT(p.utilization(), 0.20);
}

TEST(Scheduler, RealtimeWakeupIsImmediate) {
  sim::EventQueue q;
  SchedulerConfig config = contended(8.0);
  config.seed = 3;
  Scheduler sched(q, config);
  ProcessConfig rt;
  rt.realtime = true;
  Process& p = sched.createProcess(rt);
  // Sample many idle->runnable wakeups.
  sim::SampleStats latency_us;
  for (int i = 0; i < 200; ++i) {
    q.runUntil(q.now() + 10 * kMillisecond);
    const sim::Time submitted = q.now();
    sim::Time started = -1;
    p.execute(kMicrosecond, [&] { started = q.now(); });
    q.runUntil(q.now() + 5 * kMillisecond);
    ASSERT_GE(started, 0);
    latency_us.add(sim::toMicros(started - submitted));
  }
  // RT priority: context switch plus sub-millisecond kernel noise,
  // never a multi-millisecond run-queue stall.
  EXPECT_LT(latency_us.mean(), 400.0);
  EXPECT_LT(latency_us.max(), 3000.0);
}

TEST(Scheduler, DefaultShareWakeupHasStallTail) {
  sim::EventQueue q;
  SchedulerConfig config = contended(8.0);
  config.stall_probability = 0.10;  // exaggerate for the test
  config.seed = 4;
  Scheduler sched(q, config);
  Process& p = sched.createProcess({});
  sim::SampleStats latency_ms;
  for (int i = 0; i < 300; ++i) {
    q.runUntil(q.now() + 10 * kMillisecond);
    const sim::Time submitted = q.now();
    sim::Time started = -1;
    p.execute(kMicrosecond, [&] { started = q.now(); });
    q.runUntil(q.now() + 200 * kMillisecond);
    ASSERT_GE(started, 0);
    latency_ms.add(sim::toMillis(started - submitted));
  }
  // The tail reaches into run-queue territory (many milliseconds)...
  EXPECT_GT(latency_ms.max(), 4.0);
  // ...while the mean stays bounded (with a 10% stall rate the mean is
  // dominated by the stalls themselves).
  EXPECT_LT(latency_ms.mean(), 12.0);
}

TEST(Scheduler, RealtimeStillBoundedUnderLoad) {
  // "Even real-time processes are still subject to PlanetLab's CPU
  // reservations and shares, so a real-time process that runs amok
  // cannot lock the machine."  RT preempts the timeshare class, so its
  // effective contention is discounted, but it cannot take everything:
  // share = max(0.25, 1 / (1 + 0.15 * 10)) = 0.4.
  sim::EventQueue q;
  Scheduler sched(q, contended(10.0));
  ProcessConfig rt;
  rt.realtime = true;
  rt.cpu_reservation = 0.25;
  Process& p = sched.createProcess(rt);
  for (int i = 0; i < 6000; ++i) p.execute(kMillisecond, {});
  q.runUntil(10 * kSecond);
  const double util = p.utilization();
  EXPECT_GT(util, 0.30);
  EXPECT_LT(util, 0.50);
}

TEST(Scheduler, RtDiscountGivesRtMoreThanFairShare) {
  sim::EventQueue q;
  Scheduler sched(q, contended(4.0));
  ProcessConfig plain;
  ProcessConfig rt;
  rt.realtime = true;
  EXPECT_GT(sched.achievableShare(rt), sched.achievableShare(plain) * 2);
}

TEST(Scheduler, AchievableShareFormula) {
  sim::EventQueue q;
  Scheduler sched(q, contended(3.0));
  ProcessConfig plain;
  EXPECT_NEAR(sched.achievableShare(plain), 0.25, 1e-9);
  ProcessConfig reserved;
  reserved.cpu_reservation = 0.5;
  EXPECT_NEAR(sched.achievableShare(reserved), 0.5, 1e-9);
}

TEST(Scheduler, ContentionResamplesOverTime) {
  sim::EventQueue q;
  SchedulerConfig config = contended(5.0, 2.0);
  config.seed = 9;
  Scheduler sched(q, config);
  sim::SampleStats samples;
  for (int i = 0; i < 100; ++i) {
    q.runUntil(q.now() + config.contention_resample);
    samples.add(sched.contention());
  }
  EXPECT_NEAR(samples.mean(), 5.0, 1.0);
  EXPECT_GT(samples.stddev(), 0.5);
}

TEST(Scheduler, ZeroContentionHasNoGaps) {
  sim::EventQueue q;
  Scheduler sched(q, dedicated());
  Process& p = sched.createProcess({});
  sim::Time done_at = -1;
  // 100 ms of work in one job: crosses many quanta, but gaps are zero.
  p.execute(100 * kMillisecond, [&] { done_at = q.now(); });
  q.run();
  EXPECT_LE(done_at, 100 * kMillisecond + kMillisecond);
}

class ShareSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShareSweep, LongRunUtilizationTracksFairShare) {
  const double contention = GetParam();
  sim::EventQueue q;
  SchedulerConfig config = contended(contention);
  config.seed = 21 + static_cast<std::uint64_t>(contention);
  Scheduler sched(q, config);
  Process& p = sched.createProcess({});
  for (int i = 0; i < 30000; ++i) p.execute(kMillisecond, {});
  q.runUntil(30 * kSecond);
  const double expect = 1.0 / (1.0 + contention);
  EXPECT_NEAR(p.utilization(), expect, expect * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Contention, ShareSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace vini::cpu
