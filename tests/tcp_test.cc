// TCP tests: handshake, transfer integrity, flow control, congestion
// control, loss recovery (fast retransmit and RTO), slow-start restart,
// and teardown — the mechanisms behind Figure 9 and the iperf rows.
#include <gtest/gtest.h>

#include "phys/network.h"
#include "tcpip/host_stack.h"
#include "tcpip/stack_manager.h"
#include "tcpip/tcp.h"

namespace vini::tcpip {
namespace {

using packet::IpAddress;
using sim::kMillisecond;
using sim::kSecond;

struct Pair {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  StackManager stacks{net};
  HostStack* client = nullptr;
  HostStack* server = nullptr;
  phys::PhysLink* link = nullptr;

  explicit Pair(phys::LinkConfig config = {}) {
    auto& a = net.addNode("client", IpAddress(1, 0, 0, 1));
    auto& b = net.addNode("server", IpAddress(1, 0, 0, 2));
    link = &net.addLink(a, b, config);
    client = &stacks.ensure(a);
    server = &stacks.ensure(b);
  }
};

phys::LinkConfig wanLink(double bw_bps = 100e6,
                         sim::Duration one_way = 10 * kMillisecond,
                         double loss = 0.0) {
  phys::LinkConfig config;
  config.bandwidth_bps = bw_bps;
  config.propagation = one_way;
  config.loss_rate = loss;
  return config;
}

struct Server {
  std::unique_ptr<TcpListener> listener;
  std::vector<std::shared_ptr<TcpConnection>> accepted;
  std::uint64_t bytes = 0;
  bool saw_eof = false;
  /// Installed on connections as they are accepted (tcpdump hook).
  std::function<void(const packet::Packet&)> trace;

  Server(HostStack& stack, std::uint16_t port, TcpConfig config = {}) {
    listener = std::make_unique<TcpListener>(
        stack, port, config, [this](std::shared_ptr<TcpConnection> conn) {
          conn->on_receive = [this, raw = conn.get()](std::size_t n) {
            bytes += n;
            if (n == 0) {
              saw_eof = true;
              raw->close();
            }
          };
          if (trace) conn->on_segment = trace;
          accepted.push_back(std::move(conn));
        });
  }
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  bool connected = false;
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { connected = true; };
  world.queue.runUntil(kSecond);
  EXPECT_TRUE(connected);
  EXPECT_EQ(conn->state(), TcpState::kEstablished);
  ASSERT_EQ(server.accepted.size(), 1u);
  EXPECT_EQ(server.accepted[0]->state(), TcpState::kEstablished);
}

TEST(Tcp, TransfersExactByteCount) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { conn->send(100'000); };
  world.queue.runUntil(30 * kSecond);
  EXPECT_EQ(server.bytes, 100'000u);
  EXPECT_EQ(conn->stats().bytes_acked, 100'000u);
}

TEST(Tcp, CloseDeliversEofAndReachesClosed) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  bool closed = false;
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] {
    conn->send(5000);
    conn->close();
  };
  conn->on_closed = [&] { closed = true; };
  world.queue.runUntil(30 * kSecond);
  EXPECT_EQ(server.bytes, 5000u);
  EXPECT_TRUE(server.saw_eof);
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST(Tcp, ReceiverWindowLimitsThroughput) {
  // 16 KB window over a 40 ms RTT caps goodput near 16 KB / 40 ms
  // = 3.2 Mb/s — the Figure 9 situation ("TCP's throughput is limited
  // to roughly 3 Mb/s").
  Pair world(wanLink(1e9, 20 * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 16 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(4'000'000); };
  world.queue.runUntil(11 * kSecond);
  const double mbps = static_cast<double>(server.bytes) * 8 / 10.0 / 1e6;
  EXPECT_GT(mbps, 2.2);
  EXPECT_LT(mbps, 3.6);
}

TEST(Tcp, BiggerWindowProportionallyFaster) {
  Pair world(wanLink(1e9, 20 * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(40'000'000); };
  world.queue.runUntil(11 * kSecond);
  const double mbps = static_cast<double>(server.bytes) * 8 / 10.0 / 1e6;
  EXPECT_GT(mbps, 9.0);
  EXPECT_LT(mbps, 14.0);
}

TEST(Tcp, RecoversFromRandomLoss) {
  Pair world(wanLink(100e6, 5 * kMillisecond, 0.02));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(2'000'000); };
  world.queue.runUntil(120 * kSecond);
  EXPECT_EQ(server.bytes, 2'000'000u);
  EXPECT_GT(conn->stats().retransmits, 0u);
}

TEST(Tcp, FastRetransmitUsedBeforeRtoOnIsolatedLoss) {
  Pair world(wanLink(100e6, 5 * kMillisecond, 0.005));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(5'000'000); };
  world.queue.runUntil(120 * kSecond);
  EXPECT_EQ(server.bytes, 5'000'000u);
  // With light loss and a deep window, dup-ACK recovery should do the
  // bulk of the repair work.
  EXPECT_GT(conn->stats().fast_retransmits, 0u);
  EXPECT_GT(conn->stats().fast_retransmits, conn->stats().timeouts);
}

TEST(Tcp, RtoFiresWhenPathGoesSilent) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { conn->send(50'000'000); };  // outlasts the outage
  world.queue.runUntil(2 * kSecond);
  const auto before = server.bytes;
  EXPECT_GT(before, 0u);
  world.link->setUp(false);
  world.queue.runUntil(world.queue.now() + 10 * kSecond);
  EXPECT_GT(conn->stats().timeouts, 0u);
  const auto during = server.bytes;
  // Restore: transfer resumes after a backoff retry succeeds.
  world.link->setUp(true);
  world.queue.runUntil(world.queue.now() + 20 * kSecond);
  EXPECT_GT(server.bytes, during + 100'000u);
}

TEST(Tcp, RtoBacksOffExponentially) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { conn->send(50'000'000); };
  world.queue.runUntil(2 * kSecond);
  world.link->setUp(false);
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  const auto timeouts_30s = conn->stats().timeouts;
  // Backoff means far fewer than 30s / min_rto firings.
  EXPECT_LE(timeouts_30s, 9u);
  EXPECT_GE(timeouts_30s, 4u);
}

TEST(Tcp, ConnectionAbortsAfterMaxRetransmits) {
  Pair world(wanLink());
  TcpConfig config;
  config.max_retransmits = 4;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  bool closed = false;
  conn->on_closed = [&] { closed = true; };
  conn->on_connected = [&] { conn->send(50'000'000); };
  world.queue.runUntil(2 * kSecond);
  world.link->setUp(false);
  world.queue.runUntil(world.queue.now() + 120 * kSecond);
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST(Tcp, SynRetransmitsWhenServerUnreachable) {
  Pair world(wanLink());
  world.link->setUp(false);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  world.queue.runUntil(10 * kSecond);
  EXPECT_EQ(conn->state(), TcpState::kSynSent);
  EXPECT_GT(conn->stats().retransmits, 1u);
  // Link comes back: handshake completes on a retry.
  Server server(*world.server, 80);
  world.link->setUp(true);
  world.queue.runUntil(world.queue.now() + 60 * kSecond);
  EXPECT_EQ(conn->state(), TcpState::kEstablished);
}

TEST(Tcp, SlowStartRestartAfterIdle) {
  Pair world(wanLink(1e9, 20 * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(1'000'000); };
  world.queue.runUntil(20 * kSecond);
  ASSERT_EQ(server.bytes, 1'000'000u);
  const std::size_t cwnd_after_transfer = conn->stats().cwnd;
  EXPECT_GT(cwnd_after_transfer, 4 * config.mss);
  // Idle for 10 seconds, then send again: cwnd must have collapsed to
  // the restart window (RFC 2861) — this is Figure 9(b)'s slow-start
  // restart after OSPF finds the new route.
  world.queue.runUntil(world.queue.now() + 10 * kSecond);
  conn->send(10 * config.mss);
  world.queue.runUntil(world.queue.now() + 30 * kMillisecond);
  EXPECT_LE(conn->stats().cwnd,
            config.initial_cwnd_segments * config.mss + config.mss);
}

TEST(Tcp, NoSlowStartRestartWhenDisabled) {
  Pair world(wanLink(1e9, 20 * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  config.slow_start_restart = false;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(1'000'000); };
  world.queue.runUntil(20 * kSecond);
  const std::size_t cwnd_after_transfer = conn->stats().cwnd;
  world.queue.runUntil(world.queue.now() + 10 * kSecond);
  conn->send(10 * config.mss);
  world.queue.runUntil(world.queue.now() + 30 * kMillisecond);
  EXPECT_GE(conn->stats().cwnd, cwnd_after_transfer);
}

TEST(Tcp, SrttTracksPathRtt) {
  Pair world(wanLink(100e6, 25 * kMillisecond));
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { conn->send(200'000); };
  world.queue.runUntil(30 * kSecond);
  EXPECT_NEAR(sim::toMillis(conn->stats().srtt), 50.0, 10.0);
}

TEST(Tcp, DelayedAckRoughlyHalvesAckCount) {
  Pair world(wanLink(100e6, 5 * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(1'000'000); };
  world.queue.runUntil(60 * kSecond);
  ASSERT_EQ(server.bytes, 1'000'000u);
  const auto data_segments = conn->stats().segments_sent;
  const auto acks = server.accepted[0]->stats().segments_sent;
  EXPECT_LT(acks, data_segments * 3 / 4);
  EXPECT_GT(acks, data_segments / 4);
}

TEST(Tcp, SegmentTraceSeesMonotoneInOrderStream) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  std::vector<std::uint32_t> seqs;
  server.trace = [&](const packet::Packet& p) {
    if (p.payload_bytes > 0) seqs.push_back(p.tcpHeader()->seq);
  };
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  conn->on_connected = [&] { conn->send(50'000); };
  world.queue.runUntil(30 * kSecond);
  ASSERT_GT(seqs.size(), 10u);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_GE(static_cast<std::int32_t>(seqs[i] - seqs[i - 1]), 0);
  }
}

TEST(Tcp, AbortSendsRstAndTearsDownPeer) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  world.queue.runUntil(kSecond);
  ASSERT_EQ(server.accepted.size(), 1u);
  conn->abort();
  world.queue.runUntil(world.queue.now() + kSecond);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
  EXPECT_EQ(server.accepted[0]->state(), TcpState::kClosed);
}

TEST(Tcp, SimultaneousTransfersDoNotInterfere) {
  Pair world(wanLink());
  Server s1(*world.server, 81);
  Server s2(*world.server, 82);
  auto c1 = TcpConnection::connect(*world.client, world.server->address(), 81);
  auto c2 = TcpConnection::connect(*world.client, world.server->address(), 82);
  c1->on_connected = [&] { c1->send(70'000); };
  c2->on_connected = [&] { c2->send(90'000); };
  world.queue.runUntil(60 * kSecond);
  EXPECT_EQ(s1.bytes, 70'000u);
  EXPECT_EQ(s2.bytes, 90'000u);
}

TEST(Tcp, SimultaneousCloseReachesClosedOnBothSides) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80);
  world.queue.runUntil(kSecond);
  ASSERT_EQ(server.accepted.size(), 1u);
  // Close both ends at the same instant: FINs cross in flight.
  conn->close();
  server.accepted[0]->close();
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
  EXPECT_EQ(server.accepted[0]->state(), TcpState::kClosed);
}

TEST(Tcp, PassiveCloserPassesThroughTimeWait) {
  Pair world(wanLink());
  TcpConfig config;
  config.time_wait = 2 * kSecond;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] {
    conn->send(1000);
    conn->close();
  };
  // Run just past the handshake + data + FIN exchange (well inside the
  // 2 s TIME_WAIT).
  world.queue.runUntil(kSecond);
  // The active closer lingers in TIME_WAIT for the configured period...
  EXPECT_EQ(conn->state(), TcpState::kTimeWait);
  world.queue.runUntil(world.queue.now() + 3 * kSecond);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST(Tcp, RecoversWhenReceiverWindowReopens) {
  // A receiver that stops reading... our model's application always
  // reads, so emulate a zero window by making the receive buffer tiny
  // relative to one segment: the advertised window still paces the
  // sender, and the transfer completes without deadlock.
  Pair world(wanLink());
  TcpConfig config;
  config.recv_buffer = 2048;  // barely over one MSS
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(50'000); };
  world.queue.runUntil(120 * kSecond);
  EXPECT_EQ(server.bytes, 50'000u);
}

TEST(Tcp, ListenerIgnoresStrayNonSynSegments) {
  Pair world(wanLink());
  Server server(*world.server, 80);
  // A bare ACK to the listening port (no connection) must not crash or
  // spawn a connection.
  packet::TcpHeader h;
  h.src_port = 9999;
  h.dst_port = 80;
  h.flags.ack = true;
  world.client->sendPacket(
      packet::Packet::tcp(world.client->address(), world.server->address(), h, 0));
  world.queue.runUntil(kSecond);
  EXPECT_TRUE(server.accepted.empty());
}

TEST(Tcp, SequenceArithmeticSurvivesWrap) {
  // Force the ISS region near the 2^32 wrap by transferring enough that
  // seq + len wraps is impractical; instead verify the helpers through
  // the public path: a transfer larger than 16 MB with a deep window
  // exercises sequence comparisons far from the origin.
  Pair world(wanLink(1e9, kMillisecond));
  TcpConfig config;
  config.recv_buffer = 64 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(16'000'000); };
  world.queue.runUntil(120 * kSecond);
  EXPECT_EQ(server.bytes, 16'000'000u);
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, TransferCompletesUnderLoss) {
  const double loss = GetParam();
  Pair world(wanLink(100e6, 5 * kMillisecond, loss));
  TcpConfig config;
  config.recv_buffer = 32 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(500'000); };
  world.queue.runUntil(300 * kSecond);
  EXPECT_EQ(server.bytes, 500'000u) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.01, 0.03, 0.08));

class RttSweep : public ::testing::TestWithParam<int> {};

TEST_P(RttSweep, WindowLimitedThroughputScalesInverselyWithRtt) {
  const int one_way_ms = GetParam();
  Pair world(wanLink(1e9, one_way_ms * kMillisecond));
  TcpConfig config;
  config.recv_buffer = 16 * 1024;
  Server server(*world.server, 80, config);
  auto conn = TcpConnection::connect(*world.client, world.server->address(), 80,
                                     config);
  conn->on_connected = [&] { conn->send(50'000'000); };
  world.queue.runUntil(21 * kSecond);
  const double mbps = static_cast<double>(server.bytes) * 8 / 20.0 / 1e6;
  const double expected = 16384.0 * 8 / (2.0 * one_way_ms / 1000.0) / 1e6;
  EXPECT_NEAR(mbps, expected, expected * 0.35) << "rtt=" << 2 * one_way_ms;
}

INSTANTIATE_TEST_SUITE_P(Rtts, RttSweep, ::testing::Values(5, 10, 20, 40));

}  // namespace
}  // namespace vini::tcpip
