// Physical substrate tests: link serialization/queueing/loss, topology
// routing, and the expose-vs-mask failure semantics of Section 3.1.
#include <gtest/gtest.h>

#include "phys/network.h"

namespace vini::phys {
namespace {

using packet::IpAddress;
using packet::Packet;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::kSecond;

Packet smallPacket(IpAddress src, IpAddress dst, std::size_t payload = 100) {
  return Packet::udp(src, dst, 1, 2, payload);
}

struct TwoNodes {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  PhysNode* a = nullptr;
  PhysNode* b = nullptr;
  PhysLink* link = nullptr;

  explicit TwoNodes(LinkConfig config = {}) {
    a = &net.addNode("a", IpAddress(1, 0, 0, 1));
    b = &net.addNode("b", IpAddress(1, 0, 0, 2));
    link = &net.addLink(*a, *b, config);
  }
};

TEST(Channel, DeliversAfterSerializationAndPropagation) {
  LinkConfig config;
  config.bandwidth_bps = 1e9;
  config.propagation = kMillisecond;
  TwoNodes world(config);

  sim::Time delivered_at = -1;
  world.b->setPacketHandler([&](Packet, PhysLink&) { delivered_at = world.queue.now(); });
  Packet p = smallPacket(world.a->address(), world.b->address(), 1000);
  const auto wire_bits = static_cast<double>(p.wireBytes()) * 8.0;
  world.link->channelFrom(world.a->id()).transmit(std::move(p));
  world.queue.run();

  const auto expected = static_cast<sim::Duration>(wire_bits / 1e9 * 1e9) + kMillisecond;
  EXPECT_EQ(delivered_at, expected);
}

TEST(Channel, BackToBackPacketsSerializeSequentially) {
  LinkConfig config;
  config.bandwidth_bps = 8e6;  // 1 byte per microsecond
  TwoNodes world(config);

  std::vector<sim::Time> deliveries;
  world.b->setPacketHandler([&](Packet, PhysLink&) { deliveries.push_back(world.queue.now()); });
  for (int i = 0; i < 3; ++i) {
    world.link->channelFrom(world.a->id()).transmit(
        smallPacket(world.a->address(), world.b->address(), 100));
  }
  world.queue.run();
  ASSERT_EQ(deliveries.size(), 3u);
  // Each packet (166 wire bytes -> 166 us at 1 B/us) waits for the prior.
  EXPECT_EQ(deliveries[1] - deliveries[0], deliveries[2] - deliveries[1]);
  EXPECT_GT(deliveries[1] - deliveries[0], 150 * kMicrosecond);
}

TEST(Channel, DropTailQueueOverflowCounts) {
  LinkConfig config;
  config.bandwidth_bps = 1e6;  // slow: packets pile up
  config.queue_bytes = 500;    // tiny queue
  TwoNodes world(config);

  int delivered = 0;
  world.b->setPacketHandler([&](Packet, PhysLink&) { ++delivered; });
  auto& channel = world.link->channelFrom(world.a->id());
  for (int i = 0; i < 20; ++i) {
    channel.transmit(smallPacket(world.a->address(), world.b->address(), 100));
  }
  world.queue.run();
  EXPECT_GT(channel.stats().queue_drops, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered), channel.stats().tx_packets);
  EXPECT_LT(delivered, 20);
}

TEST(Channel, RandomLossDropsApproximatelyTheConfiguredFraction) {
  LinkConfig config;
  config.loss_rate = 0.2;
  TwoNodes world(config);

  int delivered = 0;
  world.b->setPacketHandler([&](Packet, PhysLink&) { ++delivered; });
  auto& channel = world.link->channelFrom(world.a->id());
  const int total = 5000;
  for (int i = 0; i < total; ++i) {
    channel.transmit(smallPacket(world.a->address(), world.b->address(), 10));
  }
  world.queue.run();
  EXPECT_NEAR(static_cast<double>(delivered) / total, 0.8, 0.03);
  EXPECT_EQ(channel.stats().loss_drops + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(total));
}

TEST(Channel, DownLinkEatsPackets) {
  TwoNodes world;
  int delivered = 0;
  world.b->setPacketHandler([&](Packet, PhysLink&) { ++delivered; });
  world.link->setUp(false);
  auto& channel = world.link->channelFrom(world.a->id());
  channel.transmit(smallPacket(world.a->address(), world.b->address()));
  world.queue.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().down_drops, 1u);
}

TEST(Channel, MidFlightFailureDropsPacket) {
  LinkConfig config;
  config.propagation = 10 * kMillisecond;
  TwoNodes world(config);
  int delivered = 0;
  world.b->setPacketHandler([&](Packet, PhysLink&) { ++delivered; });
  world.link->channelFrom(world.a->id())
      .transmit(smallPacket(world.a->address(), world.b->address()));
  // Fail the link while the packet is propagating.
  world.queue.scheduleAfter(5 * kMillisecond, [&] { world.link->setUp(false); });
  world.queue.run();
  EXPECT_EQ(delivered, 0);
}

TEST(PhysLink, StateListenersFireOnTransitionOnly) {
  TwoNodes world;
  int notifications = 0;
  world.link->subscribe([&](PhysLink&, bool) { ++notifications; });
  world.link->setUp(true);  // no-op: already up
  EXPECT_EQ(notifications, 0);
  world.link->setUp(false);
  world.link->setUp(false);  // no-op
  world.link->setUp(true);
  EXPECT_EQ(notifications, 2);
}

struct Diamond {
  // a - b - d  and  a - c - d, with the b path cheaper.
  sim::EventQueue queue;
  PhysNetwork net;
  PhysNode *a, *b, *c, *d;
  PhysLink *ab, *bd, *ac, *cd;

  explicit Diamond(NetworkConfig config = {}) : net(queue, config) {
    a = &net.addNode("a", IpAddress(1, 0, 0, 1));
    b = &net.addNode("b", IpAddress(1, 0, 0, 2));
    c = &net.addNode("c", IpAddress(1, 0, 0, 3));
    d = &net.addNode("d", IpAddress(1, 0, 0, 4));
    LinkConfig cheap;
    cheap.weight = 1.0;
    LinkConfig pricey;
    pricey.weight = 5.0;
    ab = &net.addLink(*a, *b, cheap);
    bd = &net.addLink(*b, *d, cheap);
    ac = &net.addLink(*a, *c, pricey);
    cd = &net.addLink(*c, *d, pricey);
  }
};

TEST(PhysNetwork, ShortestPathByWeight) {
  Diamond world;
  PhysLink* next = world.net.nextLinkFor(world.a->id(), world.d->address());
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next, world.ab);
  auto path = world.net.pathBetween(world.a->id(), world.d->id());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], world.ab);
  EXPECT_EQ(path[1], world.bd);
}

TEST(PhysNetwork, ExposeModeKeepsRoutesPinnedThroughFailure) {
  Diamond world;  // default: expose (no masking)
  world.bd->setUp(false);
  // The route still points into the dead path: packets will die there.
  PhysLink* next = world.net.nextLinkFor(world.a->id(), world.d->address());
  EXPECT_EQ(next, world.ab);
}

TEST(PhysNetwork, MaskModeReroutesAfterConvergenceDelay) {
  NetworkConfig config;
  config.mask_failures = true;
  config.reroute_delay = 200 * kMillisecond;
  Diamond world(config);
  world.net.recomputeRoutes();
  world.bd->setUp(false);
  // Before the convergence delay: still the old route.
  EXPECT_EQ(world.net.nextLinkFor(world.a->id(), world.d->address()), world.ab);
  world.queue.runUntil(world.queue.now() + 300 * kMillisecond);
  // After: silently rerouted around the failure.
  EXPECT_EQ(world.net.nextLinkFor(world.a->id(), world.d->address()), world.ac);
}

TEST(PhysNetwork, UnknownAddressHasNoRoute) {
  Diamond world;
  EXPECT_EQ(world.net.nextLinkFor(world.a->id(), IpAddress(9, 9, 9, 9)), nullptr);
}

TEST(PhysNetwork, RegisteredAddressRoutesToItsNode) {
  Diamond world;
  const IpAddress web(64, 236, 16, 20);
  world.net.registerAddress(web, world.d->id());
  EXPECT_EQ(world.net.nextLinkFor(world.a->id(), web), world.ab);
}

TEST(PhysNetwork, LookupHelpers) {
  Diamond world;
  EXPECT_EQ(world.net.nodeByName("c"), world.c);
  EXPECT_EQ(world.net.nodeByName("zzz"), nullptr);
  EXPECT_EQ(world.net.linkBetween("a", "b"), world.ab);
  EXPECT_EQ(world.net.linkBetween("a", "d"), nullptr);
  EXPECT_EQ(world.net.nodeForAddress(world.b->address()), world.b->id());
  EXPECT_EQ(world.net.nodeForAddress(IpAddress(9, 9, 9, 9)), -1);
}

TEST(PhysNetwork, PathBetweenUnreachableIsEmpty) {
  sim::EventQueue queue;
  PhysNetwork net(queue);
  auto& a = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& b = net.addNode("b", IpAddress(1, 0, 0, 2));
  EXPECT_TRUE(net.pathBetween(a.id(), b.id()).empty());
}

TEST(PhysNetwork, EqualCostTieBreaksDeterministically) {
  // Two equal-cost paths: route choice must be stable across recomputes.
  sim::EventQueue queue;
  PhysNetwork net(queue);
  auto& a = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& b = net.addNode("b", IpAddress(1, 0, 0, 2));
  auto& c = net.addNode("c", IpAddress(1, 0, 0, 3));
  auto& d = net.addNode("d", IpAddress(1, 0, 0, 4));
  net.addLink(a, b);
  net.addLink(b, d);
  net.addLink(a, c);
  net.addLink(c, d);
  PhysLink* first = net.nextLinkFor(a.id(), d.address());
  for (int i = 0; i < 5; ++i) {
    net.recomputeRoutes();
    EXPECT_EQ(net.nextLinkFor(a.id(), d.address()), first);
  }
}

}  // namespace
}  // namespace vini::phys
