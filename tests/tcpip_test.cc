// Host stack tests: routing table LPM, UDP sockets (immediate and
// buffered), ICMP echo, kernel forwarding, TUN devices, port capture.
#include <gtest/gtest.h>

#include "phys/network.h"
#include "tcpip/host_stack.h"
#include "tcpip/stack_manager.h"

namespace vini::tcpip {
namespace {

using packet::IpAddress;
using packet::Packet;
using packet::Prefix;
using sim::kMillisecond;
using sim::kSecond;

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable rt;
  Route def{Prefix::defaultRoute(), reinterpret_cast<Device*>(1), {}, 100};
  Route ten{Prefix::mustParse("10.0.0.0/8"), reinterpret_cast<Device*>(2), {}, 0};
  Route ten1{Prefix::mustParse("10.1.0.0/16"), reinterpret_cast<Device*>(3), {}, 0};
  rt.addRoute(def);
  rt.addRoute(ten);
  rt.addRoute(ten1);
  EXPECT_EQ(rt.lookup(IpAddress(10, 1, 2, 3))->device,
            reinterpret_cast<Device*>(3));
  EXPECT_EQ(rt.lookup(IpAddress(10, 2, 2, 3))->device,
            reinterpret_cast<Device*>(2));
  EXPECT_EQ(rt.lookup(IpAddress(8, 8, 8, 8))->device,
            reinterpret_cast<Device*>(1));
}

TEST(RoutingTable, SamePrefixLowerMetricWins) {
  RoutingTable rt;
  rt.addRoute({Prefix::defaultRoute(), reinterpret_cast<Device*>(1), {}, 100});
  rt.addRoute({Prefix::defaultRoute(), reinterpret_cast<Device*>(2), {}, 5});
  EXPECT_EQ(rt.lookup(IpAddress(1, 2, 3, 4))->device,
            reinterpret_cast<Device*>(2));
}

TEST(RoutingTable, ReplaceAndRemove) {
  RoutingTable rt;
  const Prefix p = Prefix::mustParse("10.0.0.0/8");
  rt.addRoute({p, reinterpret_cast<Device*>(1), {}, 0});
  rt.addRoute({p, reinterpret_cast<Device*>(2), {}, 0});  // replaces
  EXPECT_EQ(rt.routes().size(), 1u);
  EXPECT_EQ(rt.lookup(IpAddress(10, 0, 0, 1))->device,
            reinterpret_cast<Device*>(2));
  EXPECT_TRUE(rt.removeRoute(p));
  EXPECT_FALSE(rt.removeRoute(p));
  EXPECT_EQ(rt.lookup(IpAddress(10, 0, 0, 1)), nullptr);
}

struct Chain {
  // a - b - c on Gig-E; stacks on each.
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  StackManager stacks{net};
  HostStack *sa, *sb, *sc;

  Chain() {
    auto& a = net.addNode("a", IpAddress(1, 0, 0, 1));
    auto& b = net.addNode("b", IpAddress(1, 0, 0, 2));
    auto& c = net.addNode("c", IpAddress(1, 0, 0, 3));
    net.addLink(a, b);
    net.addLink(b, c);
    sa = &stacks.ensure(a);
    sb = &stacks.ensure(b);
    sc = &stacks.ensure(c);
  }
};

TEST(HostStack, UdpEndToEndThroughForwarder) {
  Chain world;
  int received = 0;
  std::size_t payload_seen = 0;
  world.sc->openUdp(7777).setReceiveHandler([&](Packet p) {
    ++received;
    payload_seen = p.payload_bytes;
  });
  world.sa->openUdp(1000).sendTo(world.sc->address(), 7777, 333);
  world.queue.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(payload_seen, 333u);
  EXPECT_EQ(world.sb->stats().forwarded, 1u);
}

TEST(HostStack, UnknownUdpPortCountsDrop) {
  Chain world;
  world.sa->openUdp(1000).sendTo(world.sc->address(), 9999, 10);
  world.queue.run();
  EXPECT_EQ(world.sc->stats().dropped_no_listener, 1u);
}

TEST(HostStack, IcmpEchoRepliesWithRtt) {
  Chain world;
  sim::Duration rtt = -1;
  world.sa->setIcmpReplyHandler(42, [&](Packet p) {
    rtt = world.queue.now() - p.meta.app_send_time;
  });
  packet::PacketMeta meta;
  meta.app_send_time = world.queue.now();
  world.sa->sendIcmpEcho(world.sc->address(), 42, 1, 56, meta);
  world.queue.run();
  ASSERT_GT(rtt, 0);
  // Four NIC traversals each way plus kernel forwarding: sub-millisecond.
  EXPECT_LT(rtt, 2 * kMillisecond);
}

TEST(HostStack, TtlExpiryDropsForwardedPackets) {
  Chain world;
  int received = 0;
  world.sc->openUdp(7777).setReceiveHandler([&](Packet) { ++received; });
  Packet p = Packet::udp(world.sa->address(), world.sc->address(), 1, 7777, 10);
  p.ip.ttl = 1;  // dies at the forwarder
  world.sa->sendPacket(std::move(p));
  world.queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(world.sb->stats().dropped_ttl, 1u);
}

TEST(HostStack, ForwardingDisabledDropsTransit) {
  HostConfig no_forward;
  no_forward.ip_forward = false;
  // A fresh 3-node net where b's kernel has ip_forward = 0.
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  auto& a = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& b = net.addNode("b", IpAddress(1, 0, 0, 2));
  auto& c = net.addNode("c", IpAddress(1, 0, 0, 3));
  net.addLink(a, b);
  net.addLink(b, c);
  StackManager stacks(net);
  stacks.setConfigFor("b", no_forward);
  HostStack& sa = stacks.ensure(a);
  HostStack& sb = stacks.ensure(b);
  HostStack& sc = stacks.ensure(c);
  int received = 0;
  sc.openUdp(7777).setReceiveHandler([&](Packet) { ++received; });
  sa.openUdp(1).sendTo(sc.address(), 7777, 10);
  queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_GT(sb.stats().dropped_no_route, 0u);
}

TEST(HostStack, BufferedSocketQueuesAndOverflows) {
  Chain world;
  UdpSocket& sock = world.sc->openUdp(5000);
  sock.setBuffered(1000);  // small buffer
  int notifications = 0;
  sock.setNotify([&](const Packet&) { ++notifications; });
  auto& sender = world.sa->openUdp(1);
  for (int i = 0; i < 20; ++i) sender.sendTo(world.sc->address(), 5000, 100);
  world.queue.run();
  EXPECT_GT(sock.bufferDrops(), 0u);
  EXPECT_GT(sock.queuedPackets(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(notifications), sock.queuedPackets());
  // Drain.
  std::size_t drained = 0;
  while (sock.readPacket().has_value()) ++drained;
  EXPECT_EQ(drained, static_cast<std::size_t>(notifications));
  EXPECT_EQ(sock.queuedBytes(), 0u);
  EXPECT_FALSE(sock.readPacket().has_value());
}

TEST(HostStack, LoopbackDeliveryToOwnAddress) {
  Chain world;
  int received = 0;
  world.sa->openUdp(1234).setReceiveHandler([&](Packet) { ++received; });
  world.sa->openUdp(1).sendTo(world.sa->address(), 1234, 10);
  world.queue.run();
  EXPECT_EQ(received, 1);
}

TEST(HostStack, TunDeviceRoundTrip) {
  Chain world;
  TunDevice& tun = world.sa->createTunDevice("tap0", IpAddress(10, 1, 0, 2));
  Route r;
  r.prefix = Prefix::mustParse("10.0.0.0/8");
  r.device = &tun;
  world.sa->routingTable().addRoute(r);

  // Kernel -> user: a packet routed at 10.x lands in the reader.
  int read = 0;
  tun.setReader([&](Packet p) {
    ++read;
    EXPECT_EQ(p.ip.dst, IpAddress(10, 9, 9, 9));
  });
  world.sa->sendPacket(Packet::udp(world.sa->address(), IpAddress(10, 9, 9, 9),
                                   1, 2, 10));
  world.queue.run();
  EXPECT_EQ(read, 1);

  // User -> kernel: an injected packet addressed to the tun address is
  // delivered locally (ICMP echo gets answered).
  int replies = 0;
  world.sa->setIcmpReplyHandler(9, [&](Packet) { ++replies; });
  // Inject an echo request as if it arrived from the overlay; the reply
  // routes back out through the tun device to the reader.
  int reader_saw_reply = 0;
  tun.setReader([&](Packet p) {
    if (p.isIcmp() && p.icmpHeader()->type == packet::IcmpHeader::kEchoReply) {
      ++reader_saw_reply;
    }
  });
  tun.inject(Packet::icmpEchoRequest(IpAddress(10, 5, 5, 5),
                                     IpAddress(10, 1, 0, 2), 9, 1, 56));
  world.queue.run();
  EXPECT_EQ(reader_saw_reply, 1);
}

TEST(HostStack, PortCaptureInterceptsBeforeSocketDemux) {
  Chain world;
  int socket_got = 0;
  int capture_got = 0;
  world.sc->openUdp(6000).setReceiveHandler([&](Packet) { ++socket_got; });
  world.sc->setPortCapture(packet::IpProto::kUdp, 6000,
                           [&](Packet) { ++capture_got; });
  world.sa->openUdp(1).sendTo(world.sc->address(), 6000, 10);
  world.queue.run();
  EXPECT_EQ(capture_got, 1);
  EXPECT_EQ(socket_got, 0);
  world.sc->clearPortCapture(packet::IpProto::kUdp, 6000);
  world.sa->openUdp(2).sendTo(world.sc->address(), 6000, 10);
  world.queue.run();
  EXPECT_EQ(capture_got, 1);
  EXPECT_EQ(socket_got, 1);
}

TEST(HostStack, NicRateLimitsThroughput) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  auto& a = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& b = net.addNode("b", IpAddress(1, 0, 0, 2));
  phys::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  net.addLink(a, b, fast);
  StackManager stacks(net);
  HostConfig slow_nic;
  slow_nic.nic_bps = 10e6;  // 10 Mb/s access
  stacks.setConfigFor("a", slow_nic);
  HostStack& sa = stacks.ensure(a);
  HostStack& sb = stacks.ensure(b);

  std::uint64_t bytes = 0;
  sb.openUdp(7000).setReceiveHandler([&](Packet p) { bytes += p.ipPacketBytes(); });
  auto& sender = sa.openUdp(1);
  // Offer 100 Mb/s for one second.
  const int packets = 8500;
  for (int i = 0; i < packets; ++i) sender.sendTo(sb.address(), 7000, 1430);
  queue.runUntil(kSecond);
  const double mbps = static_cast<double>(bytes) * 8 / 1e6;
  EXPECT_LT(mbps, 11.0);
  EXPECT_GT(mbps, 8.0);
}

TEST(HostStack, KernelForwardingAccountsCpu) {
  Chain world;
  auto& sender = world.sa->openUdp(1);
  world.sc->openUdp(7777).setReceiveHandler([](Packet) {});
  world.sb->resetKernelAccounting();
  for (int i = 0; i < 100; ++i) sender.sendTo(world.sc->address(), 7777, 1000);
  world.queue.run();
  EXPECT_GT(world.sb->kernelCpuConsumed(), 0);
}

TEST(HostStack, EphemeralPortsAreUnique) {
  Chain world;
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 100; ++i) {
    ports.insert(world.sa->openUdp(0).port());
  }
  EXPECT_EQ(ports.size(), 100u);
}

TEST(HostStack, TraceHooksObserveTraffic) {
  Chain world;
  int tx_seen = 0;
  int rx_seen = 0;
  world.sa->setTxTrace([&](const Packet&) { ++tx_seen; });
  world.sc->setRxTrace([&](const Packet&) { ++rx_seen; });
  world.sc->openUdp(7777).setReceiveHandler([](Packet) {});
  world.sa->openUdp(1).sendTo(world.sc->address(), 7777, 10);
  world.queue.run();
  EXPECT_EQ(tx_seen, 1);
  EXPECT_EQ(rx_seen, 1);
}

TEST(StackManager, EnsureIsIdempotent) {
  Chain world;
  auto* node = world.net.nodeByName("a");
  EXPECT_EQ(&world.stacks.ensure(*node), world.sa);
  EXPECT_EQ(world.stacks.getByName("a"), world.sa);
  EXPECT_EQ(world.stacks.getByName("zzz"), nullptr);
}

}  // namespace
}  // namespace vini::tcpip
