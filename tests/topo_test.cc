// Topology catalogue, rcc-style config parsing, and the ns-like
// experiment-specification machinery (Section 6.2).
#include <gtest/gtest.h>

#include "topo/abilene.h"
#include "topo/experiment_spec.h"
#include "topo/failure_trace.h"
#include "topo/router_config.h"
#include "topo/worlds.h"

namespace vini::topo {
namespace {

using sim::kSecond;

TEST(Abilene, HasElevenPopsAndFourteenLinks) {
  EXPECT_EQ(abilenePopNames().size(), 11u);
  EXPECT_EQ(abileneLinks().size(), 14u);
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  buildAbilene(net);
  EXPECT_EQ(net.nodeCount(), 11u);
  EXPECT_EQ(net.linkCount(), 14u);
}

TEST(Abilene, EveryLinkReferencesRealPops) {
  std::set<std::string> names(abilenePopNames().begin(), abilenePopNames().end());
  for (const auto& link : abileneLinks()) {
    EXPECT_TRUE(names.count(link.a)) << link.a;
    EXPECT_TRUE(names.count(link.b)) << link.b;
    EXPECT_GT(link.one_way_ms, 0.0);
    EXPECT_GT(link.igp_weight, 0u);
  }
}

TEST(Abilene, NorthernPathIsShortestWashingtonToSeattle) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  buildAbilene(net);
  auto path = net.pathBetween(net.nodeByName("Washington")->id(),
                              net.nodeByName("Seattle")->id());
  // DC - NY - Chicago - Indianapolis - KC - Denver - Seattle: 6 links.
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[0]->name(), "NewYork-Washington");
  EXPECT_EQ(path[4]->name(), "Denver-KansasCity");
  EXPECT_EQ(path[5]->name(), "Seattle-Denver");
}

TEST(Abilene, MirrorSpecBindsEachPopOneToOne) {
  const auto spec = abileneMirrorSpec("x");
  EXPECT_EQ(spec.nodes.size(), 11u);
  EXPECT_EQ(spec.links.size(), 14u);
  for (const auto& node : spec.nodes) {
    EXPECT_EQ(node.name, node.phys_name);
  }
}

TEST(Deter, BuildsChain) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  buildDeter(net);
  EXPECT_EQ(net.nodeCount(), 3u);
  EXPECT_EQ(net.linkCount(), 2u);
  EXPECT_NE(net.linkBetween("Src", "Fwdr"), nullptr);
  EXPECT_NE(net.linkBetween("Fwdr", "Sink"), nullptr);
  EXPECT_EQ(net.linkBetween("Src", "Sink"), nullptr);
}

// ---------------------------------------------------------------------------
// Router configs (rcc)

TEST(RouterConfig, ParsesWellFormedConfig) {
  const auto parsed = parseRouterConfigs(R"(
    # Abilene extract
    router Denver {
      interface KansasCity cost 500;
      interface Seattle cost 1100;
    }
    router KansasCity { interface Denver cost 500; }
    router Seattle { interface Denver cost 1100; }
  )");
  EXPECT_TRUE(parsed.faults.empty());
  EXPECT_EQ(parsed.topology.nodes.size(), 3u);
  ASSERT_EQ(parsed.topology.links.size(), 2u);
  for (const auto& link : parsed.topology.links) {
    if (link.a == "Denver" && link.b == "KansasCity") {
      EXPECT_EQ(link.igp_cost, 500u);
    }
  }
}

TEST(RouterConfig, DetectsAsymmetricAdjacency) {
  const auto parsed = parseRouterConfigs(R"(
    router A { interface B cost 10; }
    router B { }
  )");
  ASSERT_EQ(parsed.faults.size(), 1u);
  EXPECT_NE(parsed.faults[0].message.find("asymmetric"), std::string::npos);
  EXPECT_TRUE(parsed.topology.links.empty());
}

TEST(RouterConfig, DetectsCostMismatchAndUsesLower) {
  const auto parsed = parseRouterConfigs(R"(
    router A { interface B cost 10; }
    router B { interface A cost 99; }
  )");
  ASSERT_EQ(parsed.faults.size(), 2u);  // reported from both directions
  ASSERT_EQ(parsed.topology.links.size(), 1u);
  EXPECT_EQ(parsed.topology.links[0].igp_cost, 10u);
}

TEST(RouterConfig, SyntaxErrorsThrow) {
  EXPECT_THROW(parseRouterConfigs("router A {"), std::runtime_error);
  EXPECT_THROW(parseRouterConfigs("router A { interface B; }"), std::runtime_error);
  EXPECT_THROW(parseRouterConfigs("router A { interface B cost x; }"),
               std::runtime_error);
  EXPECT_THROW(parseRouterConfigs("router A {} router A {}"), std::runtime_error);
}

TEST(RouterConfig, EmitParseRoundTripsAbilene) {
  const auto spec = abileneMirrorSpec();
  const std::string text = emitRouterConfigs(spec);
  const auto parsed = parseRouterConfigs(text);
  EXPECT_TRUE(parsed.faults.empty());
  EXPECT_EQ(parsed.topology.nodes.size(), spec.nodes.size());
  EXPECT_EQ(parsed.topology.links.size(), spec.links.size());
  // Costs survive the round trip.
  std::map<std::pair<std::string, std::string>, std::uint32_t> want;
  for (const auto& link : spec.links) {
    auto key = link.a < link.b ? std::make_pair(link.a, link.b)
                               : std::make_pair(link.b, link.a);
    want[key] = link.igp_cost;
  }
  for (const auto& link : parsed.topology.links) {
    auto key = link.a < link.b ? std::make_pair(link.a, link.b)
                               : std::make_pair(link.b, link.a);
    EXPECT_EQ(link.igp_cost, want.at(key));
  }
}

// ---------------------------------------------------------------------------
// Experiment scripts

TEST(ExperimentScript, ParsesActions) {
  const auto actions = parseExperimentScript(R"(
    # the Section 5.2 experiment
    at 10.0 fail-link Denver KansasCity
    at 34.0 restore-link Denver KansasCity
    at 50.0 mark end-of-run
  )");
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_DOUBLE_EQ(actions[0].at_seconds, 10.0);
  EXPECT_EQ(actions[0].verb, "fail-link");
  EXPECT_EQ(actions[0].args, (std::vector<std::string>{"Denver", "KansasCity"}));
  EXPECT_EQ(actions[2].verb, "mark");
}

TEST(ExperimentScript, RejectsMalformedLines) {
  EXPECT_THROW(parseExperimentScript("fail-link A B"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at x fail-link A B"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at 5 explode A B"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at 5 fail-link A"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at -1 mark x"), std::runtime_error);
}

TEST(ExperimentScript, RejectsMissingOrExtraArguments) {
  // A time with no verb at all.
  EXPECT_THROW(parseExperimentScript("at 5"), std::runtime_error);
  // mark wants exactly one label.
  EXPECT_THROW(parseExperimentScript("at 5 mark"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at 5 mark a b"), std::runtime_error);
  // Link verbs want exactly two endpoints.
  EXPECT_THROW(parseExperimentScript("at 5 restore-link A"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at 5 fail-phys-link A B C"),
               std::runtime_error);
  // Bad lines are rejected even when later lines are fine.
  EXPECT_THROW(parseExperimentScript("at 5 bogus A B\nat 6 mark ok\n"),
               std::runtime_error);
}

TEST(ExperimentScript, RejectsNonNumericTimes) {
  EXPECT_THROW(parseExperimentScript("at ten mark x"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at 1.2.3 mark x"), std::runtime_error);
  EXPECT_THROW(parseExperimentScript("at nan.0 mark x"), std::runtime_error);
}

TEST(ExperimentScript, DrivesIiasFailures) {
  WorldOptions options;
  options.contention = 0.0;
  auto world = makeDeterWorld(options);
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  const auto actions = parseExperimentScript(
      "at 100.0 fail-link Src Fwdr\n"
      "at 140.0 restore-link Src Fwdr\n"
      "at 150.0 mark done\n");
  applyExperimentScript(actions, world->schedule, world->iias.get(), &world->net);

  world->queue.runUntil(120 * kSecond);
  // After the scripted failure the adjacency dies.
  EXPECT_FALSE(world->iias->allAdjacent());
  world->queue.runUntil(170 * kSecond);
  EXPECT_TRUE(world->iias->allAdjacent());
  ASSERT_EQ(world->schedule.log().size(), 3u);
  EXPECT_EQ(world->schedule.log()[2].label, "mark done");
}

TEST(ExperimentScript, DrivesPhysicalFailures) {
  WorldOptions options;
  options.contention = 0.0;
  auto world = makeDeterWorld(options);
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  const auto actions = parseExperimentScript(
      "at 100.0 fail-phys-link Src Fwdr\n"
      "at 140.0 restore-phys-link Src Fwdr\n");
  applyExperimentScript(actions, world->schedule, world->iias.get(), &world->net);
  world->queue.runUntil(101 * kSecond);
  // Fate sharing: the virtual link over that physical link went down.
  EXPECT_FALSE(world->iias->slice().linkBetween("Src", "Fwdr")->isUp());
  world->queue.runUntil(141 * kSecond);
  EXPECT_TRUE(world->iias->slice().linkBetween("Src", "Fwdr")->isUp());
}

// ---------------------------------------------------------------------------
// Failure traces

TEST(FailureTrace, GeneratedEventsAreSortedAndPaired) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  buildAbilene(net);
  FailureModel model;
  model.mttf_seconds = 300;
  model.mttr_seconds = 30;
  model.seed = 5;
  const auto events = generateFailureTrace(net, 3600.0, model);
  ASSERT_FALSE(events.empty());
  // Sorted by time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at_seconds, events[i].at_seconds);
  }
  // Per link: strict alternation down/up starting with down.
  std::map<std::pair<std::string, std::string>, bool> down;
  int downs = 0;
  int ups = 0;
  for (const auto& event : events) {
    auto key = std::make_pair(event.a, event.b);
    if (event.up) {
      ++ups;
      EXPECT_TRUE(down[key]) << event.a << "-" << event.b;
      down[key] = false;
    } else {
      ++downs;
      EXPECT_FALSE(down[key]) << event.a << "-" << event.b;
      down[key] = true;
    }
  }
  // Every failure has its repair (repairs may land past the horizon).
  EXPECT_EQ(downs, ups);
}

TEST(FailureTrace, EmitParseRoundTrip) {
  std::vector<LinkEvent> events = {
      {10.5, "Denver", "KansasCity", false},
      {55.25, "Denver", "KansasCity", true},
      {100.0, "Seattle", "Sunnyvale", false},
  };
  const auto parsed = parseLinkTrace(emitLinkTrace(events));
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].at_seconds, events[i].at_seconds);
    EXPECT_EQ(parsed[i].a, events[i].a);
    EXPECT_EQ(parsed[i].b, events[i].b);
    EXPECT_EQ(parsed[i].up, events[i].up);
  }
}

TEST(FailureTrace, ParseRejectsMalformed) {
  EXPECT_THROW(parseLinkTrace("t=x link A B down"), std::runtime_error);
  EXPECT_THROW(parseLinkTrace("10 link A B down"), std::runtime_error);
  EXPECT_THROW(parseLinkTrace("t=10 edge A B down"), std::runtime_error);
  EXPECT_THROW(parseLinkTrace("t=10 link A B sideways"), std::runtime_error);
  EXPECT_TRUE(parseLinkTrace("# comment\n\n").empty());
}

TEST(FailureTrace, ParseRejectsMissingFields) {
  // Truncated lines: missing state, endpoint, or everything after t=.
  EXPECT_THROW(parseLinkTrace("t=10 link A B"), std::runtime_error);
  EXPECT_THROW(parseLinkTrace("t=10 link A"), std::runtime_error);
  EXPECT_THROW(parseLinkTrace("t=10"), std::runtime_error);
  // Non-numeric time survives the t= prefix but fails conversion.
  EXPECT_THROW(parseLinkTrace("t=soon link A B down"), std::runtime_error);
  // Garbage after a valid prefix on a later line is still caught.
  EXPECT_THROW(
      parseLinkTrace("t=10 link A B down\nt=20 link A B upward\n"),
      std::runtime_error);
}

TEST(FailureTrace, ApplyDrivesPhysicalLinks) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  buildAbilene(net);
  core::EventSchedule schedule(queue);
  const auto events = parseLinkTrace(
      "t=5 link Denver KansasCity down\nt=9 link Denver KansasCity up\n");
  applyLinkTrace(events, schedule, net);
  phys::PhysLink* link = net.linkBetween("Denver", "KansasCity");
  queue.runUntil(6 * sim::kSecond);
  EXPECT_FALSE(link->isUp());
  queue.runUntil(10 * sim::kSecond);
  EXPECT_TRUE(link->isUp());
  EXPECT_THROW(applyLinkTrace(parseLinkTrace("t=1 link No Where down\n"),
                              schedule, net),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Worlds

TEST(Worlds, AbileneMirrorEmbedsElevenRouters) {
  WorldOptions options;
  options.contention = 0.0;
  auto world = makeAbileneWorld(options);
  EXPECT_EQ(world->iias->routers().size(), 11u);
  EXPECT_TRUE(world->runUntilConverged(120 * kSecond));
  // The slice mirrors the substrate: each virtual link pinned to exactly
  // the physical link between its endpoints' PoPs.
  for (const auto& link : world->iias->slice().links()) {
    EXPECT_EQ(link->underlayPath().size(), 1u);
  }
}

TEST(Worlds, ConvergedRoutersKnowAllTaps) {
  WorldOptions options;
  options.contention = 0.0;
  auto world = makeAbileneWorld(options);
  ASSERT_TRUE(world->runUntilConverged(120 * kSecond));
  for (const auto& router : world->iias->routers()) {
    for (const auto& name : abilenePopNames()) {
      if (router->vnode().name() == name) continue;
      EXPECT_TRUE(router->xorp().rib().lookup(world->tapOf(name)).has_value())
          << router->vnode().name() << " -> " << name;
    }
  }
}

}  // namespace
}  // namespace vini::topo
