// Unit tests for the discrete-event engine, RNG, and statistics.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "check/audit.h"
#include "sim/callback.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace vini::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, EqualTimestampsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule(100, [] {});
  q.step();
  Time fired_at = -1;
  q.schedule(50, [&] { fired_at = q.now(); });  // in the past
  q.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  // cancel() of an id the queue never issued is a caller bug, so the
  // V101 audit reports it at error severity; capture it so the audited
  // build doesn't abort.
  check::ScopedAuditCollector collector;
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
#if VINI_AUDIT_ENABLED
  EXPECT_TRUE(collector.report().hasCode("V101"))
      << collector.report().format();
  EXPECT_TRUE(collector.report().hasErrors());
#else
  EXPECT_TRUE(collector.report().empty()) << collector.report().format();
#endif
}

TEST(EventQueue, CancelAfterFireReturnsFalseDeterministically) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(10, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
  // An id that already fired can never be cancelled, no matter how
  // often the caller retries.
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  // The queue is still fully usable afterwards.
  const EventId next = q.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(next));
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, InterleavedCancelKeepsOrderDeterministic) {
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.schedule(20, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(a));
  q.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule(i * kSecond, [&] { ++count; });
  }
  q.runUntil(5 * kSecond);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 5 * kSecond);
  EXPECT_EQ(q.pendingCount(), 5u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithEmptyQueue) {
  EventQueue q;
  q.runUntil(7 * kSecond);
  EXPECT_EQ(q.now(), 7 * kSecond);
}

TEST(EventQueue, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  q.schedule(1, [&] {
    ++depth;
    q.scheduleAfter(1, [&] {
      ++depth;
      q.scheduleAfter(1, [&] { ++depth; });
    });
  });
  q.run();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(q.now(), 3);
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.pendingCount(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(EventQueue, StorageBoundedUnderReArmChurn) {
  // Re-arming a one-shot timer cancels the previous event each time.
  // Eager cancellation plus tombstone compaction must keep the event
  // storage bounded no matter how many re-arm cycles happen before the
  // queue runs (the pre-overhaul queue leaked a tombstone per cycle).
  EventQueue q;
  int fires = 0;
  OneShotTimer timer(q, [&] { ++fires; });
  for (int i = 0; i < 20000; ++i) {
    timer.armAfter(kSecond + i);
  }
  EXPECT_EQ(q.pendingCount(), 1u);
  EXPECT_LE(q.storageCount(), 4u);
  q.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(q.storageCount(), 0u);
}

TEST(EventQueue, CancelOrderDeterministicAfterCompaction) {
  // Cancelling half the events at one timestamp forces at least one
  // compaction pass; the survivors must still fire in schedule order
  // (FIFO among equal timestamps survives the storage rebuild).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(q.schedule(10, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i % 3 != 0) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  EXPECT_LT(q.storageCount(), 200u);  // compaction actually ran
  q.run();
  ASSERT_EQ(order.size(), 67u);
  for (int i = 0; i < 67; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], 3 * i);
  }
}

TEST(EventQueue, HeapAndCalendarFireIdenticalSequences) {
  // Both priority structures implement the same (when, id) total order,
  // so a randomized workload with cancellations and re-entrant
  // scheduling must replay identically on either implementation.
  auto run = [](QueueImpl impl) {
    EventQueue q(impl);
    Random r(99);
    std::vector<std::pair<Time, int>> fired;
    std::vector<EventId> ids;
    for (int i = 0; i < 400; ++i) {
      const Time when = r.uniformDuration(0, 2 * kSecond);
      ids.push_back(q.schedule(when, [&q, &fired, i] {
        fired.emplace_back(q.now(), i);
        if (i % 5 == 0) {
          q.scheduleAfter(kMillisecond,
                          [&q, &fired, i] { fired.emplace_back(q.now(), 1000 + i); });
        }
      }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 7) q.cancel(ids[i]);
    q.run();
    return fired;
  };
  const auto heap = run(QueueImpl::kHeap);
  const auto calendar = run(QueueImpl::kCalendar);
  EXPECT_EQ(heap, calendar);
  EXPECT_GT(heap.size(), 300u);
}

TEST(EventQueue, CalendarHandlesSparseFarFutureEvents) {
  // Sparse timestamps spanning minutes stress the calendar's
  // year-window scan and its direct-search fallback; an insert earlier
  // than the current scan position exercises the rewind path.
  EventQueue q(QueueImpl::kCalendar);
  EXPECT_EQ(std::string(queueImplName(q.impl())), "calendar");
  std::vector<int> order;
  q.schedule(600 * kSecond, [&] { order.push_back(3); });
  q.schedule(1, [&] { order.push_back(1); });
  q.schedule(60 * kSecond, [&] { order.push_back(2); });
  q.step();  // fires the t=1 event, scan is now positioned past it
  q.schedule(2, [&] { order.push_back(10); });  // rewind: earlier than scan
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3}));
  EXPECT_EQ(q.executedCount(), 4u);
}

TEST(EventQueue, PeakCountersTrackHighWater) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.schedule(i + 1, [] {}));
  q.cancel(ids[0]);
  q.cancel(ids[1]);
  q.cancel(ids[2]);
  q.run();
  EXPECT_EQ(q.peakPendingCount(), 10u);
  EXPECT_GE(q.peakStorageCount(), 10u);
  EXPECT_EQ(q.executedCount(), 7u);
  EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(InlineCallback, InvokesAndMoveTransfersOwnership) {
  int calls = 0;
  InlineCallback<64> cb = [&calls] { ++calls; };
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(calls, 1);
  InlineCallback<64> moved = std::move(cb);
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallback, MoveOnlyCapturesWork) {
  auto value = std::make_unique<int>(41);
  InlineCallback<64> cb = [v = std::move(value)] { ++*v; };
  cb();
  InlineCallback<64> moved = std::move(cb);
  moved();
}

TEST(InlineCallback, HeapFallbackForOversizedCaptures) {
  // 128 bytes of capture cannot fit the 64-byte inline buffer; the
  // callback must transparently fall back to a heap allocation.
  struct Big {
    char data[128] = {0};
  };
  Big big;
  big.data[100] = 7;
  int seen = -1;
  InlineCallback<64> cb = [big, &seen] { seen = big.data[100]; };
  InlineCallback<64> moved = std::move(cb);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(InlineCallback, ResetReleasesCapturedStateEagerly) {
  // Eager cancel in the event queue relies on reset() destroying the
  // captured state immediately, not at queue teardown.
  auto token = std::make_shared<int>(1);
  InlineCallback<64> cb = [token] { (void)*token; };
  EXPECT_EQ(token.use_count(), 2);
  cb.reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(EventQueue, EagerCancelReleasesCallbackState) {
  // cancel() must destroy the captured state right away even though the
  // tombstone key stays queued until compaction or pop.
  EventQueue q;
  auto token = std::make_shared<int>(1);
  const EventId id = q.schedule(10, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(token.use_count(), 1);
  q.run();
}

TEST(EventQueue, TeardownSurvivesCallbacksThatCancelTheirOwnTimers) {
  // A component kept alive only by its pending event (shared_ptr in the
  // callback) may cancel its own timers from its destructor.  When the
  // queue itself is destroyed that destructor runs while the slab
  // drains, and the re-entrant cancel() must not touch the dying queue
  // (regression: heap-use-after-free on free_slots_ at teardown).
  struct SelfCancelling {
    explicit SelfCancelling(EventQueue& q)
        : timer(q, [] {}) {
      timer.armAfter(kSecond);
    }
    ~SelfCancelling() { timer.cancel(); }
    OneShotTimer timer;
  };
  auto q = std::make_unique<EventQueue>();
  auto owner = std::make_shared<SelfCancelling>(*q);
  q->schedule(10 * kSecond, [owner] { (void)owner; });
  owner.reset();  // the pending event now holds the only reference
  q.reset();      // must not re-enter the half-destroyed queue
}

TEST(PeriodicTimer, FiresRepeatedlyUntilStopped) {
  EventQueue q;
  int fires = 0;
  auto timer = std::make_unique<PeriodicTimer>(q, kSecond, [&] { ++fires; });
  timer->start();
  q.runUntil(10 * kSecond + 1);
  EXPECT_EQ(fires, 10);
  timer->stop();
  q.runUntil(20 * kSecond);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, StopBeforeFirstFire) {
  EventQueue q;
  int fires = 0;
  PeriodicTimer timer(q, kSecond, [&] { ++fires; });
  timer.start();
  timer.stop();
  q.runUntil(10 * kSecond);
  EXPECT_EQ(fires, 0);
}

TEST(PeriodicTimer, CallbackMayChangePeriod) {
  EventQueue q;
  std::vector<Time> fire_times;
  PeriodicTimer* handle = nullptr;
  PeriodicTimer timer(q, kSecond, [&] {
    fire_times.push_back(q.now());
    handle->setPeriod(2 * kSecond);
  });
  handle = &timer;
  timer.start();
  q.runUntil(8 * kSecond);
  // The firing already armed when setPeriod ran keeps the old period;
  // the change applies from the next re-arm.
  ASSERT_GE(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], kSecond);
  EXPECT_EQ(fire_times[1], 2 * kSecond);
  EXPECT_EQ(fire_times[2], 4 * kSecond);
}

TEST(OneShotTimer, ReArmReplacesPending) {
  EventQueue q;
  int fires = 0;
  OneShotTimer timer(q, [&] { ++fires; });
  timer.armAfter(5 * kSecond);
  timer.armAfter(1 * kSecond);  // replaces
  q.runUntil(10 * kSecond);
  EXPECT_EQ(fires, 1);
}

TEST(OneShotTimer, CancelStopsFiring) {
  EventQueue q;
  int fires = 0;
  OneShotTimer timer(q, [&] { ++fires; });
  timer.armAfter(kSecond);
  EXPECT_TRUE(timer.pending());
  timer.cancel();
  EXPECT_FALSE(timer.pending());
  q.runUntil(5 * kSecond);
  EXPECT_EQ(fires, 0);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(fromSeconds(1.5), 1'500'000'000);
  EXPECT_EQ(fromMillis(2.0), 2'000'000);
  EXPECT_EQ(fromMicros(3.0), 3'000);
  EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(toMillis(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(toMicros(kMicrosecond), 1.0);
}

TEST(Random, DeterministicGivenSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Random, UniformBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Random, ExponentialMeanIsApproximatelyRight) {
  Random r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Random, ExponentialDurationRespectsCap) {
  Random r(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(r.exponentialDuration(kSecond, 2 * kSecond), 2 * kSecond);
  }
}

TEST(Random, ChanceExtremes) {
  Random r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Random, UniformDurationDegenerateRange) {
  Random r(19);
  EXPECT_EQ(r.uniformDuration(5, 5), 5);
  EXPECT_EQ(r.uniformDuration(5, 3), 5);
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  // ping's mdev is the population deviation.
  EXPECT_NEAR(s.mdev(), 1.1180339, 1e-6);
}

TEST(SampleStats, EmptyAndSingle) {
  SampleStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.mdev(), 0.0);
}

TEST(SampleStats, ConstantSeriesHasZeroDeviation) {
  SampleStats s;
  for (int i = 0; i < 50; ++i) s.add(3.25);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_NEAR(s.mdev(), 0.0, 1e-9);
}

TEST(TimeSeries, StatsBetweenFiltersHalfOpenInterval) {
  TimeSeries ts("x");
  for (int i = 0; i < 10; ++i) ts.add(i * kSecond, i);
  const SampleStats s = ts.statsBetween(2 * kSecond, 5 * kSecond);
  EXPECT_EQ(s.count(), 3u);  // t = 2, 3, 4
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(TimeSeries, CsvOutput) {
  TimeSeries ts("rtt");
  ts.add(kSecond, 1.5);
  ts.add(2 * kSecond, 2.5);
  std::ostringstream os;
  ts.writeCsv(os);
  EXPECT_EQ(os.str(), "seconds,rtt\n1,1.5\n2,2.5\n");
}

TEST(JitterEstimator, ConstantSpacingHasZeroJitter) {
  JitterEstimator j;
  for (int i = 0; i < 100; ++i) {
    j.onPacket(i * kMillisecond, i * kMillisecond + 5 * kMillisecond);
  }
  EXPECT_DOUBLE_EQ(j.jitterMs(), 0.0);
}

TEST(JitterEstimator, AlternatingTransitConverges) {
  // Transit alternates 5 ms / 7 ms: |D| = 2 ms every packet, so the
  // RFC 1889 estimator converges toward 2 ms from below.
  JitterEstimator j;
  for (int i = 0; i < 500; ++i) {
    const Duration transit = (i % 2 == 0 ? 5 : 7) * kMillisecond;
    j.onPacket(i * kMillisecond * 10, i * kMillisecond * 10 + transit);
  }
  EXPECT_GT(j.jitterMs(), 1.8);
  EXPECT_LT(j.jitterMs(), 2.0);
}

TEST(Determinism, SameSeedSameSchedule) {
  // A mixed workload of randomized timers must replay identically.
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    Random r(seed);
    auto fired = std::make_shared<std::vector<Time>>();
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&q, &r, fired, tick] {
      fired->push_back(q.now());
      if (fired->size() < 200) {
        q.scheduleAfter(r.exponentialDuration(kMillisecond), [tick] { (*tick)(); });
      }
    };
    q.scheduleAfter(0, [tick] { (*tick)(); });
    q.run();
    *tick = nullptr;  // the stored lambda captures `tick`; break the cycle
    return *fired;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace vini::sim
