// VINI core tests: slices, virtual topology construction, addressing,
// admission control, fate sharing, upcalls, embedding, and the
// experiment schedule.
#include <gtest/gtest.h>

#include "core/embedder.h"
#include "core/schedule.h"
#include "core/thread_annotations.h"
#include "core/vini.h"

#ifdef VINI_SHARD_CHECK
#include <thread>
#endif
#include "topo/abilene.h"

namespace vini::core {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

struct Substrate {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};

  explicit Substrate(int nodes = 4) {
    for (int i = 0; i < nodes; ++i) {
      net.addNode("n" + std::to_string(i),
                  IpAddress(9, 0, 0, static_cast<std::uint8_t>(i + 1)));
    }
    // Chain n0 - n1 - n2 - ...
    for (int i = 0; i + 1 < nodes; ++i) {
      net.addLink(*net.nodeById(i), *net.nodeById(i + 1));
    }
  }
};

TEST(Slice, DistinctOverlayPrefixesAndPorts) {
  Substrate world;
  Vini vini(world.net);
  Slice& s1 = vini.createSlice("exp1");
  Slice& s2 = vini.createSlice("exp2");
  EXPECT_EQ(s1.overlayPrefix().str(), "10.1.0.0/16");
  EXPECT_EQ(s2.overlayPrefix().str(), "10.2.0.0/16");
  EXPECT_NE(s1.tunnelPort(), s2.tunnelPort());
  EXPECT_EQ(vini.sliceByName("exp2"), &s2);
  EXPECT_EQ(vini.sliceByName("nope"), nullptr);
}

TEST(Slice, TapAddressesFollowNodeIndex) {
  Substrate world;
  Vini vini(world.net);
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& b = slice.addNode(*world.net.nodeById(1), "b");
  EXPECT_EQ(a.tapAddress().str(), "10.1.0.2");
  EXPECT_EQ(b.tapAddress().str(), "10.1.1.2");
}

TEST(Slice, LinkAllocatesSlash30WithDistinctEnds) {
  Substrate world;
  Vini vini(world.net);
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& b = slice.addNode(*world.net.nodeById(1), "b");
  VirtualLink& link = slice.addLink(a, b);

  EXPECT_EQ(link.subnet().length(), 30);
  EXPECT_TRUE(slice.overlayPrefix().covers(link.subnet()));
  EXPECT_NE(link.interfaceA().address(), link.interfaceB().address());
  EXPECT_TRUE(link.subnet().contains(link.interfaceA().address()));
  EXPECT_TRUE(link.subnet().contains(link.interfaceB().address()));
  EXPECT_EQ(link.interfaceA().peerAddress(), link.interfaceB().address());
  EXPECT_EQ(link.interfaceB().peerAddress(), link.interfaceA().address());
  // Both nodes see one interface each ("unique interfaces per
  // experiment" — the node's degree grows with the topology).
  EXPECT_EQ(a.interfaces().size(), 1u);
  EXPECT_EQ(b.interfaces().size(), 1u);
}

TEST(Slice, ManyLinksGetDisjointSubnets) {
  Substrate world(4);
  Vini vini(world.net);
  Slice& slice = vini.createSlice("exp");
  std::vector<VirtualNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(&slice.addNode(*world.net.nodeById(i), "v" + std::to_string(i)));
  }
  std::set<Prefix> subnets;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      subnets.insert(slice.addLink(*nodes[i], *nodes[j]).subnet());
    }
  }
  EXPECT_EQ(subnets.size(), 6u);  // full mesh of 4: all distinct
  // Node degree is 3: three interfaces on one physical node.
  EXPECT_EQ(nodes[0]->interfaces().size(), 3u);
}

TEST(Slice, RejectsDuplicatePlacementAndForeignEndpoints) {
  Substrate world;
  Vini vini(world.net);
  Slice& s1 = vini.createSlice("exp1");
  Slice& s2 = vini.createSlice("exp2");
  VirtualNode& a = s1.addNode(*world.net.nodeById(0), "a");
  EXPECT_THROW(s1.addNode(*world.net.nodeById(0), "a2"), std::runtime_error);
  VirtualNode& b2 = s2.addNode(*world.net.nodeById(1), "b2");
  EXPECT_THROW(s1.addLink(a, b2), std::runtime_error);
  EXPECT_THROW(s1.addLink(a, a), std::runtime_error);
}

TEST(Vini, AdmissionControlCapsReservations) {
  Substrate world;
  Vini vini(world.net);
  ResourceSpec half;
  half.cpu_reservation = 0.5;
  Slice& s1 = vini.createSlice("exp1", half);
  Slice& s2 = vini.createSlice("exp2", half);
  s1.addNode(*world.net.nodeById(0), "a");
  // 0.5 + 0.5 > 0.9: rejected on the same node...
  EXPECT_THROW(s2.addNode(*world.net.nodeById(0), "b"), std::runtime_error);
  // ...but fine elsewhere.
  s2.addNode(*world.net.nodeById(1), "b");
  EXPECT_NEAR(vini.reservedCpuOn(*world.net.nodeById(0)), 0.5, 1e-9);
  EXPECT_NEAR(vini.reservedCpuOn(*world.net.nodeById(1)), 0.5, 1e-9);
}

TEST(VirtualLink, PinsToCurrentUnderlayPath) {
  Substrate world(3);
  Vini vini(world.net);
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& c = slice.addNode(*world.net.nodeById(2), "c");
  VirtualLink& link = slice.addLink(a, c);  // path crosses n1
  EXPECT_EQ(link.underlayPath().size(), 2u);
  EXPECT_TRUE(link.isUp());
}

TEST(VirtualLink, SharesFateWithUnderlayInExposeMode) {
  Substrate world(3);
  Vini vini(world.net);  // expose_underlay_failures = true
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& c = slice.addNode(*world.net.nodeById(2), "c");
  VirtualLink& link = slice.addLink(a, c);

  int transitions = 0;
  bool latest = true;
  link.subscribe([&](VirtualLink&, bool up) {
    ++transitions;
    latest = up;
  });

  phys::PhysLink* middle = world.net.linkBetween(1, 2);
  middle->setUp(false);
  EXPECT_FALSE(link.isUp());
  EXPECT_FALSE(latest);
  middle->setUp(true);
  EXPECT_TRUE(link.isUp());
  EXPECT_EQ(transitions, 2);
}

TEST(VirtualLink, MaskedModeHidesUnderlayFailure) {
  Substrate world(3);
  ViniConfig config;
  config.expose_underlay_failures = false;  // plain-overlay behaviour
  Vini vini(world.net, config);
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& c = slice.addNode(*world.net.nodeById(2), "c");
  VirtualLink& link = slice.addLink(a, c);
  world.net.linkBetween(1, 2)->setUp(false);
  // The virtual link never learns: this is exactly the problem VINI's
  // fate-sharing requirement addresses.
  EXPECT_TRUE(link.isUp());
}

TEST(VirtualLink, AdminDownOverridesHealthyUnderlay) {
  Substrate world(2);
  Vini vini(world.net);
  Slice& slice = vini.createSlice("exp");
  VirtualNode& a = slice.addNode(*world.net.nodeById(0), "a");
  VirtualNode& b = slice.addNode(*world.net.nodeById(1), "b");
  VirtualLink& link = slice.addLink(a, b);
  link.setAdminUp(false);
  EXPECT_FALSE(link.isUp());
  EXPECT_TRUE(link.underlayUp());
  link.setAdminUp(true);
  EXPECT_TRUE(link.isUp());
}

TEST(Upcalls, DeliveredToOwningSliceOnly) {
  Substrate world(3);
  Vini vini(world.net);
  Slice& s1 = vini.createSlice("exp1");
  Slice& s2 = vini.createSlice("exp2");
  VirtualNode& a1 = s1.addNode(*world.net.nodeById(0), "a");
  VirtualNode& c1 = s1.addNode(*world.net.nodeById(2), "c");
  s1.addLink(a1, c1);
  // Slice 2 exists but has no link over n1-n2.
  s2.addNode(*world.net.nodeById(0), "x");

  std::vector<UpcallEvent> events1;
  std::vector<UpcallEvent> events2;
  vini.upcalls().subscribe(s1.id(), [&](const UpcallEvent& e) { events1.push_back(e); });
  vini.upcalls().subscribe(s2.id(), [&](const UpcallEvent& e) { events2.push_back(e); });

  world.net.linkBetween(1, 2)->setUp(false);
  ASSERT_GE(events1.size(), 2u);  // phys alarm + virtual-link-down
  EXPECT_EQ(events1[0].type, UpcallEvent::Type::kPhysLinkDown);
  EXPECT_EQ(events1[1].type, UpcallEvent::Type::kVirtualLinkDown);
  EXPECT_TRUE(events2.empty());

  world.net.linkBetween(1, 2)->setUp(true);
  EXPECT_EQ(events1.back().type, UpcallEvent::Type::kVirtualLinkUp);
}

TEST(Embedder, HonorsExplicitBindings) {
  Substrate world(4);
  Vini vini(world.net);
  TopologyEmbedder embedder(vini);
  TopologySpec spec;
  spec.name = "exp";
  spec.nodes = {{"x", "n2"}, {"y", "n0"}};
  spec.links = {{"x", "y", 7}};
  Embedding embedding = embedder.embed(spec);
  ASSERT_NE(embedding.slice, nullptr);
  EXPECT_EQ(embedding.slice->nodeByName("x")->physNode().name(), "n2");
  EXPECT_EQ(embedding.slice->nodeByName("y")->physNode().name(), "n0");
  ASSERT_EQ(embedding.slice->links().size(), 1u);
  EXPECT_EQ(embedding.link_costs.at(embedding.slice->links()[0].get()), 7u);
}

TEST(Embedder, AutoPlacesOnDistinctNodes) {
  Substrate world(4);
  Vini vini(world.net);
  TopologyEmbedder embedder(vini);
  TopologySpec spec;
  spec.name = "exp";
  spec.nodes = {{"x", ""}, {"y", ""}, {"z", ""}};
  spec.links = {{"x", "y", 1}, {"y", "z", 1}};
  Embedding embedding = embedder.embed(spec);
  std::set<std::string> used;
  for (const auto& node : embedding.slice->nodes()) {
    used.insert(node->physNode().name());
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST(Embedder, RejectsBadSpecs) {
  Substrate world(2);
  Vini vini(world.net);
  TopologyEmbedder embedder(vini);
  TopologySpec bad_phys;
  bad_phys.name = "a";
  bad_phys.nodes = {{"x", "nosuch"}};
  EXPECT_THROW(embedder.embed(bad_phys), std::runtime_error);

  TopologySpec too_big;
  too_big.name = "b";
  too_big.nodes = {{"x", ""}, {"y", ""}, {"z", ""}};
  EXPECT_THROW(embedder.embed(too_big), std::runtime_error);

  TopologySpec bad_link;
  bad_link.name = "c";
  bad_link.nodes = {{"x", ""}};
  bad_link.links = {{"x", "ghost", 1}};
  EXPECT_THROW(embedder.embed(bad_link), std::runtime_error);
}

TEST(Vini, PortReservationsAreExclusivePerSlice) {
  // Section 4.1.1: each slice "may reserve specific ports"; VNET keeps
  // them exclusive.  Tunnel ports are reserved at slice creation.
  Substrate world;
  Vini vini(world.net);
  Slice& s1 = vini.createSlice("exp1");
  Slice& s2 = vini.createSlice("exp2");
  EXPECT_EQ(vini.portOwner(s1.tunnelPort()), s1.id());
  EXPECT_EQ(vini.portOwner(s2.tunnelPort()), s2.id());
  // A slice cannot take another's tunnel port.
  EXPECT_FALSE(vini.reservePort(s2, s1.tunnelPort()));
  // Fresh ports work, and re-reserving your own is idempotent.
  EXPECT_TRUE(vini.reservePort(s1, 1194));
  EXPECT_TRUE(vini.reservePort(s1, 1194));
  EXPECT_FALSE(vini.reservePort(s2, 1194));
  EXPECT_EQ(vini.portOwner(1194), s1.id());
  EXPECT_EQ(vini.portOwner(9999), -1);
}

#ifdef VINI_SHARD_CHECK
TEST(ShardToken, SameThreadMayAssertRepeatedly) {
  ShardToken token;
  token.assertHeld();  // first touch claims the shard
  token.assertHeld();  // same thread: fine
  token.release();
  token.assertHeld();  // reclaim after release: fine
}

TEST(ShardToken, ForeignThreadAborts) {
  ShardToken token;
  token.assertHeld();
  EXPECT_DEATH(
      [&token] {
        std::thread([&token] { token.assertHeld(); }).join();
      }(),
      "");
}
#endif

TEST(EventSchedule, RunsActionsAndKeepsLog) {
  sim::EventQueue queue;
  EventSchedule schedule(queue);
  std::vector<int> fired;
  schedule.atSeconds(2.0, "two", [&] { fired.push_back(2); });
  schedule.atSeconds(1.0, "one", [&] { fired.push_back(1); });
  queue.runUntil(10 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  ASSERT_EQ(schedule.log().size(), 2u);
  EXPECT_EQ(schedule.log()[0].label, "one");
  EXPECT_EQ(schedule.log()[1].when, 2 * kSecond);
  EXPECT_EQ(schedule.scheduledCount(), 2u);
}

}  // namespace
}  // namespace vini::core
