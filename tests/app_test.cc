// Application-layer tests: iperf (TCP and UDP), ping modes, the web
// pair, cross-traffic generation, and the tcpdump capture.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/ping.h"
#include "app/ron.h"
#include "app/traceroute.h"
#include "app/traffic.h"
#include "app/web.h"
#include "phys/network.h"
#include "tcpip/stack_manager.h"

namespace vini::app {
namespace {

using packet::IpAddress;
using sim::kMillisecond;
using sim::kSecond;

struct Pair {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  tcpip::StackManager stacks{net};
  tcpip::HostStack* a = nullptr;
  tcpip::HostStack* b = nullptr;
  phys::PhysLink* link = nullptr;

  explicit Pair(double bw = 100e6, sim::Duration delay = 5 * kMillisecond,
                double loss = 0.0) {
    auto& na = net.addNode("a", IpAddress(1, 0, 0, 1));
    auto& nb = net.addNode("b", IpAddress(1, 0, 0, 2));
    phys::LinkConfig config;
    config.bandwidth_bps = bw;
    config.propagation = delay;
    config.loss_rate = loss;
    link = &net.addLink(na, nb, config);
    a = &stacks.ensure(na);
    b = &stacks.ensure(nb);
  }
};

TEST(IperfTcp, ServerReportsGoodput) {
  Pair world;
  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 64 * 1024;  // 4 x 64 KB comfortably covers the BDP
  auto result = runIperfTcp(world.queue, *world.a, *world.b, world.b->address(),
                            5001, 4, 5 * kSecond, tcp);
  // 100 Mb/s wire, 10 ms RTT: should approach line rate.
  EXPECT_GT(result.mbps, 80.0);
  EXPECT_LT(result.mbps, 100.0);
  EXPECT_EQ(result.retransmits, 0u);
}

TEST(IperfTcp, MoreStreamsFillHighBdpPipe) {
  // One 16 KB-window stream cannot fill 100 Mb/s at 40 ms RTT; twenty can
  // do much better (the reason the paper's tests run 20 streams).
  Pair world(100e6, 20 * kMillisecond);
  const double one = runIperfTcp(world.queue, *world.a, *world.b,
                                 world.b->address(), 5001, 1, 5 * kSecond)
                         .mbps;
  Pair world2(100e6, 20 * kMillisecond);
  const double twenty = runIperfTcp(world2.queue, *world2.a, *world2.b,
                                    world2.b->address(), 5001, 20, 5 * kSecond)
                            .mbps;
  EXPECT_LT(one, 6.0);
  EXPECT_GT(twenty, 10 * one);
}

TEST(IperfUdp, CbrRateIsAccurate) {
  Pair world;
  IperfUdpServer server(*world.b, 5002);
  IperfUdpClient client(*world.a, world.b->address(), 5002, 20e6, 1430);
  client.start(5 * kSecond);
  world.queue.runUntil(world.queue.now() + 6 * kSecond);
  const double mbps =
      static_cast<double>(server.bytesReceived()) * 8 / 5.0 / 1e6;
  EXPECT_NEAR(mbps, 20.0, 1.0);
  EXPECT_EQ(server.lossFraction(), 0.0);
}

TEST(IperfUdp, DetectsLossViaSequenceGaps) {
  Pair world(100e6, 5 * kMillisecond, 0.05);
  IperfUdpServer server(*world.b, 5002);
  IperfUdpClient client(*world.a, world.b->address(), 5002, 10e6, 1430);
  client.start(10 * kSecond);
  world.queue.runUntil(world.queue.now() + 11 * kSecond);
  EXPECT_NEAR(server.lossFraction(), 0.05, 0.02);
  EXPECT_LT(server.packetsReceived(), client.packetsSent());
}

TEST(IperfUdp, JitterReflectsPathVariability) {
  // A clean path has tiny jitter; competing cross traffic on the same
  // link inflates it.
  Pair quiet;
  IperfUdpServer qserver(*quiet.b, 5002);
  IperfUdpClient qclient(*quiet.a, quiet.b->address(), 5002, 5e6, 1430);
  qclient.start(5 * kSecond);
  quiet.queue.runUntil(quiet.queue.now() + 6 * kSecond);

  Pair busy;
  IperfUdpServer bserver(*busy.b, 5002);
  CrossTrafficSource::Options cross;
  cross.mean_rate_bps = 60e6;
  cross.burstiness = 5.0;
  CrossTrafficSource noise(*busy.a, busy.b->address(), cross);
  noise.start();
  IperfUdpClient bclient(*busy.a, busy.b->address(), 5002, 5e6, 1430);
  bclient.start(5 * kSecond);
  busy.queue.runUntil(busy.queue.now() + 6 * kSecond);

  EXPECT_GT(bserver.jitterMs(), 3 * qserver.jitterMs());
}

TEST(Pinger, FloodModeCompletesAndMeasures) {
  Pair world;
  Pinger::Options options;
  options.count = 500;
  Pinger pinger(*world.a, world.b->address(), options);
  bool done = false;
  pinger.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 60 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().transmitted, 500u);
  EXPECT_EQ(pinger.report().received, 500u);
  EXPECT_NEAR(pinger.report().rtt_ms.mean(), 10.3, 1.0);
  EXPECT_EQ(pinger.report().lossPercent(), 0.0);
}

TEST(Pinger, IntervalModePacesOnePerInterval) {
  Pair world;
  Pinger::Options options;
  options.count = 10;
  options.flood = false;
  options.interval = kSecond;
  Pinger pinger(*world.a, world.b->address(), options);
  sim::Time first = -1;
  sim::Time last = -1;
  pinger.on_reply = [&](std::uint64_t, sim::Duration) {
    if (first < 0) first = world.queue.now();
    last = world.queue.now();
  };
  bool done = false;
  pinger.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  // Ten probes, one per second: ~9 s between first and last reply.
  EXPECT_NEAR(sim::toSeconds(last - first), 9.0, 0.5);
}

TEST(Pinger, CountsLossOnLossyPath) {
  Pair world(100e6, 5 * kMillisecond, 0.10);
  Pinger::Options options;
  options.count = 1000;
  Pinger pinger(*world.a, world.b->address(), options);
  bool done = false;
  pinger.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 120 * kSecond);
  ASSERT_TRUE(done);
  // Request or reply can die: loss ~ 1 - 0.9^2 = 19%.
  EXPECT_NEAR(pinger.report().lossPercent(), 19.0, 5.0);
}

TEST(Web, FetchRoundTrip) {
  Pair world;
  WebServer server(*world.b, 80, 25'000);
  WebClient client(*world.a);
  bool done = false;
  std::size_t bytes = 0;
  client.fetch(world.b->address(), 80, {}, [&](const WebClient::FetchResult& r) {
    done = true;
    bytes = r.bytes;
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.elapsed, 0);
  });
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(bytes, 25'000u);
  EXPECT_EQ(server.requestsServed(), 1u);
}

TEST(Web, ConcurrentFetches) {
  Pair world;
  WebServer server(*world.b, 80, 10'000);
  WebClient client(*world.a);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    client.fetch(world.b->address(), 80, {},
                 [&](const WebClient::FetchResult& r) {
                   if (r.ok && r.bytes == 10'000) ++done;
                 });
  }
  world.queue.runUntil(world.queue.now() + 60 * kSecond);
  EXPECT_EQ(done, 5);
  EXPECT_EQ(server.requestsServed(), 5u);
}

TEST(CrossTraffic, LongRunRateApproximatesMean) {
  Pair world(1e9);
  std::uint64_t received_bytes = 0;
  world.b->openUdp(9).setReceiveHandler(
      [&](packet::Packet p) { received_bytes += p.payload_bytes; });
  CrossTrafficSource::Options options;
  options.mean_rate_bps = 20e6;
  CrossTrafficSource source(*world.a, world.b->address(), options);
  source.start();
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  source.stop();
  const double mbps = static_cast<double>(received_bytes) * 8 / 30.0 / 1e6;
  EXPECT_NEAR(mbps, 20.0, 8.0);  // bursty: wide tolerance
  EXPECT_GT(source.packetsSent(), 0u);
}

TEST(CrossTraffic, IsBursty) {
  // Per-100ms byte counts should swing far more than a CBR stream's.
  Pair world(1e9);
  std::vector<double> buckets;
  std::uint64_t bucket_bytes = 0;
  world.b->openUdp(9).setReceiveHandler(
      [&](packet::Packet p) { bucket_bytes += p.payload_bytes; });
  CrossTrafficSource::Options options;
  options.mean_rate_bps = 20e6;
  options.burstiness = 5.0;
  CrossTrafficSource source(*world.a, world.b->address(), options);
  source.start();
  for (int i = 0; i < 100; ++i) {
    world.queue.runUntil(world.queue.now() + 100 * kMillisecond);
    buckets.push_back(static_cast<double>(bucket_bytes));
    bucket_bytes = 0;
  }
  sim::SampleStats stats;
  for (double b : buckets) stats.add(b);
  ASSERT_GT(stats.mean(), 0.0);
  // Coefficient of variation well above a CBR stream's (~0).
  EXPECT_GT(stats.stddev() / stats.mean(), 0.5);
}

TEST(Tcpdump, CapturesAndGreps) {
  Pair world;
  Tcpdump dump(*world.b);
  world.b->openUdp(7777).setReceiveHandler([](packet::Packet) {});
  world.a->openUdp(1).sendTo(world.b->address(), 7777, 64);
  packet::PacketMeta meta;
  meta.app_send_time = world.queue.now();
  world.a->sendIcmpEcho(world.b->address(), 5, 1, 56, meta);
  world.queue.run();
  EXPECT_GE(dump.captured(), 3u);  // udp in, icmp in, icmp reply out
  EXPECT_FALSE(dump.grep("udp").empty());
  EXPECT_FALSE(dump.grep("icmp").empty());
  EXPECT_TRUE(dump.grep("tcp").empty());
  const auto udp_entries = dump.grep("udp 1>7777");
  ASSERT_EQ(udp_entries.size(), 1u);
  EXPECT_FALSE(udp_entries[0].tx);
}

TEST(Ron, ProbesKeepLossNearZeroOnHealthyMesh) {
  // Triangle a-b, a-c, c-b.
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  auto& na = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& nb = net.addNode("b", IpAddress(1, 0, 0, 2));
  auto& nc = net.addNode("c", IpAddress(1, 0, 0, 3));
  net.addLink(na, nb);
  net.addLink(na, nc);
  net.addLink(nc, nb);
  tcpip::StackManager stacks(net);
  RonNode ra(stacks.ensure(na), na.address());
  RonNode rb(stacks.ensure(nb), nb.address());
  RonNode rc(stacks.ensure(nc), nc.address());
  for (RonNode* n : {&ra, &rb, &rc}) {
    n->addPeer(na.address());
    n->addPeer(nb.address());
    n->addPeer(nc.address());
    n->start();
  }
  queue.runUntil(queue.now() + 10 * kSecond);
  EXPECT_LT(ra.lossTo(nb.address()), 0.05);
  EXPECT_LT(ra.lossTo(nc.address()), 0.05);
  EXPECT_TRUE(ra.currentDetour(nb.address()).isZero());
  EXPECT_GT(ra.stats().probes_answered, 8u);
  // Data goes direct and arrives.
  ra.sendData(nb.address(), 100);
  queue.runUntil(queue.now() + kSecond);
  EXPECT_EQ(ra.stats().data_sent_direct, 1u);
  EXPECT_EQ(rb.stats().data_received, 1u);
}

TEST(Ron, DetoursAroundABlackholedDirectPath) {
  // Same triangle; the direct a-b fiber dies, and (expose mode) the
  // underlay keeps routing into it.  RON's probes notice and data takes
  // the one-hop detour through c — the Section 1 scenario, now with an
  // injectable failure.
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  auto& na = net.addNode("a", IpAddress(1, 0, 0, 1));
  auto& nb = net.addNode("b", IpAddress(1, 0, 0, 2));
  auto& nc = net.addNode("c", IpAddress(1, 0, 0, 3));
  phys::PhysLink& direct = net.addLink(na, nb);
  net.addLink(na, nc);
  net.addLink(nc, nb);
  tcpip::StackManager stacks(net);
  RonNode ra(stacks.ensure(na), na.address());
  RonNode rb(stacks.ensure(nb), nb.address());
  RonNode rc(stacks.ensure(nc), nc.address());
  for (RonNode* n : {&ra, &rb, &rc}) {
    n->addPeer(na.address());
    n->addPeer(nb.address());
    n->addPeer(nc.address());
    n->start();
  }
  queue.runUntil(queue.now() + 5 * kSecond);
  ASSERT_TRUE(ra.currentDetour(nb.address()).isZero());

  direct.setUp(false);
  queue.runUntil(queue.now() + 10 * kSecond);
  // Probes over the dead path are all lost; the estimate saturates.
  EXPECT_GT(ra.lossTo(nb.address()), 0.8);
  EXPECT_EQ(ra.currentDetour(nb.address()), nc.address());

  const auto before = rb.stats().data_received;
  for (int i = 0; i < 5; ++i) ra.sendData(nb.address(), 100);
  queue.runUntil(queue.now() + kSecond);
  EXPECT_EQ(ra.stats().data_sent_detour, 5u);
  EXPECT_EQ(rc.stats().data_forwarded, 5u);
  EXPECT_EQ(rb.stats().data_received - before, 5u);

  // Repair: probes recover, traffic returns to the direct path.
  direct.setUp(true);
  queue.runUntil(queue.now() + 15 * kSecond);
  EXPECT_LT(ra.lossTo(nb.address()), 0.2);
  EXPECT_TRUE(ra.currentDetour(nb.address()).isZero());
}

struct Chain3 {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  tcpip::StackManager stacks{net};
  tcpip::HostStack *a, *b, *c;

  Chain3() {
    auto& na = net.addNode("a", IpAddress(1, 0, 0, 1));
    auto& nb = net.addNode("b", IpAddress(1, 0, 0, 2));
    auto& nc = net.addNode("c", IpAddress(1, 0, 0, 3));
    net.addLink(na, nb);
    net.addLink(nb, nc);
    a = &stacks.ensure(na);
    b = &stacks.ensure(nb);
    c = &stacks.ensure(nc);
  }
};

TEST(Traceroute, RevealsUnderlayPath) {
  Chain3 world;
  Traceroute::Options options;
  options.max_hops = 8;
  Traceroute trace(*world.a, world.c->address(), options);
  bool done = false;
  trace.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(trace.reachedDestination());
  ASSERT_EQ(trace.hops().size(), 2u);
  ASSERT_TRUE(trace.hops()[0].router.has_value());
  EXPECT_EQ(*trace.hops()[0].router, world.b->address());  // time exceeded
  ASSERT_TRUE(trace.hops()[1].router.has_value());
  EXPECT_EQ(*trace.hops()[1].router, world.c->address());  // port unreachable
  EXPECT_GT(trace.hops()[0].rtt, 0);
  EXPECT_LT(trace.hops()[0].rtt, trace.hops()[1].rtt + sim::kMillisecond);
}

TEST(Traceroute, TimesOutAcrossDeadLink) {
  Chain3 world;
  world.net.linkBetween("b", "c")->setUp(false);
  Traceroute::Options options;
  options.max_hops = 3;
  options.probe_timeout = 200 * kMillisecond;
  Traceroute trace(*world.a, world.c->address(), options);
  bool done = false;
  trace.start([&] { done = true; });
  world.queue.runUntil(world.queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(trace.reachedDestination());
  ASSERT_EQ(trace.hops().size(), 3u);
  EXPECT_TRUE(trace.hops()[0].router.has_value());   // b still answers
  EXPECT_FALSE(trace.hops()[1].router.has_value());  // * * *
  EXPECT_FALSE(trace.hops()[2].router.has_value());
}

TEST(Tcpdump, RingBufferBounded) {
  Pair world;
  Tcpdump dump(*world.b, 10);
  world.b->openUdp(7777).setReceiveHandler([](packet::Packet) {});
  auto& sender = world.a->openUdp(1);
  for (int i = 0; i < 50; ++i) sender.sendTo(world.b->address(), 7777, 8);
  world.queue.run();
  EXPECT_EQ(dump.entries().size(), 10u);
  EXPECT_EQ(dump.captured(), 50u);
}

}  // namespace
}  // namespace vini::app
