// OSPF tests in isolation (synthetic point-to-point interfaces, no
// overlay): adjacency FSM, LSA flooding and acknowledgment, SPF routing
// with metrics, failure detection through the dead interval, and
// recovery.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <set>

#include "xorp/ospf.h"
#include "xorp/rib.h"

namespace vini::xorp {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kMillisecond;
using sim::kSecond;

/// A synthetic point-to-point interface pair with configurable one-way
/// delay, loss, and up/down state.
class TestVif final : public Vif {
 public:
  TestVif(sim::EventQueue& queue, std::string name, IpAddress addr,
          IpAddress peer, Prefix subnet)
      : queue_(queue), name_(std::move(name)), addr_(addr), peer_addr_(peer),
        subnet_(subnet) {}

  const std::string& name() const override { return name_; }
  IpAddress address() const override { return addr_; }
  IpAddress peerAddress() const override { return peer_addr_; }
  Prefix subnet() const override { return subnet_; }
  bool isUp() const override { return up_; }

  void send(packet::Packet p) override {
    if (!up_ || !peer_ || !peer_->up_) return;  // dead link eats packets
    ++sent_;
    TestVif* peer = peer_;
    queue_.scheduleAfter(delay_, [peer, p = std::move(p)]() mutable {
      if (peer->up_ && peer->deliver_) peer->deliver_(*peer, std::move(p));
    });
  }

  void setUp(bool up) { up_ = up; }
  void setDelay(sim::Duration delay) { delay_ = delay; }
  void setDeliver(std::function<void(Vif&, packet::Packet)> fn) {
    deliver_ = std::move(fn);
  }
  std::uint64_t packetsSent() const { return sent_; }

  TestVif* peer_ = nullptr;

 private:
  sim::EventQueue& queue_;
  std::string name_;
  IpAddress addr_;
  IpAddress peer_addr_;
  Prefix subnet_;
  bool up_ = true;
  sim::Duration delay_ = kMillisecond;
  std::function<void(Vif&, packet::Packet)> deliver_;
  std::uint64_t sent_ = 0;
};

/// N routers with synthetic links; hello 5 s / dead 10 s by default
/// (the Section 5.2 configuration).
struct Harness {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Rib>> ribs;
  std::vector<std::unique_ptr<OspfProcess>> routers;
  std::vector<std::unique_ptr<TestVif>> vifs;
  int next_subnet = 0;

  explicit Harness(int n, sim::Duration hello = 5 * kSecond,
                   sim::Duration dead = 10 * kSecond) {
    for (int i = 0; i < n; ++i) {
      ribs.push_back(std::make_unique<Rib>());
      OspfConfig config;
      config.router_id = static_cast<RouterId>(i + 1);
      config.hello_interval = hello;
      config.dead_interval = dead;
      routers.push_back(std::make_unique<OspfProcess>(
          queue, *ribs.back(), config, nullptr, 100 + i));
      // Every router advertises a loopback-style stub.
      routers.back()->addStubPrefix(
          Prefix(IpAddress(10, 0, static_cast<std::uint8_t>(i + 1), 1), 32), 0);
    }
  }

  /// Connect routers i and j with the given OSPF cost; returns the pair.
  std::pair<TestVif*, TestVif*> connect(int i, int j, std::uint32_t cost = 1) {
    const int k = next_subnet++;
    const Prefix subnet(IpAddress(10, 200, static_cast<std::uint8_t>(k), 0), 30);
    auto a = std::make_unique<TestVif>(
        queue, "vif" + std::to_string(i) + std::to_string(j), subnet.hostAt(1),
        subnet.hostAt(2), subnet);
    auto b = std::make_unique<TestVif>(
        queue, "vif" + std::to_string(j) + std::to_string(i), subnet.hostAt(2),
        subnet.hostAt(1), subnet);
    a->peer_ = b.get();
    b->peer_ = a.get();
    OspfProcess* ri = routers[static_cast<std::size_t>(i)].get();
    OspfProcess* rj = routers[static_cast<std::size_t>(j)].get();
    a->setDeliver([ri](Vif& vif, packet::Packet p) { ri->receive(vif, p); });
    b->setDeliver([rj](Vif& vif, packet::Packet p) { rj->receive(vif, p); });
    ri->addInterface(*a, cost);
    rj->addInterface(*b, cost);
    TestVif* pa = a.get();
    TestVif* pb = b.get();
    vifs.push_back(std::move(a));
    vifs.push_back(std::move(b));
    return {pa, pb};
  }

  void startAll() {
    for (auto& r : routers) r->start();
  }

  std::optional<RibRoute> routeOf(int i, const std::string& prefix) {
    return ribs[static_cast<std::size_t>(i)]->lookup(
        Prefix::mustParse(prefix).address());
  }
};

TEST(Ospf, TwoRoutersBecomeAdjacent) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(20 * kSecond);
  EXPECT_EQ(h.routers[0]->neighborState(*a), NeighborState::kFull);
  EXPECT_EQ(h.routers[1]->neighborState(*b), NeighborState::kFull);
  EXPECT_EQ(h.routers[0]->neighborId(*a), 2u);
  EXPECT_EQ(h.routers[1]->neighborId(*b), 1u);
  EXPECT_EQ(h.routers[0]->lsdbSize(), 2u);
}

TEST(Ospf, StubPrefixesReachTheOtherEnd) {
  Harness h(2);
  auto pair = h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(20 * kSecond);
  auto route = h.routeOf(0, "10.0.2.1/32");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, pair.first->peerAddress());
  EXPECT_EQ(route->origin, RouteOrigin::kOspf);
}

TEST(Ospf, ChainFloodsLsasEndToEnd) {
  Harness h(4);
  h.connect(0, 1);
  h.connect(1, 2);
  h.connect(2, 3);
  h.startAll();
  h.queue.runUntil(40 * kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.routers[static_cast<std::size_t>(i)]->lsdbSize(), 4u)
        << "router " << i;
  }
  // Router 0 can reach router 3's stub, three hops away.
  EXPECT_TRUE(h.routeOf(0, "10.0.4.1/32").has_value());
}

TEST(Ospf, PicksLowerCostPath) {
  // 0-1 direct cost 10; 0-2-1 with costs 2+3 = 5: the detour wins.
  Harness h(3);
  h.connect(0, 1, 10);
  auto via2 = h.connect(0, 2, 2);
  h.connect(2, 1, 3);
  h.startAll();
  h.queue.runUntil(40 * kSecond);
  auto route = h.routeOf(0, "10.0.2.1/32");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, via2.first->peerAddress());
  EXPECT_EQ(route->metric, 5u);
}

TEST(Ospf, DeadIntervalDetectsSilentNeighbor) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(20 * kSecond);
  ASSERT_EQ(h.routers[0]->neighborState(*a), NeighborState::kFull);

  // Silence the link; detection within [dead, dead + hello].
  a->setUp(false);
  b->setUp(false);
  h.queue.runUntil(h.queue.now() + 16 * kSecond);
  EXPECT_EQ(h.routers[0]->neighborState(*a), NeighborState::kDown);
  EXPECT_GE(h.routers[0]->stats().neighbors_lost, 1u);
  // Routes through the dead adjacency are withdrawn.
  EXPECT_FALSE(h.routeOf(0, "10.0.2.1/32").has_value());
}

TEST(Ospf, ReroutesAroundFailedLinkInTriangle) {
  Harness h(3);
  auto direct = h.connect(0, 1, 1);
  h.connect(0, 2, 5);
  h.connect(2, 1, 5);
  h.startAll();
  h.queue.runUntil(30 * kSecond);
  auto route = h.routeOf(0, "10.0.2.1/32");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 1u);

  direct.first->setUp(false);
  direct.second->setUp(false);
  h.queue.runUntil(h.queue.now() + 20 * kSecond);
  route = h.routeOf(0, "10.0.2.1/32");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 10u);  // around via router 2

  // Restoration falls back to the direct path.
  direct.first->setUp(true);
  direct.second->setUp(true);
  h.queue.runUntil(h.queue.now() + 20 * kSecond);
  route = h.routeOf(0, "10.0.2.1/32");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 1u);
}

TEST(Ospf, DetectionTimeMatchesDeadInterval) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(20 * kSecond);
  const sim::Time fail_at = h.queue.now();
  a->setUp(false);
  b->setUp(false);
  // Poll for the down transition.
  sim::Time detected_at = -1;
  while (h.queue.now() < fail_at + 30 * kSecond) {
    h.queue.runUntil(h.queue.now() + 100 * kMillisecond);
    if (h.routers[0]->neighborState(*a) == NeighborState::kDown) {
      detected_at = h.queue.now();
      break;
    }
  }
  ASSERT_GT(detected_at, 0);
  const double elapsed = sim::toSeconds(detected_at - fail_at);
  // Dead interval 10 s, hellos every 5 s: detection between ~5 and ~10.5 s
  // after the failure (depending on the last hello's phase).
  EXPECT_GE(elapsed, 4.9);
  EXPECT_LE(elapsed, 10.6);
}

TEST(Ospf, SequenceNumbersPreventStaleLsaRegression) {
  Harness h(3);
  h.connect(0, 1);
  h.connect(1, 2);
  h.startAll();
  h.queue.runUntil(30 * kSecond);
  const auto fresh = h.routers[2]->lsdbEntry(1);
  ASSERT_TRUE(fresh.has_value());

  // Replay a stale LSA (lower seq) into router 2 via its interface.
  RouterLsa stale = *fresh;
  stale.seq = 0;
  stale.links.clear();  // claims router 1 has no links
  auto update = std::make_shared<OspfLsUpdate>();
  update->lsas = {stale};
  packet::Packet p;
  p.ip.proto = packet::IpProto::kOspf;
  p.app = update;
  // Find router 2's vif (the second of the pair connecting 1 and 2).
  TestVif* vif_r2 = h.vifs[3].get();
  h.routers[2]->receive(*vif_r2, p);
  h.queue.runUntil(h.queue.now() + kSecond);
  // The fresh copy survives.
  EXPECT_EQ(h.routers[2]->lsdbEntry(1)->seq, fresh->seq);
  EXPECT_FALSE(h.routers[2]->lsdbEntry(1)->links.empty());
}

TEST(Ospf, StopWithdrawsRoutesAndStopsHellos) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  (void)b;
  h.startAll();
  h.queue.runUntil(20 * kSecond);
  ASSERT_TRUE(h.routeOf(0, "10.0.2.1/32").has_value());
  h.routers[0]->stop();
  EXPECT_FALSE(h.routeOf(0, "10.0.2.1/32").has_value());
  const auto sent_before = a->packetsSent();
  h.queue.runUntil(h.queue.now() + 30 * kSecond);
  EXPECT_EQ(a->packetsSent(), sent_before);
}

TEST(Ospf, HellosKeepFlowingInSteadyState) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  (void)b;
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  // ~12 hellos in 60 s at 5 s intervals (plus flooding traffic).
  EXPECT_GE(h.routers[0]->stats().hellos_sent, 10u);
  EXPECT_GE(h.routers[0]->stats().hellos_received, 10u);
  EXPECT_EQ(h.routers[0]->neighborState(*a), NeighborState::kFull);
}

TEST(Ospf, SpfRunsAreDamped) {
  Harness h(4);
  h.connect(0, 1);
  h.connect(1, 2);
  h.connect(2, 3);
  h.connect(3, 0);
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  // Convergence requires only a bounded number of SPF runs, not one per
  // received LSA (the spf_delay hold-down batches them).
  EXPECT_LE(h.routers[0]->stats().spf_runs, 25u);
  EXPECT_GE(h.routers[0]->stats().spf_runs, 2u);
}

TEST(Ospf, EqualCostPathsChooseDeterministically) {
  Harness h(4);
  h.connect(0, 1, 5);
  h.connect(0, 2, 5);
  h.connect(1, 3, 5);
  h.connect(2, 3, 5);
  h.startAll();
  h.queue.runUntil(40 * kSecond);
  auto first = h.routeOf(0, "10.0.4.1/32");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->metric, 10u);
  // Re-running the experiment from scratch picks the same path.
  Harness h2(4);
  h2.connect(0, 1, 5);
  h2.connect(0, 2, 5);
  h2.connect(1, 3, 5);
  h2.connect(2, 3, 5);
  h2.startAll();
  h2.queue.runUntil(40 * kSecond);
  auto second = h2.routeOf(0, "10.0.4.1/32");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->next_hop, second->next_hop);
}

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, RingOfNConvergesFully) {
  const int n = GetParam();
  Harness h(n);
  for (int i = 0; i < n; ++i) h.connect(i, (i + 1) % n);
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(h.routers[static_cast<std::size_t>(i)]->lsdbSize(),
              static_cast<std::size_t>(n));
    EXPECT_EQ(h.routers[static_cast<std::size_t>(i)]->fullNeighborCount(), 2u);
    // Every other router's stub is reachable.
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(h.ribs[static_cast<std::size_t>(i)]
                      ->lookup(IpAddress(10, 0, static_cast<std::uint8_t>(j + 1), 1))
                      .has_value())
          << i << " -> " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, RingSweep, ::testing::Values(3, 5, 8, 11));

TEST(Ospf, WorkIsChargedToAnAttachedCpuProcess) {
  // Section 4.1.2's hazard: the routing daemon is a user-space process
  // competing for CPU.  With a process attached, hellos/LSAs/SPF consume
  // accounted CPU time and adjacency still forms under contention.
  sim::EventQueue queue;
  cpu::SchedulerConfig sched_config;
  sched_config.contention_mean = 4.0;
  sched_config.seed = 31;
  cpu::Scheduler scheduler(queue, sched_config);
  cpu::Process& daemon0 = scheduler.createProcess({});
  cpu::Process& daemon1 = scheduler.createProcess({});

  Rib rib0, rib1;
  OspfConfig config;
  config.router_id = 1;
  config.hello_interval = 5 * kSecond;
  config.dead_interval = 10 * kSecond;
  OspfProcess r0(queue, rib0, config, &daemon0, 100);
  config.router_id = 2;
  OspfProcess r1(queue, rib1, config, &daemon1, 101);
  r0.addStubPrefix(Prefix::mustParse("10.0.1.1/32"));
  r1.addStubPrefix(Prefix::mustParse("10.0.2.1/32"));

  const Prefix subnet(IpAddress(10, 200, 0, 0), 30);
  TestVif a(queue, "a", subnet.hostAt(1), subnet.hostAt(2), subnet);
  TestVif b(queue, "b", subnet.hostAt(2), subnet.hostAt(1), subnet);
  a.peer_ = &b;
  b.peer_ = &a;
  a.setDeliver([&](Vif& vif, packet::Packet p) { r0.receive(vif, p); });
  b.setDeliver([&](Vif& vif, packet::Packet p) { r1.receive(vif, p); });
  r0.addInterface(a, 1);
  r1.addInterface(b, 1);
  r0.start();
  r1.start();
  queue.runUntil(30 * kSecond);

  EXPECT_EQ(r0.neighborState(a), NeighborState::kFull);
  EXPECT_TRUE(rib0.lookup(IpAddress(10, 0, 2, 1)).has_value());
  // The daemons actually burned CPU for their protocol work.
  EXPECT_GT(daemon0.consumedCpu(), 0);
  EXPECT_GT(daemon1.consumedCpu(), 0);
}

// Property: on random connected topologies with random costs, every
// router's converged route metrics equal an independent Dijkstra run
// over the ground-truth graph.
class RandomTopologySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologySweep, ConvergedMetricsMatchReferenceDijkstra) {
  std::mt19937_64 rng(GetParam());
  const int n = 4 + static_cast<int>(rng() % 6);  // 4..9 routers
  Harness h(n);

  // Random spanning tree (guarantees connectivity) plus extra edges.
  struct Edge {
    int a;
    int b;
    std::uint32_t cost;
  };
  std::vector<Edge> edges;
  std::set<std::pair<int, int>> used;
  for (int i = 1; i < n; ++i) {
    const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(i));
    const auto cost = static_cast<std::uint32_t>(1 + rng() % 100);
    edges.push_back({j, i, cost});
    used.insert({j, i});
  }
  const int extra = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    const int b = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (!used.insert({key.first, key.second}).second) continue;
    edges.push_back({a, b, static_cast<std::uint32_t>(1 + rng() % 100)});
  }
  for (const auto& edge : edges) h.connect(edge.a, edge.b, edge.cost);

  h.startAll();
  h.queue.runUntil(90 * kSecond);

  // Reference all-pairs shortest paths (Floyd-Warshall).
  const std::uint32_t inf = 1u << 30;
  std::vector<std::vector<std::uint32_t>> dist(
      static_cast<std::size_t>(n),
      std::vector<std::uint32_t>(static_cast<std::size_t>(n), inf));
  for (int i = 0; i < n; ++i) dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  for (const auto& edge : edges) {
    auto& dab = dist[static_cast<std::size_t>(edge.a)][static_cast<std::size_t>(edge.b)];
    auto& dba = dist[static_cast<std::size_t>(edge.b)][static_cast<std::size_t>(edge.a)];
    dab = std::min(dab, edge.cost);
    dba = std::min(dba, edge.cost);
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const auto via = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                         dist[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        auto& dij = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (via < dij) dij = via;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      auto route = h.ribs[static_cast<std::size_t>(i)]->lookup(
          IpAddress(10, 0, static_cast<std::uint8_t>(j + 1), 1));
      ASSERT_TRUE(route.has_value()) << "seed " << GetParam() << ": " << i
                                     << " cannot reach " << j;
      EXPECT_EQ(route->metric,
                dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
          << "seed " << GetParam() << ": " << i << " -> " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace vini::xorp
