// End-to-end integration: the Section 5.2 Abilene experiment in
// miniature (fail Denver-KansasCity, watch OSPF reroute and RTTs move),
// TCP across the event (Figure 9's anatomy), simultaneous slices, and
// the exposed-vs-masked underlay ablation.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/ping.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using sim::kSecond;
using topo::WorldOptions;

WorldOptions quiescent() {
  WorldOptions options;
  options.contention = 0.0;
  return options;
}

TEST(AbileneFailover, OspfReroutesAndRttsFollowThePaper) {
  auto world = topo::makeAbileneWorld(quiescent());
  ASSERT_TRUE(world->runUntilConverged(120 * kSecond));
  const sim::Time t0 = world->queue.now();

  sim::TimeSeries rtts("rtt_ms");
  app::Pinger::Options popt;
  popt.count = 55;
  popt.flood = false;
  popt.interval = kSecond;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  pinger.on_reply = [&](std::uint64_t, sim::Duration rtt) {
    rtts.add(world->queue.now() - t0, sim::toMillis(rtt));
  };

  world->schedule.at(t0 + 10 * kSecond, "fail", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 34 * kSecond, "restore", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });
  pinger.start();
  world->queue.runUntil(t0 + 60 * kSecond);

  // Phase 1 (before failure): the northern path, ~71-76 ms.
  const auto before = rtts.statsBetween(0, 10 * kSecond);
  ASSERT_GT(before.count(), 5u);
  EXPECT_NEAR(before.mean(), 72.0, 5.0);

  // Phase 2: outage while the dead interval runs (~7 s of losses), then
  // the southern path at ~90 ms.
  const auto southern = rtts.statsBetween(22 * kSecond, 32 * kSecond);
  ASSERT_GT(southern.count(), 5u);
  EXPECT_NEAR(southern.mean(), 91.0, 5.0);
  EXPECT_GT(southern.mean(), before.mean() + 10.0);

  // Phase 3 (well after restore): back on the northern path.
  const auto after = rtts.statsBetween(45 * kSecond, 60 * kSecond);
  ASSERT_GT(after.count(), 5u);
  EXPECT_NEAR(after.mean(), before.mean(), 2.0);

  // The outage lost some probes (the paper's Figure 8 gap).
  EXPECT_LT(pinger.report().received, pinger.report().transmitted);
}

TEST(AbileneFailover, TcpStallsAndRestartsAcrossTheEvent) {
  auto world = topo::makeAbileneWorld(quiescent());
  ASSERT_TRUE(world->runUntilConverged(120 * kSecond));
  const sim::Time t0 = world->queue.now();

  // iperf DC -> Seattle with the default 16 KB window (Figure 9 setup).
  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 16 * 1024;
  app::IperfTcpServer server(world->stack("Seattle"), 5001, tcp);
  sim::TimeSeries arrivals("bytes");
  std::uint64_t total = 0;
  server.setSegmentTrace([&](const packet::Packet& p) {
    total += p.payload_bytes;
    arrivals.add(world->queue.now() - t0, static_cast<double>(total));
  });
  app::IperfTcpClient client(world->stack("Washington"), world->tapOf("Seattle"),
                             5001, 1, tcp, world->tapOf("Washington"));
  client.start(50 * kSecond);

  world->schedule.at(t0 + 10 * kSecond, "fail", [&] {
    world->iias->failLink("Denver", "KansasCity");
  });
  world->schedule.at(t0 + 34 * kSecond, "restore", [&] {
    world->iias->restoreLink("Denver", "KansasCity");
  });
  world->queue.runUntil(t0 + 50 * kSecond);

  // Progress before the failure.
  const auto phase1 = arrivals.statsBetween(2 * kSecond, 10 * kSecond);
  ASSERT_GT(phase1.count(), 50u);
  // Stall during the outage: almost nothing arrives in (12 s, 17 s).
  const auto stall = arrivals.statsBetween(12 * kSecond, 17 * kSecond);
  EXPECT_LT(stall.count(), 10u);
  // Transfer resumes after OSPF finds the southern route (~t=17-20 s)
  // and continues to the end.
  const auto resumed = arrivals.statsBetween(20 * kSecond, 30 * kSecond);
  EXPECT_GT(resumed.count(), 50u);
  // Overall goodput in the right band (window-limited ~2-3 Mb/s minus
  // the ~8 s outage).
  const double mbps = static_cast<double>(total) * 8 / 50.0 / 1e6;
  EXPECT_GT(mbps, 1.0);
  EXPECT_LT(mbps, 4.0);
  // The retransmission machinery was exercised.
  EXPECT_GT(client.retransmits(), 0u);
}

TEST(SimultaneousSlices, TwoExperimentsRunIndependentTopologies) {
  // One substrate, two slices: a full Abilene mirror and a 3-node
  // triangle, running simultaneously (Section 3.4).
  auto world = topo::makeAbileneSubstrate(quiescent());
  core::TopologyEmbedder embedder(*world->vini);

  overlay::IiasConfig config;
  config.costs = topo::clickCosts();
  config.ospf.hello_interval = 5 * kSecond;
  config.ospf.dead_interval = 10 * kSecond;
  config.socket_buffer = topo::kIiasSocketBuffer;

  auto mirror = embedder.embed(topo::abileneMirrorSpec("mirror"));
  overlay::IiasNetwork iias1(std::move(mirror), world->stacks, config);

  core::TopologySpec triangle;
  triangle.name = "triangle";
  triangle.nodes = {{"x", "Seattle"}, {"y", "Houston"}, {"z", "Washington"}};
  triangle.links = {{"x", "y", 1}, {"y", "z", 1}, {"x", "z", 1}};
  auto tri = embedder.embed(triangle);
  overlay::IiasNetwork iias2(std::move(tri), world->stacks, config);

  iias1.start();
  iias2.start();
  for (int i = 0; i < 90 && !(iias1.allAdjacent() && iias2.allAdjacent()); ++i) {
    world->queue.runUntil(world->queue.now() + kSecond);
  }
  ASSERT_TRUE(iias1.allAdjacent());
  ASSERT_TRUE(iias2.allAdjacent());

  // Distinct address spaces and ports.
  EXPECT_NE(iias1.slice().overlayPrefix(), iias2.slice().overlayPrefix());
  EXPECT_NE(iias1.slice().tunnelPort(), iias2.slice().tunnelPort());

  // Failing a virtual link in slice 2 does not disturb slice 1.
  iias2.failLink("x", "z");
  world->queue.runUntil(world->queue.now() + 20 * kSecond);
  EXPECT_TRUE(iias1.allAdjacent());
  EXPECT_FALSE(iias2.allAdjacent());

  // Slice 1 still forwards end to end.
  app::Pinger::Options popt;
  popt.count = 10;
  popt.source = iias1.slice().nodeByName("Washington")->tapAddress();
  app::Pinger pinger(world->stack("Washington"),
                     iias1.slice().nodeByName("Seattle")->tapAddress(), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 10u);

  // And slice 2's triangle rerouted around its failed edge.
  app::Pinger::Options popt2;
  popt2.count = 10;
  popt2.source = iias2.slice().nodeByName("x")->tapAddress();
  app::Pinger pinger2(world->stack("Seattle"),
                      iias2.slice().nodeByName("z")->tapAddress(), popt2);
  done = false;
  pinger2.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger2.report().received, 10u);
}

TEST(FateSharing, PhysicalFailureTakesDownOspfAdjacencyAndUpcalls) {
  auto world = topo::makeAbileneWorld(quiescent());
  ASSERT_TRUE(world->runUntilConverged(120 * kSecond));

  std::vector<core::UpcallEvent> events;
  world->vini->upcalls().subscribe(world->iias->slice().id(),
                                   [&](const core::UpcallEvent& e) {
                                     events.push_back(e);
                                   });

  phys::PhysLink* dk = world->net.linkBetween("Denver", "KansasCity");
  ASSERT_NE(dk, nullptr);
  dk->setUp(false);
  world->queue.runUntil(world->queue.now() + 15 * kSecond);

  // The slice was notified and its virtual link shares fate.
  ASSERT_FALSE(events.empty());
  EXPECT_FALSE(world->iias->slice().linkBetween("Denver", "KansasCity")->isUp());
  // The routing system reconverged: Washington reaches Seattle southern.
  auto* wash = world->router("Washington");
  auto route = wash->xorp().rib().lookup(world->tapOf("Seattle"));
  ASSERT_TRUE(route.has_value());
  EXPECT_GT(route->metric, 3485u);
}

TEST(FateSharing, MaskedUnderlaySilentlyReroutesInsteadOfFailing) {
  // The plain-overlay ablation: underlay masks failures, VINI exposure
  // off.  The virtual link stays "up" and the overlay's OSPF never
  // notices; the underlay reroutes beneath it.
  WorldOptions options = quiescent();
  options.mask_underlay_failures = true;
  options.expose_underlay_failures = false;
  auto world = topo::makeAbileneWorld(options);
  ASSERT_TRUE(world->runUntilConverged(120 * kSecond));

  phys::PhysLink* dk = world->net.linkBetween("Denver", "KansasCity");
  dk->setUp(false);
  world->queue.runUntil(world->queue.now() + 20 * kSecond);

  // No OSPF reaction at all: adjacency intact, route metric unchanged.
  EXPECT_TRUE(world->iias->allAdjacent());
  EXPECT_TRUE(world->iias->slice().linkBetween("Denver", "KansasCity")->isUp());
  auto route =
      world->router("Washington")->xorp().rib().lookup(world->tapOf("Seattle"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 3485u);

  // But the experimenter's RTT silently changed — the artifact the paper
  // warns about (the tunnel Denver-KC now detours through the underlay).
  app::Pinger::Options popt;
  popt.count = 20;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(pinger.report().received, 15u);
  EXPECT_GT(pinger.report().rtt_ms.mean(), 75.0);  // silently inflated
}

}  // namespace
}  // namespace vini
