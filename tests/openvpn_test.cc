// The life of a packet (Figure 2): an opted-in client reaches an
// external web server through the overlay — OpenVPN ingress, IIAS
// forwarding, NAPT egress, and the return path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/ping.h"
#include "app/web.h"
#include "overlay/openvpn.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

/// DETER chain with an end-host client hanging off Src and a web server
/// ("CNN") hanging off Sink.
struct Fig2World {
  std::unique_ptr<topo::World> world;
  tcpip::HostStack* client_stack = nullptr;
  tcpip::HostStack* cnn_stack = nullptr;
  std::unique_ptr<overlay::OpenVpnServer> vpn_server;
  std::unique_ptr<overlay::OpenVpnClient> vpn_client;

  Fig2World() {
    world = topo::makeDeterWorld();
    auto& net = world->net;
    auto& client_node = net.addNode("Client", IpAddress(128, 112, 93, 81));
    auto& cnn_node = net.addNode("CNN", IpAddress(64, 236, 16, 20));
    net.addLink(client_node, *net.nodeByName("Src"));
    net.addLink(*net.nodeByName("Sink"), cnn_node);
    client_stack = &world->stacks.ensure(client_node);
    cnn_stack = &world->stacks.ensure(cnn_node);

    // Roles: Src is the ingress (OpenVPN server), Sink is the egress.
    world->router("Sink")->setExternalEgress();
    vpn_server = std::make_unique<overlay::OpenVpnServer>(
        *world->router("Src"), Prefix::mustParse("10.1.250.0/24"));

    EXPECT_TRUE(world->runUntilConverged(60 * kSecond));

    vpn_client = std::make_unique<overlay::OpenVpnClient>(*client_stack, "cl1");
    EXPECT_TRUE(vpn_client->connect(*vpn_server));
  }
};

TEST(LifeOfAPacket, ClientFetchesExternalPageThroughOverlay) {
  Fig2World fig2;
  app::WebServer cnn(*fig2.cnn_stack, 80, 50'000);
  app::WebClient firefox(*fig2.client_stack);

  bool done = false;
  app::WebClient::FetchResult result;
  firefox.fetch(fig2.cnn_stack->address(), 80, fig2.vpn_client->overlayAddress(),
                [&](const app::WebClient::FetchResult& r) {
                  done = true;
                  result = r;
                });
  fig2.world->queue.runUntil(fig2.world->queue.now() + 120 * kSecond);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, 50'000u);
  EXPECT_EQ(cnn.requestsServed(), 1u);

  // The overlay actually carried the traffic.
  EXPECT_GT(fig2.vpn_server->ingressPackets(), 0u);
  EXPECT_GT(fig2.vpn_server->egressPackets(), 0u);
  EXPECT_GT(fig2.world->router("Sink")->napt().translatedOut(), 0u);
  EXPECT_GT(fig2.world->router("Sink")->napt().translatedBack(), 0u);
}

TEST(LifeOfAPacket, CnnSeesTheEgressAddressNotTheClient) {
  Fig2World fig2;
  // Observe the source address arriving at CNN's kernel.
  IpAddress seen_src;
  fig2.cnn_stack->setRxTrace([&](const packet::Packet& p) {
    if (p.isTcp()) seen_src = p.ip.src;
  });
  app::WebServer cnn(*fig2.cnn_stack, 80, 1000);
  app::WebClient firefox(*fig2.client_stack);
  bool done = false;
  firefox.fetch(fig2.cnn_stack->address(), 80, fig2.vpn_client->overlayAddress(),
                [&](const app::WebClient::FetchResult&) { done = true; });
  fig2.world->queue.runUntil(fig2.world->queue.now() + 60 * kSecond);
  ASSERT_TRUE(done);
  // NAPT rewrote the private 10.x source to the egress node's public
  // address, so return traffic flows back through VINI (Section 3.3).
  EXPECT_EQ(seen_src, fig2.world->stack("Sink").address());
}

TEST(LifeOfAPacket, PingThroughOverlayToExternalHost) {
  Fig2World fig2;
  app::Pinger::Options options;
  options.count = 20;
  options.source = fig2.vpn_client->overlayAddress();
  app::Pinger pinger(*fig2.client_stack, fig2.cnn_stack->address(), options);
  bool done = false;
  pinger.start([&] { done = true; });
  fig2.world->queue.runUntil(fig2.world->queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 20u);
}

TEST(LifeOfAPacket, OverlayToOverlayClientTraffic) {
  // Two opted-in clients can reach each other's overlay addresses.
  Fig2World fig2;
  auto& net = fig2.world->net;
  auto& client2_node = net.addNode("Client2", IpAddress(128, 112, 93, 82));
  net.addLink(client2_node, *net.nodeByName("Src"));
  auto& client2_stack = fig2.world->stacks.ensure(client2_node);
  overlay::OpenVpnClient client2(client2_stack, "cl2");
  ASSERT_TRUE(client2.connect(*fig2.vpn_server));
  EXPECT_NE(client2.overlayAddress(), fig2.vpn_client->overlayAddress());

  app::Pinger::Options options;
  options.count = 10;
  options.source = fig2.vpn_client->overlayAddress();
  app::Pinger pinger(*fig2.client_stack, client2.overlayAddress(), options);
  bool done = false;
  pinger.start([&] { done = true; });
  fig2.world->queue.runUntil(fig2.world->queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 10u);
}

TEST(OpenVpn, ReconnectKeepsLease) {
  Fig2World fig2;
  const IpAddress first = fig2.vpn_client->overlayAddress();
  overlay::OpenVpnClient again(*fig2.client_stack, "cl1b");
  ASSERT_TRUE(again.connect(*fig2.vpn_server));
  EXPECT_EQ(again.overlayAddress(), first);  // same source host: same lease
  EXPECT_EQ(fig2.vpn_server->sessionCount(), 1u);
}

TEST(OpenVpn, ReconnectBackoffIsDeterministicPerClient) {
  // The retry jitter draws from a per-client stream seeded from the
  // substrate seed, the config seed, and the client's name: same-seed
  // runs replay byte-identically, while co-located clients never share
  // a backoff schedule.
  auto attempts_trace = [](const std::string& client_name) {
    Fig2World fig2;
    auto& net = fig2.world->net;
    // Strand a fresh client: its access link is down, so every
    // handshake times out and the backoff ladder climbs.
    auto& lone_node = net.addNode("Lone", IpAddress(128, 112, 93, 99));
    phys::PhysLink& access = net.addLink(lone_node, *net.nodeByName("Src"));
    auto& lone_stack = fig2.world->stacks.ensure(lone_node);
    net.setLinkState(access, false);
    overlay::OpenVpnClient lone(lone_stack, client_name);
    lone.connectAsync(*fig2.vpn_server);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 40; ++i) {
      fig2.world->queue.runUntil(fig2.world->queue.now() + 10 * kSecond);
      trace.push_back(lone.handshakeAttempts());
    }
    EXPECT_FALSE(lone.connected());
    EXPECT_GE(trace.back(), 5u);
    return trace;
  };
  const auto first = attempts_trace("lone1");
  const auto replay = attempts_trace("lone1");
  EXPECT_EQ(first, replay);  // same seed + name: identical schedule
  const auto other = attempts_trace("lone2");
  EXPECT_NE(first, other);  // different name: decorrelated jitter
}

TEST(OpenVpn, PingToOverlayRouterTapFromClient) {
  // An opted-in client can reach the virtual routers' own addresses.
  Fig2World fig2;
  app::Pinger::Options options;
  options.count = 5;
  options.source = fig2.vpn_client->overlayAddress();
  app::Pinger pinger(*fig2.client_stack, fig2.world->tapOf("Sink"), options);
  bool done = false;
  pinger.start([&] { done = true; });
  fig2.world->queue.runUntil(fig2.world->queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 5u);
}

}  // namespace
}  // namespace vini
