// Tests for the V2xx source analyzer (check/srclint.h): one synthetic
// fixture per rule (positive and negative), the baseline round trip, and
// the meta-test that the repository itself scans clean modulo the
// checked-in baseline.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/diagnostic.h"
#include "check/srclint.h"

namespace vini::check {
namespace {

const SrcFinding* findCode(const std::vector<SrcFinding>& findings,
                           const std::string& code) {
  for (const SrcFinding& f : findings) {
    if (f.code == code) return &f;
  }
  return nullptr;
}

TEST(SrclintV200, FlagsUnorderedIterationFeedingOutput) {
  const auto findings = lintSource("x.cc",
                                   "void f(std::ostream& os) {\n"
                                   "  std::unordered_map<int, int> m;\n"
                                   "  for (const auto& kv : m) { os << kv.first; }\n"
                                   "}\n");
  const SrcFinding* f = findCode(findings, "V200");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->line, 3);
}

TEST(SrclintV200, OrderInsensitiveBodyIsOnlyAWarning) {
  const auto findings = lintSource("x.cc",
                                   "int f() {\n"
                                   "  std::unordered_set<int> s;\n"
                                   "  int sum = 0;\n"
                                   "  for (int v : s) { sum += v; }\n"
                                   "  return sum;\n"
                                   "}\n");
  const SrcFinding* f = findCode(findings, "V200");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(SrclintV200, ResolvesMembersViaCompanionHeader) {
  const std::string header =
      "class Stack {\n"
      "  std::unordered_map<int, Conn> connections_;\n"
      "};\n";
  const auto findings = lintSource(
      "x.cc",
      "void Stack::dump(std::ostream& os) {\n"
      "  for (const auto& kv : connections_) { os << kv.first; }\n"
      "}\n",
      header);
  EXPECT_NE(findCode(findings, "V200"), nullptr);
}

TEST(SrclintV200, OrderedMapIterationIsClean) {
  const auto findings = lintSource("x.cc",
                                   "void f(std::ostream& os) {\n"
                                   "  std::map<int, int> m;\n"
                                   "  for (const auto& kv : m) { os << kv.first; }\n"
                                   "}\n");
  EXPECT_EQ(findCode(findings, "V200"), nullptr);
}

TEST(SrclintV201, FlagsPointerKeyedContainers) {
  const auto findings =
      lintSource("x.cc", "std::set<Router*> visited;\n");
  EXPECT_NE(findCode(findings, "V201"), nullptr);
  const auto clean =
      lintSource("x.cc", "std::map<std::string, Router*> by_name;\n");
  EXPECT_EQ(findCode(clean, "V201"), nullptr);
}

TEST(SrclintV202, FlagsWallClockReads) {
  const auto findings = lintSource(
      "x.cc", "void f() { auto t = std::chrono::steady_clock::now(); }\n");
  EXPECT_NE(findCode(findings, "V202"), nullptr);
  const auto bare =
      lintSource("x.cc", "long f() { return std::time(nullptr); }\n");
  EXPECT_NE(findCode(bare, "V202"), nullptr);
  // A member named clock (ctx.clock->now()) and a variable named time
  // are not wall-clock reads.
  const auto clean = lintSource(
      "x.cc",
      "void f(Ctx& ctx) { auto t = ctx.clock->now(); double time = 1; }\n");
  EXPECT_EQ(findCode(clean, "V202"), nullptr);
}

TEST(SrclintV203, FlagsGlobalAndUnseededRandomness) {
  EXPECT_NE(findCode(lintSource("x.cc", "int f() { return std::rand(); }\n"),
                     "V203"),
            nullptr);
  EXPECT_NE(findCode(lintSource("x.cc", "std::uint64_t f() {\n"
                                        "  std::random_device rd;\n"
                                        "  return rd();\n"
                                        "}\n"),
                     "V203"),
            nullptr);
  EXPECT_NE(
      findCode(lintSource(
                   "x.cc", "int f() { std::mt19937_64 rng; return (int)rng(); }\n"),
               "V203"),
      nullptr);
}

TEST(SrclintV203, SeededEnginesAndClassMembersAreClean) {
  EXPECT_EQ(findCode(lintSource("x.cc",
                                "int f(std::uint64_t seed) {\n"
                                "  std::mt19937_64 rng(seed);\n"
                                "  return (int)rng();\n"
                                "}\n"),
                     "V203"),
            nullptr);
  // A class-member engine is seeded in the constructor init list.
  EXPECT_EQ(findCode(lintSource("x.cc",
                                "class Random {\n"
                                " public:\n"
                                "  explicit Random(std::uint64_t seed) : engine_(seed) {}\n"
                                " private:\n"
                                "  std::mt19937_64 engine_;\n"
                                "};\n"),
                     "V203"),
            nullptr);
}

TEST(SrclintV204, FlagsMutableStaticState) {
  const auto local = lintSource("x.cc",
                                "int next() {\n"
                                "  static int counter = 0;\n"
                                "  return ++counter;\n"
                                "}\n");
  const SrcFinding* f = findCode(local, "V204");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 2);
  const auto global = lintSource("x.cc",
                                 "namespace app {\n"
                                 "Widget* g_current = nullptr;\n"
                                 "}\n");
  EXPECT_NE(findCode(global, "V204"), nullptr);
}

TEST(SrclintV204, ConstStaticsAndFunctionDeclsAreClean) {
  const auto findings = lintSource(
      "x.cc",
      "constexpr int kTableSize = 64;\n"
      "const char* name() {\n"
      "  static const std::string kName = \"x\";\n"
      "  return kName.c_str();\n"
      "}\n"
      "class Log {\n"
      " public:\n"
      "  static Log& instance();\n"
      "};\n"
      "void reg() {\n"
      "  static const bool registered = [] { return true; }();\n"
      "  (void)registered;\n"
      "}\n");
  EXPECT_EQ(findCode(findings, "V204"), nullptr);
}

TEST(SrclintV205, FlagsUseCountBranching) {
  EXPECT_NE(findCode(lintSource("x.cc",
                                "void f(std::shared_ptr<int> p) {\n"
                                "  if (p.use_count() == 1) { p.reset(); }\n"
                                "}\n"),
                     "V205"),
            nullptr);
  EXPECT_EQ(findCode(lintSource(
                         "x.cc", "void f(std::shared_ptr<int> p) { p.reset(); }\n"),
                     "V205"),
            nullptr);
}

TEST(SrclintV206, FlagsVolatileButNotAtomic) {
  EXPECT_NE(findCode(lintSource("x.cc", "struct S { volatile bool done_; };\n"),
                     "V206"),
            nullptr);
  EXPECT_EQ(
      findCode(lintSource("x.cc", "struct S { std::atomic<bool> done_; };\n"),
               "V206"),
      nullptr);
}

TEST(SrclintV207, FlagsCrossShardMemberWithoutAnnotation) {
  const auto findings = lintSource("x.h",
                                   "class T {\n"
                                   "  // cross-shard: read by samplers\n"
                                   "  int count_ = 0;\n"
                                   "};\n");
  const SrcFinding* f = findCode(findings, "V207");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 2);
  const auto clean = lintSource("x.h",
                                "class T {\n"
                                "  // cross-shard: read by samplers\n"
                                "  int count_ VINI_GUARDED_BY(shard_) = 0;\n"
                                "};\n");
  EXPECT_EQ(findCode(clean, "V207"), nullptr);
}

TEST(SrclintFormat, FindingFormatsLikeADiagnostic) {
  SrcFinding f{Severity::kError, "V204", "src/app/ping.cc", 7, "boom"};
  EXPECT_EQ(formatFinding(f), "error V204 [src/app/ping.cc:7]: boom");
}

// -- Baseline ---------------------------------------------------------------

TEST(SrclintBaseline, ParsesEntriesAndComments) {
  const Baseline b = parseBaseline(
      "# comment\n"
      "\n"
      "V204 src/sim/log.cc -- deliberate singleton\n"
      "V202 src/sim/event_queue.cc -- profiler wall clock\n");
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].code, "V204");
  EXPECT_EQ(b.entries[0].path, "src/sim/log.cc");
  EXPECT_EQ(b.entries[0].justification, "deliberate singleton");
}

TEST(SrclintBaseline, RejectsMissingJustification) {
  EXPECT_THROW(parseBaseline("V204 src/sim/log.cc\n"), std::runtime_error);
  EXPECT_THROW(parseBaseline("V204 src/sim/log.cc -- \n"), std::runtime_error);
  EXPECT_THROW(parseBaseline("notacode src/x.cc -- why\n"), std::runtime_error);
}

TEST(SrclintBaseline, EmitApplyRoundTrip) {
  std::vector<SrcFinding> findings;
  findings.push_back({Severity::kError, "V204", "src/x.cc", 7, "m"});
  findings.push_back({Severity::kError, "V204", "src/x.cc", 9, "m"});
  findings.push_back({Severity::kError, "V202", "src/y.cc", 3, "m"});
  std::string text = emitBaseline(findings);
  // One entry per (code, path): the two V204s collapse.
  std::size_t pos;
  while ((pos = text.find("TODO: justify this suppression")) !=
         std::string::npos) {
    text.replace(pos, 30, "because tests");
  }
  const Baseline baseline = parseBaseline(text);
  ASSERT_EQ(baseline.entries.size(), 2u);

  const BaselineResult result = applyBaseline(findings, baseline);
  EXPECT_TRUE(result.unbaselined.empty());
  EXPECT_TRUE(result.stale.empty());
  EXPECT_EQ(result.suppressed.size(), 3u);
}

TEST(SrclintBaseline, DetectsStaleAndUnbaselined) {
  std::vector<SrcFinding> findings;
  findings.push_back({Severity::kError, "V204", "src/x.cc", 7, "m"});
  Baseline baseline;
  baseline.entries.push_back({"V204", "src/gone.cc", "was fixed"});
  const BaselineResult result = applyBaseline(findings, baseline);
  ASSERT_EQ(result.unbaselined.size(), 1u);
  EXPECT_EQ(result.unbaselined[0].path, "src/x.cc");
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0].path, "src/gone.cc");
}

TEST(SrclintReport, BridgesIntoSharedDiagnostics) {
  std::vector<SrcFinding> findings;
  findings.push_back({Severity::kWarning, "V200", "src/x.cc", 4, "m"});
  Report report;
  toReport(findings, report);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(report.hasCode("V200"));
  EXPECT_FALSE(report.hasErrors());
}

TEST(SrclintSelfTest, BuiltInFixturesPass) {
  std::ostringstream os;
  EXPECT_TRUE(srclintSelfTest(os)) << os.str();
}

// -- Meta: the repository itself is clean modulo the baseline ---------------

TEST(SrclintMeta, RepoScanIsCleanModuloBaseline) {
  const std::string root = VINI_SOURCE_ROOT;
  const std::vector<SrcFinding> findings = lintTree(root, {"src", "tools"});

  std::ifstream in(root + "/examples/specs/srclint.baseline");
  ASSERT_TRUE(in) << "missing examples/specs/srclint.baseline";
  std::stringstream ss;
  ss << in.rdbuf();
  const Baseline baseline = parseBaseline(ss.str());
  for (const BaselineEntry& entry : baseline.entries) {
    EXPECT_FALSE(entry.justification.empty());
  }

  const BaselineResult result = applyBaseline(findings, baseline);
  for (const SrcFinding& f : result.unbaselined) {
    EXPECT_NE(f.severity, Severity::kError)
        << "unbaselined finding: " << formatFinding(f);
  }
  for (const BaselineEntry& entry : result.stale) {
    ADD_FAILURE() << "stale baseline entry: " << entry.code << " "
                  << entry.path;
  }
}

}  // namespace
}  // namespace vini::check
