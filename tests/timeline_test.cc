// Tests for the vini-timeline layer: span conservation (clean runs and
// fault storms), per-hop latency decomposition against the app-layer
// measurement, timeline/export determinism, sampler and tracing
// passivity, and the histogram quantile columns.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/ping.h"
#include "fault/injector.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using sim::kSecond;

std::unique_ptr<topo::World> deterWorld(std::uint64_t seed) {
  topo::WorldOptions options;
  options.seed = seed;
  auto world = topo::makeDeterWorld(options);
  EXPECT_TRUE(world->runUntilConverged(120 * kSecond));
  return world;
}

/// One ping exchange Src -> Sink across the converged DETER overlay;
/// returns the RTTs the app layer recorded.
std::vector<sim::Duration> pingAcross(topo::World& world, std::uint64_t count,
                                      sim::Duration drain = 10 * kSecond) {
  app::Pinger::Options popt;
  popt.count = count;
  popt.flood = false;
  popt.interval = kSecond / 4;
  popt.source = world.tapOf("Src");
  app::Pinger pinger(world.stack("Src"), world.tapOf("Sink"), popt);
  std::vector<sim::Duration> rtts;
  pinger.on_reply = [&rtts](std::uint64_t, sim::Duration rtt) {
    rtts.push_back(rtt);
  };
  pinger.start();
  world.queue.runUntil(world.queue.now() +
                       count * popt.interval + drain);
  return rtts;
}

// ---------------------------------------------------------------------------
// Span conservation

TEST(SpanConservation, DrainedRunClosesEverySpan) {
  obs::ScopedObs scope;
  auto world = deterWorld(7);
  const auto rtts = pingAcross(*world, 4);
  ASSERT_EQ(rtts.size(), 4u);

  const obs::SpanTracker& spans = scope.spans();
  // Every probe opened a root; every root closed exactly once.
  EXPECT_EQ(spans.rootsOpened(), 4u);
  EXPECT_EQ(spans.rootsClosed(), 4u);
  EXPECT_EQ(spans.rootsStillOpen(), 0u);
  EXPECT_EQ(spans.lateRootCloses(), 0u);
  // Hop spans conserve: the run drained, so nothing is in flight.
  EXPECT_GT(spans.opened(), 0u);
  EXPECT_EQ(spans.stillOpen(), 0u);
  EXPECT_EQ(spans.opened(), spans.closed());
  // A delivered ping drops nothing.
  EXPECT_EQ(spans.closedDropped(), 0u);
}

TEST(SpanConservation, FaultStormStillReconciles) {
  obs::ScopedObs scope;
  auto world = deterWorld(11);
  const sim::Time t0 = world->queue.now();

  // Fail the first overlay link mid-run, restore it, and keep pinging
  // through the outage: dropped probes must close their roots at the
  // drop site, not leak them.
  world->schedule.at(t0 + kSecond, "fail Src-Fwdr",
                     [&] { world->iias->failLink("Src", "Fwdr"); });
  world->schedule.at(t0 + 3 * kSecond, "restore Src-Fwdr",
                     [&] { world->iias->restoreLink("Src", "Fwdr"); });
  const auto rtts = pingAcross(*world, 16, 20 * kSecond);

  const obs::SpanTracker& spans = scope.spans();
  EXPECT_EQ(spans.rootsOpened(), 16u);
  // Exactly-once root closure even when probes die mid-path.
  EXPECT_EQ(spans.rootsClosed(), 16u);
  EXPECT_EQ(spans.rootsStillOpen(), 0u);
  EXPECT_EQ(spans.stillOpen(), 0u);
  // The outage really dropped probes, and the drop reason says where.
  EXPECT_LT(rtts.size(), 16u);
  std::uint64_t dropped_roots = 0;
  bool saw_reason = false;
  for (const auto& rec : spans.records()) {
    if (!rec.root || rec.outcome != obs::SpanOutcome::kDropped) continue;
    ++dropped_roots;
    if (spans.name(rec.reason) == "click_drop_filter") saw_reason = true;
  }
  EXPECT_EQ(dropped_roots, 16u - rtts.size());
  EXPECT_TRUE(saw_reason);
}

// ---------------------------------------------------------------------------
// Per-hop decomposition vs the app layer

TEST(Decompose, SegmentsSumToAppMeasuredLatency) {
  obs::ScopedObs scope;
  auto world = deterWorld(13);
  const auto rtts = pingAcross(*world, 1);
  ASSERT_EQ(rtts.size(), 1u);

  const obs::SpanTracker& spans = scope.spans();
  const obs::SpanRecord* root = nullptr;
  for (const auto& rec : spans.records()) {
    if (rec.root && rec.outcome == obs::SpanOutcome::kDelivered) {
      root = &rec;
      break;
    }
  }
  ASSERT_NE(root, nullptr);
  // The root span IS the app-layer measurement: send -> reply.
  EXPECT_EQ(root->duration(), rtts[0]);

  const auto segments = obs::decomposeTrace(spans, root->trace_id);
  ASSERT_FALSE(segments.empty());
  sim::Duration sum = 0;
  sim::Time cursor = root->t_open;
  bool saw_link = false;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.t_start, cursor);  // sequential, gap-free
    EXPECT_GT(seg.dur, 0);
    cursor = seg.t_start + seg.dur;
    sum += seg.dur;
    if (seg.layer.rfind("phys.", 0) == 0) saw_link = true;
  }
  EXPECT_EQ(cursor, root->t_close);
  EXPECT_EQ(sum, root->duration());  // per-hop breakdown covers the RTT
  EXPECT_TRUE(saw_link);             // wire time is attributed, not a gap
}

// ---------------------------------------------------------------------------
// Timeline events and determinism

TEST(Timeline, ControlPlaneEventsLandOnTracks) {
  obs::ScopedObs scope;
  auto world = deterWorld(17);

  // Convergence alone must have produced OSPF SPF runs on ospf/ tracks
  // and scheduler activity on cpu/ tracks.
  const obs::Timeline& timeline = scope.timeline();
  bool saw_ospf = false;
  bool saw_cpu = false;
  for (const auto& name : timeline.trackNames()) {
    if (name.rfind("ospf/", 0) == 0) saw_ospf = true;
    if (name.rfind("cpu/", 0) == 0) saw_cpu = true;
  }
  EXPECT_TRUE(saw_ospf);
  EXPECT_TRUE(saw_cpu);
  bool saw_spf = false;
  for (const auto& name : timeline.labelNames()) {
    if (name == "spf_run") saw_spf = true;
  }
  EXPECT_TRUE(saw_spf);

  // A fault-injector event lands on its fault/<entity> track.
  fault::FaultInjector injector(world->schedule, world->net,
                                world->iias.get(), nullptr);
  injector.setLinkFault("Src", "Fwdr", true);
  injector.setLinkFault("Src", "Fwdr", false);
  bool saw_fault = false;
  for (const auto& name : timeline.trackNames()) {
    if (name.rfind("fault/", 0) == 0) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault);
}

/// Run the same seeded scenario and export the full Chrome trace.
std::string exportScenario(std::uint64_t seed) {
  obs::ScopedObs scope;
  auto world = deterWorld(seed);
  const sim::Time t0 = world->queue.now();
  scope.sampler().setPeriod(kSecond / 2);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("app.ping", "Src", "last_rtt_ms",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().attach(world->queue);
  world->schedule.at(t0 + kSecond, "fail Src-Fwdr",
                     [&] { world->iias->failLink("Src", "Fwdr"); });
  world->schedule.at(t0 + 3 * kSecond, "restore Src-Fwdr",
                     [&] { world->iias->restoreLink("Src", "Fwdr"); });
  pingAcross(*world, 8);
  scope.sampler().detach();
  std::ostringstream os;
  obs::writeChromeTrace(os, scope.spans(), scope.timeline(), scope.sampler());
  return os.str();
}

TEST(Timeline, ExportIsDeterministic) {
  // Same seed, fresh world and obs context: byte-identical export.
  const std::string a = exportScenario(23);
  const std::string b = exportScenario(23);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Passivity: instrumentation must not change the simulation

struct RunOutcome {
  std::vector<sim::Duration> rtts;
  std::uint64_t executed = 0;
  sim::Time final_time = 0;
};

RunOutcome runObserved(bool with_obs, bool with_sampler) {
  std::unique_ptr<obs::ScopedObs> scope;
  if (with_obs) scope = std::make_unique<obs::ScopedObs>();
  auto world = deterWorld(29);
  if (with_sampler) {
    scope->sampler().setPeriod(sim::kMillisecond * 10);
    scope->sampler().setOrigin(world->queue.now());
    scope->sampler().watch("app.ping", "Src", "last_rtt_ms");
    scope->sampler().attach(world->queue);
  }
  RunOutcome out;
  out.rtts = pingAcross(*world, 6);
  if (with_sampler) scope->sampler().detach();
  out.executed = world->queue.executedCount();
  out.final_time = world->queue.now();
  return out;
}

TEST(Passivity, SamplerDoesNotPerturbTheRun) {
  const RunOutcome off = runObserved(/*with_obs=*/true, /*with_sampler=*/false);
  const RunOutcome on = runObserved(/*with_obs=*/true, /*with_sampler=*/true);
  EXPECT_EQ(off.rtts, on.rtts);
  EXPECT_EQ(off.executed, on.executed);
  EXPECT_EQ(off.final_time, on.final_time);
}

TEST(Passivity, TracingDoesNotPerturbTheRun) {
  // The acceptance bar: a traced run is bit-identical to an untraced
  // one.  RTT list, event count, and final clock are the sim-visible
  // fingerprint of the run.
  const RunOutcome untraced =
      runObserved(/*with_obs=*/false, /*with_sampler=*/false);
  const RunOutcome traced =
      runObserved(/*with_obs=*/true, /*with_sampler=*/false);
  EXPECT_EQ(untraced.rtts, traced.rtts);
  EXPECT_EQ(untraced.executed, traced.executed);
  EXPECT_EQ(untraced.final_time, traced.final_time);
}

// ---------------------------------------------------------------------------
// Histogram quantile columns

TEST(HistogramQuantiles, InterpolatedAndPinned) {
  obs::Histogram h({1.0, 2.0, 5.0, 10.0});
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));
  // Cumulative counts: le_1:1, le_2:2, le_5:5, le_10:10.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 9.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 9.9);
  // Past the last bound the estimate clamps to it.
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 10.0);
  // Empty histograms report 0, not NaN.
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(HistogramQuantiles, CsvCarriesTheQuantileRows) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("app.ping", "Src", "rtt_ms",
                                    {1.0, 2.0, 5.0, 10.0});
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));
  std::ostringstream os;
  reg.writeCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("app.ping,Src,rtt_ms,histogram_p50,5"), std::string::npos);
  EXPECT_NE(csv.find("app.ping,Src,rtt_ms,histogram_p95,9.5"),
            std::string::npos);
  EXPECT_NE(csv.find("app.ping,Src,rtt_ms,histogram_p99,9.9"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler semantics

TEST(MetricSampler, BoundariesAndOnChangeSuppression) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x", "n", "events");
  obs::Gauge& g = reg.gauge("x", "n", "level");
  obs::MetricSampler sampler;
  sampler.bindRegistry(&reg);
  sampler.setPeriod(100);
  sampler.setOrigin(50);
  sampler.watch("x", "n", "events", obs::MetricSampler::Mode::kEveryTick);
  sampler.watch("x", "n", "level", obs::MetricSampler::Mode::kOnChange);

  c.inc();
  g.set(3.0);
  sampler.onAdvance(0, 160);  // boundaries 50, 150
  sampler.onAdvance(160, 240);  // no boundary in (160, 240]
  g.set(3.0);  // same value, fresh write: must emit (version moved)
  sampler.onAdvance(240, 350);  // boundaries 250, 350

  const auto* events = sampler.find("x", "n", "events");
  ASSERT_NE(events, nullptr);
  // kEveryTick: one point per boundary.
  ASSERT_EQ(events->points.size(), 4u);
  EXPECT_EQ(events->points[0].t, 50);
  EXPECT_EQ(events->points[3].t, 350);

  const auto* level = sampler.find("x", "n", "level");
  ASSERT_NE(level, nullptr);
  // kOnChange: the write before 50 emits at 50; 150 is suppressed; the
  // re-set of the same value emits again at 250; 350 suppressed.
  ASSERT_EQ(level->points.size(), 2u);
  EXPECT_EQ(level->points[0].t, 50);
  EXPECT_EQ(level->points[1].t, 250);
  EXPECT_DOUBLE_EQ(level->points[1].value, 3.0);
}

}  // namespace
}  // namespace vini
