// RIP tests: distance-vector propagation, split horizon, metric
// accumulation, timeout, and infinity handling.
#include <gtest/gtest.h>

#include <memory>

#include "xorp/rip.h"

namespace vini::xorp {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

/// Synthetic vif pair (same pattern as the OSPF test harness).
class TestVif final : public Vif {
 public:
  TestVif(sim::EventQueue& queue, std::string name, IpAddress addr,
          IpAddress peer, Prefix subnet)
      : queue_(queue), name_(std::move(name)), addr_(addr), peer_addr_(peer),
        subnet_(subnet) {}

  const std::string& name() const override { return name_; }
  IpAddress address() const override { return addr_; }
  IpAddress peerAddress() const override { return peer_addr_; }
  Prefix subnet() const override { return subnet_; }
  bool isUp() const override { return up_; }
  void send(packet::Packet p) override {
    if (!up_ || !peer_ || !peer_->up_) return;
    TestVif* peer = peer_;
    queue_.scheduleAfter(sim::kMillisecond, [peer, p = std::move(p)]() mutable {
      if (peer->up_ && peer->deliver_) peer->deliver_(*peer, std::move(p));
    });
  }
  void setUp(bool up) { up_ = up; }
  void setDeliver(std::function<void(Vif&, packet::Packet)> fn) {
    deliver_ = std::move(fn);
  }
  TestVif* peer_ = nullptr;

 private:
  sim::EventQueue& queue_;
  std::string name_;
  IpAddress addr_;
  IpAddress peer_addr_;
  Prefix subnet_;
  bool up_ = true;
  std::function<void(Vif&, packet::Packet)> deliver_;
};

struct Harness {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Rib>> ribs;
  std::vector<std::unique_ptr<RipProcess>> routers;
  std::vector<std::unique_ptr<TestVif>> vifs;
  int next_subnet = 0;

  explicit Harness(int n, RipConfig config = fastConfig()) {
    for (int i = 0; i < n; ++i) {
      ribs.push_back(std::make_unique<Rib>());
      routers.push_back(std::make_unique<RipProcess>(queue, *ribs.back(), config,
                                                     nullptr, 300 + i));
      routers.back()->addLocalPrefix(
          Prefix(IpAddress(10, 0, static_cast<std::uint8_t>(i + 1), 0), 24));
    }
  }

  static RipConfig fastConfig() {
    RipConfig config;
    config.update_interval = 5 * kSecond;
    config.route_timeout = 20 * kSecond;
    return config;
  }

  std::pair<TestVif*, TestVif*> connect(int i, int j) {
    const int k = next_subnet++;
    const Prefix subnet(IpAddress(10, 200, static_cast<std::uint8_t>(k), 0), 30);
    auto a = std::make_unique<TestVif>(queue, "a", subnet.hostAt(1),
                                       subnet.hostAt(2), subnet);
    auto b = std::make_unique<TestVif>(queue, "b", subnet.hostAt(2),
                                       subnet.hostAt(1), subnet);
    a->peer_ = b.get();
    b->peer_ = a.get();
    RipProcess* ri = routers[static_cast<std::size_t>(i)].get();
    RipProcess* rj = routers[static_cast<std::size_t>(j)].get();
    a->setDeliver([ri](Vif& vif, packet::Packet p) { ri->receive(vif, p); });
    b->setDeliver([rj](Vif& vif, packet::Packet p) { rj->receive(vif, p); });
    ri->addInterface(*a);
    rj->addInterface(*b);
    auto pa = a.get();
    auto pb = b.get();
    vifs.push_back(std::move(a));
    vifs.push_back(std::move(b));
    return {pa, pb};
  }

  void startAll() {
    for (auto& r : routers) r->start();
  }
};

TEST(Rip, PropagatesRoutesAcrossOneHop) {
  Harness h(2);
  h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(15 * kSecond);
  auto route = h.ribs[0]->lookup(IpAddress(10, 0, 2, 5));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->origin, RouteOrigin::kRip);
  EXPECT_EQ(route->metric, 2u);  // neighbor's local metric 1, plus one hop
}

TEST(Rip, MetricAccumulatesAlongChain) {
  Harness h(4);
  h.connect(0, 1);
  h.connect(1, 2);
  h.connect(2, 3);
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  auto route = h.ribs[0]->lookup(IpAddress(10, 0, 4, 5));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 4u);
}

TEST(Rip, PrefersShorterHopCount) {
  // 0-1 direct, and 0-2-1: the direct one-hop path must win.
  Harness h(3);
  auto direct = h.connect(0, 1);
  h.connect(0, 2);
  h.connect(2, 1);
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  auto route = h.ribs[0]->lookup(IpAddress(10, 0, 2, 5));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->metric, 2u);
  EXPECT_EQ(route->next_hop, direct.first->peerAddress());
}

TEST(Rip, RouteTimesOutWhenNeighborSilent) {
  Harness h(2);
  auto [a, b] = h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(15 * kSecond);
  ASSERT_TRUE(h.ribs[0]->lookup(IpAddress(10, 0, 2, 5)).has_value());
  a->setUp(false);
  b->setUp(false);
  h.queue.runUntil(h.queue.now() + 40 * kSecond);
  EXPECT_FALSE(h.ribs[0]->lookup(IpAddress(10, 0, 2, 5)).has_value());
  EXPECT_GE(h.routers[0]->stats().routes_timed_out, 1u);
}

TEST(Rip, SplitHorizonPoisonsReverse) {
  // Router 0 learns 10.0.2/24 from router 1; updates 0 sends back to 1
  // must carry metric 16 for that prefix.  Observable effect: router 1
  // never routes its own prefix via router 0.
  Harness h(2);
  h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(60 * kSecond);
  auto route = h.ribs[1]->lookup(IpAddress(10, 0, 2, 5));
  // Router 1's own prefix is local-only: no RIP route installed for it.
  EXPECT_FALSE(route.has_value());
  EXPECT_EQ(h.routers[1]->metricFor(Prefix::mustParse("10.0.2.0/24")), 1u);
}

TEST(Rip, StopFlushesRibEntries) {
  Harness h(2);
  h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(15 * kSecond);
  ASSERT_TRUE(h.ribs[0]->lookup(IpAddress(10, 0, 2, 5)).has_value());
  h.routers[0]->stop();
  EXPECT_FALSE(h.ribs[0]->lookup(IpAddress(10, 0, 2, 5)).has_value());
}

TEST(Rip, UpdatesAreCounted) {
  Harness h(2);
  h.connect(0, 1);
  h.startAll();
  h.queue.runUntil(31 * kSecond);
  // ~6 update rounds at 5 s.
  EXPECT_GE(h.routers[0]->stats().updates_sent, 5u);
  EXPECT_GE(h.routers[0]->stats().updates_received, 5u);
}

}  // namespace
}  // namespace vini::xorp
