// BGP tests: session establishment, propagation, loop prevention, the
// decision process, withdrawal — and the Section 6.1 BGP multiplexer
// (prefix filtering, rate limiting, session sharing).
#include <gtest/gtest.h>

#include "xorp/bgp.h"

namespace vini::xorp {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

BgpConfig speaker(std::uint32_t asn, RouterId id, const std::string& name) {
  BgpConfig config;
  config.asn = asn;
  config.router_id = id;
  config.name = name;
  return config;
}

TEST(Bgp, OriginationPropagatesToPeer) {
  sim::EventQueue q;
  Rib rib_a, rib_b;
  BgpProcess a(q, &rib_a, speaker(100, 1, "a"));
  BgpProcess b(q, &rib_b, speaker(200, 2, "b"));
  BgpProcess::connect(a, b);
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(kSecond);

  auto route = b.bestRoute(Prefix::mustParse("198.32.0.0/16"));
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->as_path.size(), 1u);
  EXPECT_EQ(route->as_path[0], 100u);
  // Installed in b's RIB as an eBGP route.
  auto rib_route = rib_b.lookup(IpAddress(198, 32, 1, 1));
  ASSERT_TRUE(rib_route.has_value());
  EXPECT_EQ(rib_route->origin, RouteOrigin::kEbgp);
}

TEST(Bgp, TransitPropagationPrependsAsPath) {
  sim::EventQueue q;
  BgpProcess a(q, nullptr, speaker(100, 1, "a"));
  BgpProcess b(q, nullptr, speaker(200, 2, "b"));
  BgpProcess c(q, nullptr, speaker(300, 3, "c"));
  BgpProcess::connect(a, b);
  BgpProcess::connect(b, c);
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(kSecond);
  auto route = c.bestRoute(Prefix::mustParse("198.32.0.0/16"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->as_path, (std::vector<std::uint32_t>{200, 100}));
}

TEST(Bgp, LoopDetectionRejectsOwnAs) {
  sim::EventQueue q;
  BgpProcess a(q, nullptr, speaker(100, 1, "a"));
  BgpProcess b(q, nullptr, speaker(200, 2, "b"));
  BgpProcess c(q, nullptr, speaker(300, 3, "c"));
  // Triangle: a-b, b-c fast; c-a slow, so c first learns the prefix via
  // b and advertises that path to a — which must reject it (AS 100 is
  // already in the path).
  BgpProcess::connect(a, b, sim::kMillisecond);
  BgpProcess::connect(b, c, sim::kMillisecond);
  BgpProcess::connect(c, a, 50 * sim::kMillisecond);
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(10 * kSecond);
  // Convergence (not an update storm), and the loop counter fired.
  EXPECT_GT(a.stats().loops_rejected, 0u);
  EXPECT_TRUE(b.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
  EXPECT_TRUE(c.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
}

TEST(Bgp, ShorterAsPathWins) {
  sim::EventQueue q;
  BgpProcess origin(q, nullptr, speaker(100, 1, "origin"));
  BgpProcess transit(q, nullptr, speaker(150, 5, "transit"));
  BgpProcess chooser(q, nullptr, speaker(200, 2, "chooser"));
  // chooser hears the prefix directly from origin and via transit.
  BgpProcess::connect(origin, chooser);
  BgpProcess::connect(origin, transit);
  BgpProcess::connect(transit, chooser);
  origin.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(10 * kSecond);
  auto best = chooser.bestRoute(Prefix::mustParse("198.32.0.0/16"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->as_path.size(), 1u);  // direct path
}

TEST(Bgp, HigherLocalPrefBeatsShorterPath) {
  sim::EventQueue q;
  BgpProcess origin(q, nullptr, speaker(100, 1, "origin"));
  BgpProcess transit(q, nullptr, speaker(150, 5, "transit"));
  BgpProcess chooser(q, nullptr, speaker(200, 2, "chooser"));
  BgpProcess::connect(origin, chooser);
  BgpProcess::connect(origin, transit);
  BgpProcess::connect(transit, chooser);
  // Prefer everything learned from `transit`.
  chooser.setImportFilter(transit, [](BgpRoute& route) {
    route.local_pref = 200;
    return true;
  });
  origin.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(10 * kSecond);
  auto best = chooser.bestRoute(Prefix::mustParse("198.32.0.0/16"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->as_path.size(), 2u);  // the longer, preferred path
  EXPECT_EQ(best->local_pref, 200u);
}

TEST(Bgp, WithdrawalPropagates) {
  sim::EventQueue q;
  BgpProcess a(q, nullptr, speaker(100, 1, "a"));
  BgpProcess b(q, nullptr, speaker(200, 2, "b"));
  BgpProcess c(q, nullptr, speaker(300, 3, "c"));
  BgpProcess::connect(a, b);
  BgpProcess::connect(b, c);
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(kSecond);
  ASSERT_TRUE(c.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
  a.withdrawOrigin(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(q.now() + kSecond);
  EXPECT_FALSE(b.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
  EXPECT_FALSE(c.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
}

TEST(Bgp, DisconnectFlushesLearnedRoutes) {
  sim::EventQueue q;
  Rib rib_b;
  BgpProcess a(q, nullptr, speaker(100, 1, "a"));
  BgpProcess b(q, &rib_b, speaker(200, 2, "b"));
  BgpProcess::connect(a, b);
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  q.runUntil(kSecond);
  ASSERT_TRUE(rib_b.lookup(IpAddress(198, 32, 0, 1)).has_value());
  b.disconnect(a);
  q.runUntil(q.now() + kSecond);
  EXPECT_FALSE(b.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
  EXPECT_FALSE(rib_b.lookup(IpAddress(198, 32, 0, 1)).has_value());
  EXPECT_EQ(b.sessionCount(), 0u);
}

TEST(Bgp, LateConnectReceivesFullTable) {
  sim::EventQueue q;
  BgpProcess a(q, nullptr, speaker(100, 1, "a"));
  BgpProcess b(q, nullptr, speaker(200, 2, "b"));
  a.originate(Prefix::mustParse("198.32.0.0/16"));
  a.originate(Prefix::mustParse("198.33.0.0/16"));
  q.runUntil(kSecond);
  BgpProcess::connect(a, b);
  q.runUntil(q.now() + kSecond);
  EXPECT_EQ(b.knownPrefixes().size(), 2u);
}

// ---------------------------------------------------------------------------
// BgpMultiplexer (Section 6.1)

struct MuxWorld {
  sim::EventQueue q;
  BgpMultiplexer::Config config;
  std::unique_ptr<BgpMultiplexer> mux;
  std::unique_ptr<BgpProcess> external;  // the neighboring domain
  std::unique_ptr<BgpProcess> slice1;
  std::unique_ptr<BgpProcess> slice2;

  MuxWorld(double updates_per_second = 100.0) {
    config.vini_block = Prefix::mustParse("198.32.0.0/16");
    config.updates_per_second = updates_per_second;
    config.burst = 3.0;
    mux = std::make_unique<BgpMultiplexer>(q, speaker(42, 99, "mux"), config);
    external = std::make_unique<BgpProcess>(q, nullptr, speaker(7018, 50, "att"));
    BgpProcess::connect(mux->externalSpeaker(), *external);
    slice1 = std::make_unique<BgpProcess>(q, nullptr, speaker(42, 101, "slice1"));
    slice2 = std::make_unique<BgpProcess>(q, nullptr, speaker(42, 102, "slice2"));
  }
};

TEST(BgpMux, SlicesShareOneExternalSession) {
  MuxWorld world;
  EXPECT_TRUE(world.mux->registerSlice(*world.slice1,
                                       Prefix::mustParse("198.32.1.0/24")));
  EXPECT_TRUE(world.mux->registerSlice(*world.slice2,
                                       Prefix::mustParse("198.32.2.0/24")));
  // The external speaker still has exactly one session (to the mux).
  EXPECT_EQ(world.external->sessionCount(), 1u);
  EXPECT_EQ(world.mux->sliceCount(), 2u);

  world.slice1->originate(Prefix::mustParse("198.32.1.0/24"));
  world.slice2->originate(Prefix::mustParse("198.32.2.0/24"));
  world.q.runUntil(kSecond);
  EXPECT_TRUE(world.external
                  ->bestRoute(Prefix::mustParse("198.32.1.0/24"))
                  .has_value());
  EXPECT_TRUE(world.external
                  ->bestRoute(Prefix::mustParse("198.32.2.0/24"))
                  .has_value());
}

TEST(BgpMux, FiltersAnnouncementsOutsideAllocation) {
  MuxWorld world;
  ASSERT_TRUE(world.mux->registerSlice(*world.slice1,
                                       Prefix::mustParse("198.32.1.0/24")));
  // Slice 1 tries to announce someone else's space (a hijack) and space
  // outside VINI entirely.
  world.slice1->originate(Prefix::mustParse("198.32.2.0/24"));
  world.slice1->originate(Prefix::mustParse("8.8.8.0/24"));
  world.q.runUntil(kSecond);
  EXPECT_FALSE(world.external
                   ->bestRoute(Prefix::mustParse("198.32.2.0/24"))
                   .has_value());
  EXPECT_FALSE(world.external->bestRoute(Prefix::mustParse("8.8.8.0/24"))
                   .has_value());
  EXPECT_GE(world.mux->filteredAnnouncements(), 2u);
}

TEST(BgpMux, RejectsOverlappingAllocations) {
  MuxWorld world;
  ASSERT_TRUE(world.mux->registerSlice(*world.slice1,
                                       Prefix::mustParse("198.32.1.0/24")));
  EXPECT_FALSE(world.mux->registerSlice(*world.slice2,
                                        Prefix::mustParse("198.32.1.128/25")));
  EXPECT_FALSE(world.mux->registerSlice(*world.slice2,
                                        Prefix::mustParse("10.0.0.0/24")));
  EXPECT_TRUE(world.mux->registerSlice(*world.slice2,
                                       Prefix::mustParse("198.32.2.0/24")));
}

TEST(BgpMux, RateLimitsUpdateStorms) {
  MuxWorld world(/*updates_per_second=*/1.0);
  ASSERT_TRUE(world.mux->registerSlice(*world.slice1,
                                       Prefix::mustParse("198.32.1.0/24")));
  // An unstable experiment flaps its prefix rapidly.
  for (int i = 0; i < 30; ++i) {
    world.slice1->originate(Prefix::mustParse("198.32.1.0/24"));
    world.q.runUntil(world.q.now() + 100 * sim::kMillisecond);
    world.slice1->withdrawOrigin(Prefix::mustParse("198.32.1.0/24"));
    world.q.runUntil(world.q.now() + 100 * sim::kMillisecond);
  }
  EXPECT_GT(world.mux->rateLimited(), 0u);
}

TEST(BgpMux, ExternalRoutesReachAllSlices) {
  MuxWorld world;
  ASSERT_TRUE(world.mux->registerSlice(*world.slice1,
                                       Prefix::mustParse("198.32.1.0/24")));
  ASSERT_TRUE(world.mux->registerSlice(*world.slice2,
                                       Prefix::mustParse("198.32.2.0/24")));
  world.external->originate(Prefix::mustParse("12.0.0.0/8"));
  world.q.runUntil(kSecond);
  EXPECT_TRUE(world.slice1->bestRoute(Prefix::mustParse("12.0.0.0/8")).has_value());
  EXPECT_TRUE(world.slice2->bestRoute(Prefix::mustParse("12.0.0.0/8")).has_value());
}

}  // namespace
}  // namespace vini::xorp
