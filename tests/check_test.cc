// vini-verify: one seeded-misconfiguration test (plus a clean-input
// test) per check code.  See src/check/checkers.h for the catalogue.
#include <gtest/gtest.h>

#include "check/audit.h"
#include "check/checkers.h"
#include "check/diagnostic.h"
#include "cpu/scheduler.h"
#include "phys/network.h"
#include "sim/event_queue.h"
#include "topo/abilene.h"
#include "topo/experiment_spec.h"
#include "topo/failure_trace.h"

namespace {

using namespace vini;
using check::Report;
using check::ScriptContext;
using check::Severity;
using core::TopologyLinkSpec;
using core::TopologyNodeSpec;
using core::TopologySpec;

TopologySpec chainSpec() {
  TopologySpec spec;
  spec.name = "chain";
  spec.nodes = {{"A", ""}, {"B", ""}, {"C", ""}};
  spec.links = {{"A", "B", 10}, {"B", "C", 10}};
  return spec;
}

// ---------------------------------------------------------------------------
// Diagnostics and Report plumbing

TEST(Diagnostic, FormatsSeverityCodeLocationMessage) {
  const check::Diagnostic d{Severity::kError, "V003", "topology 'x' link A-A",
                            "link connects node 'A' to itself"};
  EXPECT_EQ(check::formatDiagnostic(d),
            "error V003 [topology 'x' link A-A]: link connects node 'A' to "
            "itself");
}

TEST(Report, TracksErrorsAndCodes) {
  Report report;
  EXPECT_FALSE(report.hasErrors());
  report.warning("V022", "trace event 1", "redundant up");
  EXPECT_FALSE(report.hasErrors());
  report.error("V020", "trace event 2", "time went backwards");
  EXPECT_TRUE(report.hasErrors());
  EXPECT_EQ(report.countErrors(), 1u);
  EXPECT_TRUE(report.hasCode("V020"));
  EXPECT_TRUE(report.hasCode("V022"));
  EXPECT_FALSE(report.hasCode("V001"));
}

// ---------------------------------------------------------------------------
// Topology specs (V001-V007)

TEST(CheckTopology, CleanSpecHasNoFindings) {
  Report report;
  check::checkTopologySpec(topo::abileneMirrorSpec(), report);
  EXPECT_TRUE(report.empty()) << report.format();

  Report chain_report;
  check::checkTopologySpec(chainSpec(), chain_report);
  EXPECT_TRUE(chain_report.empty()) << chain_report.format();
}

TEST(CheckTopology, V001DuplicateNodeName) {
  auto spec = chainSpec();
  spec.nodes.push_back({"A", ""});
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V001")) << report.format();
  EXPECT_TRUE(report.hasErrors());
}

TEST(CheckTopology, V002UnknownLinkEndpoint) {
  auto spec = chainSpec();
  spec.links.push_back({"A", "Nowhere", 5});
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V002")) << report.format();
}

TEST(CheckTopology, V003SelfLink) {
  auto spec = chainSpec();
  spec.links.push_back({"B", "B", 5});
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V003")) << report.format();
}

TEST(CheckTopology, V004DuplicateLinkEitherDirection) {
  auto spec = chainSpec();
  spec.links.push_back({"B", "A", 10});  // reversed duplicate of A-B
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V004")) << report.format();
}

TEST(CheckTopology, V005DisconnectedTopology) {
  auto spec = chainSpec();
  spec.nodes.push_back({"D", ""});
  spec.nodes.push_back({"E", ""});
  spec.links.push_back({"D", "E", 1});  // an island
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V005")) << report.format();
}

TEST(CheckTopology, V006ZeroIgpCost) {
  auto spec = chainSpec();
  spec.links[0].igp_cost = 0;
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V006")) << report.format();
}

TEST(CheckTopology, V007DoubleBindingToOnePhysicalNode) {
  auto spec = chainSpec();
  spec.nodes[0].phys_name = "Denver";
  spec.nodes[1].phys_name = "Denver";
  Report report;
  check::checkTopologySpec(spec, report);
  EXPECT_TRUE(report.hasCode("V007")) << report.format();
}

TEST(CheckTopology, V007BindingToUnknownPhysicalNode) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  topo::buildAbilene(net);

  auto spec = chainSpec();
  spec.nodes[0].phys_name = "Denver";   // real PoP
  spec.nodes[1].phys_name = "Narnia";   // not a PoP
  Report report;
  check::checkTopologySpec(spec, report, &net);
  EXPECT_TRUE(report.hasCode("V007")) << report.format();

  // The same bindings against real PoPs are clean.
  spec.nodes[1].phys_name = "Chicago";
  Report clean;
  check::checkTopologySpec(spec, clean, &net);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

// ---------------------------------------------------------------------------
// Experiment scripts (V010-V014)

std::vector<topo::ExperimentAction> parse(const std::string& text) {
  return topo::parseExperimentScript(text);
}

ScriptContext abileneContext(const TopologySpec& topology) {
  ScriptContext context;
  context.topology = &topology;
  return context;
}

TEST(CheckScript, CleanScriptHasNoFindings) {
  const auto topology = topo::abileneMirrorSpec();
  const auto actions = parse(
      "at 10.0 fail-link Denver KansasCity\n"
      "at 34.0 restore-link Denver KansasCity\n"
      "at 50.0 mark checkpoint\n");
  Report report;
  check::checkExperimentScript(actions, abileneContext(topology), report);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(CheckScript, V010UnknownLinkReference) {
  const auto topology = topo::abileneMirrorSpec();
  // Both PoPs exist but Abilene has no direct Seattle-Houston span.
  const auto actions = parse("at 5 fail-link Seattle Houston\n");
  Report report;
  check::checkExperimentScript(actions, abileneContext(topology), report);
  EXPECT_TRUE(report.hasCode("V010")) << report.format();
}

TEST(CheckScript, V011ActionBeforeStart) {
  const auto topology = topo::abileneMirrorSpec();
  const auto actions = parse("at 5 fail-link Denver KansasCity\n");
  auto context = abileneContext(topology);
  context.start_seconds = 30.0;  // admitted mid-run
  Report report;
  check::checkExperimentScript(actions, context, report);
  EXPECT_TRUE(report.hasCode("V011")) << report.format();
}

TEST(CheckScript, V012ActionPastHorizon) {
  const auto topology = topo::abileneMirrorSpec();
  const auto actions = parse("at 500 mark too-late\n");
  auto context = abileneContext(topology);
  context.horizon_seconds = 120.0;
  Report report;
  check::checkExperimentScript(actions, context, report);
  EXPECT_TRUE(report.hasCode("V012")) << report.format();

  // Within the horizon: clean.
  auto ok = parse("at 100 mark in-time\n");
  Report clean;
  check::checkExperimentScript(ok, context, clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

TEST(CheckScript, V013RestoreBeforeFail) {
  const auto topology = topo::abileneMirrorSpec();
  const auto actions = parse("at 5 restore-link Denver KansasCity\n");
  Report report;
  check::checkExperimentScript(actions, abileneContext(topology), report);
  EXPECT_TRUE(report.hasCode("V013")) << report.format();
}

TEST(CheckScript, V013DoubleFailWithoutRestore) {
  const auto topology = topo::abileneMirrorSpec();
  // Ordering follows execution time, not file order.
  const auto actions = parse(
      "at 20 fail-link Denver KansasCity\n"
      "at 10 fail-link Denver KansasCity\n");
  Report report;
  check::checkExperimentScript(actions, abileneContext(topology), report);
  EXPECT_TRUE(report.hasCode("V013")) << report.format();

  // fail -> restore -> fail is a legitimate flap.
  const auto flap = parse(
      "at 10 fail-link Denver KansasCity\n"
      "at 20 restore-link Denver KansasCity\n"
      "at 30 fail-link Denver KansasCity\n"
      "at 40 restore-link Denver KansasCity\n");
  Report clean;
  check::checkExperimentScript(flap, abileneContext(topology), clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

TEST(CheckScript, V014VirtualVerbWithoutIias) {
  const auto topology = topo::abileneMirrorSpec();
  const auto actions = parse("at 5 fail-link Denver KansasCity\n");
  auto context = abileneContext(topology);
  context.has_iias = false;
  Report report;
  check::checkExperimentScript(actions, context, report);
  EXPECT_TRUE(report.hasCode("V014")) << report.format();

  // Physical verbs are still fine without an overlay.
  const auto phys_actions = parse("at 5 fail-phys-link Denver KansasCity\n");
  Report clean;
  check::checkExperimentScript(phys_actions, context, clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

// ---------------------------------------------------------------------------
// Failure traces (V020-V022)

TEST(CheckTrace, CleanTraceHasNoFindings) {
  const auto topology = topo::abileneMirrorSpec();
  const auto events = topo::parseLinkTrace(
      "t=10 link Denver KansasCity down\n"
      "t=20 link Denver KansasCity up\n"
      "t=30 link Chicago NewYork down\n"
      "t=40 link Chicago NewYork up\n");
  Report report;
  check::checkLinkTrace(events, report, &topology);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(CheckTrace, V020NonMonotonicTimestamps) {
  const auto events = topo::parseLinkTrace(
      "t=20 link Denver KansasCity down\n"
      "t=10 link Denver KansasCity up\n");
  Report report;
  check::checkLinkTrace(events, report);
  EXPECT_TRUE(report.hasCode("V020")) << report.format();
}

TEST(CheckTrace, V021UnknownLink) {
  const auto topology = topo::abileneMirrorSpec();
  const auto events =
      topo::parseLinkTrace("t=10 link Denver Miami down\n");
  Report report;
  check::checkLinkTrace(events, report, &topology);
  EXPECT_TRUE(report.hasCode("V021")) << report.format();
}

TEST(CheckTrace, V022DoubleDownIsError) {
  const auto events = topo::parseLinkTrace(
      "t=10 link Denver KansasCity down\n"
      "t=20 link Denver KansasCity down\n");
  Report report;
  check::checkLinkTrace(events, report);
  EXPECT_TRUE(report.hasCode("V022")) << report.format();
  EXPECT_TRUE(report.hasErrors());
}

TEST(CheckTrace, V022RedundantUpIsWarning) {
  const auto events =
      topo::parseLinkTrace("t=10 link Denver KansasCity up\n");
  Report report;
  check::checkLinkTrace(events, report);
  EXPECT_TRUE(report.hasCode("V022")) << report.format();
  EXPECT_FALSE(report.hasErrors());
}

// ---------------------------------------------------------------------------
// Node / link / scheduler configs (V030-V033)

TEST(CheckConfigs, V030OvercommittedCpuReservations) {
  auto mirror_a = topo::abileneMirrorSpec("heavy-a");
  auto mirror_b = topo::abileneMirrorSpec("heavy-b");
  std::vector<check::SliceDemand> demands = {
      {&mirror_a, core::ResourceSpec{0.6, false, 0.0}},
      {&mirror_b, core::ResourceSpec{0.6, false, 0.0}},
  };
  Report report;
  check::checkCpuReservations(demands, report);
  EXPECT_TRUE(report.hasCode("V030")) << report.format();

  // The paper's PL-VINI configuration (0.25 each) fits.
  demands[0].resources.cpu_reservation = 0.25;
  demands[1].resources.cpu_reservation = 0.25;
  Report clean;
  check::checkCpuReservations(demands, clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

TEST(CheckConfigs, V031InvalidLinkParameters) {
  phys::LinkConfig bad;
  bad.bandwidth_bps = 0.0;
  bad.loss_rate = 1.5;
  Report report;
  check::checkLinkConfig(bad, "link under test", report);
  EXPECT_TRUE(report.hasCode("V031")) << report.format();

  Report clean;
  check::checkLinkConfig(phys::LinkConfig{}, "default link", clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

TEST(CheckConfigs, V032NegativePropagationDelay) {
  phys::LinkConfig bad;
  bad.propagation = -5 * sim::kMillisecond;
  Report report;
  check::checkLinkConfig(bad, "link under test", report);
  EXPECT_TRUE(report.hasCode("V032")) << report.format();
}

TEST(CheckConfigs, V033NonpositiveSchedulerParameters) {
  cpu::SchedulerConfig bad;
  bad.timeslice = 0;
  Report report;
  check::checkSchedulerConfig(bad, "node under test", report);
  EXPECT_TRUE(report.hasCode("V033")) << report.format();

  Report clean;
  check::checkSchedulerConfig(cpu::SchedulerConfig{}, "default node", clean);
  EXPECT_TRUE(clean.empty()) << clean.format();
}

TEST(CheckConfigs, LivePhysNetworkAuditIsCleanForAbilene) {
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  topo::buildAbilene(net);
  Report report;
  check::checkPhysNetworkConfigs(net, report);
  EXPECT_TRUE(report.empty()) << report.format();
}

// ---------------------------------------------------------------------------
// Runtime invariant audits (V100-V103); compiled in under VINI_AUDIT.

TEST(Audit, CollectorCapturesReports) {
  check::ScopedAuditCollector collector;
  check::auditReport({Severity::kError, "V100", "event 7",
                      "event timestamp 5 is earlier than now() 9"});
  check::auditReport({Severity::kError, "V102", "phys channel",
                      "queued_bytes counter 10 != 0 bytes actually queued"});
  EXPECT_TRUE(collector.report().hasCode("V100"));
  EXPECT_TRUE(collector.report().hasCode("V102"));
  EXPECT_EQ(collector.report().size(), 2u);
}

TEST(Audit, V101CancelAfterFire) {
#if !VINI_AUDIT_ENABLED
  GTEST_SKIP() << "build has VINI_AUDIT off";
#else
  check::ScopedAuditCollector collector;
  sim::EventQueue queue;
  const sim::EventId id = queue.schedule(10, [] {});
  queue.run();
  EXPECT_FALSE(queue.cancel(id));  // deterministic: fired means false
  EXPECT_TRUE(collector.report().hasCode("V101"))
      << collector.report().format();
  // Cancelling an id that already fired is a benign race in component
  // teardown ordering, so it stays a warning.
  EXPECT_FALSE(collector.report().hasErrors());

  // An id this queue never issued, by contrast, means the caller is
  // holding a corrupted or foreign handle: that is an error.
  sim::EventQueue fresh;
  check::ScopedAuditCollector loud;
  EXPECT_FALSE(fresh.cancel(12345));
  EXPECT_TRUE(loud.report().hasCode("V101")) << loud.report().format();
  EXPECT_TRUE(loud.report().hasErrors()) << loud.report().format();
#endif
}

TEST(Audit, V103OvercommittedNodeReservations) {
#if !VINI_AUDIT_ENABLED
  GTEST_SKIP() << "build has VINI_AUDIT off";
#else
  check::ScopedAuditCollector collector;
  sim::EventQueue queue;
  cpu::Scheduler scheduler(queue, cpu::SchedulerConfig{});
  scheduler.createProcess(cpu::ProcessConfig{"a", 0.7, false});
  EXPECT_TRUE(collector.report().empty()) << collector.report().format();
  scheduler.createProcess(cpu::ProcessConfig{"b", 0.7, false});
  EXPECT_TRUE(collector.report().hasCode("V103"))
      << collector.report().format();
#endif
}

TEST(Audit, QuietOnHealthyRun) {
#if !VINI_AUDIT_ENABLED
  GTEST_SKIP() << "build has VINI_AUDIT off";
#else
  check::ScopedAuditCollector collector;
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  topo::buildAbilene(net);
  // Drive some traffic-free event churn: link flaps and timers.
  phys::PhysLink* span = net.linkBetween("Denver", "KansasCity");
  ASSERT_NE(span, nullptr);
  queue.schedule(10 * sim::kSecond, [&] { span->setUp(false); });
  queue.schedule(20 * sim::kSecond, [&] { span->setUp(true); });
  queue.runUntil(30 * sim::kSecond);
  EXPECT_TRUE(collector.report().empty()) << collector.report().format();
#endif
}

}  // namespace
