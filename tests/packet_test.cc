// Unit and property tests for addresses, prefixes, checksums, headers,
// and the Packet value type (including tunnel encapsulation).
#include <gtest/gtest.h>

#include <random>

#include "packet/checksum.h"
#include "packet/headers.h"
#include "packet/ip_address.h"
#include "packet/packet.h"

namespace vini::packet {
namespace {

TEST(IpAddress, ParseAndFormat) {
  auto a = IpAddress::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->str(), "10.1.2.3");
  EXPECT_EQ(a->value(), 0x0A010203u);
  EXPECT_EQ(IpAddress(198, 32, 154, 250).str(), "198.32.154.250");
}

TEST(IpAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2.256").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2.3x").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
}

TEST(IpAddress, MustParseThrows) {
  EXPECT_THROW(IpAddress::mustParse("nope"), std::invalid_argument);
  EXPECT_EQ(IpAddress::mustParse("1.2.3.4").value(), 0x01020304u);
}

TEST(IpAddress, Ordering) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_EQ(IpAddress(10, 0, 0, 1), IpAddress::mustParse("10.0.0.1"));
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(IpAddress(10, 1, 2, 3), 16);
  EXPECT_EQ(p.str(), "10.1.0.0/16");
  EXPECT_EQ(p.mask(), 0xFFFF0000u);
}

TEST(Prefix, ContainsAndCovers) {
  const Prefix ten8 = Prefix::mustParse("10.0.0.0/8");
  EXPECT_TRUE(ten8.contains(IpAddress(10, 255, 1, 2)));
  EXPECT_FALSE(ten8.contains(IpAddress(11, 0, 0, 1)));
  EXPECT_TRUE(ten8.covers(Prefix::mustParse("10.1.0.0/16")));
  EXPECT_FALSE(Prefix::mustParse("10.1.0.0/16").covers(ten8));
  EXPECT_TRUE(ten8.covers(ten8));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  const Prefix def = Prefix::defaultRoute();
  EXPECT_EQ(def.length(), 0);
  EXPECT_TRUE(def.contains(IpAddress(1, 2, 3, 4)));
  EXPECT_TRUE(def.contains(IpAddress(255, 255, 255, 255)));
}

TEST(Prefix, Slash32ContainsOnlyItself) {
  const Prefix host = Prefix::mustParse("10.1.1.1/32");
  EXPECT_TRUE(host.contains(IpAddress(10, 1, 1, 1)));
  EXPECT_FALSE(host.contains(IpAddress(10, 1, 1, 2)));
}

TEST(Prefix, HostAt) {
  const Prefix p = Prefix::mustParse("10.1.224.0/30");
  EXPECT_EQ(p.hostAt(1).str(), "10.1.224.1");
  EXPECT_EQ(p.hostAt(2).str(), "10.1.224.2");
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("bogus/8").has_value());
}

TEST(Checksum, Rfc1071Examples) {
  // Classic example: checksum of 00 01 f2 03 f4 f5 f6 f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(onesComplementSum(data), 0xddf2);
  EXPECT_EQ(internetChecksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300.
  EXPECT_EQ(onesComplementSum(data), 0x0402);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(20);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    data[10] = data[11] = 0;
    const std::uint16_t csum = internetChecksum(data);
    // Change the 16-bit word at offset 4.
    const std::uint16_t old_word =
        static_cast<std::uint16_t>((data[4] << 8) | data[5]);
    const std::uint16_t new_word = static_cast<std::uint16_t>(rng());
    data[4] = static_cast<std::uint8_t>(new_word >> 8);
    data[5] = static_cast<std::uint8_t>(new_word & 0xff);
    const std::uint16_t direct = internetChecksum(data);
    const std::uint16_t incremental =
        incrementalChecksumUpdate(csum, old_word, new_word);
    EXPECT_EQ(incremental, direct);
  }
}

TEST(Checksum, Incremental32MatchesRecompute) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(20);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::uint16_t csum = internetChecksum(data);
    const std::uint32_t old_val =
        (std::uint32_t{data[12]} << 24) | (std::uint32_t{data[13]} << 16) |
        (std::uint32_t{data[14]} << 8) | data[15];
    const std::uint32_t new_val = rng();
    data[12] = static_cast<std::uint8_t>(new_val >> 24);
    data[13] = static_cast<std::uint8_t>(new_val >> 16);
    data[14] = static_cast<std::uint8_t>(new_val >> 8);
    data[15] = static_cast<std::uint8_t>(new_val);
    EXPECT_EQ(incrementalChecksumUpdate32(csum, old_val, new_val),
              internetChecksum(data));
  }
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.src = IpAddress(10, 1, 2, 3);
  h.dst = IpAddress(192, 168, 0, 1);
  h.proto = IpProto::kTcp;
  h.ttl = 17;
  h.tos = 0x10;
  h.id = 0xBEEF;
  h.total_length = 1500;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), Ipv4Header::kWireBytes);
  auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->proto, h.proto);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->tos, h.tos);
  EXPECT_EQ(parsed->id, h.id);
  EXPECT_EQ(parsed->total_length, h.total_length);
}

TEST(Ipv4Header, ParseRejectsCorruption) {
  Ipv4Header h;
  h.src = IpAddress(1, 2, 3, 4);
  h.dst = IpAddress(5, 6, 7, 8);
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire[8] ^= 0xFF;  // corrupt the TTL: checksum must fail
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
  EXPECT_FALSE(Ipv4Header::parse(std::span(wire).subspan(0, 10)).has_value());
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    TcpFlags f = TcpFlags::fromByte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(f.toByte(), b);
  }
}

TEST(TcpHeader, SerializeParseRoundTrip) {
  TcpHeader h;
  h.src_port = 5001;
  h.dst_port = 80;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flags.syn = true;
  h.flags.ack = true;
  h.window = 16384;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), TcpHeader::kWireBytes);
  auto parsed = TcpHeader::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_EQ(parsed->flags, h.flags);
  EXPECT_EQ(parsed->window, h.window);
}

TEST(IcmpHeader, SerializeParseRoundTripAndChecksum) {
  IcmpHeader h;
  h.type = IcmpHeader::kEchoRequest;
  h.ident = 77;
  h.seq = 12;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  auto parsed = IcmpHeader::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ident, 77);
  EXPECT_EQ(parsed->seq, 12);
  wire[4] ^= 0x01;
  EXPECT_FALSE(IcmpHeader::parse(wire).has_value());
}

TEST(Packet, UdpSizes) {
  const Packet p = Packet::udp(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2),
                               4000, 5000, 1430);
  EXPECT_EQ(p.l4HeaderBytes(), 8u);
  EXPECT_EQ(p.l4PayloadBytes(), 1430u);
  EXPECT_EQ(p.ipPacketBytes(), 20u + 8u + 1430u);
  EXPECT_EQ(p.wireBytes(), p.ipPacketBytes() + kEthernetOverheadOnWire);
  EXPECT_EQ(p.udpHeader()->length, 8u + 1430u);
}

TEST(Packet, EncapsulationAccountsInnerSize) {
  auto inner = std::make_shared<const Packet>(
      Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2), 1, 2, 100));
  const Packet outer = Packet::encapsulateUdp(
      IpAddress(198, 32, 154, 10), IpAddress(198, 32, 154, 11), 33001, 33001,
      inner);
  EXPECT_EQ(outer.l4PayloadBytes(), inner->ipPacketBytes());
  EXPECT_EQ(outer.ipPacketBytes(), 28u + 128u);
}

TEST(Packet, NestedEncapsulationAddsEachLayer) {
  auto inner = std::make_shared<const Packet>(
      Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2), 1, 2, 100));
  auto mid = std::make_shared<const Packet>(Packet::encapsulateUdp(
      IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2), 10, 11, inner,
      OpenVpnHeader::kWireBytes));
  const Packet outer = Packet::encapsulateUdp(IpAddress(3, 3, 3, 3),
                                              IpAddress(4, 4, 4, 4), 20, 21, mid);
  EXPECT_EQ(outer.ipPacketBytes(),
            28u + (28u + OpenVpnHeader::kWireBytes + (28u + 100u)));
}

TEST(Packet, MetaRidesAlongEncapsulation) {
  Packet inner = Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2), 1,
                             2, 100);
  inner.meta.app_seq = 42;
  inner.meta.app_send_time = 7;
  const Packet outer = Packet::encapsulateUdp(
      IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2), 10, 11,
      std::make_shared<const Packet>(std::move(inner)));
  EXPECT_EQ(outer.meta.app_seq, 42u);
  EXPECT_EQ(outer.meta.app_send_time, 7);
}

TEST(Packet, IcmpEchoReplySwapsAddresses) {
  const Packet request = Packet::icmpEchoRequest(
      IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2), 7, 3, 56);
  const Packet reply = Packet::icmpEchoReply(request);
  EXPECT_EQ(reply.ip.src, request.ip.dst);
  EXPECT_EQ(reply.ip.dst, request.ip.src);
  EXPECT_EQ(reply.icmpHeader()->type, IcmpHeader::kEchoReply);
  EXPECT_EQ(reply.icmpHeader()->seq, 3);
  EXPECT_EQ(reply.payload_bytes, 56u);
}

TEST(Packet, IcmpErrorInheritsMetaButNotTraceId) {
  // Measurement metadata must ride along so traceroute can correlate
  // the error with its probe, but the causal trace id must not: the
  // error is a new packet, and icmpError itself guarantees that — call
  // sites are no longer expected to clear it.
  Packet original =
      Packet::udp(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 9), 33434, 33434, 32);
  original.meta.flow_id = 5;
  original.meta.app_seq = 12;
  original.meta.app_send_time = 99;
  original.meta.trace_id = 0xdeadbeef;
  const Packet error =
      Packet::icmpError(IpAddress(10, 0, 0, 3), 11, 0, original);
  EXPECT_EQ(error.meta.flow_id, 5u);
  EXPECT_EQ(error.meta.app_seq, 12u);
  EXPECT_EQ(error.meta.app_send_time, 99);
  EXPECT_EQ(error.meta.trace_id, 0u);
  EXPECT_EQ(error.ip.src, IpAddress(10, 0, 0, 3));
  EXPECT_EQ(error.ip.dst, original.ip.src);
}

TEST(Packet, SerializeParseRoundTripUdp) {
  Packet p = Packet::udp(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2), 1000,
                         2000, 64);
  const auto wire = p.serialize();
  EXPECT_EQ(wire.size(), p.ipPacketBytes());
  auto parsed = Packet::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, p.ip.src);
  EXPECT_EQ(parsed->udpHeader()->dst_port, 2000);
  EXPECT_EQ(parsed->payload_bytes, 64u);
}

TEST(Packet, SerializeParseRoundTripTcpRandomized) {
  std::mt19937 rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    TcpHeader h;
    h.src_port = static_cast<std::uint16_t>(rng());
    h.dst_port = static_cast<std::uint16_t>(rng());
    h.seq = rng();
    h.ack = rng();
    h.window = static_cast<std::uint16_t>(rng());
    h.flags = TcpFlags::fromByte(static_cast<std::uint8_t>(rng() & 0x1f));
    Packet p = Packet::tcp(IpAddress(rng()), IpAddress(rng()), h,
                           rng() % 1400);
    auto parsed = Packet::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tcpHeader()->seq, h.seq);
    EXPECT_EQ(parsed->tcpHeader()->ack, h.ack);
    EXPECT_EQ(parsed->tcpHeader()->flags, h.flags);
    EXPECT_EQ(parsed->payload_bytes, p.payload_bytes);
    EXPECT_EQ(parsed->ip.src, p.ip.src);
    EXPECT_EQ(parsed->ip.dst, p.ip.dst);
  }
}

TEST(Packet, SerializedTunnelParsesToOuter) {
  auto inner = std::make_shared<const Packet>(
      Packet::udp(IpAddress(10, 1, 0, 2), IpAddress(10, 1, 1, 2), 1, 2, 100));
  const Packet outer = Packet::encapsulateUdp(
      IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2), 10, 11, inner);
  auto parsed = Packet::parse(outer.serialize());
  ASSERT_TRUE(parsed.has_value());
  // The outer parses as a UDP datagram whose payload is the inner packet.
  EXPECT_EQ(parsed->payload_bytes, inner->ipPacketBytes());
  // And the payload itself parses as the inner packet.
  const auto wire = outer.serialize();
  auto inner_parsed = Packet::parse(
      std::span(wire).subspan(Ipv4Header::kWireBytes + UdpHeader::kWireBytes));
  ASSERT_TRUE(inner_parsed.has_value());
  EXPECT_EQ(inner_parsed->ip.dst, inner->ip.dst);
}

TEST(Packet, SummaryMentionsProtocolAndPorts) {
  const Packet p = Packet::udp(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2),
                               1000, 2000, 64);
  const std::string s = p.summary();
  EXPECT_NE(s.find("udp"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(s.find("1000>2000"), std::string::npos);
}

struct SizeCase {
  std::size_t payload;
};

class PacketSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketSizeSweep, WireSizeIsMonotonicInPayload) {
  const std::size_t payload = GetParam();
  const Packet p = Packet::udp(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2),
                               1, 2, payload);
  EXPECT_EQ(p.ipPacketBytes(), 28u + payload);
  EXPECT_EQ(p.serialize().size(), p.ipPacketBytes());
}

INSTANTIATE_TEST_SUITE_P(Payloads, PacketSizeSweep,
                         ::testing::Values(0, 1, 56, 512, 1430, 1472));

TEST(PacketFuzz, RandomBytesNeverCrashTheParser) {
  // Parsers face bytes from the wire; arbitrary garbage must be rejected
  // gracefully, never read out of bounds.
  std::mt19937 rng(20060911);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> data(rng() % 128);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    (void)Packet::parse(data);
    (void)Ipv4Header::parse(data);
    (void)UdpHeader::parse(data);
    (void)TcpHeader::parse(data);
    (void)IcmpHeader::parse(data);
    (void)OpenVpnHeader::parse(data);
  }
  SUCCEED();
}

TEST(PacketFuzz, BitFlippedValidPacketsParseOrFailCleanly) {
  // Take a valid serialized packet, flip one bit anywhere, and parse:
  // either it fails (checksum) or it parses — but never crashes, and an
  // IP-header flip must be caught by the checksum.
  std::mt19937 rng(7);
  const Packet original = Packet::udp(IpAddress(10, 1, 0, 2),
                                      IpAddress(10, 1, 1, 2), 1000, 2000, 64);
  const auto wire = original.serialize();
  int header_flips_caught = 0;
  int header_flips = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = wire;
    const std::size_t bit = rng() % (mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto parsed = Packet::parse(mutated);
    if (bit / 8 < Ipv4Header::kWireBytes) {
      ++header_flips;
      if (!parsed.has_value()) ++header_flips_caught;
    }
  }
  ASSERT_GT(header_flips, 100);
  // The Internet checksum catches every single-bit header error.
  EXPECT_EQ(header_flips_caught, header_flips);
}

}  // namespace
}  // namespace vini::packet
