// The fault layer: schedule round trips, supervised restarts, and
// recovery of every protocol the chaos campaigns break.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "app/iperf.h"
#include "check/checkers.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/supervisor.h"
#include "overlay/openvpn.h"
#include "topo/failure_trace.h"
#include "topo/worlds.h"
#include "xorp/bgp.h"

namespace vini {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

// ---------------------------------------------------------------------------
// Trace format

fault::FaultSchedule everyKindSchedule() {
  fault::FaultSchedule schedule;
  schedule.srlgs["west"] = {{"Seattle", "Sunnyvale"}, {"Seattle", "Denver"}};
  auto add = [&schedule](double t, fault::FaultKind kind, std::string a,
                         std::string b = "") {
    fault::FaultEvent event;
    event.at_seconds = t;
    event.kind = kind;
    event.a = std::move(a);
    event.b = std::move(b);
    return &(schedule.events.emplace_back(event));
  };
  add(1.0, fault::FaultKind::kLinkDown, "Denver", "KansasCity");
  auto* degrade =
      add(2.5, fault::FaultKind::kLinkDegrade, "Chicago", "NewYork");
  degrade->degrade.loss_rate = 0.125;
  degrade->degrade.delay_seconds = 0.05;
  degrade->degrade.bandwidth_bps = 1.0e7;
  add(3.0, fault::FaultKind::kSrlgDown, "west");
  add(4.0, fault::FaultKind::kNodeCrash, "Houston");
  auto* kill = add(5.0, fault::FaultKind::kProcKill, "Atlanta");
  kill->proc = fault::ProcClass::kBgp;
  add(6.0, fault::FaultKind::kLinkUp, "Denver", "KansasCity");
  add(7.0, fault::FaultKind::kLinkRestore, "Chicago", "NewYork");
  add(8.0, fault::FaultKind::kSrlgUp, "west");
  add(9.0, fault::FaultKind::kNodeRestart, "Houston");
  auto* restart = add(10.0, fault::FaultKind::kProcRestart, "Atlanta");
  restart->proc = fault::ProcClass::kBgp;
  return schedule;
}

TEST(FaultTrace, EmitParseRoundTripCoversEveryKind) {
  const fault::FaultSchedule schedule = everyKindSchedule();
  const std::string text = emitFaultSchedule(schedule);
  const fault::FaultSchedule parsed = fault::parseFaultSchedule(text);

  ASSERT_EQ(parsed.events.size(), schedule.events.size());
  ASSERT_EQ(parsed.srlgs.size(), 1u);
  EXPECT_EQ(parsed.srlgs.at("west"), schedule.srlgs.at("west"));
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, schedule.events[i].kind) << "event " << i;
    EXPECT_EQ(parsed.events[i].at_seconds, schedule.events[i].at_seconds);
    EXPECT_EQ(parsed.events[i].a, schedule.events[i].a);
    EXPECT_EQ(parsed.events[i].b, schedule.events[i].b);
  }
  EXPECT_EQ(parsed.events[1].degrade.loss_rate, 0.125);
  EXPECT_EQ(parsed.events[1].degrade.delay_seconds, 0.05);
  EXPECT_EQ(parsed.events[1].degrade.bandwidth_bps, 1.0e7);
  EXPECT_EQ(parsed.events[4].proc, fault::ProcClass::kBgp);

  // Emission is canonical: a second round trip is byte-identical.
  EXPECT_EQ(emitFaultSchedule(parsed), text);
}

TEST(FaultTrace, LegacyLinkTraceInterop) {
  const std::string text =
      "t=1 link A B down\n"
      "t=2 link A B up\n";
  const fault::FaultSchedule schedule = fault::parseFaultSchedule(text);
  EXPECT_TRUE(schedule.linkEventsOnly());
  const auto events = schedule.asLinkEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].up);
  EXPECT_TRUE(events[1].up);

  EXPECT_FALSE(everyKindSchedule().linkEventsOnly());
  EXPECT_THROW(everyKindSchedule().asLinkEvents(), std::runtime_error);
}

/// Expect parse to throw and the message to carry both fragments
/// (the line number and the offending text).
void expectParseError(const std::string& text, const std::string& frag1,
                      const std::string& frag2) {
  try {
    fault::parseFaultSchedule(text);
    FAIL() << "no exception for: " << text;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(frag1), std::string::npos) << what;
    EXPECT_NE(what.find(frag2), std::string::npos) << what;
  }
}

TEST(FaultTrace, ParseErrorsNameLineAndOffendingText) {
  expectParseError("t=1 link A B down\nt=zzz link A B up\n", "line 2", "zzz");
  expectParseError("\n\nt=1 frobnicate A\n", "line 3", "frobnicate");
  expectParseError("t=1 link A B sideways\n", "line 1", "sideways");
  expectParseError("t=1 node N crash extra\n", "line 1", "extra");
  expectParseError("t=1 link A B degrade loss=wat\n", "line 1", "wat");
  expectParseError("t=1 proc N dhcp kill\n", "line 1", "dhcp");
}

TEST(FaultTrace, LegacyParseErrorsNameLineAndOffendingText) {
  try {
    topo::parseLinkTrace("t=1 link A B down\nnot a trace line\n");
    FAIL() << "no exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("not a trace line"), std::string::npos) << what;
  }
  try {
    topo::parseLinkTrace("t=1x link A B down\n");
    FAIL() << "no exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("t=1x"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Generators

TEST(FaultTrace, GeneratedLinkTraceAlternatesPerLink) {
  // Satellite of the horizon fix: a link must never fail while already
  // down, for any seed — per-link events strictly alternate down/up.
  auto world = topo::makeAbileneWorld();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    topo::FailureModel model;
    model.mttf_seconds = 40.0;
    model.mttr_seconds = 30.0;  // repairs often cross the horizon
    model.seed = seed;
    const auto events = topo::generateFailureTrace(world->net, 300.0, model);
    std::map<std::pair<std::string, std::string>, bool> down;
    double last = 0.0;
    for (const auto& event : events) {
      EXPECT_GE(event.at_seconds, last);
      last = event.at_seconds;
      auto key = std::make_pair(std::min(event.a, event.b),
                                std::max(event.a, event.b));
      EXPECT_NE(down[key], !event.up)
          << "seed " << seed << ": link " << event.a << "-" << event.b
          << " repeats state at t=" << event.at_seconds;
      down[key] = !event.up;
      if (!event.up) {
        EXPECT_LT(event.at_seconds, 300.0);
      }
    }
    // Every failure before the horizon got its repair.
    for (const auto& [key, is_down] : down) {
      EXPECT_FALSE(is_down) << key.first << "-" << key.second;
    }
  }
}

TEST(FaultCampaign, GeneratedCampaignIsDeterministicAndLints) {
  fault::CampaignTargets targets;
  targets.links = {"Seattle-Sunnyvale", "Denver-KansasCity"};
  targets.nodes = {"Houston"};
  targets.proc_nodes = {"Atlanta", "Chicago"};
  targets.proc_classes = {fault::ProcClass::kOspf, fault::ProcClass::kRip};
  fault::CampaignModel model = fault::denseCampaignModel(7);
  const auto a = fault::generateFaultCampaign(targets, 200.0, model);
  const auto b = fault::generateFaultCampaign(targets, 200.0, model);
  EXPECT_EQ(emitFaultSchedule(a), emitFaultSchedule(b));
  EXPECT_FALSE(a.events.empty());

  // A generated campaign passes its own linter (no topology binding).
  check::Report report;
  check::checkFaultSchedule(a, report);
  EXPECT_FALSE(report.hasErrors()) << report.format();
}

// ---------------------------------------------------------------------------
// Static checks (V110-V113)

TEST(CheckFaultSchedule, FlagsBadDegradeAndLifecycleAndOrder) {
  fault::FaultSchedule schedule;
  fault::FaultEvent degrade;
  degrade.at_seconds = 5.0;
  degrade.kind = fault::FaultKind::kLinkDegrade;
  degrade.a = "A";
  degrade.b = "B";
  degrade.degrade.loss_rate = 1.5;  // V111
  schedule.events.push_back(degrade);
  fault::FaultEvent crash;
  crash.at_seconds = 2.0;  // V113: moves backwards
  crash.kind = fault::FaultKind::kNodeRestart;  // V112: never crashed
  crash.a = "N";
  schedule.events.push_back(crash);
  fault::FaultEvent srlg;
  srlg.at_seconds = 3.0;
  srlg.kind = fault::FaultKind::kSrlgDown;
  srlg.a = "nowhere";  // V110: undefined group
  schedule.events.push_back(srlg);

  check::Report report;
  check::checkFaultSchedule(schedule, report);
  EXPECT_TRUE(report.hasCode("V110"));
  EXPECT_TRUE(report.hasCode("V111"));
  EXPECT_TRUE(report.hasCode("V112"));
  EXPECT_TRUE(report.hasCode("V113"));
}

// ---------------------------------------------------------------------------
// Supervisor

TEST(Supervisor, BackoffIsExponentialJitteredAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::EventQueue queue;
    fault::SupervisorConfig config;
    config.seed = seed;
    fault::Supervisor supervisor(queue, config);
    int running = 1;
    supervisor.manage("p", [&running] { running = 0; },
                      [&running] { running = 1; });
    // Kill it the instant it comes back, five times over.
    for (int i = 0; i < 5; ++i) {
      supervisor.kill("p");
      EXPECT_EQ(running, 0);
      while (supervisor.pendingRestarts() > 0) queue.step();
      EXPECT_EQ(running, 1);
    }
    return supervisor.log();
  };

  const auto log_a = run(11);
  const auto log_b = run(11);
  const auto log_c = run(12);
  ASSERT_EQ(log_a.size(), 5u);
  // Bit-identical under the same seed, different under another.
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].delay, log_b[i].delay) << i;
    EXPECT_EQ(log_a[i].attempt, static_cast<int>(i) + 1);
  }
  bool any_differs = false;
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    any_differs = any_differs || log_a[i].delay != log_c[i].delay;
  }
  EXPECT_TRUE(any_differs);
  // Exponential growth despite +/-25% jitter: each consecutive failure
  // at least ~1.2x the previous mean-relative delay.
  for (std::size_t i = 1; i < log_a.size(); ++i) {
    EXPECT_GT(log_a[i].delay, log_a[i - 1].delay);
  }
}

TEST(Supervisor, HoldKeepsProcessDownUntilRelease) {
  sim::EventQueue queue;
  fault::Supervisor supervisor(queue, {});
  int running = 1;
  supervisor.manage("p", [&running] { running = 0; },
                    [&running] { running = 1; });
  supervisor.hold("p");
  EXPECT_EQ(running, 0);
  queue.runUntil(queue.now() + 600 * kSecond);
  EXPECT_EQ(running, 0);  // no restart while held
  supervisor.release("p");
  while (supervisor.pendingRestarts() > 0) queue.step();
  EXPECT_EQ(running, 1);
}

// ---------------------------------------------------------------------------
// Recovery end to end

TEST(FaultRecovery, OspfReadjacencyAfterProcKillAndRestart) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  const double now_s = sim::toSeconds(world->queue.now());

  fault::FaultInjector injector(world->schedule, world->net,
                                world->iias.get());
  fault::FaultSchedule schedule;
  fault::FaultEvent kill;
  kill.at_seconds = now_s + 1.0;
  kill.kind = fault::FaultKind::kProcKill;
  kill.a = "Fwdr";
  kill.proc = fault::ProcClass::kOspf;
  schedule.events.push_back(kill);
  fault::FaultEvent restart = kill;
  restart.at_seconds = now_s + 30.0;
  restart.kind = fault::FaultKind::kProcRestart;
  schedule.events.push_back(restart);
  injector.apply(schedule);

  // Mid-outage: the daemon is down and (past the dead interval) the
  // neighbors have torn the adjacency down.
  world->queue.runUntil(sim::fromSeconds(now_s + 25.0));
  auto* fwdr = world->router("Fwdr");
  ASSERT_NE(fwdr, nullptr);
  EXPECT_FALSE(fwdr->xorp().ospf()->running());
  EXPECT_TRUE(fwdr->xorp().ospf()->timersQuiet());

  // After the restart: full re-adjacency, routes back, from zero state.
  world->queue.runUntil(sim::fromSeconds(now_s + 31.0));
  EXPECT_TRUE(fwdr->xorp().ospf()->running());
  EXPECT_TRUE(world->runUntilConverged(120 * kSecond));
}

TEST(FaultRecovery, OpenVpnClientReconnectsAfterServerNodeCrash) {
  auto world = topo::makeDeterWorld();
  auto& net = world->net;
  auto& client_node = net.addNode("Client", IpAddress(128, 112, 93, 81));
  net.addLink(client_node, *net.nodeByName("Src"));
  auto& client_stack = world->stacks.ensure(client_node);
  overlay::OpenVpnServer server(*world->router("Src"),
                                Prefix::mustParse("10.1.250.0/24"));
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));

  overlay::OpenVpnClient client(client_stack, "cl1");
  overlay::OpenVpnReconnectConfig reconnect;
  reconnect.seed = 99;
  client.connectAsync(server, reconnect);
  const double t0 = sim::toSeconds(world->queue.now());
  world->queue.runUntil(sim::fromSeconds(t0 + 2.0));
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.reconnects(), 0u);

  // Crash the ingress node under the session; bring it back later.
  fault::Supervisor supervisor(world->queue, {});
  fault::FaultInjector injector(world->schedule, world->net,
                                world->iias.get(), &supervisor);
  fault::FaultSchedule schedule;
  fault::FaultEvent crash;
  crash.at_seconds = t0 + 5.0;
  crash.kind = fault::FaultKind::kNodeCrash;
  crash.a = "Src";
  schedule.events.push_back(crash);
  fault::FaultEvent restart = crash;
  restart.at_seconds = t0 + 60.0;
  restart.kind = fault::FaultKind::kNodeRestart;
  schedule.events.push_back(restart);
  injector.apply(schedule);

  // While the node is down the client notices the dead peer and starts
  // the reconnect loop.
  world->queue.runUntil(sim::fromSeconds(t0 + 55.0));
  EXPECT_FALSE(client.connected());
  EXPECT_GT(client.handshakeAttempts(), 1u);

  // Once it returns, the backoff'd loop re-establishes the session —
  // with the same overlay lease.
  const IpAddress lease = client.overlayAddress();
  world->queue.runUntil(sim::fromSeconds(t0 + 160.0));
  EXPECT_TRUE(client.connected());
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(client.overlayAddress(), lease);
}

TEST(FaultRecovery, DegradedLinkDropsPacketsUntilRestored) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  phys::PhysLink* link = world->net.linkBetween("Src", "Fwdr");
  ASSERT_NE(link, nullptr);
  const double base_loss = link->config().loss_rate;
  const auto drops_before = link->channelFrom(link->nodeA()).stats().loss_drops;

  fault::FaultInjector injector(world->schedule, world->net,
                                world->iias.get());
  fault::DegradeSpec spec;
  spec.loss_rate = 1.0;  // every transmission dies
  injector.degradeLink("Src", "Fwdr", spec);
  EXPECT_TRUE(link->isDegraded());
  EXPECT_EQ(link->config().loss_rate, 1.0);

  // OSPF keeps helloing into the lossy link.
  world->queue.runUntil(world->queue.now() + 30 * kSecond);
  const auto drops_during = link->channelFrom(link->nodeA()).stats().loss_drops;
  EXPECT_GT(drops_during, drops_before);

  injector.restoreLink("Src", "Fwdr");
  EXPECT_FALSE(link->isDegraded());
  EXPECT_EQ(link->config().loss_rate, base_loss);
  EXPECT_TRUE(world->runUntilConverged(120 * kSecond));
}

TEST(FaultRecovery, EveryProcessClassSurvivesKillAndSupervisedRestart) {
  // The acceptance bar: a campaign that kills (and supervises back)
  // every XORP process class ends re-converged with zero violations.
  topo::WorldOptions options;
  options.enable_rip = true;
  auto world = topo::makeDeterWorld(options);
  auto& src_bgp = world->router("Src")->xorp().enableBgp({100, 1, "bgp"});
  auto& sink_bgp = world->router("Sink")->xorp().enableBgp({200, 3, "bgp"});
  xorp::BgpProcess::connect(src_bgp, sink_bgp);
  src_bgp.originate(Prefix::mustParse("198.32.0.0/16"));
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));

  fault::ChaosOptions chaos;
  chaos.seed = 4;
  chaos.duration_seconds = 80.0;
  chaos.model = fault::denseCampaignModel(4);
  chaos.model.proc.mttf_seconds = 25.0;  // several kills per daemon
  chaos.include_link_faults = false;
  chaos.include_degrades = false;
  chaos.include_node_crashes = false;
  const fault::ChaosReport report = fault::runChaosCampaign(*world, chaos);
  EXPECT_TRUE(report.passed()) << report.format();
  for (const char* frag : {"ospf kill", "rip kill", "bgp kill",
                           "supervisor restart"}) {
    EXPECT_NE(report.event_log.find(frag), std::string::npos)
        << "missing '" << frag << "' in:\n" << report.event_log;
  }

  // Every daemon is back, with its state re-learned from scratch.
  for (const char* name : {"Src", "Fwdr", "Sink"}) {
    auto& xorp = world->router(name)->xorp();
    EXPECT_TRUE(xorp.ospf()->running()) << name;
    EXPECT_TRUE(xorp.rip()->running()) << name;
    if (xorp.bgp() != nullptr) {
      EXPECT_TRUE(xorp.bgp()->running()) << name;
    }
  }
  EXPECT_TRUE(
      sink_bgp.bestRoute(Prefix::mustParse("198.32.0.0/16")).has_value());
}

// ---------------------------------------------------------------------------
// Chaos harness

TEST(FaultRecovery, EstablishedTcpSurvivesNodeCrashAndSupervisedRestart) {
  // A long-lived TCP flow through the overlay stalls while the only
  // forwarding node is down, then resumes on the *same* connection once
  // the node restarts and the supervisor revives its daemons — no
  // reset, no re-accept.
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  const double t0 = sim::toSeconds(world->queue.now());

  app::IperfTcpServer iperf_server(world->stack("Sink"), 5001);
  app::IperfTcpClient iperf_client(world->stack("Src"), world->tapOf("Sink"),
                                   5001, 1, {}, world->tapOf("Src"));
  iperf_client.start(sim::fromSeconds(150.0));
  world->queue.runUntil(sim::fromSeconds(t0 + 10.0));
  const std::uint64_t before_crash = iperf_server.bytesReceived();
  ASSERT_GT(before_crash, 0u);
  ASSERT_EQ(iperf_client.streams().size(), 1u);
  ASSERT_EQ(iperf_client.streams()[0]->state(), tcpip::TcpState::kEstablished);

  fault::Supervisor supervisor(world->queue, {});
  fault::FaultInjector injector(world->schedule, world->net,
                                world->iias.get(), &supervisor);
  fault::FaultSchedule schedule;
  fault::FaultEvent crash;
  crash.at_seconds = t0 + 12.0;
  crash.kind = fault::FaultKind::kNodeCrash;
  crash.a = "Fwdr";
  schedule.events.push_back(crash);
  fault::FaultEvent restart = crash;
  restart.at_seconds = t0 + 40.0;
  restart.kind = fault::FaultKind::kNodeRestart;
  schedule.events.push_back(restart);
  injector.apply(schedule);

  // Mid-outage: the flow is stalled but still established — TCP's
  // retransmission backoff is riding out the blackhole.
  world->queue.runUntil(sim::fromSeconds(t0 + 38.0));
  EXPECT_EQ(iperf_client.streams()[0]->state(),
            tcpip::TcpState::kEstablished);

  // After restart + supervised daemon revival + OSPF re-adjacency the
  // same connection moves bytes again.
  world->queue.runUntil(sim::fromSeconds(t0 + 140.0));
  const std::uint64_t after_recovery = iperf_server.bytesReceived();
  EXPECT_GT(after_recovery, before_crash);
  EXPECT_EQ(iperf_client.streams()[0]->state(),
            tcpip::TcpState::kEstablished);
  EXPECT_EQ(iperf_server.connectionsAccepted(), 1u);  // never re-accepted
  EXPECT_GT(iperf_client.retransmits(), 0u);
}

TEST(Chaos, ShortCampaignIsBitReproducibleAndClean) {
  auto run = [] {
    auto world = topo::makeDeterWorld();
    fault::ChaosOptions options;
    options.seed = 3;
    options.duration_seconds = 30.0;
    options.model = fault::denseCampaignModel(3);
    return fault::runChaosCampaign(*world, options);
  };
  const fault::ChaosReport a = run();
  const fault::ChaosReport b = run();
  EXPECT_TRUE(a.passed()) << a.format();
  EXPECT_EQ(a.format(), b.format());
  EXPECT_FALSE(a.event_log.empty());
}

}  // namespace
}  // namespace vini
