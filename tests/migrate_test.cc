// Live slice migration: checkpoint grammar round trips, switchover
// under traffic, rollback on a held-down destination, budget
// enforcement, and bit-reproducibility of migration-bearing campaigns.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "app/iperf.h"
#include "app/ping.h"
#include "fault/chaos.h"
#include "migrate/checkpoint.h"
#include "migrate/manager.h"
#include "overlay/openvpn.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using packet::IpAddress;
using packet::Prefix;
using sim::kSecond;

topo::WorldOptions spareOptions() {
  topo::WorldOptions options;
  options.spare_nodes = 1;
  return options;
}

// ---------------------------------------------------------------------------
// Checkpoint grammar

TEST(Checkpoint, CaptureEmitParseRoundTripsByteIdentically) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  const migrate::RouterCheckpoint cp =
      migrate::captureCheckpoint(*world->router("Fwdr"));
  EXPECT_EQ(cp.router, "Fwdr");
  EXPECT_TRUE(cp.has_ospf);
  EXPECT_FALSE(cp.ospf.lsdb.empty());
  EXPECT_FALSE(cp.fib.empty());

  const std::string wire = migrate::emitCheckpoint(cp);
  const migrate::RouterCheckpoint parsed = migrate::parseCheckpoint(wire);
  EXPECT_EQ(migrate::emitCheckpoint(parsed), wire);
  EXPECT_EQ(parsed.router, cp.router);
  EXPECT_EQ(parsed.ospf.lsdb.size(), cp.ospf.lsdb.size());
  EXPECT_EQ(parsed.fib.size(), cp.fib.size());
}

TEST(Checkpoint, LeasesRideTheWireFormat) {
  migrate::RouterCheckpoint cp;
  cp.router = "Ingress";
  cp.has_leases = true;
  overlay::OpenVpnLease lease;
  lease.real_addr = IpAddress(203, 0, 113, 5);
  lease.real_port = 4242;
  lease.overlay_addr = IpAddress(10, 1, 250, 10);
  lease.session_id = 77;
  cp.leases.push_back(lease);
  cp.lease_next_host = 11;

  const migrate::RouterCheckpoint parsed =
      migrate::parseCheckpoint(migrate::emitCheckpoint(cp));
  ASSERT_TRUE(parsed.has_leases);
  ASSERT_EQ(parsed.leases.size(), 1u);
  EXPECT_EQ(parsed.leases[0].real_addr, lease.real_addr);
  EXPECT_EQ(parsed.leases[0].real_port, lease.real_port);
  EXPECT_EQ(parsed.leases[0].overlay_addr, lease.overlay_addr);
  EXPECT_EQ(parsed.leases[0].session_id, lease.session_id);
  EXPECT_EQ(parsed.lease_next_host, 11u);
}

/// Expect parseCheckpoint to throw, naming the 1-based line and a
/// fragment of the complaint.
void expectParseError(const std::string& text, const std::string& line,
                      const std::string& frag) {
  try {
    migrate::parseCheckpoint(text);
    FAIL() << "no exception for: " << text;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checkpoint line " + line), std::string::npos) << what;
    EXPECT_NE(what.find(frag), std::string::npos) << what;
  }
}

TEST(Checkpoint, ParseErrorsNameLineAndOffendingText) {
  expectParseError("bogus header\n", "1", "header");
  expectParseError("vini-checkpoint v2\n", "1", "unsupported version");
  expectParseError("vini-checkpoint v1\nrouter R\nfrobnicate\nend\n", "3",
                   "frobnicate");
  expectParseError("vini-checkpoint v1\nrouter R\nlsa 10.0.0.1 3\nend\n", "3",
                   "'lsa' before 'ospf'");
  expectParseError(
      "vini-checkpoint v1\nrouter R\nfib 10.0.0.0/33 10.0.0.1\nend\n", "3",
      "malformed prefix");
  expectParseError("vini-checkpoint v1\nrouter R\nend\nrouter S\n", "4",
                   "content after 'end'");
  expectParseError("vini-checkpoint v1\nrouter R\n", "3", "missing 'end'");
  expectParseError("vini-checkpoint v1\nend\n", "3", "missing 'router");
}

// ---------------------------------------------------------------------------
// Live switchover

TEST(Migration, RouterMovesToSpareUnderTrafficWithinBudget) {
  auto world = topo::makeDeterWorld(spareOptions());
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  migrate::MigrationManager manager(world->queue, world->net, *world->vini,
                                    *world->iias, {});

  app::IperfTcpServer iperf_server(world->stack("Sink"), 5001);
  app::IperfTcpClient iperf_client(world->stack("Src"), world->tapOf("Sink"),
                                   5001, 1, {}, world->tapOf("Src"));
  iperf_client.start(sim::fromSeconds(90.0));
  const double t0 = sim::toSeconds(world->queue.now());
  world->queue.runUntil(sim::fromSeconds(t0 + 10.0));
  const std::uint64_t before = iperf_server.bytesReceived();
  ASSERT_GT(before, 0u);

  manager.requestMigration("Fwdr", "Spare1", 250.0);
  world->queue.runUntil(sim::fromSeconds(t0 + 80.0));

  ASSERT_EQ(manager.records().size(), 1u);
  const migrate::MigrationRecord& record = manager.records()[0];
  EXPECT_TRUE(record.completed) << record.failure;
  EXPECT_FALSE(record.rolled_back);
  EXPECT_EQ(record.from, "Fwdr");
  EXPECT_EQ(record.to, "Spare1");
  EXPECT_LE(record.downtime_ms, record.budget_ms);
  EXPECT_EQ(manager.activeMigrations(), 0u);
  EXPECT_EQ(world->router("Fwdr")->vnode().physNode().name(), "Spare1");

  // The established flow rode through the freeze window.
  EXPECT_GT(iperf_server.bytesReceived(), before);
  EXPECT_EQ(iperf_server.connectionsAccepted(), 1u);
  EXPECT_EQ(iperf_client.streams()[0]->state(), tcpip::TcpState::kEstablished);

  check::Report audit;
  manager.auditInvariants(audit);
  EXPECT_FALSE(audit.hasErrors()) << audit.format();
  EXPECT_NE(manager.reportJson().find("\"completed\":true"), std::string::npos);
}

TEST(Migration, HeldDownDestinationRollsBackWithinBudgetLeasesIntact) {
  auto world = topo::makeDeterWorld(spareOptions());
  auto& net = world->net;
  auto& client_node = net.addNode("Client", IpAddress(128, 112, 93, 81));
  net.addLink(client_node, *net.nodeByName("Src"));
  auto& client_stack = world->stacks.ensure(client_node);
  overlay::OpenVpnServer server(*world->router("Src"),
                                Prefix::mustParse("10.1.250.0/24"));
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  overlay::OpenVpnClient client(client_stack, "cl1");
  client.connectAsync(server);
  const double t0 = sim::toSeconds(world->queue.now());
  world->queue.runUntil(sim::fromSeconds(t0 + 2.0));
  ASSERT_TRUE(client.connected());
  const IpAddress lease = client.overlayAddress();

  migrate::MigrationManager manager(world->queue, world->net, *world->vini,
                                    *world->iias, {});
  manager.attachIngress(&server, {&client});
  manager.setNodeProbe([](const std::string&) { return false; });  // held down
  manager.requestMigration("Src", "Spare1", 400.0);
  world->queue.runUntil(sim::fromSeconds(t0 + 60.0));

  ASSERT_EQ(manager.records().size(), 1u);
  const migrate::MigrationRecord& record = manager.records()[0];
  EXPECT_TRUE(record.rolled_back);
  EXPECT_FALSE(record.completed);
  EXPECT_FALSE(record.failure.empty());
  EXPECT_LE(record.downtime_ms, record.budget_ms);  // budget held on rollback
  EXPECT_EQ(world->router("Src")->vnode().physNode().name(), "Src");

  // Original leases intact: same overlay address, same session, no
  // re-handshake needed to keep the session alive.
  EXPECT_EQ(server.sessionCount(), 1u);
  EXPECT_EQ(client.overlayAddress(), lease);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.reconnects(), 0u);

  check::Report audit;
  manager.auditInvariants(audit);
  EXPECT_FALSE(audit.hasErrors()) << audit.format();
}

TEST(Migration, IngressLeasesFollowTheServerAcrossAMove) {
  auto world = topo::makeDeterWorld(spareOptions());
  auto& net = world->net;
  auto& client_node = net.addNode("Client", IpAddress(128, 112, 93, 81));
  net.addLink(client_node, *net.nodeByName("Src"));
  auto& client_stack = world->stacks.ensure(client_node);
  overlay::OpenVpnServer server(*world->router("Src"),
                                Prefix::mustParse("10.1.250.0/24"));
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  overlay::OpenVpnClient client(client_stack, "cl1");
  client.connectAsync(server);
  const double t0 = sim::toSeconds(world->queue.now());
  world->queue.runUntil(sim::fromSeconds(t0 + 2.0));
  ASSERT_TRUE(client.connected());
  const IpAddress lease = client.overlayAddress();
  const IpAddress old_server_addr = server.serverAddress();

  migrate::MigrationManager manager(world->queue, world->net, *world->vini,
                                    *world->iias, {});
  manager.attachIngress(&server, {&client});
  manager.requestMigration("Src", "Spare1");
  world->queue.runUntil(sim::fromSeconds(t0 + 60.0));

  ASSERT_EQ(manager.records().size(), 1u);
  EXPECT_TRUE(manager.records()[0].completed)
      << manager.records()[0].failure;
  EXPECT_NE(server.serverAddress(), old_server_addr);  // new substrate home
  EXPECT_EQ(server.sessionCount(), 1u);
  EXPECT_EQ(client.overlayAddress(), lease);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.reconnects(), 0u);  // rehomed, never re-handshook

  // The tunnel still carries traffic from the client into the overlay.
  app::Pinger::Options popt;
  popt.count = 5;
  popt.source = client.overlayAddress();
  app::Pinger pinger(client_stack, world->tapOf("Sink"), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 5u);
}

TEST(Migration, UnknownRouterOrDestinationThrows) {
  auto world = topo::makeDeterWorld(spareOptions());
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  migrate::MigrationManager manager(world->queue, world->net, *world->vini,
                                    *world->iias, {});
  EXPECT_THROW(manager.requestMigration("NoSuchRouter", "Spare1"),
               std::runtime_error);
  EXPECT_THROW(manager.requestMigration("Fwdr", "NoSuchNode"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Chaos integration

TEST(Migration, ChaosCampaignWithMigrationsIsBitReproducible) {
  auto run = [] {
    auto world = topo::makeDeterWorld(spareOptions());
    fault::ChaosOptions options;
    options.seed = 1;
    options.duration_seconds = 60.0;
    options.model = fault::denseCampaignModel(1);
    options.include_migrations = true;
    return fault::runChaosCampaign(*world, options);
  };
  const fault::ChaosReport a = run();
  const fault::ChaosReport b = run();
  EXPECT_TRUE(a.passed()) << a.format();
  EXPECT_EQ(a.format(), b.format());
  EXPECT_EQ(a.migration_json, b.migration_json);
  EXPECT_TRUE(a.migrations_enabled);
  EXPECT_GE(a.migrations_requested, 1u);
  EXPECT_NE(a.event_log.find("migrate"), std::string::npos);
}

TEST(Migration, SparesDoNotPerturbMigrationFreeCampaigns) {
  // A world with an idle spare runs the exact same campaign as one
  // without: spare links carry prohibitive weight and the migrate
  // class is appended after every other draw.
  auto run = [](int spares) {
    topo::WorldOptions options;
    options.spare_nodes = spares;
    auto world = topo::makeDeterWorld(options);
    fault::ChaosOptions chaos;
    chaos.seed = 3;
    chaos.duration_seconds = 30.0;
    chaos.model = fault::denseCampaignModel(3);
    return fault::runChaosCampaign(*world, chaos);
  };
  const fault::ChaosReport without = run(0);
  const fault::ChaosReport with = run(1);
  EXPECT_TRUE(without.passed()) << without.format();
  // The spare's own links join the fault target list, so event counts
  // may differ — but the spare never carries overlay traffic, so both
  // campaigns stay clean and converge.
  EXPECT_TRUE(with.passed()) << with.format();
}

}  // namespace
}  // namespace vini
