// Tests for the paper's Section 6/7 extension machinery: atomic
// protocol switchover, upcall-driven fast failover, and per-slice link
// bandwidth shaping.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/ping.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using sim::kSecond;
using topo::WorldOptions;

WorldOptions quiescent() {
  WorldOptions options;
  options.contention = 0.0;
  return options;
}

TEST(AtomicSwitchover, FibFlipsBetweenParallelProtocols) {
  // Section 7: "a network operator could run multiple routing protocols
  // in parallel on the same physical infrastructure ... controlling the
  // forwarding tables ... while providing the capability for atomic
  // switchover between virtual networks."  Here one virtual network runs
  // OSPF and RIP side by side; the RIB's protocol-distance override
  // flips which one programs the Click FIB.
  WorldOptions options = quiescent();
  options.enable_rip = true;
  options.hello_interval = 2 * kSecond;
  options.dead_interval = 6 * kSecond;
  auto world = topo::makeDeterWorld(options);
  // Let both protocols converge (RIP updates every 30 s by default; the
  // DETER world uses the default RipConfig, so run a couple of rounds).
  world->queue.runUntil(world->queue.now() + 70 * kSecond);

  auto* src = world->router("Src");
  const auto sink_tap = world->tapOf("Sink");
  auto route = src->xorp().rib().lookup(sink_tap);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->protocol, "ospf");  // OSPF wins by admin distance

  // Atomic switchover to RIP.
  src->xorp().rib().setProtocolDistance("rip", 5);
  route = src->xorp().rib().lookup(sink_tap);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->protocol, "rip");

  // Traffic still flows (the FIB now carries RIP's routes).
  app::Pinger::Options popt;
  popt.count = 10;
  popt.source = world->tapOf("Src");
  app::Pinger pinger(world->stack("Src"), sink_tap, popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 10u);

  // And atomically back.
  src->xorp().rib().setProtocolDistance("rip", std::nullopt);
  route = src->xorp().rib().lookup(sink_tap);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->protocol, "ospf");
}

TEST(UpcallFailover, BeatsTheDeadInterval) {
  // Section 6.1: exposing topology changes via upcalls lets a slice
  // react immediately instead of waiting for its routing protocol's
  // timers.  Measure Seattle's reroute time for the Denver-KC physical
  // failure with and without upcall-driven failover.
  auto measure = [](bool use_upcalls) {
    auto world = topo::makeAbileneWorld(quiescent());
    if (use_upcalls) world->iias->enableUpcallFailover(*world->vini);
    EXPECT_TRUE(world->runUntilConverged(120 * kSecond));

    auto* seattle = world->router("Seattle");
    const auto kc_tap = world->tapOf("KansasCity");
    const auto metric_before = seattle->xorp().rib().lookup(kc_tap)->metric;

    const sim::Time fail_at = world->queue.now();
    world->net.linkBetween("Denver", "KansasCity")->setUp(false);
    for (int tick = 0; tick < 2400; ++tick) {
      world->queue.runUntil(fail_at + (tick + 1) * (sim::kMillisecond * 25));
      auto route = seattle->xorp().rib().lookup(kc_tap);
      if (route && route->metric != metric_before) {
        return sim::toSeconds(world->queue.now() - fail_at);
      }
    }
    return -1.0;
  };

  const double with_timers = measure(false);
  const double with_upcalls = measure(true);
  ASSERT_GT(with_timers, 0);
  ASSERT_GT(with_upcalls, 0);
  // Timer-driven: the 10 s dead interval dominates (detection 5-10.5 s).
  EXPECT_GT(with_timers, 4.5);
  // Upcall-driven: SPF hold-down plus flooding only.
  EXPECT_LT(with_upcalls, 1.5);
  EXPECT_LT(with_upcalls * 3, with_timers);
}

TEST(LinkShaping, SliceBandwidthIsEnforced) {
  // Section 6.2: "to allow researchers to vary link capacities, we also
  // plan to add support for setting link bandwidths ... via
  // configuration of traffic shapers in Click."
  WorldOptions options = quiescent();
  options.resources.link_bandwidth_bps = 10e6;  // shape the slice to 10 Mb/s
  auto world = topo::makeDeterWorld(options);
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));

  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 64 * 1024;
  auto result = app::runIperfTcp(world->queue, world->stack("Src"),
                                 world->stack("Sink"), world->tapOf("Sink"),
                                 5001, 4, 5 * kSecond, tcp, world->tapOf("Src"));
  // Well below the ~200 Mb/s the unshaped overlay reaches (Table 2), and
  // close to the configured cap.
  EXPECT_LT(result.mbps, 11.0);
  EXPECT_GT(result.mbps, 5.0);
}

TEST(LinkShaping, UnshapedSliceUnaffectedOnSameSubstrate) {
  // Two slices on one substrate: one shaped, one not.
  auto world = topo::makeAbileneSubstrate(quiescent());
  core::TopologyEmbedder embedder(*world->vini);
  overlay::IiasConfig config;
  config.costs = topo::clickCosts();
  config.ospf.hello_interval = 2 * kSecond;
  config.ospf.dead_interval = 6 * kSecond;

  core::TopologySpec pair1;
  pair1.name = "shaped";
  pair1.nodes = {{"a", "Chicago"}, {"b", "NewYork"}};
  pair1.links = {{"a", "b", 1}};
  core::ResourceSpec shaped;
  shaped.link_bandwidth_bps = 5e6;
  auto e1 = embedder.embed(pair1, shaped);
  overlay::IiasNetwork slice1(std::move(e1), world->stacks, config);

  core::TopologySpec pair2;
  pair2.name = "unshaped";
  pair2.nodes = {{"x", "Indianapolis"}, {"y", "Atlanta"}};
  pair2.links = {{"x", "y", 1}};
  auto e2 = embedder.embed(pair2);
  overlay::IiasNetwork slice2(std::move(e2), world->stacks, config);

  slice1.start();
  slice2.start();
  for (int i = 0; i < 30 && !(slice1.allAdjacent() && slice2.allAdjacent()); ++i) {
    world->queue.runUntil(world->queue.now() + kSecond);
  }
  ASSERT_TRUE(slice1.allAdjacent());
  ASSERT_TRUE(slice2.allAdjacent());

  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 64 * 1024;
  auto shaped_result = app::runIperfTcp(
      world->queue, world->stack("Chicago"), world->stack("NewYork"),
      slice1.slice().nodeByName("b")->tapAddress(), 5001, 4, 5 * kSecond, tcp,
      slice1.slice().nodeByName("a")->tapAddress());
  auto free_result = app::runIperfTcp(
      world->queue, world->stack("Indianapolis"), world->stack("Atlanta"),
      slice2.slice().nodeByName("y")->tapAddress(), 5002, 4, 5 * kSecond, tcp,
      slice2.slice().nodeByName("x")->tapAddress());
  EXPECT_LT(shaped_result.mbps, 6.0);
  EXPECT_GT(free_result.mbps, 3 * shaped_result.mbps);
}

TEST(BgpEgress, LearnedExternalPrefixesProgramTheNaptPort) {
  // The egress router speaks BGP (through the Section 6.1 multiplexer)
  // with a neighboring domain; prefixes it learns must program the Click
  // FIB toward the NAPT (port 2), not toward a tunnel.
  auto world = topo::makeDeterWorld(quiescent());
  ASSERT_TRUE(world->runUntilConverged(60 * kSecond));
  auto* egress = world->router("Sink");
  egress->setExternalEgress();

  xorp::BgpMultiplexer::Config mux_config;
  mux_config.vini_block = packet::Prefix::mustParse("198.32.0.0/16");
  xorp::BgpConfig mux_speaker;
  mux_speaker.asn = 42;
  mux_speaker.router_id = 99;
  xorp::BgpMultiplexer mux(world->queue, mux_speaker, mux_config);

  xorp::BgpConfig isp_config;
  isp_config.asn = 7018;
  isp_config.router_id = 50;
  xorp::BgpProcess isp(world->queue, nullptr, isp_config);
  xorp::BgpProcess::connect(mux.externalSpeaker(), isp);

  auto& slice_bgp = egress->xorp().enableBgp({42, 0, "bgp"});
  ASSERT_TRUE(mux.registerSlice(slice_bgp,
                                packet::Prefix::mustParse("198.32.1.0/24")));
  isp.originate(packet::Prefix::mustParse("64.236.0.0/16"));
  world->queue.runUntil(world->queue.now() + 2 * kSecond);

  // The egress's RIB holds the eBGP route...
  auto rib_route =
      egress->xorp().rib().lookup(packet::IpAddress(64, 236, 16, 20));
  ASSERT_TRUE(rib_route.has_value());
  // Learned through the mux's speaker, which sits in VINI's own AS, so
  // the session is iBGP from the slice's perspective.
  EXPECT_EQ(rib_route->origin, xorp::RouteOrigin::kIbgp);
  // ...and the Click FIB sends that prefix to the NAPT, not a tunnel.
  auto fib_entry =
      egress->fibElement().fib().lookup(packet::IpAddress(64, 236, 16, 20));
  ASSERT_TRUE(fib_entry.has_value());
  EXPECT_EQ(fib_entry->prefix.str(), "64.236.0.0/16");
  EXPECT_EQ(fib_entry->port, 2);

  // Withdrawal cleans the FIB back to the default route.
  isp.withdrawOrigin(packet::Prefix::mustParse("64.236.0.0/16"));
  world->queue.runUntil(world->queue.now() + 2 * kSecond);
  fib_entry =
      egress->fibElement().fib().lookup(packet::IpAddress(64, 236, 16, 20));
  ASSERT_TRUE(fib_entry.has_value());
  EXPECT_EQ(fib_entry->prefix, packet::Prefix::defaultRoute());
}

}  // namespace
}  // namespace vini
