// Unit tests for the observability layer (metrics registry, packet
// tracer, event-loop profiler) and for the bugfixes that shipped with
// it: routing-table replacement keyed on (prefix, proto), integer
// serialization timing, and Welford-based deviations.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "packet/packet.h"
#include "phys/link.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "tcpip/routing_table.h"

namespace vini {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, RegisterBumpRead) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("phys.link", "A-B/ab", "tx_packets");
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counterValue("phys.link", "A-B/ab", "tx_packets"), 5u);
  EXPECT_EQ(reg.counterValue("phys.link", "A-B/ab", "never_registered"), 0u);

  obs::Gauge& g = reg.gauge("phys.link", "A-B/ab", "queued_bytes");
  g.set(1500.0);
  g.add(-500.0);
  EXPECT_DOUBLE_EQ(reg.findGauge("phys.link", "A-B/ab", "queued_bytes")->value(),
                   1000.0);
}

TEST(MetricsRegistry, SameKeySameTypeSharesTheMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("click.FromSocket", "NewYork", "rx_packets");
  obs::Counter& b = reg.counter("click.FromSocket", "NewYork", "rx_packets");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  // The CI gate: the same key re-registered with a different type must
  // surface as a hard failure, not silently shadow the first metric.
  obs::MetricsRegistry reg;
  reg.counter("tcpip.host", "Denver", "rx_packets");
  EXPECT_THROW(reg.gauge("tcpip.host", "Denver", "rx_packets"),
               std::logic_error);
  EXPECT_THROW(reg.histogram("tcpip.host", "Denver", "rx_packets", {1.0}),
               std::logic_error);
}

TEST(MetricsRegistry, CsvIsIndependentOfRegistrationOrder) {
  obs::MetricsRegistry first;
  first.counter("b", "n", "x").inc(2);
  first.gauge("a", "n", "y").set(3.5);
  first.counter("a", "n", "x").inc(1);

  obs::MetricsRegistry second;
  second.counter("a", "n", "x").inc(1);
  second.counter("b", "n", "x").inc(2);
  second.gauge("a", "n", "y").set(3.5);

  std::ostringstream csv1;
  std::ostringstream csv2;
  first.writeCsv(csv1);
  second.writeCsv(csv2);
  EXPECT_EQ(csv1.str(), csv2.str());

  // forEach visits in sorted key order.
  std::vector<std::string> keys;
  first.forEach([&](const obs::MetricKey& key, obs::MetricType) {
    keys.push_back(key.str());
  });
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a/n/x");
  EXPECT_EQ(keys[1], "a/n/y");
  EXPECT_EQ(keys[2], "b/n/x");
}

TEST(MetricsRegistry, HistogramBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("app.ping", "W", "rtt_ms", {1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.5);   // bucket 1 (<= 2)
  h.observe(2.0);   // bucket 1 (inclusive upper bound)
  h.observe(10.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  ASSERT_EQ(h.bucketCount(), 4u);
  EXPECT_EQ(h.bucketValue(0), 1u);
  EXPECT_EQ(h.bucketValue(1), 2u);
  EXPECT_EQ(h.bucketValue(2), 0u);
  EXPECT_EQ(h.bucketValue(3), 1u);  // overflow
}

TEST(MetricsRegistry, SumCountersAcrossNodes) {
  obs::MetricsRegistry reg;
  reg.counter("xorp.ospf", "1.0.0.1", "spf_runs").inc(3);
  reg.counter("xorp.ospf", "1.0.0.2", "spf_runs").inc(4);
  reg.counter("xorp.ospf", "1.0.0.2", "hellos_sent").inc(100);
  EXPECT_EQ(reg.sumCounters("xorp.ospf", "spf_runs"), 7u);
}

// ---------------------------------------------------------------------------
// Packet tracer

TEST(PacketTracer, RingOverflowKeepsTotalsExact) {
  obs::PacketTracer tracer(4);
  for (int i = 0; i < 11; ++i) {
    obs::TraceRecord rec;
    rec.t = i;
    rec.event = (i % 2 == 0) ? obs::TraceEvent::kEnqueue
                             : obs::TraceEvent::kQueueDrop;
    tracer.record(rec);
  }
  // The ring holds only the newest 4 records...
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_TRUE(tracer.wrapped());
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().t, 7);
  EXPECT_EQ(snap.back().t, 10);
  // ...but the per-kind totals keep exact counts past the wrap.
  EXPECT_EQ(tracer.totalRecorded(), 11u);
  EXPECT_EQ(tracer.eventCount(obs::TraceEvent::kEnqueue), 6u);
  EXPECT_EQ(tracer.eventCount(obs::TraceEvent::kQueueDrop), 5u);
}

TEST(PacketTracer, BinaryRoundTrip) {
  obs::PacketTracer tracer(16);
  const std::int16_t node = tracer.internNode("Washington");
  const std::int16_t link = tracer.internLink("Denver-KansasCity/ab");
  EXPECT_EQ(tracer.internNode("Washington"), node);

  obs::TraceRecord rec;
  rec.t = 123456789;
  rec.event = obs::TraceEvent::kSerializeStart;
  rec.node = node;
  rec.link = link;
  rec.src = 0x0a010002;
  rec.dst = 0x0a010102;
  rec.flow = 42;
  rec.seq = 7;
  rec.bytes = 1538;
  tracer.record(rec);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  tracer.writeBinary(buf);
  const auto dump = obs::PacketTracer::readBinary(buf);
  ASSERT_EQ(dump.records.size(), 1u);
  const auto& r = dump.records[0];
  EXPECT_EQ(r.t, 123456789);
  EXPECT_EQ(r.event, obs::TraceEvent::kSerializeStart);
  EXPECT_EQ(r.node, node);
  EXPECT_EQ(r.link, link);
  EXPECT_EQ(r.src, 0x0a010002u);
  EXPECT_EQ(r.dst, 0x0a010102u);
  EXPECT_EQ(r.flow, 42u);
  EXPECT_EQ(r.seq, 7u);
  EXPECT_EQ(r.bytes, 1538u);
  ASSERT_EQ(dump.node_names.size(), 1u);
  EXPECT_EQ(dump.node_names[0], "Washington");
  ASSERT_EQ(dump.link_names.size(), 1u);
  EXPECT_EQ(dump.link_names[0], "Denver-KansasCity/ab");
}

TEST(PacketTracer, MalformedBinaryIsRejected) {
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "not a trace";
  EXPECT_THROW(obs::PacketTracer::readBinary(bad), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Event-loop profiler

TEST(EventLoopProfiler, AttributesEventsByTag) {
  sim::EventQueue q;
  obs::EventLoopProfiler profiler;
  profiler.attach(q);
  for (int i = 0; i < 3; ++i) q.schedule(i * 10, "phys.link", [] {});
  for (int i = 0; i < 2; ++i) q.schedule(i * 10 + 5, "tcpip.host", [] {});
  q.schedule(100, [] {});  // untagged
  q.run();

  const auto& stats = profiler.stats();
  ASSERT_TRUE(stats.count("phys.link"));
  ASSERT_TRUE(stats.count("tcpip.host"));
  ASSERT_TRUE(stats.count("untagged"));
  EXPECT_EQ(stats.at("phys.link").events, 3u);
  EXPECT_EQ(stats.at("tcpip.host").events, 2u);
  EXPECT_EQ(stats.at("untagged").events, 1u);
  EXPECT_EQ(profiler.totalEvents(), 6u);
}

TEST(EventLoopProfiler, DetachStopsAttribution) {
  sim::EventQueue q;
  {
    obs::EventLoopProfiler profiler;
    profiler.attach(q);
    q.schedule(0, "a", [] {});
    q.run();
    EXPECT_EQ(profiler.totalEvents(), 1u);
  }  // profiler destroyed -> hook detached
  q.schedule(10, "a", [] {});
  q.run();  // must not touch the dead profiler
}

TEST(ScopedObs, InstallsAndRestores) {
  EXPECT_EQ(obs::current(), nullptr);
  {
    obs::ScopedObs outer;
    EXPECT_EQ(obs::current(), &outer.obs());
    {
      obs::ScopedObs inner;
      EXPECT_EQ(obs::current(), &inner.obs());
    }
    EXPECT_EQ(obs::current(), &outer.obs());
  }
  EXPECT_EQ(obs::current(), nullptr);
}

// ---------------------------------------------------------------------------
// Reconciliation: tracer vs registry vs channel byte accounting (the
// same queued-byte sum the V102 audit checks)

TEST(Reconciliation, ChannelDropsMatchAcrossTracerRegistryAndStats) {
  obs::ScopedObs scope;

  sim::EventQueue q;
  sim::Random random(4242);
  bool up = true;
  phys::LinkConfig config;
  config.bandwidth_bps = 1e6;      // slow: packets back up
  config.queue_bytes = 4000;       // tiny drop-tail queue
  config.loss_rate = 0.2;          // seeded random loss
  phys::Channel channel(q, random, config, up, "A-B/ab");

  std::uint64_t delivered = 0;
  channel.setDeliverHandler([&](packet::Packet) { ++delivered; });

  auto makePacket = [](int i) {
    packet::Packet p = packet::Packet::udp(
        packet::IpAddress(10, 0, 0, 1), packet::IpAddress(10, 0, 0, 2), 1000,
        2000, 1430);
    p.meta.app_seq = static_cast<std::uint64_t>(i) + 1;
    return p;
  };

  // A burst overwhelms the 4000-byte queue: only ~3 packets fit, the
  // rest are drop-tail drops.
  const int kBurst = 40;
  for (int i = 0; i < kBurst; ++i) channel.transmit(makePacket(i));

  // Then a paced tail, each packet arriving after the queue has drained,
  // so every one of them is serialized and faces the loss coin — enough
  // Bernoulli trials that the 20% loss model fires for any seed.
  const int kPaced = 60;
  for (int i = 0; i < kPaced; ++i) {
    q.schedule((i + 1) * 20 * sim::kMillisecond,
               [&channel, p = makePacket(kBurst + i)]() mutable {
                 channel.transmit(std::move(p));
               });
  }
  const int kPackets = kBurst + kPaced;

  // Mid-burst, before the queue drains: the registry gauge mirrors the
  // channel's own byte accounting (what the V102 audit cross-checks).
  const obs::Gauge* queued =
      scope.metrics().findGauge("phys.link", "A-B/ab", "queued_bytes");
  ASSERT_NE(queued, nullptr);
  EXPECT_DOUBLE_EQ(queued->value(),
                   static_cast<double>(channel.queuedBytes()));

  q.run();

  const auto& stats = channel.stats();
  EXPECT_GT(stats.queue_drops, 0u);  // the tiny queue must have overflowed
  EXPECT_GT(stats.loss_drops, 0u);   // and the loss model must have fired

  // Tracer event totals == registry counters == channel stats, exactly.
  EXPECT_EQ(scope.tracer().eventCount(obs::TraceEvent::kQueueDrop),
            stats.queue_drops);
  EXPECT_EQ(scope.tracer().eventCount(obs::TraceEvent::kLossDrop),
            stats.loss_drops);
  EXPECT_EQ(
      scope.metrics().counterValue("phys.link", "A-B/ab", "queue_drops"),
      stats.queue_drops);
  EXPECT_EQ(scope.metrics().counterValue("phys.link", "A-B/ab", "loss_drops"),
            stats.loss_drops);
  EXPECT_EQ(scope.metrics().counterValue("phys.link", "A-B/ab", "tx_packets"),
            stats.tx_packets);

  // Conservation: every offered packet is either drop-tailed at the
  // queue or serialized onto the wire (tx counts lost frames too — the
  // loss coin fires after serialization).
  EXPECT_EQ(stats.queue_drops + stats.tx_packets,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(delivered,
            stats.tx_packets - stats.loss_drops - stats.down_drops);

  // Queue fully drained; gauge agrees.
  EXPECT_EQ(channel.queuedBytes(), 0u);
  EXPECT_DOUBLE_EQ(queued->value(), 0.0);
}

TEST(Reconciliation, InstrumentationIsPassive) {
  // A run with observability installed must produce the identical packet
  // outcome as one without: obs never schedules events or consumes
  // randomness.
  auto runOnce = [](bool with_obs) {
    std::optional<obs::ScopedObs> scope;
    if (with_obs) scope.emplace();
    sim::EventQueue q;
    sim::Random random(99);
    bool up = true;
    phys::LinkConfig config;
    config.bandwidth_bps = 1e6;
    config.queue_bytes = 4000;
    config.loss_rate = 0.3;
    phys::Channel channel(q, random, config, up, with_obs ? "L/ab" : "");
    std::vector<std::uint64_t> delivered_seqs;
    channel.setDeliverHandler([&](packet::Packet p) {
      delivered_seqs.push_back(p.meta.app_seq);
    });
    for (int i = 0; i < 30; ++i) {
      packet::Packet p = packet::Packet::udp(
          packet::IpAddress(10, 0, 0, 1), packet::IpAddress(10, 0, 0, 2), 1,
          2, 500);
      p.meta.app_seq = static_cast<std::uint64_t>(i) + 1;
      channel.transmit(std::move(p));
    }
    q.run();
    return delivered_seqs;
  };
  EXPECT_EQ(runOnce(true), runOnce(false));
}

// ---------------------------------------------------------------------------
// Bugfix regressions

TEST(RoutingTableFix, CostFlapLeavesOneEntry) {
  // Regression: addRoute used to replace on (prefix, metric), so a
  // protocol re-announcing a prefix with a *changed* cost accumulated a
  // duplicate — and lookup() could keep serving the stale entry.
  tcpip::RoutingTable table;
  const auto prefix = packet::Prefix::mustParse("10.0.0.0/8");

  tcpip::Route before;
  before.prefix = prefix;
  before.metric = 10;
  before.proto = "ospf";
  table.addRoute(before);

  // The link cost flaps: same prefix, same protocol, new metric.
  tcpip::Route after = before;
  after.metric = 20;
  table.addRoute(after);

  ASSERT_EQ(table.routes().size(), 1u);
  EXPECT_EQ(table.routes()[0].metric, 20);

  // Flap back down; still one entry, with the latest metric.
  before.metric = 10;
  table.addRoute(before);
  ASSERT_EQ(table.routes().size(), 1u);
  EXPECT_EQ(table.routes()[0].metric, 10);

  // A different protocol announcing the same prefix is a separate entry.
  tcpip::Route other = before;
  other.proto = "static";
  other.metric = 5;
  table.addRoute(other);
  EXPECT_EQ(table.routes().size(), 2u);
  const tcpip::Route* hit = table.lookup(packet::IpAddress(10, 1, 2, 3));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->metric, 5);  // lower metric wins the tie
}

TEST(SerializationFix, IntegerCeilingDisagreesWithFloatTruncation) {
  // 1538 wire bytes at 300 Mb/s: the exact time is 41013.33... ns.  The
  // old float path truncated to 41013 ns (shipping a bit's tail for
  // free); the integer ceiling rounds up to 41014 ns.
  const std::size_t bytes = 1538;
  const double bps = 3e8;
  const auto old_float = static_cast<sim::Duration>(
      static_cast<double>(bytes) * 8.0 / bps * 1e9);
  const sim::Duration fixed = sim::serializationDelay(bytes, bps);
  EXPECT_NE(fixed, old_float);  // the bug was observable at this point
  // Exact check: ceil(1538*8*1e9 / 3e8) = ceil(41013.33...) = 41014.
  EXPECT_EQ(fixed, 41014);

  // The ceiling never under-estimates: delay * bps covers all the bits.
  for (std::size_t b : {1u, 64u, 1430u, 1538u, 65535u}) {
    const sim::Duration d = sim::serializationDelay(b, bps);
    EXPECT_GE(static_cast<double>(d) * bps,
              static_cast<double>(b) * 8.0 * 1e9 - 1e-6);
  }
  // Degenerate bandwidth: no delay rather than a divide-by-zero.
  EXPECT_EQ(sim::serializationDelay(1500, 0.0), 0);
}

TEST(WelfordFix, LargeOffsetKeepsDeviationExact) {
  // RTTs recorded as absolute nanoseconds: mean >> deviation.  The old
  // sum-of-squares form cancelled catastrophically here (stddev could
  // come out 0 or NaN); Welford stays exact.
  sim::SampleStats stats;
  const double base = 1e9;
  stats.add(base - 1.0);
  stats.add(base);
  stats.add(base + 1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), base);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-9);                 // n-1 denominator
  EXPECT_NEAR(stats.mdev(), std::sqrt(2.0 / 3.0), 1e-9);  // population (ping)
  EXPECT_DOUBLE_EQ(stats.min(), base - 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), base + 1.0);
}

TEST(WelfordFix, MatchesDirectComputationOnSmallSamples) {
  sim::SampleStats stats;
  const std::vector<double> xs = {71.5, 90.6, 71.6, 76.0, 93.2};
  double sum = 0.0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(stats.stddev(),
              std::sqrt(m2 / static_cast<double>(xs.size() - 1)), 1e-12);
  EXPECT_NEAR(stats.mdev(), std::sqrt(m2 / static_cast<double>(xs.size())),
              1e-12);
}

}  // namespace
}  // namespace vini
