// Click tests: FIB trie (with a property check against a reference
// implementation), the element library, the config-language parser, and
// NAPT translation.
#include <gtest/gtest.h>

#include <random>

#include "click/elements.h"
#include "click/fib.h"
#include "click/flat_label.h"
#include "click/graph.h"
#include "phys/network.h"
#include "tcpip/stack_manager.h"

namespace vini::click {
namespace {

using packet::IpAddress;
using packet::Packet;
using packet::Prefix;
using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// Fib

TEST(Fib, LongestPrefixMatch) {
  Fib fib;
  fib.addRoute({Prefix::mustParse("0.0.0.0/0"), IpAddress(1, 1, 1, 1), 9});
  fib.addRoute({Prefix::mustParse("10.0.0.0/8"), IpAddress(2, 2, 2, 2), 1});
  fib.addRoute({Prefix::mustParse("10.1.0.0/16"), IpAddress(3, 3, 3, 3), 2});
  fib.addRoute({Prefix::mustParse("10.1.2.0/24"), IpAddress(4, 4, 4, 4), 3});

  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 2, 3))->port, 3);
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 9, 3))->port, 2);
  EXPECT_EQ(fib.lookup(IpAddress(10, 9, 9, 3))->port, 1);
  EXPECT_EQ(fib.lookup(IpAddress(11, 0, 0, 1))->port, 9);
}

TEST(Fib, RemoveRestoresShorterMatch) {
  Fib fib;
  fib.addRoute({Prefix::mustParse("10.0.0.0/8"), {}, 1});
  fib.addRoute({Prefix::mustParse("10.1.0.0/16"), {}, 2});
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 0, 1))->port, 2);
  EXPECT_TRUE(fib.removeRoute(Prefix::mustParse("10.1.0.0/16")));
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 0, 1))->port, 1);
  EXPECT_FALSE(fib.removeRoute(Prefix::mustParse("10.1.0.0/16")));
  EXPECT_EQ(fib.size(), 1u);
}

TEST(Fib, EmptyLookupMisses) {
  Fib fib;
  EXPECT_FALSE(fib.lookup(IpAddress(10, 0, 0, 1)).has_value());
}

TEST(Fib, ReplaceExistingPrefixKeepsSize) {
  Fib fib;
  fib.addRoute({Prefix::mustParse("10.0.0.0/8"), {}, 1});
  fib.addRoute({Prefix::mustParse("10.0.0.0/8"), {}, 7});
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.lookup(IpAddress(10, 0, 0, 1))->port, 7);
}

TEST(Fib, HostRouteAndDefaultCoexist) {
  Fib fib;
  fib.addRoute({Prefix::defaultRoute(), {}, 0});
  fib.addRoute({Prefix::mustParse("10.1.0.2/32"), {}, 5});
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 0, 2))->port, 5);
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 0, 3))->port, 0);
}

TEST(Fib, PropertyMatchesLinearReference) {
  // Random prefixes vs. a brute-force longest-match reference.
  std::mt19937 rng(2006);
  Fib fib;
  std::vector<FibEntry> reference;
  for (int i = 0; i < 400; ++i) {
    const int len = static_cast<int>(rng() % 33);
    FibEntry entry;
    entry.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(rng())), len);
    entry.port = static_cast<int>(rng() % 16);
    entry.next_hop = IpAddress(static_cast<std::uint32_t>(rng()));
    // Keep reference semantics identical: replace same-prefix entries.
    bool replaced = false;
    for (auto& r : reference) {
      if (r.prefix == entry.prefix) {
        r = entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) reference.push_back(entry);
    fib.addRoute(entry);
  }
  EXPECT_EQ(fib.size(), reference.size());
  for (int trial = 0; trial < 3000; ++trial) {
    const IpAddress addr(static_cast<std::uint32_t>(rng()));
    const FibEntry* best = nullptr;
    for (const auto& r : reference) {
      if (r.prefix.contains(addr) &&
          (!best || r.prefix.length() > best->prefix.length())) {
        best = &r;
      }
    }
    const auto got = fib.lookup(addr);
    if (!best) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->prefix, best->prefix);
      EXPECT_EQ(got->port, best->port);
    }
  }
}

TEST(Fib, ForEachVisitsAllEntries) {
  Fib fib;
  fib.addRoute({Prefix::mustParse("10.0.0.0/8"), {}, 1});
  fib.addRoute({Prefix::mustParse("192.168.0.0/16"), {}, 2});
  fib.addRoute({Prefix::defaultRoute(), {}, 3});
  int count = 0;
  fib.forEach([&](const FibEntry&) { ++count; });
  EXPECT_EQ(count, 3);
  fib.clear();
  EXPECT_EQ(fib.size(), 0u);
}

// ---------------------------------------------------------------------------
// Elements (standalone, no host stack needed)

/// Capture sink used to observe element outputs.
class Capture final : public Element {
 public:
  std::string className() const override { return "Capture"; }
  void push(int port, Packet p) override {
    packets.emplace_back(port, std::move(p));
  }
  std::vector<std::pair<int, Packet>> packets;
};

Packet udpTo(IpAddress dst, std::size_t payload = 100) {
  return Packet::udp(IpAddress(10, 1, 0, 2), dst, 1, 2, payload);
}

TEST(LookupIPRouteElement, AnnotatesNextHopAndRoutesByPort) {
  LookupIPRoute rt;
  rt.fib().addRoute({Prefix::mustParse("10.1.0.0/16"), IpAddress(10, 1, 224, 1), 0});
  rt.fib().addRoute({Prefix::mustParse("10.2.0.0/16"), {}, 1});
  Capture out0, out1;
  rt.connectOutput(0, out0, 0);
  rt.connectOutput(1, out1, 0);

  rt.push(0, udpTo(IpAddress(10, 1, 5, 5)));
  rt.push(0, udpTo(IpAddress(10, 2, 5, 5)));
  rt.push(0, udpTo(IpAddress(99, 9, 9, 9)));  // miss

  ASSERT_EQ(out0.packets.size(), 1u);
  EXPECT_EQ(out0.packets[0].second.meta.next_hop, IpAddress(10, 1, 224, 1));
  ASSERT_EQ(out1.packets.size(), 1u);
  // Zero gateway: the packet's own destination becomes the next hop.
  EXPECT_EQ(out1.packets[0].second.meta.next_hop, IpAddress(10, 2, 5, 5));
  EXPECT_EQ(rt.misses(), 1u);
}

TEST(LookupIPRouteElement, ConfiguredFromArgs) {
  LookupIPRoute rt({"10.0.0.0/8 10.1.224.1 0", "0.0.0.0/0 0.0.0.0 2"});
  Capture out2;
  rt.connectOutput(2, out2, 0);
  rt.push(0, udpTo(IpAddress(64, 236, 16, 20)));
  ASSERT_EQ(out2.packets.size(), 1u);
}

TEST(EncapTableElement, MapsNextHopToTunnelEndpoint) {
  EncapTable encap;
  encap.addMapping(IpAddress(10, 1, 224, 1), IpAddress(198, 32, 154, 10), 33001);
  Capture out;
  encap.connectOutput(0, out, 0);

  Packet p = udpTo(IpAddress(10, 1, 5, 5));
  p.meta.next_hop = IpAddress(10, 1, 224, 1);
  encap.push(0, std::move(p));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].second.meta.encap_dst, IpAddress(198, 32, 154, 10));
  EXPECT_EQ(out.packets[0].second.meta.encap_port, 33001);

  Packet miss = udpTo(IpAddress(10, 1, 5, 5));
  miss.meta.next_hop = IpAddress(10, 1, 224, 9);
  encap.push(0, std::move(miss));
  EXPECT_EQ(encap.misses(), 1u);
  EXPECT_TRUE(encap.removeMapping(IpAddress(10, 1, 224, 1)));
  EXPECT_EQ(encap.size(), 0u);
}

TEST(LocalDemuxElement, SplitsControlLocalTransit) {
  LocalDemux demux;
  demux.addLocalAddress(IpAddress(10, 1, 0, 2));
  Capture control, local, transit;
  demux.connectOutput(0, control, 0);
  demux.connectOutput(1, local, 0);
  demux.connectOutput(2, transit, 0);

  Packet ospf;
  ospf.ip.dst = IpAddress(10, 1, 0, 2);
  ospf.ip.proto = packet::IpProto::kOspf;
  demux.push(0, std::move(ospf));
  demux.push(0, udpTo(IpAddress(10, 1, 0, 2)));
  demux.push(0, udpTo(IpAddress(10, 1, 0, 3)));

  EXPECT_EQ(control.packets.size(), 1u);
  EXPECT_EQ(local.packets.size(), 1u);
  EXPECT_EQ(transit.packets.size(), 1u);
}

TEST(DecIpTtlElement, DecrementsAndDropsExpired) {
  DecIpTtl ttl;
  Capture out;
  ttl.connectOutput(0, out, 0);
  Packet p = udpTo(IpAddress(10, 2, 0, 1));
  p.ip.ttl = 2;
  ttl.push(0, std::move(p));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].second.ip.ttl, 1);

  Packet dying = udpTo(IpAddress(10, 2, 0, 1));
  dying.ip.ttl = 1;
  ttl.push(0, std::move(dying));
  EXPECT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(ttl.expired(), 1u);
}

TEST(DropFilterElement, BlocksByEncapDestination) {
  DropFilter filter;
  Capture out;
  filter.connectOutput(0, out, 0);
  const IpAddress peer(198, 32, 154, 11);

  Packet p = udpTo(IpAddress(10, 1, 5, 5));
  p.meta.encap_dst = peer;
  filter.push(0, p);
  EXPECT_EQ(out.packets.size(), 1u);

  filter.block(peer);
  filter.push(0, p);
  EXPECT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(filter.dropped(), 1u);

  filter.unblock(peer);
  filter.push(0, p);
  EXPECT_EQ(out.packets.size(), 2u);
}

TEST(DropFilterElement, FallsBackToIpDestination) {
  DropFilter filter;
  Capture out;
  filter.connectOutput(0, out, 0);
  filter.block(IpAddress(10, 1, 5, 5));
  filter.push(0, udpTo(IpAddress(10, 1, 5, 5)));  // no encap annotation
  EXPECT_EQ(filter.dropped(), 1u);
  EXPECT_TRUE(out.packets.empty());
}

TEST(CounterAndDiscard, CountAndSink) {
  Counter counter;
  Discard discard;
  counter.connectOutput(0, discard, 0);
  for (int i = 0; i < 5; ++i) counter.push(0, udpTo(IpAddress(1, 2, 3, 4), 100));
  EXPECT_EQ(counter.packets(), 5u);
  EXPECT_EQ(counter.bytes(), 5u * 128u);
  EXPECT_EQ(discard.count(), 5u);
  counter.reset();
  EXPECT_EQ(counter.packets(), 0u);
}

TEST(ClassifierElement, RoutesByProtocolFirstMatch) {
  Classifier cls({"icmp", "udp", "-"});
  Capture icmp, udp, rest;
  cls.connectOutput(0, icmp, 0);
  cls.connectOutput(1, udp, 0);
  cls.connectOutput(2, rest, 0);

  cls.push(0, Packet::icmpEchoRequest(IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2), 1, 1, 8));
  cls.push(0, udpTo(IpAddress(2, 2, 2, 2)));
  packet::TcpHeader th;
  cls.push(0, Packet::tcp(IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2), th, 10));
  EXPECT_EQ(icmp.packets.size(), 1u);
  EXPECT_EQ(udp.packets.size(), 1u);
  EXPECT_EQ(rest.packets.size(), 1u);
}

TEST(ClassifierElement, NoMatchCountsUnmatched) {
  Classifier cls({"tcp"});
  cls.push(0, udpTo(IpAddress(2, 2, 2, 2)));
  EXPECT_EQ(cls.unmatched(), 1u);
}

TEST(Element, UnconnectedOutputDropsSafely) {
  LocalDemux demux;  // no outputs connected
  demux.push(0, udpTo(IpAddress(1, 2, 3, 4)));
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Shaper (needs an event queue)

struct ShaperWorld {
  sim::EventQueue queue;
  ClickContext context;
  ShaperWorld() { context.queue = &queue; }
};

TEST(ShaperElement, EnforcesConfiguredRate) {
  ShaperWorld world;
  Shaper shaper(world.context, 8e6, 2000);  // 1 MB/s, small bucket
  Capture out;
  shaper.connectOutput(0, out, 0);
  // Offer 200 x 1000-byte packets instantaneously.
  for (int i = 0; i < 200; ++i) shaper.push(0, udpTo(IpAddress(1, 1, 1, 1), 1000));
  world.queue.runUntil(100 * kMillisecond);
  // At 1 MB/s for 0.1 s: ~100 KB = ~95 packets of ~1128 wire bytes,
  // plus the initial bucket.
  EXPECT_GT(out.packets.size(), 70u);
  EXPECT_LT(out.packets.size(), 110u);
}

TEST(ShaperElement, BucketAllowsInitialBurst) {
  ShaperWorld world;
  Shaper shaper(world.context, 8e3, 10000);  // 1 KB/s but a 10 KB bucket
  Capture out;
  shaper.connectOutput(0, out, 0);
  for (int i = 0; i < 8; ++i) shaper.push(0, udpTo(IpAddress(1, 1, 1, 1), 1000));
  // All 8 packets fit the bucket: delivered immediately.
  EXPECT_EQ(out.packets.size(), 8u);
}

TEST(ShaperElement, QueueOverflowDrops) {
  ShaperWorld world;
  Shaper shaper(world.context, 8e3, 1000, 3000);  // tiny queue
  Capture out;
  shaper.connectOutput(0, out, 0);
  for (int i = 0; i < 50; ++i) shaper.push(0, udpTo(IpAddress(1, 1, 1, 1), 1000));
  EXPECT_GT(shaper.drops(), 0u);
}

// ---------------------------------------------------------------------------
// Graph and parser

struct GraphWorld {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  tcpip::StackManager stacks{net};
  tcpip::HostStack* stack;
  cpu::Process* process;
  ClickContext context;

  GraphWorld() {
    auto& node = net.addNode("n", IpAddress(9, 0, 0, 1));
    stack = &stacks.ensure(node);
    process = &node.scheduler().createProcess({});
    context.stack = stack;
    context.process = process;
    context.queue = &queue;
  }
};

TEST(RouterGraph, ParsesDeclarationsAndConnections) {
  GraphWorld world;
  RouterGraph graph(world.context);
  graph.parseConfig(R"(
    // a comment
    rt :: LookupIPRoute(10.0.0.0/8 0.0.0.0 0);
    counter :: Counter();
    sink :: Discard();  /* block comment */
    rt [0] -> counter -> sink;
  )");
  EXPECT_EQ(graph.elementCount(), 3u);
  auto* rt = graph.get<LookupIPRoute>("rt");
  ASSERT_NE(rt, nullptr);
  rt->push(0, udpTo(IpAddress(10, 1, 1, 1)));
  EXPECT_EQ(graph.get<Counter>("counter")->packets(), 1u);
  EXPECT_EQ(graph.get<Discard>("sink")->count(), 1u);
}

TEST(RouterGraph, PortBracketsOnBothSides) {
  GraphWorld world;
  RouterGraph graph(world.context);
  graph.parseConfig(R"(
    demux :: LocalDemux(10.1.0.2);
    a :: Discard();
    b :: Discard();
    c :: Discard();
    demux [0] -> [0] a;
    demux [1] -> b;
    demux [2] -> c;
  )");
  auto* demux = graph.get<LocalDemux>("demux");
  Packet p;
  p.ip.dst = IpAddress(10, 1, 0, 2);
  p.ip.proto = packet::IpProto::kOspf;
  demux->push(0, std::move(p));
  EXPECT_EQ(graph.get<Discard>("a")->count(), 1u);
}

TEST(RouterGraph, RejectsUnknownClassAndDuplicates) {
  GraphWorld world;
  RouterGraph graph(world.context);
  EXPECT_THROW(graph.parseConfig("x :: NoSuchElement();"), std::exception);
  graph.parseConfig("a :: Discard();");
  EXPECT_THROW(graph.parseConfig("a :: Discard();"), std::exception);
  EXPECT_THROW(graph.parseConfig("a -> nosuch;"), std::exception);
  EXPECT_THROW(graph.parseConfig("what is this"), std::exception);
}

TEST(RouterGraph, ChainedConnectionsAcrossThreeElements) {
  GraphWorld world;
  RouterGraph graph(world.context);
  graph.parseConfig(R"(
    c1 :: Counter(); c2 :: Counter(); c3 :: Counter(); sink :: Discard();
    c1 -> c2 -> c3 -> sink;
  )");
  graph.get<Counter>("c1")->push(0, udpTo(IpAddress(1, 1, 1, 1)));
  EXPECT_EQ(graph.get<Counter>("c3")->packets(), 1u);
}

// ---------------------------------------------------------------------------
// NAPT (needs stacks and a network)

struct NaptWorld {
  sim::EventQueue queue;
  phys::PhysNetwork net{queue};
  tcpip::StackManager stacks{net};
  tcpip::HostStack* egress_stack;
  tcpip::HostStack* web_stack;
  cpu::Process* process;
  ClickContext context;

  NaptWorld() {
    auto& egress = net.addNode("egress", IpAddress(198, 32, 154, 20));
    auto& web = net.addNode("web", IpAddress(64, 236, 16, 20));
    net.addLink(egress, web);
    egress_stack = &stacks.ensure(egress);
    web_stack = &stacks.ensure(web);
    process = &egress.scheduler().createProcess({});
    context.stack = egress_stack;
    context.process = process;
    context.queue = &queue;
  }
};

TEST(NaptElement, RewritesSourceAndPullsReturnTrafficBack) {
  NaptWorld world;
  Napt napt(world.context, world.egress_stack->address());
  Capture back;
  napt.connectOutput(0, back, 0);

  // The external web server echoes any UDP datagram back to its source.
  IpAddress seen_src;
  std::uint16_t seen_port = 0;
  world.web_stack->openUdp(80).setReceiveHandler([&](Packet p) {
    seen_src = p.ip.src;
    seen_port = p.udpHeader()->src_port;
    world.web_stack->openUdp(80).sendTo(seen_src, seen_port, 500);
  });

  // An overlay client packet (private source) exits through the NAPT.
  Packet out = Packet::udp(IpAddress(10, 1, 250, 10), world.web_stack->address(),
                           4444, 80, 100);
  napt.push(0, std::move(out));
  world.queue.runUntil(kSecond);

  // The web server saw the egress node's public address, not 10.x.
  EXPECT_EQ(seen_src, world.egress_stack->address());
  EXPECT_NE(seen_port, 4444);
  EXPECT_EQ(napt.translatedOut(), 1u);

  // The reply was captured, reverse-translated, and pushed back into the
  // graph addressed to the original private source and port.
  ASSERT_EQ(back.packets.size(), 1u);
  const Packet& reply = back.packets[0].second;
  EXPECT_EQ(reply.ip.dst, IpAddress(10, 1, 250, 10));
  EXPECT_EQ(reply.udpHeader()->dst_port, 4444);
  EXPECT_EQ(napt.translatedBack(), 1u);
  EXPECT_EQ(napt.activeMappings(), 1u);
}

TEST(NaptElement, ReusesMappingForSameFlow) {
  NaptWorld world;
  Napt napt(world.context, world.egress_stack->address());
  std::set<std::uint16_t> ports;
  world.web_stack->openUdp(80).setReceiveHandler([&](Packet p) {
    ports.insert(p.udpHeader()->src_port);
  });
  for (int i = 0; i < 5; ++i) {
    napt.push(0, Packet::udp(IpAddress(10, 1, 250, 10),
                             world.web_stack->address(), 4444, 80, 100));
  }
  world.queue.runUntil(kSecond);
  EXPECT_EQ(ports.size(), 1u);  // one flow, one mapping
  EXPECT_EQ(napt.activeMappings(), 1u);
}

TEST(NaptElement, DistinctFlowsGetDistinctPorts) {
  NaptWorld world;
  Napt napt(world.context, world.egress_stack->address());
  std::set<std::uint16_t> ports;
  world.web_stack->openUdp(80).setReceiveHandler([&](Packet p) {
    ports.insert(p.udpHeader()->src_port);
  });
  for (std::uint16_t sport = 1000; sport < 1005; ++sport) {
    napt.push(0, Packet::udp(IpAddress(10, 1, 250, 10),
                             world.web_stack->address(), sport, 80, 100));
  }
  world.queue.runUntil(kSecond);
  EXPECT_EQ(ports.size(), 5u);
  EXPECT_EQ(napt.activeMappings(), 5u);
}

TEST(NaptElement, TranslatesIcmpByIdent) {
  NaptWorld world;
  Napt napt(world.context, world.egress_stack->address());
  Capture back;
  napt.connectOutput(0, back, 0);
  // Echo request from an overlay client to the web host.
  napt.push(0, Packet::icmpEchoRequest(IpAddress(10, 1, 250, 10),
                                       world.web_stack->address(), 77, 1, 56));
  world.queue.runUntil(kSecond);
  // The web host's kernel answers; the reply comes back through the NAT.
  ASSERT_EQ(back.packets.size(), 1u);
  EXPECT_EQ(back.packets[0].second.ip.dst, IpAddress(10, 1, 250, 10));
  EXPECT_EQ(back.packets[0].second.icmpHeader()->ident, 77);
}

TEST(RouterGraph, ParserFuzzNeverCrashes) {
  // Random config text must either parse or throw; never crash.
  std::mt19937 rng(42);
  const char alphabet[] = "ab:;()->[]0123456789 \n/*";
  GraphWorld world;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng() % 80;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    RouterGraph graph(world.context);
    try {
      graph.parseConfig(text);
    } catch (const std::exception&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// FlatLabelRoute: the Section 4.2.1 "new forwarding paradigm" claim

TEST(FlatLabelRoute, OwnerIsRingSuccessor) {
  FlatLabelRoute rt(/*own_label=*/100);
  rt.addPeer(200, IpAddress(9, 0, 0, 2), 40000);
  rt.addPeer(300, IpAddress(9, 0, 0, 3), 40000);
  EXPECT_EQ(rt.ownerOf(150), 200u);   // next label clockwise
  EXPECT_EQ(rt.ownerOf(250), 300u);
  EXPECT_EQ(rt.ownerOf(350), 100u);   // wraps around to us
  EXPECT_EQ(rt.ownerOf(100), 100u);   // exact hit
  EXPECT_EQ(rt.ownerOf(200), 200u);
}

TEST(FlatLabelRoute, LocalVsTunnelOutput) {
  FlatLabelRoute rt(100);
  rt.addPeer(200, IpAddress(9, 0, 0, 2), 40000);
  Capture tunnel, local;
  rt.connectOutput(0, tunnel, 0);
  rt.connectOutput(1, local, 0);

  Packet for_peer = udpTo(IpAddress(1, 2, 3, 4));
  for_peer.meta.flow_id = 150;  // owned by peer 200
  rt.push(0, std::move(for_peer));
  ASSERT_EQ(tunnel.packets.size(), 1u);
  EXPECT_EQ(tunnel.packets[0].second.meta.encap_dst, IpAddress(9, 0, 0, 2));
  EXPECT_EQ(tunnel.packets[0].second.meta.encap_port, 40000);

  Packet for_us = udpTo(IpAddress(5, 6, 7, 8));
  for_us.meta.flow_id = 250;  // wraps to us (no peer past 200)
  rt.push(0, std::move(for_us));
  EXPECT_EQ(local.packets.size(), 1u);
}

TEST(FlatLabelRoute, MultiHopKeyRoutingOverRealTunnels) {
  // Four virtual nodes on a ring of labels, each knowing only its two
  // ring neighbors, connected by real UDP tunnels between real stacks:
  // greedy key routing converges to the owner in <= 2 hops, with the IP
  // headers never consulted.
  sim::EventQueue queue;
  phys::PhysNetwork net(queue);
  tcpip::StackManager stacks(net);
  constexpr int kN = 4;
  const std::uint64_t kQuarter = 1ull << 62;
  struct Node {
    tcpip::HostStack* stack;
    std::unique_ptr<RouterGraph> graph;
    FlatLabelRoute* route;
    Capture* local;
  };
  std::vector<Node> nodes(kN);
  std::vector<phys::PhysNode*> phys_nodes;
  for (int i = 0; i < kN; ++i) {
    phys_nodes.push_back(&net.addNode(
        "n" + std::to_string(i), IpAddress(9, 0, 0, static_cast<std::uint8_t>(i + 1))));
  }
  for (int i = 0; i < kN; ++i) {
    net.addLink(*phys_nodes[static_cast<std::size_t>(i)],
                *phys_nodes[static_cast<std::size_t>((i + 1) % kN)]);
  }
  for (int i = 0; i < kN; ++i) {
    Node& node = nodes[static_cast<std::size_t>(i)];
    node.stack = &stacks.ensure(*phys_nodes[static_cast<std::size_t>(i)]);
    ClickContext context;
    context.stack = node.stack;
    context.process = &phys_nodes[static_cast<std::size_t>(i)]
                           ->scheduler()
                           .createProcess({});
    context.queue = &queue;
    node.graph = std::make_unique<RouterGraph>(context);
    node.graph->parseConfig("from :: FromSocket(40000);\n"
                            "tosock :: ToSocket(40000);\n");
    auto route = std::make_unique<FlatLabelRoute>(
        static_cast<std::uint64_t>(i) * kQuarter);
    node.route = route.get();
    node.graph->addElement("flat", std::move(route));
    auto capture = std::make_unique<Capture>();
    node.local = capture.get();
    node.graph->addElement("local", std::move(capture));
    node.graph->connect("from", 0, "flat", 0);
    node.graph->connect("flat", 0, "tosock", 0);
    node.graph->connect("flat", 1, "local", 0);
  }
  // Ring neighbor knowledge only.
  for (int i = 0; i < kN; ++i) {
    for (int d : {1, kN - 1}) {
      const int j = (i + d) % kN;
      nodes[static_cast<std::size_t>(i)].route->addPeer(
          static_cast<std::uint64_t>(j) * kQuarter,
          nodes[static_cast<std::size_t>(j)].stack->address(), 40000);
    }
  }

  // Inject keys at node 0; each must land at its ring owner.
  struct Probe {
    std::uint64_t key;
    int expect_owner;
  };
  // Keys strictly above a label are owned by the NEXT node on the ring.
  const Probe probes[] = {{1, 1},  // just past node 0's label
                          {kQuarter, 1},
                          {kQuarter + 5, 2},
                          {2 * kQuarter + 5, 3},
                          {3 * kQuarter + 5, 0}};
  for (const auto& probe : probes) {
    Packet p = udpTo(IpAddress(10, 99, 99, 99));  // IP dst is irrelevant
    p.meta.flow_id = probe.key;
    nodes[0].graph->find("flat")->push(0, std::move(p));
  }
  queue.runUntil(queue.now() + sim::kSecond);

  for (int i = 0; i < kN; ++i) {
    std::size_t expected = 0;
    for (const auto& probe : probes) {
      if (probe.expect_owner == i) ++expected;
    }
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)].local->packets.size(), expected)
        << "node " << i;
    for (const auto& [port, packet] : nodes[static_cast<std::size_t>(i)].local->packets) {
      EXPECT_EQ(nodes[static_cast<std::size_t>(i)].route->ownerOf(packet.meta.flow_id),
                nodes[static_cast<std::size_t>(i)].route->ownLabel());
    }
  }
}

}  // namespace
}  // namespace vini::click
