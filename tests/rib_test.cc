// RIB tests: per-prefix best-route election by administrative distance
// and metric, FEA change propagation.
#include <gtest/gtest.h>

#include "xorp/rib.h"

namespace vini::xorp {
namespace {

using packet::IpAddress;
using packet::Prefix;

struct RecordingFea final : Fea {
  std::vector<std::pair<std::string, RibRoute>> events;
  void routeAdded(const RibRoute& route) override {
    events.emplace_back("add", route);
  }
  void routeRemoved(const RibRoute& route) override {
    events.emplace_back("del", route);
  }
};

RibRoute route(const std::string& proto, RouteOrigin origin,
               const std::string& prefix, std::uint32_t metric = 0,
               IpAddress nh = {}) {
  RibRoute r;
  r.prefix = Prefix::mustParse(prefix);
  r.protocol = proto;
  r.origin = origin;
  r.metric = metric;
  r.next_hop = nh;
  return r;
}

TEST(Rib, LowerAdminDistanceWins) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 100,
                     IpAddress(1, 1, 1, 1)));
  rib.addRoute(route("connected", RouteOrigin::kConnected, "10.0.0.0/8", 0));
  auto winner = rib.winner(Prefix::mustParse("10.0.0.0/8"));
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->protocol, "connected");
}

TEST(Rib, SameOriginLowerMetricWins) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 100,
                     IpAddress(1, 1, 1, 1)));
  RibRoute better = route("ospf2", RouteOrigin::kOspf, "10.0.0.0/8", 50,
                          IpAddress(2, 2, 2, 2));
  rib.addRoute(better);
  EXPECT_EQ(rib.winner(Prefix::mustParse("10.0.0.0/8"))->next_hop,
            IpAddress(2, 2, 2, 2));
}

TEST(Rib, RemovingWinnerPromotesRunnerUp) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 10,
                     IpAddress(1, 1, 1, 1)));
  rib.addRoute(route("rip", RouteOrigin::kRip, "10.0.0.0/8", 2,
                     IpAddress(2, 2, 2, 2)));
  EXPECT_EQ(rib.winner(Prefix::mustParse("10.0.0.0/8"))->protocol, "ospf");
  EXPECT_TRUE(rib.removeRoute("ospf", Prefix::mustParse("10.0.0.0/8")));
  EXPECT_EQ(rib.winner(Prefix::mustParse("10.0.0.0/8"))->protocol, "rip");
}

TEST(Rib, RemoveLastRouteClearsWinner) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8"));
  rib.removeRoute("ospf", Prefix::mustParse("10.0.0.0/8"));
  EXPECT_FALSE(rib.winner(Prefix::mustParse("10.0.0.0/8")).has_value());
  EXPECT_EQ(rib.candidateCount(), 0u);
}

TEST(Rib, RemoveUnknownReturnsFalse) {
  Rib rib;
  EXPECT_FALSE(rib.removeRoute("ospf", Prefix::mustParse("10.0.0.0/8")));
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8"));
  EXPECT_FALSE(rib.removeRoute("rip", Prefix::mustParse("10.0.0.0/8")));
}

TEST(Rib, SameProtocolUpdateReplacesCandidate) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 10,
                     IpAddress(1, 1, 1, 1)));
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 10,
                     IpAddress(3, 3, 3, 3)));
  EXPECT_EQ(rib.candidateCount(), 1u);
  EXPECT_EQ(rib.winner(Prefix::mustParse("10.0.0.0/8"))->next_hop,
            IpAddress(3, 3, 3, 3));
}

TEST(Rib, LookupIsLongestPrefixOverWinners) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 1,
                     IpAddress(1, 1, 1, 1)));
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.1.0.0/16", 1,
                     IpAddress(2, 2, 2, 2)));
  EXPECT_EQ(rib.lookup(IpAddress(10, 1, 5, 5))->next_hop, IpAddress(2, 2, 2, 2));
  EXPECT_EQ(rib.lookup(IpAddress(10, 9, 5, 5))->next_hop, IpAddress(1, 1, 1, 1));
  EXPECT_FALSE(rib.lookup(IpAddress(11, 0, 0, 1)).has_value());
}

TEST(Rib, FeaSeesAddRemoveAndChange) {
  Rib rib;
  RecordingFea fea;
  rib.setFea(&fea);
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8", 10,
                     IpAddress(1, 1, 1, 1)));
  ASSERT_EQ(fea.events.size(), 1u);
  EXPECT_EQ(fea.events[0].first, "add");

  // A better route: the FEA sees remove-then-add.
  rib.addRoute(route("connected", RouteOrigin::kConnected, "10.0.0.0/8"));
  ASSERT_EQ(fea.events.size(), 3u);
  EXPECT_EQ(fea.events[1].first, "del");
  EXPECT_EQ(fea.events[2].first, "add");
  EXPECT_EQ(fea.events[2].second.protocol, "connected");

  // An unchanged re-add produces no FEA traffic.
  rib.addRoute(route("connected", RouteOrigin::kConnected, "10.0.0.0/8"));
  EXPECT_EQ(fea.events.size(), 3u);

  rib.removeRoute("connected", Prefix::mustParse("10.0.0.0/8"));
  // The OSPF candidate takes over.
  ASSERT_EQ(fea.events.size(), 5u);
  EXPECT_EQ(fea.events.back().first, "add");
  EXPECT_EQ(fea.events.back().second.protocol, "ospf");
}

TEST(Rib, SettingFeaReplaysExistingWinners) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8"));
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "192.168.0.0/16"));
  RecordingFea fea;
  rib.setFea(&fea);
  EXPECT_EQ(fea.events.size(), 2u);
}

TEST(Rib, RemoveAllFromFlushesProtocol) {
  Rib rib;
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.0.0.0/8"));
  rib.addRoute(route("ospf", RouteOrigin::kOspf, "10.1.0.0/16"));
  rib.addRoute(route("rip", RouteOrigin::kRip, "10.1.0.0/16"));
  rib.removeAllFrom("ospf");
  EXPECT_FALSE(rib.winner(Prefix::mustParse("10.0.0.0/8")).has_value());
  EXPECT_EQ(rib.winner(Prefix::mustParse("10.1.0.0/16"))->protocol, "rip");
  EXPECT_EQ(rib.winners().size(), 1u);
}

}  // namespace
}  // namespace vini::xorp
