// Shard-readiness telemetry tests: per-node registry/tracer partitions
// with deterministic merge, the cross-registry/sampler merge functions,
// the engine's per-node event attribution (which must be byte-invisible
// to the simulation), and the parallelism-ceiling profiler.
//
// The centerpiece is the partition fuzz test: the same seeded Abilene
// scenario runs monolithic and under several node partitionings — 1, 3,
// and 11 fixed groups plus seeded-random ones including singleton and
// all-in-one — and every export (metrics CSV, packet-trace CSV, sampled
// series CSV) must be byte-identical across all of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "app/iperf.h"
#include "obs/engine_monitor.h"
#include "obs/obs.h"
#include "obs/parallelism.h"
#include "sim/event_queue.h"
#include "topo/worlds.h"

namespace vini {
namespace {

// ---------------------------------------------------------------------------
// mergeRegistries

TEST(MergeRegistries, CountersGaugesHistogramsFold) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("tcpip.host", "Denver", "rx_packets").inc(3);
  b.counter("tcpip.host", "Denver", "rx_packets").inc(4);
  b.counter("tcpip.host", "Seattle", "rx_packets").inc(7);
  a.gauge("phys.link", "x/ab", "queued_bytes").set(100.0);
  b.gauge("phys.link", "x/ab", "queued_bytes").set(50.0);
  a.histogram("app.ping", "Denver", "rtt_ms", {1.0, 10.0}).observe(0.5);
  b.histogram("app.ping", "Denver", "rtt_ms", {1.0, 10.0}).observe(5.0);

  obs::MetricsRegistry merged;
  obs::mergeRegistries({&a, &b}, merged);
  EXPECT_EQ(merged.counterValue("tcpip.host", "Denver", "rx_packets"), 7u);
  EXPECT_EQ(merged.counterValue("tcpip.host", "Seattle", "rx_packets"), 7u);
  // Shard gauges hold each shard's local level; the merged level sums.
  EXPECT_DOUBLE_EQ(merged.findGauge("phys.link", "x/ab", "queued_bytes")->value(),
                   150.0);
  const obs::Histogram* h = merged.findHistogram("app.ping", "Denver", "rtt_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 5.5);

  // Source order must not matter.
  obs::MetricsRegistry merged2;
  obs::mergeRegistries({&b, &a}, merged2);
  std::ostringstream c1, c2;
  merged.writeCsv(c1);
  merged2.writeCsv(c2);
  EXPECT_EQ(c1.str(), c2.str());
}

TEST(MergeRegistries, TypeMismatchThrows) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("tcpip.host", "Denver", "rx_packets");
  b.gauge("tcpip.host", "Denver", "rx_packets");
  obs::MetricsRegistry merged;
  EXPECT_THROW(obs::mergeRegistries({&a, &b}, merged), std::logic_error);
}

TEST(MergeRegistries, HistogramBoundsMismatchThrows) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.histogram("app.ping", "Denver", "rtt_ms", {1.0, 10.0}).observe(0.5);
  b.histogram("app.ping", "Denver", "rtt_ms", {2.0, 20.0}).observe(5.0);
  obs::MetricsRegistry merged;
  EXPECT_THROW(obs::mergeRegistries({&a, &b}, merged), std::logic_error);
}

// ---------------------------------------------------------------------------
// Partitioned registry basics

TEST(PartitionedRegistry, RoutesNodesToTheirGroups) {
  obs::MetricsRegistry reg;
  reg.partitionByNode({{"Denver", "Seattle"}, {"NewYork"}});
  EXPECT_EQ(reg.partitionCount(), 2u);
  EXPECT_EQ(reg.partitionOf("Denver"), 0u);
  EXPECT_EQ(reg.partitionOf("Seattle"), 0u);
  EXPECT_EQ(reg.partitionOf("NewYork"), 1u);
  // Unlisted names route deterministically (FNV-1a): same name, same
  // partition, every call.
  const std::size_t p = reg.partitionOf("Denver-KansasCity/ab");
  EXPECT_EQ(reg.partitionOf("Denver-KansasCity/ab"), p);
  EXPECT_LT(p, 2u);
}

TEST(PartitionedRegistry, PartitionAfterRegistrationThrows) {
  obs::MetricsRegistry reg;
  reg.counter("tcpip.host", "Denver", "rx_packets");
  EXPECT_THROW(reg.partitionByNode({{"Denver"}, {"Seattle"}}),
               std::logic_error);
}

TEST(PartitionedRegistry, DuplicateNodeAcrossGroupsThrows) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.partitionByNode({{"Denver"}, {"Denver"}}),
               std::logic_error);
}

TEST(ScopedRegistry, CrossPartitionRegistrationThrows) {
  obs::MetricsRegistry reg;
  reg.partitionByNode({{"Denver"}, {"Seattle"}});
  obs::ScopedRegistry denver = reg.scoped("Denver");
  EXPECT_EQ(denver.partition(), 0u);
  denver.counter("tcpip.host", "Denver", "rx_packets").inc();
  // A shard registering a key that routes to another shard's partition
  // is the bug class scoped() exists to catch.
  EXPECT_THROW(denver.counter("tcpip.host", "Seattle", "rx_packets"),
               std::logic_error);
  EXPECT_EQ(reg.counterValue("tcpip.host", "Denver", "rx_packets"), 1u);
}

// ---------------------------------------------------------------------------
// mergeSamplers

TEST(MergeSamplers, InterleavesPointsByTimestamp) {
  obs::MetricsRegistry reg_a;
  obs::Counter& ca = reg_a.counter("tcpip.host", "Denver", "rx_packets");
  obs::MetricSampler a;
  a.bindRegistry(&reg_a);
  a.setPeriod(2 * sim::kSecond);
  a.watch("tcpip.host", "Denver", "rx_packets");
  ca.inc(1);
  a.onAdvance(0, 2 * sim::kSecond);
  ca.inc(1);
  a.onAdvance(2 * sim::kSecond, 6 * sim::kSecond);

  obs::MetricsRegistry reg_b;
  obs::Counter& cb = reg_b.counter("tcpip.host", "Denver", "rx_packets");
  obs::MetricSampler b;
  b.bindRegistry(&reg_b);
  b.setPeriod(2 * sim::kSecond);
  b.setOrigin(sim::kSecond);  // offset boundaries: points interleave
  b.watch("tcpip.host", "Denver", "rx_packets");
  cb.inc(10);
  b.onAdvance(0, 3 * sim::kSecond);
  cb.inc(10);
  b.onAdvance(3 * sim::kSecond, 5 * sim::kSecond);

  obs::mergeSamplers({&b}, a);
  const auto* series = a.find("tcpip.host", "Denver", "rx_packets");
  ASSERT_NE(series, nullptr);
  std::vector<sim::Time> times;
  for (const auto& pt : series->points) times.push_back(pt.t);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // a sampled at 2s,4s,6s; b at 1s,3s,5s.
  EXPECT_EQ(series->points.size(), 6u);
  EXPECT_EQ(times.front(), sim::kSecond);
  EXPECT_EQ(times.back(), 6 * sim::kSecond);
}

// ---------------------------------------------------------------------------
// The partition fuzz: same seed, any partitioning, identical bytes

const std::vector<std::string>& abileneNodes() {
  static const std::vector<std::string> kNodes = {
      "Seattle", "Sunnyvale", "LosAngeles", "Denver",  "Houston",
      "KansasCity", "Indianapolis", "Atlanta", "Chicago", "NewYork",
      "Washington"};
  return kNodes;
}

struct Exports {
  std::string metrics;
  std::string trace;
  std::string series;
};

/// One seeded Abilene run under the given node partitioning (empty =
/// stay monolithic), dumping every obs export.
Exports runPartitioned(const std::vector<std::vector<std::string>>& groups) {
  obs::ScopedObs scope;
  if (!groups.empty()) scope.obs().partitionByNode(groups);

  topo::WorldOptions options;
  options.seed = 97;
  options.contention = 0.0;
  auto world = topo::makeAbileneWorld(options);
  if (!world->runUntilConverged(180 * sim::kSecond)) {
    throw std::runtime_error("world did not converge");
  }
  const sim::Time t0 = world->queue.now();

  scope.sampler().setPeriod(sim::kSecond / 4);
  scope.sampler().setOrigin(t0);
  scope.sampler().watch("tcpip.host", "Denver", "forwarded");
  scope.sampler().watch("app.iperf", "Seattle", "udp_rx_packets",
                        obs::MetricSampler::Mode::kOnChange);
  scope.sampler().attach(world->queue);

  // Modest load and a short window keep the run well under the tracer
  // ring capacity: a wrapped ring would (documentedly) break the
  // byte-identity this test enforces.
  app::IperfUdpServer server(world->stack("Seattle"), 5001);
  app::IperfUdpClient client(world->stack("Washington"), world->tapOf("Seattle"),
                             5001, 10e6, 1430, world->tapOf("Washington"));
  client.start(sim::kSecond / 2);
  app::IperfUdpServer server2(world->stack("Atlanta"), 5002);
  app::IperfUdpClient client2(world->stack("Denver"), world->tapOf("Atlanta"),
                              5002, 10e6, 1430, world->tapOf("Denver"));
  client2.start(sim::kSecond / 2);
  world->queue.runUntil(t0 + sim::kSecond / 2);
  scope.sampler().detach();

  Exports out;
  std::ostringstream m, t, s;
  scope.metrics().writeCsv(m);
  scope.tracer().writeCsv(t);
  scope.sampler().writeCsv(s);
  out.metrics = m.str();
  out.trace = t.str();
  out.series = s.str();
  EXPECT_FALSE(out.metrics.empty());
  EXPECT_FALSE(out.trace.empty());
  return out;
}

TEST(PartitionFuzz, MergedExportsMatchMonolithic) {
  const Exports mono = runPartitioned({});
  const auto& nodes = abileneNodes();

  // Fixed partitionings: all-in-one, 3 groups, 11 singletons.
  std::vector<std::vector<std::vector<std::string>>> partitionings;
  partitionings.push_back({nodes});
  {
    std::vector<std::vector<std::string>> three(3);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      three[i % 3].push_back(nodes[i]);
    }
    partitionings.push_back(three);
  }
  {
    std::vector<std::vector<std::string>> singletons;
    for (const auto& n : nodes) singletons.push_back({n});
    partitionings.push_back(singletons);
  }
  // Seeded-random partitionings (the fuzz part): random group count,
  // random assignment — reproducible by construction.
  std::mt19937 rng(20260808);
  for (int round = 0; round < 3; ++round) {
    const std::size_t k =
        1 + rng() % nodes.size();  // 1..11 groups, empties allowed
    std::vector<std::vector<std::string>> groups(k);
    for (const auto& n : nodes) groups[rng() % k].push_back(n);
    partitionings.push_back(groups);
  }

  for (std::size_t i = 0; i < partitionings.size(); ++i) {
    SCOPED_TRACE("partitioning #" + std::to_string(i) + " (" +
                 std::to_string(partitionings[i].size()) + " groups)");
    const Exports part = runPartitioned(partitionings[i]);
    EXPECT_EQ(part.metrics, mono.metrics);
    EXPECT_EQ(part.trace, mono.trace);
    EXPECT_EQ(part.series, mono.series);
  }
}

// ---------------------------------------------------------------------------
// Engine attribution must be byte-invisible to the simulation

TEST(EnginePassivity, AttributionAndIntrospectionDoNotPerturbTheRun) {
  auto run = [](bool instrumented) {
    obs::ScopedObs scope;
    topo::WorldOptions options;
    options.seed = 211;
    options.contention = 0.0;
    auto world = topo::makeAbileneWorld(options);
    if (!world->runUntilConverged(180 * sim::kSecond)) {
      throw std::runtime_error("world did not converge");
    }
    const sim::Time t0 = world->queue.now();

    obs::ParallelismProfiler profiler;
    obs::EngineMonitor monitor;
    obs::MetricsRegistry engine_metrics;  // side registry: keeps the
                                          // main export comparable
    if (instrumented) {
      profiler.setLookahead(world->net.minPropagation());
      profiler.attach(world->queue);
      monitor.attach(world->queue, engine_metrics);
      scope.profiler().attach(world->queue);
    }

    app::IperfUdpServer server(world->stack("Seattle"), 5001);
    app::IperfUdpClient client(world->stack("Washington"),
                               world->tapOf("Seattle"), 5001, 30e6, 1430,
                               world->tapOf("Washington"));
    client.start(1 * sim::kSecond);
    world->queue.runUntil(t0 + 1 * sim::kSecond);

    std::ostringstream m, t;
    scope.metrics().writeCsv(m);
    scope.tracer().writeCsv(t);
    const auto executed = world->queue.executedCount();
    // The ScopedObs outlives the world: detach its profiler from the
    // queue before the queue dies, or ~ScopedObs detaches a dangling one.
    if (instrumented) scope.profiler().detach();
    return std::make_pair(m.str() + t.str(), executed);
  };

  const auto plain = run(false);
  const auto instrumented = run(true);
  EXPECT_EQ(plain.first, instrumented.first);
  EXPECT_EQ(plain.second, instrumented.second);
}

// ---------------------------------------------------------------------------
// EngineMonitor

TEST(EngineMonitor, MirrorsQueueVitalsDeterministically) {
  auto run = [] {
    obs::ScopedObs scope;
    topo::WorldOptions options;
    options.seed = 331;
    options.contention = 0.0;
    auto world = topo::makeAbileneWorld(options);
    if (!world->runUntilConverged(180 * sim::kSecond)) {
      throw std::runtime_error("world did not converge");
    }
    const sim::Time t0 = world->queue.now();

    scope.sampler().setPeriod(sim::kSecond / 4);
    scope.sampler().setOrigin(t0);
    scope.sampler().watch("sim.engine", "queue", "pending_events");
    scope.sampler().watch("sim.engine", "Denver", "events_executed");
    // Monitor + sampler share the queue's single advance slot: the
    // monitor refreshes, then chains.
    obs::EngineMonitor monitor;
    monitor.attach(world->queue, scope.metrics(), &scope.sampler());

    app::IperfUdpServer server(world->stack("Seattle"), 5001);
    app::IperfUdpClient client(world->stack("Washington"),
                               world->tapOf("Seattle"), 5001, 30e6, 1430,
                               world->tapOf("Washington"));
    client.start(1 * sim::kSecond);
    world->queue.runUntil(t0 + 1 * sim::kSecond);

    // Wall-derived quantities exist but stay out of the registry.
    EXPECT_GT(monitor.simWallRatio(), 0.0);
    monitor.detach();
    EXPECT_EQ(scope.metrics().findGauge("sim.engine", "wall", "sim_wall_ratio"),
              nullptr);

    // The mirrors agree with the queue's own counters.
    const sim::NodeTag denver = world->queue.internNodeTag("Denver");
    EXPECT_EQ(scope.metrics().counterValue("sim.engine", "Denver",
                                           "events_executed"),
              world->queue.nodeExecutedCount(denver));
    EXPECT_EQ(scope.metrics().counterValue("sim.engine", "queue",
                                           "cross_node_scheduled"),
              world->queue.crossNodeScheduledCount());

    std::ostringstream m, s;
    scope.metrics().writeCsv(m);
    scope.sampler().writeCsv(s);
    return m.str() + s.str();
  };
  // Same seed, same bytes — engine metrics included.
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// ParallelismProfiler (model-level; the CLI self-test covers more)

TEST(ParallelismProfiler, SkewedLoadCapsTheSpeedup) {
  sim::EventQueue queue;
  const sim::NodeTag hot = queue.internNodeTag("hot");
  const sim::NodeTag cold = queue.internNodeTag("cold");
  obs::ParallelismProfiler profiler;
  profiler.setLookahead(sim::kMillisecond);
  profiler.attach(queue);
  for (int w = 0; w < 4; ++w) {
    const sim::Time t = w * sim::kMillisecond + sim::kMicrosecond;
    for (int i = 0; i < 9; ++i) queue.schedule(t + i, "test", hot, [] {});
    queue.schedule(t + 100, "test", cold, [] {});
  }
  queue.run();
  const auto report = profiler.analyze({2});
  ASSERT_EQ(report.predictions.size(), 1u);
  // The hot node gates every window: CP = 9 per window, speedup 40/36.
  EXPECT_EQ(report.total_events, 40u);
  EXPECT_EQ(report.predictions[0].critical_path_events, 36u);
  EXPECT_NEAR(report.predictions[0].predicted_speedup, 40.0 / 36.0, 1e-9);
}

TEST(ParallelismProfiler, RequiresLookaheadBeforeAttach) {
  sim::EventQueue queue;
  obs::ParallelismProfiler profiler;
  EXPECT_THROW(profiler.attach(queue), std::logic_error);
  EXPECT_THROW(profiler.setLookahead(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Per-node event attribution in the queue itself

TEST(EventQueueAttribution, CountsPerNodeAndCrossNode) {
  sim::EventQueue queue;
  const sim::NodeTag a = queue.internNodeTag("a");
  const sim::NodeTag b = queue.internNodeTag("b");
  EXPECT_EQ(queue.internNodeTag("a"), a);  // re-intern is stable
  EXPECT_EQ(queue.nodeTagName(a), "a");
  EXPECT_EQ(queue.nodeTagName(sim::kNoNode), "-");

  queue.schedule(10, "test", a, [&queue, a, b] {
    queue.scheduleAfter(5, "test", b, [] {});   // cross
    queue.scheduleAfter(7, "test", a, [] {});   // same
    queue.scheduleAfter(1, [] {});              // untagged: not counted
  });
  queue.run();
  EXPECT_EQ(queue.nodeExecutedCount(a), 2u);
  EXPECT_EQ(queue.nodeExecutedCount(b), 1u);
  EXPECT_EQ(queue.unattributedExecutedCount(), 1u);
  EXPECT_EQ(queue.sameNodeScheduledCount(), 1u);
  EXPECT_EQ(queue.crossNodeScheduledCount(), 1u);
  EXPECT_EQ(queue.minCrossNodeDelay(), 5);
}

}  // namespace
}  // namespace vini
