// IIAS overlay tests: the full Click + XORP + tunnels assembly on the
// DETER chain and on Abilene.
#include <gtest/gtest.h>

#include "app/iperf.h"
#include "app/traceroute.h"
#include "app/ping.h"
#include "topo/worlds.h"

namespace vini {
namespace {

using topo::WorldOptions;

TEST(IiasDeter, OspfConvergesOnChain) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  // Every router should know every tap /32 and every /30.
  for (const auto& router : world->iias->routers()) {
    auto& rib = router->xorp().rib();
    for (const char* name : {"Src", "Fwdr", "Sink"}) {
      if (router->vnode().name() == name) continue;  // self: local delivery
      const auto tap = world->tapOf(name);
      ASSERT_TRUE(rib.lookup(tap).has_value())
          << router->vnode().name() << " missing route to " << name;
    }
  }
}

TEST(IiasDeter, PingAcrossOverlay) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  app::Pinger::Options options;
  options.count = 100;
  options.source = world->tapOf("Src");
  app::Pinger pinger(world->stack("Src"), world->tapOf("Sink"), options);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 30 * sim::kSecond);

  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().transmitted, 100u);
  EXPECT_EQ(pinger.report().received, 100u);
  // Two Gig-E hops plus user-space forwarding: sub-millisecond RTTs.
  EXPECT_GT(pinger.report().rtt_ms.mean(), 0.1);
  EXPECT_LT(pinger.report().rtt_ms.mean(), 3.0);
}

TEST(IiasDeter, PingToVirtualInterfaceAddress) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  // Ping the far end of the Fwdr-Sink /30 from Src: exercises routing
  // to link subnets, not just tap addresses.
  core::VirtualLink* link = world->iias->slice().linkBetween("Fwdr", "Sink");
  ASSERT_NE(link, nullptr);
  const auto target = link->interfaceB().address();

  app::Pinger::Options options;
  options.count = 10;
  options.source = world->tapOf("Src");
  app::Pinger pinger(world->stack("Src"), target, options);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 10 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(pinger.report().received, 10u);
}

TEST(IiasDeter, TcpThroughputThroughOverlay) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  tcpip::TcpConfig tcp;
  tcp.recv_buffer = 64 * 1024;
  auto result = app::runIperfTcp(world->queue, world->stack("Src"),
                                 world->stack("Sink"), world->tapOf("Sink"),
                                 5001, 4, 5 * sim::kSecond, tcp,
                                 world->tapOf("Src"));
  // User-space forwarding is CPU-bound far below the Gig-E wire, but
  // should still move serious traffic (Table 2 band: ~200 Mb/s).
  EXPECT_GT(result.mbps, 100.0);
  EXPECT_LT(result.mbps, 400.0);
}

TEST(IiasDeter, FailLinkStopsTraffic) {
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  world->iias->failLink("Src", "Fwdr");

  app::Pinger::Options options;
  options.count = 20;
  options.source = world->tapOf("Src");
  app::Pinger pinger(world->stack("Src"), world->tapOf("Sink"), options);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * sim::kSecond);
  ASSERT_TRUE(done);
  // A chain has no alternate path: everything is lost.
  EXPECT_EQ(pinger.report().received, 0u);

  // Restoring brings connectivity back (after re-adjacency).
  world->iias->restoreLink("Src", "Fwdr");
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));
  app::Pinger pinger2(world->stack("Src"), world->tapOf("Sink"), options);
  done = false;
  pinger2.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(pinger2.report().received, 15u);
}

TEST(IiasDeter, VnetAttributesTunnelTrafficToTheSlice) {
  // Section 4.1.1's VNET role: the host tracks each slice's traffic.
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));
  const int slice_id = world->iias->slice().id();
  // Even with no application traffic, the routing protocol's tunnel
  // packets were attributed.
  const auto& fwdr = world->stack("Fwdr").sliceTraffic(slice_id);
  EXPECT_GT(fwdr.tx_packets, 0u);
  EXPECT_GT(fwdr.rx_packets, 0u);

  const auto tx_before = fwdr.tx_bytes;
  app::Pinger::Options options;
  options.count = 50;
  options.source = world->tapOf("Src");
  app::Pinger pinger(world->stack("Src"), world->tapOf("Sink"), options);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 20 * sim::kSecond);
  ASSERT_TRUE(done);
  // The forwarder relayed the slice's ping traffic: both counters moved.
  EXPECT_GT(fwdr.tx_bytes, tx_before + 50u * 84u);
}

TEST(IiasDeter, TracerouteRevealsVirtualTopology) {
  // The Figure 5 exercise, inside the overlay: probing from Src's tap to
  // Sink's tap reveals the *virtual* forwarder, identified by its
  // overlay (tap) address.
  auto world = topo::makeDeterWorld();
  ASSERT_TRUE(world->runUntilConverged(60 * sim::kSecond));

  app::Traceroute::Options options;
  options.max_hops = 6;
  options.source = world->tapOf("Src");
  app::Traceroute trace(world->stack("Src"), world->tapOf("Sink"), options);
  bool done = false;
  trace.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 30 * sim::kSecond);

  ASSERT_TRUE(done);
  ASSERT_TRUE(trace.reachedDestination());
  ASSERT_EQ(trace.hops().size(), 2u);
  ASSERT_TRUE(trace.hops()[0].router.has_value());
  EXPECT_EQ(*trace.hops()[0].router, world->tapOf("Fwdr"));
  ASSERT_TRUE(trace.hops()[1].router.has_value());
  EXPECT_EQ(*trace.hops()[1].router, world->tapOf("Sink"));
}

TEST(IiasAbilene, ConvergesAndRoutesShortestPath) {
  WorldOptions options;
  options.contention = 0.0;  // quiescent nodes for a deterministic check
  auto world = topo::makeAbileneWorld(options);
  ASSERT_TRUE(world->runUntilConverged(120 * sim::kSecond));

  // Washington -> Seattle should ride the northern path: the Washington
  // router's next hop for Seattle's tap must be its NewYork interface.
  auto* washington = world->router("Washington");
  ASSERT_NE(washington, nullptr);
  auto route = washington->xorp().rib().lookup(world->tapOf("Seattle"));
  ASSERT_TRUE(route.has_value());
  core::VirtualLink* to_ny =
      world->iias->slice().linkBetween("NewYork", "Washington");
  ASSERT_NE(to_ny, nullptr);
  core::VirtualNode* wash_node = world->iias->slice().nodeByName("Washington");
  auto* vif = wash_node->interfaceOnLink(*to_ny);
  ASSERT_NE(vif, nullptr);
  EXPECT_EQ(route->next_hop, vif->peerAddress());
}

TEST(IiasAbilene, TracerouteWalksTheNorthernPath) {
  topo::WorldOptions options;
  options.contention = 0.0;
  auto world = topo::makeAbileneWorld(options);
  ASSERT_TRUE(world->runUntilConverged(120 * sim::kSecond));

  app::Traceroute::Options topt;
  topt.max_hops = 10;
  topt.source = world->tapOf("Washington");
  app::Traceroute trace(world->stack("Washington"), world->tapOf("Seattle"), topt);
  bool done = false;
  trace.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 60 * sim::kSecond);

  ASSERT_TRUE(done);
  ASSERT_TRUE(trace.reachedDestination());
  // DC - NY - Chicago - Indianapolis - KC - Denver - Seattle.
  const char* expected[] = {"NewYork", "Chicago",    "Indianapolis",
                            "KansasCity", "Denver", "Seattle"};
  ASSERT_EQ(trace.hops().size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(trace.hops()[i].router.has_value()) << "hop " << i;
    EXPECT_EQ(*trace.hops()[i].router, world->tapOf(expected[i])) << "hop " << i;
  }
  // RTTs grow along the path.
  EXPECT_LT(trace.hops()[0].rtt, trace.hops()[5].rtt);
}

TEST(IiasAbilene, PingWashingtonToSeattleBaselineRtt) {
  WorldOptions options;
  options.contention = 0.0;
  auto world = topo::makeAbileneWorld(options);
  ASSERT_TRUE(world->runUntilConverged(120 * sim::kSecond));

  app::Pinger::Options popt;
  popt.count = 50;
  popt.source = world->tapOf("Washington");
  app::Pinger pinger(world->stack("Washington"), world->tapOf("Seattle"), popt);
  bool done = false;
  pinger.start([&] { done = true; });
  world->queue.runUntil(world->queue.now() + 60 * sim::kSecond);
  ASSERT_TRUE(done);
  ASSERT_GT(pinger.report().received, 45u);
  // Paper: ~76 ms RTT on the northern path (69.7 ms propagation plus
  // overlay forwarding overhead).
  EXPECT_GT(pinger.report().rtt_ms.mean(), 69.0);
  EXPECT_LT(pinger.report().rtt_ms.mean(), 85.0);
}

}  // namespace
}  // namespace vini
