#include "obs/parallelism.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace vini::obs {

namespace {

/// Fixed-format double for the JSON report: enough digits to be useful,
/// few enough to stay locale-independent and byte-stable.
std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void ParallelismProfiler::setLookahead(sim::Duration lookahead) {
  shard_.assertHeld();
  if (lookahead <= 0) {
    throw std::logic_error("ParallelismProfiler: lookahead must be > 0");
  }
  lookahead_ = lookahead;
}

void ParallelismProfiler::attach(sim::EventQueue& queue) {
  shard_.assertHeld();
  if (lookahead_ <= 0) {
    throw std::logic_error(
        "ParallelismProfiler: setLookahead() before attach()");
  }
  detach();
  queue_ = &queue;
  queue.setIntrospector(
      [this](const sim::EventQueue::ExecEvent& e) { onExec(e); });
}

void ParallelismProfiler::detach() {
  shard_.assertHeld();
  if (queue_ != nullptr) {
    queue_->setIntrospector(nullptr);
    queue_ = nullptr;
  }
}

void ParallelismProfiler::onExec(const sim::EventQueue::ExecEvent& e) {
  shard_.assertHeld();
  const std::uint64_t w =
      static_cast<std::uint64_t>(e.when) / static_cast<std::uint64_t>(lookahead_);
  if (!cur_open_) {
    cur_window_ = w;
    cur_open_ = true;
  } else if (w != cur_window_) {
    // now() is monotone, so w > cur_window_: the old window is final.
    flushWindow();
    cur_window_ = w;
  }

  ++total_events_;
  if (e.node == sim::kNoNode) {
    ++cur_unattributed_;
    ++unattributed_events_;
  } else {
    if (cur_counts_.size() <= e.node) cur_counts_.resize(e.node + 1, 0);
    ++cur_counts_[e.node];
    if (node_totals_.size() <= e.node) node_totals_.resize(e.node + 1, 0);
    ++node_totals_[e.node];
    if (e.sched_from != sim::kNoNode && e.sched_from != e.node) {
      ++cross_node_events_;
      const sim::Duration delay = e.when - e.sched_at;
      if (cross_node_events_ == 1 || delay < min_cross_delay_) {
        min_cross_delay_ = delay;
      }
      if (delay < lookahead_) ++lookahead_violations_;
    }
  }
}

void ParallelismProfiler::flushWindow() {
  WindowLoad load;
  load.window = cur_window_;
  for (std::size_t tag = 0; tag < cur_counts_.size(); ++tag) {
    if (cur_counts_[tag] != 0) {
      load.counts.emplace_back(static_cast<sim::NodeTag>(tag),
                               cur_counts_[tag]);
      cur_counts_[tag] = 0;
    }
  }
  if (cur_unattributed_ != 0) {
    load.counts.emplace_back(sim::kNoNode, cur_unattributed_);
    cur_unattributed_ = 0;
  }
  if (!load.counts.empty()) windows_.push_back(std::move(load));
}

ParallelismProfiler::Report ParallelismProfiler::analyze(
    const std::vector<int>& shard_counts) const {
  shard_.assertHeld();

  // Fold the still-open window in without mutating the live state.
  std::vector<WindowLoad> windows = windows_;
  if (cur_open_) {
    WindowLoad load;
    load.window = cur_window_;
    for (std::size_t tag = 0; tag < cur_counts_.size(); ++tag) {
      if (cur_counts_[tag] != 0) {
        load.counts.emplace_back(static_cast<sim::NodeTag>(tag),
                                 cur_counts_[tag]);
      }
    }
    if (cur_unattributed_ != 0) {
      load.counts.emplace_back(sim::kNoNode, cur_unattributed_);
    }
    if (!load.counts.empty()) windows.push_back(std::move(load));
  }

  Report report;
  report.lookahead_ns = lookahead_;
  report.total_events = total_events_;
  report.unattributed_events = unattributed_events_;
  report.attributed_events = total_events_ - unattributed_events_;
  report.cross_node_events = cross_node_events_;
  report.cross_node_ratio =
      total_events_ ? static_cast<double>(cross_node_events_) /
                          static_cast<double>(total_events_)
                    : 0.0;
  report.lookahead_violations = lookahead_violations_;
  report.min_cross_delay_ns = cross_node_events_ ? min_cross_delay_ : 0;
  report.windows = windows.size();
  report.window_span =
      windows.empty() ? 0 : windows.back().window - windows.front().window + 1;

  // Per-node totals, unattributed pooled under "-"; sorted by load desc
  // then name asc so both the report and the LPT assignment below are
  // deterministic.
  for (std::size_t tag = 0; tag < node_totals_.size(); ++tag) {
    if (node_totals_[tag] != 0) {
      report.nodes.push_back(NodeLoad{
          queue_ != nullptr ? queue_->nodeTagName(static_cast<sim::NodeTag>(tag))
                            : std::to_string(tag),
          node_totals_[tag]});
    }
  }
  if (unattributed_events_ != 0) {
    report.nodes.push_back(NodeLoad{"-", unattributed_events_});
  }
  std::sort(report.nodes.begin(), report.nodes.end(),
            [](const NodeLoad& a, const NodeLoad& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.name < b.name;
            });

  // Shard assignment index: NodeTag -> shard, plus one pseudo-slot for
  // the unattributed pool (which a sharded engine would pin to shard 0's
  // coordinator, but for the bound we let LPT place it like any node).
  for (const int k : shard_counts) {
    if (k <= 0) continue;
    ShardPrediction pred;
    pred.shards = k;

    // LPT greedy over the already-sorted loads: heaviest node to the
    // least-loaded shard.  Track the assignment by node name.
    std::vector<std::uint64_t> shard_load(static_cast<std::size_t>(k), 0);
    std::vector<std::size_t> node_shard;  // parallel to report.nodes
    node_shard.reserve(report.nodes.size());
    for (const NodeLoad& n : report.nodes) {
      const std::size_t s = static_cast<std::size_t>(
          std::min_element(shard_load.begin(), shard_load.end()) -
          shard_load.begin());
      shard_load[s] += n.events;
      node_shard.push_back(s);
    }
    // Name -> shard lookup for the per-window pass.
    std::vector<std::pair<std::string, std::size_t>> by_name;
    by_name.reserve(report.nodes.size());
    for (std::size_t i = 0; i < report.nodes.size(); ++i) {
      by_name.emplace_back(report.nodes[i].name, node_shard[i]);
    }
    std::sort(by_name.begin(), by_name.end());
    const auto shardOf = [&](sim::NodeTag tag) -> std::size_t {
      const std::string& name =
          tag == sim::kNoNode
              ? "-"
              : (queue_ != nullptr ? queue_->nodeTagName(tag)
                                   : std::to_string(tag));
      const auto it = std::lower_bound(
          by_name.begin(), by_name.end(), name,
          [](const auto& a, const std::string& b) { return a.first < b; });
      return it != by_name.end() && it->first == name ? it->second : 0;
    };

    // Critical path: per window, the busiest shard gates the barrier.
    std::uint64_t cp = 0;
    std::vector<std::uint64_t> window_shard_load(static_cast<std::size_t>(k));
    for (const WindowLoad& w : windows) {
      std::fill(window_shard_load.begin(), window_shard_load.end(), 0);
      for (const auto& [tag, count] : w.counts) {
        window_shard_load[shardOf(tag)] += count;
      }
      cp += *std::max_element(window_shard_load.begin(),
                              window_shard_load.end());
    }
    pred.critical_path_events = cp;
    pred.predicted_speedup =
        cp ? static_cast<double>(report.total_events) / static_cast<double>(cp)
           : 0.0;
    pred.efficiency = pred.predicted_speedup / static_cast<double>(k);
    report.predictions.push_back(pred);
  }

  return report;
}

void ParallelismProfiler::writeJson(std::ostream& os, const Report& report) {
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"lookahead_ns\": " << report.lookahead_ns << ",\n";
  os << "  \"total_events\": " << report.total_events << ",\n";
  os << "  \"attributed_events\": " << report.attributed_events << ",\n";
  os << "  \"unattributed_events\": " << report.unattributed_events << ",\n";
  os << "  \"cross_node_events\": " << report.cross_node_events << ",\n";
  os << "  \"cross_node_ratio\": " << fmtDouble(report.cross_node_ratio)
     << ",\n";
  os << "  \"lookahead_violations\": " << report.lookahead_violations << ",\n";
  os << "  \"min_cross_delay_ns\": " << report.min_cross_delay_ns << ",\n";
  os << "  \"windows\": " << report.windows << ",\n";
  os << "  \"window_span\": " << report.window_span << ",\n";
  os << "  \"nodes\": [\n";
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeLoad& n = report.nodes[i];
    os << "    {\"node\": \"" << n.name << "\", \"events\": " << n.events
       << "}" << (i + 1 < report.nodes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"predictions\": [\n";
  for (std::size_t i = 0; i < report.predictions.size(); ++i) {
    const ShardPrediction& p = report.predictions[i];
    os << "    {\"shards\": " << p.shards
       << ", \"critical_path_events\": " << p.critical_path_events
       << ", \"predicted_speedup\": " << fmtDouble(p.predicted_speedup)
       << ", \"efficiency\": " << fmtDouble(p.efficiency) << "}"
       << (i + 1 < report.predictions.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void ParallelismProfiler::clear() {
  shard_.assertHeld();
  cur_window_ = 0;
  cur_open_ = false;
  cur_counts_.clear();
  cur_unattributed_ = 0;
  windows_.clear();
  node_totals_.clear();
  total_events_ = 0;
  unattributed_events_ = 0;
  cross_node_events_ = 0;
  lookahead_violations_ = 0;
  min_cross_delay_ = 0;
}

}  // namespace vini::obs
