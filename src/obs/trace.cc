#include "obs/trace.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "sim/event_queue.h"

namespace vini::obs {

const char* traceEventName(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kIngress:
      return "ingress";
    case TraceEvent::kEnqueue:
      return "enqueue";
    case TraceEvent::kQueueDrop:
      return "queue_drop";
    case TraceEvent::kSerializeStart:
      return "serialize_start";
    case TraceEvent::kDeliver:
      return "deliver";
    case TraceEvent::kForwardDecision:
      return "forward_decision";
    case TraceEvent::kLossDrop:
      return "loss_drop";
    case TraceEvent::kDownDrop:
      return "down_drop";
    case TraceEvent::kSocketDrop:
      return "socket_drop";
  }
  return "?";
}

PacketTracer::PacketTracer(std::size_t capacity)
    : capacity_(capacity ? capacity : 1), rings_(1) {}

namespace {

std::int16_t intern(std::vector<std::string>& table, const std::string& name) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == name) return static_cast<std::int16_t>(i);
  }
  table.push_back(name);
  return static_cast<std::int16_t>(table.size() - 1);
}

const std::string& lookup(const std::vector<std::string>& table,
                          std::int16_t id) {
  static const std::string kUnknown = "-";
  if (id < 0 || static_cast<std::size_t>(id) >= table.size()) return kUnknown;
  return table[static_cast<std::size_t>(id)];
}

}  // namespace

void PacketTracer::partitionByNode(
    const std::vector<std::vector<std::string>>& groups) {
  shard_.assertHeld();
  if (rings_.size() != 1) {
    throw std::logic_error("obs: tracer already partitioned");
  }
  if (total_ != 0) {
    throw std::logic_error(
        "obs: tracer partitionByNode() after records were recorded");
  }
  if (groups.empty()) {
    throw std::logic_error("obs: tracer partitionByNode() with no groups");
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& node : groups[g]) {
      if (!node_group_.emplace(node, g).second) {
        throw std::logic_error("obs: tracer node " + node +
                               " assigned to two partitions");
      }
    }
  }
  rings_.resize(groups.size());
  // Nodes interned before the split re-route to their group.
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    const auto it = node_group_.find(node_names_[i]);
    node_parts_[i] = it == node_group_.end() ? 0 : it->second;
  }
}

std::size_t PacketTracer::ringOf(std::int16_t node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_parts_.size()) {
    return 0;
  }
  return node_parts_[static_cast<std::size_t>(node)];
}

std::int16_t PacketTracer::internNode(const std::string& name) {
  shard_.assertHeld();
  const std::int16_t id = intern(node_names_, name);
  if (static_cast<std::size_t>(id) == node_parts_.size()) {
    const auto it = node_group_.find(name);
    node_parts_.push_back(it == node_group_.end() ? 0 : it->second);
  }
  return id;
}

std::int16_t PacketTracer::internLink(const std::string& name) {
  shard_.assertHeld();
  return intern(link_names_, name);
}

const std::string& PacketTracer::nodeName(std::int16_t id) const {
  shard_.assertHeld();
  return lookup(node_names_, id);
}

const std::string& PacketTracer::linkName(std::int16_t id) const {
  shard_.assertHeld();
  return lookup(link_names_, id);
}

void PacketTracer::record(const TraceRecord& rec) {
  if (!lane_records_.empty()) {
    const int lane = sim::EventQueue::currentShardLane();
    if (lane >= 0 && static_cast<std::size_t>(lane) < lane_records_.size()) {
      lane_records_[static_cast<std::size_t>(lane)].push_back(rec);
      return;
    }
  }
  shard_.assertHeld();
  Ring& ring = rings_[ringOf(rec.node)];
  const std::size_t pos = static_cast<std::size_t>(ring.total % capacity_);
  if (ring.records.size() < capacity_) {
    ring.records.push_back(rec);
    ring.stamps.push_back(total_);
  } else {
    ring.records[pos] = rec;
    ring.stamps[pos] = total_;
  }
  ++ring.total;
  ++total_;
  ++kind_totals_[static_cast<std::size_t>(rec.event)];
}

void PacketTracer::enableShardLanes(std::size_t lanes) {
  shard_.assertHeld();
  if (!lane_records_.empty()) {
    throw std::logic_error("obs: tracer shard lanes already enabled");
  }
  if (lanes == 0) {
    throw std::logic_error("obs: tracer enableShardLanes() with no lanes");
  }
  lane_records_.resize(lanes);
}

void PacketTracer::foldShardLanes() {
  shard_.assertHeld();
  // Deterministic merge order: (t, lane, within-lane emit order).  Each
  // lane's buffer is already time-sorted (a lane's local clock is
  // monotonic and windows only move forward), so a stable sort on t
  // with the lane index as tie-break reproduces the same byte stream at
  // every thread count.
  struct Cursor {
    std::size_t lane = 0;
    std::size_t i = 0;
  };
  std::vector<Cursor> cursors;
  for (std::size_t l = 0; l < lane_records_.size(); ++l) {
    if (!lane_records_[l].empty()) cursors.push_back(Cursor{l, 0});
  }
  for (;;) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.i == lane_records_[c.lane].size()) continue;
      if (best == nullptr ||
          lane_records_[c.lane][c.i].t < lane_records_[best->lane][best->i].t) {
        best = &c;
      }
    }
    if (best == nullptr) break;
    record(lane_records_[best->lane][best->i]);
    ++best->i;
  }
  for (auto& buf : lane_records_) buf.clear();
}

std::size_t PacketTracer::size() const {
  shard_.assertHeld();
  std::size_t n = 0;
  for (const Ring& ring : rings_) n += ring.records.size();
  return n;
}

bool PacketTracer::wrapped() const {
  shard_.assertHeld();
  for (const Ring& ring : rings_) {
    if (ring.total > capacity_) return true;
  }
  return false;
}

std::vector<TraceRecord> PacketTracer::snapshot() const {
  shard_.assertHeld();
  // Per-ring survivors in recording order (oldest surviving first),
  // then a k-way merge by global stamp restores the tracer-wide
  // recording order — byte-for-byte what the monolithic ring would
  // hold, as long as no ring wrapped.
  struct Cursor {
    const Ring* ring;
    std::size_t start;  // position of the oldest surviving record
    std::size_t i = 0;  // survivors consumed
    std::size_t n;      // survivors held
  };
  std::vector<Cursor> cursors;
  cursors.reserve(rings_.size());
  for (const Ring& ring : rings_) {
    const std::size_t held = ring.records.size();
    const std::size_t start =
        ring.total > held ? static_cast<std::size_t>(ring.total % capacity_)
                          : 0;
    cursors.push_back(Cursor{&ring, start, 0, held});
  }
  std::vector<TraceRecord> out;
  out.reserve(size());
  for (;;) {
    Cursor* best = nullptr;
    std::uint64_t best_stamp = 0;
    for (Cursor& c : cursors) {
      if (c.i == c.n) continue;
      const std::uint64_t stamp = c.ring->stamps[(c.start + c.i) % c.n];
      if (best == nullptr || stamp < best_stamp) {
        best = &c;
        best_stamp = stamp;
      }
    }
    if (best == nullptr) break;
    out.push_back(best->ring->records[(best->start + best->i) % best->n]);
    ++best->i;
  }
  return out;
}

void PacketTracer::clear() {
  shard_.assertHeld();
  for (Ring& ring : rings_) {
    ring.records.clear();
    ring.stamps.clear();
    ring.total = 0;
  }
  total_ = 0;
  kind_totals_.fill(0);
}

void PacketTracer::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "t_ns,event,node,link,src,dst,flow,seq,bytes\n";
  for (const TraceRecord& r : snapshot()) {
    os << r.t << "," << traceEventName(r.event) << "," << nodeName(r.node)
       << "," << linkName(r.link) << "," << r.src << "," << r.dst << ","
       << r.flow << "," << r.seq << "," << r.bytes << "\n";
  }
}

namespace {

template <typename T>
void putLe(std::ostream& os, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    os.put(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                             0xff));
  }
}

template <typename T>
T getLe(std::istream& is) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c < 0) throw std::runtime_error("vini_trace: truncated stream");
    v |= static_cast<std::uint64_t>(c & 0xff) << (8 * i);
  }
  return static_cast<T>(v);
}

void putString(std::ostream& os, const std::string& s) {
  putLe<std::uint16_t>(os, static_cast<std::uint16_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string getString(std::istream& is) {
  const auto len = getLe<std::uint16_t>(is);
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw std::runtime_error("vini_trace: truncated string table");
  return s;
}

void putNameTable(std::ostream& os, const std::vector<std::string>& table) {
  putLe<std::uint16_t>(os, static_cast<std::uint16_t>(table.size()));
  for (const std::string& s : table) putString(os, s);
}

std::vector<std::string> getNameTable(std::istream& is) {
  const auto n = getLe<std::uint16_t>(is);
  std::vector<std::string> table;
  table.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) table.push_back(getString(is));
  return table;
}

}  // namespace

void PacketTracer::writeBinary(std::ostream& os) const {
  shard_.assertHeld();
  os.write("VTRC", 4);
  putLe<std::uint16_t>(os, kBinaryVersion);
  putLe<std::uint16_t>(os, static_cast<std::uint16_t>(kBinaryRecordSize));
  const auto records = snapshot();
  putLe<std::uint64_t>(os, records.size());
  for (const TraceRecord& r : records) {
    putLe<std::int64_t>(os, r.t);
    os.put(static_cast<char>(r.event));
    putLe<std::int16_t>(os, r.node);
    putLe<std::int16_t>(os, r.link);
    putLe<std::uint32_t>(os, r.src);
    putLe<std::uint32_t>(os, r.dst);
    putLe<std::uint64_t>(os, r.flow);
    putLe<std::uint64_t>(os, r.seq);
    putLe<std::uint32_t>(os, r.bytes);
  }
  putNameTable(os, node_names_);
  putNameTable(os, link_names_);
}

PacketTracer::BinaryDump PacketTracer::readBinary(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != "VTRC") {
    throw std::runtime_error("vini_trace: bad magic (not a VTRC file)");
  }
  const auto version = getLe<std::uint16_t>(is);
  if (version != kBinaryVersion) {
    throw std::runtime_error("vini_trace: unsupported version " +
                             std::to_string(version));
  }
  const auto record_size = getLe<std::uint16_t>(is);
  if (record_size != kBinaryRecordSize) {
    throw std::runtime_error("vini_trace: unexpected record size " +
                             std::to_string(record_size));
  }
  const auto count = getLe<std::uint64_t>(is);
  BinaryDump dump;
  dump.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.t = getLe<std::int64_t>(is);
    const int ev = is.get();
    if (ev < 0 || static_cast<std::size_t>(ev) >= kTraceEventKinds) {
      throw std::runtime_error("vini_trace: bad event kind");
    }
    r.event = static_cast<TraceEvent>(ev);
    r.node = getLe<std::int16_t>(is);
    r.link = getLe<std::int16_t>(is);
    r.src = getLe<std::uint32_t>(is);
    r.dst = getLe<std::uint32_t>(is);
    r.flow = getLe<std::uint64_t>(is);
    r.seq = getLe<std::uint64_t>(is);
    r.bytes = getLe<std::uint32_t>(is);
    dump.records.push_back(r);
  }
  dump.node_names = getNameTable(is);
  dump.link_names = getNameTable(is);
  return dump;
}

}  // namespace vini::obs
