#include "obs/obs.h"

namespace vini::obs {

namespace {
Obs* g_current = nullptr;
}  // namespace

Obs* current() { return g_current; }

ScopedObs::ScopedObs(std::size_t trace_capacity)
    : obs_(trace_capacity), previous_(g_current) {
  g_current = &obs_;
}

ScopedObs::~ScopedObs() {
  obs_.profiler.detach();
  obs_.sampler.detach();
  g_current = previous_;
}

}  // namespace vini::obs
