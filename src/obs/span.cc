#include "obs/span.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/obs.h"
#include "sim/event_queue.h"

namespace vini::obs {

const char* spanOutcomeName(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kDelivered: return "delivered";
    case SpanOutcome::kDropped: return "dropped";
  }
  return "?";
}

SpanTracker::SpanTracker(std::size_t capacity) : capacity_(capacity) {}

int SpanTracker::laneIndex() const {
  if (lane_states_.empty()) return -1;
  const int lane = sim::EventQueue::currentShardLane();
  if (lane < 0 || static_cast<std::size_t>(lane) + 1 >= lane_states_.size()) {
    return -1;
  }
  return lane;
}

std::int16_t SpanTracker::intern(const std::string& name) {
  if (const int lane = laneIndex(); lane >= 0) {
    // Frozen read of the shared table: the main thread mutates it only
    // between windows, never while lanes execute.
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<std::int16_t>(i);
    }
    LaneState& state = lane_states_[static_cast<std::size_t>(lane)];
    for (std::size_t i = 0; i < state.pending_names.size(); ++i) {
      if (state.pending_names[i] == name) {
        return static_cast<std::int16_t>(-static_cast<int>(i) - 2);
      }
    }
    if (state.pending_names.size() >= 0x7ffd) {
      throw std::length_error("span lane pending name table full");
    }
    state.pending_names.push_back(name);
    return static_cast<std::int16_t>(
        -static_cast<int>(state.pending_names.size()) - 1);
  }
  shard_.assertHeld();
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::int16_t>(i);
  }
  if (names_.size() >= 0x7fff) throw std::length_error("span name table full");
  names_.push_back(name);
  return static_cast<std::int16_t>(names_.size() - 1);
}

std::uint64_t SpanTracker::newTraceId() {
  if (const int lane = laneIndex(); lane >= 0) {
    LaneState& state = lane_states_[static_cast<std::size_t>(lane)];
    return (static_cast<std::uint64_t>(lane + 1) << kLaneTraceShift) |
           ++state.trace_seq;
  }
  shard_.assertHeld();
  return ++next_trace_id_;
}

const std::string& SpanTracker::name(std::int16_t id) const {
  shard_.assertHeld();
  static const std::string kNone = "-";
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) return kNone;
  return names_[static_cast<std::size_t>(id)];
}

std::uint32_t SpanTracker::open(std::uint64_t trace_id, std::int16_t layer,
                                sim::Time t, std::int16_t node,
                                std::int16_t link, std::uint32_t bytes) {
  if (const int lane = laneIndex(); lane >= 0) {
    LaneState& state = lane_states_[static_cast<std::size_t>(lane)];
    if (state.span_seq + 1 >= (1u << kLaneSpanShift)) {
      throw std::length_error("span lane id space exhausted");
    }
    const std::uint32_t prov =
        (static_cast<std::uint32_t>(lane + 1) << kLaneSpanShift) |
        ++state.span_seq;
    LaneOp op;
    op.kind = LaneOp::Kind::kOpen;
    op.t = t;
    op.trace_id = trace_id;
    op.span_id = prov;
    op.layer = layer;
    op.node = node;
    op.link = link;
    op.bytes = bytes;
    state.ops.push_back(op);
    return prov;
  }
  shard_.assertHeld();
  if (!lane_states_.empty() && next_span_id_ + 1 >= (1u << kLaneSpanShift)) {
    throw std::length_error("span id space exhausted under shard lanes");
  }
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = ++next_span_id_;
  rec.t_open = t;
  rec.layer = layer;
  rec.node = node;
  rec.link = link;
  rec.bytes = bytes;
  ++opened_;
  open_spans_.emplace(rec.span_id, rec);
  return rec.span_id;
}

void SpanTracker::close(std::uint32_t span_id, sim::Time t,
                        SpanOutcome outcome, std::int16_t reason) {
  if (span_id == kNoSpan) return;
  if (const int lane = laneIndex(); lane >= 0) {
    LaneOp op;
    op.kind = LaneOp::Kind::kClose;
    op.t = t;
    op.span_id = span_id;
    op.reason = reason;
    op.outcome = outcome;
    lane_states_[static_cast<std::size_t>(lane)].ops.push_back(op);
    return;
  }
  shard_.assertHeld();
  if (!lane_states_.empty() && isProvisionalSpanId(span_id)) {
    const auto pit = provisional_spans_.find(span_id);
    if (pit == provisional_spans_.end()) {
      // The matching open is still buffered in a lane: defer beside it
      // (the main pseudo-lane folds with everything else).
      LaneOp op;
      op.kind = LaneOp::Kind::kClose;
      op.t = t;
      op.span_id = span_id;
      op.reason = reason;
      op.outcome = outcome;
      mainLane().ops.push_back(op);
      return;
    }
    const std::uint32_t real = pit->second;
    provisional_spans_.erase(pit);
    span_id = real;
  }
  auto it = open_spans_.find(span_id);
  if (it == open_spans_.end()) return;
  SpanRecord rec = it->second;
  open_spans_.erase(it);
  finish(rec, t, outcome, reason);
}

void SpanTracker::openRoot(std::uint64_t trace_id, std::int16_t layer,
                           sim::Time t, std::int16_t node,
                           std::uint32_t bytes) {
  if (trace_id == 0) return;
  if (const int lane = laneIndex(); lane >= 0) {
    LaneOp op;
    op.kind = LaneOp::Kind::kOpenRoot;
    op.t = t;
    op.trace_id = trace_id;
    op.layer = layer;
    op.node = node;
    op.bytes = bytes;
    lane_states_[static_cast<std::size_t>(lane)].ops.push_back(op);
    return;
  }
  shard_.assertHeld();
  if (open_roots_.count(trace_id) != 0) return;
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = ++next_span_id_;
  rec.t_open = t;
  rec.layer = layer;
  rec.node = node;
  rec.bytes = bytes;
  rec.root = true;
  ++opened_;
  ++roots_opened_;
  open_roots_.emplace(trace_id, rec);
}

void SpanTracker::closeRoot(std::uint64_t trace_id, sim::Time t,
                            SpanOutcome outcome, std::int16_t reason) {
  if (trace_id == 0) return;
  if (const int lane = laneIndex(); lane >= 0) {
    LaneOp op;
    op.kind = LaneOp::Kind::kCloseRoot;
    op.t = t;
    op.trace_id = trace_id;
    op.reason = reason;
    op.outcome = outcome;
    lane_states_[static_cast<std::size_t>(lane)].ops.push_back(op);
    return;
  }
  shard_.assertHeld();
  auto it = open_roots_.find(trace_id);
  if (it == open_roots_.end()) {
    if (!lane_states_.empty() && !folding_) {
      // The root's open may still be buffered in a lane; the fold
      // decides (a genuinely late close counts late there instead).
      LaneOp op;
      op.kind = LaneOp::Kind::kCloseRoot;
      op.t = t;
      op.trace_id = trace_id;
      op.reason = reason;
      op.outcome = outcome;
      mainLane().ops.push_back(op);
      return;
    }
    ++late_root_closes_;
    return;
  }
  SpanRecord rec = it->second;
  open_roots_.erase(it);
  ++roots_closed_;
  finish(rec, t, outcome, reason);
}

void SpanTracker::finish(SpanRecord rec, sim::Time t, SpanOutcome outcome,
                         std::int16_t reason) {
  shard_.assertHeld();
  rec.t_close = t;
  rec.outcome = outcome;
  rec.reason = reason;
  if (outcome == SpanOutcome::kDropped) {
    ++closed_dropped_;
  } else {
    ++closed_delivered_;
  }
  if (records_.size() >= capacity_) {
    ++records_lost_;
    return;
  }
  records_.push_back(rec);
}

void SpanTracker::enableShardLanes(std::size_t lanes) {
  shard_.assertHeld();
  if (!lane_states_.empty()) {
    throw std::logic_error("obs: span shard lanes already enabled");
  }
  if (lanes == 0 || lanes > 254) {
    throw std::logic_error("obs: span enableShardLanes() lane count invalid");
  }
  lane_states_.resize(lanes + 1);  // + the main pseudo-lane
}

std::int16_t SpanTracker::resolvePending(const LaneState& lane,
                                         std::int16_t id) {
  if (id >= -1) return id;
  const std::size_t idx = static_cast<std::size_t>(-id) - 2;
  if (idx >= lane.pending_names.size()) return -1;
  return intern(lane.pending_names[idx]);
}

void SpanTracker::foldShardLanes() {
  shard_.assertHeld();
  // Deterministic replay order: (t, lane, issue order), with the main
  // pseudo-lane last at equal timestamps.  Per-lane op streams are
  // time-sorted already (lane clocks are monotonic), so a stable sort
  // on (t, lane) reproduces the same stream at every thread count.
  struct Key {
    sim::Time t = 0;
    std::size_t lane = 0;
    std::size_t idx = 0;
  };
  std::vector<Key> keys;
  for (std::size_t l = 0; l < lane_states_.size(); ++l) {
    for (std::size_t i = 0; i < lane_states_[l].ops.size(); ++i) {
      keys.push_back(Key{lane_states_[l].ops[i].t, l, i});
    }
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.idx < b.idx;
  });
  folding_ = true;
  for (const Key& k : keys) {
    const LaneState& state = lane_states_[k.lane];
    const LaneOp op = state.ops[k.idx];
    const std::int16_t reason = resolvePending(state, op.reason);
    switch (op.kind) {
      case LaneOp::Kind::kOpen: {
        const std::uint32_t real =
            open(op.trace_id, resolvePending(state, op.layer), op.t,
                 resolvePending(state, op.node), resolvePending(state, op.link),
                 op.bytes);
        provisional_spans_[op.span_id] = real;
        break;
      }
      case LaneOp::Kind::kClose: {
        std::uint32_t id = op.span_id;
        if (isProvisionalSpanId(id)) {
          const auto it = provisional_spans_.find(id);
          if (it == provisional_spans_.end()) break;  // double close: no-op
          id = it->second;
          provisional_spans_.erase(it);
        }
        close(id, op.t, op.outcome, reason);
        break;
      }
      case LaneOp::Kind::kOpenRoot:
        openRoot(op.trace_id, resolvePending(state, op.layer), op.t,
                 resolvePending(state, op.node), op.bytes);
        break;
      case LaneOp::Kind::kCloseRoot:
        closeRoot(op.trace_id, op.t, op.outcome, reason);
        break;
    }
  }
  folding_ = false;
  for (LaneState& state : lane_states_) state.ops.clear();
}

std::vector<SpanRecord> SpanTracker::traceSpans(std::uint64_t trace_id) const {
  shard_.assertHeld();
  std::vector<SpanRecord> out;
  for (const auto& rec : records_) {
    if (rec.trace_id == trace_id) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.root != b.root) return a.root;
              if (a.t_open != b.t_open) return a.t_open < b.t_open;
              return a.span_id < b.span_id;
            });
  return out;
}

std::vector<std::uint64_t> SpanTracker::traceIds() const {
  shard_.assertHeld();
  std::vector<std::uint64_t> ids;
  for (const auto& rec : records_) ids.push_back(rec.trace_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void SpanTracker::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "trace_id,span_id,root,layer,node,link,t_open_ns,t_close_ns,dur_ns,"
        "outcome,reason,bytes\n";
  for (const auto& rec : records_) {
    os << rec.trace_id << ',' << rec.span_id << ',' << (rec.root ? 1 : 0)
       << ',' << name(rec.layer) << ',' << name(rec.node) << ','
       << name(rec.link) << ',' << rec.t_open << ',' << rec.t_close << ','
       << rec.duration() << ',' << spanOutcomeName(rec.outcome) << ','
       << name(rec.reason) << ',' << rec.bytes << '\n';
  }
}

void SpanTracker::clear() {
  shard_.assertHeld();
  next_trace_id_ = 0;
  next_span_id_ = 0;
  opened_ = closed_delivered_ = closed_dropped_ = 0;
  roots_opened_ = roots_closed_ = late_root_closes_ = 0;
  records_lost_ = 0;
  names_.clear();
  open_spans_.clear();
  open_roots_.clear();
  records_.clear();
  provisional_spans_.clear();
  for (LaneState& state : lane_states_) {
    state.ops.clear();
    state.pending_names.clear();
    state.span_seq = 0;
    state.trace_seq = 0;
  }
}

void closeRootAtCurrent(std::uint64_t trace_id, const char* reason) {
  if (trace_id == 0) return;
  Obs* ctx = current();
  if (ctx == nullptr || ctx->clock == nullptr) return;
  ctx->spans.closeRoot(trace_id, ctx->clock->now(), SpanOutcome::kDropped,
                       ctx->spans.intern(reason));
}

}  // namespace vini::obs
