#include "obs/span.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/obs.h"
#include "sim/event_queue.h"

namespace vini::obs {

const char* spanOutcomeName(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kDelivered: return "delivered";
    case SpanOutcome::kDropped: return "dropped";
  }
  return "?";
}

SpanTracker::SpanTracker(std::size_t capacity) : capacity_(capacity) {}

std::int16_t SpanTracker::intern(const std::string& name) {
  shard_.assertHeld();
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::int16_t>(i);
  }
  if (names_.size() >= 0x7fff) throw std::length_error("span name table full");
  names_.push_back(name);
  return static_cast<std::int16_t>(names_.size() - 1);
}

const std::string& SpanTracker::name(std::int16_t id) const {
  shard_.assertHeld();
  static const std::string kNone = "-";
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) return kNone;
  return names_[static_cast<std::size_t>(id)];
}

std::uint32_t SpanTracker::open(std::uint64_t trace_id, std::int16_t layer,
                                sim::Time t, std::int16_t node,
                                std::int16_t link, std::uint32_t bytes) {
  shard_.assertHeld();
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = ++next_span_id_;
  rec.t_open = t;
  rec.layer = layer;
  rec.node = node;
  rec.link = link;
  rec.bytes = bytes;
  ++opened_;
  open_spans_.emplace(rec.span_id, rec);
  return rec.span_id;
}

void SpanTracker::close(std::uint32_t span_id, sim::Time t,
                        SpanOutcome outcome, std::int16_t reason) {
  shard_.assertHeld();
  if (span_id == kNoSpan) return;
  auto it = open_spans_.find(span_id);
  if (it == open_spans_.end()) return;
  SpanRecord rec = it->second;
  open_spans_.erase(it);
  finish(rec, t, outcome, reason);
}

void SpanTracker::openRoot(std::uint64_t trace_id, std::int16_t layer,
                           sim::Time t, std::int16_t node,
                           std::uint32_t bytes) {
  shard_.assertHeld();
  if (trace_id == 0 || open_roots_.count(trace_id) != 0) return;
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = ++next_span_id_;
  rec.t_open = t;
  rec.layer = layer;
  rec.node = node;
  rec.bytes = bytes;
  rec.root = true;
  ++opened_;
  ++roots_opened_;
  open_roots_.emplace(trace_id, rec);
}

void SpanTracker::closeRoot(std::uint64_t trace_id, sim::Time t,
                            SpanOutcome outcome, std::int16_t reason) {
  shard_.assertHeld();
  if (trace_id == 0) return;
  auto it = open_roots_.find(trace_id);
  if (it == open_roots_.end()) {
    ++late_root_closes_;
    return;
  }
  SpanRecord rec = it->second;
  open_roots_.erase(it);
  ++roots_closed_;
  finish(rec, t, outcome, reason);
}

void SpanTracker::finish(SpanRecord rec, sim::Time t, SpanOutcome outcome,
                         std::int16_t reason) {
  shard_.assertHeld();
  rec.t_close = t;
  rec.outcome = outcome;
  rec.reason = reason;
  if (outcome == SpanOutcome::kDropped) {
    ++closed_dropped_;
  } else {
    ++closed_delivered_;
  }
  if (records_.size() >= capacity_) {
    ++records_lost_;
    return;
  }
  records_.push_back(rec);
}

std::vector<SpanRecord> SpanTracker::traceSpans(std::uint64_t trace_id) const {
  shard_.assertHeld();
  std::vector<SpanRecord> out;
  for (const auto& rec : records_) {
    if (rec.trace_id == trace_id) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.root != b.root) return a.root;
              if (a.t_open != b.t_open) return a.t_open < b.t_open;
              return a.span_id < b.span_id;
            });
  return out;
}

std::vector<std::uint64_t> SpanTracker::traceIds() const {
  shard_.assertHeld();
  std::vector<std::uint64_t> ids;
  for (const auto& rec : records_) ids.push_back(rec.trace_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void SpanTracker::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "trace_id,span_id,root,layer,node,link,t_open_ns,t_close_ns,dur_ns,"
        "outcome,reason,bytes\n";
  for (const auto& rec : records_) {
    os << rec.trace_id << ',' << rec.span_id << ',' << (rec.root ? 1 : 0)
       << ',' << name(rec.layer) << ',' << name(rec.node) << ','
       << name(rec.link) << ',' << rec.t_open << ',' << rec.t_close << ','
       << rec.duration() << ',' << spanOutcomeName(rec.outcome) << ','
       << name(rec.reason) << ',' << rec.bytes << '\n';
  }
}

void SpanTracker::clear() {
  shard_.assertHeld();
  next_trace_id_ = 0;
  next_span_id_ = 0;
  opened_ = closed_delivered_ = closed_dropped_ = 0;
  roots_opened_ = roots_closed_ = late_root_closes_ = 0;
  records_lost_ = 0;
  names_.clear();
  open_spans_.clear();
  open_roots_.clear();
  records_.clear();
}

void closeRootAtCurrent(std::uint64_t trace_id, const char* reason) {
  if (trace_id == 0) return;
  Obs* ctx = current();
  if (ctx == nullptr || ctx->clock == nullptr) return;
  ctx->spans.closeRoot(trace_id, ctx->clock->now(), SpanOutcome::kDropped,
                       ctx->spans.intern(reason));
}

}  // namespace vini::obs
