#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace vini::obs {

const char* metricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0 || bounds_.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      if (in_bucket == 0) return upper;
      const double within = rank - static_cast<double>(cumulative);
      return lower +
             (upper - lower) * within / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

namespace {

MetricType typeOf(const std::variant<Counter, Gauge, Histogram>& m) {
  if (std::holds_alternative<Counter>(m)) return MetricType::kCounter;
  if (std::holds_alternative<Gauge>(m)) return MetricType::kGauge;
  return MetricType::kHistogram;
}

}  // namespace

template <typename T>
T& MetricsRegistry::registerAs(const std::string& component,
                               const std::string& node,
                               const std::string& name, T initial) {
  shard_.assertHeld();
  MetricKey key{component, node, name};
  auto [it, inserted] = metrics_.try_emplace(key, std::move(initial));
  if (!inserted && !std::holds_alternative<T>(it->second)) {
    throw std::logic_error("obs: metric " + key.str() +
                           " re-registered with different type (was " +
                           metricTypeName(typeOf(it->second)) + ")");
  }
  return std::get<T>(it->second);
}

Counter& MetricsRegistry::counter(const std::string& component,
                                  const std::string& node,
                                  const std::string& name) {
  shard_.assertHeld();
  return registerAs(component, node, name, Counter{});
}

Gauge& MetricsRegistry::gauge(const std::string& component,
                              const std::string& node,
                              const std::string& name) {
  shard_.assertHeld();
  return registerAs(component, node, name, Gauge{});
}

Histogram& MetricsRegistry::histogram(const std::string& component,
                                      const std::string& node,
                                      const std::string& name,
                                      std::vector<double> upper_bounds) {
  shard_.assertHeld();
  return registerAs(component, node, name,
                    Histogram{std::move(upper_bounds)});
}

const MetricsRegistry::Metric* MetricsRegistry::find(
    const std::string& component, const std::string& node,
    const std::string& name) const {
  shard_.assertHeld();
  const auto it = metrics_.find(MetricKey{component, node, name});
  return it == metrics_.end() ? nullptr : &it->second;
}

const Counter* MetricsRegistry::findCounter(const std::string& component,
                                            const std::string& node,
                                            const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Counter>(m) : nullptr;
}

const Gauge* MetricsRegistry::findGauge(const std::string& component,
                                        const std::string& node,
                                        const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Gauge>(m) : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& component,
                                                const std::string& node,
                                                const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Histogram>(m) : nullptr;
}

std::uint64_t MetricsRegistry::counterValue(const std::string& component,
                                            const std::string& node,
                                            const std::string& name) const {
  shard_.assertHeld();
  const Counter* c = findCounter(component, node, name);
  return c ? c->value() : 0;
}

std::uint64_t MetricsRegistry::sumCounters(const std::string& component,
                                           const std::string& name) const {
  shard_.assertHeld();
  std::uint64_t total = 0;
  for (const auto& [key, metric] : metrics_) {
    if (key.component != component || key.name != name) continue;
    if (const Counter* c = std::get_if<Counter>(&metric)) total += c->value();
  }
  return total;
}

void MetricsRegistry::forEach(
    const std::function<void(const MetricKey&, MetricType)>& visit) const {
  shard_.assertHeld();
  for (const auto& [key, metric] : metrics_) visit(key, typeOf(metric));
}

void MetricsRegistry::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "component,node,name,type,value\n";
  for (const auto& [key, metric] : metrics_) {
    if (const Counter* c = std::get_if<Counter>(&metric)) {
      os << key.component << "," << key.node << "," << key.name << ",counter,"
         << c->value() << "\n";
    } else if (const Gauge* g = std::get_if<Gauge>(&metric)) {
      os << key.component << "," << key.node << "," << key.name << ",gauge,"
         << g->value() << "\n";
    } else if (const Histogram* h = std::get_if<Histogram>(&metric)) {
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_count," << h->count() << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_sum," << h->sum() << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p50," << h->quantile(0.50) << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p95," << h->quantile(0.95) << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p99," << h->quantile(0.99) << "\n";
      for (std::size_t i = 0; i < h->bucketCount(); ++i) {
        os << key.component << "," << key.node << "," << key.name
           << ",histogram_bucket";
        if (i < h->bounds().size()) {
          os << "_le_" << h->upperBound(i);
        } else {
          os << "_overflow";
        }
        os << "," << h->bucketValue(i) << "\n";
      }
    }
  }
}

}  // namespace vini::obs
