#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace vini::obs {

const char* metricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {}

Histogram::Histogram(const Histogram& other) : bounds_(other.bounds_) {
  // atomics are not copyable; snapshot element-wise (registry copies
  // happen at registration/merge time, never concurrently with writes).
  buckets_ = std::vector<std::atomic<std::uint64_t>>(other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.bucketValue(i), std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  bounds_ = other.bounds_;
  buckets_ = std::vector<std::atomic<std::uint64_t>>(other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.bucketValue(i), std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  return *this;
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0 || bounds_.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = bucketValue(i);
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      if (in_bucket == 0) return upper;
      const double within = rank - static_cast<double>(cumulative);
      return lower +
             (upper - lower) * within / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::logic_error(
        "obs: histogram merge with mismatched bucket bounds");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.bucketValue(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double delta = other.sum();
  while (!sum_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

namespace {

MetricType typeOf(const std::variant<Counter, Gauge, Histogram>& m) {
  if (std::holds_alternative<Counter>(m)) return MetricType::kCounter;
  if (std::holds_alternative<Gauge>(m)) return MetricType::kGauge;
  return MetricType::kHistogram;
}

/// FNV-1a over the node name: the deterministic fallback router for
/// keys whose node field is not a listed physical node.  Stable across
/// runs, platforms, and registration order by construction.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::size_t kUncheckedPartition = static_cast<std::size_t>(-1);

}  // namespace

void MetricsRegistry::partitionByNode(
    const std::vector<std::vector<std::string>>& groups) {
  shard_.assertHeld();
  if (parts_.size() != 1) {
    throw std::logic_error("obs: registry already partitioned");
  }
  if (!parts_[0].empty()) {
    throw std::logic_error(
        "obs: partitionByNode() after metrics were registered");
  }
  if (groups.empty()) {
    throw std::logic_error("obs: partitionByNode() with no groups");
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& node : groups[g]) {
      if (!node_part_.emplace(node, g).second) {
        throw std::logic_error("obs: node " + node +
                               " assigned to two partitions");
      }
    }
  }
  parts_.resize(groups.size());
}

std::size_t MetricsRegistry::partitionOf(const std::string& node) const {
  shard_.assertHeld();
  if (parts_.size() == 1) return 0;
  const auto it = node_part_.find(node);
  if (it != node_part_.end()) return it->second;
  return static_cast<std::size_t>(fnv1a(node) % parts_.size());
}

ScopedRegistry MetricsRegistry::scoped(const std::string& node) {
  shard_.assertHeld();
  return ScopedRegistry(*this, partitionOf(node));
}

template <typename T>
T& MetricsRegistry::registerScoped(std::size_t claimed_part,
                                   const std::string& component,
                                   const std::string& node,
                                   const std::string& name, T initial) {
  shard_.assertHeld();
  MetricKey key{component, node, name};
  const std::size_t part = partitionOf(node);
  if (claimed_part != kUncheckedPartition && claimed_part != part) {
    throw std::logic_error(
        "obs: metric " + key.str() + " registered through partition " +
        std::to_string(claimed_part) + " scope but routes to partition " +
        std::to_string(part));
  }
  auto [it, inserted] = parts_[part].try_emplace(key, std::move(initial));
  if (!inserted && !std::holds_alternative<T>(it->second)) {
    throw std::logic_error("obs: metric " + key.str() +
                           " re-registered with different type (was " +
                           metricTypeName(typeOf(it->second)) + ")");
  }
  return std::get<T>(it->second);
}

template <typename T>
T& MetricsRegistry::registerAs(const std::string& component,
                               const std::string& node,
                               const std::string& name, T initial) {
  return registerScoped(kUncheckedPartition, component, node, name,
                        std::move(initial));
}

Counter& MetricsRegistry::counter(const std::string& component,
                                  const std::string& node,
                                  const std::string& name) {
  shard_.assertHeld();
  return registerAs(component, node, name, Counter{});
}

Gauge& MetricsRegistry::gauge(const std::string& component,
                              const std::string& node,
                              const std::string& name) {
  shard_.assertHeld();
  return registerAs(component, node, name, Gauge{});
}

Histogram& MetricsRegistry::histogram(const std::string& component,
                                      const std::string& node,
                                      const std::string& name,
                                      std::vector<double> upper_bounds) {
  shard_.assertHeld();
  return registerAs(component, node, name,
                    Histogram{std::move(upper_bounds)});
}

Counter& ScopedRegistry::counter(const std::string& component,
                                 const std::string& node,
                                 const std::string& name) {
  return parent_->registerScoped(part_, component, node, name, Counter{});
}

Gauge& ScopedRegistry::gauge(const std::string& component,
                             const std::string& node,
                             const std::string& name) {
  return parent_->registerScoped(part_, component, node, name, Gauge{});
}

Histogram& ScopedRegistry::histogram(const std::string& component,
                                     const std::string& node,
                                     const std::string& name,
                                     std::vector<double> upper_bounds) {
  return parent_->registerScoped(part_, component, node, name,
                                 Histogram{std::move(upper_bounds)});
}

const MetricsRegistry::Metric* MetricsRegistry::find(
    const std::string& component, const std::string& node,
    const std::string& name) const {
  shard_.assertHeld();
  const Partition& part = parts_[partitionOf(node)];
  const auto it = part.find(MetricKey{component, node, name});
  return it == part.end() ? nullptr : &it->second;
}

const Counter* MetricsRegistry::findCounter(const std::string& component,
                                            const std::string& node,
                                            const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Counter>(m) : nullptr;
}

const Gauge* MetricsRegistry::findGauge(const std::string& component,
                                        const std::string& node,
                                        const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Gauge>(m) : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& component,
                                                const std::string& node,
                                                const std::string& name) const {
  shard_.assertHeld();
  const Metric* m = find(component, node, name);
  return m ? std::get_if<Histogram>(m) : nullptr;
}

std::uint64_t MetricsRegistry::counterValue(const std::string& component,
                                            const std::string& node,
                                            const std::string& name) const {
  shard_.assertHeld();
  const Counter* c = findCounter(component, node, name);
  return c ? c->value() : 0;
}

std::uint64_t MetricsRegistry::sumCounters(const std::string& component,
                                           const std::string& name) const {
  shard_.assertHeld();
  std::uint64_t total = 0;
  for (const Partition& part : parts_) {
    for (const auto& [key, metric] : part) {
      if (key.component != component || key.name != name) continue;
      if (const Counter* c = std::get_if<Counter>(&metric)) total += c->value();
    }
  }
  return total;
}

std::size_t MetricsRegistry::size() const {
  shard_.assertHeld();
  std::size_t n = 0;
  for (const Partition& part : parts_) n += part.size();
  return n;
}

void MetricsRegistry::visitSorted(
    const std::function<void(const MetricKey&, const Metric&)>& visit) const {
  // k-way merge over the per-partition sorted maps.  Keys are disjoint
  // across partitions (routing is a pure function of the key), so the
  // merged walk is exactly the monolithic map's iteration order.
  std::vector<Partition::const_iterator> heads;
  heads.reserve(parts_.size());
  for (const Partition& part : parts_) heads.push_back(part.begin());
  for (;;) {
    std::size_t best = parts_.size();
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (heads[i] == parts_[i].end()) continue;
      if (best == parts_.size() || heads[i]->first < heads[best]->first) {
        best = i;
      }
    }
    if (best == parts_.size()) return;
    visit(heads[best]->first, heads[best]->second);
    ++heads[best];
  }
}

void MetricsRegistry::forEach(
    const std::function<void(const MetricKey&, MetricType)>& visit) const {
  shard_.assertHeld();
  visitSorted(
      [&](const MetricKey& key, const Metric& m) { visit(key, typeOf(m)); });
}

void MetricsRegistry::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "component,node,name,type,value\n";
  visitSorted([&](const MetricKey& key, const Metric& metric) {
    if (const Counter* c = std::get_if<Counter>(&metric)) {
      os << key.component << "," << key.node << "," << key.name << ",counter,"
         << c->value() << "\n";
    } else if (const Gauge* g = std::get_if<Gauge>(&metric)) {
      os << key.component << "," << key.node << "," << key.name << ",gauge,"
         << g->value() << "\n";
    } else if (const Histogram* h = std::get_if<Histogram>(&metric)) {
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_count," << h->count() << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_sum," << h->sum() << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p50," << h->quantile(0.50) << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p95," << h->quantile(0.95) << "\n";
      os << key.component << "," << key.node << "," << key.name
         << ",histogram_p99," << h->quantile(0.99) << "\n";
      for (std::size_t i = 0; i < h->bucketCount(); ++i) {
        os << key.component << "," << key.node << "," << key.name
           << ",histogram_bucket";
        if (i < h->bounds().size()) {
          os << "_le_" << h->upperBound(i);
        } else {
          os << "_overflow";
        }
        os << "," << h->bucketValue(i) << "\n";
      }
    }
  });
}

void mergeRegistries(const std::vector<const MetricsRegistry*>& from,
                     MetricsRegistry& into) {
  into.shard_.assertHeld();
  for (const MetricsRegistry* src : from) {
    if (src == nullptr || src == &into) continue;
    src->shard_.assertHeld();
    for (const MetricsRegistry::Partition& part : src->parts_) {
      for (const auto& [key, metric] : part) {
        MetricsRegistry::Partition& dst =
            into.parts_[into.partitionOf(key.node)];
        auto [it, inserted] = dst.try_emplace(key, metric);
        if (inserted) continue;
        if (it->second.index() != metric.index()) {
          throw std::logic_error("obs: merge of metric " + key.str() +
                                 " with conflicting types");
        }
        if (auto* c = std::get_if<Counter>(&it->second)) {
          c->merge(std::get<Counter>(metric));
        } else if (auto* g = std::get_if<Gauge>(&it->second)) {
          g->merge(std::get<Gauge>(metric));
        } else {
          std::get<Histogram>(it->second).merge(std::get<Histogram>(metric));
        }
      }
    }
  }
}

}  // namespace vini::obs
