// Parallelism-ceiling profiler: how much speedup would sharding buy?
//
// The plan of record for the parallel engine is conservative-lookahead
// synchronization (the classic null-message-free windowed scheme): pick
// a lookahead L no larger than the minimum cross-node delay (for VINI
// worlds, the minimum link propagation delay), divide virtual time into
// windows of length L, let every shard execute its own nodes' events
// within the current window in parallel, and barrier at each window
// boundary to exchange cross-shard events.  Under that model a run's
// wall time is proportional to the *critical path*
//
//     CP(k) = sum over windows w of  max over shards s of  events(w, s)
//
// and the predicted speedup over the sequential engine is
// total_events / CP(k).
//
// The ParallelismProfiler replays the real event stream against that
// model without ever running a second thread: it rides the EventQueue's
// introspection hook, buckets each executed event into its lookahead
// window by node attribution, and at analyze() time assigns nodes to
// shards (LPT greedy on per-node totals) and computes CP(k) for the
// requested shard counts.  Because now() is monotone, events arrive in
// nondecreasing window order and the profiler keeps only the current
// window's per-node counts plus the compacted per-window loads —
// memory is O(nodes * non-empty windows), trivially small for the
// coarse lookaheads real topologies give (Abilene: 2 ms).
//
// Everything is passive and deterministic: attaching the profiler does
// not perturb the run, and the report depends only on the seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/event_queue.h"

namespace vini::obs {

class ParallelismProfiler {
 public:
  ParallelismProfiler() = default;
  ~ParallelismProfiler() { detach(); }

  ParallelismProfiler(const ParallelismProfiler&) = delete;
  ParallelismProfiler& operator=(const ParallelismProfiler&) = delete;

  /// The conservative lookahead window length; must be > 0 before
  /// attach().  Use the minimum cross-node delay of the topology
  /// (PhysNetwork::minPropagation()).
  void setLookahead(sim::Duration lookahead);
  sim::Duration lookahead() const {
    shard_.assertHeld();
    return lookahead_;
  }

  /// Install onto the queue's introspection hook (single slot).
  /// Throws std::logic_error if no lookahead was set.
  void attach(sim::EventQueue& queue);
  void detach();
  bool attached() const {
    shard_.assertHeld();
    return queue_ != nullptr;
  }

  struct NodeLoad {
    std::string name;  // "-" pools the unattributed events
    std::uint64_t events = 0;
  };

  struct ShardPrediction {
    int shards = 0;
    /// CP(k): sum over windows of the max per-shard event count.
    std::uint64_t critical_path_events = 0;
    double predicted_speedup = 0.0;  // total / CP(k)
    double efficiency = 0.0;         // speedup / k
  };

  struct Report {
    std::int64_t lookahead_ns = 0;
    std::uint64_t total_events = 0;
    std::uint64_t attributed_events = 0;
    std::uint64_t unattributed_events = 0;
    /// Events whose scheduling handler ran on a *different* node — the
    /// events a sharded engine would have to hand off at a barrier.
    std::uint64_t cross_node_events = 0;
    double cross_node_ratio = 0.0;  // cross / total
    /// Cross-node events delivered less than one lookahead after being
    /// scheduled.  Nonzero means the chosen lookahead is too large for
    /// this workload and a conservative engine would deadlock/miss —
    /// the report's red flag.
    std::uint64_t lookahead_violations = 0;
    std::int64_t min_cross_delay_ns = 0;  // 0 when no cross-node event
    std::uint64_t windows = 0;       // non-empty windows (barrier rounds)
    std::uint64_t window_span = 0;   // last window index - first + 1
    std::vector<NodeLoad> nodes;     // sorted by events desc, name asc
    std::vector<ShardPrediction> predictions;
  };

  /// Compute the report for the given shard counts (e.g. {2, 4, 8, 16}).
  /// Deterministic: same event stream, same report.
  Report analyze(const std::vector<int>& shard_counts) const;

  /// Serialize a report as deterministic, pretty-printed JSON
  /// (PROFILE_report.json; schema_version 1).  No wall-clock values —
  /// two same-seed runs byte-diff clean.
  static void writeJson(std::ostream& os, const Report& report);

  std::uint64_t totalEvents() const {
    shard_.assertHeld();
    return total_events_;
  }

  void clear();

 private:
  /// Per-window per-node load, compacted: only nodes with events appear.
  /// Tag sim::kNoNode carries the window's unattributed events.
  struct WindowLoad {
    std::uint64_t window = 0;
    std::vector<std::pair<sim::NodeTag, std::uint64_t>> counts;
  };

  void onExec(const sim::EventQueue::ExecEvent& e);
  void flushWindow() VINI_REQUIRES(shard_);

  // Rides the queue's introspection hook, so it executes on the shard
  // that owns the attached queue.
  core::ShardToken shard_;
  sim::EventQueue* queue_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  sim::Duration lookahead_ VINI_GUARDED_BY(shard_) = 0;

  // Current (open) window: counts indexed by NodeTag, grown on demand;
  // unattributed events counted separately.
  std::uint64_t cur_window_ VINI_GUARDED_BY(shard_) = 0;
  bool cur_open_ VINI_GUARDED_BY(shard_) = false;
  std::vector<std::uint64_t> cur_counts_ VINI_GUARDED_BY(shard_);
  std::uint64_t cur_unattributed_ VINI_GUARDED_BY(shard_) = 0;

  std::vector<WindowLoad> windows_ VINI_GUARDED_BY(shard_);
  std::vector<std::uint64_t> node_totals_ VINI_GUARDED_BY(shard_);
  std::uint64_t total_events_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t unattributed_events_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t cross_node_events_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t lookahead_violations_ VINI_GUARDED_BY(shard_) = 0;
  sim::Duration min_cross_delay_ VINI_GUARDED_BY(shard_) = 0;
};

}  // namespace vini::obs
