#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>

#include "sim/event_queue.h"

namespace vini::obs {

// -- Timeline ---------------------------------------------------------------

Timeline::Timeline(std::size_t capacity) : capacity_(capacity) {}

std::int16_t Timeline::intern(
    std::vector<std::string>& names,
    std::unordered_map<std::string, std::int16_t>& index,
    const std::string& name) {
  shard_.assertHeld();
  if (auto it = index.find(name); it != index.end()) return it->second;
  if (names.size() >= 0x7fff) throw std::length_error("timeline name table full");
  const auto id = static_cast<std::int16_t>(names.size());
  names.push_back(name);
  index.emplace(name, id);
  return id;
}

void Timeline::instant(const std::string& track, const std::string& label,
                       sim::Time t) {
  duration(track, label, t, 0);
}

void Timeline::duration(const std::string& track, const std::string& label,
                        sim::Time t, sim::Duration dur) {
  if (!lane_ops_.empty()) {
    const int lane = sim::EventQueue::currentShardLane();
    if (lane >= 0 && static_cast<std::size_t>(lane) < lane_ops_.size()) {
      lane_ops_[static_cast<std::size_t>(lane)].push_back(
          LaneOp{track, label, t, dur > 0 ? dur : 0});
      return;
    }
  }
  shard_.assertHeld();
  if (events_.size() >= capacity_) {
    ++events_lost_;
    return;
  }
  TimelineEvent ev;
  ev.track = intern(tracks_, track_index_, track);
  ev.label = intern(labels_, label_index_, label);
  ev.t = t;
  ev.dur = dur > 0 ? dur : 0;
  events_.push_back(ev);
}

void Timeline::enableShardLanes(std::size_t lanes) {
  shard_.assertHeld();
  if (!lane_ops_.empty()) {
    throw std::logic_error("obs: timeline shard lanes already enabled");
  }
  if (lanes == 0) {
    throw std::logic_error("obs: timeline enableShardLanes() with no lanes");
  }
  lane_ops_.resize(lanes);
}

void Timeline::foldShardLanes() {
  shard_.assertHeld();
  // Deterministic (t, lane, issue-order) merge; per-lane streams are
  // already time-sorted (lane clocks are monotonic).
  struct Cursor {
    std::size_t lane = 0;
    std::size_t i = 0;
  };
  std::vector<Cursor> cursors;
  for (std::size_t l = 0; l < lane_ops_.size(); ++l) {
    if (!lane_ops_[l].empty()) cursors.push_back(Cursor{l, 0});
  }
  for (;;) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.i == lane_ops_[c.lane].size()) continue;
      if (best == nullptr ||
          lane_ops_[c.lane][c.i].t < lane_ops_[best->lane][best->i].t) {
        best = &c;
      }
    }
    if (best == nullptr) break;
    const LaneOp& op = lane_ops_[best->lane][best->i];
    duration(op.track, op.label, op.t, op.dur);
    ++best->i;
  }
  for (auto& buf : lane_ops_) buf.clear();
}

const std::string& Timeline::trackName(std::int16_t id) const {
  shard_.assertHeld();
  static const std::string kNone = "-";
  if (id < 0 || static_cast<std::size_t>(id) >= tracks_.size()) return kNone;
  return tracks_[static_cast<std::size_t>(id)];
}

const std::string& Timeline::labelName(std::int16_t id) const {
  shard_.assertHeld();
  static const std::string kNone = "-";
  if (id < 0 || static_cast<std::size_t>(id) >= labels_.size()) return kNone;
  return labels_[static_cast<std::size_t>(id)];
}

void Timeline::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "track,label,t_ns,dur_ns\n";
  for (const auto& ev : events_) {
    os << trackName(ev.track) << ',' << labelName(ev.label) << ',' << ev.t
       << ',' << ev.dur << '\n';
  }
}

void Timeline::clear() {
  shard_.assertHeld();
  events_lost_ = 0;
  tracks_.clear();
  labels_.clear();
  track_index_.clear();
  label_index_.clear();
  events_.clear();
}

// -- MetricSampler ----------------------------------------------------------

void MetricSampler::watch(const std::string& component,
                          const std::string& node, const std::string& name,
                          Mode mode) {
  shard_.assertHeld();
  Series s;
  s.key = MetricKey{component, node, name};
  s.mode = mode;
  series_.push_back(std::move(s));
  watch_state_.emplace_back();
}

void MetricSampler::attach(sim::EventQueue& queue) {
  shard_.assertHeld();
  attached_queue_ = &queue;
  queue.setAdvanceObserver(
      [this](sim::Time from, sim::Time to) { onAdvance(from, to); });
}

void MetricSampler::detach() {
  shard_.assertHeld();
  if (attached_queue_ == nullptr) return;
  attached_queue_->setAdvanceObserver(nullptr);
  attached_queue_ = nullptr;
}

void MetricSampler::onAdvance(sim::Time from, sim::Time to) {
  shard_.assertHeld();
  if (period_ <= 0 || registry_ == nullptr || series_.empty()) return;
  // First boundary origin + k*period strictly after `from`, then every
  // boundary up to and including `to`.
  sim::Time t;
  if (from < origin_) {
    t = origin_;
  } else {
    const sim::Time k = (from - origin_) / period_ + 1;
    t = origin_ + k * period_;
  }
  for (; t <= to; t += period_) sampleAt(t);
}

void MetricSampler::sampleAt(sim::Time t) {
  shard_.assertHeld();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    Series& s = series_[i];
    Watch& w = watch_state_[i];
    if (const Counter* c = registry_->findCounter(s.key.component, s.key.node,
                                                  s.key.name)) {
      const std::uint64_t v = c->value();
      // A counter is "written" iff its value moved (it is monotonic).
      if (s.mode == Mode::kEveryTick || v != w.last_counter) {
        s.points.push_back(Point{t, static_cast<double>(v)});
      }
      w.last_counter = v;
    } else if (const Gauge* g = registry_->findGauge(s.key.component,
                                                     s.key.node, s.key.name)) {
      // The version counter distinguishes "re-set to the same value"
      // (emit) from "untouched since last sample" (suppress); a gauge
      // never written at all (version 0) emits nothing in kOnChange.
      if (s.mode == Mode::kEveryTick || g->version() != w.last_gauge_version) {
        s.points.push_back(Point{t, g->value()});
      }
      w.last_gauge_version = g->version();
    }
    // Unresolved key: the metric may be registered later; no point yet.
  }
}

const MetricSampler::Series* MetricSampler::find(
    const std::string& component, const std::string& node,
    const std::string& name) const {
  shard_.assertHeld();
  for (const auto& s : series_) {
    if (s.key.component == component && s.key.node == node &&
        s.key.name == name) {
      return &s;
    }
  }
  return nullptr;
}

void MetricSampler::writeCsv(std::ostream& os) const {
  shard_.assertHeld();
  os << "component,node,name,t_ns,value\n";
  char buf[32];
  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      std::snprintf(buf, sizeof(buf), "%.6g", p.value);
      os << s.key.component << ',' << s.key.node << ',' << s.key.name << ','
         << p.t << ',' << buf << '\n';
    }
  }
}

void MetricSampler::clear() {
  shard_.assertHeld();
  for (auto& s : series_) s.points.clear();
  for (auto& w : watch_state_) w = Watch{};
}

void mergeSamplers(const std::vector<const MetricSampler*>& from,
                   MetricSampler& into) {
  into.shard_.assertHeld();
  for (MetricSampler::Series& dst : into.series_) {
    for (const MetricSampler* src : from) {
      if (src == nullptr || src == &into) continue;
      src->shard_.assertHeld();
      for (const MetricSampler::Series& s : src->series_) {
        if (s.key != dst.key || s.mode != dst.mode) continue;
        // Merge by timestamp; existing points win ties so the merge is
        // stable in source order.
        std::vector<MetricSampler::Point> merged;
        merged.reserve(dst.points.size() + s.points.size());
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < dst.points.size() || j < s.points.size()) {
          if (j == s.points.size() ||
              (i < dst.points.size() && dst.points[i].t <= s.points[j].t)) {
            merged.push_back(dst.points[i++]);
          } else {
            merged.push_back(s.points[j++]);
          }
        }
        dst.points = std::move(merged);
      }
    }
  }
}

// -- Chrome trace-event export ----------------------------------------------

namespace {

void jsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Virtual-time nanoseconds as fixed-format microseconds ("12.345").
void putMicros(std::ostream& os, sim::Time ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

struct JsonEvent {
  int tid = 0;
  sim::Time ts = 0;
  sim::Duration dur = -1;  // >= 0 => "X" complete event
  char ph = 'i';
  std::string name;
  std::string args;  // pre-rendered JSON object, or empty
};

void writeEvent(std::ostream& os, const JsonEvent& ev, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"";
  jsonEscape(os, ev.name);
  os << "\",\"ph\":\"" << (ev.dur >= 0 ? 'X' : ev.ph)
     << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
  putMicros(os, ev.ts);
  if (ev.dur >= 0) {
    os << ",\"dur\":";
    putMicros(os, ev.dur);
  }
  if (ev.ph == 'i' && ev.dur < 0) os << ",\"s\":\"t\"";
  if (!ev.args.empty()) os << ",\"args\":" << ev.args;
  os << "}";
}

void writeThreadName(std::ostream& os, int tid, const std::string& name,
                     bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":\"";
  jsonEscape(os, name);
  os << "\"}}";
}

}  // namespace

void writeChromeTrace(std::ostream& os, const SpanTracker& spans,
                      const Timeline& timeline, const MetricSampler& sampler) {
  // Assign tids: span layers first (sorted by layer name), then timeline
  // tracks, then one per sampled series.  Sorted assignment keeps the
  // numbering independent of interning order.
  std::map<std::string, int> span_tids;
  for (const auto& rec : spans.records()) {
    span_tids.emplace("span/" + spans.name(rec.layer), 0);
  }
  int next_tid = 1;
  for (auto& [name, tid] : span_tids) tid = next_tid++;

  std::map<std::string, int> track_tids;
  for (const auto& name : timeline.trackNames()) track_tids.emplace(name, 0);
  for (auto& [name, tid] : track_tids) tid = next_tid++;

  std::map<std::string, int> series_tids;
  for (const auto& s : sampler.series()) series_tids.emplace(s.key.str(), 0);
  for (auto& [name, tid] : series_tids) tid = next_tid++;

  std::vector<JsonEvent> events;
  events.reserve(spans.records().size() + timeline.events().size());

  for (const auto& rec : spans.records()) {
    JsonEvent ev;
    ev.tid = span_tids.at("span/" + spans.name(rec.layer));
    ev.ts = rec.t_open;
    ev.dur = rec.duration();
    ev.name = spans.name(rec.layer);
    std::string args = "{\"trace_id\":" + std::to_string(rec.trace_id);
    if (rec.node >= 0) args += ",\"node\":\"" + spans.name(rec.node) + "\"";
    if (rec.link >= 0) args += ",\"link\":\"" + spans.name(rec.link) + "\"";
    args += std::string(",\"outcome\":\"") + spanOutcomeName(rec.outcome) +
            "\"";
    if (rec.reason >= 0) args += ",\"reason\":\"" + spans.name(rec.reason) + "\"";
    if (rec.root) args += ",\"root\":1";
    args += "}";
    ev.args = std::move(args);
    events.push_back(std::move(ev));
  }

  for (const auto& tev : timeline.events()) {
    JsonEvent ev;
    ev.tid = track_tids.at(timeline.trackName(tev.track));
    ev.ts = tev.t;
    ev.dur = tev.dur > 0 ? tev.dur : -1;
    ev.name = timeline.labelName(tev.label);
    events.push_back(std::move(ev));
  }

  for (const auto& s : sampler.series()) {
    const int tid = series_tids.at(s.key.str());
    for (const auto& p : s.points) {
      JsonEvent ev;
      ev.tid = tid;
      ev.ts = p.t;
      ev.ph = 'C';
      ev.name = s.key.str();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", p.value);
      ev.args = std::string("{\"value\":") + buf + "}";
      events.push_back(std::move(ev));
    }
  }

  // Per-track monotonic timestamps; stable so equal (tid, ts) keep
  // record order.
  std::stable_sort(events.begin(), events.end(),
                   [](const JsonEvent& a, const JsonEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [name, tid] : span_tids) writeThreadName(os, tid, name, &first);
  for (const auto& [name, tid] : track_tids) writeThreadName(os, tid, name, &first);
  for (const auto& [name, tid] : series_tids) writeThreadName(os, tid, name, &first);
  for (const auto& ev : events) writeEvent(os, ev, &first);
  os << "\n]}\n";
}

// -- Per-hop decomposition --------------------------------------------------

std::vector<HopSegment> decomposeTrace(const SpanTracker& spans,
                                       std::uint64_t trace_id) {
  const std::vector<SpanRecord> all = spans.traceSpans(trace_id);
  const SpanRecord* root = nullptr;
  for (const auto& rec : all) {
    if (rec.root) {
      root = &rec;
      break;
    }
  }
  std::vector<HopSegment> out;
  if (root == nullptr) return out;

  const sim::Time t_end = root->t_close;
  sim::Time cursor = root->t_open;
  auto gapUntil = [&](sim::Time t) {
    if (t > cursor) {
      out.push_back(HopSegment{"unattributed", "", "", cursor, t - cursor});
      cursor = t;
    }
  };

  // Hop spans in t_open order, clipped to [root.t_open, root.t_close]
  // and to the part not already attributed — overlapping spans (a layer
  // span enclosing a link span) attribute the overlap to the
  // earlier-starting span.
  for (const auto& rec : all) {
    if (rec.root) continue;
    const sim::Time start = std::max(rec.t_open, cursor);
    const sim::Time end = std::min(rec.t_close, t_end);
    if (end <= start) continue;
    gapUntil(start);
    out.push_back(HopSegment{spans.name(rec.layer), spans.name(rec.node),
                             spans.name(rec.link), start, end - start});
    cursor = end;
  }
  gapUntil(t_end);
  return out;
}

}  // namespace vini::obs
