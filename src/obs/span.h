// Causal span tracing.
//
// A *trace* is one packet's journey through the stack, identified by the
// trace id assigned at ingress (app ping/iperf, OpenVPN client) and
// carried in PacketMeta.  Each layer the packet traverses opens a *span*
// when it takes custody and closes it when it hands the packet on —
// overlay encap, Click forwarding, the host stack's NIC/kernel paths,
// and the physical link decomposed into queueing, serialization, and
// propagation.  A delivered packet therefore yields a per-hop latency
// breakdown; a dropped packet yields a span closed with a drop reason.
//
// Two span shapes:
//  * the *root* span, opened once at ingress and keyed by trace id, so
//    any component holding the packet (and thus its trace id) can close
//    it at a drop site without plumbing handles around;
//  * *hop* spans, opened and closed by the same component through the
//    id returned from open() — these ride through the component's own
//    completion lambdas.
//
// Conservation is a checkable invariant: every opened span is closed
// exactly once (delivered, or dropped with a reason), and the tracker
// counts both sides so tests and the V-audit layer can reconcile them.
// Like the rest of the obs layer the tracker is strictly passive — it
// never schedules events, consumes randomness, or mutates sim state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/time.h"

namespace vini::obs {

enum class SpanOutcome : std::uint8_t {
  kOpen = 0,       // still in flight (only seen on unclosed spans)
  kDelivered = 1,  // handed to the next layer / final consumer
  kDropped = 2,    // destroyed; reason names the drop site
};

const char* spanOutcomeName(SpanOutcome outcome);

/// One completed (or still-open) span.  Names — layer, node, link, drop
/// reason — are interned in the tracker's shared string table.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  sim::Time t_open = 0;
  sim::Time t_close = -1;  // -1 while open
  std::int16_t layer = -1;
  std::int16_t node = -1;
  std::int16_t link = -1;
  std::int16_t reason = -1;
  SpanOutcome outcome = SpanOutcome::kOpen;
  bool root = false;
  std::uint32_t bytes = 0;

  sim::Duration duration() const { return t_close >= t_open ? t_close - t_open : 0; }
};

class SpanTracker {
 public:
  static constexpr std::uint32_t kNoSpan = 0;
  /// Completed spans are retained up to this cap; conservation counters
  /// keep counting past it (same contract as the packet tracer's ring).
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit SpanTracker(std::size_t capacity = kDefaultCapacity);

  /// Intern a name (layer, node, link, or drop reason) in the shared
  /// string table; re-interning returns the same id.  From inside a
  /// worker lane a miss returns a *provisional* (negative, <= -2) id
  /// backed by the lane's pending table; foldShardLanes() re-interns it
  /// into the shared table when the referencing op replays.  Hits on
  /// already-interned names return the real id even from lanes (the
  /// shared table is frozen while lanes execute).
  std::int16_t intern(const std::string& name) VINI_NO_THREAD_SAFETY_ANALYSIS;
  const std::string& name(std::int16_t id) const;
  const std::vector<std::string>& names() const {
    shard_.assertHeld();
    return names_;
  }

  /// Assign a fresh trace id (ingress).  Ids are dense and deterministic:
  /// the Nth packet admitted to tracing in a run always gets id N.  From
  /// inside a worker lane the id carries the lane in its top bits
  /// ([lane+1 : 16 | seq : 48]) — still deterministic (a packet's
  /// ingress node fixes its lane), but banded rather than globally
  /// dense, so barrier-free allocation cannot race.
  std::uint64_t newTraceId() VINI_NO_THREAD_SAFETY_ANALYSIS;

  // -- Hop spans --------------------------------------------------------------

  /// Open a span; the returned id is owed exactly one close().  From a
  /// worker lane the op is buffered and the returned id is provisional
  /// (lane-banded, [lane+1 : 8 | seq : 24]); the close may use it from
  /// the same lane (hop spans are lane-local: the component that opens
  /// a span closes it, and components live on one node) or from the
  /// main thread after the fold mapped it to the real id.
  std::uint32_t open(std::uint64_t trace_id, std::int16_t layer, sim::Time t,
                     std::int16_t node = -1, std::int16_t link = -1,
                     std::uint32_t bytes = 0) VINI_NO_THREAD_SAFETY_ANALYSIS;
  void close(std::uint32_t span_id, sim::Time t,
             SpanOutcome outcome = SpanOutcome::kDelivered,
             std::int16_t reason = -1) VINI_NO_THREAD_SAFETY_ANALYSIS;

  // -- Root spans -------------------------------------------------------------

  /// Open the end-to-end span for `trace_id` (once per trace).
  void openRoot(std::uint64_t trace_id, std::int16_t layer, sim::Time t,
                std::int16_t node = -1,
                std::uint32_t bytes = 0) VINI_NO_THREAD_SAFETY_ANALYSIS;
  /// Close the root span by trace id — drop sites use this, since the
  /// packet carries its trace id but no span handle.  A second close for
  /// the same trace (e.g. a reply dropped after the probe already timed
  /// out of the trace) is a counted no-op, preserving exactly-once.
  void closeRoot(std::uint64_t trace_id, sim::Time t, SpanOutcome outcome,
                 std::int16_t reason = -1) VINI_NO_THREAD_SAFETY_ANALYSIS;
  bool rootOpen(std::uint64_t trace_id) const {
    shard_.assertHeld();
    return open_roots_.count(trace_id) != 0;
  }

  // -- Shard lanes (parallel engine) ------------------------------------------

  /// Arm per-lane op buffering: span operations issued from worker
  /// lanes (sim::EventQueue::currentShardLane() >= 0) are buffered as
  /// intents and replayed against the shared tables by
  /// foldShardLanes() in (t, lane, issue-order) order — a pure
  /// function of the event stream, byte-identical at every thread
  /// count.  Roots opened on one lane and closed on another reconcile
  /// at the fold because conservative lookahead guarantees the open's
  /// timestamp precedes the close's (a cross-lane hop costs at least
  /// one lookahead window).  Call before the run, at most once.
  void enableShardLanes(std::size_t lanes);
  std::size_t shardLaneCount() const { return lane_states_.size() ? lane_states_.size() - 1 : 0; }
  /// Replay every buffered lane op.  Main-thread only, lanes
  /// quiescent; idempotent; must run before the read side.
  void foldShardLanes();

  // -- Read side --------------------------------------------------------------

  std::uint64_t opened() const {
    shard_.assertHeld();
    return opened_;
  }
  std::uint64_t closedDelivered() const {
    shard_.assertHeld();
    return closed_delivered_;
  }
  std::uint64_t closedDropped() const {
    shard_.assertHeld();
    return closed_dropped_;
  }
  std::uint64_t closed() const { return closedDelivered() + closedDropped(); }
  /// Spans opened but not yet closed (in-flight packets at end of run).
  std::uint64_t stillOpen() const { return opened() - closed(); }
  std::uint64_t rootsOpened() const {
    shard_.assertHeld();
    return roots_opened_;
  }
  std::uint64_t rootsClosed() const {
    shard_.assertHeld();
    return roots_closed_;
  }
  std::uint64_t rootsStillOpen() const {
    shard_.assertHeld();
    return open_roots_.size();
  }
  /// closeRoot() calls that found the root already closed.
  std::uint64_t lateRootCloses() const {
    shard_.assertHeld();
    return late_root_closes_;
  }

  /// Completed spans in close order (capped at capacity()).
  const std::vector<SpanRecord>& records() const {
    shard_.assertHeld();
    return records_;
  }
  std::size_t capacity() const { return capacity_; }
  /// Completed spans dropped once the cap was reached (counters above
  /// remain exact).
  std::uint64_t recordsLost() const {
    shard_.assertHeld();
    return records_lost_;
  }

  /// All completed spans of one trace, sorted by (t_open, span_id); the
  /// root span, if closed, is first.
  std::vector<SpanRecord> traceSpans(std::uint64_t trace_id) const;
  /// Trace ids with at least one completed span, ascending.
  std::vector<std::uint64_t> traceIds() const;

  /// "trace_id,span_id,root,layer,node,link,t_open_ns,t_close_ns,dur_ns,
  ///  outcome,reason,bytes" rows in close order.
  void writeCsv(std::ostream& os) const;

  void clear();

 private:
  void finish(SpanRecord rec, sim::Time t, SpanOutcome outcome,
              std::int16_t reason);

  /// One buffered span operation from a worker lane (or a deferred
  /// main-thread op that referenced still-buffered lane state).
  struct LaneOp {
    enum class Kind : std::uint8_t { kOpen, kClose, kOpenRoot, kCloseRoot };
    Kind kind = Kind::kOpen;
    sim::Time t = 0;
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;  ///< provisional or real (kClose only)
    std::int16_t layer = -1;
    std::int16_t node = -1;
    std::int16_t link = -1;
    std::int16_t reason = -1;  ///< <= -2 means lane-pending intern index
    SpanOutcome outcome = SpanOutcome::kDelivered;
    std::uint32_t bytes = 0;
  };
  struct LaneState {
    std::vector<LaneOp> ops;
    /// Names interned from this lane that missed the shared table;
    /// provisional id -(idx + 2) resolves here.  Persists across folds
    /// (provisional ids may outlive the window that minted them).
    std::vector<std::string> pending_names;
    std::uint32_t span_seq = 0;   ///< provisional span id allocator
    std::uint64_t trace_seq = 0;  ///< lane-banded trace id allocator
  };

  /// Lane of the calling thread clamped to the enabled lane set, or -1.
  int laneIndex() const;
  /// Main-thread pseudo-lane (index lane count): deferred ops that
  /// reference not-yet-folded lane state.
  LaneState& mainLane() { return lane_states_.back(); }
  std::int16_t resolvePending(const LaneState& lane, std::int16_t id)
      VINI_REQUIRES(shard_);

  static constexpr unsigned kLaneSpanShift = 24;
  static constexpr unsigned kLaneTraceShift = 48;
  static bool isProvisionalSpanId(std::uint32_t id) {
    return (id >> kLaneSpanShift) != 0;
  }

  // Sharded plan: a packet's spans follow it across shards, so the open
  // tables are the one obs structure that must become a true cross-shard
  // handoff (span state travels in the mailbox with the packet).
  core::ShardToken shard_;
  std::size_t capacity_;
  // cross-shard: trace ids must stay dense across all admitting shards.
  std::uint64_t next_trace_id_ VINI_GUARDED_BY(shard_) = 0;
  std::uint32_t next_span_id_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t opened_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t closed_delivered_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t closed_dropped_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t roots_opened_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t roots_closed_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t late_root_closes_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t records_lost_ VINI_GUARDED_BY(shard_) = 0;
  std::vector<std::string> names_ VINI_GUARDED_BY(shard_);
  // cross-shard: a span opened on one shard may close on another.
  std::unordered_map<std::uint32_t, SpanRecord> open_spans_
      VINI_GUARDED_BY(shard_);
  std::unordered_map<std::uint64_t, SpanRecord> open_roots_
      VINI_GUARDED_BY(shard_);
  std::vector<SpanRecord> records_ VINI_GUARDED_BY(shard_);
  /// Per-lane op buffers plus one trailing main-thread pseudo-lane
  /// (enableShardLanes sizes this to lanes + 1; empty = lanes off).
  /// Each lane entry is written only by the thread executing that lane
  /// inside a window; the barrier separates that from the main-thread
  /// fold, so access never races.
  std::vector<LaneState> lane_states_;
  /// provisional span id -> real id, filled when an open replays at the
  /// fold, consumed by the matching close.
  std::unordered_map<std::uint32_t, std::uint32_t> provisional_spans_
      VINI_GUARDED_BY(shard_);
  /// True while foldShardLanes() replays — miss paths count instead of
  /// re-deferring onto the buffers being drained.
  bool folding_ VINI_GUARDED_BY(shard_) = false;
};

/// Close the root span of `trace_id` on the *currently installed* obs
/// context, timestamped with the context's attached clock.  This is the
/// drop-site hook for components that have no cached obs handles (Click
/// filter elements, classifier misses): a no-op when `trace_id` is 0, no
/// context is installed, or no clock was attached.  Defined in span.cc
/// to keep this header below obs.h in the include order.
void closeRootAtCurrent(std::uint64_t trace_id, const char* reason);

}  // namespace vini::obs
