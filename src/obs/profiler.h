// The event-loop profiler.
//
// Attributes real (wall-clock) time and event counts to the component
// that scheduled each event, using the static tag string attached at
// schedule() time ("phys.link", "xorp.ospf", ...).  Untagged events are
// pooled under "untagged".  Events carrying a node attribution (the
// node-attributed schedule overloads) are additionally broken out per
// (tag, node), so a hot node is visible separately from a hot
// component — the per-tag view in stats() aggregates across nodes as
// before.
//
// The profiler observes wall-clock only — it never schedules events or
// touches simulated time, so attaching it cannot perturb a run.  The
// EventQueue reads the clock only while a profiler is attached; with no
// profiler the per-event cost is a single branch.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "sim/event_queue.h"

namespace vini::obs {

class EventLoopProfiler {
 public:
  struct HandlerStat {
    std::uint64_t events = 0;
    std::int64_t wall_ns = 0;
  };

  EventLoopProfiler() = default;
  ~EventLoopProfiler() { detach(); }

  EventLoopProfiler(const EventLoopProfiler&) = delete;
  EventLoopProfiler& operator=(const EventLoopProfiler&) = delete;

  /// Start attributing the queue's handler time to this profiler.
  /// Replaces any previously installed profiler on the queue.
  void attach(sim::EventQueue& queue);
  /// Stop profiling; accumulated stats are retained for reading.
  void detach();

  /// Per-tag stats (aggregated across nodes), sorted by tag (std::map)
  /// — deterministic iteration.
  const std::map<std::string, HandlerStat>& stats() const { return stats_; }
  /// Per-(tag, node) stats; node is "-" for unattributed events.
  const std::map<std::pair<std::string, std::string>, HandlerStat>& nodeStats()
      const {
    return node_stats_;
  }
  std::uint64_t totalEvents() const { return total_events_; }
  std::int64_t totalWallNs() const { return total_wall_ns_; }

  /// "tag,node,events,wall_ns" rows sorted by (tag, node).
  void writeCsv(std::ostream& os) const;

  void clear();

 private:
  void onEvent(const char* tag, sim::NodeTag node, std::int64_t wall_ns);

  sim::EventQueue* queue_ = nullptr;
  std::map<std::string, HandlerStat> stats_;
  std::map<std::pair<std::string, std::string>, HandlerStat> node_stats_;
  std::uint64_t total_events_ = 0;
  std::int64_t total_wall_ns_ = 0;
};

}  // namespace vini::obs
