// Engine introspection: the event queue's own vitals as registry metrics.
//
// The EngineMonitor mirrors the EventQueue's passive counters into the
// metrics registry at every virtual-time advance, so queue depth, slab
// occupancy, per-node executed-event counts, and the cross-node
// scheduling split show up in the same CSV/series exports as every
// other metric.  It rides the queue's single advance-observer slot and
// forwards to a chained MetricSampler, so "monitor + sampler" works on
// one hook: the monitor refreshes the engine metrics first, then the
// sampler snapshots them at the boundary — deterministic, since every
// value mirrored is itself deterministic.
//
// Wall-clock quantities (sim/wall ratio, ETA) are deliberately NOT
// mirrored on the advance path: a wall-clock value in the registry
// would differ between two same-seed runs and break the byte-identity
// the CSV diffs enforce.  They live behind accessors, plus an explicit
// updateWallGauges() for tools that want them registered and accept
// forfeiting byte-stable metric dumps.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/event_queue.h"

namespace vini::obs {

class EngineMonitor {
 public:
  EngineMonitor() = default;
  ~EngineMonitor() { detach(); }

  EngineMonitor(const EngineMonitor&) = delete;
  EngineMonitor& operator=(const EngineMonitor&) = delete;

  /// Register the "sim.engine" metrics in `registry` and install onto
  /// `queue`'s advance-observer slot.  `chain` (usually the Obs
  /// sampler) is forwarded every advance after the engine metrics are
  /// refreshed; pass the sampler here INSTEAD of calling its attach().
  void attach(sim::EventQueue& queue, MetricsRegistry& registry,
              MetricSampler* chain = nullptr);
  void detach();
  bool attached() const {
    shard_.assertHeld();
    return queue_ != nullptr;
  }

  /// Simulated seconds per wall second since attach (>1 = faster than
  /// real time).  Accessor only — see the header comment.
  double simWallRatio() const;
  /// Estimated wall seconds remaining until now() reaches `target`,
  /// extrapolating the ratio so far.  0 when already past or unknown.
  double etaSeconds(sim::Time target) const;

  /// Opt-in: mirror simWallRatio()/etaSeconds(target) into
  /// ("sim.engine", "wall", ...) gauges.  Wall-clock values make the
  /// registry dump machine-dependent — never call this on a path whose
  /// CSV a determinism gate diffs.
  void updateWallGauges(sim::Time target);

 private:
  void onAdvance(sim::Time from, sim::Time to);
  /// Mirror the queue's counters into the registry.
  void refresh() VINI_REQUIRES(shard_);

  // Rides the queue's advance hook, so it executes on the shard that
  // owns the attached queue (one monitor per shard in the sharded plan).
  core::ShardToken shard_;
  sim::EventQueue* queue_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  MetricsRegistry* registry_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  MetricSampler* chain_ VINI_PT_GUARDED_BY(shard_) = nullptr;

  Gauge* g_pending_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Gauge* g_storage_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Gauge* g_slab_slots_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Gauge* g_slab_free_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Counter* c_cross_sched_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Counter* c_same_sched_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  Counter* c_unattributed_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  /// Per-node ("sim.engine", <node>, "events_executed") counters,
  /// indexed by NodeTag; grown lazily as the queue interns tags.
  std::vector<Counter*> c_node_executed_ VINI_GUARDED_BY(shard_);

  // Mirrored counters are monotone totals on the queue side but
  // Counter handles only support inc(); track the last mirrored value
  // and bump by the delta.
  std::uint64_t last_cross_sched_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t last_same_sched_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t last_unattributed_ VINI_GUARDED_BY(shard_) = 0;
  std::vector<std::uint64_t> last_node_executed_ VINI_GUARDED_BY(shard_);

  std::chrono::steady_clock::time_point wall_start_ VINI_GUARDED_BY(shard_){};
  sim::Time sim_start_ VINI_GUARDED_BY(shard_) = 0;
};

}  // namespace vini::obs
