// Observability context and zero-cost-when-disabled macros.
//
// A simulation that wants instrumentation installs a ScopedObs at the
// top of its main(); components check obs::current() at construction,
// register their metrics, and cache the returned handles.  Hot paths go
// through the VINI_OBS_* macros below, which compile to nothing when the
// build sets -DVINI_OBS=OFF, and to a null-checked pointer bump when it
// is on but no ScopedObs is installed.
//
// The obs layer is strictly passive: it never schedules events, never
// consumes randomness, and never mutates simulation state, so enabling
// it cannot change a run's results.  The sim is single-threaded, so a
// plain global current() pointer suffices.
#pragma once

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace vini::obs {

/// Everything one simulation's instrumentation shares.
struct Obs {
  MetricsRegistry metrics;
  PacketTracer tracer;
  EventLoopProfiler profiler;
  SpanTracker spans;
  Timeline timeline;
  MetricSampler sampler;
  /// Read-only view of the simulation clock, attached by the World (or
  /// a test) so passive consumers — drop-site root closes, timeline
  /// helpers — can timestamp without plumbing a queue reference.
  const sim::EventQueue* clock = nullptr;

  explicit Obs(std::size_t trace_capacity = PacketTracer::kDefaultCapacity)
      : tracer(trace_capacity) {
    sampler.bindRegistry(&metrics);
  }

  /// Partition the whole obs plane by physical node groups (shard
  /// readiness): metrics registry and packet tracer both split their
  /// storage along the same node grouping, and every export k-way
  /// merges back to bytes identical to the monolithic layout.  Call
  /// before any component registers metrics or records traces — i.e.
  /// right after installing the ScopedObs, before building the world.
  void partitionByNode(const std::vector<std::vector<std::string>>& groups) {
    metrics.partitionByNode(groups);
    tracer.partitionByNode(groups);
  }

  /// Arm the obs plane for the sharded (multi-threaded) engine with
  /// `lanes` worker lanes (one per interned node tag — pass
  /// EventQueue::shardLaneCount()).  Metric primitives are already
  /// atomic, so the shared registry needs no lanes; the ordered streams
  /// (tracer, spans, timeline) buffer per lane and fold back
  /// deterministically.  Call after the world's components registered
  /// and interned, right after EventQueue::finalizeSharding().
  void enableShardLanes(std::size_t lanes) {
    tracer.enableShardLanes(lanes);
    spans.enableShardLanes(lanes);
    timeline.enableShardLanes(lanes);
  }
  bool shardLanesEnabled() const { return tracer.shardLaneCount() != 0; }

  /// Replay every lane buffer into the shared tables in deterministic
  /// (t, lane, issue) order.  Must run — main thread, workers quiescent
  /// (i.e. not inside EventQueue::run) — before any export or read-side
  /// query that should see lane-recorded data.  Idempotent; a no-op
  /// when lanes were never enabled.
  void foldShardLanes() {
    if (!shardLanesEnabled()) return;
    tracer.foldShardLanes();
    spans.foldShardLanes();
    timeline.foldShardLanes();
  }
};

/// The installed context, or nullptr when instrumentation is off.
Obs* current();

/// RAII installer.  Nesting restores the previous context on scope exit
/// (a bench can wrap each trial in its own ScopedObs for a clean slate).
class ScopedObs {
 public:
  explicit ScopedObs(std::size_t trace_capacity =
                         PacketTracer::kDefaultCapacity);
  ~ScopedObs();

  ScopedObs(const ScopedObs&) = delete;
  ScopedObs& operator=(const ScopedObs&) = delete;

  Obs& obs() { return obs_; }
  MetricsRegistry& metrics() { return obs_.metrics; }
  PacketTracer& tracer() { return obs_.tracer; }
  EventLoopProfiler& profiler() { return obs_.profiler; }
  SpanTracker& spans() { return obs_.spans; }
  Timeline& timeline() { return obs_.timeline; }
  MetricSampler& sampler() { return obs_.sampler; }

 private:
  Obs obs_;
  Obs* previous_;
};

}  // namespace vini::obs

// ---------------------------------------------------------------------------
// Hot-path macros.  `h` arguments are cached handle *pointers* (null when
// no context was installed at component construction time).

#if defined(VINI_OBS)
#define VINI_OBS_ENABLED 1
#else
#define VINI_OBS_ENABLED 0
#endif

#if VINI_OBS_ENABLED

/// Register-time helper: evaluates to the current Obs* (may be null).
#define VINI_OBS_CTX() (::vini::obs::current())

#define VINI_OBS_INC(h)            \
  do {                             \
    if ((h) != nullptr) (h)->inc(); \
  } while (0)
#define VINI_OBS_ADD(h, delta)                 \
  do {                                         \
    if ((h) != nullptr) (h)->inc((delta));      \
  } while (0)
#define VINI_OBS_GAUGE_SET(h, v)            \
  do {                                      \
    if ((h) != nullptr) (h)->set((v));       \
  } while (0)
#define VINI_OBS_OBSERVE(h, v)                 \
  do {                                         \
    if ((h) != nullptr) (h)->observe((v));      \
  } while (0)
/// `...` is a braced TraceRecord initializer or expression.
#define VINI_OBS_TRACE(...)                                         \
  do {                                                              \
    if (::vini::obs::Obs* obs_ctx_ = ::vini::obs::current())        \
      obs_ctx_->tracer.record(__VA_ARGS__);                         \
  } while (0)
/// Instant timeline event at explicit virtual time `t`.
#define VINI_OBS_TIMELINE_INSTANT(track, label, t)                  \
  do {                                                              \
    if (::vini::obs::Obs* obs_ctx_ = ::vini::obs::current())        \
      obs_ctx_->timeline.instant((track), (label), (t));            \
  } while (0)
/// Duration timeline event covering [t, t + dur).
#define VINI_OBS_TIMELINE_DURATION(track, label, t, dur)            \
  do {                                                              \
    if (::vini::obs::Obs* obs_ctx_ = ::vini::obs::current())        \
      obs_ctx_->timeline.duration((track), (label), (t), (dur));    \
  } while (0)
/// Drop-site root close by trace id (no-op for untraced packets).
#define VINI_OBS_ROOT_DROP(trace_id, reason) \
  ::vini::obs::closeRootAtCurrent((trace_id), (reason))

#else  // !VINI_OBS_ENABLED

#define VINI_OBS_CTX() (static_cast<::vini::obs::Obs*>(nullptr))
#define VINI_OBS_INC(h) \
  do {                  \
  } while (0)
#define VINI_OBS_ADD(h, delta) \
  do {                         \
  } while (0)
#define VINI_OBS_GAUGE_SET(h, v) \
  do {                           \
  } while (0)
#define VINI_OBS_OBSERVE(h, v) \
  do {                         \
  } while (0)
#define VINI_OBS_TRACE(...) \
  do {                      \
  } while (0)
#define VINI_OBS_TIMELINE_INSTANT(track, label, t) \
  do {                                             \
  } while (0)
#define VINI_OBS_TIMELINE_DURATION(track, label, t, dur) \
  do {                                                   \
  } while (0)
#define VINI_OBS_ROOT_DROP(trace_id, reason) \
  do {                                       \
  } while (0)

#endif  // VINI_OBS_ENABLED
