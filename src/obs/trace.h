// The packet tracer.
//
// Records packet lifecycle events — ingress at a host, enqueue on a
// link, drop-tail drop, serialization start, local delivery, forwarding
// decision — with the simulated timestamp of each hop, into a
// fixed-capacity ring buffer.  When the ring wraps, the oldest records
// are overwritten but the per-event running totals keep counting, so
// drop totals still reconcile with the metrics registry (and the V102
// byte audit) after arbitrarily long runs.
//
// Records can be exported as CSV or as a minimal pcap-like binary
// format ("VTRC") that tools/vini_trace can dump and filter offline.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/time.h"

namespace vini::obs {

enum class TraceEvent : std::uint8_t {
  kIngress = 0,          // host stack received a frame from the wire
  kEnqueue = 1,          // frame accepted into a link's drop-tail queue
  kQueueDrop = 2,        // drop-tail: queue full
  kSerializeStart = 3,   // frame starts serializing onto the wire
  kDeliver = 4,          // delivered to a local socket / protocol
  kForwardDecision = 5,  // host stack chose an output route for the frame
  kLossDrop = 6,         // random loss model dropped the frame
  kDownDrop = 7,         // link was administratively/physically down
  kSocketDrop = 8,       // receive socket buffer overflowed
};
inline constexpr std::size_t kTraceEventKinds = 9;

const char* traceEventName(TraceEvent ev);

/// One lifecycle event.  Node and link are small integer ids (the
/// tracer keeps an id→name table so exports stay human-readable);
/// -1 means "not applicable".
struct TraceRecord {
  sim::Time t = 0;
  TraceEvent event = TraceEvent::kIngress;
  std::int16_t node = -1;
  std::int16_t link = -1;
  std::uint32_t src = 0;   // IPv4 source, host byte order
  std::uint32_t dst = 0;   // IPv4 destination
  std::uint64_t flow = 0;  // flow hash / connection id (0 when unknown)
  std::uint64_t seq = 0;   // app or transport sequence (0 when unknown)
  std::uint32_t bytes = 0;
};

class PacketTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit PacketTracer(std::size_t capacity = kDefaultCapacity);

  /// Intern a node/link name, returning the small id used in records.
  /// Re-interning the same name returns the same id.
  std::int16_t internNode(const std::string& name);
  std::int16_t internLink(const std::string& name);

  /// Split record storage into per-node-group rings (each with the full
  /// configured capacity), mirroring MetricsRegistry::partitionByNode:
  /// group i owns the records of the nodes it lists; records tied to no
  /// listed node (pure link events, node = -1) land in ring 0.  Every
  /// record carries a global monotone stamp, and the read side k-way
  /// merges the rings by stamp, so snapshot(), CSV, and VTRC exports
  /// are byte-identical to the monolithic tracer as long as no ring has
  /// wrapped.  Must be called before any record; at most once.
  void partitionByNode(const std::vector<std::vector<std::string>>& groups);
  std::size_t partitionCount() const {
    shard_.assertHeld();
    return rings_.size();
  }

  const std::string& nodeName(std::int16_t id) const;
  const std::string& linkName(std::int16_t id) const;

  void record(const TraceRecord& rec);

  // -- Shard lanes (parallel engine) ----------------------------------------

  /// Arm per-lane record buffers for the sharded engine: a record()
  /// issued from inside a worker lane (sim::EventQueue::currentShardLane()
  /// >= 0) is appended to its lane's private buffer instead of the
  /// shared rings, keeping the hot path lock-free and race-free.
  /// foldShardLanes() later replays the buffers through the normal
  /// record() path in (t, lane, emit-order) order — a pure function of
  /// the event stream, so exports stay byte-identical across thread
  /// counts.  Call after construction-time interning, before the run.
  void enableShardLanes(std::size_t lanes);
  std::size_t shardLaneCount() const { return lane_records_.size(); }
  /// Merge every lane buffer into the shared rings (stamps, ring
  /// routing, and kind totals assigned exactly as a serial recorder
  /// would).  Main-thread only, lanes quiescent; idempotent.  Must run
  /// before any read-side call that should see lane-recorded traffic.
  void foldShardLanes();

  // -- Read side ------------------------------------------------------------

  /// Total events recorded since construction (keeps counting after the
  /// ring wraps).
  std::uint64_t totalRecorded() const {
    shard_.assertHeld();
    return total_;
  }
  /// Running per-kind totals — these survive ring overflow, which is
  /// what makes drop reconciliation exact on long runs.
  std::uint64_t eventCount(TraceEvent ev) const {
    shard_.assertHeld();
    return kind_totals_[static_cast<std::size_t>(ev)];
  }
  /// Number of records currently held (<= capacity * partitions).
  std::size_t size() const;
  /// Capacity of each ring (the construction-time capacity).
  std::size_t capacity() const {
    shard_.assertHeld();
    return capacity_;
  }
  bool wrapped() const;

  /// Records in recording order, oldest surviving first.
  std::vector<TraceRecord> snapshot() const;

  void clear();

  // -- Export ---------------------------------------------------------------

  /// "t_ns,event,node,link,src,dst,flow,seq,bytes" with names resolved.
  void writeCsv(std::ostream& os) const;

  /// Minimal pcap-like binary format:
  ///   magic "VTRC" | u16 version | u16 record_size | u64 count
  ///   then `count` fixed-size little-endian records
  ///   then the node and link name tables (u16 count, then
  ///   length-prefixed strings) so a dump is self-describing.
  void writeBinary(std::ostream& os) const;

  struct BinaryDump {
    std::vector<TraceRecord> records;
    std::vector<std::string> node_names;
    std::vector<std::string> link_names;
  };
  /// Parse a writeBinary() stream; throws std::runtime_error on a
  /// malformed header.
  static BinaryDump readBinary(std::istream& is);

  static constexpr std::uint16_t kBinaryVersion = 1;
  static constexpr std::size_t kBinaryRecordSize = 41;

 private:
  /// One per-partition ring.  records/stamps grow to capacity_ then
  /// wrap; stamps carry the global record ordinal so the read side can
  /// restore recording order across rings.
  struct Ring {
    std::vector<TraceRecord> records;
    std::vector<std::uint64_t> stamps;
    std::uint64_t total = 0;  ///< records ever routed to this ring
  };

  /// Partition owning records of interned node id `node` (-1 → ring 0).
  std::size_t ringOf(std::int16_t node) const VINI_REQUIRES(shard_);

  // Sharded plan: one ring per shard, merged by stamp at export —
  // recording stays lock-free on the hot path.  partitionByNode()
  // already runs that merge path on the single-threaded engine.
  core::ShardToken shard_;
  std::size_t capacity_ VINI_GUARDED_BY(shard_);
  // cross-shard: merged across shard-local rings at export time.
  std::vector<Ring> rings_ VINI_GUARDED_BY(shard_);
  /// Global stamp counter: total records ever recorded, any ring.
  std::uint64_t total_ VINI_GUARDED_BY(shard_) = 0;
  std::array<std::uint64_t, kTraceEventKinds> kind_totals_
      VINI_GUARDED_BY(shard_){};
  // The intern tables stay tracer-global (not per-ring) so record ids —
  // and therefore exports — are independent of the partitioning.
  std::vector<std::string> node_names_ VINI_GUARDED_BY(shard_);
  std::vector<std::string> link_names_ VINI_GUARDED_BY(shard_);
  /// Partition of each interned node id (parallel to node_names_).
  std::vector<std::size_t> node_parts_ VINI_GUARDED_BY(shard_);
  /// Per-lane record buffers (enableShardLanes).  Each inner vector is
  /// written only by the thread executing that lane inside a window and
  /// drained by the main thread at foldShardLanes(); rounds are
  /// separated by the pool barrier, so access never races.  The outer
  /// vector is sized once, before the run.
  std::vector<std::vector<TraceRecord>> lane_records_;
  /// Explicit node-name → partition assignments from partitionByNode().
  // cross-shard: written once at partition time, read-only afterwards.
  std::map<std::string, std::size_t> node_group_ VINI_GUARDED_BY(shard_);
};

}  // namespace vini::obs
