#include "obs/profiler.h"

namespace vini::obs {

void EventLoopProfiler::attach(sim::EventQueue& queue) {
  detach();
  queue_ = &queue;
  queue_->setProfiler(
      [this](const char* tag, std::int64_t wall_ns) { onEvent(tag, wall_ns); });
}

void EventLoopProfiler::detach() {
  if (queue_ != nullptr) {
    queue_->setProfiler(nullptr);
    queue_ = nullptr;
  }
}

void EventLoopProfiler::onEvent(const char* tag, std::int64_t wall_ns) {
  HandlerStat& s = stats_[tag != nullptr ? tag : "untagged"];
  ++s.events;
  s.wall_ns += wall_ns;
  ++total_events_;
  total_wall_ns_ += wall_ns;
}

void EventLoopProfiler::writeCsv(std::ostream& os) const {
  os << "tag,events,wall_ns\n";
  for (const auto& [tag, s] : stats_) {
    os << tag << "," << s.events << "," << s.wall_ns << "\n";
  }
}

void EventLoopProfiler::clear() {
  stats_.clear();
  total_events_ = 0;
  total_wall_ns_ = 0;
}

}  // namespace vini::obs
