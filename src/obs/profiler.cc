#include "obs/profiler.h"

namespace vini::obs {

void EventLoopProfiler::attach(sim::EventQueue& queue) {
  detach();
  queue_ = &queue;
  queue_->setProfiler(
      [this](const char* tag, sim::NodeTag node, std::int64_t wall_ns) {
        onEvent(tag, node, wall_ns);
      });
}

void EventLoopProfiler::detach() {
  if (queue_ != nullptr) {
    queue_->setProfiler(nullptr);
    queue_ = nullptr;
  }
}

void EventLoopProfiler::onEvent(const char* tag, sim::NodeTag node,
                                std::int64_t wall_ns) {
  const std::string key = tag != nullptr ? tag : "untagged";
  HandlerStat& s = stats_[key];
  ++s.events;
  s.wall_ns += wall_ns;
  // nodeTagName returns "-" for kNoNode, pooling unattributed events.
  HandlerStat& ns = node_stats_[{key, queue_->nodeTagName(node)}];
  ++ns.events;
  ns.wall_ns += wall_ns;
  ++total_events_;
  total_wall_ns_ += wall_ns;
}

void EventLoopProfiler::writeCsv(std::ostream& os) const {
  os << "tag,node,events,wall_ns\n";
  for (const auto& [key, s] : node_stats_) {
    os << key.first << "," << key.second << "," << s.events << "," << s.wall_ns
       << "\n";
  }
}

void EventLoopProfiler::clear() {
  stats_.clear();
  node_stats_.clear();
  total_events_ = 0;
  total_wall_ns_ = 0;
}

}  // namespace vini::obs
