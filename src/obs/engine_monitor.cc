#include "obs/engine_monitor.h"

namespace vini::obs {

void EngineMonitor::attach(sim::EventQueue& queue, MetricsRegistry& registry,
                           MetricSampler* chain) {
  shard_.assertHeld();
  detach();
  queue_ = &queue;
  registry_ = &registry;
  chain_ = chain;

  g_pending_ = &registry.gauge("sim.engine", "queue", "pending_events");
  g_storage_ = &registry.gauge("sim.engine", "queue", "storage_keys");
  g_slab_slots_ = &registry.gauge("sim.engine", "queue", "slab_slots");
  g_slab_free_ = &registry.gauge("sim.engine", "queue", "slab_free_slots");
  c_cross_sched_ =
      &registry.counter("sim.engine", "queue", "cross_node_scheduled");
  c_same_sched_ =
      &registry.counter("sim.engine", "queue", "same_node_scheduled");
  c_unattributed_ =
      &registry.counter("sim.engine", "queue", "events_unattributed");
  last_cross_sched_ = 0;
  last_same_sched_ = 0;
  last_unattributed_ = 0;
  c_node_executed_.clear();
  last_node_executed_.clear();

  wall_start_ = std::chrono::steady_clock::now();
  sim_start_ = queue.now();

  refresh();
  queue.setAdvanceObserver(
      [this](sim::Time from, sim::Time to) { onAdvance(from, to); });
}

void EngineMonitor::detach() {
  shard_.assertHeld();
  if (queue_ != nullptr) {
    queue_->setAdvanceObserver(nullptr);
    queue_ = nullptr;
  }
  registry_ = nullptr;
  chain_ = nullptr;
}

void EngineMonitor::onAdvance(sim::Time from, sim::Time to) {
  shard_.assertHeld();
  // Refresh before chaining so a sampler watching the engine metrics
  // snapshots them as of the boundary, like any other metric.
  refresh();
  if (chain_ != nullptr) chain_->onAdvance(from, to);
}

void EngineMonitor::refresh() {
  g_pending_->set(static_cast<double>(queue_->pendingCount()));
  g_storage_->set(static_cast<double>(queue_->storageCount()));
  g_slab_slots_->set(static_cast<double>(queue_->slabSlotCount()));
  g_slab_free_->set(static_cast<double>(queue_->slabFreeCount()));

  const std::uint64_t cross = queue_->crossNodeScheduledCount();
  c_cross_sched_->inc(cross - last_cross_sched_);
  last_cross_sched_ = cross;
  const std::uint64_t same = queue_->sameNodeScheduledCount();
  c_same_sched_->inc(same - last_same_sched_);
  last_same_sched_ = same;
  const std::uint64_t unattr = queue_->unattributedExecutedCount();
  c_unattributed_->inc(unattr - last_unattributed_);
  last_unattributed_ = unattr;

  // The queue interns tags as components construct; pick up new ones.
  const std::size_t tags = queue_->nodeTagCount();
  while (c_node_executed_.size() < tags) {
    const sim::NodeTag tag =
        static_cast<sim::NodeTag>(c_node_executed_.size());
    c_node_executed_.push_back(&registry_->counter(
        "sim.engine", queue_->nodeTagName(tag), "events_executed"));
    last_node_executed_.push_back(0);
  }
  for (std::size_t i = 0; i < c_node_executed_.size(); ++i) {
    const std::uint64_t n =
        queue_->nodeExecutedCount(static_cast<sim::NodeTag>(i));
    c_node_executed_[i]->inc(n - last_node_executed_[i]);
    last_node_executed_[i] = n;
  }
}

double EngineMonitor::simWallRatio() const {
  shard_.assertHeld();
  if (queue_ == nullptr) return 0.0;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  if (wall <= 0.0) return 0.0;
  const double sim = sim::toSeconds(queue_->now() - sim_start_);
  return sim / wall;
}

double EngineMonitor::etaSeconds(sim::Time target) const {
  shard_.assertHeld();
  if (queue_ == nullptr || target <= queue_->now()) return 0.0;
  const double ratio = simWallRatio();
  if (ratio <= 0.0) return 0.0;
  return sim::toSeconds(target - queue_->now()) / ratio;
}

void EngineMonitor::updateWallGauges(sim::Time target) {
  shard_.assertHeld();
  if (registry_ == nullptr) return;
  registry_->gauge("sim.engine", "wall", "sim_wall_ratio").set(simWallRatio());
  registry_->gauge("sim.engine", "wall", "eta_seconds")
      .set(etaSeconds(target));
}

}  // namespace vini::obs
