// The metrics registry.
//
// One audited source of truth for every number an experiment reads:
// counters (monotonic event counts), gauges (instantaneous levels), and
// fixed-bucket histograms, keyed by (component, node, name).  Components
// register their metrics once at construction and keep the returned
// handle; hot paths bump the handle through the VINI_OBS_* macros in
// obs/obs.h, which compile to nothing when the build disables
// instrumentation (-DVINI_OBS=OFF).
//
// Iteration order is deterministic — keys are sorted — so a CSV dump of
// the registry is byte-stable across runs and registration orders.
// Registering the same key twice with the same type returns the existing
// metric (several sockets on one node share a drop counter); registering
// it with a *different* type throws, and the CI gate treats that as a
// hard failure.
//
// Partitioning (shard readiness): partitionByNode() splits the registry
// into per-node-group sub-maps, each the storage a future worker shard
// would own.  A key routes to the partition of its `node` field; keys
// whose node names no physical node (link labels like
// "Denver-KansasCity/ab", synthetic scopes) route by a deterministic
// FNV-1a hash so the same key always lands in the same partition.  Every
// read-side export walks the partitions with a k-way sorted merge, so a
// partitioned registry's CSV is byte-identical to the monolithic one —
// the property the partition fuzz test enforces.  mergeRegistries()
// provides the same guarantee across physically separate registries
// (one per shard), which is the plan of record for the parallel engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "core/thread_annotations.h"

namespace vini::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metricTypeName(MetricType type);

/// Registry key: which subsystem, which instance, which quantity.
/// Examples: ("phys.link", "Denver-KansasCity/ab", "queue_drops"),
/// ("app.iperf", "Washington", "udp_rx_packets").
struct MetricKey {
  std::string component;
  std::string node;
  std::string name;
  auto operator<=>(const MetricKey&) const = default;

  std::string str() const { return component + "/" + node + "/" + name; }
};

/// A monotonically increasing event count.
///
/// Storage is atomic (relaxed): the sharded engine's worker lanes bump
/// cached handles into the one shared registry concurrently, and
/// integer sums are interleaving-invariant — the value at any barrier
/// or export point is a pure function of the event stream, so the
/// determinism gates hold at every thread count.  Copying (for variant
/// storage in the registry map) snapshots the value; registration
/// happens at world construction, never concurrently with writes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Fold another counter in (shard merge): counts add.
  void merge(const Counter& other) { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// An instantaneous level (queue depth, bytes outstanding).
///
/// Every write bumps a version counter so an on-change sampler can tell
/// "set to the same value again" (a fresh observation that must emit a
/// point) from "never touched" (no point) without comparing doubles.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other)
      : value_(other.value_.load(std::memory_order_relaxed)),
        version_(other.version_.load(std::memory_order_relaxed)) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    version_.store(other.version_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    version_.fetch_add(1, std::memory_order_relaxed);
  }
  void add(double delta) {
    // CAS loop: atomic<double> has no fetch_add pre-C++20 on all
    // toolchains.  Deterministic under the per-node single-writer
    // discipline the sharded engine enforces (each gauge instance is
    // bumped by exactly one lane per window).
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
    version_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Number of writes since construction.
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Fold another gauge in (shard merge).  Levels add — each shard's
  /// gauge holds its local share of the quantity (its queue's depth,
  /// its nodes' bytes outstanding), so the merged level is the sum.
  /// Versions add so on-change samplers still see every shard's writes.
  void merge(const Gauge& other) {
    double cur = value_.load(std::memory_order_relaxed);
    const double delta = other.value();
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
    version_.fetch_add(other.version(), std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> version_{0};
};

/// A fixed-bucket histogram: bucket i counts observations <= bound i,
/// with an implicit overflow bucket above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void observe(double x);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Estimate the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, Prometheus histogram_quantile
  /// style: rank r = q * count, the first bucket whose cumulative count
  /// reaches r supplies [lower_bound, upper_bound], and the estimate
  /// interpolates by the rank's position within that bucket.  Ranks that
  /// land in the overflow bucket clamp to the last finite bound (the
  /// histogram cannot see past it).  Returns 0 when empty.
  double quantile(double q) const;
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::size_t bucketCount() const { return buckets_.size(); }
  /// Count in bucket `i`; the final bucket is the overflow bucket.
  std::uint64_t bucketValue(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `i` (undefined for the overflow bucket).
  double upperBound(std::size_t i) const { return bounds_[i]; }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Fold another histogram in (shard merge): buckets add pairwise.
  /// Throws std::logic_error if the bucket bounds differ — two shards
  /// observing the same quantity must have registered identical bounds.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;  // ascending
  // bounds_.size() + 1 atomic buckets (last = overflow).  Bucket bumps
  // and count are integer adds (interleaving-invariant); sum_ is a
  // CAS-add double, deterministic under per-node single-writer
  // instancing — see the Counter comment.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class ScopedRegistry;

class MetricsRegistry {
 public:
  MetricsRegistry() : parts_(1) {}

  /// Register (or look up) a metric.  Throws std::logic_error if the key
  /// already exists with a different type — the CI gate relies on this
  /// surfacing as a hard failure.
  Counter& counter(const std::string& component, const std::string& node,
                   const std::string& name);
  Gauge& gauge(const std::string& component, const std::string& node,
               const std::string& name);
  /// `upper_bounds` is used on first registration only.
  Histogram& histogram(const std::string& component, const std::string& node,
                       const std::string& name,
                       std::vector<double> upper_bounds);

  // -- Partitioning (shard readiness) ---------------------------------------

  /// Split storage into `groups.size()` per-node-group partitions; group
  /// i lists the physical node names whose keys partition i owns.  Keys
  /// whose node field names none of the listed nodes route by FNV-1a
  /// hash, so routing stays a pure function of the key.  Must be called
  /// while the registry is empty (before any component registers) and at
  /// most once; throws std::logic_error otherwise, or if a node name
  /// appears in two groups.
  void partitionByNode(const std::vector<std::vector<std::string>>& groups);

  /// Number of partitions (1 until partitionByNode() is called).
  std::size_t partitionCount() const {
    shard_.assertHeld();
    return parts_.size();
  }

  /// The partition a key with node field `node` routes to: the explicit
  /// group assignment when `node` was listed in partitionByNode(), else
  /// a deterministic FNV-1a hash of the name.  Always 0 when
  /// unpartitioned.
  std::size_t partitionOf(const std::string& node) const;

  /// A registration view restricted to the partition owning `node` —
  /// what a worker shard would hold.  The view registers through the
  /// parent but throws std::logic_error if a key routes to a different
  /// partition, catching cross-shard registrations at construction time.
  ScopedRegistry scoped(const std::string& node);

  // -- Read side (nullptr / 0 when the metric was never registered) ---------

  const Counter* findCounter(const std::string& component,
                             const std::string& node,
                             const std::string& name) const;
  const Gauge* findGauge(const std::string& component, const std::string& node,
                         const std::string& name) const;
  const Histogram* findHistogram(const std::string& component,
                                 const std::string& node,
                                 const std::string& name) const;

  /// Convenience for benches: counter value, or 0 if never registered.
  std::uint64_t counterValue(const std::string& component,
                             const std::string& node,
                             const std::string& name) const;

  /// Sum of every counter matching (component, name) across all nodes.
  std::uint64_t sumCounters(const std::string& component,
                            const std::string& name) const;

  std::size_t size() const;

  /// Visit every metric in deterministic (sorted-key) order, merging
  /// across partitions.
  void forEach(
      const std::function<void(const MetricKey&, MetricType)>& visit) const;

  /// "component,node,name,type,value" rows (histograms emit one row per
  /// bucket plus count/sum), sorted by key — byte-stable across runs
  /// and across partitionings (the k-way merge restores global order).
  void writeCsv(std::ostream& os) const;

 private:
  friend class ScopedRegistry;
  friend void mergeRegistries(const std::vector<const MetricsRegistry*>& from,
                              MetricsRegistry& into);

  using Metric = std::variant<Counter, Gauge, Histogram>;
  using Partition = std::map<MetricKey, Metric>;

  template <typename T>
  T& registerAs(const std::string& component, const std::string& node,
                const std::string& name, T initial);
  /// registerAs with the caller's claimed partition checked against the
  /// key's routed partition (ScopedRegistry path; ~0 skips the check).
  template <typename T>
  T& registerScoped(std::size_t claimed_part, const std::string& component,
                    const std::string& node, const std::string& name,
                    T initial);
  const Metric* find(const std::string& component, const std::string& node,
                     const std::string& name) const;
  /// Visit every (key, metric) pair in globally sorted key order via a
  /// k-way merge over the per-partition sorted maps.
  void visitSorted(
      const std::function<void(const MetricKey&, const Metric&)>& visit) const
      VINI_REQUIRES(shard_);

  // The registry is a merge point for the sharded engine: every node's
  // stack bumps counters here.  Plan of record is shard-local registries
  // merged at sample boundaries; partitionByNode() already gives each
  // would-be shard its own sub-map, so the maps stay shard-owned.
  core::ShardToken shard_;
  // std::map partitions: node-based (stable handle addresses) and
  // key-sorted (deterministic iteration).  parts_.size() >= 1 always.
  // cross-shard: merged across shard-local partitions at sample points.
  std::vector<Partition> parts_ VINI_GUARDED_BY(shard_);
  /// Explicit node-name → partition assignments from partitionByNode();
  /// names absent here route by FNV-1a hash.
  // cross-shard: written once at partition time, read-only afterwards.
  std::map<std::string, std::size_t> node_part_ VINI_GUARDED_BY(shard_);
};

/// A per-partition registration view (see MetricsRegistry::scoped).
class ScopedRegistry {
 public:
  Counter& counter(const std::string& component, const std::string& node,
                   const std::string& name);
  Gauge& gauge(const std::string& component, const std::string& node,
               const std::string& name);
  Histogram& histogram(const std::string& component, const std::string& node,
                       const std::string& name,
                       std::vector<double> upper_bounds);

  std::size_t partition() const { return part_; }

 private:
  friend class MetricsRegistry;
  ScopedRegistry(MetricsRegistry& parent, std::size_t part)
      : parent_(&parent), part_(part) {}

  MetricsRegistry* parent_;
  std::size_t part_;
};

/// Fold several registries (one per shard) into `into`: keys present in
/// one source copy over; keys present in several merge pairwise
/// (counters/gauges add, histograms add buckets — identical bounds
/// required).  A key carried with different metric *types* across
/// sources throws std::logic_error.  `into` need not be empty; its
/// existing metrics merge too.  Deterministic: the result depends only
/// on the multiset of (key, metric) pairs, not on source order.
void mergeRegistries(const std::vector<const MetricsRegistry*>& from,
                     MetricsRegistry& into);

}  // namespace vini::obs
