// The metrics registry.
//
// One audited source of truth for every number an experiment reads:
// counters (monotonic event counts), gauges (instantaneous levels), and
// fixed-bucket histograms, keyed by (component, node, name).  Components
// register their metrics once at construction and keep the returned
// handle; hot paths bump the handle through the VINI_OBS_* macros in
// obs/obs.h, which compile to nothing when the build disables
// instrumentation (-DVINI_OBS=OFF).
//
// Iteration order is deterministic — keys are sorted — so a CSV dump of
// the registry is byte-stable across runs and registration orders.
// Registering the same key twice with the same type returns the existing
// metric (several sockets on one node share a drop counter); registering
// it with a *different* type throws, and the CI gate treats that as a
// hard failure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "core/thread_annotations.h"

namespace vini::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metricTypeName(MetricType type);

/// Registry key: which subsystem, which instance, which quantity.
/// Examples: ("phys.link", "Denver-KansasCity/ab", "queue_drops"),
/// ("app.iperf", "Washington", "udp_rx_packets").
struct MetricKey {
  std::string component;
  std::string node;
  std::string name;
  auto operator<=>(const MetricKey&) const = default;

  std::string str() const { return component + "/" + node + "/" + name; }
};

/// A monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// An instantaneous level (queue depth, bytes outstanding).
///
/// Every write bumps a version counter so an on-change sampler can tell
/// "set to the same value again" (a fresh observation that must emit a
/// point) from "never touched" (no point) without comparing doubles.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    ++version_;
  }
  void add(double delta) {
    value_ += delta;
    ++version_;
  }
  double value() const { return value_; }
  /// Number of writes since construction.
  std::uint64_t version() const { return version_; }

 private:
  double value_ = 0.0;
  std::uint64_t version_ = 0;
};

/// A fixed-bucket histogram: bucket i counts observations <= bound i,
/// with an implicit overflow bucket above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Estimate the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, Prometheus histogram_quantile
  /// style: rank r = q * count, the first bucket whose cumulative count
  /// reaches r supplies [lower_bound, upper_bound], and the estimate
  /// interpolates by the rank's position within that bucket.  Ranks that
  /// land in the overflow bucket clamp to the last finite bound (the
  /// histogram cannot see past it).  Returns 0 when empty.
  double quantile(double q) const;
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::size_t bucketCount() const { return buckets_.size(); }
  /// Count in bucket `i`; the final bucket is the overflow bucket.
  std::uint64_t bucketValue(std::size_t i) const { return buckets_[i]; }
  /// Upper bound of bucket `i` (undefined for the overflow bucket).
  double upperBound(std::size_t i) const { return bounds_[i]; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;          // ascending
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Register (or look up) a metric.  Throws std::logic_error if the key
  /// already exists with a different type — the CI gate relies on this
  /// surfacing as a hard failure.
  Counter& counter(const std::string& component, const std::string& node,
                   const std::string& name);
  Gauge& gauge(const std::string& component, const std::string& node,
               const std::string& name);
  /// `upper_bounds` is used on first registration only.
  Histogram& histogram(const std::string& component, const std::string& node,
                       const std::string& name,
                       std::vector<double> upper_bounds);

  // -- Read side (nullptr / 0 when the metric was never registered) ---------

  const Counter* findCounter(const std::string& component,
                             const std::string& node,
                             const std::string& name) const;
  const Gauge* findGauge(const std::string& component, const std::string& node,
                         const std::string& name) const;
  const Histogram* findHistogram(const std::string& component,
                                 const std::string& node,
                                 const std::string& name) const;

  /// Convenience for benches: counter value, or 0 if never registered.
  std::uint64_t counterValue(const std::string& component,
                             const std::string& node,
                             const std::string& name) const;

  /// Sum of every counter matching (component, name) across all nodes.
  std::uint64_t sumCounters(const std::string& component,
                            const std::string& name) const;

  std::size_t size() const {
    shard_.assertHeld();
    return metrics_.size();
  }

  /// Visit every metric in deterministic (sorted-key) order.
  void forEach(
      const std::function<void(const MetricKey&, MetricType)>& visit) const;

  /// "component,node,name,type,value" rows (histograms emit one row per
  /// bucket plus count/sum), sorted by key — byte-stable across runs.
  void writeCsv(std::ostream& os) const;

 private:
  using Metric = std::variant<Counter, Gauge, Histogram>;

  template <typename T>
  T& registerAs(const std::string& component, const std::string& node,
                const std::string& name, T initial);
  const Metric* find(const std::string& component, const std::string& node,
                     const std::string& name) const;

  // The registry is a merge point for the sharded engine: every node's
  // stack bumps counters here.  Plan of record is shard-local registries
  // merged at sample boundaries, so the map stays shard-owned.
  core::ShardToken shard_;
  // std::map: node-based (stable handle addresses) and key-sorted
  // (deterministic iteration).
  // cross-shard: merged across shard-local registries at sample points.
  std::map<MetricKey, Metric> metrics_ VINI_GUARDED_BY(shard_);
};

}  // namespace vini::obs
