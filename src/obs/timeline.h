// Control-plane event timeline, virtual-time metric sampler, and the
// Chrome trace-event exporter that unifies them with the span tracker.
//
// The *timeline* records rare, named control-plane moments — OSPF SPF
// runs and LSA floods, RIP/BGP updates, cpu-scheduler preemptions,
// fault-injector events, supervisor restarts — as instant or duration
// events on per-entity tracks ("ospf/1.0.0.1", "cpu/Denver/ospf",
// "fault", "supervisor") in virtual time.
//
// The *sampler* snapshots selected MetricsRegistry metrics at a fixed
// virtual-time period into deterministic (t, value) series.  It is
// driven by the EventQueue's time-advance hook, so it never schedules
// events of its own: when now() advances from `from` to `to` it emits a
// point at every period boundary in (from, to], seeing state as of the
// boundary⁻.  kOnChange series additionally suppress points whose
// source metric was not written since the previous sample (gauges use
// their version counter, so re-writing an equal value still emits).
//
// Everything here is passive and deterministic: same seed, same bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/time.h"

namespace vini::sim {
class EventQueue;
}  // namespace vini::sim

namespace vini::obs {

struct TimelineEvent {
  std::int16_t track = -1;
  std::int16_t label = -1;
  sim::Time t = 0;
  sim::Duration dur = 0;  // 0 = instant event
};

/// Per-entity tracks of instant/duration events in virtual time.
class Timeline {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Timeline(std::size_t capacity = kDefaultCapacity);

  /// Record an instant event ("spf_run" on track "ospf/1.0.0.1") at `t`.
  void instant(const std::string& track, const std::string& label,
               sim::Time t);
  /// Record a duration event covering [t, t + dur).  From inside a
  /// worker lane the event is buffered (strings and all) and replayed
  /// by foldShardLanes() in deterministic (t, lane, issue) order.
  void duration(const std::string& track, const std::string& label,
                sim::Time t, sim::Duration dur);

  /// Arm per-lane event buffers for the sharded engine (see
  /// PacketTracer::enableShardLanes — same contract).
  void enableShardLanes(std::size_t lanes);
  std::size_t shardLaneCount() const { return lane_ops_.size(); }
  /// Replay lane buffers through the shared tables (interning in replay
  /// order, so ids and bytes are thread-count invariant).  Main-thread
  /// only, lanes quiescent; idempotent.
  void foldShardLanes();

  const std::vector<TimelineEvent>& events() const {
    shard_.assertHeld();
    return events_;
  }
  const std::vector<std::string>& trackNames() const {
    shard_.assertHeld();
    return tracks_;
  }
  const std::vector<std::string>& labelNames() const {
    shard_.assertHeld();
    return labels_;
  }
  const std::string& trackName(std::int16_t id) const;
  const std::string& labelName(std::int16_t id) const;
  std::uint64_t eventsLost() const {
    shard_.assertHeld();
    return events_lost_;
  }

  /// "track,label,t_ns,dur_ns" rows in record order.
  void writeCsv(std::ostream& os) const;

  void clear();

 private:
  std::int16_t intern(std::vector<std::string>& names,
                      std::unordered_map<std::string, std::int16_t>& index,
                      const std::string& name);

  // Sharded plan: shard-local timelines, events merged by (t, seq) at
  // export; the intern tables stay shard-owned to keep record() cheap.
  core::ShardToken shard_;
  std::size_t capacity_;
  std::uint64_t events_lost_ VINI_GUARDED_BY(shard_) = 0;
  std::vector<std::string> tracks_ VINI_GUARDED_BY(shard_);
  std::vector<std::string> labels_ VINI_GUARDED_BY(shard_);
  std::unordered_map<std::string, std::int16_t> track_index_
      VINI_GUARDED_BY(shard_);
  std::unordered_map<std::string, std::int16_t> label_index_
      VINI_GUARDED_BY(shard_);
  // cross-shard: merged across shard-local timelines at export time.
  std::vector<TimelineEvent> events_ VINI_GUARDED_BY(shard_);
  /// One buffered lane event (strings kept: interning happens at the
  /// fold so table ids stay independent of worker interleaving).
  struct LaneOp {
    std::string track;
    std::string label;
    sim::Time t = 0;
    sim::Duration dur = 0;
  };
  /// Per-lane buffers; lane-owned during windows, drained by the main
  /// thread at the fold (barrier-separated, never racing).
  std::vector<std::vector<LaneOp>> lane_ops_;
};

/// Snapshots registry metrics on virtual-time period boundaries.
class MetricSampler {
 public:
  enum class Mode {
    kEveryTick,  // one point per period boundary
    kOnChange,   // only when the metric was written since the last sample
  };

  struct Point {
    sim::Time t = 0;
    double value = 0.0;
  };

  struct Series {
    MetricKey key;
    Mode mode = Mode::kEveryTick;
    std::vector<Point> points;
  };

  /// Bind the registry the watched keys resolve against.  Metrics may be
  /// registered *after* watch() — resolution is retried at each sample.
  void bindRegistry(const MetricsRegistry* registry) {
    shard_.assertHeld();
    registry_ = registry;
  }

  /// Sampling period in virtual time; must be > 0 for any sampling.
  void setPeriod(sim::Duration period) {
    shard_.assertHeld();
    period_ = period;
  }
  sim::Duration period() const {
    shard_.assertHeld();
    return period_;
  }
  /// Align sample boundaries to origin + k * period (benches set this to
  /// their experiment start so series line up with the figure's t axis).
  void setOrigin(sim::Time origin) {
    shard_.assertHeld();
    origin_ = origin;
  }
  sim::Time origin() const {
    shard_.assertHeld();
    return origin_;
  }

  /// Add a series for (component, node, name).  Counters and gauges are
  /// supported; a counter samples its running value.
  void watch(const std::string& component, const std::string& node,
             const std::string& name, Mode mode = Mode::kEveryTick);

  /// Install onto the queue's time-advance hook.  Call again after the
  /// hook is given to someone else; detach() uninstalls.
  void attach(sim::EventQueue& queue);
  void detach();
  bool attached() const {
    shard_.assertHeld();
    return attached_queue_ != nullptr;
  }

  /// The advance hook body: sample every boundary in (from, to].
  void onAdvance(sim::Time from, sim::Time to);

  const std::vector<Series>& series() const {
    shard_.assertHeld();
    return series_;
  }
  const Series* find(const std::string& component, const std::string& node,
                     const std::string& name) const;

  /// "component,node,name,t_ns,value" rows, series in watch order.
  void writeCsv(std::ostream& os) const;

  void clear();

 private:
  friend void mergeSamplers(const std::vector<const MetricSampler*>& from,
                            MetricSampler& into);
  struct Watch {
    std::uint64_t last_counter = 0;
    std::uint64_t last_gauge_version = 0;
    bool primed = false;
  };

  void sampleAt(sim::Time t);

  // The sampler rides the queue's advance hook, so it executes on the
  // shard that owns the attached queue.
  core::ShardToken shard_;
  // cross-shard: will read merged shard-local registries at sample points.
  const MetricsRegistry* registry_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  sim::EventQueue* attached_queue_ VINI_PT_GUARDED_BY(shard_) = nullptr;
  sim::Duration period_ VINI_GUARDED_BY(shard_) = 0;
  sim::Time origin_ VINI_GUARDED_BY(shard_) = 0;
  std::vector<Series> series_ VINI_GUARDED_BY(shard_);
  std::vector<Watch> watch_state_ VINI_GUARDED_BY(shard_);
};

/// Fold several samplers (one per shard) into `into`: each of `into`'s
/// watched series gains the points of every source series with the same
/// (key, mode), merged by timestamp (stable — source order breaks
/// ties).  In the sharded plan each key is sampled by exactly the shard
/// owning its metric, so the merged sampler's CSV is byte-identical to
/// a monolithic sampler watching the same keys — the partition fuzz
/// test enforces this.  Sources must not be `into` itself.
void mergeSamplers(const std::vector<const MetricSampler*>& from,
                   MetricSampler& into);

// ---------------------------------------------------------------------------
// Export: one Chrome trace-event JSON (Perfetto / about:tracing loadable)
// unifying spans, timeline events, and sampled series.
//
// Mapping:
//   * hop/root spans        -> "X" complete events; pid 1, one tid per
//                              span layer; args carry trace_id, node,
//                              link, outcome, drop reason
//   * timeline instants     -> "i" instant events on their track's tid
//   * timeline durations    -> "X" complete events on their track's tid
//   * sampled series        -> "C" counter events (one per point)
//   * track/thread names    -> "M" thread_name metadata records
// Timestamps are virtual-time microseconds printed with fixed %.3f
// formatting; events are stably sorted by (tid, ts) so per-track
// timestamps are monotonic and the byte stream is deterministic.

void writeChromeTrace(std::ostream& os, const SpanTracker& spans,
                      const Timeline& timeline, const MetricSampler& sampler);

/// One segment of a per-hop latency decomposition.
struct HopSegment {
  std::string layer;  // span layer, or "unattributed" for gaps
  std::string node;
  std::string link;
  sim::Time t_start = 0;
  sim::Duration dur = 0;
};

/// Decompose a delivered trace into sequential, non-overlapping hop
/// segments covering the root span exactly: hop spans are clipped to the
/// root interval in t_open order, and any time not attributed to a hop
/// becomes an "unattributed" segment, so the segment durations sum to
/// the root (end-to-end) latency by construction.  Returns an empty
/// vector when the trace has no completed root span.
std::vector<HopSegment> decomposeTrace(const SpanTracker& spans,
                                       std::uint64_t trace_id);

}  // namespace vini::obs
