#include "click/graph.h"

#include <cctype>
#include <stdexcept>

namespace vini::click {

namespace {

/// Strip // and /* */ comments.
std::string stripComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = i + 2 <= text.size() ? i + 2 : text.size();
    } else {
      out.push_back(text[i++]);
    }
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Split on `sep` at paren depth 0.
std::vector<std::string> splitTop(const std::string& s, const std::string& sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (depth == 0 && s.compare(i, sep.size(), sep) == 0) {
      parts.push_back(s.substr(start, i - start));
      i += sep.size() - 1;
      start = i + 1;
    }
  }
  parts.push_back(s.substr(start));
  return parts;
}

/// One endpoint of a connection: "[q] name [p]" with both brackets optional.
struct PortSpec {
  std::string name;
  int in_port = 0;
  int out_port = 0;
};

PortSpec parsePortSpec(const std::string& raw) {
  PortSpec spec;
  std::string s = trim(raw);
  if (!s.empty() && s.front() == '[') {
    const auto close = s.find(']');
    if (close == std::string::npos) throw std::runtime_error("unclosed '[' in: " + raw);
    spec.in_port = std::stoi(s.substr(1, close - 1));
    s = trim(s.substr(close + 1));
  }
  if (!s.empty() && s.back() == ']') {
    const auto open = s.rfind('[');
    if (open == std::string::npos) throw std::runtime_error("unopened ']' in: " + raw);
    spec.out_port = std::stoi(s.substr(open + 1, s.size() - open - 2));
    s = trim(s.substr(0, open));
  }
  if (s.empty()) throw std::runtime_error("missing element name in: " + raw);
  spec.name = s;
  return spec;
}

}  // namespace

RouterGraph::RouterGraph(ClickContext context) : context_(context) {
  registerStandardElements();
}

RouterGraph::~RouterGraph() = default;

Element& RouterGraph::addElement(const std::string& name,
                                 std::unique_ptr<Element> element) {
  if (elements_.count(name) != 0) {
    throw std::runtime_error("duplicate element name: " + name);
  }
  element->name_ = name;
  Element& ref = *element;
  elements_[name] = std::move(element);
  order_.push_back(name);
  return ref;
}

Element& RouterGraph::instantiate(const std::string& name,
                                  const std::string& class_name,
                                  const std::vector<std::string>& args) {
  return addElement(name,
                    ElementRegistry::instance().create(class_name, args, context_));
}

void RouterGraph::connect(const std::string& from, int from_port,
                          const std::string& to, int to_port) {
  Element* a = find(from);
  Element* b = find(to);
  if (!a) throw std::runtime_error("unknown element: " + from);
  if (!b) throw std::runtime_error("unknown element: " + to);
  a->connectOutput(from_port, *b, to_port);
}

Element* RouterGraph::find(const std::string& name) {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : it->second.get();
}

void RouterGraph::parseConfig(const std::string& text) {
  const std::string clean = stripComments(text);
  for (const std::string& raw_stmt : splitTop(clean, ";")) {
    const std::string stmt = trim(raw_stmt);
    if (stmt.empty()) continue;

    // Declaration: name :: Class(args) — detect "::" at depth 0.
    const auto decl_parts = splitTop(stmt, "::");
    if (decl_parts.size() == 2) {
      const std::string name = trim(decl_parts[0]);
      std::string rhs = trim(decl_parts[1]);
      std::string class_name = rhs;
      std::vector<std::string> args;
      const auto paren = rhs.find('(');
      if (paren != std::string::npos) {
        if (rhs.back() != ')') throw std::runtime_error("bad declaration: " + stmt);
        class_name = trim(rhs.substr(0, paren));
        const std::string arg_text = rhs.substr(paren + 1, rhs.size() - paren - 2);
        if (!trim(arg_text).empty()) {
          for (const auto& a : splitTop(arg_text, ",")) args.push_back(trim(a));
        }
      }
      instantiate(name, class_name, args);
      continue;
    }
    if (decl_parts.size() > 2) throw std::runtime_error("bad declaration: " + stmt);

    // Connection chain: a [p] -> [q] b -> c
    const auto hops = splitTop(stmt, "->");
    if (hops.size() < 2) throw std::runtime_error("unrecognized statement: " + stmt);
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const PortSpec from = parsePortSpec(hops[i]);
      const PortSpec to = parsePortSpec(hops[i + 1]);
      connect(from.name, from.out_port, to.name, to.in_port);
    }
  }
}

}  // namespace vini::click
