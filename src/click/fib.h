// The forwarding information base (FIB).
//
// Click's LookupIPRoute element consults this structure: a binary trie
// over IPv4 prefixes supporting longest-prefix-match at lookup cost
// O(prefix length).  Entries carry a next-hop gateway (a virtual
// interface address on a neighboring node, in IIAS) and an output port
// of the lookup element.  XORP's FEA programs this table (Section 4.2.1:
// "The forwarding table is initially empty and is populated by XORP").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "packet/ip_address.h"

namespace vini::click {

struct FibEntry {
  packet::Prefix prefix;
  packet::IpAddress next_hop;  ///< zero = directly connected / local
  int port = 0;                ///< output port of the lookup element
};

class Fib {
 public:
  Fib();
  ~Fib();

  Fib(const Fib&) = delete;
  Fib& operator=(const Fib&) = delete;

  /// Insert or replace the entry for `entry.prefix`.
  void addRoute(const FibEntry& entry);

  /// Remove the entry for exactly `prefix`; returns true if present.
  bool removeRoute(const packet::Prefix& prefix);

  /// Longest-prefix match.
  std::optional<FibEntry> lookup(packet::IpAddress dst) const;

  /// Visit every installed entry (order: trie preorder).
  void forEach(const std::function<void(const FibEntry&)>& visit) const;

  std::size_t size() const { return size_; }
  void clear();

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<FibEntry> entry;
  };

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace vini::click
