// The standard element library.
//
// These are the elements the IIAS router graph is built from (Figure 1
// of the paper): UDP tunnel endpoints, the local TUN/TAP interface, the
// uml_switch bridge to the routing daemon, the FIB lookup, the
// encapsulation table, NAPT for external egress, token-bucket shapers
// for per-slice link bandwidth, and the drop filter used to inject
// virtual-link failures (Section 5.2 fails the Denver–Kansas City link
// "by dropping packets within Click on the virtual link").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "click/element.h"
#include "click/fib.h"
#include "obs/obs.h"
#include "sim/event_queue.h"

namespace vini::click {

/// Tunnel receive endpoint: reads encapsulated packets from a buffered
/// UDP socket, charging the Click process the per-packet forwarding cost
/// (this is where the user-space penalty of Table 2 lives), decapsulates,
/// and pushes the inner packet to output 0.
class FromSocket final : public Element {
 public:
  FromSocket(ClickContext& context, std::uint16_t port);
  std::string className() const override { return "FromSocket"; }
  void push(int, packet::Packet) override {}  // source element: no inputs

  std::uint16_t port() const { return port_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t socketDrops() const;

 private:
  void onQueued(const packet::Packet& p);

  ClickContext& context_;
  std::uint16_t port_;
  std::uint64_t received_ = 0;
  std::uint64_t non_tunnel_drops_ = 0;
  obs::Counter* m_rx_packets_ = nullptr;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
};

/// Tunnel transmit endpoint: encapsulates the packet toward the
/// annotated tunnel destination (set by EncapTable) over a UDP socket.
class ToSocket final : public Element {
 public:
  ToSocket(ClickContext& context, std::uint16_t local_port);
  std::string className() const override { return "ToSocket"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  ClickContext& context_;
  std::uint16_t local_port_;
  std::uint64_t sent_ = 0;
  std::uint64_t unroutable_ = 0;
  obs::Counter* m_tx_packets_ = nullptr;
  obs::Counter* m_unroutable_ = nullptr;
};

/// Reads packets the kernel routes to a TUN/TAP device (applications on
/// this node sending into the overlay via tap0); charges the Click
/// process and pushes to output 0.
class TapIn final : public Element {
 public:
  TapIn(ClickContext& context, const std::string& device_name);
  std::string className() const override { return "TapIn"; }
  void push(int, packet::Packet) override {}  // source element

  std::uint64_t received() const { return received_; }

 private:
  ClickContext& context_;
  std::uint64_t received_ = 0;
};

/// Writes packets back into the kernel through a TUN/TAP device (local
/// delivery: the kernel then demuxes to sockets / replies to pings).
class TapOut final : public Element {
 public:
  TapOut(ClickContext& context, const std::string& device_name);
  std::string className() const override { return "TapOut"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t delivered() const { return delivered_; }

 private:
  ClickContext& context_;
  std::string device_name_;
  std::uint64_t delivered_ = 0;
};

/// Bridge between Click and the routing daemon running "in UML".
/// Packets pushed in from the graph go up to the daemon (upcall);
/// packets the daemon sends come down via injectFromUml() and are pushed
/// to output 0.
class UmlSwitch final : public Element {
 public:
  explicit UmlSwitch(ClickContext& context);
  std::string className() const override { return "UmlSwitch"; }
  void push(int input_port, packet::Packet p) override;

  /// The routing daemon's receive hook.
  void setUpcall(std::function<void(packet::Packet)> upcall) {
    upcall_ = std::move(upcall);
  }

  /// Daemon -> data plane.
  void injectFromUml(packet::Packet p);

  std::uint64_t toUml() const { return to_uml_; }
  std::uint64_t fromUml() const { return from_uml_; }

 private:
  ClickContext& context_;
  std::function<void(packet::Packet)> upcall_;
  std::uint64_t to_uml_ = 0;
  std::uint64_t from_uml_ = 0;
};

/// Demultiplexes by destination: output 0 = local control plane (routing
/// protocol traffic addressed to this virtual node), output 1 = local
/// data (delivered via tap0), output 2 = transit.
class LocalDemux final : public Element {
 public:
  LocalDemux() = default;
  std::string className() const override { return "LocalDemux"; }
  void push(int input_port, packet::Packet p) override;

  void addLocalAddress(packet::IpAddress addr) { local_.insert(addr); }
  bool isLocal(packet::IpAddress addr) const { return local_.count(addr) != 0; }

 private:
  std::set<packet::IpAddress> local_;
};

/// Decrements the IP TTL; expired packets go to output 1 if connected,
/// else are dropped and counted.
class DecIpTtl final : public Element {
 public:
  DecIpTtl() = default;
  std::string className() const override { return "DecIpTtl"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t expired() const { return expired_; }

 private:
  std::uint64_t expired_ = 0;
};

/// Longest-prefix-match routing: annotates the packet with the next hop
/// and emits it on the entry's port.  Misses are counted and dropped.
/// Configuration arguments are entries of the form "prefix gateway port".
class LookupIPRoute final : public Element {
 public:
  LookupIPRoute() = default;
  explicit LookupIPRoute(const std::vector<std::string>& route_args);
  std::string className() const override { return "LookupIPRoute"; }
  void push(int input_port, packet::Packet p) override;

  Fib& fib() { return fib_; }
  std::uint64_t misses() const { return misses_; }

 private:
  Fib fib_;
  std::uint64_t misses_ = 0;
};

/// Maps the next-hop annotation (a virtual interface address on a
/// neighboring virtual node) to the UDP tunnel that reaches it: the
/// (public underlay address, port) of the peer's Click process.
class EncapTable final : public Element {
 public:
  EncapTable() = default;
  std::string className() const override { return "EncapTable"; }
  void push(int input_port, packet::Packet p) override;

  void addMapping(packet::IpAddress next_hop, packet::IpAddress node_addr,
                  std::uint16_t port);
  bool removeMapping(packet::IpAddress next_hop);
  std::size_t size() const { return table_.size(); }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Endpoint {
    packet::IpAddress node;
    std::uint16_t port = 0;
  };
  std::map<packet::IpAddress, Endpoint> table_;
  std::uint64_t misses_ = 0;
};

/// Network Address and Port Translation at the overlay egress
/// (Section 4.2.3).  Outbound packets (input 0) have their source
/// rewritten to this node's public address and an allocated port, then
/// are sent to the external Internet through the kernel.  Return traffic
/// is captured at the stack, reverse-translated, charged to the Click
/// process, and pushed out of output 0 (back toward the FIB, which
/// routes it to the opted-in client across the overlay).
class Napt final : public Element {
 public:
  Napt(ClickContext& context, packet::IpAddress public_addr);
  ~Napt() override;
  std::string className() const override { return "Napt"; }
  void push(int input_port, packet::Packet p) override;

  std::size_t activeMappings() const { return forward_.size(); }
  std::uint64_t translatedOut() const { return translated_out_; }
  std::uint64_t translatedBack() const { return translated_back_; }
  std::uint64_t untranslatable() const { return untranslatable_; }

 private:
  struct FlowKey {
    std::uint8_t proto = 0;
    std::uint32_t src_addr = 0;
    std::uint16_t src_port = 0;
    std::uint32_t dst_addr = 0;
    std::uint16_t dst_port = 0;
    auto operator<=>(const FlowKey&) const = default;
  };
  struct Origin {
    packet::IpAddress addr;
    std::uint16_t port = 0;
  };

  std::uint16_t mapFlow(const FlowKey& key, packet::IpProto proto);
  void onReturnPacket(packet::Packet p, std::uint16_t nat_port);

  ClickContext& context_;
  packet::IpAddress public_addr_;
  std::map<FlowKey, std::uint16_t> forward_;
  std::map<std::uint16_t, Origin> reverse_;
  std::vector<std::pair<packet::IpProto, std::uint16_t>> captures_;
  std::uint64_t translated_out_ = 0;
  std::uint64_t translated_back_ = 0;
  std::uint64_t untranslatable_ = 0;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
};

/// Token-bucket shaper with a bounded FIFO: models Click traffic shapers
/// used to emulate link bandwidths (Section 6.2 "to allow researchers to
/// vary link capacities ... via configuration of traffic shapers in
/// Click").
class Shaper final : public Element {
 public:
  Shaper(ClickContext& context, double rate_bps, std::size_t bucket_bytes,
         std::size_t queue_bytes = 256 * 1024);
  std::string className() const override { return "Shaper"; }
  void push(int input_port, packet::Packet p) override;

  double rateBps() const { return rate_bps_; }
  void setRateBps(double rate) { rate_bps_ = rate; }
  std::uint64_t drops() const { return drops_; }
  std::size_t queuedBytes() const { return queued_bytes_; }

 private:
  void refill();
  void drain();

  ClickContext& context_;
  double rate_bps_;
  double bucket_bytes_;
  double tokens_;
  std::size_t queue_capacity_;
  sim::Time last_refill_ = 0;
  std::deque<packet::Packet> queue_;
  /// Queueing-span id of each queue_ entry (0 = untraced); lockstep.
  std::deque<std::uint32_t> queue_spans_;
  std::size_t queued_bytes_ = 0;
  std::uint64_t drops_ = 0;
  bool drain_scheduled_ = false;
  obs::Counter* m_drops_ = nullptr;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
};

/// Failure injection: drops packets whose tunnel destination (or, if
/// unset, IP destination) is in the blocked set.  This is the mechanism
/// the Section 5.2 experiment uses to fail a virtual link.
class DropFilter final : public Element {
 public:
  DropFilter() = default;
  std::string className() const override { return "DropFilter"; }
  void push(int input_port, packet::Packet p) override;

  void block(packet::IpAddress addr) { blocked_.insert(addr); }
  void unblock(packet::IpAddress addr) { blocked_.erase(addr); }
  void clear() { blocked_.clear(); }
  bool isBlocked(packet::IpAddress addr) const { return blocked_.count(addr) != 0; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::set<packet::IpAddress> blocked_;
  std::uint64_t dropped_ = 0;
};

/// Generates ICMP Time Exceeded errors for expired packets — this is
/// what makes traceroute work *inside* the overlay: each virtual hop's
/// DecIpTtl routes expired packets here, and the error (sourced from the
/// virtual node's own overlay address) is pushed back into the FIB
/// toward the prober.
class IcmpTimeExceeded final : public Element {
 public:
  explicit IcmpTimeExceeded(packet::IpAddress reporter) : reporter_(reporter) {}
  std::string className() const override { return "IcmpTimeExceeded"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t generated() const { return generated_; }

 private:
  packet::IpAddress reporter_;
  std::uint64_t generated_ = 0;
};

/// Pass-through packet/byte counter.
class Counter final : public Element {
 public:
  Counter() = default;
  std::string className() const override { return "Counter"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  void reset() { packets_ = bytes_ = 0; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Terminal sink.
class Discard final : public Element {
 public:
  Discard() = default;
  std::string className() const override { return "Discard"; }
  void push(int, packet::Packet) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Protocol classifier: each argument is one of "udp", "tcp", "icmp",
/// "ospf", or "-" (match-all); a packet goes to the port of the first
/// matching pattern, or is dropped if none match.
class Classifier final : public Element {
 public:
  explicit Classifier(std::vector<std::string> patterns);
  std::string className() const override { return "Classifier"; }
  void push(int input_port, packet::Packet p) override;

  std::uint64_t unmatched() const { return unmatched_; }

 private:
  std::vector<std::string> patterns_;
  std::uint64_t unmatched_ = 0;
};

}  // namespace vini::click
