#include "click/flat_label.h"

namespace vini::click {

void FlatLabelRoute::addPeer(std::uint64_t label, packet::IpAddress node_addr,
                             std::uint16_t port) {
  peers_[label] = Peer{node_addr, port};
}

bool FlatLabelRoute::removePeer(std::uint64_t label) {
  return peers_.erase(label) != 0;
}

std::uint64_t FlatLabelRoute::ownerOf(std::uint64_t key) const {
  // Successor on the ring: the smallest clockwise distance key -> label.
  std::uint64_t best = own_label_;
  std::uint64_t best_distance = own_label_ - key;  // mod 2^64 arithmetic
  for (const auto& [label, peer] : peers_) {
    const std::uint64_t distance = label - key;
    if (distance < best_distance) {
      best = label;
      best_distance = distance;
    }
  }
  return best;
}

void FlatLabelRoute::push(int, packet::Packet p) {
  const std::uint64_t owner = ownerOf(p.meta.flow_id);
  if (owner == own_label_) {
    output(1, std::move(p));  // we own the key: local delivery
    return;
  }
  const Peer& peer = peers_.at(owner);
  p.meta.encap_dst = peer.node;
  p.meta.encap_port = peer.port;
  output(0, std::move(p));
}

}  // namespace vini::click
