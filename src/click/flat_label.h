// A non-IP forwarding paradigm, as the paper promises is possible:
//
//   "Our design has no fundamental dependence on IP ... One could
//    implement a new addressing scheme in IIAS, for instance based on
//    DHTs, simply by writing new forwarding and encapsulation table
//    elements."  (Section 4.2.1)
//
// FlatLabelRoute is exactly that pair of elements fused: packets carry a
// 64-bit flat identifier (a DHT key) in their annotation area; the
// element greedily forwards toward the peer whose label is the key's
// successor on the 2^64 ring (Chord-style), mapping the chosen peer
// straight to its UDP tunnel endpoint.  IP headers are ignored entirely
// for the routing decision.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "click/element.h"

namespace vini::click {

class FlatLabelRoute final : public Element {
 public:
  explicit FlatLabelRoute(std::uint64_t own_label) : own_label_(own_label) {}
  std::string className() const override { return "FlatLabelRoute"; }

  /// Register a peer virtual node: its ring label and the underlay
  /// tunnel endpoint that reaches it.
  void addPeer(std::uint64_t label, packet::IpAddress node_addr,
               std::uint16_t port);
  bool removePeer(std::uint64_t label);

  /// The key is carried in meta.flow_id.  Output 0: toward a tunnel
  /// (encap annotations set); output 1: this node owns the key.
  void push(int input_port, packet::Packet p) override;

  /// The label that owns `key` from this node's view (itself or a peer).
  std::uint64_t ownerOf(std::uint64_t key) const;

  std::uint64_t ownLabel() const { return own_label_; }
  std::size_t peerCount() const { return peers_.size(); }

 private:
  struct Peer {
    packet::IpAddress node;
    std::uint16_t port = 0;
  };

  std::uint64_t own_label_;
  std::map<std::uint64_t, Peer> peers_;
};

}  // namespace vini::click
