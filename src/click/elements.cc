#include "click/elements.h"

#include <sstream>
#include <stdexcept>

#include "click/graph.h"

namespace vini::click {

namespace {

std::vector<std::string> splitWords(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

tcpip::TunDevice* requireTun(ClickContext& context, const std::string& name) {
  auto* dev = dynamic_cast<tcpip::TunDevice*>(context.stack->deviceByName(name));
  if (!dev) throw std::runtime_error("no TUN device named " + name);
  return dev;
}

// Hop-span helpers for traced packets (meta.trace_id != 0).  Elements
// without a ClickContext (DropFilter, Classifier, the lookup tables)
// only ever *end* a journey, and use VINI_OBS_ROOT_DROP, which reads the
// clock the World attached to the obs context.
std::uint32_t spanOpen(const ClickContext& context, const packet::Packet& p,
                       std::int16_t layer, std::int16_t node) {
  if (p.meta.trace_id == 0) return obs::SpanTracker::kNoSpan;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    return ctx->spans.open(p.meta.trace_id, layer, context.queue->now(), node,
                           -1, static_cast<std::uint32_t>(p.ipPacketBytes()));
  }
  return obs::SpanTracker::kNoSpan;
}

void spanClose(const ClickContext& context, std::uint32_t span_id) {
  if (span_id == obs::SpanTracker::kNoSpan) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->spans.close(span_id, context.queue->now());
  }
}

void spanDrop(const ClickContext& context, std::uint32_t span_id,
              const char* reason) {
  if (span_id == obs::SpanTracker::kNoSpan) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->spans.close(span_id, context.queue->now(), obs::SpanOutcome::kDropped,
                     ctx->spans.intern(reason));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FromSocket

FromSocket::FromSocket(ClickContext& context, std::uint16_t port)
    : context_(context), port_(port) {
  tcpip::UdpSocket& socket = context_.stack->openUdp(port_);
  socket.setBuffered();
  socket.setNotify([this](const packet::Packet& p) { onQueued(p); });
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    // One counter per node: co-resident slices' tunnel endpoints share it
    // (registration of an existing (key, type) returns the same metric).
    m_rx_packets_ = &ctx->metrics.counter(
        "click.FromSocket", context_.stack->node().name(), "rx_packets");
    span_layer_ = ctx->spans.intern("click.process");
    span_node_ = ctx->spans.intern(context_.stack->node().name());
  }
}

void FromSocket::onQueued(const packet::Packet& p) {
  // One process job per queued datagram: the job pays the user-space
  // forwarding cost (syscalls + copies), then reads and processes it.
  // While the process is descheduled the socket buffer fills — and
  // overflows, which is Figure 6(a).
  const sim::Duration cost = context_.costs.cost(p.ipPacketBytes());
  // The span covers the socket-buffer wait (the process may be
  // descheduled) plus the charged forwarding cost: jobs and the buffer
  // are both FIFO, so the job reads the packet it was notified for.
  const std::uint32_t span = spanOpen(context_, p, span_layer_, span_node_);
  const std::uint64_t trace_id = p.meta.trace_id;
  context_.process->execute(cost, [this, span, trace_id] {
    tcpip::UdpSocket* socket = context_.stack->udpSocket(port_);
    if (!socket) {
      spanDrop(context_, span, "socket_gone");
      VINI_OBS_ROOT_DROP(trace_id, "socket_gone");
      return;
    }
    auto p = socket->readPacket();
    if (!p) {
      spanDrop(context_, span, "socket_gone");
      VINI_OBS_ROOT_DROP(trace_id, "socket_gone");
      return;
    }
    ++received_;
    VINI_OBS_INC(m_rx_packets_);
    if (!p->inner) {
      ++non_tunnel_drops_;
      spanDrop(context_, span, "non_tunnel");
      VINI_OBS_ROOT_DROP(trace_id, "non_tunnel");
      return;
    }
    output(0, *p->inner);
    spanClose(context_, span);
  });
}

std::uint64_t FromSocket::socketDrops() const {
  tcpip::UdpSocket* socket = context_.stack->udpSocket(port_);
  return socket ? socket->bufferDrops() : 0;
}

// ---------------------------------------------------------------------------
// ToSocket

ToSocket::ToSocket(ClickContext& context, std::uint16_t local_port)
    : context_(context), local_port_(local_port) {
  if (!context_.stack->udpSocket(local_port_)) {
    context_.stack->openUdp(local_port_);
  }
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    const std::string& node = context_.stack->node().name();
    m_tx_packets_ = &ctx->metrics.counter("click.ToSocket", node, "tx_packets");
    m_unroutable_ = &ctx->metrics.counter("click.ToSocket", node, "unroutable");
  }
}

void ToSocket::push(int, packet::Packet p) {
  if (p.meta.encap_dst.isZero()) {
    ++unroutable_;
    VINI_OBS_INC(m_unroutable_);
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "unroutable");
    return;
  }
  tcpip::UdpSocket* socket = context_.stack->udpSocket(local_port_);
  if (!socket) {
    ++unroutable_;
    VINI_OBS_INC(m_unroutable_);
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "unroutable");
    return;
  }
  ++sent_;
  VINI_OBS_INC(m_tx_packets_);
  const auto dst = p.meta.encap_dst;
  const std::uint16_t dport = p.meta.encap_port != 0 ? p.meta.encap_port : local_port_;
  p.meta.slice_id = context_.slice_id;  // VNET attribution of tunnel traffic
  socket->sendEncapsulatedTo(dst, dport,
                             std::make_shared<const packet::Packet>(std::move(p)));
}

// ---------------------------------------------------------------------------
// TapIn / TapOut

TapIn::TapIn(ClickContext& context, const std::string& device_name)
    : context_(context) {
  tcpip::TunDevice* dev = requireTun(context_, device_name);
  dev->setReader([this](packet::Packet p) {
    // The kernel handed us a packet via /dev/net/tun; reading it is a
    // syscall round like any other forwarding operation.
    const sim::Duration cost = context_.costs.cost(p.ipPacketBytes());
    context_.process->execute(cost, [this, p = std::move(p)]() mutable {
      ++received_;
      output(0, std::move(p));
    });
  });
}

TapOut::TapOut(ClickContext& context, const std::string& device_name)
    : context_(context), device_name_(device_name) {
  requireTun(context_, device_name);  // fail fast on bad config
}

void TapOut::push(int, packet::Packet p) {
  auto* dev = dynamic_cast<tcpip::TunDevice*>(
      context_.stack->deviceByName(device_name_));
  if (!dev) return;
  ++delivered_;
  dev->inject(std::move(p));
}

// ---------------------------------------------------------------------------
// UmlSwitch

UmlSwitch::UmlSwitch(ClickContext& context) : context_(context) {}

void UmlSwitch::push(int, packet::Packet p) {
  ++to_uml_;
  if (upcall_) upcall_(std::move(p));
}

void UmlSwitch::injectFromUml(packet::Packet p) {
  const sim::Duration cost = context_.costs.cost(p.ipPacketBytes());
  context_.process->execute(cost, [this, p = std::move(p)]() mutable {
    ++from_uml_;
    output(0, std::move(p));
  });
}

// ---------------------------------------------------------------------------
// LocalDemux

void LocalDemux::push(int, packet::Packet p) {
  const bool local = isLocal(p.ip.dst);
  // Control-plane traffic: OSPF (protocol 89) and RIP (UDP port 520)
  // addressed to this virtual node go up to the routing daemon.
  const auto* udp = p.udpHeader();
  const bool control = p.ip.proto == packet::IpProto::kOspf ||
                       (udp && udp->dst_port == 520);
  if (local && control) {
    output(0, std::move(p));
  } else if (local) {
    output(1, std::move(p));
  } else {
    output(2, std::move(p));
  }
}

// ---------------------------------------------------------------------------
// DecIpTtl

void DecIpTtl::push(int, packet::Packet p) {
  if (p.ip.ttl <= 1) {
    ++expired_;
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "ttl_expired");
    // Packet::icmpError starts the Time Exceeded error on an untraced
    // journey of its own; the expired packet's trace ends at this drop.
    if (outputCount() > 1) output(1, std::move(p));
    return;
  }
  p.ip.ttl -= 1;
  output(0, std::move(p));
}

// ---------------------------------------------------------------------------
// LookupIPRoute

LookupIPRoute::LookupIPRoute(const std::vector<std::string>& route_args) {
  for (const auto& arg : route_args) {
    const auto words = splitWords(arg);
    if (words.size() != 3) {
      throw std::runtime_error("LookupIPRoute: want 'prefix gw port', got: " + arg);
    }
    FibEntry entry;
    entry.prefix = packet::Prefix::mustParse(words[0]);
    entry.next_hop = packet::IpAddress::mustParse(words[1]);
    entry.port = std::stoi(words[2]);
    fib_.addRoute(entry);
  }
}

void LookupIPRoute::push(int, packet::Packet p) {
  const auto entry = fib_.lookup(p.ip.dst);
  if (!entry) {
    ++misses_;
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "fib_miss");
    return;
  }
  p.meta.next_hop = entry->next_hop.isZero() ? p.ip.dst : entry->next_hop;
  output(entry->port, std::move(p));
}

// ---------------------------------------------------------------------------
// EncapTable

void EncapTable::addMapping(packet::IpAddress next_hop, packet::IpAddress node_addr,
                            std::uint16_t port) {
  table_[next_hop] = Endpoint{node_addr, port};
}

bool EncapTable::removeMapping(packet::IpAddress next_hop) {
  return table_.erase(next_hop) != 0;
}

void EncapTable::push(int, packet::Packet p) {
  auto it = table_.find(p.meta.next_hop);
  if (it == table_.end()) {
    ++misses_;
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "encap_miss");
    return;
  }
  p.meta.encap_dst = it->second.node;
  p.meta.encap_port = it->second.port;
  output(0, std::move(p));
}

// ---------------------------------------------------------------------------
// Napt

Napt::Napt(ClickContext& context, packet::IpAddress public_addr)
    : context_(context), public_addr_(public_addr) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    span_layer_ = ctx->spans.intern("click.napt");
    span_node_ = ctx->spans.intern(context_.stack->node().name());
  }
}

Napt::~Napt() {
  for (const auto& [proto, port] : captures_) {
    context_.stack->clearPortCapture(proto, port);
  }
}

std::uint16_t Napt::mapFlow(const FlowKey& key, packet::IpProto proto) {
  auto it = forward_.find(key);
  if (it != forward_.end()) return it->second;
  const std::uint16_t nat_port = context_.stack->allocateEphemeralPort();
  forward_[key] = nat_port;
  reverse_[nat_port] = Origin{packet::IpAddress(key.src_addr), key.src_port};
  captures_.emplace_back(proto, nat_port);
  context_.stack->setPortCapture(proto, nat_port, [this, nat_port](packet::Packet p) {
    onReturnPacket(std::move(p), nat_port);
  });
  return nat_port;
}

void Napt::push(int, packet::Packet p) {
  // Egress marker in the hop decomposition: translation is synchronous,
  // so the span is zero-width, but it records where the packet left the
  // overlay.
  const std::uint32_t span = spanOpen(context_, p, span_layer_, span_node_);
  FlowKey key;
  key.proto = static_cast<std::uint8_t>(p.ip.proto);
  key.src_addr = p.ip.src.value();
  key.dst_addr = p.ip.dst.value();

  if (auto* udp = p.udpHeader()) {
    key.src_port = udp->src_port;
    key.dst_port = udp->dst_port;
    udp->src_port = mapFlow(key, packet::IpProto::kUdp);
  } else if (auto* tcp = p.tcpHeader()) {
    key.src_port = tcp->src_port;
    key.dst_port = tcp->dst_port;
    tcp->src_port = mapFlow(key, packet::IpProto::kTcp);
  } else if (auto* icmp = p.icmpHeader()) {
    key.src_port = icmp->ident;
    icmp->ident = mapFlow(key, packet::IpProto::kIcmp);
  } else {
    ++untranslatable_;
    spanDrop(context_, span, "napt_untranslatable");
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "napt_untranslatable");
    return;
  }
  p.ip.src = public_addr_;
  ++translated_out_;
  spanClose(context_, span);
  // Out through the kernel to the "real" Internet.
  context_.stack->sendPacket(std::move(p));
}

void Napt::onReturnPacket(packet::Packet p, std::uint16_t nat_port) {
  auto it = reverse_.find(nat_port);
  if (it == reverse_.end()) {
    ++untranslatable_;
    return;
  }
  const Origin origin = it->second;
  p.ip.dst = origin.addr;
  if (auto* udp = p.udpHeader()) {
    udp->dst_port = origin.port;
  } else if (auto* tcp = p.tcpHeader()) {
    tcp->dst_port = origin.port;
  } else if (auto* icmp = p.icmpHeader()) {
    icmp->ident = origin.port;
  }
  ++translated_back_;
  // Return traffic re-enters the overlay through the Click process.
  const sim::Duration cost = context_.costs.cost(p.ipPacketBytes());
  context_.process->execute(cost, [this, p = std::move(p)]() mutable {
    output(0, std::move(p));
  });
}

// ---------------------------------------------------------------------------
// Shaper

Shaper::Shaper(ClickContext& context, double rate_bps, std::size_t bucket_bytes,
               std::size_t queue_bytes)
    : context_(context),
      rate_bps_(rate_bps),
      bucket_bytes_(static_cast<double>(bucket_bytes)),
      tokens_(static_cast<double>(bucket_bytes)),
      queue_capacity_(queue_bytes) {
  last_refill_ = context_.queue->now();
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    m_drops_ = &ctx->metrics.counter("click.Shaper",
                                     context_.stack->node().name(), "drops");
    span_layer_ = ctx->spans.intern("click.shaper");
    span_node_ = ctx->spans.intern(context_.stack->node().name());
  }
}

void Shaper::refill() {
  const sim::Time now = context_.queue->now();
  tokens_ = std::min(bucket_bytes_,
                     tokens_ + rate_bps_ / 8.0 * sim::toSeconds(now - last_refill_));
  last_refill_ = now;
}

void Shaper::push(int, packet::Packet p) {
  const std::size_t size = p.wireBytes();
  if (queued_bytes_ + size > queue_capacity_) {
    ++drops_;
    VINI_OBS_INC(m_drops_);
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "shaper_overflow");
    return;
  }
  queued_bytes_ += size;
  queue_spans_.push_back(spanOpen(context_, p, span_layer_, span_node_));
  queue_.push_back(std::move(p));
  drain();
}

void Shaper::drain() {
  refill();
  while (!queue_.empty()) {
    const std::size_t size = queue_.front().wireBytes();
    if (tokens_ < static_cast<double>(size)) break;
    tokens_ -= static_cast<double>(size);
    packet::Packet p = std::move(queue_.front());
    queue_.pop_front();
    spanClose(context_, queue_spans_.front());
    queue_spans_.pop_front();
    queued_bytes_ -= size;
    output(0, std::move(p));
  }
  if (!queue_.empty() && !drain_scheduled_) {
    const double deficit = static_cast<double>(queue_.front().wireBytes()) - tokens_;
    const auto wait = static_cast<sim::Duration>(deficit * 8.0 / rate_bps_ *
                                                 static_cast<double>(sim::kSecond));
    drain_scheduled_ = true;
    context_.queue->scheduleAfter(std::max<sim::Duration>(wait, sim::kMicrosecond),
                                  "click.shaper", [this] {
                                    drain_scheduled_ = false;
                                    drain();
                                  });
  }
}

// ---------------------------------------------------------------------------
// DropFilter

void DropFilter::push(int, packet::Packet p) {
  const packet::IpAddress key =
      p.meta.encap_dst.isZero() ? p.ip.dst : p.meta.encap_dst;
  if (isBlocked(key)) {
    ++dropped_;
    // The Section 5.2 link-failure mechanism: this is where fig8's
    // in-flight probes die while OSPF reconverges.
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "click_drop_filter");
    return;
  }
  output(0, std::move(p));
}

// ---------------------------------------------------------------------------
// IcmpTimeExceeded

void IcmpTimeExceeded::push(int, packet::Packet p) {
  if (p.isIcmp()) return;  // never ICMP about ICMP
  ++generated_;
  output(0, packet::Packet::icmpError(reporter_,
                                      packet::IcmpHeader::kTimeExceeded,
                                      packet::IcmpHeader::kCodeTtlExpired, p));
}

// ---------------------------------------------------------------------------
// Counter / Classifier

void Counter::push(int, packet::Packet p) {
  ++packets_;
  bytes_ += p.ipPacketBytes();
  output(0, std::move(p));
}

Classifier::Classifier(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {}

void Classifier::push(int, packet::Packet p) {
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const std::string& pat = patterns_[i];
    const bool match =
        (pat == "-") || (pat == "udp" && p.isUdp()) || (pat == "tcp" && p.isTcp()) ||
        (pat == "icmp" && p.isIcmp()) ||
        (pat == "ospf" && p.ip.proto == packet::IpProto::kOspf);
    if (match) {
      output(static_cast<int>(i), std::move(p));
      return;
    }
  }
  ++unmatched_;
  VINI_OBS_ROOT_DROP(p.meta.trace_id, "classifier_unmatched");
}

// ---------------------------------------------------------------------------
// Registry

namespace {

void doRegisterStandardElements() {
  auto& reg = ElementRegistry::instance();

  reg.registerClass("FromSocket", [](const auto& args, ClickContext& ctx) {
    if (args.size() != 1) throw std::runtime_error("FromSocket(port)");
    return std::make_unique<FromSocket>(ctx, static_cast<std::uint16_t>(std::stoi(args[0])));
  });
  reg.registerClass("ToSocket", [](const auto& args, ClickContext& ctx) {
    if (args.size() != 1) throw std::runtime_error("ToSocket(port)");
    return std::make_unique<ToSocket>(ctx, static_cast<std::uint16_t>(std::stoi(args[0])));
  });
  reg.registerClass("TapIn", [](const auto& args, ClickContext& ctx) {
    if (args.size() != 1) throw std::runtime_error("TapIn(device)");
    return std::make_unique<TapIn>(ctx, args[0]);
  });
  reg.registerClass("TapOut", [](const auto& args, ClickContext& ctx) {
    if (args.size() != 1) throw std::runtime_error("TapOut(device)");
    return std::make_unique<TapOut>(ctx, args[0]);
  });
  reg.registerClass("UmlSwitch", [](const auto& args, ClickContext& ctx) {
    if (!args.empty()) throw std::runtime_error("UmlSwitch()");
    return std::make_unique<UmlSwitch>(ctx);
  });
  reg.registerClass("LocalDemux", [](const auto& args, ClickContext&) {
    auto demux = std::make_unique<LocalDemux>();
    for (const auto& a : args) demux->addLocalAddress(packet::IpAddress::mustParse(a));
    return demux;
  });
  reg.registerClass("DecIpTtl", [](const auto&, ClickContext&) {
    return std::make_unique<DecIpTtl>();
  });
  reg.registerClass("LookupIPRoute", [](const auto& args, ClickContext&) {
    return std::make_unique<LookupIPRoute>(args);
  });
  reg.registerClass("EncapTable", [](const auto& args, ClickContext&) {
    auto table = std::make_unique<EncapTable>();
    for (const auto& arg : args) {
      const auto words = splitWords(arg);
      if (words.size() != 3) throw std::runtime_error("EncapTable: 'vif node port'");
      table->addMapping(packet::IpAddress::mustParse(words[0]),
                        packet::IpAddress::mustParse(words[1]),
                        static_cast<std::uint16_t>(std::stoi(words[2])));
    }
    return table;
  });
  reg.registerClass("Napt", [](const auto& args, ClickContext& ctx) {
    if (args.size() != 1) throw std::runtime_error("Napt(public_addr)");
    return std::make_unique<Napt>(ctx, packet::IpAddress::mustParse(args[0]));
  });
  reg.registerClass("Shaper", [](const auto& args, ClickContext& ctx) {
    if (args.size() < 2) throw std::runtime_error("Shaper(rate_bps, bucket_bytes)");
    return std::make_unique<Shaper>(ctx, std::stod(args[0]),
                                    static_cast<std::size_t>(std::stoul(args[1])));
  });
  reg.registerClass("DropFilter", [](const auto& args, ClickContext&) {
    auto filter = std::make_unique<DropFilter>();
    for (const auto& a : args) filter->block(packet::IpAddress::mustParse(a));
    return filter;
  });
  reg.registerClass("IcmpTimeExceeded", [](const auto& args, ClickContext&) {
    if (args.size() != 1) throw std::runtime_error("IcmpTimeExceeded(reporter)");
    return std::make_unique<IcmpTimeExceeded>(packet::IpAddress::mustParse(args[0]));
  });
  reg.registerClass("Counter", [](const auto&, ClickContext&) {
    return std::make_unique<Counter>();
  });
  reg.registerClass("Discard", [](const auto&, ClickContext&) {
    return std::make_unique<Discard>();
  });
  reg.registerClass("Classifier", [](const auto& args, ClickContext&) {
    return std::make_unique<Classifier>(args);
  });
}

}  // namespace

void registerStandardElements() {
  // Idempotent and thread-safe: the const magic static runs registration
  // exactly once and is immutable afterwards.
  static const bool registered = [] {
    doRegisterStandardElements();
    return true;
  }();
  (void)registered;
}

}  // namespace vini::click
