#include "click/element.h"

#include <stdexcept>

#include "obs/obs.h"

namespace vini::click {

void Element::connectOutput(int port, Element& target, int target_port) {
  if (port < 0) throw std::invalid_argument("negative port");
  if (outputs_.size() <= static_cast<std::size_t>(port)) {
    outputs_.resize(static_cast<std::size_t>(port) + 1);
  }
  outputs_[static_cast<std::size_t>(port)] = PortRef{&target, target_port};
}

void Element::output(int port, packet::Packet p) {
  if (port < 0 || static_cast<std::size_t>(port) >= outputs_.size() ||
      outputs_[static_cast<std::size_t>(port)].element == nullptr) {
    ++unconnected_drops_;
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "unconnected_port");
    return;
  }
  auto& ref = outputs_[static_cast<std::size_t>(port)];
  ref.element->push(ref.port, std::move(p));
}

ElementRegistry& ElementRegistry::instance() {
  static ElementRegistry registry;
  return registry;
}

void ElementRegistry::registerClass(const std::string& class_name, Factory factory) {
  factories_[class_name] = std::move(factory);
}

std::unique_ptr<Element> ElementRegistry::create(
    const std::string& class_name, const std::vector<std::string>& args,
    ClickContext& context) const {
  auto it = factories_.find(class_name);
  if (it == factories_.end()) {
    throw std::invalid_argument("unknown element class: " + class_name);
  }
  return it->second(args, context);
}

bool ElementRegistry::hasClass(const std::string& class_name) const {
  return factories_.count(class_name) != 0;
}

}  // namespace vini::click
