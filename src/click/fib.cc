#include "click/fib.h"

namespace vini::click {

Fib::Fib() : root_(std::make_unique<Node>()) {}
Fib::~Fib() = default;

void Fib::addRoute(const FibEntry& entry) {
  Node* node = root_.get();
  const std::uint32_t addr = entry.prefix.address().value();
  for (int depth = 0; depth < entry.prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  if (!node->entry) ++size_;
  node->entry = entry;
}

bool Fib::removeRoute(const packet::Prefix& prefix) {
  Node* node = root_.get();
  const std::uint32_t addr = prefix.address().value();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) return false;
    node = node->child[bit].get();
  }
  if (!node->entry) return false;
  node->entry.reset();
  --size_;
  return true;
}

std::optional<FibEntry> Fib::lookup(packet::IpAddress dst) const {
  const std::uint32_t addr = dst.value();
  const Node* node = root_.get();
  std::optional<FibEntry> best = node->entry;
  for (int depth = 0; depth < 32 && node; ++depth) {
    const int bit = (addr >> (31 - depth)) & 1;
    node = node->child[bit].get();
    if (node && node->entry) best = node->entry;
  }
  return best;
}

void Fib::forEach(const std::function<void(const FibEntry&)>& visit) const {
  // Iterative preorder traversal.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->entry) visit(*node->entry);
    if (node->child[1]) stack.push_back(node->child[1].get());
    if (node->child[0]) stack.push_back(node->child[0].get());
  }
}

void Fib::clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

}  // namespace vini::click
