// RouterGraph: a configured Click router.
//
// Owns the elements, their connections, and the parser for a practical
// subset of the Click configuration language:
//
//   // declaration
//   rt :: LookupIPRoute(10.0.0.0/8 0.0.0.0 1);
//   // connections, with optional port brackets, chainable
//   from [0] -> [0] rt;
//   rt [1] -> tap;
//
// Inline declarations inside connection chains are not supported; the
// generators always emit declarations first.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "click/element.h"

namespace vini::click {

class RouterGraph {
 public:
  explicit RouterGraph(ClickContext context);
  ~RouterGraph();

  RouterGraph(const RouterGraph&) = delete;
  RouterGraph& operator=(const RouterGraph&) = delete;

  /// Add a pre-built element under `name`.
  Element& addElement(const std::string& name, std::unique_ptr<Element> element);

  /// Instantiate `class_name(args...)` from the registry under `name`.
  Element& instantiate(const std::string& name, const std::string& class_name,
                       const std::vector<std::string>& args = {});

  /// Connect `from`'s output `from_port` to `to`'s input `to_port`.
  void connect(const std::string& from, int from_port, const std::string& to,
               int to_port);

  Element* find(const std::string& name);

  /// Typed lookup; returns nullptr if absent or of a different class.
  template <typename T>
  T* get(const std::string& name) {
    return dynamic_cast<T*>(find(name));
  }

  /// Parse a Click-language configuration, instantiating and connecting
  /// elements.  Throws std::runtime_error with a location on bad input.
  void parseConfig(const std::string& text);

  std::size_t elementCount() const { return order_.size(); }
  const std::vector<std::string>& elementNames() const { return order_; }

  ClickContext& context() { return context_; }

 private:
  ClickContext context_;
  std::map<std::string, std::unique_ptr<Element>> elements_;
  std::vector<std::string> order_;
};

}  // namespace vini::click
