#include "cpu/scheduler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "check/audit.h"

namespace vini::cpu {

// ---------------------------------------------------------------------------
// Process

Process::Process(Scheduler& sched, ProcessConfig config)
    : sched_(sched), config_(std::move(config)) {
  accounting_start_ = sched_.queue().now();
  timeline_track_ = "cpu/" + sched_.config().node_name + "/" + config_.name;
  node_tag_ = sched_.queue().internNodeTag(sched_.config().node_name);
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    obs::MetricsRegistry& m = ctx->metrics;
    const std::string& node = sched_.config().node_name;
    m_jobs_ = &m.counter("cpu.process", node, config_.name + "/jobs");
    m_cpu_ns_ = &m.counter("cpu.process", node, config_.name + "/cpu_ns");
    m_wakeups_ = &m.counter("cpu.process", node, config_.name + "/wakeups");
  }
}

Process::~Process() = default;

void Process::execute(sim::Duration reference_cpu_cost, std::function<void()> done) {
  const auto scaled = static_cast<sim::Duration>(
      static_cast<double>(reference_cpu_cost) * sched_.config().speed_factor);
  jobs_.push_back(Job{std::max<sim::Duration>(scaled, 0), std::move(done)});
  VINI_OBS_INC(m_jobs_);
  if (!running_) {
    running_ = true;
    wakeup();
  }
}

void Process::wakeup() {
  // Transition idle -> runnable: pay the scheduling latency, then start a
  // fresh quantum.
  const sim::Duration latency = sched_.sampleWakeupLatency(config_);
  quantum_left_ = sched_.quantum(config_);
  VINI_OBS_INC(m_wakeups_);
  VINI_OBS_TIMELINE_DURATION(timeline_track_, "wakeup",
                             sched_.queue().now(), latency);
  sched_.queue().scheduleAfter(latency, "cpu.scheduler", node_tag_,
                               [this] { runSlice(); });
}

void Process::runSlice() {
  if (jobs_.empty()) {
    running_ = false;
    return;
  }
  Job& job = jobs_.front();
  const sim::Duration chunk = std::min(job.remaining, quantum_left_);
  consumed_ += chunk;
  quantum_left_ -= chunk;
  job.remaining -= chunk;
  const bool job_done = job.remaining == 0;
  VINI_OBS_ADD(m_cpu_ns_, static_cast<std::uint64_t>(chunk));

  sched_.queue().scheduleAfter(chunk, "cpu.scheduler", node_tag_,
                               [this, job_done] {
    if (job_done) {
      auto done = std::move(jobs_.front().done);
      jobs_.pop_front();
      if (done) done();
    }
    if (jobs_.empty()) {
      running_ = false;
      return;
    }
    if (quantum_left_ > 0) {
      runSlice();
      return;
    }
    // Quantum exhausted with work pending: descheduled for a gap.
    const sim::Duration gap = sched_.sampleGap(config_);
    quantum_left_ = sched_.quantum(config_);
    VINI_OBS_TIMELINE_DURATION(timeline_track_, "descheduled",
                               sched_.queue().now(), gap);
    sched_.queue().scheduleAfter(gap, "cpu.scheduler", node_tag_,
                                 [this] { runSlice(); });
  });
}

double Process::utilization() const {
  const sim::Duration elapsed = sched_.queue().now() - accounting_start_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(consumed_) / static_cast<double>(elapsed);
}

void Process::resetAccounting() {
  consumed_ = 0;
  accounting_start_ = sched_.queue().now();
}

// ---------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(sim::EventQueue& queue, SchedulerConfig config)
    : queue_(queue), config_(std::move(config)), random_(config_.seed) {
  timeline_track_ = "cpu/" + config_.node_name;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    m_stalls_ = &ctx->metrics.counter("cpu.scheduler", config_.node_name,
                                      "stalls");
  }
  contention_ = std::max(0.0, config_.contention_mean);
  if (config_.contention_mean > 0.0 && config_.contention_resample > 0) {
    resample_timer_ = std::make_unique<sim::PeriodicTimer>(
        queue_, config_.contention_resample, "cpu.scheduler",
        queue_.internNodeTag(config_.node_name),
        [this] { resampleContention(); });
    resample_timer_->start();
  }
}

Process& Scheduler::createProcess(ProcessConfig config) {
  processes_.push_back(std::make_unique<Process>(*this, std::move(config)));
#if VINI_AUDIT_ENABLED
  // V103: CPU-share conservation — guaranteed minima on one node must
  // never exceed the whole machine, or the guarantees are fiction.
  // core::Vini::admitNode enforces this for slices; the audit catches
  // processes created behind its back.
  double reserved = 0.0;
  for (const auto& p : processes_) reserved += p->config().cpu_reservation;
  VINI_AUDIT_CHECK(
      reserved <= 1.0 + 1e-9,
      (check::Diagnostic{check::Severity::kError, "V103",
                         "process " + processes_.back()->config().name,
                         "CPU reservations on this node sum to " +
                             std::to_string(reserved) +
                             ", exceeding the whole machine"}));
#endif
  return *processes_.back();
}

void Scheduler::resampleContention() {
  contention_ = std::max(
      0.0, random_.normal(config_.contention_mean, config_.contention_stddev));
}

double Scheduler::achievableShare(const ProcessConfig& p) const {
  const double effective_contention =
      p.realtime ? config_.rt_contention_discount * contention_ : contention_;
  const double fair = 1.0 / (1.0 + effective_contention);
  const double share = std::clamp(std::max(p.cpu_reservation, fair), 0.01, 1.0);
  // V103: a share outside (0, 1] would make gap sizing divide by zero
  // or grant more than the machine.
  VINI_AUDIT_CHECK(share > 0.0 && share <= 1.0,
                   (check::Diagnostic{check::Severity::kError, "V103",
                                      "process " + p.name,
                                      "achievable CPU share " +
                                          std::to_string(share) +
                                          " outside (0, 1]"}));
  return share;
}

sim::Duration Scheduler::quantum(const ProcessConfig& p) const {
  // RT priority in PL-VINI manifests as fine-grained preemption: the RT
  // process runs as soon as it is runnable, so its service is spread in
  // small slices rather than long run/starve cycles.
  return p.realtime ? config_.timeslice / 12 : config_.timeslice;
}

sim::Duration Scheduler::sampleWakeupLatency(const ProcessConfig& p) {
  sim::Duration latency = config_.context_switch;
  if (contention_ <= 0.0) return latency;
  if (p.realtime) {
    return latency + random_.exponentialDuration(config_.rt_wakeup_noise,
                                                 20 * config_.rt_wakeup_noise);
  }
  // Run-queue delay behind currently-running non-RT work; a sleepy process
  // keeps its interactivity bonus so the typical delay is sub-millisecond.
  latency += random_.exponentialDuration(static_cast<sim::Duration>(
      contention_ * static_cast<double>(config_.wakeup_delay_per_slice)));
  // Occasional long stall: the process lost its bonus or landed behind a
  // full epoch of CPU-bound slices.
  if (random_.chance(config_.stall_probability)) {
    const auto stall_cap = static_cast<sim::Duration>(
        contention_ * static_cast<double>(config_.timeslice) * 1.2);
    latency += random_.uniformDuration(config_.stall_min,
                                       std::max(config_.stall_min, stall_cap));
    VINI_OBS_INC(m_stalls_);
    VINI_OBS_TIMELINE_INSTANT(timeline_track_, "stall", queue_.now());
  }
  return latency;
}

sim::Duration Scheduler::sampleGap(const ProcessConfig& p) {
  const double share = achievableShare(p);
  if (share >= 1.0) return 0;
  const auto q = static_cast<double>(quantum(p));
  const double mean_gap = q * (1.0 - share) / share;
  if (p.realtime) {
    // Fine-grained: deterministic-ish short gaps (the process re-preempts
    // as soon as its share allows).
    return static_cast<sim::Duration>(mean_gap * random_.uniform(0.9, 1.1));
  }
  // Default share: the gap is the sum of the other runnable slices'
  // timeslices — exponential-ish with heavy spread, capped to keep the
  // long-run share honest.
  const auto gap = random_.exponentialDuration(
      static_cast<sim::Duration>(mean_gap),
      static_cast<sim::Duration>(mean_gap * 4.0));
  return gap;
}

}  // namespace vini::cpu
