// CPU scheduling model for shared nodes (Sections 4.1.1 / 4.1.2).
//
// The paper's PlanetLab evaluation hinges on CPU contention: a slice's
// user-space forwarder competes with every other runnable slice for the
// CPU.  PL-VINI adds two knobs — CPU *reservations* (a guaranteed minimum
// fraction, Sirius-style) and Linux *real-time priority* (a runnable RT
// process preempts any non-RT process immediately) — and Tables 4-6 and
// Figure 6 measure exactly what those knobs buy.
//
// The model: each node owns a Scheduler with a stochastic contention
// level k(t) = "other runnable slices".  A Process executes work in
// quanta; after each quantum it is descheduled for a gap sized so that
// its long-run CPU fraction is
//     f = max(reservation, 1 / (1 + k)).
// Real-time priority does two things, mirroring the paper's description:
// wakeup-from-idle latency collapses to a context switch ("a real-time
// process that becomes runnable immediately jumps to the head of the run
// queue"), and scheduling becomes fine-grained (short quanta / short
// gaps), which is what eliminates the socket-buffer overflows behind
// Figure 6(a).  Note that RT processes remain subject to reservations and
// shares ("a real-time process that runs amok cannot lock the machine").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace vini::cpu {

/// Node-level scheduler parameters.
struct SchedulerConfig {
  /// Multiplier applied to all CPU costs on this node.  Costs throughout
  /// the system are expressed for the reference machine (the paper's
  /// 2.8 GHz Xeon on DETER); a 1.4 GHz P-III PlanetLab node uses ~2.0.
  double speed_factor = 1.0;

  /// Scheduler timeslice for a CPU-bound, default-share process.
  sim::Duration timeslice = 6 * sim::kMillisecond;

  /// Mean and spread of the number of *other* runnable slices.  Zero
  /// means a dedicated machine (the DETER experiments).
  double contention_mean = 0.0;
  double contention_stddev = 0.0;
  /// How often the contention level is resampled.
  sim::Duration contention_resample = 100 * sim::kMillisecond;

  /// Fixed context-switch cost added to every wakeup from idle.
  sim::Duration context_switch = 5 * sim::kMicrosecond;

  /// Mean extra run-queue delay per contending slice for a non-RT wakeup
  /// (a mostly-sleeping process keeps Linux's interactivity bonus, so it
  /// usually schedules quickly even on a loaded box).
  sim::Duration wakeup_delay_per_slice = 150 * sim::kMicrosecond;

  /// Rare long scheduler stalls for non-RT processes (lost interactivity
  /// bonus, expired epochs); these produce the 80 ms ping outliers of
  /// Table 5 and the loss bursts of Figure 6(a).
  double stall_probability = 0.012;
  sim::Duration stall_min = 4 * sim::kMillisecond;

  /// Residual wakeup noise for real-time processes (kernel threads,
  /// softirqs, and other RT work still get in the way briefly).
  sim::Duration rt_wakeup_noise = 15 * sim::kMicrosecond;

  /// A real-time process preempts the entire timeshare class, so only a
  /// small fraction of the nominal contention is effective for it (other
  /// RT work, kernel threads).  Its share is
  ///   max(reservation, 1 / (1 + rt_contention_discount * k)).
  double rt_contention_discount = 0.15;

  std::uint64_t seed = 1;

  /// Owning node's name, used to key this scheduler's (and its
  /// processes') metrics in the observability registry.
  std::string node_name = "node";
};

/// Per-process scheduling parameters (one process ~ one slice's daemon).
struct ProcessConfig {
  std::string name = "proc";
  /// Guaranteed minimum CPU fraction (0 = fair share only).
  double cpu_reservation = 0.0;
  /// Linux real-time priority boost.
  bool realtime = false;
};

class Scheduler;

/// A schedulable user-space process that consumes CPU to do work.
///
/// Work is submitted with execute(cost, done): the process burns `cost`
/// of reference-machine CPU (scaled by the node's speed factor, divided
/// by its achievable CPU share, punctuated by descheduling gaps) and then
/// invokes `done`.  Jobs queue FIFO, modelling a single-threaded daemon
/// like the Click forwarder.
class Process {
 public:
  Process(Scheduler& sched, ProcessConfig config);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Submit one unit of work.  `reference_cpu_cost` is the cost on the
  /// reference machine; `done` runs when the work completes.
  void execute(sim::Duration reference_cpu_cost, std::function<void()> done);

  /// True if no work is queued or running.
  bool idle() const { return !running_ && jobs_.empty(); }

  std::size_t queuedJobs() const { return jobs_.size(); }

  /// Total CPU consumed since the last resetAccounting().
  sim::Duration consumedCpu() const { return consumed_; }

  /// CPU fraction consumed since the last resetAccounting() — the
  /// "mean CPU%" column of Tables 2 and 4.
  double utilization() const;

  void resetAccounting();

  const ProcessConfig& config() const { return config_; }

 private:
  friend class Scheduler;

  struct Job {
    sim::Duration remaining = 0;  // already speed-scaled
    std::function<void()> done;
  };

  void wakeup();
  void runSlice();

  Scheduler& sched_;
  ProcessConfig config_;
  /// Timeline track for this process's scheduling events.
  std::string timeline_track_;
  /// Node attribution for scheduled slices (shard-readiness telemetry).
  sim::NodeTag node_tag_ = sim::kNoNode;
  std::deque<Job> jobs_;
  bool running_ = false;
  sim::Duration quantum_left_ = 0;
  sim::Duration consumed_ = 0;
  sim::Time accounting_start_ = 0;
  // Observability handles (null when no obs context is installed).
  obs::Counter* m_jobs_ = nullptr;
  obs::Counter* m_cpu_ns_ = nullptr;
  obs::Counter* m_wakeups_ = nullptr;
};

/// Per-node CPU scheduler; owns the contention process and the RNG.
class Scheduler {
 public:
  Scheduler(sim::EventQueue& queue, SchedulerConfig config);

  /// Create a process on this node.  The Scheduler keeps ownership.
  Process& createProcess(ProcessConfig config);

  /// Current number of other runnable slices, k(t).
  double contention() const { return contention_; }

  /// CPU share a process with the given parameters achieves right now.
  double achievableShare(const ProcessConfig& p) const;

  /// Sampled delay between a process becoming runnable and running.
  sim::Duration sampleWakeupLatency(const ProcessConfig& p);

  /// Sampled descheduled gap following an exhausted quantum.
  sim::Duration sampleGap(const ProcessConfig& p);

  /// Quantum length for the given process (RT processes are scheduled at
  /// a much finer grain).
  sim::Duration quantum(const ProcessConfig& p) const;

  const SchedulerConfig& config() const { return config_; }
  sim::EventQueue& queue() { return queue_; }
  sim::Random& random() { return random_; }

 private:
  void resampleContention();

  sim::EventQueue& queue_;
  SchedulerConfig config_;
  std::string timeline_track_;
  sim::Random random_;
  double contention_ = 0.0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<sim::PeriodicTimer> resample_timer_;
  obs::Counter* m_stalls_ = nullptr;
};

}  // namespace vini::cpu
