#include "tcpip/tcp.h"

#include <algorithm>

namespace vini::tcpip {

namespace {

// 32-bit sequence arithmetic.
bool seqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
bool seqGt(std::uint32_t a, std::uint32_t b) { return seqLt(b, a); }
bool seqGe(std::uint32_t a, std::uint32_t b) { return seqLe(b, a); }

constexpr std::uint32_t kInitialSeq = 1;

}  // namespace

const char* tcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(HostStack& stack, TcpConfig config)
    : stack_(stack), config_(config) {
  rto_ = config_.initial_rto;
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
  rto_timer_ = std::make_unique<sim::OneShotTimer>(
      stack_.queue(), "tcpip.tcp", stack_.nodeTag(),
      [this] { onRtoExpired(); });
  delack_timer_ = std::make_unique<sim::OneShotTimer>(
      stack_.queue(), "tcpip.tcp", stack_.nodeTag(), [this] {
        if (unacked_segments_ > 0) sendAck();
      });
  time_wait_timer_ = std::make_unique<sim::OneShotTimer>(
      stack_.queue(), "tcpip.tcp", stack_.nodeTag(),
      [this] { becomeClosed(); });
}

TcpConnection::~TcpConnection() = default;

std::shared_ptr<TcpConnection> TcpConnection::connect(HostStack& stack,
                                                      packet::IpAddress remote,
                                                      std::uint16_t remote_port,
                                                      TcpConfig config,
                                                      packet::IpAddress local_addr) {
  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(stack, config));
  conn->startConnect(remote, remote_port,
                     local_addr.isZero() ? stack.address() : local_addr);
  return conn;
}

void TcpConnection::startConnect(packet::IpAddress remote, std::uint16_t remote_port,
                                 packet::IpAddress local_addr) {
  local_addr_ = local_addr;
  remote_addr_ = remote;
  remote_port_ = remote_port;
  local_port_ = stack_.allocateEphemeralPort();
  iss_ = kInitialSeq;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  registerDemux();
  packet::TcpFlags syn;
  syn.syn = true;
  sendSegment(iss_, 0, syn, false);
  armRto();
}

std::shared_ptr<TcpConnection> TcpConnection::acceptFrom(HostStack& stack,
                                                         const packet::Packet& p,
                                                         TcpConfig config) {
  const auto* h = p.tcpHeader();
  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(stack, config));
  conn->local_addr_ = p.ip.dst;
  conn->local_port_ = h->dst_port;
  conn->remote_addr_ = p.ip.src;
  conn->remote_port_ = h->src_port;
  conn->irs_ = h->seq;
  conn->rcv_nxt_ = h->seq + 1;
  conn->iss_ = kInitialSeq;
  conn->snd_una_ = conn->iss_;
  conn->snd_nxt_ = conn->iss_ + 1;
  conn->state_ = TcpState::kSynRcvd;
  conn->registerDemux();
  packet::TcpFlags synack;
  synack.syn = true;
  synack.ack = true;
  conn->sendSegment(conn->iss_, 0, synack, false);
  conn->armRto();
  return conn;
}

void TcpConnection::registerDemux() {
  const TcpKey key{local_port_, remote_addr_.value(), remote_port_};
  auto self = shared_from_this();
  auto weak = std::weak_ptr<TcpConnection>(self);
  stack_.registerTcpConnection(
      key,
      [weak](packet::Packet p) {
        if (auto conn = weak.lock()) conn->onPacket(std::move(p));
      },
      std::move(self));
  demux_registered_ = true;
}

void TcpConnection::send(std::size_t bytes) {
  if (state_ == TcpState::kClosed || fin_queued_) return;
  send_queue_bytes_ += bytes;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    trySend();
  }
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      becomeClosed();
      break;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      fin_queued_ = true;
      trySend();
      break;
    default:
      break;
  }
}

void TcpConnection::abort() {
  if (state_ != TcpState::kClosed) sendRst();
  becomeClosed();
}

// ---------------------------------------------------------------------------
// Input

void TcpConnection::onPacket(packet::Packet p) {
  const auto* h = p.tcpHeader();
  if (!h) return;
  ++stats_.segments_received;
  if (on_segment) on_segment(p);

  if (h->flags.rst) {
    becomeClosed();
    return;
  }
  if (h->flags.ack) peer_window_ = h->window;

  switch (state_) {
    case TcpState::kSynSent: {
      if (h->flags.syn && h->flags.ack && h->ack == iss_ + 1) {
        snd_una_ = h->ack;
        irs_ = h->seq;
        rcv_nxt_ = h->seq + 1;
        state_ = TcpState::kEstablished;
        rto_timer_->cancel();
        consecutive_timeouts_ = 0;
        sendAck();
        if (on_connected) on_connected();
        trySend();
      }
      return;
    }
    case TcpState::kSynRcvd: {
      if (h->flags.syn && !h->flags.ack) {
        // Retransmitted SYN: resend our SYN-ACK.
        packet::TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        sendSegment(iss_, 0, synack, true);
        return;
      }
      if (h->flags.ack && h->ack == iss_ + 1) {
        snd_una_ = h->ack;
        state_ = TcpState::kEstablished;
        rto_timer_->cancel();
        consecutive_timeouts_ = 0;
        if (on_connected) on_connected();
        // Fall through to normal processing for any piggybacked data.
        break;
      }
      return;
    }
    case TcpState::kClosed:
    case TcpState::kListen:
      return;
    default:
      break;
  }

  if (h->flags.ack) processAck(*h);
  if (state_ == TcpState::kClosed) return;  // processAck may have closed us
  if (p.payload_bytes > 0) processData(p);
  if (h->flags.fin) {
    processFin(h->seq + static_cast<std::uint32_t>(p.payload_bytes));
  }
}

void TcpConnection::processAck(const packet::TcpHeader& h) {
  const std::uint32_t ack = h.ack;
  const std::uint32_t flight = snd_nxt_ - snd_una_;

  // Duplicate ACK: no progress, no payload, while data is outstanding.
  if (ack == snd_una_ && flight > 0 && !h.flags.syn && !h.flags.fin) {
    ++dup_acks_;
    ++stats_.dup_acks_received;
    if (in_recovery_) {
      cwnd_ += config_.mss;  // inflate during recovery
      trySend();
    } else if (dup_acks_ == 3) {
      enterRecovery();
    }
    return;
  }

  if (seqGt(ack, snd_nxt_)) {
    // The peer acknowledges data beyond our highest outstanding sequence.
    // This happens after a go-back-N rewind when original in-flight
    // copies (or their ACKs) survive a long outage: the bytes we put
    // back on the send queue were in fact delivered.  Reclaim them.
    const std::uint32_t beyond = ack - snd_nxt_;
    const auto reclaim = std::min<std::size_t>(beyond, send_queue_bytes_);
    send_queue_bytes_ -= reclaim;
    if (beyond > reclaim && fin_queued_ && !fin_sent_) {
      // The surplus can only be our original FIN: the peer saw it.
      fin_queued_ = false;
      fin_sent_ = true;
      state_ = state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                              : TcpState::kFinWait1;
    }
    snd_nxt_ = ack;
  }
  if (!seqGt(ack, snd_una_)) return;

  const std::uint32_t newly_acked = ack - snd_una_;
  stats_.bytes_acked += newly_acked;
  consecutive_timeouts_ = 0;

  if (rtt_sample_pending_ && seqGe(ack, rtt_sample_end_)) {
    updateRtt(stack_.queue().now() - rtt_sample_sent_);
    rtt_sample_pending_ = false;
  }

  if (in_recovery_) {
    if (seqGe(ack, recover_)) {
      in_recovery_ = false;
      dup_acks_ = 0;
      cwnd_ = ssthresh_;
    } else {
      // NewReno partial ACK: retransmit the next hole, deflate.
      snd_una_ = ack;
      const std::size_t remaining =
          std::min<std::size_t>(config_.mss, snd_nxt_ - snd_una_);
      if (remaining > 0) {
        packet::TcpFlags flags;
        flags.ack = true;
        sendSegment(snd_una_, std::min<std::size_t>(remaining, config_.mss), flags,
                    true);
      }
      cwnd_ = std::max(cwnd_ >= newly_acked ? cwnd_ - newly_acked + config_.mss
                                            : config_.mss,
                       config_.mss);
      armRto();
      return;
    }
  } else {
    dup_acks_ = 0;
    // Congestion window growth.
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<std::size_t>(newly_acked, config_.mss);  // slow start
    } else {
      cwnd_ += std::max<std::size_t>(1, config_.mss * config_.mss / cwnd_);
    }
  }

  snd_una_ = ack;

  // Has our FIN been acknowledged?
  const bool all_acked = snd_una_ == snd_nxt_;
  if (fin_sent_ && all_acked) {
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        enterTimeWait();
        break;
      case TcpState::kLastAck:
        becomeClosed();
        return;
      default:
        break;
    }
  }

  if (all_acked) {
    rto_timer_->cancel();
  } else {
    armRto();
  }
  trySend();
}

void TcpConnection::processData(const packet::Packet& p) {
  const auto* h = p.tcpHeader();
  const std::uint32_t seq = h->seq;
  const auto len = static_cast<std::uint32_t>(p.payload_bytes);
  const std::uint32_t seg_end = seq + len;

  if (seqLe(seg_end, rcv_nxt_)) {
    // Entirely old: re-ACK immediately so the sender can make progress.
    sendAck();
    return;
  }

  if (seqLe(seq, rcv_nxt_)) {
    // In order (possibly partially overlapping).
    const std::uint32_t delivered = seg_end - rcv_nxt_;
    rcv_nxt_ = seg_end;
    stats_.bytes_received += delivered;
    if (on_receive) on_receive(delivered);
    // Pull any now-contiguous out-of-order data.
    while (!ooo_.empty()) {
      auto it = ooo_.begin();
      const std::uint32_t start = irs_ + it->first;
      const std::uint32_t end = irs_ + it->second;
      if (seqGt(start, rcv_nxt_)) break;
      if (seqGt(end, rcv_nxt_)) {
        const std::uint32_t extra = end - rcv_nxt_;
        rcv_nxt_ = end;
        stats_.bytes_received += extra;
        if (on_receive) on_receive(extra);
      }
      ooo_bytes_ -= std::min<std::size_t>(ooo_bytes_, it->second - it->first);
      ooo_.erase(it);
    }
    // A FIN that arrived beyond a hole becomes processable once the
    // stream catches up to it.
    if (!fin_received_ && fin_seq_ != 0 && rcv_nxt_ == fin_seq_) {
      processFin(fin_seq_);
      return;
    }
    ++unacked_segments_;
    if (unacked_segments_ >= 2 || !ooo_.empty() || fin_received_) {
      sendAck();
    } else {
      delack_timer_->armAfter(config_.delayed_ack);
    }
    return;
  }

  // Out of order: buffer (keyed by offset from irs_ so ordering is sane)
  // and send an immediate duplicate ACK.
  const std::uint32_t rel_start = seq - irs_;
  const std::uint32_t rel_end = seg_end - irs_;
  auto [it, inserted] = ooo_.try_emplace(rel_start, rel_end);
  if (inserted) {
    ooo_bytes_ += len;
  } else if (it->second < rel_end) {
    ooo_bytes_ += rel_end - it->second;
    it->second = rel_end;
  }
  sendAck();
}

void TcpConnection::processFin(std::uint32_t fin_seq) {
  if (fin_received_) {
    sendAck();
    return;
  }
  if (fin_seq != rcv_nxt_) {
    // FIN beyond a hole: remember it; it is processed when data catches up.
    fin_seq_ = fin_seq;
    sendAck();
    return;
  }
  fin_received_ = true;
  rcv_nxt_ = fin_seq + 1;
  sendAck();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked: simultaneous close.
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enterTimeWait();
      break;
    default:
      break;
  }
  if (on_receive) on_receive(0);  // EOF signal
}

// ---------------------------------------------------------------------------
// Output

std::size_t TcpConnection::advertisedWindow() const {
  const std::size_t used = std::min(ooo_bytes_, config_.recv_buffer);
  return std::min<std::size_t>(config_.recv_buffer - used, 65535);
}

void TcpConnection::trySend() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  maybeRestartAfterIdle();

  const std::size_t wnd = std::min(cwnd_, peer_window_);
  while (send_queue_bytes_ > 0) {
    const std::uint32_t flight = snd_nxt_ - snd_una_;
    if (flight >= wnd) break;
    const std::size_t len =
        std::min({config_.mss, send_queue_bytes_, wnd - flight});
    if (len == 0) break;
    packet::TcpFlags flags;
    flags.ack = true;
    flags.psh = send_queue_bytes_ == len;
    sendSegment(snd_nxt_, len, flags, false);
    snd_nxt_ += static_cast<std::uint32_t>(len);
    send_queue_bytes_ -= len;
  }

  if (fin_queued_ && !fin_sent_ && send_queue_bytes_ == 0) {
    packet::TcpFlags flags;
    flags.fin = true;
    flags.ack = true;
    sendSegment(snd_nxt_, 0, flags, false);
    snd_nxt_ += 1;
    fin_sent_ = true;
    state_ = state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                            : TcpState::kFinWait1;
  }

  if (snd_nxt_ != snd_una_ && !rto_timer_->pending()) armRto();
  // Zero-window persist: keep probing so a window update cannot be lost.
  if (peer_window_ == 0 && send_queue_bytes_ > 0 && snd_nxt_ == snd_una_ &&
      !rto_timer_->pending()) {
    armRto();
  }
}

void TcpConnection::sendSegment(std::uint32_t seq, std::size_t len,
                                packet::TcpFlags flags, bool retransmission) {
  packet::TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = seq;
  h.ack = flags.ack ? rcv_nxt_ : 0;
  h.flags = flags;
  h.window = static_cast<std::uint16_t>(advertisedWindow());
  packet::Packet p = packet::Packet::tcp(local_addr_, remote_addr_, h, len);
  p.meta.app_send_time = stack_.queue().now();

  ++stats_.segments_sent;
  if (retransmission) {
    ++stats_.retransmits;
    // Karn's algorithm: a retransmission poisons the outstanding sample.
    rtt_sample_pending_ = false;
  } else if (len > 0) {
    stats_.bytes_sent += len;
    if (!rtt_sample_pending_) {
      rtt_sample_pending_ = true;
      rtt_sample_end_ = seq + static_cast<std::uint32_t>(len);
      rtt_sample_sent_ = stack_.queue().now();
    }
  }
  if (len > 0 || flags.syn || flags.fin) {
    last_send_activity_ = stack_.queue().now();
  }
  if (flags.ack) {
    unacked_segments_ = 0;
    delack_timer_->cancel();
  }
  stats_.cwnd = cwnd_;
  stats_.ssthresh = ssthresh_;
  stats_.srtt = srtt_;
  stats_.rto = rto_;
  stack_.sendPacket(std::move(p));
}

void TcpConnection::sendAck() {
  packet::TcpFlags flags;
  flags.ack = true;
  sendSegment(snd_nxt_, 0, flags, false);
}

void TcpConnection::sendRst() {
  packet::TcpFlags flags;
  flags.rst = true;
  sendSegment(snd_nxt_, 0, flags, false);
}

// ---------------------------------------------------------------------------
// Timers and congestion control

void TcpConnection::armRto() { rto_timer_->armAfter(rto_); }

void TcpConnection::onRtoExpired() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  // Zero-window persist probe.
  if (peer_window_ == 0 && send_queue_bytes_ > 0 && snd_nxt_ == snd_una_) {
    packet::TcpFlags flags;
    flags.ack = true;
    sendSegment(snd_nxt_, 1, flags, false);
    snd_nxt_ += 1;
    send_queue_bytes_ -= 1;
    armRto();
    return;
  }

  if (snd_nxt_ == snd_una_) return;  // nothing outstanding

  ++stats_.timeouts;
  if (++consecutive_timeouts_ > config_.max_retransmits) {
    becomeClosed();
    return;
  }

  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::size_t>(flight / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  in_recovery_ = false;
  dup_acks_ = 0;
  rto_ = std::min<sim::Duration>(rto_ * 2, config_.max_rto);
  rtt_sample_pending_ = false;

  switch (state_) {
    case TcpState::kSynSent: {
      packet::TcpFlags syn;
      syn.syn = true;
      sendSegment(iss_, 0, syn, true);
      break;
    }
    case TcpState::kSynRcvd: {
      packet::TcpFlags synack;
      synack.syn = true;
      synack.ack = true;
      sendSegment(iss_, 0, synack, true);
      break;
    }
    default: {
      const bool only_fin = fin_sent_ && flight == 1;
      packet::TcpFlags flags;
      flags.ack = true;
      if (only_fin) {
        flags.fin = true;
        sendSegment(snd_una_, 0, flags, true);
        break;
      }
      // Go-back-N: everything beyond snd_una returns to the send queue
      // and is resent in order as ACKs reopen the window.  Without this,
      // a long outage (Figure 9's) leaves a window of lost data that
      // trickles out at one segment per backed-off RTO.
      const std::uint32_t flight_data = flight - (fin_sent_ ? 1 : 0);
      send_queue_bytes_ += flight_data;
      snd_nxt_ = snd_una_;
      if (fin_sent_) {
        fin_sent_ = false;
        fin_queued_ = true;
        if (state_ == TcpState::kFinWait1) state_ = TcpState::kEstablished;
        if (state_ == TcpState::kLastAck || state_ == TcpState::kClosing) {
          state_ = TcpState::kCloseWait;
        }
      }
      const std::size_t len =
          std::min<std::size_t>(config_.mss, send_queue_bytes_);
      if (len > 0) {
        sendSegment(snd_nxt_, len, flags, true);
        snd_nxt_ += static_cast<std::uint32_t>(len);
        send_queue_bytes_ -= len;
      }
      break;
    }
  }
  armRto();
}

void TcpConnection::enterRecovery() {
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::size_t>(flight / 2, 2 * config_.mss);
  recover_ = snd_nxt_;
  in_recovery_ = true;
  ++stats_.fast_retransmits;
  packet::TcpFlags flags;
  flags.ack = true;
  const std::size_t data_outstanding = flight - (fin_sent_ ? 1 : 0);
  if (data_outstanding > 0) {
    sendSegment(snd_una_, std::min<std::size_t>(config_.mss, data_outstanding),
                flags, true);
  }
  cwnd_ = ssthresh_ + 3 * config_.mss;
  armRto();
}

void TcpConnection::updateRtt(sim::Duration sample) {
  if (!srtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    srtt_valid_ = true;
  } else {
    const sim::Duration err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp<sim::Duration>(srtt_ + std::max<sim::Duration>(4 * rttvar_,
                                                                   sim::kMillisecond),
                                   config_.min_rto, config_.max_rto);
}

void TcpConnection::maybeRestartAfterIdle() {
  if (!config_.slow_start_restart) return;
  if (snd_nxt_ != snd_una_) return;  // not idle: data in flight
  if (last_send_activity_ <= 0) return;
  const sim::Duration idle = stack_.queue().now() - last_send_activity_;
  if (idle > rto_) {
    // RFC 2861: decay cwnd toward the restart window.
    cwnd_ = std::min(cwnd_, config_.initial_cwnd_segments * config_.mss);
  }
}

void TcpConnection::enterTimeWait() {
  state_ = TcpState::kTimeWait;
  rto_timer_->cancel();
  time_wait_timer_->armAfter(config_.time_wait);
}

void TcpConnection::becomeClosed() {
  if (state_ == TcpState::kClosed) return;
  // The demux entry holds the owning reference; keep `this` alive until
  // the closed callback below has run.
  auto keep_alive = weak_from_this().lock();
  state_ = TcpState::kClosed;
  rto_timer_->cancel();
  delack_timer_->cancel();
  time_wait_timer_->cancel();
  if (demux_registered_) {
    stack_.unregisterTcpConnection(
        TcpKey{local_port_, remote_addr_.value(), remote_port_});
    demux_registered_ = false;
  }
  if (on_closed) on_closed();
}  // keep_alive may destroy `this` here

// ---------------------------------------------------------------------------
// Listener

TcpListener::TcpListener(HostStack& stack, std::uint16_t port, TcpConfig config,
                         AcceptHandler on_accept)
    : stack_(stack), port_(port), config_(config), on_accept_(std::move(on_accept)) {
  stack_.registerTcpListener(port_,
                             [this](packet::Packet p) { onSyn(std::move(p)); });
}

TcpListener::~TcpListener() { stack_.unregisterTcpListener(port_); }

void TcpListener::onSyn(packet::Packet p) {
  const auto* h = p.tcpHeader();
  if (!h || !h->flags.syn || h->flags.ack || h->flags.rst) return;
  auto conn = TcpConnection::acceptFrom(stack_, p, config_);
  if (on_accept_) on_accept_(conn);
}

}  // namespace vini::tcpip
