// Network devices as seen by the host stack.
//
// Two device families exist on a PL-VINI node:
//  * the underlay NIC, whose transmit path hands packets to the physical
//    network (with underlay routing choosing the outgoing link), and
//  * TUN/TAP devices (the paper's modified /dev/net/tunX): packets the
//    kernel routes to the device are handed up to a user-space reader
//    (Click, or an OpenVPN client), and packets the reader writes are
//    injected back into the kernel as if they had arrived from a network.
#pragma once

#include <functional>
#include <string>

#include "packet/ip_address.h"
#include "packet/packet.h"

namespace vini::tcpip {

class HostStack;

class Device {
 public:
  Device(std::string name, packet::IpAddress address)
      : name_(std::move(name)), address_(address) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }
  packet::IpAddress address() const { return address_; }
  void setAddress(packet::IpAddress a) { address_ = a; }

  /// The kernel routed a packet out of this device.
  virtual void transmit(packet::Packet p) = 0;

 protected:
  std::string name_;
  packet::IpAddress address_;
};

/// The node's physical interface into the substrate.  Transmission is
/// resolved by the underlay (PhysNetwork) to an outgoing physical link.
class UnderlayDevice final : public Device {
 public:
  UnderlayDevice(std::string name, packet::IpAddress address, HostStack& stack)
      : Device(std::move(name), address), stack_(stack) {}

  void transmit(packet::Packet p) override;

 private:
  HostStack& stack_;
};

/// A TUN/TAP device: kernel-to-user and user-to-kernel packet passing.
/// Mirrors the paper's per-slice tap0 with a 10.0.0.0/8 address.
class TunDevice final : public Device {
 public:
  /// User-space reader: invoked for each packet the kernel routes here.
  using Reader = std::function<void(packet::Packet)>;

  TunDevice(std::string name, packet::IpAddress address, HostStack& stack)
      : Device(std::move(name), address), stack_(stack) {}

  void setReader(Reader reader) { reader_ = std::move(reader); }

  /// Kernel -> user space.
  void transmit(packet::Packet p) override {
    if (reader_) reader_(std::move(p));
  }

  /// User space -> kernel: the packet re-enters the stack "as if it
  /// arrived from a network device".
  void inject(packet::Packet p);

 private:
  HostStack& stack_;
  Reader reader_;
};

}  // namespace vini::tcpip
