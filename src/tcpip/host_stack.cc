#include "tcpip/host_stack.h"

#include <algorithm>

namespace vini::tcpip {

// ---------------------------------------------------------------------------
// Devices

void UnderlayDevice::transmit(packet::Packet p) { stack_.transmitUnderlay(std::move(p)); }

void TunDevice::inject(packet::Packet p) { stack_.injectFromTun(std::move(p)); }

// ---------------------------------------------------------------------------
// UdpSocket

UdpSocket::UdpSocket(HostStack& stack, std::uint16_t port)
    : stack_(stack), port_(port) {}

UdpSocket::~UdpSocket() = default;

void UdpSocket::setBuffered(std::size_t buffer_bytes) {
  buffered_ = true;
  buffer_capacity_ =
      buffer_bytes > 0 ? buffer_bytes : stack_.config().default_socket_buffer;
}

std::optional<packet::Packet> UdpSocket::readPacket() {
  if (rx_queue_.empty()) return std::nullopt;
  packet::Packet p = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  rx_queued_bytes_ -= std::min(rx_queued_bytes_, p.ipPacketBytes());
  return p;
}

void UdpSocket::deliver(packet::Packet p) {
  if (buffered_) {
    const std::size_t bytes = p.ipPacketBytes();
    if (rx_queued_bytes_ + bytes > buffer_capacity_) {
      ++buffer_drops_;
      stack_.noteSocketBufferDrop(p);
      return;
    }
    rx_queued_bytes_ += bytes;
    rx_queue_.push_back(std::move(p));
    if (notify_) notify_(rx_queue_.back());
    return;
  }
  if (handler_) handler_(std::move(p));
}

packet::IpAddress UdpSocket::boundAddress() const {
  return bound_addr_.isZero() ? stack_.address() : bound_addr_;
}

void UdpSocket::sendTo(packet::IpAddress dst, std::uint16_t dport,
                       std::size_t payload_bytes, packet::PacketMeta meta) {
  packet::Packet p =
      packet::Packet::udp(boundAddress(), dst, port_, dport, payload_bytes);
  p.meta = meta;
  stack_.sendPacket(std::move(p));
}

void UdpSocket::sendEncapsulatedTo(packet::IpAddress dst, std::uint16_t dport,
                                   packet::PacketPtr inner,
                                   std::size_t extra_bytes) {
  stack_.sendPacket(packet::Packet::encapsulateUdp(
      stack_.address(), dst, port_, dport, std::move(inner), extra_bytes));
}

void UdpSocket::sendAppTo(packet::IpAddress dst, std::uint16_t dport,
                          std::shared_ptr<const packet::AppPayload> payload) {
  packet::Packet p = packet::Packet::udp(stack_.address(), dst, port_, dport, 0);
  p.app = std::move(payload);
  if (auto* udp = p.udpHeader()) {
    udp->length = static_cast<std::uint16_t>(packet::UdpHeader::kWireBytes +
                                             p.app->sizeBytes());
  }
  stack_.sendPacket(std::move(p));
}

// ---------------------------------------------------------------------------
// HostStack

namespace {

obs::TraceRecord hostRecord(obs::TraceEvent ev, sim::Time t,
                            const packet::Packet& p, std::int16_t node) {
  obs::TraceRecord rec;
  rec.t = t;
  rec.event = ev;
  rec.node = node;
  rec.src = p.ip.src.value();
  rec.dst = p.ip.dst.value();
  rec.flow = p.meta.flow_id;
  rec.seq = p.meta.app_seq;
  rec.bytes = static_cast<std::uint32_t>(p.ipPacketBytes());
  return rec;
}

}  // namespace

HostStack::HostStack(phys::PhysNode& node, phys::PhysNetwork& net,
                     HostConfig config)
    : node_(node), net_(net), config_(config) {
  underlay_ = std::make_unique<UnderlayDevice>("eth0", node.address(), *this);
  local_addrs_.insert(node.address());
  // Default route: everything not otherwise routed exits the underlay NIC.
  rt_.addRoute(Route{packet::Prefix::defaultRoute(), underlay_.get(), {}, 100});
  node_.setPacketHandler(
      [this](packet::Packet p, phys::PhysLink&) { onWirePacket(std::move(p)); });
  kernel_accounting_start_ = queue().now();
  // Unconditional (not obs-gated): node attribution is engine-level
  // bookkeeping for the shard-readiness telemetry, and passive either way.
  node_tag_ = queue().internNodeTag(node_.name());
  // Sharded queue: fork a per-stack RNG stream at construction (single-
  // threaded, deterministic order) so lane-side draws are independent of
  // how many worker threads the engine runs.
  if (queue().shardThreads() > 0) lane_random_.emplace(net_.random().fork());
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    obs::MetricsRegistry& m = ctx->metrics;
    const std::string& n = node_.name();
    m_rx_packets_ = &m.counter("tcpip.host", n, "rx_packets");
    m_delivered_ = &m.counter("tcpip.host", n, "delivered");
    m_forwarded_ = &m.counter("tcpip.host", n, "forwarded");
    m_dropped_no_route_ = &m.counter("tcpip.host", n, "dropped_no_route");
    m_dropped_ttl_ = &m.counter("tcpip.host", n, "dropped_ttl");
    m_dropped_no_listener_ = &m.counter("tcpip.host", n, "dropped_no_listener");
    m_socket_buffer_drops_ = &m.counter("tcpip.host", n, "socket_buffer_drops");
    m_nic_queue_drops_ = &m.counter("tcpip.host", n, "nic_queue_drops");
    trace_node_ = ctx->tracer.internNode(n);
    span_node_ = ctx->spans.intern(n);
    span_nic_rx_ = ctx->spans.intern("host.nic_rx");
    span_kernel_fwd_ = ctx->spans.intern("host.kernel_fwd");
    span_nic_tx_ = ctx->spans.intern("host.nic_tx");
  }
}

std::uint32_t HostStack::spanOpen(const packet::Packet& p, std::int16_t layer) {
  if (p.meta.trace_id == 0) return 0;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    return ctx->spans.open(p.meta.trace_id, layer, queue().now(), span_node_,
                           -1, static_cast<std::uint32_t>(p.ipPacketBytes()));
  }
  return 0;
}

void HostStack::spanClose(std::uint32_t span_id) {
  if (span_id == 0) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) ctx->spans.close(span_id, queue().now());
}

void HostStack::spanRootDrop(const packet::Packet& p, const char* reason) {
  if (p.meta.trace_id == 0) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->spans.closeRoot(p.meta.trace_id, queue().now(),
                         obs::SpanOutcome::kDropped,
                         ctx->spans.intern(reason));
  }
}

void HostStack::noteSocketBufferDrop(const packet::Packet& p) {
  VINI_OBS_INC(m_socket_buffer_drops_);
  VINI_OBS_TRACE(hostRecord(obs::TraceEvent::kSocketDrop, queue().now(), p,
                            trace_node_));
  spanRootDrop(p, "socket_buffer_full");
}

HostStack::~HostStack() = default;

TunDevice& HostStack::createTunDevice(const std::string& name,
                                      packet::IpAddress address) {
  tun_devices_.push_back(std::make_unique<TunDevice>(name, address, *this));
  if (!address.isZero()) local_addrs_.insert(address);
  return *tun_devices_.back();
}

bool HostStack::removeTunDevice(const std::string& name) {
  for (auto it = tun_devices_.begin(); it != tun_devices_.end(); ++it) {
    if ((*it)->name() != name) continue;
    rt_.removeRoutesVia(it->get());
    const packet::IpAddress addr = (*it)->address();
    if (!addr.isZero()) local_addrs_.erase(addr);
    tun_devices_.erase(it);
    return true;
  }
  return false;
}

Device* HostStack::deviceByName(const std::string& name) {
  if (underlay_ && underlay_->name() == name) return underlay_.get();
  for (auto& d : tun_devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

bool HostStack::isLocalAddress(packet::IpAddress addr) const {
  return local_addrs_.count(addr) != 0;
}

UdpSocket& HostStack::openUdp(std::uint16_t port) {
  if (port == 0) port = allocateEphemeralPort();
  auto [it, inserted] =
      udp_sockets_.try_emplace(port, std::make_unique<UdpSocket>(*this, port));
  return *it->second;
}

void HostStack::closeUdp(std::uint16_t port) { udp_sockets_.erase(port); }

UdpSocket* HostStack::udpSocket(std::uint16_t port) {
  auto it = udp_sockets_.find(port);
  return it == udp_sockets_.end() ? nullptr : it->second.get();
}

std::uint16_t HostStack::allocateEphemeralPort() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 65535 ? 32768 : next_ephemeral_ + 1;
    if (udp_sockets_.count(port) == 0) return port;
  }
  return 0;
}

std::uint16_t HostStack::allocateIcmpIdent() { return next_icmp_ident_++; }

void HostStack::sendIcmpEcho(packet::IpAddress dst, std::uint16_t ident,
                             std::uint16_t seq, std::size_t payload_bytes,
                             packet::PacketMeta meta, packet::IpAddress src) {
  packet::Packet p = packet::Packet::icmpEchoRequest(
      src.isZero() ? address() : src, dst, ident, seq, payload_bytes);
  p.meta = meta;
  sendPacket(std::move(p));
}

void HostStack::registerTcpConnection(const TcpKey& key,
                                      std::function<void(packet::Packet)> handler,
                                      std::shared_ptr<void> owner) {
  tcp_connections_[key] = TcpDemuxEntry{std::move(owner), std::move(handler)};
}

void HostStack::unregisterTcpConnection(const TcpKey& key) {
  tcp_connections_.erase(key);
}

void HostStack::registerTcpListener(std::uint16_t port,
                                    std::function<void(packet::Packet)> handler) {
  tcp_listeners_[port] = std::move(handler);
}

void HostStack::unregisterTcpListener(std::uint16_t port) {
  tcp_listeners_.erase(port);
}

sim::Duration HostStack::sampleNicLatency(sim::Duration mean) {
  if (mean <= 0) return 0;
  auto& rnd = rng();
  const double m = static_cast<double>(mean);
  const double sample = rnd.normal(m, m * config_.nic_jitter);
  return static_cast<sim::Duration>(std::clamp(sample, 0.2 * m, 3.0 * m));
}

void HostStack::onWirePacket(packet::Packet p) {
  // NIC receive path: DMA + interrupt latency, pipelined (pure delay).
  // Delivery is kept FIFO: jittered latencies must not reorder a burst,
  // or TCP sees phantom reordering and spurious dup-ACKs.
  // Jitter the interrupt latency when the receive path is quiet; inside
  // a burst, packets already arrive paced by the wire and pass straight
  // through (re-sampling per packet would ratchet spacing and act as a
  // phantom bottleneck).
  const sim::Time now = queue().now();
  sim::Time deliver_at;
  if (last_rx_delivery_ > now) {
    deliver_at = last_rx_delivery_;
  } else {
    deliver_at = now + sampleNicLatency(config_.rx_latency_mean);
  }
  if (config_.rx_spike_probability > 0 &&
      rng().chance(config_.rx_spike_probability)) {
    deliver_at += rng().uniformDuration(config_.rx_spike_min,
                                        config_.rx_spike_max);
  }
  last_rx_delivery_ = deliver_at;
  VINI_OBS_INC(m_rx_packets_);
  VINI_OBS_TRACE(hostRecord(obs::TraceEvent::kIngress, now, p, trace_node_));
  const std::uint32_t rx_span = spanOpen(p, span_nic_rx_);
  auto boxed = std::make_shared<packet::Packet>(std::move(p));
  queue().schedule(deliver_at, "tcpip.host", node_tag_,
                   [this, p = std::move(boxed), rx_span]() mutable {
    spanClose(rx_span);
    if (rx_trace_) rx_trace_(*p);
    processPacket(std::move(p), /*from_wire=*/true);
  });
}

void HostStack::injectFromTun(packet::Packet p) {
  // User -> kernel injection: processed as if it arrived from a device,
  // with no NIC latency (it is a memory copy through /dev/net/tun).
  processPacket(std::make_shared<packet::Packet>(std::move(p)),
                /*from_wire=*/false);
}

void HostStack::processPacket(std::shared_ptr<packet::Packet> p,
                              bool from_wire) {
  if (isLocalAddress(p->ip.dst)) {
    deliverLocal(std::move(*p));
    return;
  }
  if (!config_.ip_forward) {
    ++stats_.dropped_no_route;
    VINI_OBS_INC(m_dropped_no_route_);
    spanRootDrop(*p, "no_ip_forward");
    return;
  }
  (void)from_wire;
  forwardPacket(std::move(p));
}

void HostStack::setPortCapture(packet::IpProto proto, std::uint16_t port,
                               std::function<void(packet::Packet)> handler) {
  port_captures_[{static_cast<std::uint8_t>(proto), port}] = std::move(handler);
}

void HostStack::clearPortCapture(packet::IpProto proto, std::uint16_t port) {
  port_captures_.erase({static_cast<std::uint8_t>(proto), port});
}

void HostStack::deliverLocal(packet::Packet p) {
  ++stats_.delivered;
  VINI_OBS_INC(m_delivered_);
  VINI_OBS_TRACE(hostRecord(obs::TraceEvent::kDeliver, queue().now(), p,
                            trace_node_));
  if (p.meta.slice_id >= 0) {
    SliceTraffic& traffic = slice_traffic_[p.meta.slice_id];
    ++traffic.rx_packets;
    traffic.rx_bytes += p.ipPacketBytes();
  }
  if (!port_captures_.empty()) {
    std::uint16_t port = 0;
    if (const auto* udp = p.udpHeader()) {
      port = udp->dst_port;
    } else if (const auto* tcp = p.tcpHeader()) {
      port = tcp->dst_port;
    } else if (const auto* icmp = p.icmpHeader()) {
      port = icmp->ident;
    }
    auto it = port_captures_.find({static_cast<std::uint8_t>(p.ip.proto), port});
    if (it != port_captures_.end()) {
      it->second(std::move(p));
      return;
    }
  }
  if (const auto* icmp = p.icmpHeader()) {
    if (icmp->type == packet::IcmpHeader::kEchoRequest) {
      // Kernel echo reply, preserving measurement metadata for RTTs.
      packet::Packet reply = packet::Packet::icmpEchoReply(p);
      reply.meta = p.meta;
      sendPacket(std::move(reply));
    } else if (icmp->type == packet::IcmpHeader::kEchoReply) {
      auto it = icmp_handlers_.find(icmp->ident);
      if (it != icmp_handlers_.end()) {
        it->second(std::move(p));
      } else {
        spanRootDrop(p, "no_listener");
      }
    } else if (icmp->type == packet::IcmpHeader::kTimeExceeded ||
               icmp->type == packet::IcmpHeader::kDestUnreachable) {
      if (icmp_error_handler_) icmp_error_handler_(p);
    }
    return;
  }
  if (const auto* udp = p.udpHeader()) {
    auto it = udp_sockets_.find(udp->dst_port);
    if (it != udp_sockets_.end()) {
      it->second->deliver(std::move(p));
    } else {
      ++stats_.dropped_no_listener;
      VINI_OBS_INC(m_dropped_no_listener_);
      spanRootDrop(p, "no_listener");
      sendIcmpError(packet::IcmpHeader::kDestUnreachable,
                    packet::IcmpHeader::kCodePortUnreachable, p);
    }
    return;
  }
  if (const auto* tcp = p.tcpHeader()) {
    const TcpKey key{tcp->dst_port, p.ip.src.value(), tcp->src_port};
    if (auto it = tcp_connections_.find(key); it != tcp_connections_.end()) {
      // Copy out of the map: the handler may unregister itself while it
      // runs, and the owner reference must outlive that erase.
      auto owner = it->second.owner;
      auto handler = it->second.handler;
      handler(std::move(p));
      return;
    }
    if (auto it = tcp_listeners_.find(tcp->dst_port); it != tcp_listeners_.end()) {
      it->second(std::move(p));
      return;
    }
    ++stats_.dropped_no_listener;
    VINI_OBS_INC(m_dropped_no_listener_);
    spanRootDrop(p, "no_listener");
    return;
  }
  // Other protocols (e.g. raw OSPF over IP) have no local consumer at the
  // kernel level; the overlay carries its routing traffic inside UDP.
  ++stats_.dropped_no_listener;
  VINI_OBS_INC(m_dropped_no_listener_);
  spanRootDrop(p, "no_listener");
}

void HostStack::sendIcmpError(std::uint8_t type, std::uint8_t code,
                              const packet::Packet& original) {
  if (original.isIcmp()) return;  // never ICMP about ICMP
  // Token bucket: 100 errors/s, burst 100.
  const sim::Time now = queue().now();
  icmp_error_tokens_ = std::min(
      100.0, icmp_error_tokens_ +
                 100.0 * sim::toSeconds(now - icmp_error_refill_at_));
  icmp_error_refill_at_ = now;
  if (icmp_error_tokens_ < 1.0) return;
  icmp_error_tokens_ -= 1.0;
  // Report from the address the packet was addressed to if it is ours
  // (e.g. a tap address), else the node's primary address.
  const packet::IpAddress reporter =
      isLocalAddress(original.ip.dst) ? original.ip.dst : address();
  sendPacket(packet::Packet::icmpError(reporter, type, code, original));
}

void HostStack::forwardPacket(std::shared_ptr<packet::Packet> p) {
  if (p->ip.ttl <= 1) {
    ++stats_.dropped_ttl;
    VINI_OBS_INC(m_dropped_ttl_);
    spanRootDrop(*p, "ttl_expired");
    sendIcmpError(packet::IcmpHeader::kTimeExceeded,
                  packet::IcmpHeader::kCodeTtlExpired, *p);
    return;
  }
  p->ip.ttl -= 1;
  ++stats_.forwarded;
  VINI_OBS_INC(m_forwarded_);

  // Kernel forwarding is serial work in the hot path: model a busy-until
  // so a saturated forwarder becomes the bottleneck, and account the CPU.
  const auto cost = config_.forward_fixed_cost +
                    static_cast<sim::Duration>(config_.forward_cost_per_byte_ns *
                                               static_cast<double>(p->ipPacketBytes()));
  const sim::Time now = queue().now();
  const sim::Time start = std::max(now, kernel_busy_until_);
  kernel_busy_until_ = start + cost;
  kernel_cpu_ += cost;
  const std::uint32_t fwd_span = spanOpen(*p, span_kernel_fwd_);
  queue().scheduleAfter(kernel_busy_until_ - now, "tcpip.host", node_tag_,
                        [this, p = std::move(p), fwd_span]() mutable {
                          spanClose(fwd_span);
                          routeAndTransmit(std::move(*p));
                        });
}

void HostStack::sendPacket(packet::Packet p) {
  if (p.meta.app_send_time < 0) p.meta.app_send_time = queue().now();
  if (isLocalAddress(p.ip.dst)) {
    // Loopback delivery.
    queue().scheduleAfter(1 * sim::kMicrosecond, "tcpip.host", node_tag_,
                          [this, p = std::make_shared<packet::Packet>(
                                     std::move(p))]() mutable {
                            deliverLocal(std::move(*p));
                          });
    return;
  }
  routeAndTransmit(std::move(p));
}

void HostStack::routeAndTransmit(packet::Packet p) {
  const Route* route = rt_.lookup(p.ip.dst);
  if (!route || !route->device) {
    ++stats_.dropped_no_route;
    VINI_OBS_INC(m_dropped_no_route_);
    spanRootDrop(p, "no_route");
    return;
  }
  VINI_OBS_TRACE(hostRecord(obs::TraceEvent::kForwardDecision, queue().now(),
                            p, trace_node_));
  if (tx_trace_) tx_trace_(p);
  route->device->transmit(std::move(p));
}

void HostStack::transmitUnderlay(packet::Packet p) {
  phys::PhysLink* link = net_.nextLinkFor(node_.id(), p.ip.dst);
  if (!link) {
    ++stats_.dropped_no_route;
    VINI_OBS_INC(m_dropped_no_route_);
    spanRootDrop(p, "no_route");
    return;
  }
  if (p.meta.slice_id >= 0) {
    SliceTraffic& traffic = slice_traffic_[p.meta.slice_id];
    ++traffic.tx_packets;
    traffic.tx_bytes += p.ipPacketBytes();
  }
  NicState& nic = nic_state_[link->id()];
  // Bounded transmit ring: a saturated sender used to pre-schedule one
  // far-future wire event per packet (~414k pending events at peak on a
  // saturated mesh); now overflow is a counted drop, like a real driver.
  if (nic.queue.size() >= config_.nic_queue_packets) {
    ++stats_.dropped_nic_queue;
    VINI_OBS_INC(m_nic_queue_drops_);
    spanRootDrop(p, "nic_queue_full");
    return;
  }
  // Serialize through the access NIC (this is what limits a PlanetLab
  // node to ~100 Mb/s regardless of the backbone capacity), then the
  // transmit-path latency, then onto the wire.  Integer ceiling for the
  // same reason as Channel: the float product truncated up to 1 ns per
  // frame, letting back-to-back frames creep together.  The wire time is
  // still decided here, at enqueue — byte-identical to the old per-packet
  // pre-scheduling — but only the ring head holds a pending event;
  // nicComplete() chains the rest.
  const sim::Duration serialization =
      sim::serializationDelay(p.wireBytes(), config_.nic_bps);
  const sim::Time now = queue().now();
  const bool back_to_back = nic.busy_until > now;
  const sim::Time start = std::max(now, nic.busy_until);
  nic.busy_until = start + serialization;
  // Jitter applies when the NIC ramps up from idle; a back-to-back burst
  // stays perfectly paced at the serialization rate (re-sampling jitter
  // per packet would ratchet the spacing up and silently tax throughput).
  const sim::Duration latency = back_to_back
                                    ? config_.tx_latency_mean
                                    : sampleNicLatency(config_.tx_latency_mean);
  sim::Time wire_at = nic.busy_until + latency;
  if (wire_at < nic.last_wire) wire_at = nic.last_wire;  // keep FIFO
  nic.last_wire = wire_at;
  const std::uint32_t tx_span = spanOpen(p, span_nic_tx_);
  const bool was_idle = nic.queue.empty();
  nic.queue.push_back(NicTx{std::make_shared<packet::Packet>(std::move(p)),
                            link, tx_span, wire_at});
  if (was_idle) {
    queue().schedule(wire_at, "tcpip.host", node_tag_,
                     [this, id = link->id()]() { nicComplete(id); });
  }
}

void HostStack::nicComplete(int link_id) {
  NicState& nic = nic_state_[link_id];
  if (nic.queue.empty()) return;  // defensive: ring was torn down
  NicTx tx = std::move(nic.queue.front());
  nic.queue.pop_front();
  spanClose(tx.span);
  tx.link->channelFrom(node_.id()).transmit(std::move(*tx.packet));
  if (!nic.queue.empty()) {
    queue().schedule(nic.queue.front().wire_at, "tcpip.host", node_tag_,
                     [this, link_id]() { nicComplete(link_id); });
  }
}

void HostStack::resetKernelAccounting() {
  kernel_cpu_ = 0;
  kernel_accounting_start_ = queue().now();
}

double HostStack::kernelUtilization() const {
  const sim::Duration elapsed = net_.queue().now() - kernel_accounting_start_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(kernel_cpu_) / static_cast<double>(elapsed);
}

}  // namespace vini::tcpip
