// The host networking stack ("the kernel") of a physical node.
//
// Every PhysNode gets a HostStack: devices (underlay NIC + any TUN/TAP
// devices), a routing table, UDP sockets, ICMP echo handling, kernel IP
// forwarding (the Table 2 "Network" baseline path), and the demux hooks
// the TCP implementation registers into.  Per-packet host costs (NIC/
// interrupt latency, kernel forwarding cost) are modelled here; they are
// what separate "Network" rows from IIAS rows in the microbenchmarks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "packet/packet.h"
#include "phys/network.h"
#include "tcpip/device.h"
#include "tcpip/routing_table.h"

namespace vini::tcpip {

struct HostConfig {
  /// NIC/driver/interrupt latency per packet (sampled with jitter).
  /// Calibrated against Table 3's Network row: ping -f across one
  /// kernel forwarder measures 0.193/0.414/0.593 (min/avg/max ms).
  sim::Duration tx_latency_mean = 28 * sim::kMicrosecond;
  sim::Duration rx_latency_mean = 50 * sim::kMicrosecond;
  /// Relative jitter (stddev / mean) of the NIC latencies.
  double nic_jitter = 0.55;
  /// Rare receive-path spikes (softirq backlog, interrupt coalescing on
  /// a busy production host): per-packet probability of an extra
  /// uniform(spike_min, spike_max) delay.  Off by default (dedicated lab
  /// machines); the PlanetLab host model enables them — they produce the
  /// occasional ~28 ms RTTs in Table 5's Network row.
  double rx_spike_probability = 0.0;
  sim::Duration rx_spike_min = 500 * sim::kMicrosecond;
  sim::Duration rx_spike_max = 3 * sim::kMillisecond;
  /// Host NIC rate: outgoing packets serialize at this rate before
  /// reaching the wire (a PlanetLab node's ~100 Mb/s access port; set to
  /// the link speed or higher to make the wire the bottleneck).
  double nic_bps = 1e9;
  /// Transmit ring capacity per outgoing link, in packets.  The NIC
  /// model is backpressured: packets queue here and a single completion
  /// event per link chains through the ring, instead of every packet
  /// pre-scheduling its own far-future wire event (which peaked at
  /// ~414k pending events on saturated meshes).  Overflow is a counted
  /// drop ("nic_queue_full"), like a real driver ring.
  std::size_t nic_queue_packets = 4096;
  /// Kernel IP forwarding cost (serial; models the forwarding hot path).
  sim::Duration forward_fixed_cost = 3 * sim::kMicrosecond;
  double forward_cost_per_byte_ns = 1.0;
  /// Whether this kernel forwards packets not addressed to it.
  bool ip_forward = true;
  /// Default capacity of a buffered UDP socket (net.core.rmem_default of
  /// the era: ~110 KB).
  std::size_t default_socket_buffer = 110 * 1024;
};

/// Per-slice traffic counters — the VNET role (Section 4.1.1: "VNET
/// ... tracks and multiplexes incoming and outgoing traffic", giving
/// each slice access only to its own traffic).
struct SliceTraffic {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
};

struct HostStats {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_no_listener = 0;
  std::uint64_t dropped_nic_queue = 0;
};

class HostStack;

/// A UDP socket.  Two delivery modes:
///  * immediate: a handler is invoked on arrival (in-kernel consumers);
///  * buffered: packets queue in a bounded socket buffer and a user-space
///    process is notified — overflow drops are counted.  This buffer is
///    the one that overflows in Figure 6(a) when the Click process is
///    descheduled too long.
class UdpSocket {
 public:
  UdpSocket(HostStack& stack, std::uint16_t port);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const { return port_; }

  /// Source address for outgoing datagrams (defaults to the host's
  /// primary address).  Bind to a tap0 address to source traffic into an
  /// overlay.
  void bindAddress(packet::IpAddress addr) { bound_addr_ = addr; }
  packet::IpAddress boundAddress() const;

  /// Immediate-delivery mode.
  void setReceiveHandler(std::function<void(packet::Packet)> handler) {
    handler_ = std::move(handler);
  }

  /// Buffered mode with the given capacity (0 = stack default).
  void setBuffered(std::size_t buffer_bytes = 0);
  /// Buffered-mode notification: invoked with (a reference to) each
  /// packet as it is queued, so the consumer can size its work.
  void setNotify(std::function<void(const packet::Packet&)> notify) {
    notify_ = std::move(notify);
  }
  std::optional<packet::Packet> readPacket();
  std::size_t queuedPackets() const { return rx_queue_.size(); }
  std::size_t queuedBytes() const { return rx_queued_bytes_; }
  std::uint64_t bufferDrops() const { return buffer_drops_; }

  /// Send an opaque datagram of `payload_bytes`.
  void sendTo(packet::IpAddress dst, std::uint16_t dport,
              std::size_t payload_bytes, packet::PacketMeta meta = {});

  /// Send an encapsulated packet (tunnelling).
  void sendEncapsulatedTo(packet::IpAddress dst, std::uint16_t dport,
                          packet::PacketPtr inner, std::size_t extra_bytes = 0);

  /// Send a structured application payload (routing protocol messages).
  void sendAppTo(packet::IpAddress dst, std::uint16_t dport,
                 std::shared_ptr<const packet::AppPayload> payload);

 private:
  friend class HostStack;
  void deliver(packet::Packet p);

  HostStack& stack_;
  std::uint16_t port_;
  packet::IpAddress bound_addr_;
  std::function<void(packet::Packet)> handler_;
  bool buffered_ = false;
  std::size_t buffer_capacity_ = 0;
  std::deque<packet::Packet> rx_queue_;
  std::size_t rx_queued_bytes_ = 0;
  std::uint64_t buffer_drops_ = 0;
  std::function<void(const packet::Packet&)> notify_;
};

/// Demux key for an established TCP connection.
struct TcpKey {
  std::uint16_t local_port = 0;
  std::uint32_t remote_addr = 0;
  std::uint16_t remote_port = 0;
  auto operator<=>(const TcpKey&) const = default;
};

class HostStack {
 public:
  HostStack(phys::PhysNode& node, phys::PhysNetwork& net, HostConfig config = {});
  ~HostStack();

  HostStack(const HostStack&) = delete;
  HostStack& operator=(const HostStack&) = delete;

  phys::PhysNode& node() { return node_; }
  phys::PhysNetwork& network() { return net_; }
  sim::EventQueue& queue() { return net_.queue(); }
  const HostConfig& config() const { return config_; }
  HostStats& stats() { return stats_; }

  packet::IpAddress address() const { return node_.address(); }

  // -- Devices --------------------------------------------------------------

  UnderlayDevice& underlayDevice() { return *underlay_; }

  /// Create a TUN/TAP device with the given local address; its address
  /// becomes a local address of the host.
  TunDevice& createTunDevice(const std::string& name, packet::IpAddress address);

  /// Tear a TUN/TAP device down (live migration moved its slice away):
  /// removes its routes, drops its address from the local set, and
  /// destroys the device.  Returns false if no such device exists.
  bool removeTunDevice(const std::string& name);

  Device* deviceByName(const std::string& name);

  /// Treat `addr` as local (deliver up rather than forward).
  void addLocalAddress(packet::IpAddress addr) { local_addrs_.insert(addr); }
  void removeLocalAddress(packet::IpAddress addr) { local_addrs_.erase(addr); }
  bool isLocalAddress(packet::IpAddress addr) const;

  RoutingTable& routingTable() { return rt_; }

  // -- Sockets ----------------------------------------------------------------

  /// Open a UDP socket on `port` (0 = allocate an ephemeral port).
  UdpSocket& openUdp(std::uint16_t port = 0);
  void closeUdp(std::uint16_t port);
  UdpSocket* udpSocket(std::uint16_t port);

  /// Allocate an unused ephemeral port (also used by the NAPT element).
  std::uint16_t allocateEphemeralPort();

  // -- ICMP -------------------------------------------------------------------

  /// Allocate a fresh echo identifier.  Per-stack (ICMP demux is
  /// per-stack), so idents are deterministic regardless of how many
  /// other stacks exist in the process.
  std::uint16_t allocateIcmpIdent();

  /// Send an echo request; replies arrive at the handler registered for
  /// `ident` (handler receives the reply packet, still meta-stamped).
  /// `src` overrides the source address (e.g. a tap0 address so the echo
  /// travels through an overlay); zero means the host's primary address.
  void sendIcmpEcho(packet::IpAddress dst, std::uint16_t ident, std::uint16_t seq,
                    std::size_t payload_bytes, packet::PacketMeta meta = {},
                    packet::IpAddress src = {});
  void setIcmpReplyHandler(std::uint16_t ident,
                           std::function<void(packet::Packet)> handler) {
    icmp_handlers_[ident] = std::move(handler);
  }

  /// Handler for received ICMP errors (time exceeded / unreachable);
  /// traceroute registers here.
  void setIcmpErrorHandler(std::function<void(const packet::Packet&)> handler) {
    icmp_error_handler_ = std::move(handler);
  }

  /// Emit an ICMP error about `original` (rate-limited, and never about
  /// another ICMP packet, per the classic rules).
  void sendIcmpError(std::uint8_t type, std::uint8_t code,
                     const packet::Packet& original);

  // -- Port capture (used by pass-through middleboxes like NAPT) --------------

  /// Intercept all locally-delivered packets of `proto` whose destination
  /// port (ICMP: ident) equals `port`, before socket demux.  This is how
  /// the IIAS NAPT pulls return traffic from external hosts back into the
  /// overlay (Figure 2, step 4's reverse direction).
  void setPortCapture(packet::IpProto proto, std::uint16_t port,
                      std::function<void(packet::Packet)> handler);
  void clearPortCapture(packet::IpProto proto, std::uint16_t port);

  // -- TCP demux (used by tcpip::Tcp*) ----------------------------------------

  /// `owner` keeps the connection alive while its demux entry exists;
  /// it is opaque so this header stays below tcpip/tcp.h in the layering.
  void registerTcpConnection(const TcpKey& key,
                             std::function<void(packet::Packet)> handler,
                             std::shared_ptr<void> owner = nullptr);
  void unregisterTcpConnection(const TcpKey& key);
  void registerTcpListener(std::uint16_t port,
                           std::function<void(packet::Packet)> handler);
  void unregisterTcpListener(std::uint16_t port);

  // -- Packet I/O ---------------------------------------------------------------

  /// Send a locally generated packet (routing table decides the device).
  void sendPacket(packet::Packet p);

  /// Transmit via the underlay NIC (underlay routing picks the link).
  void transmitUnderlay(packet::Packet p);

  /// Entry point for packets injected from a TUN device (user -> kernel).
  void injectFromTun(packet::Packet p);

  /// Trace hooks (tcpdump): called for every packet received/sent.
  void setRxTrace(std::function<void(const packet::Packet&)> fn) { rx_trace_ = std::move(fn); }
  void setTxTrace(std::function<void(const packet::Packet&)> fn) { tx_trace_ = std::move(fn); }

  /// VNET-style accounting: traffic attributed to a slice (packets that
  /// carried its slice id through this host).
  const SliceTraffic& sliceTraffic(int slice_id) {
    return slice_traffic_[slice_id];
  }

  /// This stack's interned node tag (kNoNode when the queue has no obs
  /// attribution) — protocol timers owned by the stack attribute their
  /// events here so the sharded engine lanes them correctly.
  sim::NodeTag nodeTag() const { return node_tag_; }

  /// Packets currently queued in every per-link NIC transmit ring.
  std::size_t nicQueuedPackets() const {
    std::size_t n = 0;
    for (const auto& [id, nic] : nic_state_) n += nic.queue.size();
    return n;
  }

  /// Kernel CPU consumed by forwarding since last reset (Table 2 CPU%).
  sim::Duration kernelCpuConsumed() const { return kernel_cpu_; }
  void resetKernelAccounting();
  double kernelUtilization() const;

  /// Called by UdpSocket when a buffered socket's receive buffer
  /// overflows — the Fig. 6(a) drop — so the stack can account it in
  /// the metrics registry and the packet trace.
  void noteSocketBufferDrop(const packet::Packet& p);

 private:
  /// The receive/forward chain passes one heap-boxed packet through its
  /// NIC-receive and kernel-forwarding events, so each event callback
  /// captures a pointer (small enough for the event queue's inline
  /// storage) instead of the full Packet, and the packet is boxed once
  /// per visit to this host rather than once per event.
  void onWirePacket(packet::Packet p);
  void processPacket(std::shared_ptr<packet::Packet> p, bool from_wire);
  void deliverLocal(packet::Packet p);
  void forwardPacket(std::shared_ptr<packet::Packet> p);
  void routeAndTransmit(packet::Packet p);
  sim::Duration sampleNicLatency(sim::Duration mean);
  /// Fire the head-of-ring wire event for `link_id` and chain the next.
  void nicComplete(int link_id);
  /// The stack RNG: the shared network RNG, or (sharded queue) a
  /// per-stack fork of it so lane-side draws cannot race or reorder.
  sim::Random& rng() {
    return lane_random_ ? *lane_random_ : net_.random();
  }

  // Span plumbing for traced packets: NIC receive, kernel forwarding,
  // and NIC transmit become hop spans; every drop site closes the
  // packet's root span with a reason.
  std::uint32_t spanOpen(const packet::Packet& p, std::int16_t layer);
  void spanClose(std::uint32_t span_id);
  void spanRootDrop(const packet::Packet& p, const char* reason);

  phys::PhysNode& node_;
  phys::PhysNetwork& net_;
  HostConfig config_;
  HostStats stats_;
  RoutingTable rt_;
  std::unique_ptr<UnderlayDevice> underlay_;
  std::vector<std::unique_ptr<TunDevice>> tun_devices_;
  std::set<packet::IpAddress> local_addrs_;
  std::unordered_map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_sockets_;
  std::unordered_map<std::uint16_t, std::function<void(packet::Packet)>> icmp_handlers_;
  std::map<std::pair<std::uint8_t, std::uint16_t>,
           std::function<void(packet::Packet)>>
      port_captures_;
  std::map<int, SliceTraffic> slice_traffic_;
  // The entry owns the connection: erasing it (unregisterTcpConnection,
  // or stack destruction) ends the connection's registered lifetime.
  struct TcpDemuxEntry {
    std::shared_ptr<void> owner;
    std::function<void(packet::Packet)> handler;
  };
  std::map<TcpKey, TcpDemuxEntry> tcp_connections_;
  std::unordered_map<std::uint16_t, std::function<void(packet::Packet)>> tcp_listeners_;
  std::uint16_t next_ephemeral_ = 32768;
  std::uint16_t next_icmp_ident_ = 0x4000;
  // Per-outgoing-link NIC state (one interface per link, full duplex).
  // Timing (busy_until, last_wire) is decided at enqueue — identical to
  // the old per-packet pre-scheduling — but only the ring head holds a
  // pending wire event; completion chains the next, so pending-event
  // storage is O(active links), not O(in-flight packets).
  struct NicTx {
    std::shared_ptr<packet::Packet> packet;
    phys::PhysLink* link = nullptr;
    std::uint32_t span = 0;
    sim::Time wire_at = 0;
  };
  struct NicState {
    std::deque<NicTx> queue;
    sim::Time busy_until = 0;
    sim::Time last_wire = 0;
  };
  std::unordered_map<int, NicState> nic_state_;
  sim::Time last_rx_delivery_ = 0;
  sim::Time kernel_busy_until_ = 0;
  sim::Duration kernel_cpu_ = 0;
  sim::Time kernel_accounting_start_ = 0;
  std::function<void(const packet::Packet&)> rx_trace_;
  std::function<void(const packet::Packet&)> tx_trace_;
  std::function<void(const packet::Packet&)> icmp_error_handler_;
  // ICMP error rate limiter (token bucket, kernel-style).
  double icmp_error_tokens_ = 100.0;
  sim::Time icmp_error_refill_at_ = 0;
  /// Node attribution for every event this stack schedules (interned at
  /// construction; shard-readiness telemetry, passive).
  sim::NodeTag node_tag_ = sim::kNoNode;
  /// Engaged only when the queue is sharded: a construction-time fork of
  /// the network RNG, so this stack's latency/spike draws form their own
  /// stream regardless of how lanes interleave (see rng()).
  std::optional<sim::Random> lane_random_;
  // Observability handles, cached at construction (null when no obs
  // context is installed).
  std::int16_t trace_node_ = -1;
  std::int16_t span_node_ = -1;
  std::int16_t span_nic_rx_ = -1;
  std::int16_t span_kernel_fwd_ = -1;
  std::int16_t span_nic_tx_ = -1;
  obs::Counter* m_rx_packets_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_forwarded_ = nullptr;
  obs::Counter* m_dropped_no_route_ = nullptr;
  obs::Counter* m_dropped_ttl_ = nullptr;
  obs::Counter* m_dropped_no_listener_ = nullptr;
  obs::Counter* m_socket_buffer_drops_ = nullptr;
  obs::Counter* m_nic_queue_drops_ = nullptr;
};

}  // namespace vini::tcpip
