#include "tcpip/routing_table.h"

#include <algorithm>

namespace vini::tcpip {

void RoutingTable::addRoute(const Route& route) {
  for (auto& r : routes_) {
    if (r.prefix == route.prefix && r.proto == route.proto) {
      r = route;
      return;
    }
  }
  routes_.push_back(route);
}

bool RoutingTable::removeRoute(const packet::Prefix& prefix) {
  for (auto it = routes_.begin(); it != routes_.end(); ++it) {
    if (it->prefix == prefix) {
      routes_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t RoutingTable::removeRoutesVia(const Device* device) {
  const std::size_t before = routes_.size();
  routes_.erase(std::remove_if(routes_.begin(), routes_.end(),
                               [device](const Route& r) {
                                 return r.device == device;
                               }),
                routes_.end());
  return before - routes_.size();
}

const Route* RoutingTable::lookup(packet::IpAddress dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (!best || r.prefix.length() > best->prefix.length() ||
        (r.prefix.length() == best->prefix.length() && r.metric < best->metric)) {
      best = &r;
    }
  }
  return best;
}

}  // namespace vini::tcpip
