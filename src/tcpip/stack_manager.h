// StackManager: one HostStack per physical node, created on demand.
//
// Experiments need kernels on many nodes (IIAS routers, traffic
// endpoints, external servers); this keeps the 1:1 node-to-stack mapping
// in one place, with per-node HostConfig overrides for heterogeneous
// hardware (the DETER Xeons vs. the PlanetLab P-IIIs).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "tcpip/host_stack.h"

namespace vini::tcpip {

class StackManager {
 public:
  StackManager(phys::PhysNetwork& net, HostConfig default_config = {})
      : net_(net), default_config_(default_config) {}

  /// Override the config used when the named node's stack is created.
  void setConfigFor(const std::string& node_name, HostConfig config) {
    overrides_[node_name] = config;
  }

  /// Get or create the stack for `node`.
  HostStack& ensure(phys::PhysNode& node) {
    auto it = stacks_.find(node.id());
    if (it != stacks_.end()) return *it->second;
    HostConfig config = default_config_;
    if (auto ov = overrides_.find(node.name()); ov != overrides_.end()) {
      config = ov->second;
    }
    auto stack = std::make_unique<HostStack>(node, net_, config);
    HostStack& ref = *stack;
    stacks_[node.id()] = std::move(stack);
    return ref;
  }

  HostStack* get(phys::NodeId id) {
    auto it = stacks_.find(id);
    return it == stacks_.end() ? nullptr : it->second.get();
  }

  HostStack* getByName(const std::string& name) {
    phys::PhysNode* node = net_.nodeByName(name);
    return node ? get(node->id()) : nullptr;
  }

 private:
  phys::PhysNetwork& net_;
  HostConfig default_config_;
  std::map<std::string, HostConfig> overrides_;
  std::map<phys::NodeId, std::unique_ptr<HostStack>> stacks_;
};

}  // namespace vini::tcpip
