// TCP.
//
// A Reno/NewReno TCP with the mechanisms the paper's experiments depend
// on: slow start and congestion avoidance, fast retransmit / fast
// recovery, RTO per RFC 6298 with Karn's algorithm and exponential
// backoff, delayed ACKs, receiver flow control with a configurable
// receive buffer (iperf's default is 16 KB — that is why the Figure 9
// transfer is limited to ~3 Mb/s), and slow-start restart after idle
// (RFC 2861), which is exactly what Figure 9(b) shows when OSPF finds a
// new route 8 seconds after the failure.
//
// The stream is content-free: applications write byte *counts*, the
// stack moves sequence ranges, and receivers observe byte counts — the
// evaluation only ever measures throughput and timing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sim/event_queue.h"
#include "tcpip/host_stack.h"

namespace vini::tcpip {

struct TcpConfig {
  std::size_t mss = 1448;
  /// Receiver buffer: advertised window ceiling.  iperf 1.7.0's default
  /// of 16 KB is the paper's Figure 9 setting.
  std::size_t recv_buffer = 16 * 1024;
  std::size_t initial_cwnd_segments = 2;
  sim::Duration initial_rto = 1 * sim::kSecond;
  sim::Duration min_rto = 200 * sim::kMillisecond;
  sim::Duration max_rto = 60 * sim::kSecond;
  sim::Duration delayed_ack = 40 * sim::kMillisecond;
  int max_retransmits = 15;
  /// RFC 2861: collapse cwnd after an idle period of one RTO.
  bool slow_start_restart = true;
  sim::Duration time_wait = 1 * sim::kSecond;
};

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* tcpStateName(TcpState s);

/// Counters and live congestion state, for assertions and reporting.
struct TcpStats {
  std::uint64_t bytes_sent = 0;        ///< new data bytes transmitted
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_received = 0;    ///< in-order bytes delivered to app
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t dup_acks_received = 0;
  std::size_t cwnd = 0;
  std::size_t ssthresh = 0;
  sim::Duration srtt = 0;
  sim::Duration rto = 0;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Active open.  `local_addr` defaults to the host's primary address;
  /// pass the slice's tap0 address to run the connection over an overlay.
  static std::shared_ptr<TcpConnection> connect(
      HostStack& stack, packet::IpAddress remote, std::uint16_t remote_port,
      TcpConfig config = {}, packet::IpAddress local_addr = {});

  ~TcpConnection();

  // -- Application interface -------------------------------------------------

  /// Queue `bytes` of application data for transmission.
  void send(std::size_t bytes);

  /// Half-close: FIN after all queued data is delivered.
  void close();

  /// Abort: RST and tear down.
  void abort();

  TcpState state() const { return state_; }
  const TcpStats& stats() const { return stats_; }
  std::size_t sendQueueBytes() const { return send_queue_bytes_; }
  packet::IpAddress localAddr() const { return local_addr_; }
  std::uint16_t localPort() const { return local_port_; }

  // -- Callbacks ----------------------------------------------------------------

  std::function<void()> on_connected;
  std::function<void(std::size_t bytes)> on_receive;
  std::function<void()> on_closed;
  /// tcpdump-style hook: every segment that reaches this connection,
  /// before processing.  Figure 9 is drawn from this.
  std::function<void(const packet::Packet&)> on_segment;

 private:
  friend class TcpListener;

  TcpConnection(HostStack& stack, TcpConfig config);

  // Passive-open constructor path (invoked by TcpListener on SYN).
  static std::shared_ptr<TcpConnection> acceptFrom(HostStack& stack,
                                                   const packet::Packet& syn,
                                                   TcpConfig config);

  void startConnect(packet::IpAddress remote, std::uint16_t remote_port,
                    packet::IpAddress local_addr);

  // Input path.
  void onPacket(packet::Packet p);
  void processAck(const packet::TcpHeader& h);
  void processData(const packet::Packet& p);
  void processFin(std::uint32_t fin_seq);

  // Output path.
  void trySend();
  void sendSegment(std::uint32_t seq, std::size_t len, packet::TcpFlags flags,
                   bool retransmission);
  void sendAck();
  void sendRst();
  std::size_t advertisedWindow() const;

  // Timers and congestion control.
  void armRto();
  void onRtoExpired();
  void enterRecovery();
  void updateRtt(sim::Duration sample);
  void maybeRestartAfterIdle();
  void enterTimeWait();
  void becomeClosed();
  void registerDemux();

  HostStack& stack_;
  TcpConfig config_;
  TcpState state_ = TcpState::kClosed;

  packet::IpAddress local_addr_;
  packet::IpAddress remote_addr_;
  std::uint16_t local_port_ = 0;
  std::uint16_t remote_port_ = 0;
  bool demux_registered_ = false;

  // Sender state.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::size_t send_queue_bytes_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 65535;
  std::size_t peer_window_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;
  int consecutive_timeouts_ = 0;
  sim::Time last_send_activity_ = 0;

  // RTT estimation (Karn: one sample outstanding, invalidated on rexmit).
  bool rtt_sample_pending_ = false;
  std::uint32_t rtt_sample_end_ = 0;
  sim::Time rtt_sample_sent_ = 0;
  bool srtt_valid_ = false;
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_ = 0;

  // Receiver state.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  bool fin_received_ = false;
  std::uint32_t fin_seq_ = 0;
  /// Out-of-order byte ranges [start, end) keyed by start sequence.
  std::map<std::uint32_t, std::uint32_t> ooo_;
  std::size_t ooo_bytes_ = 0;
  int unacked_segments_ = 0;

  TcpStats stats_;
  std::unique_ptr<sim::OneShotTimer> rto_timer_;
  std::unique_ptr<sim::OneShotTimer> delack_timer_;
  std::unique_ptr<sim::OneShotTimer> time_wait_timer_;
};

/// Passive listener: accepts connections on a port.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;

  TcpListener(HostStack& stack, std::uint16_t port, TcpConfig config,
              AcceptHandler on_accept);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

 private:
  void onSyn(packet::Packet p);

  HostStack& stack_;
  std::uint16_t port_;
  TcpConfig config_;
  AcceptHandler on_accept_;
};

}  // namespace vini::tcpip
