// The kernel routing table.
//
// Longest-prefix-match over (prefix -> device [+ gateway]) entries.  On a
// PL-VINI node the interesting configuration is exactly the paper's:
// 10.0.0.0/8 routes to the slice's tap0 device (pulling overlay-addressed
// traffic into Click), and 0.0.0.0/0 routes to the underlay NIC.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "packet/ip_address.h"

namespace vini::tcpip {

class Device;

struct Route {
  packet::Prefix prefix;
  Device* device = nullptr;
  /// Optional next-hop gateway; zero means directly connected.
  packet::IpAddress gateway;
  int metric = 0;
  /// Which protocol/source installed the route ("static", "connected",
  /// "ospf", ...).  Last field so existing positional initializers keep
  /// working.
  std::string proto = "static";
};

class RoutingTable {
 public:
  /// Insert or replace the route for (prefix, proto): a protocol
  /// re-announcing a prefix replaces its own previous entry even when
  /// the metric changed.  Keying the replacement on (prefix, metric) —
  /// the old behaviour — accumulated stale duplicates whenever a cost
  /// changed, and lookup() could still pick the dead one.
  void addRoute(const Route& route);

  /// Remove the route for exactly this prefix; returns true if removed.
  bool removeRoute(const packet::Prefix& prefix);

  /// Remove every route through `device` (device teardown); returns the
  /// number removed.
  std::size_t removeRoutesVia(const Device* device);

  /// Longest-prefix match; ties broken by lower metric.
  const Route* lookup(packet::IpAddress dst) const;

  const std::vector<Route>& routes() const { return routes_; }
  void clear() { routes_.clear(); }

 private:
  std::vector<Route> routes_;
};

}  // namespace vini::tcpip
