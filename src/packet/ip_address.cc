#include "packet/ip_address.h"

#include <cstdio>
#include <stdexcept>

namespace vini::packet {

std::optional<IpAddress> IpAddress::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return IpAddress(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                   static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

IpAddress IpAddress::mustParse(const std::string& text) {
  auto addr = parse(text);
  if (!addr) throw std::invalid_argument("bad IPv4 address: " + text);
  return *addr;
}

std::string IpAddress::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::ostream& operator<<(std::ostream& os, IpAddress addr) {
  return os << addr.str();
}

Prefix::Prefix(IpAddress addr, int length) : length_(length) {
  if (length < 0 || length > 32) throw std::invalid_argument("bad prefix length");
  addr_ = IpAddress(addr.value() & (length == 0 ? 0 : ~std::uint32_t{0} << (32 - length)));
}

std::optional<Prefix> Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  try {
    const int len = std::stoi(text.substr(slash + 1));
    if (len < 0 || len > 32) return std::nullopt;
    return Prefix(*addr, len);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

Prefix Prefix::mustParse(const std::string& text) {
  auto p = parse(text);
  if (!p) throw std::invalid_argument("bad IPv4 prefix: " + text);
  return *p;
}

std::uint32_t Prefix::mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool Prefix::contains(IpAddress addr) const {
  return (addr.value() & mask()) == addr_.value();
}

bool Prefix::covers(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

IpAddress Prefix::hostAt(std::uint32_t n) const {
  return IpAddress(addr_.value() | (n & ~mask()));
}

std::string Prefix::str() const {
  return addr_.str() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& p) {
  return os << p.str();
}

}  // namespace vini::packet
