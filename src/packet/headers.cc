#include "packet/headers.h"

#include "packet/checksum.h"

namespace vini::packet {

namespace {

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t get16(std::span<const std::uint8_t> d, std::size_t off) {
  return static_cast<std::uint16_t>((std::uint16_t{d[off]} << 8) | d[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> d, std::size_t off) {
  return (std::uint32_t{get16(d, off)} << 16) | get16(d, off + 2);
}

}  // namespace

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  put8(out, 0x45);  // version 4, IHL 5
  put8(out, tos);
  put16(out, total_length);
  put16(out, id);
  put16(out, 0);  // flags + fragment offset: never fragmented in-sim
  put8(out, ttl);
  put8(out, static_cast<std::uint8_t>(proto));
  put16(out, 0);  // checksum placeholder
  put32(out, src.value());
  put32(out, dst.value());
  const std::uint16_t csum =
      internetChecksum(std::span(out).subspan(start, kWireBytes));
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum & 0xff);
}

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> d) {
  if (d.size() < kWireBytes) return std::nullopt;
  if ((d[0] >> 4) != 4 || (d[0] & 0x0f) != 5) return std::nullopt;
  if (internetChecksum(d.subspan(0, kWireBytes)) != 0) return std::nullopt;
  Ipv4Header h;
  h.tos = d[1];
  h.total_length = get16(d, 2);
  h.id = get16(d, 4);
  h.ttl = d[8];
  h.proto = static_cast<IpProto>(d[9]);
  h.src = IpAddress(get32(d, 12));
  h.dst = IpAddress(get32(d, 16));
  return h;
}

void UdpHeader::serialize(std::vector<std::uint8_t>& out) const {
  put16(out, src_port);
  put16(out, dst_port);
  put16(out, length);
  put16(out, 0);  // checksum optional in IPv4; the sim relies on IP checksum
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> d) {
  if (d.size() < kWireBytes) return std::nullopt;
  UdpHeader h;
  h.src_port = get16(d, 0);
  h.dst_port = get16(d, 2);
  h.length = get16(d, 4);
  return h;
}

std::uint8_t TcpFlags::toByte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::fromByte(std::uint8_t b) {
  TcpFlags f;
  f.fin = (b & 0x01) != 0;
  f.syn = (b & 0x02) != 0;
  f.rst = (b & 0x04) != 0;
  f.psh = (b & 0x08) != 0;
  f.ack = (b & 0x10) != 0;
  return f;
}

std::string TcpFlags::str() const {
  std::string s;
  if (syn) s += 'S';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (psh) s += 'P';
  if (ack) s += '.';
  return s.empty() ? "-" : s;
}

void TcpHeader::serialize(std::vector<std::uint8_t>& out) const {
  put16(out, src_port);
  put16(out, dst_port);
  put32(out, seq);
  put32(out, ack);
  put8(out, 5 << 4);  // data offset 5 words, no options
  put8(out, flags.toByte());
  put16(out, window);
  put16(out, 0);  // checksum: covered by IP-layer integrity in-sim
  put16(out, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> d) {
  if (d.size() < kWireBytes) return std::nullopt;
  if ((d[12] >> 4) != 5) return std::nullopt;
  TcpHeader h;
  h.src_port = get16(d, 0);
  h.dst_port = get16(d, 2);
  h.seq = get32(d, 4);
  h.ack = get32(d, 8);
  h.flags = TcpFlags::fromByte(d[13]);
  h.window = get16(d, 14);
  return h;
}

void IcmpHeader::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  put8(out, type);
  put8(out, code);
  put16(out, 0);  // checksum placeholder
  put16(out, ident);
  put16(out, seq);
  const std::uint16_t csum =
      internetChecksum(std::span(out).subspan(start, kWireBytes));
  out[start + 2] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(csum & 0xff);
}

std::optional<IcmpHeader> IcmpHeader::parse(std::span<const std::uint8_t> d) {
  if (d.size() < kWireBytes) return std::nullopt;
  if (internetChecksum(d.subspan(0, kWireBytes)) != 0) return std::nullopt;
  IcmpHeader h;
  h.type = d[0];
  h.code = d[1];
  h.ident = get16(d, 4);
  h.seq = get16(d, 6);
  return h;
}

void OpenVpnHeader::serialize(std::vector<std::uint8_t>& out) const {
  put8(out, opcode);
  put32(out, session_id);
  for (int i = 0; i < 16; ++i) put8(out, 0);  // HMAC bytes (not computed)
}

std::optional<OpenVpnHeader> OpenVpnHeader::parse(std::span<const std::uint8_t> d) {
  if (d.size() < kWireBytes) return std::nullopt;
  OpenVpnHeader h;
  h.opcode = d[0];
  h.session_id = get32(d, 1);
  return h;
}

}  // namespace vini::packet
