#include "packet/checksum.h"

namespace vini::packet {

std::uint16_t onesComplementSum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internetChecksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~onesComplementSum(data));
}

std::uint16_t incrementalChecksumUpdate(std::uint16_t old_checksum,
                                        std::uint16_t old_word,
                                        std::uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t incrementalChecksumUpdate32(std::uint16_t old_checksum,
                                          std::uint32_t old_value,
                                          std::uint32_t new_value) {
  std::uint16_t c = old_checksum;
  c = incrementalChecksumUpdate(c, static_cast<std::uint16_t>(old_value >> 16),
                                static_cast<std::uint16_t>(new_value >> 16));
  c = incrementalChecksumUpdate(c, static_cast<std::uint16_t>(old_value & 0xffff),
                                static_cast<std::uint16_t>(new_value & 0xffff));
  return c;
}

}  // namespace vini::packet
