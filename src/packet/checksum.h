// The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The NAPT element must rewrite addresses/ports and patch checksums the
// way a real translator does; the incremental form is what production
// NATs use so a full-packet recompute is not needed per translation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace vini::packet {

/// One's-complement sum over a byte range, folded to 16 bits (not inverted).
std::uint16_t onesComplementSum(std::span<const std::uint8_t> data);

/// Full Internet checksum: invert the folded one's-complement sum.
std::uint16_t internetChecksum(std::span<const std::uint8_t> data);

/// RFC 1624 incremental update: given the old checksum and a 16-bit field
/// change old_word -> new_word, return the new checksum.
std::uint16_t incrementalChecksumUpdate(std::uint16_t old_checksum,
                                        std::uint16_t old_word,
                                        std::uint16_t new_word);

/// Incremental update for a 32-bit field (e.g. an IPv4 address).
std::uint16_t incrementalChecksumUpdate32(std::uint16_t old_checksum,
                                          std::uint32_t old_value,
                                          std::uint32_t new_value);

}  // namespace vini::packet
