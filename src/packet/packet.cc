#include "packet/packet.h"

#include <sstream>

namespace vini::packet {

Packet Packet::udp(IpAddress src, IpAddress dst, std::uint16_t sport,
                   std::uint16_t dport, std::size_t payload_bytes) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kUdp;
  UdpHeader u;
  u.src_port = sport;
  u.dst_port = dport;
  u.length = static_cast<std::uint16_t>(UdpHeader::kWireBytes + payload_bytes);
  p.l4 = u;
  p.payload_bytes = payload_bytes;
  return p;
}

Packet Packet::tcp(IpAddress src, IpAddress dst, const TcpHeader& header,
                   std::size_t payload_bytes) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kTcp;
  p.l4 = header;
  p.payload_bytes = payload_bytes;
  return p;
}

Packet Packet::icmpEchoRequest(IpAddress src, IpAddress dst, std::uint16_t ident,
                               std::uint16_t seq, std::size_t payload_bytes) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kIcmp;
  IcmpHeader h;
  h.type = IcmpHeader::kEchoRequest;
  h.ident = ident;
  h.seq = seq;
  p.l4 = h;
  p.payload_bytes = payload_bytes;
  return p;
}

Packet Packet::icmpEchoReply(const Packet& request) {
  Packet p = request;
  p.ip.src = request.ip.dst;
  p.ip.dst = request.ip.src;
  p.ip.ttl = 64;
  if (auto* icmp = p.icmpHeader()) icmp->type = IcmpHeader::kEchoReply;
  return p;
}

Packet Packet::icmpError(IpAddress reporter, std::uint8_t type,
                         std::uint8_t code, const Packet& original) {
  Packet p;
  p.ip.src = reporter;
  p.ip.dst = original.ip.src;
  p.ip.proto = IpProto::kIcmp;
  IcmpHeader h;
  h.type = type;
  h.code = code;
  p.l4 = h;
  p.payload_bytes = Ipv4Header::kWireBytes + 8;  // quoted original
  p.meta = original.meta;  // lets the prober match the error to its probe
  // The original's causal trace ended at whatever drop produced this
  // error; the error packet starts an untraced journey of its own.
  // Inheriting the trace id here would splice the error's hops into the
  // dead packet's span tree.
  p.meta.trace_id = 0;
  return p;
}

Packet Packet::encapsulateUdp(IpAddress src, IpAddress dst, std::uint16_t sport,
                              std::uint16_t dport, PacketPtr inner,
                              std::size_t extra_bytes) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kUdp;
  p.inner = std::move(inner);
  p.encap_extra_bytes = extra_bytes;
  if (p.inner) p.meta = p.inner->meta;  // measurement metadata rides along
  UdpHeader u;
  u.src_port = sport;
  u.dst_port = dport;
  u.length = static_cast<std::uint16_t>(UdpHeader::kWireBytes + extra_bytes +
                                        (p.inner ? p.inner->ipPacketBytes() : 0));
  p.l4 = u;
  return p;
}

std::size_t Packet::l4HeaderBytes() const {
  if (isUdp()) return UdpHeader::kWireBytes;
  if (isTcp()) return TcpHeader::kWireBytes;
  if (isIcmp()) return IcmpHeader::kWireBytes;
  return 0;
}

std::size_t Packet::l4PayloadBytes() const {
  std::size_t n = encap_extra_bytes;
  if (inner) {
    n += inner->ipPacketBytes();
  } else if (app) {
    n += app->sizeBytes();
  } else {
    n += payload_bytes;
  }
  return n;
}

std::size_t Packet::ipPacketBytes() const {
  return Ipv4Header::kWireBytes + l4HeaderBytes() + l4PayloadBytes();
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  Ipv4Header h = ip;
  h.total_length = static_cast<std::uint16_t>(ipPacketBytes());
  h.serialize(out);
  std::visit(
      [&out](const auto& l4h) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(l4h)>, std::monostate>) {
          l4h.serialize(out);
        }
      },
      l4);
  out.insert(out.end(), encap_extra_bytes, 0);
  if (inner) {
    const auto nested = inner->serialize();
    out.insert(out.end(), nested.begin(), nested.end());
  } else if (app) {
    out.insert(out.end(), app->sizeBytes(), 0);
  } else {
    out.insert(out.end(), payload_bytes, 0);
  }
  return out;
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> data) {
  auto ip = Ipv4Header::parse(data);
  if (!ip) return std::nullopt;
  if (ip->total_length > data.size()) return std::nullopt;
  Packet p;
  p.ip = *ip;
  auto rest = data.subspan(Ipv4Header::kWireBytes,
                           ip->total_length - Ipv4Header::kWireBytes);
  switch (ip->proto) {
    case IpProto::kUdp: {
      auto u = UdpHeader::parse(rest);
      if (!u) return std::nullopt;
      p.l4 = *u;
      p.payload_bytes = rest.size() - UdpHeader::kWireBytes;
      break;
    }
    case IpProto::kTcp: {
      auto t = TcpHeader::parse(rest);
      if (!t) return std::nullopt;
      p.l4 = *t;
      p.payload_bytes = rest.size() - TcpHeader::kWireBytes;
      break;
    }
    case IpProto::kIcmp: {
      auto i = IcmpHeader::parse(rest);
      if (!i) return std::nullopt;
      p.l4 = *i;
      p.payload_bytes = rest.size() - IcmpHeader::kWireBytes;
      break;
    }
    default:
      p.payload_bytes = rest.size();
      break;
  }
  return p;
}

std::string Packet::summary() const {
  std::ostringstream os;
  os << ip.src << " > " << ip.dst << " ";
  if (const auto* u = udpHeader()) {
    os << "udp " << u->src_port << ">" << u->dst_port;
  } else if (const auto* t = tcpHeader()) {
    os << "tcp " << t->src_port << ">" << t->dst_port << " " << t->flags.str()
       << " seq " << t->seq << " ack " << t->ack << " win " << t->window;
  } else if (const auto* i = icmpHeader()) {
    os << "icmp " << (i->type == IcmpHeader::kEchoRequest ? "echo-req" : "echo-rep")
       << " seq " << i->seq;
  } else {
    os << "proto " << static_cast<int>(ip.proto);
  }
  os << " " << l4PayloadBytes() << "b";
  if (inner) os << " [encap: " << inner->summary() << "]";
  return os.str();
}

}  // namespace vini::packet
