// Protocol headers.
//
// Packets in the simulation carry structured headers (fast to copy and
// inspect), but each header also has a faithful wire encoding used by the
// serialization layer: byte-accurate field layout and Internet checksums.
// This keeps sizes honest (link serialization delay, MTU accounting) and
// lets the NAPT element patch checksums exactly as a real box would.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/ip_address.h"

namespace vini::packet {

/// IP protocol numbers used by the system.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kOspf = 89,
};

/// Ethernet framing constants. The virtual Ethernet devices (UML-style)
/// and the physical NICs both frame packets; links additionally charge
/// preamble + interframe gap when computing serialization time.
inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kEthernetFcsBytes = 4;
inline constexpr std::size_t kEthernetPreambleAndGapBytes = 20;
inline constexpr std::size_t kEthernetOverheadOnWire =
    kEthernetHeaderBytes + kEthernetFcsBytes + kEthernetPreambleAndGapBytes;
inline constexpr std::size_t kDefaultMtu = 1500;

/// IPv4 header (options unsupported; IHL fixed at 5).
struct Ipv4Header {
  IpAddress src;
  IpAddress dst;
  IpProto proto = IpProto::kUdp;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  std::uint16_t total_length = 0;  // filled in by serialization / senders

  static constexpr std::size_t kWireBytes = 20;

  /// Serialize with a correct header checksum.
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Parse; returns nullopt on truncation, bad version, or bad checksum.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);
};

/// UDP header. `length` covers header + payload.
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;

  static constexpr std::size_t kWireBytes = 8;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> data);
};

/// TCP flag bits (subset the stack uses).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::uint8_t toByte() const;
  static TcpFlags fromByte(std::uint8_t b);
  std::string str() const;
  bool operator==(const TcpFlags&) const = default;
};

/// TCP header (no options on the wire; MSS is negotiated out of band by
/// the stack, as the simulation's connections share one MTU domain).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;

  static constexpr std::size_t kWireBytes = 20;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> data);
};

/// ICMP header: echo request/reply (ping) plus the error messages
/// traceroute depends on (time exceeded, destination unreachable).
struct IcmpHeader {
  std::uint8_t type = 8;  // 8 = echo request, 0 = echo reply
  std::uint8_t code = 0;
  std::uint16_t ident = 0;
  std::uint16_t seq = 0;

  static constexpr std::size_t kWireBytes = 8;
  static constexpr std::uint8_t kEchoRequest = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kDestUnreachable = 3;
  static constexpr std::uint8_t kTimeExceeded = 11;
  static constexpr std::uint8_t kCodePortUnreachable = 3;
  static constexpr std::uint8_t kCodeTtlExpired = 0;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<IcmpHeader> parse(std::span<const std::uint8_t> data);
};

/// OpenVPN-style encapsulation header: opcode + session id + HMAC.
/// We model the bytes (the paper's ingress tunnels add real overhead) but
/// not the cryptography, which is irrelevant to the evaluation.
struct OpenVpnHeader {
  std::uint8_t opcode = 0x30;       // P_DATA_V1-like
  std::uint32_t session_id = 0;
  static constexpr std::size_t kWireBytes = 1 + 4 + 16;  // opcode, session, HMAC

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<OpenVpnHeader> parse(std::span<const std::uint8_t> data);
};

}  // namespace vini::packet
