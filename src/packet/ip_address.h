// IPv4 addresses and prefixes.
//
// Every address in the system — underlay node addresses, the 10.0.0.0/8
// private space the paper assigns to each slice's overlay, the /30 subnets
// numbering virtual link endpoints — is an IpAddress, and routing operates
// on Prefix (address + mask length) with longest-prefix-match semantics.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>

namespace vini::packet {

/// An IPv4 address in host byte order.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t value) : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<IpAddress> parse(const std::string& text);

  /// Parse dotted-quad notation; throws std::invalid_argument on error.
  /// Convenience for literals in topology definitions.
  static IpAddress mustParse(const std::string& text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool isZero() const { return value_ == 0; }

  std::string str() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, IpAddress addr);

/// An IPv4 prefix: address plus mask length (0-32).
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(IpAddress addr, int length);

  /// Parse "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Prefix> parse(const std::string& text);
  static Prefix mustParse(const std::string& text);

  /// The default route 0.0.0.0/0.
  static constexpr Prefix defaultRoute() { return Prefix{}; }

  IpAddress address() const { return addr_; }
  int length() const { return length_; }
  std::uint32_t mask() const;

  /// True if `addr` falls inside this prefix.
  bool contains(IpAddress addr) const;

  /// True if `other` is fully contained in this prefix.
  bool covers(const Prefix& other) const;

  /// The n-th host address within the prefix (n=0 is the network address).
  IpAddress hostAt(std::uint32_t n) const;

  std::string str() const;

  auto operator<=>(const Prefix&) const = default;

 private:
  IpAddress addr_;  // stored canonicalized: host bits zeroed
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& p);

}  // namespace vini::packet

template <>
struct std::hash<vini::packet::IpAddress> {
  std::size_t operator()(vini::packet::IpAddress a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<vini::packet::Prefix> {
  std::size_t operator()(const vini::packet::Prefix& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.address().value()) * 33 +
           static_cast<std::size_t>(p.length());
  }
};
