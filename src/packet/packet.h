// The Packet value type.
//
// A Packet is an IPv4 packet with one optional transport header and either
// an opaque payload length, a structured application payload (used by the
// control-plane protocols riding inside the overlay), or a nested inner
// packet (tunnel encapsulation: the overlay's UDP tunnels and the OpenVPN
// ingress wrap whole IP packets as UDP payload, exactly as in Figure 2 of
// the paper).  Packets are cheap to copy; nested packets are shared and
// immutable once encapsulated.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "packet/headers.h"
#include "packet/ip_address.h"
#include "sim/time.h"

namespace vini::packet {

/// Base for structured in-simulation payloads (routing protocol messages).
/// sizeBytes() must report the message's honest wire size so that links
/// and CPU models charge control traffic correctly.
struct AppPayload {
  virtual ~AppPayload() = default;
  virtual std::size_t sizeBytes() const = 0;
  virtual std::string describe() const { return "payload"; }
};

/// Measurement metadata carried alongside a packet (not on the wire).
struct PacketMeta {
  sim::Time app_send_time = -1;  ///< stamped by traffic sources for RTT/jitter
  std::uint64_t flow_id = 0;     ///< traffic source identifier
  std::uint64_t app_seq = 0;     ///< per-flow sequence number (loss detection)
  int slice_id = -1;             ///< owning slice, for VNET-style accounting
  /// Causal-tracing id assigned at ingress when an obs context is
  /// installed; 0 = untraced.  Only the obs span tracker ever reads it,
  /// so carrying it cannot perturb the simulation.
  std::uint64_t trace_id = 0;

  // Click-style annotations: set and consumed inside a router graph
  // (LookupIPRoute -> EncapTable -> ToSocket); never on the wire.
  IpAddress next_hop;            ///< chosen by the FIB lookup
  IpAddress encap_dst;           ///< tunnel endpoint (underlay address)
  std::uint16_t encap_port = 0;  ///< tunnel UDP port
};

class Packet;
using PacketPtr = std::shared_ptr<const Packet>;

class Packet {
 public:
  using L4 = std::variant<std::monostate, UdpHeader, TcpHeader, IcmpHeader>;

  Ipv4Header ip;
  L4 l4;
  /// Opaque payload size; ignored when `inner` or `app` is set.
  std::size_t payload_bytes = 0;
  /// Structured payload (routing messages); contributes sizeBytes().
  std::shared_ptr<const AppPayload> app;
  /// Encapsulated packet (tunnelling); contributes its full IP size.
  PacketPtr inner;
  /// Extra encapsulation bytes between L4 and inner (e.g. OpenVPN header).
  std::size_t encap_extra_bytes = 0;
  PacketMeta meta;

  // -- Constructors for the common shapes ---------------------------------

  static Packet udp(IpAddress src, IpAddress dst, std::uint16_t sport,
                    std::uint16_t dport, std::size_t payload_bytes);
  static Packet tcp(IpAddress src, IpAddress dst, const TcpHeader& header,
                    std::size_t payload_bytes);
  static Packet icmpEchoRequest(IpAddress src, IpAddress dst, std::uint16_t ident,
                                std::uint16_t seq, std::size_t payload_bytes);
  static Packet icmpEchoReply(const Packet& request);

  /// ICMP error (time exceeded, destination unreachable) about
  /// `original`, sourced from `reporter`.  Carries the original packet's
  /// measurement metadata so probes (traceroute) can be correlated, and
  /// the conventional "IP header + 8 bytes" of quoted payload.  The
  /// causal trace id is NOT inherited — the error is a new, untraced
  /// packet; call sites must not rely on clearing it themselves.
  static Packet icmpError(IpAddress reporter, std::uint8_t type,
                          std::uint8_t code, const Packet& original);

  /// Wrap `inner` in a UDP tunnel packet between two underlay endpoints.
  static Packet encapsulateUdp(IpAddress src, IpAddress dst, std::uint16_t sport,
                               std::uint16_t dport, PacketPtr inner,
                               std::size_t extra_bytes = 0);

  // -- Accessors -----------------------------------------------------------

  bool isUdp() const { return std::holds_alternative<UdpHeader>(l4); }
  bool isTcp() const { return std::holds_alternative<TcpHeader>(l4); }
  bool isIcmp() const { return std::holds_alternative<IcmpHeader>(l4); }

  const UdpHeader* udpHeader() const { return std::get_if<UdpHeader>(&l4); }
  const TcpHeader* tcpHeader() const { return std::get_if<TcpHeader>(&l4); }
  const IcmpHeader* icmpHeader() const { return std::get_if<IcmpHeader>(&l4); }
  UdpHeader* udpHeader() { return std::get_if<UdpHeader>(&l4); }
  TcpHeader* tcpHeader() { return std::get_if<TcpHeader>(&l4); }
  IcmpHeader* icmpHeader() { return std::get_if<IcmpHeader>(&l4); }

  /// Size of the transport header, if any.
  std::size_t l4HeaderBytes() const;

  /// Payload size as seen by L4 (inner packet size, app size, or raw bytes).
  std::size_t l4PayloadBytes() const;

  /// Total IP packet size: IP header + L4 header + payload.
  std::size_t ipPacketBytes() const;

  /// Bytes occupied on an Ethernet wire (adds framing, preamble, gap).
  /// This is what links use to compute serialization time.
  std::size_t wireBytes() const {
    return ipPacketBytes() + kEthernetOverheadOnWire;
  }

  /// Serialize the full packet (recursively for tunnels) to wire bytes.
  /// The structured `app` payload serializes as zero padding of its size.
  std::vector<std::uint8_t> serialize() const;

  /// Parse a packet previously produced by serialize().  Structured
  /// payloads do not round-trip (they come back as opaque bytes).
  static std::optional<Packet> parse(std::span<const std::uint8_t> data);

  /// One-line human-readable summary ("10.1.1.2 > 10.1.2.3 udp 1430b").
  std::string summary() const;
};

}  // namespace vini::packet
