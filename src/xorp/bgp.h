// BGP and the VINI BGP multiplexer.
//
// BgpProcess is a compact BGP speaker: peering sessions with message
// delay, full-table exchange at session establishment, UPDATE/WITHDRAW
// propagation with AS-path loop detection, the standard decision process
// (local-pref, then AS-path length, then lowest peer id), and RIB
// installation.
//
// BgpMultiplexer is the Section 6.1 contribution: external networks will
// not maintain a session per experiment, so VINI interposes a
// multiplexer that (a) shares one external session among all slices,
// (b) filters each slice's announcements to its allocated sub-block of
// VINI's address space, and (c) rate-limits the update stream each
// experiment may push toward the real Internet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "xorp/messages.h"
#include "xorp/rib.h"

namespace vini::xorp {

class BgpProcess;

struct BgpConfig {
  std::uint32_t asn = 0;
  RouterId router_id = 0;
  std::string name = "bgp";
};

struct BgpStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t announcements_received = 0;
  std::uint64_t withdrawals_received = 0;
  std::uint64_t loops_rejected = 0;
};

class BgpProcess {
 public:
  /// A policy filter: may modify the route; returns false to reject it.
  using Filter = std::function<bool(BgpRoute&)>;

  /// `rib` may be null for pure transit speakers (e.g. inside the mux).
  BgpProcess(sim::EventQueue& queue, Rib* rib, BgpConfig config);
  ~BgpProcess();

  BgpProcess(const BgpProcess&) = delete;
  BgpProcess& operator=(const BgpProcess&) = delete;

  /// Establish a symmetric session between two speakers with one-way
  /// message `delay`.  Both sides exchange their current best routes.
  static void connect(BgpProcess& a, BgpProcess& b,
                      sim::Duration delay = sim::kMillisecond);

  /// Tear down the session with `peer`: both sides flush routes learned
  /// from the other (models an experiment-induced session reset — the
  /// stability hazard Section 3.4 worries about).
  void disconnect(BgpProcess& peer);

  /// Originate / stop originating a prefix from this AS.
  void originate(const packet::Prefix& prefix);
  void withdrawOrigin(const packet::Prefix& prefix);

  // -- Process lifecycle (fault injection) ---------------------------------
  //
  // A speaker is born running.  stop() models a daemon crash: peers flush
  // everything learned from it (session death is detected instantly —
  // there is no hold-timer model), its Adj-RIB-In, Loc-RIB, and RIB
  // entries are discarded, and in-flight messages to it are dropped.
  // start() re-originates the configured prefixes and re-synchronizes
  // full tables with every configured peer, as a fresh session would.
  void stop();
  void start();
  bool running() const { return running_; }

  /// Set an export (toward `peer`) or import (from `peer`) policy filter.
  void setExportFilter(const BgpProcess& peer, Filter filter);
  void setImportFilter(const BgpProcess& peer, Filter filter);

  // -- Introspection -----------------------------------------------------------

  std::optional<BgpRoute> bestRoute(const packet::Prefix& prefix) const;
  std::vector<packet::Prefix> knownPrefixes() const;
  std::size_t sessionCount() const { return peers_.size(); }
  /// Prefixes this AS is configured to originate (checkpointable: they
  /// are the only BGP state that must survive a migration — Adj-RIB-In
  /// re-fills from the full-table exchange start() performs).
  const std::vector<packet::Prefix>& origins() const { return origins_; }
  /// Replace the configured originations while stopped (live-migration
  /// restore).  Throws if the speaker is running.
  void restoreOrigins(std::vector<packet::Prefix> origins);
  const BgpStats& stats() const { return stats_; }
  const BgpConfig& config() const { return config_; }

 private:
  struct Peer {
    BgpProcess* remote = nullptr;
    sim::Duration delay = 0;
    Filter export_filter;
    Filter import_filter;
  };
  struct RouteEntry {
    BgpRoute route;
    BgpProcess* learned_from = nullptr;  ///< nullptr = locally originated
  };

  void sendUpdate(Peer& peer, BgpUpdate update);
  void receiveUpdate(BgpProcess* from, const BgpUpdate& update);
  /// Drop every candidate learned from `from` and re-run the decision
  /// process on the affected prefixes (session teardown / peer crash).
  void flushRoutesFrom(BgpProcess* from);
  void runDecision(const packet::Prefix& prefix);
  void advertiseBest(const packet::Prefix& prefix);
  void sendFullTable(Peer& peer);
  Peer* findPeer(const BgpProcess* p);

  sim::EventQueue& queue_;
  Rib* rib_;
  BgpConfig config_;
  std::string timeline_track_;
  bool running_ = true;
  std::vector<Peer> peers_;
  /// Prefixes this AS is configured to originate; survive stop()/start().
  std::vector<packet::Prefix> origins_;
  /// All candidate routes per prefix (Adj-RIB-In + local originations).
  std::map<packet::Prefix, std::vector<RouteEntry>> candidates_;
  /// Current best per prefix, as last advertised.
  std::map<packet::Prefix, BgpRoute> best_;
  BgpStats stats_;
  // Observability handles, registered at construction (null when no obs
  // context is installed).
  obs::Counter* m_updates_sent_ = nullptr;
  obs::Counter* m_updates_received_ = nullptr;
  obs::Counter* m_loops_rejected_ = nullptr;

  friend class BgpMultiplexer;
};

/// Shares one external BGP session among many per-slice speakers.
class BgpMultiplexer {
 public:
  struct Config {
    /// VINI's allocated block; every slice allocation must fall inside.
    packet::Prefix vini_block;
    /// Maximum updates per second each slice may propagate externally.
    double updates_per_second = 1.0;
    double burst = 5.0;
  };

  BgpMultiplexer(sim::EventQueue& queue, BgpConfig mux_config, Config config);

  /// The mux's single external-facing speaker; peer it with the
  /// neighboring domain's router via BgpProcess::connect.
  BgpProcess& externalSpeaker() { return *external_; }

  /// Attach a slice's BGP speaker; its announcements are filtered to
  /// `allocation` (must be inside the VINI block) and rate-limited.
  /// Returns false if the allocation is invalid or overlaps another's.
  bool registerSlice(BgpProcess& slice, const packet::Prefix& allocation);

  std::uint64_t filteredAnnouncements() const { return filtered_; }
  std::uint64_t rateLimited() const { return rate_limited_; }
  std::size_t sliceCount() const { return allocations_.size(); }

 private:
  bool allowFromSlice(const BgpProcess* slice, const BgpRoute& route);
  bool takeToken(const BgpProcess* slice);

  sim::EventQueue& queue_;
  Config config_;
  std::unique_ptr<BgpProcess> external_;
  std::map<const BgpProcess*, packet::Prefix> allocations_;
  struct Bucket {
    double tokens = 0;
    sim::Time last = 0;
  };
  std::map<const BgpProcess*, Bucket> buckets_;
  std::uint64_t filtered_ = 0;
  std::uint64_t rate_limited_ = 0;
};

}  // namespace vini::xorp
