// XorpInstance: one routing-daemon bundle per virtual node.
//
// Mirrors what "XORP, running unmodified in a UML kernel process" is in
// PL-VINI: the RIB, the enabled protocol processes, and the dispatch of
// control packets arriving from the virtual interfaces.  The FEA (set on
// the RIB) is provided by the overlay layer, which programs the Click
// FIB from RIB changes.
#pragma once

#include <memory>
#include <vector>

#include "cpu/scheduler.h"
#include "sim/event_queue.h"
#include "xorp/bgp.h"
#include "xorp/ospf.h"
#include "xorp/rib.h"
#include "xorp/rip.h"
#include "xorp/vif.h"

namespace vini::xorp {

class XorpInstance {
 public:
  /// `process` is the CPU context the daemon's work is charged to (may
  /// be null on dedicated hardware).
  XorpInstance(sim::EventQueue& queue, RouterId router_id,
               cpu::Process* process = nullptr);
  ~XorpInstance();

  XorpInstance(const XorpInstance&) = delete;
  XorpInstance& operator=(const XorpInstance&) = delete;

  RouterId routerId() const { return router_id_; }
  Rib& rib() { return rib_; }

  OspfProcess& enableOspf(OspfConfig config = {});
  RipProcess& enableRip(RipConfig config = {});
  BgpProcess& enableBgp(BgpConfig config = {});

  OspfProcess* ospf() { return ospf_.get(); }
  RipProcess* rip() { return rip_.get(); }
  BgpProcess* bgp() { return bgp_.get(); }

  /// Register a virtual interface: adds its /30 as a connected route and
  /// attaches it to the enabled IGPs (`ospf_cost` applies if OSPF is on).
  void registerVif(Vif& vif, std::uint32_t ospf_cost = 1, bool with_rip = false);

  /// Start all enabled protocols.
  void start();
  void stop();

  /// Entry point for control-plane packets from a virtual interface.
  /// Dispatches by protocol: IP proto 89 -> OSPF, UDP/520 -> RIP.
  void receiveControl(Vif& vif, const packet::Packet& p);

 private:
  sim::EventQueue& queue_;
  RouterId router_id_;
  cpu::Process* process_;
  Rib rib_;
  std::unique_ptr<OspfProcess> ospf_;
  std::unique_ptr<RipProcess> rip_;
  std::unique_ptr<BgpProcess> bgp_;
  std::vector<Vif*> vifs_;
};

}  // namespace vini::xorp
