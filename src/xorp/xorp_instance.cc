#include "xorp/xorp_instance.h"

namespace vini::xorp {

XorpInstance::XorpInstance(sim::EventQueue& queue, RouterId router_id,
                           cpu::Process* process)
    : queue_(queue), router_id_(router_id), process_(process) {}

XorpInstance::~XorpInstance() = default;

OspfProcess& XorpInstance::enableOspf(OspfConfig config) {
  config.router_id = router_id_;
  ospf_ = std::make_unique<OspfProcess>(queue_, rib_, config, process_,
                                        1000 + router_id_);
  return *ospf_;
}

RipProcess& XorpInstance::enableRip(RipConfig config) {
  rip_ = std::make_unique<RipProcess>(queue_, rib_, config, process_,
                                      2000 + router_id_);
  return *rip_;
}

BgpProcess& XorpInstance::enableBgp(BgpConfig config) {
  if (config.router_id == 0) config.router_id = router_id_;
  bgp_ = std::make_unique<BgpProcess>(queue_, &rib_, config);
  return *bgp_;
}

void XorpInstance::registerVif(Vif& vif, std::uint32_t ospf_cost, bool with_rip) {
  vifs_.push_back(&vif);
  RibRoute connected;
  connected.prefix = vif.subnet();
  connected.origin = RouteOrigin::kConnected;
  connected.protocol = "connected";
  rib_.addRoute(connected);
  if (ospf_) ospf_->addInterface(vif, ospf_cost);
  if (rip_ && with_rip) rip_->addInterface(vif);
}

void XorpInstance::start() {
  if (ospf_) ospf_->start();
  if (rip_) rip_->start();
  if (bgp_) bgp_->start();
}

void XorpInstance::stop() {
  if (ospf_) ospf_->stop();
  if (rip_) rip_->stop();
  if (bgp_) bgp_->stop();
}

void XorpInstance::receiveControl(Vif& vif, const packet::Packet& p) {
  if (p.ip.proto == packet::IpProto::kOspf) {
    if (ospf_) ospf_->receive(vif, p);
    return;
  }
  if (const auto* udp = p.udpHeader(); udp && udp->dst_port == kRipPort) {
    if (rip_) rip_->receive(vif, p);
    return;
  }
}

}  // namespace vini::xorp
