#include "xorp/bgp.h"

#include <algorithm>
#include <stdexcept>

namespace vini::xorp {

BgpProcess::BgpProcess(sim::EventQueue& queue, Rib* rib, BgpConfig config)
    : queue_(queue), rib_(rib), config_(std::move(config)) {
  timeline_track_ = "bgp/" + config_.name;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    m_updates_sent_ =
        &ctx->metrics.counter("xorp.bgp", config_.name, "updates_sent");
    m_updates_received_ =
        &ctx->metrics.counter("xorp.bgp", config_.name, "updates_received");
    m_loops_rejected_ =
        &ctx->metrics.counter("xorp.bgp", config_.name, "loops_rejected");
  }
}

BgpProcess::~BgpProcess() = default;

void BgpProcess::connect(BgpProcess& a, BgpProcess& b, sim::Duration delay) {
  a.peers_.push_back(Peer{&b, delay, nullptr, nullptr});
  b.peers_.push_back(Peer{&a, delay, nullptr, nullptr});
  a.sendFullTable(a.peers_.back());
  b.sendFullTable(b.peers_.back());
}

void BgpProcess::disconnect(BgpProcess& peer) {
  auto drop = [](BgpProcess& self, BgpProcess& other) {
    self.peers_.erase(std::remove_if(self.peers_.begin(), self.peers_.end(),
                                     [&](const Peer& p) { return p.remote == &other; }),
                      self.peers_.end());
    // Flush everything learned from the dead session.
    self.flushRoutesFrom(&other);
  };
  drop(*this, peer);
  drop(peer, *this);
}

void BgpProcess::flushRoutesFrom(BgpProcess* from) {
  std::vector<packet::Prefix> affected;
  for (auto& [prefix, entries] : candidates_) {
    const auto before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const RouteEntry& e) {
                                   return e.learned_from == from;
                                 }),
                  entries.end());
    if (entries.size() != before) affected.push_back(prefix);
  }
  for (const auto& prefix : affected) runDecision(prefix);
}

void BgpProcess::restoreOrigins(std::vector<packet::Prefix> origins) {
  if (running_) {
    throw std::runtime_error("bgp restoreOrigins requires a stopped speaker");
  }
  origins_ = std::move(origins);
}

void BgpProcess::stop() {
  if (!running_) return;
  running_ = false;
  // Peers notice the session die and flush — the same path a session
  // reset takes, but the peerings themselves stay configured so start()
  // can bring them back.
  for (auto& peer : peers_) peer.remote->flushRoutesFrom(this);
  candidates_.clear();
  best_.clear();
  if (rib_) rib_->removeAllFrom(config_.name);
}

void BgpProcess::start() {
  if (running_) return;
  running_ = true;
  for (const auto& prefix : origins_) originate(prefix);
  // Re-establish every configured session: exchange full tables both ways.
  for (auto& peer : peers_) {
    sendFullTable(peer);
    if (Peer* back = peer.remote->findPeer(this)) {
      peer.remote->sendFullTable(*back);
    }
  }
}

void BgpProcess::originate(const packet::Prefix& prefix) {
  if (std::find(origins_.begin(), origins_.end(), prefix) == origins_.end()) {
    origins_.push_back(prefix);
  }
  BgpRoute route;
  route.prefix = prefix;
  route.next_hop = packet::IpAddress(config_.router_id);
  auto& entries = candidates_[prefix];
  for (const auto& e : entries) {
    if (e.learned_from == nullptr) return;  // already originated
  }
  entries.push_back(RouteEntry{route, nullptr});
  runDecision(prefix);
}

void BgpProcess::withdrawOrigin(const packet::Prefix& prefix) {
  origins_.erase(std::remove(origins_.begin(), origins_.end(), prefix),
                 origins_.end());
  auto it = candidates_.find(prefix);
  if (it == candidates_.end()) return;
  auto& entries = it->second;
  const auto before = entries.size();
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const RouteEntry& e) {
                                 return e.learned_from == nullptr;
                               }),
                entries.end());
  if (entries.size() != before) runDecision(prefix);
}

void BgpProcess::setExportFilter(const BgpProcess& peer, Filter filter) {
  if (Peer* p = findPeer(&peer)) p->export_filter = std::move(filter);
}

void BgpProcess::setImportFilter(const BgpProcess& peer, Filter filter) {
  if (Peer* p = findPeer(&peer)) p->import_filter = std::move(filter);
}

BgpProcess::Peer* BgpProcess::findPeer(const BgpProcess* p) {
  for (auto& peer : peers_) {
    if (peer.remote == p) return &peer;
  }
  return nullptr;
}

void BgpProcess::sendFullTable(Peer& peer) {
  BgpUpdate update;
  for (const auto& [prefix, route] : best_) update.announcements.push_back(route);
  sendUpdate(peer, std::move(update));
}

void BgpProcess::sendUpdate(Peer& peer, BgpUpdate update) {
  if (!running_) return;
  // Apply export policy and next-hop-self / AS-path prepending.
  BgpUpdate out;
  out.withdrawals = update.withdrawals;
  for (BgpRoute route : update.announcements) {
    if (peer.remote->config_.asn != config_.asn) {
      route.as_path.insert(route.as_path.begin(), config_.asn);
    }
    route.next_hop = packet::IpAddress(config_.router_id);
    if (peer.export_filter && !peer.export_filter(route)) continue;
    out.announcements.push_back(std::move(route));
  }
  if (out.announcements.empty() && out.withdrawals.empty()) return;
  ++stats_.updates_sent;
  VINI_OBS_INC(m_updates_sent_);
  VINI_OBS_TIMELINE_INSTANT(timeline_track_, "update_send", queue_.now());
  BgpProcess* remote = peer.remote;
  BgpProcess* self = this;
  queue_.scheduleAfter(peer.delay, "xorp.bgp",
                       [remote, self, out = std::move(out)] {
    remote->receiveUpdate(self, out);
  });
}

void BgpProcess::receiveUpdate(BgpProcess* from, const BgpUpdate& update) {
  if (!running_) return;  // a dead daemon hears nothing
  Peer* peer = findPeer(from);
  if (!peer) return;  // session torn down while the update was in flight
  ++stats_.updates_received;
  VINI_OBS_INC(m_updates_received_);

  for (BgpRoute route : update.announcements) {
    ++stats_.announcements_received;
    if (route.hasLoop(config_.asn)) {
      ++stats_.loops_rejected;
      VINI_OBS_INC(m_loops_rejected_);
      continue;
    }
    if (peer->import_filter && !peer->import_filter(route)) continue;
    auto& entries = candidates_[route.prefix];
    bool replaced = false;
    for (auto& e : entries) {
      if (e.learned_from == from) {
        e.route = route;
        replaced = true;
        break;
      }
    }
    if (!replaced) entries.push_back(RouteEntry{route, from});
    runDecision(route.prefix);
  }

  for (const auto& prefix : update.withdrawals) {
    ++stats_.withdrawals_received;
    auto it = candidates_.find(prefix);
    if (it == candidates_.end()) continue;
    auto& entries = it->second;
    const auto before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const RouteEntry& e) {
                                   return e.learned_from == from;
                                 }),
                  entries.end());
    if (entries.size() != before) runDecision(prefix);
  }
}

void BgpProcess::runDecision(const packet::Prefix& prefix) {
  const RouteEntry* best = nullptr;
  auto it = candidates_.find(prefix);
  if (it != candidates_.end()) {
    for (const auto& e : it->second) {
      if (!best) {
        best = &e;
        continue;
      }
      // Standard decision process (condensed).
      if (e.route.local_pref != best->route.local_pref) {
        if (e.route.local_pref > best->route.local_pref) best = &e;
        continue;
      }
      if (e.route.as_path.size() != best->route.as_path.size()) {
        if (e.route.as_path.size() < best->route.as_path.size()) best = &e;
        continue;
      }
      const RouterId eid = e.learned_from ? e.learned_from->config_.router_id : 0;
      const RouterId bid =
          best->learned_from ? best->learned_from->config_.router_id : 0;
      if (eid < bid) best = &e;
    }
  }

  auto current = best_.find(prefix);
  if (!best) {
    if (current != best_.end()) {
      best_.erase(current);
      if (rib_) rib_->removeRoute(config_.name, prefix);
      BgpUpdate withdraw;
      withdraw.withdrawals.push_back(prefix);
      for (auto& peer : peers_) sendUpdate(peer, withdraw);
    }
    return;
  }

  const bool changed =
      current == best_.end() ||
      current->second.next_hop != best->route.next_hop ||
      current->second.as_path != best->route.as_path ||
      current->second.local_pref != best->route.local_pref;
  if (!changed) return;

  best_[prefix] = best->route;
  if (rib_) {
    RibRoute rib_route;
    rib_route.prefix = prefix;
    rib_route.next_hop = best->route.next_hop;
    const bool external = !best->learned_from ||
                          best->learned_from->config_.asn != config_.asn;
    rib_route.origin = external ? RouteOrigin::kEbgp : RouteOrigin::kIbgp;
    rib_route.metric = static_cast<std::uint32_t>(best->route.as_path.size());
    rib_route.protocol = config_.name;
    rib_->addRoute(rib_route);
  }
  advertiseBest(prefix);
}

void BgpProcess::advertiseBest(const packet::Prefix& prefix) {
  auto it = best_.find(prefix);
  if (it == best_.end()) return;
  // Find who taught us this route, to honor the no-reflect rule.
  BgpProcess* learned_from = nullptr;
  if (auto cit = candidates_.find(prefix); cit != candidates_.end()) {
    for (const auto& e : cit->second) {
      if (e.route.next_hop == it->second.next_hop &&
          e.route.as_path == it->second.as_path) {
        learned_from = e.learned_from;
        break;
      }
    }
  }
  for (auto& peer : peers_) {
    if (peer.remote == learned_from) continue;
    BgpUpdate update;
    update.announcements.push_back(it->second);
    sendUpdate(peer, std::move(update));
  }
}

std::optional<BgpRoute> BgpProcess::bestRoute(const packet::Prefix& prefix) const {
  auto it = best_.find(prefix);
  if (it == best_.end()) return std::nullopt;
  return it->second;
}

std::vector<packet::Prefix> BgpProcess::knownPrefixes() const {
  std::vector<packet::Prefix> out;
  out.reserve(best_.size());
  for (const auto& [prefix, route] : best_) out.push_back(prefix);
  return out;
}

// ---------------------------------------------------------------------------
// BgpMultiplexer

BgpMultiplexer::BgpMultiplexer(sim::EventQueue& queue, BgpConfig mux_config,
                               Config config)
    : queue_(queue), config_(config) {
  external_ = std::make_unique<BgpProcess>(queue_, nullptr, mux_config);
}

bool BgpMultiplexer::registerSlice(BgpProcess& slice,
                                   const packet::Prefix& allocation) {
  if (!config_.vini_block.covers(allocation)) return false;
  for (const auto& [other, alloc] : allocations_) {
    if (alloc.covers(allocation) || allocation.covers(alloc)) return false;
  }
  allocations_[&slice] = allocation;
  buckets_[&slice] = Bucket{config_.burst, queue_.now()};

  BgpProcess::connect(slice, *external_);
  const BgpProcess* slice_ptr = &slice;
  external_->setImportFilter(slice, [this, slice_ptr](BgpRoute& route) {
    return allowFromSlice(slice_ptr, route);
  });
  return true;
}

bool BgpMultiplexer::allowFromSlice(const BgpProcess* slice, const BgpRoute& route) {
  auto it = allocations_.find(slice);
  if (it == allocations_.end() || !it->second.covers(route.prefix)) {
    ++filtered_;
    return false;
  }
  if (!takeToken(slice)) {
    ++rate_limited_;
    return false;
  }
  return true;
}

bool BgpMultiplexer::takeToken(const BgpProcess* slice) {
  Bucket& bucket = buckets_[slice];
  const sim::Time now = queue_.now();
  bucket.tokens = std::min(
      config_.burst,
      bucket.tokens + config_.updates_per_second * sim::toSeconds(now - bucket.last));
  bucket.last = now;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

}  // namespace vini::xorp
