// OSPF.
//
// A point-to-point OSPF implementing the mechanisms the Section 5.2
// experiment exercises: per-interface hello/dead timers (the experiment
// sets hello = 5 s, router-dead = 10 s), router-LSA origination, reliable
// flooding with sequence numbers, acknowledgments and retransmission,
// and full SPF (Dijkstra with the two-way connectivity check) feeding
// routes into the RIB.  Messages travel as packets over the virtual
// links, so failing a tunnel really silences hellos, the dead interval
// fires ~7 s later, new LSAs flood, and every node reconverges — the
// anatomy of Figure 8.
//
// If a cpu::Process is attached, all protocol work (sending hellos,
// handling messages, running SPF) is charged to it — a starved routing
// daemon sends hellos late, which is precisely the PlanetLab hazard
// Section 4.1.2 describes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cpu/scheduler.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "xorp/messages.h"
#include "xorp/rib.h"
#include "xorp/vif.h"

namespace vini::xorp {

struct OspfConfig {
  RouterId router_id = 0;
  sim::Duration hello_interval = 10 * sim::kSecond;
  sim::Duration dead_interval = 40 * sim::kSecond;
  sim::Duration rxmt_interval = 5 * sim::kSecond;
  /// Hold-down between an LSDB change and the SPF run.
  sim::Duration spf_delay = 100 * sim::kMillisecond;
  /// CPU costs charged to the attached process (reference machine).
  sim::Duration hello_cost = 30 * sim::kMicrosecond;
  sim::Duration message_cost = 60 * sim::kMicrosecond;
  sim::Duration spf_base_cost = 200 * sim::kMicrosecond;
  sim::Duration spf_per_lsa_cost = 20 * sim::kMicrosecond;
};

struct OspfStats {
  std::uint64_t hellos_sent = 0;
  std::uint64_t hellos_received = 0;
  std::uint64_t lsas_originated = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t spf_runs = 0;
  std::uint64_t neighbors_lost = 0;
};

enum class NeighborState { kDown, kInit, kFull };

class OspfProcess {
 public:
  /// `process` (optional) is the CPU context all work is charged to.
  /// `seed` staggers hello phases so routers do not fire in lockstep.
  OspfProcess(sim::EventQueue& queue, Rib& rib, OspfConfig config,
              cpu::Process* process = nullptr, std::uint64_t seed = 7);
  ~OspfProcess();

  OspfProcess(const OspfProcess&) = delete;
  OspfProcess& operator=(const OspfProcess&) = delete;

  /// Attach an interface with its OSPF cost (must precede start()).
  void addInterface(Vif& vif, std::uint32_t cost);

  /// Advertise a local stub prefix (e.g. the node's tap0 /32).
  void addStubPrefix(const packet::Prefix& prefix, std::uint32_t cost = 0);

  void start();
  void stop();
  bool running() const { return running_; }
  /// True when no timer owned by this process can still fire — the
  /// invariant a dead daemon must satisfy (chaos audit V123).
  bool timersQuiet() const;

  /// Deliver an incoming OSPF packet that arrived on `vif`.
  void receive(Vif& vif, const packet::Packet& p);

  /// Externally-signalled interface failure (a VINI upcall, Section 6.1):
  /// tear the adjacency down immediately instead of waiting out the
  /// router-dead interval.
  void notifyInterfaceDown(const Vif& vif);

  // -- Introspection -----------------------------------------------------------

  NeighborState neighborState(const Vif& vif) const;
  std::optional<RouterId> neighborId(const Vif& vif) const;
  std::size_t fullNeighborCount() const;
  std::size_t lsdbSize() const { return lsdb_.size(); }
  std::optional<RouterLsa> lsdbEntry(RouterId origin) const;
  const OspfStats& stats() const { return stats_; }
  const OspfConfig& config() const { return config_; }
  RouterId routerId() const { return config_.router_id; }

  // -- Checkpoint / restore (live migration) ---------------------------------

  /// Serializable protocol state: the LSDB plus this router's own LSA
  /// sequence number.  Capture *before* stop() — stop models a crash and
  /// clears both.
  struct Checkpoint {
    std::uint32_t own_seq = 0;
    std::vector<RouterLsa> lsdb;  ///< sorted by origin
  };
  Checkpoint checkpoint() const;

  /// Warm restart: pre-seed the LSDB and own sequence number while
  /// stopped, so the next start() floods a *newer* own-LSA (seq + 1)
  /// instead of restarting the sequence space from scratch — neighbors
  /// accept it immediately rather than after a flooding war.  Throws if
  /// the process is running.
  void restore(const Checkpoint& checkpoint);

 private:
  struct Pending {
    RouterLsa lsa;
    sim::Time last_sent = 0;
  };
  struct Interface {
    Vif* vif = nullptr;
    std::uint32_t cost = 1;
    NeighborState state = NeighborState::kDown;
    RouterId neighbor_id = 0;
    std::unique_ptr<sim::OneShotTimer> dead_timer;
    /// LSAs flooded to this neighbor and not yet acknowledged.
    std::map<RouterId, Pending> unacked;
  };

  // Work scheduling through the (optional) CPU process.
  void runCharged(sim::Duration cost, std::function<void()> work);

  void sendHellos();
  void handleHello(Interface& iface, const OspfHello& hello);
  void handleUpdate(Interface& iface, const OspfLsUpdate& update);
  void handleAck(Interface& iface, const OspfLsAck& ack);
  void onNeighborUp(Interface& iface);
  void onNeighborDead(Interface& iface);
  void originateOwnLsa();
  void installLsa(const RouterLsa& lsa, Interface* from);
  void floodLsa(const RouterLsa& lsa, Interface* except);
  void sendUpdateTo(Interface& iface, std::vector<RouterLsa> lsas,
                    bool track_ack);
  void sendAckTo(Interface& iface, const std::vector<RouterLsa>& lsas);
  void retransmitUnacked();
  void scheduleSpf();
  void runSpf();
  void sendOn(Interface& iface, std::shared_ptr<const packet::AppPayload> payload);

  sim::EventQueue& queue_;
  Rib& rib_;
  OspfConfig config_;
  cpu::Process* process_;
  sim::Random random_;
  std::string protocol_name_;
  /// Timeline track for this router's control-plane events.
  std::string timeline_track_;

  std::vector<std::unique_ptr<Interface>> interfaces_;
  std::vector<std::pair<packet::Prefix, std::uint32_t>> stubs_;
  std::map<RouterId, RouterLsa> lsdb_;
  std::uint32_t own_seq_ = 0;
  bool running_ = false;
  bool spf_scheduled_ = false;
  std::set<packet::Prefix> installed_;
  std::unique_ptr<sim::PeriodicTimer> hello_timer_;
  std::unique_ptr<sim::PeriodicTimer> rxmt_timer_;
  OspfStats stats_;
  // Observability handles, registered at start() (null when no obs
  // context is installed).
  obs::Counter* m_hellos_sent_ = nullptr;
  obs::Counter* m_updates_sent_ = nullptr;
  obs::Counter* m_updates_received_ = nullptr;
  obs::Counter* m_spf_runs_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_neighbors_lost_ = nullptr;
};

}  // namespace vini::xorp
