#include "xorp/rip.h"

#include <algorithm>
#include <stdexcept>

namespace vini::xorp {

RipProcess::RipProcess(sim::EventQueue& queue, Rib& rib, RipConfig config,
                       cpu::Process* process, std::uint64_t seed)
    : queue_(queue), rib_(rib), config_(config), process_(process), random_(seed) {}

RipProcess::~RipProcess() { stop(); }

void RipProcess::addInterface(Vif& vif) { interfaces_.push_back(&vif); }

void RipProcess::addLocalPrefix(const packet::Prefix& prefix) {
  if (std::find(locals_.begin(), locals_.end(), prefix) == locals_.end()) {
    locals_.push_back(prefix);
  }
  Entry entry;
  entry.metric = 1;
  entry.learned_from = nullptr;
  entry.last_heard = queue_.now();
  table_[prefix] = entry;
}

void RipProcess::start() {
  if (running_) return;
  running_ = true;
  // Re-originate local prefixes: after a kill/restart the table starts
  // from scratch and holds only what this router itself advertises.
  for (const auto& prefix : locals_) {
    Entry entry;
    entry.metric = 1;
    entry.learned_from = nullptr;
    entry.last_heard = queue_.now();
    table_[prefix] = entry;
  }
  // RIP speakers have no router id; key by the first interface address.
  const std::string node =
      interfaces_.empty() ? "rip" : interfaces_.front()->address().str();
  timeline_track_ = "rip/" + node;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    m_updates_sent_ = &ctx->metrics.counter("xorp.rip", node, "updates_sent");
    m_updates_received_ =
        &ctx->metrics.counter("xorp.rip", node, "updates_received");
    m_routes_timed_out_ =
        &ctx->metrics.counter("xorp.rip", node, "routes_timed_out");
  }
  update_timer_ = std::make_unique<sim::PeriodicTimer>(
      queue_, config_.update_interval, [this] {
        runCharged(config_.message_cost, [this] { sendUpdates(); });
      });
  expire_timer_ = std::make_unique<sim::PeriodicTimer>(
      queue_, config_.update_interval, [this] { expireRoutes(); });
  queue_.scheduleAfter(random_.uniformDuration(0, config_.update_interval / 4),
                       [this] {
                         if (!running_) return;
                         runCharged(config_.message_cost, [this] { sendUpdates(); });
                         update_timer_->start();
                         expire_timer_->start();
                       });
}

void RipProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (update_timer_) update_timer_->stop();
  if (expire_timer_) expire_timer_->stop();
  rib_.removeAllFrom("rip");
  // Full state loss: learned routes are gone; neighbors must re-announce
  // them after restart.  Local prefixes come back via start().
  table_.clear();
}

bool RipProcess::timersQuiet() const {
  if (update_timer_ && update_timer_->running()) return false;
  if (expire_timer_ && expire_timer_->running()) return false;
  return true;
}

RipProcess::Checkpoint RipProcess::checkpoint() const {
  Checkpoint cp;
  cp.routes.reserve(table_.size());
  for (const auto& [prefix, entry] : table_) {
    CheckpointRoute route;
    route.prefix = prefix;
    route.metric = entry.metric;
    route.next_hop = entry.next_hop;
    if (entry.learned_from != nullptr) route.vif = entry.learned_from->name();
    cp.routes.push_back(std::move(route));
  }
  return cp;
}

void RipProcess::restore(const Checkpoint& checkpoint) {
  if (running_) {
    throw std::runtime_error("rip restore requires a stopped process");
  }
  for (const auto& route : checkpoint.routes) {
    Entry entry;
    entry.metric = route.metric;
    entry.next_hop = route.next_hop;
    entry.last_heard = queue_.now();  // fresh lease: do not expire instantly
    if (!route.vif.empty()) {
      for (Vif* vif : interfaces_) {
        if (vif->name() == route.vif) {
          entry.learned_from = vif;
          break;
        }
      }
      if (entry.learned_from == nullptr) continue;  // link did not move
      install(route.prefix, entry);
    }
    table_[route.prefix] = entry;
  }
}

void RipProcess::runCharged(sim::Duration cost, std::function<void()> work) {
  if (process_) {
    process_->execute(cost, std::move(work));
  } else {
    work();
  }
}

void RipProcess::sendUpdates() {
  if (!running_) return;
  VINI_OBS_TIMELINE_INSTANT(timeline_track_, "update_send", queue_.now());
  for (Vif* vif : interfaces_) {
    if (!vif->isUp()) continue;
    auto update = std::make_shared<RipUpdate>();
    for (const auto& [prefix, entry] : table_) {
      RipRoute route;
      route.prefix = prefix;
      // Split horizon with poisoned reverse.
      route.metric =
          entry.learned_from == vif ? kRipInfinity : std::min(entry.metric, kRipInfinity);
      update->routes.push_back(route);
    }
    packet::Packet p = packet::Packet::udp(vif->address(), vif->peerAddress(),
                                           kRipPort, kRipPort, 0);
    p.app = update;
    ++stats_.updates_sent;
    VINI_OBS_INC(m_updates_sent_);
    vif->send(std::move(p));
  }
}

void RipProcess::receive(Vif& vif, const packet::Packet& p) {
  if (!running_ || !p.app) return;
  auto payload = std::dynamic_pointer_cast<const RipUpdate>(p.app);
  if (!payload) return;
  const packet::IpAddress from = p.ip.src;
  Vif* vifp = &vif;  // the Vif outlives the deferred job; the parameter does not
  runCharged(config_.message_cost, [this, payload, vifp, from] {
    if (!running_) return;
    ++stats_.updates_received;
    VINI_OBS_INC(m_updates_received_);
    for (const auto& route : payload->routes) {
      const std::uint32_t metric = std::min(route.metric + 1, kRipInfinity);
      auto it = table_.find(route.prefix);
      const bool from_same_nbr =
          it != table_.end() && it->second.learned_from == vifp;
      if (it == table_.end() || metric < it->second.metric || from_same_nbr) {
        if (metric >= kRipInfinity) {
          // Route became unreachable.
          if (from_same_nbr) {
            rib_.removeRoute("rip", route.prefix);
            table_.erase(it);
          }
          continue;
        }
        Entry entry;
        entry.metric = metric;
        entry.learned_from = vifp;
        entry.next_hop = from;
        entry.last_heard = queue_.now();
        table_[route.prefix] = entry;
        install(route.prefix, entry);
      } else if (from_same_nbr) {
        it->second.last_heard = queue_.now();
      }
    }
  });
}

void RipProcess::install(const packet::Prefix& prefix, const Entry& entry) {
  RibRoute route;
  route.prefix = prefix;
  route.next_hop = entry.next_hop;
  route.origin = RouteOrigin::kRip;
  route.metric = entry.metric;
  route.protocol = "rip";
  rib_.addRoute(route);
}

void RipProcess::expireRoutes() {
  if (!running_) return;
  const sim::Time now = queue_.now();
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.learned_from != nullptr &&
        now - it->second.last_heard > config_.route_timeout) {
      ++stats_.routes_timed_out;
      VINI_OBS_INC(m_routes_timed_out_);
      rib_.removeRoute("rip", it->first);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<std::uint32_t> RipProcess::metricFor(const packet::Prefix& prefix) const {
  auto it = table_.find(prefix);
  if (it == table_.end()) return std::nullopt;
  return it->second.metric;
}

}  // namespace vini::xorp
