// RIP (v2-style distance vector).
//
// XORP ships RIP alongside OSPF; VINI's Section 7 imagines operators
// running several routing protocols side by side on one physical
// network.  This implementation supports that usage mode (and the
// protocol-comparison ablation bench): periodic full-table updates over
// the same virtual interfaces OSPF uses, split horizon with poisoned
// reverse, route timeout, and hop-count metric with infinity = 16.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cpu/scheduler.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "xorp/messages.h"
#include "xorp/rib.h"
#include "xorp/vif.h"

namespace vini::xorp {

struct RipConfig {
  sim::Duration update_interval = 30 * sim::kSecond;
  sim::Duration route_timeout = 180 * sim::kSecond;
  sim::Duration message_cost = 40 * sim::kMicrosecond;
};

struct RipStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t routes_timed_out = 0;
};

class RipProcess {
 public:
  RipProcess(sim::EventQueue& queue, Rib& rib, RipConfig config,
             cpu::Process* process = nullptr, std::uint64_t seed = 11);
  ~RipProcess();

  RipProcess(const RipProcess&) = delete;
  RipProcess& operator=(const RipProcess&) = delete;

  void addInterface(Vif& vif);
  /// A prefix this router originates (metric 1).
  void addLocalPrefix(const packet::Prefix& prefix);

  void start();
  void stop();
  bool running() const { return running_; }
  /// True when no timer owned by this process can still fire — the
  /// invariant a dead daemon must satisfy (chaos audit V123).
  bool timersQuiet() const;

  /// Deliver an incoming RIP packet (UDP port 520) from `vif`.
  void receive(Vif& vif, const packet::Packet& p);

  const RipStats& stats() const { return stats_; }
  std::size_t tableSize() const { return table_.size(); }
  std::optional<std::uint32_t> metricFor(const packet::Prefix& prefix) const;

  // -- Checkpoint / restore (live migration) ---------------------------------

  /// One serializable table entry; `vif` names the learning interface
  /// (empty = locally originated).
  struct CheckpointRoute {
    packet::Prefix prefix;
    std::uint32_t metric = kRipInfinity;
    packet::IpAddress next_hop;
    std::string vif;
  };
  struct Checkpoint {
    std::vector<CheckpointRoute> routes;  ///< table order (sorted by prefix)
  };
  /// Capture before stop() — stop models a crash and clears the table.
  Checkpoint checkpoint() const;
  /// Re-seed the table while stopped.  Learned entries resolve their
  /// interface by name against this process's interfaces (unresolvable
  /// entries are dropped — the link did not survive the move) and are
  /// installed into the RIB so forwarding resumes before the first
  /// periodic update.  Throws if the process is running.
  void restore(const Checkpoint& checkpoint);

 private:
  struct Entry {
    std::uint32_t metric = kRipInfinity;
    Vif* learned_from = nullptr;  ///< nullptr = local origin
    packet::IpAddress next_hop;
    sim::Time last_heard = 0;
  };

  void runCharged(sim::Duration cost, std::function<void()> work);
  void sendUpdates();
  void expireRoutes();
  void install(const packet::Prefix& prefix, const Entry& entry);

  sim::EventQueue& queue_;
  Rib& rib_;
  RipConfig config_;
  cpu::Process* process_;
  sim::Random random_;
  std::string timeline_track_;
  std::vector<Vif*> interfaces_;
  std::vector<packet::Prefix> locals_;  ///< re-originated on every start()
  std::map<packet::Prefix, Entry> table_;
  bool running_ = false;
  std::unique_ptr<sim::PeriodicTimer> update_timer_;
  std::unique_ptr<sim::PeriodicTimer> expire_timer_;
  RipStats stats_;
  // Observability handles, registered at start() (null when no obs
  // context is installed).
  obs::Counter* m_updates_sent_ = nullptr;
  obs::Counter* m_updates_received_ = nullptr;
  obs::Counter* m_routes_timed_out_ = nullptr;
};

}  // namespace vini::xorp
