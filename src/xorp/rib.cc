#include "xorp/rib.h"

#include <algorithm>

namespace vini::xorp {

void Rib::setFea(Fea* fea) {
  fea_ = fea;
  if (fea_) {
    for (const auto& [prefix, route] : winners_) fea_->routeAdded(route);
  }
}

void Rib::addRoute(const RibRoute& route) {
  auto& cands = candidates_[route.prefix];
  bool replaced = false;
  for (auto& c : cands) {
    if (c.protocol == route.protocol) {
      c = route;
      replaced = true;
      break;
    }
  }
  if (!replaced) cands.push_back(route);
  reelect(route.prefix);
}

bool Rib::removeRoute(const std::string& protocol, const packet::Prefix& prefix) {
  auto it = candidates_.find(prefix);
  if (it == candidates_.end()) return false;
  auto& cands = it->second;
  const auto before = cands.size();
  cands.erase(std::remove_if(cands.begin(), cands.end(),
                             [&](const RibRoute& r) { return r.protocol == protocol; }),
              cands.end());
  if (cands.size() == before) return false;
  if (cands.empty()) candidates_.erase(it);
  reelect(prefix);
  return true;
}

void Rib::removeAllFrom(const std::string& protocol) {
  std::vector<packet::Prefix> affected;
  for (auto& [prefix, cands] : candidates_) {
    const auto before = cands.size();
    cands.erase(std::remove_if(cands.begin(), cands.end(),
                               [&](const RibRoute& r) { return r.protocol == protocol; }),
                cands.end());
    if (cands.size() != before) affected.push_back(prefix);
  }
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    it = it->second.empty() ? candidates_.erase(it) : std::next(it);
  }
  for (const auto& prefix : affected) reelect(prefix);
}

int Rib::effectiveDistance(const RibRoute& route) const {
  auto it = distance_overrides_.find(route.protocol);
  if (it != distance_overrides_.end()) return it->second;
  return static_cast<int>(route.origin);
}

void Rib::setProtocolDistance(const std::string& protocol,
                              std::optional<int> distance) {
  if (distance) {
    distance_overrides_[protocol] = *distance;
  } else {
    distance_overrides_.erase(protocol);
  }
  // Atomic switchover: every prefix is re-elected in one pass.
  std::vector<packet::Prefix> prefixes;
  prefixes.reserve(candidates_.size());
  for (const auto& [prefix, cands] : candidates_) prefixes.push_back(prefix);
  for (const auto& prefix : prefixes) reelect(prefix);
}

const RibRoute* Rib::bestOf(const std::vector<RibRoute>& candidates) const {
  const RibRoute* best = nullptr;
  for (const auto& c : candidates) {
    if (!best || effectiveDistance(c) < effectiveDistance(*best) ||
        (effectiveDistance(c) == effectiveDistance(*best) &&
         c.metric < best->metric)) {
      best = &c;
    }
  }
  return best;
}

void Rib::reelect(const packet::Prefix& prefix) {
  const RibRoute* best = nullptr;
  if (auto it = candidates_.find(prefix); it != candidates_.end()) {
    best = bestOf(it->second);
  }
  auto win = winners_.find(prefix);
  if (!best) {
    if (win != winners_.end()) {
      const RibRoute old = win->second;
      winners_.erase(win);
      if (fea_) fea_->routeRemoved(old);
    }
    return;
  }
  if (win != winners_.end()) {
    const RibRoute& cur = win->second;
    if (cur.next_hop == best->next_hop && cur.origin == best->origin &&
        cur.metric == best->metric && cur.protocol == best->protocol) {
      return;  // unchanged
    }
    const RibRoute old = cur;
    win->second = *best;
    if (fea_) {
      fea_->routeRemoved(old);
      fea_->routeAdded(*best);
    }
    return;
  }
  winners_[prefix] = *best;
  if (fea_) fea_->routeAdded(*best);
}

std::optional<RibRoute> Rib::winner(const packet::Prefix& prefix) const {
  auto it = winners_.find(prefix);
  if (it == winners_.end()) return std::nullopt;
  return it->second;
}

std::optional<RibRoute> Rib::lookup(packet::IpAddress addr) const {
  const RibRoute* best = nullptr;
  for (const auto& [prefix, route] : winners_) {
    if (!prefix.contains(addr)) continue;
    if (!best || prefix.length() > best->prefix.length()) best = &route;
  }
  return best ? std::optional<RibRoute>(*best) : std::nullopt;
}

std::vector<RibRoute> Rib::winners() const {
  std::vector<RibRoute> out;
  out.reserve(winners_.size());
  for (const auto& [prefix, route] : winners_) out.push_back(route);
  return out;
}

std::size_t Rib::candidateCount() const {
  std::size_t n = 0;
  for (const auto& [prefix, cands] : candidates_) n += cands.size();
  return n;
}

}  // namespace vini::xorp
