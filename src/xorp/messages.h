// Routing protocol messages.
//
// Control-plane messages are structured payloads (packet::AppPayload)
// carried inside IP packets that traverse the overlay's virtual links —
// so a failed virtual link really does silence hellos, exactly as in the
// Section 5.2 experiment.  sizeBytes() reports honest wire sizes so that
// links and the CPU model charge control traffic fairly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "packet/ip_address.h"
#include "packet/packet.h"

namespace vini::xorp {

using RouterId = std::uint32_t;

// ---------------------------------------------------------------------------
// OSPF

struct OspfHello final : packet::AppPayload {
  RouterId router_id = 0;
  std::uint32_t hello_interval_s = 0;
  std::uint32_t dead_interval_s = 0;
  /// Router IDs of neighbors seen on this interface (2-Way check).
  std::vector<RouterId> seen_neighbors;

  std::size_t sizeBytes() const override { return 44 + 4 * seen_neighbors.size(); }
  std::string describe() const override { return "ospf-hello"; }
};

/// One point-to-point link advertised in a router LSA.
struct LsaLink {
  RouterId neighbor_id = 0;
  packet::Prefix subnet;        ///< the /30 numbering this link
  std::uint32_t cost = 1;
};

/// A router LSA: the links and stub prefixes one router advertises.
struct RouterLsa {
  RouterId origin = 0;
  std::uint32_t seq = 0;
  std::vector<LsaLink> links;
  /// Stub prefixes (e.g. the node's tap0 host address) with their costs.
  std::vector<std::pair<packet::Prefix, std::uint32_t>> stubs;

  std::size_t sizeBytes() const {
    return 24 + 12 * links.size() + 12 * stubs.size();
  }
  /// True if `other` is a newer instance of the same LSA.
  bool newerThan(const RouterLsa& other) const { return seq > other.seq; }
};

struct OspfLsUpdate final : packet::AppPayload {
  std::vector<RouterLsa> lsas;

  std::size_t sizeBytes() const override {
    std::size_t n = 28;
    for (const auto& lsa : lsas) n += lsa.sizeBytes();
    return n;
  }
  std::string describe() const override { return "ospf-lsupdate"; }
};

struct OspfLsAck final : packet::AppPayload {
  std::vector<std::pair<RouterId, std::uint32_t>> acks;  ///< (origin, seq)

  std::size_t sizeBytes() const override { return 24 + 8 * acks.size(); }
  std::string describe() const override { return "ospf-lsack"; }
};

// ---------------------------------------------------------------------------
// RIP

struct RipRoute {
  packet::Prefix prefix;
  std::uint32_t metric = 1;  ///< 16 = infinity
};

struct RipUpdate final : packet::AppPayload {
  std::vector<RipRoute> routes;

  std::size_t sizeBytes() const override { return 4 + 20 * routes.size(); }
  std::string describe() const override { return "rip-update"; }
};

inline constexpr std::uint32_t kRipInfinity = 16;
inline constexpr std::uint16_t kRipPort = 520;

// ---------------------------------------------------------------------------
// BGP

struct BgpRoute {
  packet::Prefix prefix;
  std::vector<std::uint32_t> as_path;
  packet::IpAddress next_hop;
  std::uint32_t local_pref = 100;

  bool hasLoop(std::uint32_t asn) const {
    for (auto hop : as_path) {
      if (hop == asn) return true;
    }
    return false;
  }
};

struct BgpUpdate {
  std::vector<BgpRoute> announcements;
  std::vector<packet::Prefix> withdrawals;

  std::size_t sizeBytes() const {
    std::size_t n = 23;
    for (const auto& a : announcements) n += 9 + 4 * a.as_path.size();
    n += 5 * withdrawals.size();
    return n;
  }
};

}  // namespace vini::xorp
