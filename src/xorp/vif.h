// Virtual interfaces as the routing software sees them.
//
// XORP "generally assumes that each link to a neighboring router is
// associated with a physical interface" (Section 4.2.2); PL-VINI solves
// this by giving the routing daemon UML network devices, one per virtual
// link, numbered from a common /30 subnet.  Vif is that abstraction: a
// named point-to-point interface with a local and peer address, through
// which the daemon can send control packets.  The VINI layer provides
// the concrete implementation backed by a UDP-tunnel virtual link.
#pragma once

#include <string>

#include "packet/ip_address.h"
#include "packet/packet.h"

namespace vini::xorp {

class Vif {
 public:
  virtual ~Vif() = default;

  virtual const std::string& name() const = 0;
  /// Local endpoint address (this router's side of the /30).
  virtual packet::IpAddress address() const = 0;
  /// Peer endpoint address (the neighboring virtual node's side).
  virtual packet::IpAddress peerAddress() const = 0;
  /// The /30 subnet numbering this point-to-point link.
  virtual packet::Prefix subnet() const = 0;
  /// Administrative + operational state.
  virtual bool isUp() const = 0;
  /// Send a packet out of this interface toward the peer.
  virtual void send(packet::Packet p) = 0;
};

}  // namespace vini::xorp
