// The Routing Information Base.
//
// Each routing protocol (connected, static, OSPF, RIP, BGP) contributes
// candidate routes; the RIB picks a winner per prefix by administrative
// distance (then metric) and pushes changes to the Forwarding Engine
// Abstraction — XORP's FEA, which in IIAS programs a Click FIB rather
// than the kernel table ("supported forwarding engines include the Linux
// kernel routing table and the Click modular software router (which is
// why we chose XORP for IIAS)", Section 4.2.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "packet/ip_address.h"

namespace vini::xorp {

/// Administrative distances, matching common router defaults.
enum class RouteOrigin : int {
  kConnected = 0,
  kStatic = 1,
  kEbgp = 20,
  kOspf = 110,
  kRip = 120,
  kIbgp = 200,
};

struct RibRoute {
  packet::Prefix prefix;
  packet::IpAddress next_hop;  ///< zero = directly connected
  RouteOrigin origin = RouteOrigin::kStatic;
  std::uint32_t metric = 0;
  std::string protocol;  ///< contributing protocol instance name
};

/// Forwarding Engine Abstraction: the RIB announces winning-route
/// changes here.  Implementations program a Click FIB (IIAS) or a kernel
/// routing table.
class Fea {
 public:
  virtual ~Fea() = default;
  virtual void routeAdded(const RibRoute& route) = 0;
  virtual void routeRemoved(const RibRoute& route) = 0;
};

class Rib {
 public:
  /// Attach the forwarding engine; existing winners are replayed into it.
  void setFea(Fea* fea);

  /// Override the administrative distance of every route contributed by
  /// `protocol`, re-electing all prefixes in one step.  This is the
  /// Section 7 "atomic switchover" primitive: an operator runs two
  /// routing protocols in parallel and flips which one controls the
  /// forwarding tables ("controlling the forwarding tables ... in one
  /// virtual network at any given time, while providing the capability
  /// for atomic switchover").  Pass nullopt to restore the default.
  void setProtocolDistance(const std::string& protocol,
                           std::optional<int> distance);

  /// Effective admin distance for a route (override-aware).
  int effectiveDistance(const RibRoute& route) const;

  /// Add or update a protocol's candidate route for a prefix.
  void addRoute(const RibRoute& route);

  /// Remove a protocol's candidate for `prefix`; returns true if found.
  bool removeRoute(const std::string& protocol, const packet::Prefix& prefix);

  /// Remove every candidate contributed by `protocol`.
  void removeAllFrom(const std::string& protocol);

  /// Current winning route for exactly `prefix`.
  std::optional<RibRoute> winner(const packet::Prefix& prefix) const;

  /// Longest-prefix-match over winning routes.
  std::optional<RibRoute> lookup(packet::IpAddress addr) const;

  /// All current winners.
  std::vector<RibRoute> winners() const;

  std::size_t candidateCount() const;

 private:
  void reelect(const packet::Prefix& prefix);
  const RibRoute* bestOf(const std::vector<RibRoute>& candidates) const;

  std::map<packet::Prefix, std::vector<RibRoute>> candidates_;
  std::map<packet::Prefix, RibRoute> winners_;
  std::map<std::string, int> distance_overrides_;
  Fea* fea_ = nullptr;
};

}  // namespace vini::xorp
