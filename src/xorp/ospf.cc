#include "xorp/ospf.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace vini::xorp {

OspfProcess::OspfProcess(sim::EventQueue& queue, Rib& rib, OspfConfig config,
                         cpu::Process* process, std::uint64_t seed)
    : queue_(queue),
      rib_(rib),
      config_(config),
      process_(process),
      random_(seed ^ (std::uint64_t{config.router_id} << 16)),
      protocol_name_("ospf") {
  timeline_track_ = "ospf/" + packet::IpAddress(config_.router_id).str();
}

OspfProcess::~OspfProcess() { stop(); }

void OspfProcess::addInterface(Vif& vif, std::uint32_t cost) {
  auto iface = std::make_unique<Interface>();
  iface->vif = &vif;
  iface->cost = cost;
  Interface* raw = iface.get();
  iface->dead_timer = std::make_unique<sim::OneShotTimer>(
      queue_, [this, raw] { onNeighborDead(*raw); });
  interfaces_.push_back(std::move(iface));
}

void OspfProcess::addStubPrefix(const packet::Prefix& prefix, std::uint32_t cost) {
  stubs_.emplace_back(prefix, cost);
  // A stub attached to a live router (e.g. an OpenVPN pool brought up
  // mid-experiment) is announced right away.
  if (running_) originateOwnLsa();
}

void OspfProcess::start() {
  if (running_) return;
  running_ = true;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    const std::string node = packet::IpAddress(config_.router_id).str();
    m_hellos_sent_ = &ctx->metrics.counter("xorp.ospf", node, "hellos_sent");
    m_updates_sent_ = &ctx->metrics.counter("xorp.ospf", node, "updates_sent");
    m_updates_received_ =
        &ctx->metrics.counter("xorp.ospf", node, "updates_received");
    m_spf_runs_ = &ctx->metrics.counter("xorp.ospf", node, "spf_runs");
    m_retransmissions_ =
        &ctx->metrics.counter("xorp.ospf", node, "retransmissions");
    m_neighbors_lost_ =
        &ctx->metrics.counter("xorp.ospf", node, "neighbors_lost");
  }
  originateOwnLsa();
  hello_timer_ = std::make_unique<sim::PeriodicTimer>(
      queue_, config_.hello_interval, [this] {
        runCharged(config_.hello_cost, [this] { sendHellos(); });
      });
  rxmt_timer_ = std::make_unique<sim::PeriodicTimer>(
      queue_, config_.rxmt_interval, [this] { retransmitUnacked(); });
  // Stagger the first hello so co-started routers do not fire in lockstep.
  queue_.scheduleAfter(random_.uniformDuration(0, config_.hello_interval),
                       "xorp.ospf", [this] {
                         if (!running_) return;
                         runCharged(config_.hello_cost, [this] { sendHellos(); });
                         hello_timer_->start();
                         rxmt_timer_->start();
                       });
}

void OspfProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (hello_timer_) hello_timer_->stop();
  if (rxmt_timer_) rxmt_timer_->stop();
  for (auto& iface : interfaces_) {
    iface->dead_timer->cancel();
    iface->state = NeighborState::kDown;
    iface->neighbor_id = 0;
    iface->unacked.clear();
  }
  for (const auto& prefix : installed_) rib_.removeRoute(protocol_name_, prefix);
  installed_.clear();
  // Full state loss: a killed daemon forgets its LSDB and its own
  // sequence number.  On restart it re-floods from seq 1; neighbors
  // still holding the stale higher-seq copy hand it back during database
  // exchange and handleUpdate() outbids it (the restart path RFC 2328
  // §13.4 describes).
  lsdb_.clear();
  own_seq_ = 0;
}

OspfProcess::Checkpoint OspfProcess::checkpoint() const {
  Checkpoint cp;
  cp.own_seq = own_seq_;
  cp.lsdb.reserve(lsdb_.size());
  for (const auto& [origin, lsa] : lsdb_) cp.lsdb.push_back(lsa);
  return cp;
}

void OspfProcess::restore(const Checkpoint& checkpoint) {
  if (running_) {
    throw std::runtime_error("ospf restore requires a stopped process");
  }
  lsdb_.clear();
  for (const auto& lsa : checkpoint.lsdb) lsdb_[lsa.origin] = lsa;
  // start() originates at ++own_seq_, so the first post-restore own-LSA
  // is strictly newer than anything neighbors hold.
  own_seq_ = checkpoint.own_seq;
}

bool OspfProcess::timersQuiet() const {
  if (hello_timer_ && hello_timer_->running()) return false;
  if (rxmt_timer_ && rxmt_timer_->running()) return false;
  for (const auto& iface : interfaces_) {
    if (iface->dead_timer && iface->dead_timer->pending()) return false;
  }
  return true;
}

void OspfProcess::runCharged(sim::Duration cost, std::function<void()> work) {
  if (process_) {
    process_->execute(cost, std::move(work));
  } else {
    work();
  }
}

void OspfProcess::sendOn(Interface& iface,
                         std::shared_ptr<const packet::AppPayload> payload) {
  if (!iface.vif->isUp()) return;
  packet::Packet p;
  p.ip.src = iface.vif->address();
  p.ip.dst = iface.vif->peerAddress();
  p.ip.proto = packet::IpProto::kOspf;
  p.ip.ttl = 1;  // OSPF speaks only to the adjacent router
  p.app = std::move(payload);
  iface.vif->send(std::move(p));
}

void OspfProcess::sendHellos() {
  if (!running_) return;
  for (auto& iface : interfaces_) {
    auto hello = std::make_shared<OspfHello>();
    hello->router_id = config_.router_id;
    hello->hello_interval_s =
        static_cast<std::uint32_t>(config_.hello_interval / sim::kSecond);
    hello->dead_interval_s =
        static_cast<std::uint32_t>(config_.dead_interval / sim::kSecond);
    if (iface->state != NeighborState::kDown && iface->neighbor_id != 0) {
      hello->seen_neighbors.push_back(iface->neighbor_id);
    }
    ++stats_.hellos_sent;
    VINI_OBS_INC(m_hellos_sent_);
    sendOn(*iface, std::move(hello));
  }
}

void OspfProcess::receive(Vif& vif, const packet::Packet& p) {
  if (!running_ || !p.app) return;
  Interface* iface = nullptr;
  for (auto& candidate : interfaces_) {
    if (candidate->vif == &vif) {
      iface = candidate.get();
      break;
    }
  }
  if (!iface) return;

  // Copy the payload pointer so the charged job outlives the packet.
  auto payload = p.app;
  runCharged(config_.message_cost, [this, iface, payload] {
    if (!running_) return;
    if (auto hello = std::dynamic_pointer_cast<const OspfHello>(payload)) {
      handleHello(*iface, *hello);
    } else if (auto update =
                   std::dynamic_pointer_cast<const OspfLsUpdate>(payload)) {
      handleUpdate(*iface, *update);
    } else if (auto ack = std::dynamic_pointer_cast<const OspfLsAck>(payload)) {
      handleAck(*iface, *ack);
    }
  });
}

void OspfProcess::handleHello(Interface& iface, const OspfHello& hello) {
  ++stats_.hellos_received;
  if (iface.neighbor_id != 0 && iface.neighbor_id != hello.router_id) {
    // Neighbor identity changed: restart the adjacency.
    iface.state = NeighborState::kDown;
    iface.unacked.clear();
  }
  iface.neighbor_id = hello.router_id;
  iface.dead_timer->armAfter(config_.dead_interval);

  const bool sees_us =
      std::find(hello.seen_neighbors.begin(), hello.seen_neighbors.end(),
                config_.router_id) != hello.seen_neighbors.end();
  switch (iface.state) {
    case NeighborState::kDown:
      iface.state = sees_us ? NeighborState::kFull : NeighborState::kInit;
      if (iface.state == NeighborState::kFull) onNeighborUp(iface);
      break;
    case NeighborState::kInit:
      if (sees_us) {
        iface.state = NeighborState::kFull;
        onNeighborUp(iface);
      }
      break;
    case NeighborState::kFull:
      break;  // steady state: dead timer re-armed above
  }
}

void OspfProcess::onNeighborUp(Interface& iface) {
  // Database exchange (condensed): give the new adjacency our entire
  // LSDB, reliably.
  std::vector<RouterLsa> all;
  all.reserve(lsdb_.size());
  for (const auto& [origin, lsa] : lsdb_) all.push_back(lsa);
  if (!all.empty()) sendUpdateTo(iface, std::move(all), /*track_ack=*/true);
  originateOwnLsa();
}

void OspfProcess::notifyInterfaceDown(const Vif& vif) {
  if (!running_) return;
  for (auto& iface : interfaces_) {
    if (iface->vif == &vif && iface->state != NeighborState::kDown) {
      iface->dead_timer->cancel();
      onNeighborDead(*iface);
    }
  }
}

void OspfProcess::onNeighborDead(Interface& iface) {
  if (iface.state == NeighborState::kDown) return;
  ++stats_.neighbors_lost;
  VINI_OBS_INC(m_neighbors_lost_);
  VINI_OBS_TIMELINE_INSTANT(timeline_track_, "neighbor_dead", queue_.now());
  iface.state = NeighborState::kDown;
  iface.unacked.clear();
  originateOwnLsa();
}

void OspfProcess::originateOwnLsa() {
  if (!running_) return;
  RouterLsa lsa;
  lsa.origin = config_.router_id;
  lsa.seq = ++own_seq_;
  for (const auto& iface : interfaces_) {
    if (iface->state == NeighborState::kFull) {
      LsaLink link;
      link.neighbor_id = iface->neighbor_id;
      link.subnet = iface->vif->subnet();
      link.cost = iface->cost;
      lsa.links.push_back(link);
    }
  }
  lsa.stubs = stubs_;
  ++stats_.lsas_originated;
  installLsa(lsa, nullptr);
}

void OspfProcess::installLsa(const RouterLsa& lsa, Interface* from) {
  auto it = lsdb_.find(lsa.origin);
  if (it != lsdb_.end() && !lsa.newerThan(it->second)) {
    // Old or duplicate news: acknowledge but do not reflood.
    if (from) sendAckTo(*from, {lsa});
    return;
  }
  lsdb_[lsa.origin] = lsa;
  if (from) sendAckTo(*from, {lsa});
  floodLsa(lsa, from);
  scheduleSpf();
}

void OspfProcess::floodLsa(const RouterLsa& lsa, Interface* except) {
  VINI_OBS_TIMELINE_INSTANT(timeline_track_, "lsa_flood", queue_.now());
  for (auto& iface : interfaces_) {
    if (iface.get() == except) continue;
    if (iface->state != NeighborState::kFull) continue;
    sendUpdateTo(*iface, {lsa}, /*track_ack=*/true);
  }
}

void OspfProcess::sendUpdateTo(Interface& iface, std::vector<RouterLsa> lsas,
                               bool track_ack) {
  auto update = std::make_shared<OspfLsUpdate>();
  update->lsas = lsas;
  if (track_ack) {
    for (auto& lsa : lsas) {
      iface.unacked[lsa.origin] = Pending{std::move(lsa), queue_.now()};
    }
  }
  ++stats_.updates_sent;
  VINI_OBS_INC(m_updates_sent_);
  sendOn(iface, std::move(update));
}

void OspfProcess::sendAckTo(Interface& iface, const std::vector<RouterLsa>& lsas) {
  auto ack = std::make_shared<OspfLsAck>();
  for (const auto& lsa : lsas) ack->acks.emplace_back(lsa.origin, lsa.seq);
  ++stats_.acks_sent;
  sendOn(iface, std::move(ack));
}

void OspfProcess::handleUpdate(Interface& iface, const OspfLsUpdate& update) {
  ++stats_.updates_received;
  VINI_OBS_INC(m_updates_received_);
  for (const auto& lsa : update.lsas) {
    if (lsa.origin == config_.router_id) {
      // A stale copy of our own LSA is circulating (e.g. we restarted):
      // outbid it.
      if (lsa.seq >= own_seq_) {
        own_seq_ = lsa.seq;
        originateOwnLsa();
      } else {
        sendAckTo(iface, {lsa});
      }
      continue;
    }
    installLsa(lsa, &iface);
  }
}

void OspfProcess::handleAck(Interface& iface, const OspfLsAck& ack) {
  for (const auto& [origin, seq] : ack.acks) {
    auto it = iface.unacked.find(origin);
    if (it != iface.unacked.end() && it->second.lsa.seq <= seq) {
      iface.unacked.erase(it);
    }
  }
}

void OspfProcess::retransmitUnacked() {
  if (!running_) return;
  const sim::Time now = queue_.now();
  for (auto& iface : interfaces_) {
    if (iface->state != NeighborState::kFull) continue;
    std::vector<RouterLsa> due;
    for (auto& [origin, pending] : iface->unacked) {
      if (now - pending.last_sent >= config_.rxmt_interval) {
        due.push_back(pending.lsa);
        pending.last_sent = now;
      }
    }
    if (!due.empty()) {
      stats_.retransmissions += due.size();
      VINI_OBS_ADD(m_retransmissions_, due.size());
      auto update = std::make_shared<OspfLsUpdate>();
      update->lsas = std::move(due);
      ++stats_.updates_sent;
      VINI_OBS_INC(m_updates_sent_);
      sendOn(*iface, std::move(update));
    }
  }
}

void OspfProcess::scheduleSpf() {
  if (spf_scheduled_ || !running_) return;
  spf_scheduled_ = true;
  queue_.scheduleAfter(config_.spf_delay, "xorp.ospf", [this] {
    spf_scheduled_ = false;
    if (!running_) return;
    const sim::Duration cost =
        config_.spf_base_cost +
        config_.spf_per_lsa_cost * static_cast<sim::Duration>(lsdb_.size());
    runCharged(cost, [this] { runSpf(); });
  });
}

void OspfProcess::runSpf() {
  if (!running_) return;
  ++stats_.spf_runs;
  VINI_OBS_INC(m_spf_runs_);
  VINI_OBS_TIMELINE_INSTANT(timeline_track_, "spf_run", queue_.now());

  // Dijkstra over the LSDB with the two-way connectivity check.
  const RouterId self = config_.router_id;
  std::map<RouterId, std::uint32_t> dist;
  std::map<RouterId, Interface*> first_hop;
  using Item = std::pair<std::uint32_t, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[self] = 0;
  pq.push({0, self});

  auto hasReverseLink = [this](RouterId from, RouterId to) {
    auto it = lsdb_.find(from);
    if (it == lsdb_.end()) return false;
    for (const auto& link : it->second.links) {
      if (link.neighbor_id == to) return true;
    }
    return false;
  };

  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    auto du = dist.find(u);
    if (du != dist.end() && d > du->second) continue;
    auto lsa_it = lsdb_.find(u);
    if (lsa_it == lsdb_.end()) continue;
    for (const auto& link : lsa_it->second.links) {
      const RouterId v = link.neighbor_id;
      if (!hasReverseLink(v, u)) continue;  // two-way check
      const std::uint32_t nd = d + link.cost;
      auto dv = dist.find(v);
      if (dv != dist.end() && dv->second <= nd) continue;
      dist[v] = nd;
      if (u == self) {
        // First hop: the interface whose Full neighbor is v.
        Interface* hop = nullptr;
        for (auto& iface : interfaces_) {
          if (iface->state == NeighborState::kFull && iface->neighbor_id == v &&
              (!hop || iface->cost <= hop->cost)) {
            hop = iface.get();
          }
        }
        first_hop[v] = hop;
      } else {
        first_hop[v] = first_hop[u];
      }
      pq.push({nd, v});
    }
  }

  // Collect the best route per prefix.
  struct Candidate {
    std::uint32_t cost;
    Interface* hop;
  };
  std::map<packet::Prefix, Candidate> best;
  auto offer = [&best](const packet::Prefix& prefix, std::uint32_t cost,
                       Interface* hop) {
    if (!hop) return;
    auto it = best.find(prefix);
    if (it == best.end() || cost < it->second.cost) best[prefix] = {cost, hop};
  };

  for (const auto& [rid, d] : dist) {
    if (rid == self) continue;
    auto hop_it = first_hop.find(rid);
    if (hop_it == first_hop.end() || !hop_it->second) continue;
    auto lsa_it = lsdb_.find(rid);
    if (lsa_it == lsdb_.end()) continue;
    for (const auto& link : lsa_it->second.links) {
      offer(link.subnet, d + link.cost, hop_it->second);
    }
    for (const auto& [prefix, stub_cost] : lsa_it->second.stubs) {
      offer(prefix, d + stub_cost, hop_it->second);
    }
  }

  // Install the diff into the RIB.
  std::set<packet::Prefix> next_installed;
  for (const auto& [prefix, cand] : best) {
    RibRoute route;
    route.prefix = prefix;
    route.next_hop = cand.hop->vif->peerAddress();
    route.origin = RouteOrigin::kOspf;
    route.metric = cand.cost;
    route.protocol = protocol_name_;
    rib_.addRoute(route);
    next_installed.insert(prefix);
  }
  for (const auto& prefix : installed_) {
    if (next_installed.count(prefix) == 0) {
      rib_.removeRoute(protocol_name_, prefix);
    }
  }
  installed_ = std::move(next_installed);
}

NeighborState OspfProcess::neighborState(const Vif& vif) const {
  for (const auto& iface : interfaces_) {
    if (iface->vif == &vif) return iface->state;
  }
  return NeighborState::kDown;
}

std::optional<RouterId> OspfProcess::neighborId(const Vif& vif) const {
  for (const auto& iface : interfaces_) {
    if (iface->vif == &vif && iface->neighbor_id != 0) return iface->neighbor_id;
  }
  return std::nullopt;
}

std::size_t OspfProcess::fullNeighborCount() const {
  std::size_t n = 0;
  for (const auto& iface : interfaces_) {
    if (iface->state == NeighborState::kFull) ++n;
  }
  return n;
}

std::optional<RouterLsa> OspfProcess::lsdbEntry(RouterId origin) const {
  auto it = lsdb_.find(origin);
  if (it == lsdb_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vini::xorp
