// Traffic generation and capture utilities.
//
// CrossTrafficSource produces bursty background load (exponential on/off
// with Poisson packet arrivals inside bursts) so experiments can study
// behaviour on non-quiet substrates — "the traffic from one experiment
// may affect the network conditions seen in another virtual network"
// (Section 3.1).  Tcpdump records packet summaries at a host's trace
// hooks, like the capture the paper uses to draw Figure 9.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.h"
#include "tcpip/host_stack.h"

namespace vini::app {

/// Bursty UDP background traffic between two hosts.
class CrossTrafficSource {
 public:
  struct Options {
    double mean_rate_bps = 10e6;       ///< long-run average offered load
    double burstiness = 4.0;           ///< peak rate = burstiness * mean
    sim::Duration mean_burst = 200 * sim::kMillisecond;
    std::size_t payload_bytes = 1000;
    std::uint16_t port = 9;            ///< discard port
    std::uint64_t seed = 99;
  };

  CrossTrafficSource(tcpip::HostStack& stack, packet::IpAddress dst,
                     Options options);
  ~CrossTrafficSource();

  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

  void start();
  void stop();

  std::uint64_t packetsSent() const { return sent_; }
  std::uint64_t bytesSent() const { return bytes_; }

 private:
  void enterBurst();
  void enterIdle();
  void sendOne();

  tcpip::HostStack& stack_;
  tcpip::UdpSocket& socket_;
  packet::IpAddress dst_;
  Options options_;
  sim::Random random_;
  bool running_ = false;
  bool in_burst_ = false;
  sim::Duration packet_interval_ = 0;  ///< inside a burst
  sim::Duration mean_idle_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// A bounded in-memory packet capture attached to a host's rx/tx hooks.
class Tcpdump {
 public:
  struct Entry {
    sim::Time when = 0;
    bool tx = false;
    std::string summary;
  };

  /// Attach to `stack`'s trace hooks (replaces any existing hooks).
  explicit Tcpdump(tcpip::HostStack& stack, std::size_t capacity = 4096);

  const std::deque<Entry>& entries() const { return entries_; }
  std::size_t captured() const { return captured_; }
  void clear() { entries_.clear(); }

  /// Entries whose summary contains `needle`.
  std::vector<Entry> grep(const std::string& needle) const;

 private:
  void record(bool tx, const packet::Packet& p);

  tcpip::HostStack& stack_;
  std::size_t capacity_;
  std::deque<Entry> entries_;
  std::size_t captured_ = 0;
};

}  // namespace vini::app
