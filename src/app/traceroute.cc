#include "app/traceroute.h"

namespace vini::app {

Traceroute::Traceroute(tcpip::HostStack& stack, packet::IpAddress target,
                       Options options)
    : stack_(stack), target_(target), options_(options),
      socket_(stack.openUdp(0)) {
  if (!options_.source.isZero()) socket_.bindAddress(options_.source);
  timeout_ = std::make_unique<sim::OneShotTimer>(stack_.queue(),
                                                 [this] { onTimeout(); });
  stack_.setIcmpErrorHandler([this](const packet::Packet& p) { onError(p); });
}

Traceroute::~Traceroute() {
  running_ = false;
  stack_.setIcmpErrorHandler(nullptr);
}

void Traceroute::start(std::function<void()> done) {
  done_ = std::move(done);
  running_ = true;
  current_ttl_ = 0;
  sendProbe();
}

void Traceroute::sendProbe() {
  if (!running_) return;
  if (++current_ttl_ > options_.max_hops) {
    finish();
    return;
  }
  packet::Packet probe = packet::Packet::udp(
      socket_.boundAddress(), target_, socket_.port(),
      static_cast<std::uint16_t>(options_.base_port + current_ttl_), 32);
  probe.ip.ttl = static_cast<std::uint8_t>(current_ttl_);
  probe.meta.app_send_time = stack_.queue().now();
  probe.meta.app_seq = static_cast<std::uint64_t>(current_ttl_);
  stack_.sendPacket(std::move(probe));
  timeout_->armAfter(options_.probe_timeout);
}

void Traceroute::onError(const packet::Packet& error) {
  if (!running_) return;
  const auto* icmp = error.icmpHeader();
  if (!icmp) return;
  // Match the error to the outstanding probe via the quoted metadata.
  if (error.meta.app_seq != static_cast<std::uint64_t>(current_ttl_)) return;
  timeout_->cancel();
  Hop hop;
  hop.ttl = current_ttl_;
  hop.router = error.ip.src;
  hop.rtt = stack_.queue().now() - error.meta.app_send_time;
  hops_.push_back(hop);
  if (icmp->type == packet::IcmpHeader::kDestUnreachable) {
    reached_ = true;
    finish();
    return;
  }
  sendProbe();
}

void Traceroute::onTimeout() {
  if (!running_) return;
  Hop hop;
  hop.ttl = current_ttl_;
  hops_.push_back(hop);  // "* * *"
  sendProbe();
}

void Traceroute::finish() {
  running_ = false;
  timeout_->cancel();
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done();
  }
}

}  // namespace vini::app
