#include "app/traffic.h"

namespace vini::app {

CrossTrafficSource::CrossTrafficSource(tcpip::HostStack& stack,
                                       packet::IpAddress dst, Options options)
    : stack_(stack),
      socket_(stack.openUdp(0)),
      dst_(dst),
      options_(options),
      random_(options.seed) {
  // Peak rate inside bursts; duty cycle = 1/burstiness keeps the mean.
  const double peak_bps = options_.mean_rate_bps * options_.burstiness;
  const double pps = peak_bps / (static_cast<double>(options_.payload_bytes) * 8);
  packet_interval_ =
      static_cast<sim::Duration>(static_cast<double>(sim::kSecond) / pps);
  mean_idle_ = static_cast<sim::Duration>(
      static_cast<double>(options_.mean_burst) * (options_.burstiness - 1.0));
}

CrossTrafficSource::~CrossTrafficSource() {
  *alive_ = false;
  running_ = false;
}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  enterBurst();
}

void CrossTrafficSource::stop() { running_ = false; }

void CrossTrafficSource::enterBurst() {
  if (!running_) return;
  in_burst_ = true;
  const sim::Duration length =
      random_.exponentialDuration(options_.mean_burst, 10 * options_.mean_burst);
  stack_.queue().scheduleAfter(length, "app.traffic", stack_.nodeTag(),
                               [this, alive = alive_] {
    if (*alive) enterIdle();
  });
  sendOne();
}

void CrossTrafficSource::enterIdle() {
  if (!running_) return;
  in_burst_ = false;
  const sim::Duration length =
      random_.exponentialDuration(mean_idle_, 10 * mean_idle_);
  stack_.queue().scheduleAfter(length, "app.traffic", stack_.nodeTag(),
                               [this, alive = alive_] {
    if (*alive) enterBurst();
  });
}

void CrossTrafficSource::sendOne() {
  if (!running_ || !in_burst_) return;
  ++sent_;
  bytes_ += options_.payload_bytes;
  socket_.sendTo(dst_, options_.port, options_.payload_bytes);
  // Poisson arrivals inside the burst.
  stack_.queue().scheduleAfter(
      random_.exponentialDuration(packet_interval_, 10 * packet_interval_),
      "app.traffic", stack_.nodeTag(),
      [this, alive = alive_] {
        if (*alive) sendOne();
      });
}

Tcpdump::Tcpdump(tcpip::HostStack& stack, std::size_t capacity)
    : stack_(stack), capacity_(capacity) {
  stack_.setRxTrace([this](const packet::Packet& p) { record(false, p); });
  stack_.setTxTrace([this](const packet::Packet& p) { record(true, p); });
}

void Tcpdump::record(bool tx, const packet::Packet& p) {
  ++captured_;
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(Entry{stack_.queue().now(), tx, p.summary()});
}

std::vector<Tcpdump::Entry> Tcpdump::grep(const std::string& needle) const {
  std::vector<Entry> out;
  for (const auto& entry : entries_) {
    if (entry.summary.find(needle) != std::string::npos) out.push_back(entry);
  }
  return out;
}

}  // namespace vini::app
