// ping(8), flood mode and interval mode.
//
// `ping -f -c 10000` is the paper's fine-grained latency probe
// (Tables 3 and 5): the next request goes out as soon as a reply
// arrives, or after 10 ms if none does; the report is min/avg/max/mdev
// and loss.  Interval mode (one probe per second) drives Figure 8's RTT
// time series during OSPF convergence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "tcpip/host_stack.h"

namespace vini::app {

struct PingReport {
  std::uint64_t transmitted = 0;
  std::uint64_t received = 0;
  sim::SampleStats rtt_ms;
  double lossPercent() const {
    if (transmitted == 0) return 0.0;
    return 100.0 * static_cast<double>(transmitted - received) /
           static_cast<double>(transmitted);
  }
};

class Pinger {
 public:
  struct Options {
    std::uint64_t count = 10000;
    std::size_t payload_bytes = 56;
    /// Flood mode: next probe on reply or after flood_timeout.
    bool flood = true;
    sim::Duration flood_timeout = 10 * sim::kMillisecond;
    /// Interval mode: one probe per interval.
    sim::Duration interval = sim::kSecond;
    /// Source address override (zero = host primary address).
    packet::IpAddress source;
  };

  Pinger(tcpip::HostStack& stack, packet::IpAddress target, Options options);
  ~Pinger();

  Pinger(const Pinger&) = delete;
  Pinger& operator=(const Pinger&) = delete;

  /// Begin probing; `done` fires after the last reply or timeout.
  void start(std::function<void()> done = {});
  void stop();

  const PingReport& report() const { return report_; }

  /// Per-probe hook: (seq, rtt) for every reply — Figure 8's series.
  std::function<void(std::uint64_t seq, sim::Duration rtt)> on_reply;

 private:
  void sendNext();
  void onReply(const packet::Packet& reply);
  void onTimeout();
  void finish();

  tcpip::HostStack& stack_;
  packet::IpAddress target_;
  Options options_;
  std::uint16_t ident_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t awaited_seq_ = 0;
  bool awaiting_ = false;
  bool running_ = false;
  bool collecting_ = false;
  PingReport report_;
  std::unique_ptr<sim::OneShotTimer> timeout_timer_;
  std::function<void()> done_;
  obs::Counter* m_tx_ = nullptr;
  obs::Counter* m_rx_ = nullptr;
  obs::Histogram* m_rtt_ms_ = nullptr;
  obs::Gauge* m_last_rtt_ms_ = nullptr;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
};

}  // namespace vini::app
