// iperf 1.7.0, reimplemented for the simulation (Section 5.1: "The
// microbenchmark experiments are run using iperf version 1.7.0").
//
// TCP mode: N parallel streams of bulk data for a fixed duration; the
// *server* reports goodput, as iperf does.  UDP mode: a constant-bit-
// rate stream of 1430-byte payloads; the server reports interarrival
// jitter (the RFC 1889 estimator iperf uses) and sequence-gap loss.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "sim/stats.h"
#include "tcpip/host_stack.h"
#include "tcpip/tcp.h"

namespace vini::app {

// ---------------------------------------------------------------------------
// TCP

class IperfTcpServer {
 public:
  IperfTcpServer(tcpip::HostStack& stack, std::uint16_t port,
                 tcpip::TcpConfig config = {});

  std::uint64_t bytesReceived() const { return bytes_; }
  std::size_t connectionsAccepted() const { return accepted_; }
  void resetCounters() { bytes_ = 0; }

  /// tcpdump hook: observe every segment arriving at accepted
  /// connections (Figure 9 is plotted from this).
  void setSegmentTrace(std::function<void(const packet::Packet&)> trace) {
    trace_ = std::move(trace);
  }

 private:
  tcpip::HostStack& stack_;
  std::unique_ptr<tcpip::TcpListener> listener_;
  std::vector<std::shared_ptr<tcpip::TcpConnection>> connections_;
  std::uint64_t bytes_ = 0;
  std::size_t accepted_ = 0;
  std::function<void(const packet::Packet&)> trace_;
  obs::Counter* m_rx_bytes_ = nullptr;
  obs::Gauge* m_stream_pos_ = nullptr;
};

class IperfTcpClient {
 public:
  /// `local_addr` zero = the host's primary address; pass the slice's
  /// tap0 address to drive traffic through an overlay.
  IperfTcpClient(tcpip::HostStack& stack, packet::IpAddress server,
                 std::uint16_t port, int streams, tcpip::TcpConfig config = {},
                 packet::IpAddress local_addr = {});

  ~IperfTcpClient();

  /// Connect all streams and transmit for `duration`; then close.
  /// `done` fires after the transmission window ends.
  void start(sim::Duration duration, std::function<void()> done = {});

  std::uint64_t bytesAcked() const;
  std::uint64_t retransmits() const;
  const std::vector<std::shared_ptr<tcpip::TcpConnection>>& streams() const {
    return connections_;
  }

 private:
  void pump(const std::shared_ptr<tcpip::TcpConnection>& conn);

  /// Guards the scheduled pump callbacks against outliving the client.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  tcpip::HostStack& stack_;
  packet::IpAddress server_;
  std::uint16_t port_;
  int stream_count_;
  tcpip::TcpConfig config_;
  packet::IpAddress local_addr_;
  bool running_ = false;
  std::vector<std::shared_ptr<tcpip::TcpConnection>> connections_;
};

/// Convenience: run a complete TCP throughput test and report the
/// server-side goodput in Mb/s (measured over the send window).
struct IperfTcpResult {
  double mbps = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t retransmits = 0;
};

IperfTcpResult runIperfTcp(sim::EventQueue& queue, tcpip::HostStack& client_stack,
                           tcpip::HostStack& server_stack,
                           packet::IpAddress server_addr, std::uint16_t port,
                           int streams, sim::Duration duration,
                           tcpip::TcpConfig config = {},
                           packet::IpAddress client_local = {});

// ---------------------------------------------------------------------------
// UDP

class IperfUdpServer {
 public:
  IperfUdpServer(tcpip::HostStack& stack, std::uint16_t port);

  std::uint64_t packetsReceived() const { return packets_; }
  std::uint64_t bytesReceived() const { return bytes_; }
  double jitterMs() const { return jitter_.jitterMs(); }
  std::uint64_t highestSeq() const { return highest_seq_; }

  /// Loss fraction inferred from sequence gaps, iperf-style.
  double lossFraction() const;

  void reset();

 private:
  tcpip::HostStack& stack_;
  std::uint16_t port_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t highest_seq_ = 0;
  sim::JitterEstimator jitter_;
  obs::Counter* m_rx_packets_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
};

class IperfUdpClient {
 public:
  IperfUdpClient(tcpip::HostStack& stack, packet::IpAddress server,
                 std::uint16_t port, double rate_bps,
                 std::size_t payload_bytes = 1430,
                 packet::IpAddress local_addr = {});
  ~IperfUdpClient();

  void start(sim::Duration duration, std::function<void()> done = {});
  std::uint64_t packetsSent() const { return sent_; }

 private:
  void sendOne();

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  tcpip::HostStack& stack_;
  tcpip::UdpSocket& socket_;
  packet::IpAddress server_;
  std::uint16_t port_;
  double rate_bps_;
  std::size_t payload_;
  sim::Duration interval_;
  std::uint64_t sent_ = 0;
  sim::Time end_time_ = 0;
  bool running_ = false;
  std::function<void()> done_;
  obs::Counter* m_tx_packets_ = nullptr;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
};

}  // namespace vini::app
