// traceroute(8).
//
// The paper maps its testbed with traceroute ("as revealed by running
// traceroute between the three nodes", Figure 5).  This implementation
// sends UDP probes with increasing TTLs to high ports; routers answer
// expired probes with ICMP Time Exceeded, and the destination answers
// the final probe with ICMP Port Unreachable.  It works on the underlay
// (kernel forwarders generate the errors) and *inside* an IIAS overlay
// (each virtual hop's DecIpTtl feeds an IcmpTimeExceeded element), so a
// researcher can reveal the virtual topology the same way the authors
// revealed Abilene's.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "tcpip/host_stack.h"

namespace vini::app {

class Traceroute {
 public:
  struct Options {
    int max_hops = 16;
    sim::Duration probe_timeout = sim::kSecond;
    /// Source address override (a tap address probes inside the overlay).
    packet::IpAddress source;
    std::uint16_t base_port = 33434;  // classic traceroute port range
  };

  struct Hop {
    int ttl = 0;
    /// Responding router address; nullopt = probe timed out ("* * *").
    std::optional<packet::IpAddress> router;
    sim::Duration rtt = 0;
  };

  Traceroute(tcpip::HostStack& stack, packet::IpAddress target, Options options);
  ~Traceroute();

  Traceroute(const Traceroute&) = delete;
  Traceroute& operator=(const Traceroute&) = delete;

  /// Run the trace; `done` fires when the destination answers or
  /// max_hops is exhausted.
  void start(std::function<void()> done = {});

  const std::vector<Hop>& hops() const { return hops_; }
  bool reachedDestination() const { return reached_; }

 private:
  void sendProbe();
  void onError(const packet::Packet& error);
  void onTimeout();
  void finish();

  tcpip::HostStack& stack_;
  packet::IpAddress target_;
  Options options_;
  tcpip::UdpSocket& socket_;
  int current_ttl_ = 0;
  bool running_ = false;
  bool reached_ = false;
  std::vector<Hop> hops_;
  std::unique_ptr<sim::OneShotTimer> timeout_;
  std::function<void()> done_;
};

}  // namespace vini::app
