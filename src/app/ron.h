// A RON-style resilient overlay service (Andersen et al., SOSP 2001) —
// the paper's motivating application:
//
//   "Consider a Resilient Overlay Network (RON) that circumvents
//    performance and reachability problems in the underlying network by
//    directing traffic through intermediate hosts. ... evaluating its
//    effectiveness requires waiting for network failures to occur
//    'naturally'. ... determining when and why a system like RON works
//    — and how well it works under various failure scenarios — is
//    challenging (if not impossible) without ... the ability to inject
//    such failures."  (Section 1)
//
// RonNode runs as an application on top of a network (here: an IIAS
// overlay's tap addresses, making it an experiment *inside* a VINI
// slice).  Nodes probe each other over UDP, maintain EWMA loss
// estimates, exchange those estimates in their probes (link-state, RON-
// style), and route each data packet either directly or through the
// best single intermediate hop — RON's key design point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "tcpip/host_stack.h"

namespace vini::app {

struct RonConfig {
  std::uint16_t port = 46000;
  sim::Duration probe_interval = sim::kSecond;
  /// EWMA weight of the newest probe outcome.  A probe unanswered by the
  /// time the next round fires counts as a loss.
  double loss_ewma = 0.3;
  /// Use an intermediate hop when the direct path's loss estimate
  /// exceeds this.
  double detour_threshold = 0.5;
};

struct RonStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t data_sent_direct = 0;
  std::uint64_t data_sent_detour = 0;
  std::uint64_t data_forwarded = 0;  ///< as an intermediate hop
  std::uint64_t data_received = 0;   ///< as the final destination
};

class RonNode {
 public:
  /// `local` is this node's overlay address (e.g. a slice tap address).
  RonNode(tcpip::HostStack& stack, packet::IpAddress local,
          RonConfig config = {});
  ~RonNode();

  RonNode(const RonNode&) = delete;
  RonNode& operator=(const RonNode&) = delete;

  /// Register a fellow RON participant.
  void addPeer(packet::IpAddress peer);

  void start();
  void stop();

  /// Send one data packet to `dst` (a peer), choosing direct vs detour.
  /// Returns the intermediate used (zero = direct).
  packet::IpAddress sendData(packet::IpAddress dst, std::size_t payload_bytes,
                             std::uint64_t seq = 0);

  /// Current loss estimate for the direct path to `peer` (0..1).
  double lossTo(packet::IpAddress peer) const;

  /// The intermediate sendData would pick right now (zero = direct).
  packet::IpAddress currentDetour(packet::IpAddress dst) const;

  const RonStats& stats() const { return stats_; }
  packet::IpAddress address() const { return local_; }

 private:
  struct PeerState {
    double loss = 0.0;  ///< EWMA; optimistic start
    std::uint64_t next_probe_seq = 1;
    std::uint64_t awaiting_seq = 0;  ///< 0 = none outstanding
    /// The peer's own loss vector, as last advertised (peer addr -> loss).
    std::map<packet::IpAddress, double> advertised;
  };

  void onDatagram(packet::Packet p);
  void probeAll();

  tcpip::HostStack& stack_;
  packet::IpAddress local_;
  RonConfig config_;
  tcpip::UdpSocket& socket_;
  std::map<packet::IpAddress, PeerState> peers_;
  bool running_ = false;
  std::unique_ptr<sim::PeriodicTimer> probe_timer_;
  RonStats stats_;
};

}  // namespace vini::app
