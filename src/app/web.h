// A minimal HTTP-shaped client and server for the life-of-a-packet
// scenario (Figure 2): Firefox on an opted-in client fetches a page from
// www.cnn.com, which knows nothing about the overlay.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tcpip/host_stack.h"
#include "tcpip/tcp.h"

namespace vini::app {

class WebServer {
 public:
  WebServer(tcpip::HostStack& stack, std::uint16_t port = 80,
            std::size_t response_bytes = 64 * 1024);

  std::size_t requestsServed() const { return served_; }

 private:
  tcpip::HostStack& stack_;
  std::size_t response_bytes_;
  std::unique_ptr<tcpip::TcpListener> listener_;
  std::vector<std::shared_ptr<tcpip::TcpConnection>> connections_;
  std::size_t served_ = 0;
};

class WebClient {
 public:
  explicit WebClient(tcpip::HostStack& stack) : stack_(stack) {}

  struct FetchResult {
    bool ok = false;
    std::size_t bytes = 0;
    sim::Duration elapsed = 0;
  };

  /// Fetch from `server:port`, sourcing from `local_addr` if nonzero
  /// (the OpenVPN-assigned overlay address, for opted-in clients).
  void fetch(packet::IpAddress server, std::uint16_t port,
             packet::IpAddress local_addr,
             std::function<void(const FetchResult&)> done);

 private:
  tcpip::HostStack& stack_;
  std::vector<std::shared_ptr<tcpip::TcpConnection>> connections_;
};

}  // namespace vini::app
