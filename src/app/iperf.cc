#include "app/iperf.h"

namespace vini::app {

// ---------------------------------------------------------------------------
// TCP server

IperfTcpServer::IperfTcpServer(tcpip::HostStack& stack, std::uint16_t port,
                               tcpip::TcpConfig config)
    : stack_(stack) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    const std::string& node = stack_.node().name();
    // The fig9 convergence curves sample these: cumulative received
    // bytes (9a) and the highest in-stream byte position seen (9b).
    m_rx_bytes_ = &ctx->metrics.counter("app.iperf", node, "tcp_rx_bytes");
    m_stream_pos_ = &ctx->metrics.gauge("app.iperf", node,
                                        "tcp_stream_pos_bytes");
  }
  listener_ = std::make_unique<tcpip::TcpListener>(
      stack_, port, config,
      [this](std::shared_ptr<tcpip::TcpConnection> conn) {
        ++accepted_;
        conn->on_receive = [this, raw = conn.get()](std::size_t bytes) {
          bytes_ += bytes;
          VINI_OBS_ADD(m_rx_bytes_, bytes);
          if (bytes == 0) raw->close();  // EOF: finish the passive close
        };
        conn->on_segment = [this](const packet::Packet& p) {
          if (p.payload_bytes > 0 && p.tcpHeader() != nullptr) {
            VINI_OBS_GAUGE_SET(m_stream_pos_,
                               static_cast<double>(p.tcpHeader()->seq - 1));
          }
          if (trace_) trace_(p);
        };
        connections_.push_back(std::move(conn));
      });
}

// ---------------------------------------------------------------------------
// TCP client

IperfTcpClient::IperfTcpClient(tcpip::HostStack& stack, packet::IpAddress server,
                               std::uint16_t port, int streams,
                               tcpip::TcpConfig config,
                               packet::IpAddress local_addr)
    : stack_(stack),
      server_(server),
      port_(port),
      stream_count_(streams),
      config_(config),
      local_addr_(local_addr) {}

IperfTcpClient::~IperfTcpClient() { *alive_ = false; }

void IperfTcpClient::pump(const std::shared_ptr<tcpip::TcpConnection>& conn) {
  // Keep the send queue topped up while the test runs; iperf writes as
  // fast as the socket accepts.
  if (!running_) return;
  // Keep well ahead of even a Gig-E-rate stream (the refill cadence must
  // never be the experiment's bottleneck).
  if (conn->sendQueueBytes() < 2 * 1024 * 1024) conn->send(4 * 1024 * 1024);
  stack_.queue().scheduleAfter(10 * sim::kMillisecond, "app.iperf",
                               stack_.nodeTag(),
                               [this, conn, alive = alive_] {
                                 if (*alive) pump(conn);
                               });
}

void IperfTcpClient::start(sim::Duration duration, std::function<void()> done) {
  running_ = true;
  for (int i = 0; i < stream_count_; ++i) {
    auto conn =
        tcpip::TcpConnection::connect(stack_, server_, port_, config_, local_addr_);
    // Weak capture: on_connected lives inside the connection, so a strong
    // reference here would be a self-cycle.
    conn->on_connected = [this, weak = std::weak_ptr<tcpip::TcpConnection>(conn)] {
      if (auto c = weak.lock()) pump(c);
    };
    connections_.push_back(std::move(conn));
  }
  stack_.queue().scheduleAfter(duration, "app.iperf", stack_.nodeTag(),
                               [this, alive = alive_, done = std::move(done)] {
                                 if (!*alive) return;
                                 running_ = false;
                                 // iperf stops writing and closes; tear the
                                 // streams down rather than draining the
                                 // (model-only) pre-queued send intent.
                                 for (auto& conn : connections_) conn->abort();
                                 if (done) done();
                               });
}

std::uint64_t IperfTcpClient::bytesAcked() const {
  std::uint64_t n = 0;
  for (const auto& conn : connections_) n += conn->stats().bytes_acked;
  return n;
}

std::uint64_t IperfTcpClient::retransmits() const {
  std::uint64_t n = 0;
  for (const auto& conn : connections_) n += conn->stats().retransmits;
  return n;
}

IperfTcpResult runIperfTcp(sim::EventQueue& queue, tcpip::HostStack& client_stack,
                           tcpip::HostStack& server_stack,
                           packet::IpAddress server_addr, std::uint16_t port,
                           int streams, sim::Duration duration,
                           tcpip::TcpConfig config, packet::IpAddress client_local) {
  IperfTcpServer server(server_stack, port, config);
  IperfTcpClient client(client_stack, server_addr, port, streams, config,
                        client_local);
  const sim::Time t0 = queue.now();
  client.start(duration);
  queue.runUntil(t0 + duration);
  IperfTcpResult result;
  result.bytes = server.bytesReceived();
  result.mbps = static_cast<double>(result.bytes) * 8.0 /
                sim::toSeconds(duration) / 1e6;
  result.retransmits = client.retransmits();
  // Let the connections drain/close cleanly.
  queue.runUntil(t0 + duration + 2 * sim::kSecond);
  return result;
}

// ---------------------------------------------------------------------------
// UDP server

IperfUdpServer::IperfUdpServer(tcpip::HostStack& stack, std::uint16_t port)
    : stack_(stack), port_(port) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    const std::string& node = stack_.node().name();
    m_rx_packets_ = &ctx->metrics.counter("app.iperf", node, "udp_rx_packets");
    m_rx_bytes_ = &ctx->metrics.counter("app.iperf", node, "udp_rx_bytes");
  }
  stack_.openUdp(port).setReceiveHandler([this](packet::Packet p) {
    ++packets_;
    bytes_ += p.payload_bytes;
    VINI_OBS_INC(m_rx_packets_);
    VINI_OBS_ADD(m_rx_bytes_, p.payload_bytes);
    if (p.meta.trace_id != 0) {
      if (obs::Obs* ctx = VINI_OBS_CTX()) {
        ctx->spans.closeRoot(p.meta.trace_id, stack_.queue().now(),
                             obs::SpanOutcome::kDelivered);
      }
    }
    if (p.meta.app_seq > highest_seq_) highest_seq_ = p.meta.app_seq;
    if (p.meta.app_send_time >= 0) {
      jitter_.onPacket(p.meta.app_send_time, stack_.queue().now());
    }
  });
}

double IperfUdpServer::lossFraction() const {
  if (highest_seq_ == 0) return 0.0;
  const double expected = static_cast<double>(highest_seq_);
  const double got = static_cast<double>(packets_);
  if (got >= expected) return 0.0;
  return (expected - got) / expected;
}

void IperfUdpServer::reset() {
  packets_ = 0;
  bytes_ = 0;
  highest_seq_ = 0;
  jitter_ = sim::JitterEstimator{};
}

// ---------------------------------------------------------------------------
// UDP client

IperfUdpClient::IperfUdpClient(tcpip::HostStack& stack, packet::IpAddress server,
                               std::uint16_t port, double rate_bps,
                               std::size_t payload_bytes,
                               packet::IpAddress local_addr)
    : stack_(stack),
      socket_(stack.openUdp(0)),
      server_(server),
      port_(port),
      rate_bps_(rate_bps),
      payload_(payload_bytes) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    m_tx_packets_ = &ctx->metrics.counter("app.iperf", stack_.node().name(),
                                          "udp_tx_packets");
    span_layer_ = ctx->spans.intern("app.iperf");
    span_node_ = ctx->spans.intern(stack_.node().name());
  }
  if (!local_addr.isZero()) socket_.bindAddress(local_addr);
  const double pps = rate_bps_ / (static_cast<double>(payload_) * 8.0);
  interval_ = static_cast<sim::Duration>(static_cast<double>(sim::kSecond) / pps);
}

IperfUdpClient::~IperfUdpClient() {
  running_ = false;
  *alive_ = false;
}

void IperfUdpClient::start(sim::Duration duration, std::function<void()> done) {
  running_ = true;
  end_time_ = stack_.queue().now() + duration;
  done_ = std::move(done);
  sendOne();
}

void IperfUdpClient::sendOne() {
  if (!running_ || stack_.queue().now() >= end_time_) {
    running_ = false;
    if (done_) done_();
    return;
  }
  packet::PacketMeta meta;
  meta.app_send_time = stack_.queue().now();
  meta.app_seq = ++sent_;  // iperf numbers datagrams from 1
  meta.flow_id = port_;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    // One-way trace: the root closes at the server's receive handler or
    // at whichever drop site destroys the datagram.
    meta.trace_id = ctx->spans.newTraceId();
    ctx->spans.openRoot(meta.trace_id, span_layer_, stack_.queue().now(),
                        span_node_, static_cast<std::uint32_t>(payload_));
  }
  VINI_OBS_INC(m_tx_packets_);
  socket_.sendTo(server_, port_, payload_, meta);
  stack_.queue().scheduleAfter(interval_, "app.iperf", stack_.nodeTag(),
                               [this, alive = alive_] {
    if (*alive) sendOne();
  });
}

}  // namespace vini::app
