#include "app/ron.h"

namespace vini::app {

namespace {

/// Probe (and probe reply), carrying the sender's loss vector so every
/// participant learns path quality between the *other* pairs — RON's
/// link-state exchange.
struct RonProbe final : packet::AppPayload {
  bool reply = false;
  std::uint64_t seq = 0;
  packet::IpAddress from;
  std::vector<std::pair<packet::IpAddress, double>> losses;

  std::size_t sizeBytes() const override { return 24 + 12 * losses.size(); }
  std::string describe() const override { return reply ? "ron-reply" : "ron-probe"; }
};

/// A data packet, possibly relayed through one intermediate.
struct RonData final : packet::AppPayload {
  packet::IpAddress final_dst;
  packet::IpAddress origin;
  std::uint64_t seq = 0;
  std::size_t payload_bytes = 0;

  std::size_t sizeBytes() const override { return 24 + payload_bytes; }
  std::string describe() const override { return "ron-data"; }
};

}  // namespace

RonNode::RonNode(tcpip::HostStack& stack, packet::IpAddress local,
                 RonConfig config)
    : stack_(stack), local_(local), config_(config),
      socket_(stack.openUdp(config.port)) {
  socket_.bindAddress(local_);
  socket_.setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });
  probe_timer_ = std::make_unique<sim::PeriodicTimer>(
      stack_.queue(), config_.probe_interval, [this] { probeAll(); });
}

RonNode::~RonNode() {
  stop();
  stack_.closeUdp(config_.port);
}

void RonNode::addPeer(packet::IpAddress peer) {
  if (peer != local_) peers_.try_emplace(peer);
}

void RonNode::start() {
  if (running_) return;
  running_ = true;
  probeAll();
  probe_timer_->start();
}

void RonNode::stop() {
  running_ = false;
  if (probe_timer_) probe_timer_->stop();
}

void RonNode::probeAll() {
  if (!running_) return;
  // Sweep: anything still outstanding from the previous round was lost.
  for (auto& [peer, state] : peers_) {
    if (state.awaiting_seq != 0) {
      state.loss = state.loss * (1 - config_.loss_ewma) + config_.loss_ewma;
      state.awaiting_seq = 0;
    }
  }
  // Fresh probes, carrying our current loss vector.
  for (auto& [peer, state] : peers_) {
    auto probe = std::make_shared<RonProbe>();
    probe->seq = state.next_probe_seq++;
    probe->from = local_;
    for (const auto& [other, other_state] : peers_) {
      probe->losses.emplace_back(other, other_state.loss);
    }
    state.awaiting_seq = probe->seq;
    ++stats_.probes_sent;
    packet::Packet p = packet::Packet::udp(local_, peer, config_.port,
                                           config_.port, 0);
    p.app = std::move(probe);
    stack_.sendPacket(std::move(p));
  }
}

void RonNode::onDatagram(packet::Packet p) {
  if (auto probe = std::dynamic_pointer_cast<const RonProbe>(p.app)) {
    auto it = peers_.find(probe->from);
    if (it == peers_.end()) return;  // not a registered participant
    PeerState& state = it->second;
    // Learn the sender's view of the mesh either way.
    state.advertised.clear();
    for (const auto& [addr, loss] : probe->losses) {
      state.advertised[addr] = loss;
    }
    if (!probe->reply) {
      auto reply = std::make_shared<RonProbe>();
      reply->reply = true;
      reply->seq = probe->seq;
      reply->from = local_;
      for (const auto& [other, other_state] : peers_) {
        reply->losses.emplace_back(other, other_state.loss);
      }
      packet::Packet out = packet::Packet::udp(local_, probe->from, config_.port,
                                               config_.port, 0);
      out.app = std::move(reply);
      stack_.sendPacket(std::move(out));
      return;
    }
    if (probe->seq == state.awaiting_seq) {
      ++stats_.probes_answered;
      state.loss = state.loss * (1 - config_.loss_ewma);  // success sample
      state.awaiting_seq = 0;
    }
    return;
  }
  if (auto data = std::dynamic_pointer_cast<const RonData>(p.app)) {
    if (data->final_dst == local_) {
      ++stats_.data_received;
      return;
    }
    // One-hop relay: deliver directly to the final destination.
    ++stats_.data_forwarded;
    packet::Packet out = packet::Packet::udp(local_, data->final_dst,
                                             config_.port, config_.port, 0);
    out.app = data;
    stack_.sendPacket(std::move(out));
    return;
  }
}

double RonNode::lossTo(packet::IpAddress peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 1.0 : it->second.loss;
}

packet::IpAddress RonNode::currentDetour(packet::IpAddress dst) const {
  auto dst_it = peers_.find(dst);
  if (dst_it == peers_.end()) return {};
  const double direct = dst_it->second.loss;
  if (direct < config_.detour_threshold) return {};
  // Best single intermediate: minimize the worse of the two legs.
  packet::IpAddress best;
  double best_score = direct;
  for (const auto& [mid, state] : peers_) {
    if (mid == dst) continue;
    auto adv = state.advertised.find(dst);
    const double second_leg = adv == state.advertised.end() ? 1.0 : adv->second;
    const double score = std::max(state.loss, second_leg);
    if (score < best_score) {
      best_score = score;
      best = mid;
    }
  }
  return best;
}

packet::IpAddress RonNode::sendData(packet::IpAddress dst,
                                    std::size_t payload_bytes,
                                    std::uint64_t seq) {
  const packet::IpAddress via = currentDetour(dst);
  auto data = std::make_shared<RonData>();
  data->final_dst = dst;
  data->origin = local_;
  data->seq = seq;
  data->payload_bytes = payload_bytes;
  const packet::IpAddress next = via.isZero() ? dst : via;
  if (via.isZero()) {
    ++stats_.data_sent_direct;
  } else {
    ++stats_.data_sent_detour;
  }
  packet::Packet p =
      packet::Packet::udp(local_, next, config_.port, config_.port, 0);
  p.app = std::move(data);
  stack_.sendPacket(std::move(p));
  return via;
}

}  // namespace vini::app
