#include "app/web.h"

namespace vini::app {

WebServer::WebServer(tcpip::HostStack& stack, std::uint16_t port,
                     std::size_t response_bytes)
    : stack_(stack), response_bytes_(response_bytes) {
  tcpip::TcpConfig config;
  config.recv_buffer = 64 * 1024;
  listener_ = std::make_unique<tcpip::TcpListener>(
      stack_, port, config,
      [this](std::shared_ptr<tcpip::TcpConnection> conn) {
        auto raw = conn.get();
        conn->on_receive = [this, raw](std::size_t bytes) {
          if (bytes > 0) {
            // Any request bytes: serve the page, then close.
            ++served_;
            raw->send(response_bytes_);
            raw->close();
          } else {
            raw->close();  // EOF
          }
        };
        connections_.push_back(std::move(conn));
      });
}

void WebClient::fetch(packet::IpAddress server, std::uint16_t port,
                      packet::IpAddress local_addr,
                      std::function<void(const FetchResult&)> done) {
  tcpip::TcpConfig config;
  config.recv_buffer = 64 * 1024;
  auto conn = tcpip::TcpConnection::connect(stack_, server, port, config,
                                            local_addr);
  auto result = std::make_shared<FetchResult>();
  const sim::Time t0 = stack_.queue().now();
  auto raw = conn.get();
  conn->on_connected = [raw] { raw->send(300); };  // the GET request
  conn->on_receive = [result, raw](std::size_t bytes) {
    if (bytes == 0) {
      raw->close();  // server finished the page: finish our side too
      return;
    }
    result->bytes += bytes;
  };
  conn->on_closed = [this, result, t0, done = std::move(done)] {
    result->ok = result->bytes > 0;
    result->elapsed = stack_.queue().now() - t0;
    if (done) done(*result);
  };
  connections_.push_back(std::move(conn));
}

}  // namespace vini::app
