#include "app/ping.h"

namespace vini::app {

Pinger::Pinger(tcpip::HostStack& stack, packet::IpAddress target, Options options)
    : stack_(stack),
      target_(target),
      options_(options),
      ident_(stack.allocateIcmpIdent()) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    const std::string& node = stack_.node().name();
    m_tx_ = &ctx->metrics.counter("app.ping", node, "tx_probes");
    m_rx_ = &ctx->metrics.counter("app.ping", node, "rx_replies");
    m_rtt_ms_ = &ctx->metrics.histogram(
        "app.ping", node, "rtt_ms",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 75.0, 100.0, 150.0, 250.0, 500.0});
    m_last_rtt_ms_ = &ctx->metrics.gauge("app.ping", node, "last_rtt_ms");
    span_layer_ = ctx->spans.intern("app.ping");
    span_node_ = ctx->spans.intern(node);
  }
  timeout_timer_ = std::make_unique<sim::OneShotTimer>(
      stack_.queue(), "app.ping", stack_.nodeTag(), [this] { onTimeout(); });
  stack_.setIcmpReplyHandler(ident_, [this](packet::Packet p) { onReply(p); });
}

Pinger::~Pinger() { stop(); }

void Pinger::start(std::function<void()> done) {
  done_ = std::move(done);
  running_ = true;
  collecting_ = true;
  sendNext();
}

void Pinger::stop() {
  running_ = false;
  collecting_ = false;
  timeout_timer_->cancel();
}

void Pinger::sendNext() {
  if (!running_) return;
  if (next_seq_ >= options_.count) {
    finish();
    return;
  }
  const std::uint64_t seq = ++next_seq_;
  packet::PacketMeta meta;
  meta.app_send_time = stack_.queue().now();
  meta.app_seq = seq;
  meta.flow_id = ident_;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    // Trace ingress: the root span covers the probe's full round trip
    // and is closed either by onReply (delivered) or by whichever drop
    // site destroys the request or its echo reply.
    meta.trace_id = ctx->spans.newTraceId();
    ctx->spans.openRoot(meta.trace_id, span_layer_, stack_.queue().now(),
                        span_node_);
  }
  stack_.sendIcmpEcho(target_, ident_, static_cast<std::uint16_t>(seq),
                      options_.payload_bytes, meta, options_.source);
  ++report_.transmitted;
  VINI_OBS_INC(m_tx_);
  awaiting_ = true;
  awaited_seq_ = seq;
  timeout_timer_->armAfter(options_.flood ? options_.flood_timeout
                                          : options_.interval);
}

void Pinger::onReply(const packet::Packet& reply) {
  if (!collecting_) return;
  const auto* icmp = reply.icmpHeader();
  if (!icmp) return;
  if (reply.meta.app_send_time < 0) return;
  const sim::Duration rtt = stack_.queue().now() - reply.meta.app_send_time;
  ++report_.received;
  report_.rtt_ms.add(sim::toMillis(rtt));
  VINI_OBS_INC(m_rx_);
  VINI_OBS_OBSERVE(m_rtt_ms_, sim::toMillis(rtt));
  VINI_OBS_GAUGE_SET(m_last_rtt_ms_, sim::toMillis(rtt));
  if (reply.meta.trace_id != 0) {
    if (obs::Obs* ctx = VINI_OBS_CTX()) {
      ctx->spans.closeRoot(reply.meta.trace_id, stack_.queue().now(),
                           obs::SpanOutcome::kDelivered);
    }
  }
  if (on_reply) on_reply(reply.meta.app_seq, rtt);
  if (options_.flood && awaiting_ && reply.meta.app_seq == awaited_seq_) {
    awaiting_ = false;
    timeout_timer_->cancel();
    sendNext();
  }
}

void Pinger::onTimeout() {
  // Flood mode: the awaited reply did not arrive within 10 ms — press on
  // (the miss shows up as loss).  Interval mode: just the next probe.
  awaiting_ = false;
  sendNext();
}

void Pinger::finish() {
  running_ = false;
  timeout_timer_->cancel();
  // Allow a grace period for in-flight replies before reporting: a
  // flood ping at 10 ms spacing keeps several probes airborne on a
  // 70 ms-RTT path.
  stack_.queue().scheduleAfter(500 * sim::kMillisecond, "app.ping",
                               stack_.nodeTag(), [this] {
    collecting_ = false;
    if (done_) {
      auto done = std::move(done_);
      done_ = nullptr;
      done();
    }
  });
}

}  // namespace vini::app
