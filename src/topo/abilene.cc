#include "topo/abilene.h"

#include "topo/calibration.h"

namespace vini::topo {

const std::vector<std::string>& abilenePopNames() {
  static const std::vector<std::string> names = {
      "Seattle",      "Sunnyvale", "LosAngeles", "Denver",
      "KansasCity",   "Houston",   "Indianapolis", "Chicago",
      "Atlanta",      "NewYork",   "Washington",
  };
  return names;
}

const std::vector<AbileneLinkSpec>& abileneLinks() {
  // One-way latencies approximate the 2006 fiber paths; IGP weights are
  // latency-proportional (weight ~= 100 * one-way ms), which reproduces
  // Abilene's latency-based metric plan and the Figure 8 routing.
  static const std::vector<AbileneLinkSpec> links = {
      {"Seattle", "Sunnyvale", 6.5, 650},
      {"Seattle", "Denver", 11.0, 1100},
      {"Sunnyvale", "LosAngeles", 3.0, 300},
      {"Sunnyvale", "Denver", 10.0, 1000},
      {"LosAngeles", "Houston", 16.0, 1600},
      {"Denver", "KansasCity", 5.0, 500},
      {"KansasCity", "Houston", 8.0, 800},
      {"KansasCity", "Indianapolis", 4.5, 450},
      {"Houston", "Atlanta", 12.0, 1200},
      {"Indianapolis", "Chicago", 2.0, 200},
      {"Indianapolis", "Atlanta", 8.0, 800},
      {"Chicago", "NewYork", 10.1, 1010},
      {"Atlanta", "Washington", 7.0, 700},
      {"NewYork", "Washington", 2.25, 225},
  };
  return links;
}

void buildAbilene(phys::PhysNetwork& net, const AbileneOptions& options) {
  const auto& names = abilenePopNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    cpu::SchedulerConfig cpu_config;
    if (options.planetlab_nodes) {
      // New York is the 1.267 GHz P-III; the others are 1.4 GHz.
      const double factor =
          names[i] == "NewYork" ? kPiii1267Factor : kPiii1400Factor;
      cpu_config = planetLabCpu(factor, options.seed + i, options.contention);
    } else {
      cpu_config = deterCpu(options.seed + i);
    }
    net.addNode(names[i],
                packet::IpAddress(198, 32, 154, static_cast<std::uint8_t>(10 + i)),
                cpu_config);
  }
  for (const auto& spec : abileneLinks()) {
    phys::LinkConfig config;
    config.bandwidth_bps = options.backbone_bps;
    config.propagation = sim::fromMillis(spec.one_way_ms);
    config.weight = static_cast<double>(spec.igp_weight);
    net.addLink(*net.nodeByName(spec.a), *net.nodeByName(spec.b), config);
  }
}

core::TopologySpec abileneMirrorSpec(const std::string& slice_name) {
  core::TopologySpec spec;
  spec.name = slice_name;
  for (const auto& name : abilenePopNames()) {
    spec.nodes.push_back(core::TopologyNodeSpec{name, name});
  }
  for (const auto& link : abileneLinks()) {
    spec.links.push_back(core::TopologyLinkSpec{link.a, link.b, link.igp_weight});
  }
  return spec;
}

void buildDeter(phys::PhysNetwork& net, const DeterOptions& options) {
  const char* names[3] = {"Src", "Fwdr", "Sink"};
  for (int i = 0; i < 3; ++i) {
    net.addNode(names[i],
                packet::IpAddress(192, 168, 10, static_cast<std::uint8_t>(1 + i)),
                deterCpu(options.seed + static_cast<std::uint64_t>(i)));
  }
  phys::LinkConfig config;
  config.bandwidth_bps = options.link_bps;
  config.propagation = sim::fromMillis(options.one_way_ms);
  net.addLink(*net.nodeByName("Src"), *net.nodeByName("Fwdr"), config);
  net.addLink(*net.nodeByName("Fwdr"), *net.nodeByName("Sink"), config);
}

core::TopologySpec deterChainSpec(const std::string& slice_name) {
  core::TopologySpec spec;
  spec.name = slice_name;
  spec.nodes = {{"Src", "Src"}, {"Fwdr", "Fwdr"}, {"Sink", "Sink"}};
  spec.links = {{"Src", "Fwdr", 1}, {"Fwdr", "Sink", 1}};
  return spec;
}

}  // namespace vini::topo
